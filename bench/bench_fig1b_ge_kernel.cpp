// Figure 1(b): GE trend for the AES *kernel module* victim on the M2 —
// the same attack mounted against a privileged service, converging about
// two times slower than the user-space victim.
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/report.h"

int main() {
  using namespace psc;
  bench::banner("Figure 1(b)",
                "GE vs collected PHPC traces, kernel-module victim, M2");

  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw,
                                                 power::PowerModel::rd10_hw,
                                                 power::PowerModel::rd10_hd};

  core::CpaCampaignConfig kernel_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::kernel_module(),
      .trace_count = bench::scaled(1'000'000),
      .models = models,
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = bench::bench_seed(),
  };
  kernel_config.checkpoints =
      core::log_spaced_checkpoints(10000, kernel_config.trace_count, 10);
  bench::apply_parallel_env(kernel_config);
  std::cout << "kernel campaign: " << kernel_config.trace_count
            << " traces..." << std::flush;
  const auto kernel = run_cpa_campaign(kernel_config);
  std::cout << " done\n";

  // User-space Rd0-HW as the comparison baseline for the 2x statement.
  core::CpaCampaignConfig user_config = kernel_config;
  user_config.victim = victim::VictimModel::user_space();
  user_config.models = {power::PowerModel::rd0_hw};
  std::cout << "user baseline: " << user_config.trace_count << " traces..."
            << std::flush;
  const auto user = run_cpa_campaign(user_config);
  std::cout << " done\n\n";

  std::vector<core::GeCurveSeries> series;
  for (std::size_t m = 0; m < models.size(); ++m) {
    series.push_back(
        {"kernel " + std::string(power_model_name(models[m])),
         &kernel.keys[0].curves[m]});
  }
  series.push_back({"user Rd0-HW (baseline)", &user.keys[0].curves[0]});

  std::cout << "CSV series (plot input):\n";
  core::write_ge_curves_csv(std::cout, series);
  std::cout << "\n";
  core::render_ge_curves(std::cout, series);

  const double kernel_final = kernel.keys[0].curves[0].back().ge_bits;
  const double user_final = user.keys[0].curves[0].back().ge_bits;
  std::cout << "\nfinal GE: kernel Rd0-HW "
            << util::fixed(kernel_final, 1) << " bits vs user "
            << util::fixed(user_final, 1) << " bits\n";
  std::cout <<
      "paper reference (Fig 1b): converging Rd0-HW trend, no Rd10-HD "
      "convergence, approximately two times slower than the user-space "
      "victim (SNR lost to syscall noise and the duty-cycled service).\n";
  return 0;
}
