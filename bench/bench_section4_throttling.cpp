// Section 4 narrative: finding the reactive power limit and triggering
// frequency throttling on the M2 in lowpowermode.
//  * AES threads added one by one stay under the 4 W budget (2.8 W at 4
//    threads) with the P-cores pinned at 1.968 GHz.
//  * Adding constant-operand fmul stressors on the E-cores exceeds the
//    budget: the P-cluster throttles, the E-cores hold 2.424 GHz.
//
// Emits one machine-readable JSON object (same shape as the other bench
// trajectories) to stdout and BENCH_section4_throttling.json (override
// with PSC_BENCH_JSON): the thread sweep, the throttle observation, the
// timing-TVLA verdict, and the dvfs-frequency scenario's cross-class
// leakage as the registry-side counterpart of the same physics. Exits
// non-zero when an expectation from the paper fails.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/report.h"
#include "core/throttle.h"
#include "scenario/runner.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/table.h"

int main() {
  using namespace psc;
  bench::banner("Section 4", "lowpowermode power limit and throttling, M2");

  const auto profile = soc::DeviceProfile::macbook_air_m2();

  std::cout << "AES thread sweep (lowpowermode, no stressors):\n";
  const std::vector<core::SweepPoint> sweep =
      core::lowpower_aes_sweep(profile, 4, bench::bench_seed());
  util::TextTable sweep_table;
  sweep_table.header({"AES threads", "package power (W)", "P-core freq (GHz)",
                      "throttled"});
  for (const core::SweepPoint& point : sweep) {
    sweep_table.add_row({std::to_string(point.aes_threads),
                         util::fixed(point.package_power_w, 2),
                         util::fixed(point.p_freq_hz / 1e9, 3),
                         point.throttled ? "yes" : "no"});
  }
  sweep_table.render(std::cout);
  std::cout << "paper reference: 4 AES threads draw only 2.8 W — "
               "insufficient to throttle; P-cores hold 1.968 GHz\n\n";

  core::ThrottleExperimentConfig config{
      .profile = profile,
      .aes_threads = 4,
      .stressor_threads = 4,
      .traces_per_set = bench::scaled(400) / 10,
      .window_s = 1.0,
      .seed = bench::bench_seed(),
  };
  const auto result = run_throttle_campaign(config);
  core::throttle_observation_table(result.observation).render(std::cout);

  std::cout << "\nmean execution time per 1000 blocks under throttling: "
            << util::fixed(result.mean_time_per_kblock_s * 1e6, 3)
            << " us\n";
  std::cout << "timing TVLA shows data dependence: "
            << (result.timing_matrix.no_data_dependence() ? "no (as in the "
                                                            "paper)"
                                                          : "YES (mismatch)")
            << "\n";

  // The registry-side counterpart: the dvfs-frequency scenario leaks
  // workload identity through P-cluster frequency residency under the
  // same governor — distinguishable workloads, data-independent timing.
  scenario::ScenarioRunConfig scenario_config;
  scenario_config.traces_per_set = bench::scaled(400) / 2;
  scenario_config.seed = bench::bench_seed();
  bench::apply_parallel_env(scenario_config);
  const scenario::ScenarioRunResult scenario_result =
      scenario::run_scenario("dvfs-frequency", {}, scenario_config);
  const double scenario_t = scenario_result.max_cross_class_t();
  std::cout << "dvfs-frequency scenario ("
            << scenario_result.traces_per_set
            << " traces per set): max cross-class |t| = "
            << util::fixed(scenario_t, 2) << "\n";

  std::cout <<
      "\npaper reference: power cap 4 W in lowpowermode; AES+fmul exceeds "
      "it and throttles the P-cores while E-cores stay at 2.424 GHz; the "
      "CPU stays cool, ruling out thermal effects; timing traces show no "
      "data dependence (Table 6, right column).\n";

  // Gates: everything section 4 asserts about the simulated M2.
  const core::ThrottleObservation& obs = result.observation;
  const bool sweep_ok = !sweep.empty() && !sweep.back().throttled &&
                        sweep.back().package_power_w < 4.0;
  const bool throttle_ok = obs.power_throttled && !obs.thermal_throttled &&
                           !obs.aes_only_throttled;
  const bool timing_ok = result.timing_matrix.no_data_dependence();
  const bool scenario_ok = scenario_t >= 4.5;
  const bool all_ok = sweep_ok && throttle_ok && timing_ok && scenario_ok;
  if (!sweep_ok) {
    std::cerr << "FAIL: AES-only sweep throttled or exceeded the 4 W budget\n";
  }
  if (!throttle_ok) {
    std::cerr << "FAIL: stressed run did not power-throttle cleanly\n";
  }
  if (!timing_ok) {
    std::cerr << "FAIL: timing TVLA shows data dependence\n";
  }
  if (!scenario_ok) {
    std::cerr << "FAIL: dvfs-frequency scenario max |t| " << scenario_t
              << " below 4.5\n";
  }

  std::string sweep_rows;
  for (const core::SweepPoint& point : sweep) {
    if (!sweep_rows.empty()) {
      sweep_rows += ",";
    }
    sweep_rows += "{\"aes_threads\":" + std::to_string(point.aes_threads) +
                  ",\"package_power_w\":" +
                  util::format_double(point.package_power_w) +
                  ",\"p_freq_ghz\":" +
                  util::format_double(point.p_freq_hz / 1e9) +
                  ",\"throttled\":" + (point.throttled ? "true" : "false") +
                  "}";
  }
  double timing_max_t = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) {
        timing_max_t = std::max(timing_max_t,
                                std::abs(result.timing_matrix.t[i][j]));
      }
    }
  }
  const std::string json =
      "{\"bench\":\"section4_throttling\","
      "\"device\":\"macbook_air_m2\","
      "\"traces_per_set\":" + std::to_string(config.traces_per_set) + ","
      "\"seed\":" + std::to_string(bench::bench_seed()) + ","
      "\"sweep\":[" + sweep_rows + "],"
      "\"observation\":{"
      "\"aes_only_power_w\":" + util::format_double(obs.aes_only_power_w) + ","
      "\"aes_only_p_freq_ghz\":" +
      util::format_double(obs.aes_only_p_freq_hz / 1e9) + ","
      "\"aes_only_throttled\":" +
      (obs.aes_only_throttled ? "true" : "false") + ","
      "\"stressed_estimated_power_w\":" +
      util::format_double(obs.stressed_estimated_power_w) + ","
      "\"stressed_p_freq_ghz\":" +
      util::format_double(obs.stressed_p_freq_hz / 1e9) + ","
      "\"stressed_e_freq_ghz\":" +
      util::format_double(obs.stressed_e_freq_hz / 1e9) + ","
      "\"power_throttled\":" + (obs.power_throttled ? "true" : "false") + ","
      "\"thermal_throttled\":" +
      (obs.thermal_throttled ? "true" : "false") + "},"
      "\"timing\":{"
      "\"mean_time_per_kblock_us\":" +
      util::format_double(result.mean_time_per_kblock_s * 1e6) + ","
      "\"max_cross_class_t\":" + util::format_double(timing_max_t) + ","
      "\"no_data_dependence\":" + (timing_ok ? "true" : "false") + "},"
      "\"scenario\":{"
      "\"name\":\"dvfs-frequency\","
      "\"traces_per_set\":" +
      std::to_string(scenario_result.traces_per_set) + ","
      "\"max_cross_class_t\":" + util::format_double(scenario_t) + ","
      "\"threshold\":4.5,"
      "\"ok\":" + (scenario_ok ? "true" : "false") + "},"
      "\"gate\":\"enforced\","
      "\"ok\":" + (all_ok ? "true" : "false") + "}";
  std::cout << json << "\n";
  const std::string path =
      util::env_string("PSC_BENCH_JSON", "BENCH_section4_throttling.json");
  if (std::ofstream out(path); out) {
    out << json << "\n";
  } else {
    std::cerr << "warning: could not write " << path << "\n";
  }
  return all_ok ? 0 : 1;
}
