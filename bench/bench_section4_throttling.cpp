// Section 4 narrative: finding the reactive power limit and triggering
// frequency throttling on the M2 in lowpowermode.
//  * AES threads added one by one stay under the 4 W budget (2.8 W at 4
//    threads) with the P-cores pinned at 1.968 GHz.
//  * Adding constant-operand fmul stressors on the E-cores exceeds the
//    budget: the P-cluster throttles, the E-cores hold 2.424 GHz.
#include <iostream>

#include "bench_common.h"
#include "core/report.h"
#include "core/throttle.h"
#include "util/table.h"

int main() {
  using namespace psc;
  bench::banner("Section 4", "lowpowermode power limit and throttling, M2");

  const auto profile = soc::DeviceProfile::macbook_air_m2();

  std::cout << "AES thread sweep (lowpowermode, no stressors):\n";
  util::TextTable sweep_table;
  sweep_table.header({"AES threads", "package power (W)", "P-core freq (GHz)",
                      "throttled"});
  for (const auto& point :
       core::lowpower_aes_sweep(profile, 4, bench::bench_seed())) {
    sweep_table.add_row({std::to_string(point.aes_threads),
                         util::fixed(point.package_power_w, 2),
                         util::fixed(point.p_freq_hz / 1e9, 3),
                         point.throttled ? "yes" : "no"});
  }
  sweep_table.render(std::cout);
  std::cout << "paper reference: 4 AES threads draw only 2.8 W — "
               "insufficient to throttle; P-cores hold 1.968 GHz\n\n";

  core::ThrottleExperimentConfig config{
      .profile = profile,
      .aes_threads = 4,
      .stressor_threads = 4,
      .traces_per_set = bench::scaled(400) / 10,
      .window_s = 1.0,
      .seed = bench::bench_seed(),
  };
  const auto result = run_throttle_campaign(config);
  core::throttle_observation_table(result.observation).render(std::cout);

  std::cout << "\nmean execution time per 1000 blocks under throttling: "
            << util::fixed(result.mean_time_per_kblock_s * 1e6, 3)
            << " us\n";
  std::cout << "timing TVLA shows data dependence: "
            << (result.timing_matrix.no_data_dependence() ? "no (as in the "
                                                            "paper)"
                                                          : "YES (mismatch)")
            << "\n";

  std::cout <<
      "\npaper reference: power cap 4 W in lowpowermode; AES+fmul exceeds "
      "it and throttles the P-cores while E-cores stay at 2.424 GHz; the "
      "CPU stays cool, ruling out thermal effects; timing traces show no "
      "data dependence (Table 6, right column).\n";
  return 0;
}
