// Scenario registry sweep: run every registered attack scenario at the
// bench budget and gate on the leakage the paper (and the related work
// the scenarios model) predicts:
//  * with default params every scenario's leakage channels must show
//    cross-class TVLA |t| above the 4.5 detection threshold, and
//  * scenarios with a `leak` knob (cache-timing, dvfs-frequency,
//    sqmul-timing) must drop below the threshold when the
//    secret-dependent behaviour is disabled (leak=0) — the channel, not
//    an artifact of the harness, carries the signal.
//
// One JSON object goes to stdout and BENCH_scenario_sweep.json (override
// with PSC_BENCH_JSON) so successive commits have a leakage trajectory
// to compare. Non-zero exit when a gate fails.
//
// Scale knobs (bench_common.h): PSC_QUICK, PSC_TRACES, PSC_SEED,
// PSC_WORKERS, PSC_SHARDS.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "util/csv.h"
#include "util/env.h"
#include "util/table.h"

int main() {
  using namespace psc;
  bench::banner("Scenario sweep",
                "TVLA leakage gate over every registered scenario");

  const double threshold = 4.5;
  const std::size_t per_set = bench::scaled(800);
  const std::uint64_t seed = bench::bench_seed();

  scenario::ScenarioRunConfig config;
  config.traces_per_set = per_set;
  config.seed = seed;
  bench::apply_parallel_env(config);

  struct Row {
    std::string name;
    bool cpa = false;
    std::size_t channels = 0;
    double leak_on_t = 0.0;
    bool has_leak_knob = false;
    double leak_off_t = 0.0;
    double ge_bits = 0.0;
    bool ok = false;
  };
  std::vector<Row> rows;
  bool all_ok = true;

  const auto& registry = scenario::ScenarioRegistry::built_in();
  for (const scenario::ScenarioInfo& info : registry.describe_all()) {
    Row row;
    row.name = info.name;
    row.cpa = info.analysis.cpa;
    row.channels = info.channels.size();
    for (const scenario::ParamSpec& param : info.params) {
      if (param.name == "leak") {
        row.has_leak_knob = true;
      }
    }

    std::cerr << "running " << info.name << " (" << per_set
              << " traces per set)...\n";
    const scenario::ScenarioRunResult on =
        scenario::run_scenario(info.name, {}, config);
    row.leak_on_t = on.max_cross_class_t();
    if (!on.cpa.empty() && !on.cpa.front().final_results.empty()) {
      row.ge_bits = on.cpa.front().final_results.front().ge_bits;
    }
    row.ok = row.leak_on_t >= threshold;

    if (row.has_leak_knob) {
      const scenario::ScenarioRunResult off =
          scenario::run_scenario(info.name, {{"leak", "0"}}, config);
      row.leak_off_t = off.max_cross_class_t();
      row.ok = row.ok && row.leak_off_t < threshold;
    }
    all_ok = all_ok && row.ok;
    rows.push_back(row);
  }

  util::TextTable table;
  table.header({"scenario", "analysis", "leak-on max |t|", "leak-off max |t|",
                "gate"});
  for (const Row& row : rows) {
    table.add_row({row.name, row.cpa ? "TVLA+CPA" : "TVLA",
                   util::fixed(row.leak_on_t, 2),
                   row.has_leak_knob ? util::fixed(row.leak_off_t, 2) : "-",
                   row.ok ? "PASS" : "FAIL"});
  }
  table.render(std::cout);
  std::cout << "threshold: cross-class |t| >= " << threshold
            << " with leakage enabled, < " << threshold
            << " with the leak knob off\n";
  for (const Row& row : rows) {
    if (!row.ok) {
      std::cerr << "FAIL: " << row.name << " leak-on |t| " << row.leak_on_t
                << (row.has_leak_knob
                        ? ", leak-off |t| " + util::format_double(row.leak_off_t)
                        : std::string())
                << " (threshold " << threshold << ")\n";
    }
  }

  std::string scenario_rows;
  for (const Row& row : rows) {
    if (!scenario_rows.empty()) {
      scenario_rows += ",";
    }
    scenario_rows +=
        "{\"name\":\"" + row.name + "\"," +
        "\"cpa\":" + (row.cpa ? "true" : "false") + "," +
        "\"channels\":" + std::to_string(row.channels) + "," +
        "\"leak_on_max_t\":" + util::format_double(row.leak_on_t) + "," +
        "\"leak_off_max_t\":" +
        (row.has_leak_knob ? util::format_double(row.leak_off_t) : "null") +
        "," +
        "\"ge_bits\":" + util::format_double(row.ge_bits) + "," +
        "\"ok\":" + (row.ok ? "true" : "false") + "}";
  }
  const std::string json =
      "{\"bench\":\"scenario_sweep\","
      "\"traces_per_set\":" + std::to_string(per_set) + ","
      "\"seed\":" + std::to_string(seed) + ","
      "\"shards\":" + std::to_string(config.shards) + ","
      "\"threshold\":" + util::format_double(threshold) + ","
      "\"gate\":\"enforced\","
      "\"scenarios\":[" + scenario_rows + "],"
      "\"ok\":" + (all_ok ? "true" : "false") + "}";
  std::cout << json << "\n";
  const std::string path =
      util::env_string("PSC_BENCH_JSON", "BENCH_scenario_sweep.json");
  if (std::ofstream out(path); out) {
    out << json << "\n";
  } else {
    std::cerr << "warning: could not write " << path << "\n";
  }
  return all_ok ? 0 : 1;
}
