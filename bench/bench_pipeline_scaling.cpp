// Pipeline scaling micro-bench: acquisition->accumulation throughput of
// the sharded CPA campaign versus worker count, a head-to-head of the
// legacy per-record ingest path against the columnar TraceBatch path,
// and a record-then-replay stage for the PSTR trace store (out-of-core
// replay vs re-simulating the device), as machine-readable JSON so
// successive commits have a perf trajectory to compare against. The JSON
// object is printed to stdout and written to BENCH_pipeline_scaling.json
// (override with PSC_BENCH_JSON); the recorded store is left at
// PSC_BENCH_PSTR (default BENCH_sample.pstr) as a CI artifact.
//
// The shard count is pinned (default 8) while workers vary, so every run
// must produce bit-identical campaign results — the bench cross-checks
// that (`identical_results`) while measuring wall-clock traces/sec. The
// ingest comparison feeds the same live source through both paths and
// requires (a) bit-identical engine state and (b) batch throughput at
// least PSC_INGEST_MIN_RATIO times the legacy throughput (default 0.95).
// The store stage requires the replayed engine to be bit-identical to
// the engine that accumulated during recording, and replay throughput at
// least PSC_REPLAY_MIN_RATIO times the live-regeneration throughput
// (default 1.0 — reading back must not be slower than re-simulating).
// Any failure exits non-zero so CI smoke runs catch regressions.
//
//   ./bench_pipeline_scaling
//   PSC_TRACES=N            trace count per campaign      (default 200000)
//   PSC_SHARDS=N            pinned shard count            (default 8)
//   PSC_MAX_WORKERS=N       highest worker count measured (default 8)
//   PSC_INGEST_TRACES=N     ingest comparison trace count (default 60000)
//   PSC_INGEST_REPS=N       timing reps, best-of (default 3)
//   PSC_INGEST_MIN_RATIO=R  minimum batch/legacy ratio    (default 0.95)
//   PSC_STORE_TRACES=N      record/replay trace count     (default 60000)
//   PSC_REPLAY_MIN_RATIO=R  minimum replay/live ratio     (default 1.0)
//   PSC_BENCH_PSTR=PATH     recorded store artifact path
//   PSC_SEED=N              campaign seed
//   PSC_BENCH_JSON=PATH     trajectory file path
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/campaigns.h"
#include "store/file_trace_source.h"
#include "store/trace_file_writer.h"
#include "util/csv.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// True when both engines hold bit-identical accumulator state, judged by
// every guess correlation of every key byte.
bool engines_identical(const psc::core::CpaEngine& a,
                       const psc::core::CpaEngine& b) {
  for (std::size_t i = 0; i < 16; ++i) {
    const psc::core::ByteRanking ra =
        a.analyze_byte(psc::power::PowerModel::rd0_hw, i);
    const psc::core::ByteRanking rb =
        b.analyze_byte(psc::power::PowerModel::rd0_hw, i);
    for (std::size_t g = 0; g < 256; ++g) {
      if (ra.correlation[g] != rb.correlation[g]) {
        return false;
      }
    }
  }
  return true;
}

// One timed acquire->accumulate pass over any source in 1024-row batches,
// optionally teeing every batch to a store writer. Returns traces/sec.
// With `replay` set the source returns recorded plaintexts and would
// discard staged ones, so the timed loop skips the random staging — the
// replay number measures pure out-of-core decode, not wasted RNG work.
double time_accumulate(psc::core::TraceSource& source,
                       psc::util::Xoshiro256& rng,
                       psc::core::CpaEngine& engine,
                       std::size_t traces, std::size_t column,
                       psc::store::TraceFileWriter* writer = nullptr,
                       bool replay = false) {
  constexpr std::size_t batch_rows = 1024;
  psc::core::TraceBatch batch(source.keys().size());
  batch.reserve(batch_rows);
  const auto start = std::chrono::steady_clock::now();
  std::size_t produced = 0;
  while (produced < traces) {
    const std::size_t chunk = std::min(batch_rows, traces - produced);
    if (replay) {
      batch.clear();
      batch.resize(chunk);
      source.collect_batch(batch);
    } else {
      psc::core::collect_random_batch(source, chunk, rng, batch);
    }
    if (writer != nullptr) {
      writer->append(batch);
    }
    engine.add_batch(batch, column);
    produced += chunk;
  }
  return static_cast<double>(traces) / seconds_since(start);
}

}  // namespace

int main() {
  using namespace psc;

  const std::size_t traces = util::env_size("PSC_TRACES", 200'000);
  const std::size_t shards = util::env_size("PSC_SHARDS", 8);
  const std::size_t max_workers = util::env_size("PSC_MAX_WORKERS", 8);
  const std::size_t ingest_traces =
      util::env_size("PSC_INGEST_TRACES", 60'000);
  const double min_ratio = util::env_double("PSC_INGEST_MIN_RATIO", 0.95);

  // ---- ingest throughput: legacy per-record loop vs columnar batches ----
  //
  // Same live source configuration and seeds, so both paths see the same
  // trace stream; the engines must end bit-identical while the columnar
  // path avoids the per-trace TraceRecord allocation and virtual call.
  const core::LiveSourceConfig live_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
  };
  util::Xoshiro256 key_rng(bench::bench_seed());
  aes::Block victim_key;
  key_rng.fill_bytes(victim_key);
  const std::vector<power::PowerModel> ingest_models = {
      power::PowerModel::rd0_hw};

  // Best-of-N timing, reps alternating between the paths, so a transient
  // stall (noisy CI neighbor, page cache warm-up) on one rep cannot fail
  // the throughput gate.
  const std::size_t ingest_reps = util::env_size("PSC_INGEST_REPS", 3);
  double legacy_tps = 0.0;
  double batch_tps = 0.0;
  bool ingest_identical = true;
  {
    std::vector<util::FourCc> channel_probe =
        core::LiveTraceSource::channel_names(live_config);
    const std::size_t column = static_cast<std::size_t>(
        std::find(channel_probe.begin(), channel_probe.end(),
                  util::FourCc("PHPC")) -
        channel_probe.begin());

    for (std::size_t rep = 0; rep < ingest_reps; ++rep) {
      core::LiveTraceSource source(live_config, victim_key, 1);
      util::Xoshiro256 pt_rng(2);
      core::CpaEngine engine(ingest_models);
      aes::Block pt;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t t = 0; t < ingest_traces; ++t) {
        pt_rng.fill_bytes(pt);
        const core::TraceRecord record = source.collect(pt);
        engine.add_trace(record.plaintext, record.ciphertext,
                         record.values[column]);
      }
      legacy_tps = std::max(
          legacy_tps, static_cast<double>(ingest_traces) /
                          seconds_since(start));

      core::LiveTraceSource batch_source(live_config, victim_key, 1);
      util::Xoshiro256 batch_pt_rng(2);
      core::CpaEngine batch_engine(ingest_models);
      batch_tps = std::max(
          batch_tps, time_accumulate(batch_source, batch_pt_rng,
                                     batch_engine, ingest_traces, column));

      // Cross-check: the two paths must accumulate bit-identical state.
      ingest_identical =
          ingest_identical && engines_identical(engine, batch_engine);
    }
  }
  const double ingest_ratio = legacy_tps > 0.0 ? batch_tps / legacy_tps : 0.0;
  std::cerr << "ingest: legacy " << legacy_tps << " traces/s, batch "
            << batch_tps << " traces/s (ratio " << ingest_ratio << ", "
            << (ingest_identical ? "bit-identical" : "MISMATCH") << ")\n";

  // ---- store: record-then-replay vs synthetic regeneration ----
  //
  // One live pass records a PSTR store while a CPA engine accumulates
  // (the capture-once half); then the same stream is obtained two ways —
  // replayed out-of-core from the file, and regenerated by re-simulating
  // the device with the same seeds — and fed to fresh engines. Replay
  // must be bit-identical to the recording pass and at least
  // PSC_REPLAY_MIN_RATIO times the regeneration throughput.
  const std::size_t store_traces = util::env_size("PSC_STORE_TRACES", 60'000);
  const std::string pstr_path =
      util::env_string("PSC_BENCH_PSTR", "BENCH_sample.pstr");
  const double replay_min_ratio = util::env_double("PSC_REPLAY_MIN_RATIO", 1.0);
  double record_tps = 0.0;
  double replay_tps = 0.0;
  double regen_tps = 0.0;
  std::size_t store_bytes = 0;
  bool replay_identical = true;
  {
    const std::vector<util::FourCc> channels =
        core::LiveTraceSource::channel_names(live_config);
    const std::size_t column = static_cast<std::size_t>(
        std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
        channels.begin());

    // Record: acquisition teed to disk while the engine accumulates.
    core::CpaEngine recorded_engine(ingest_models);
    {
      core::LiveTraceSource source(live_config, victim_key, 5);
      util::Xoshiro256 pt_rng(6);
      store::TraceFileWriter writer(
          pstr_path,
          {.channels = channels,
           .metadata = store::device_metadata(live_config.profile.name,
                                              live_config.profile.os_version)});
      record_tps = time_accumulate(source, pt_rng, recorded_engine,
                                   store_traces, column, &writer);
      writer.finalize();
    }

    // Synthetic regeneration baseline: the same stream re-simulated.
    {
      core::LiveTraceSource source(live_config, victim_key, 5);
      util::Xoshiro256 pt_rng(6);
      core::CpaEngine engine(ingest_models);
      regen_tps = time_accumulate(source, pt_rng, engine, store_traces,
                                  column);
    }

    // Out-of-core replay from the recorded store.
    {
      store::FileTraceSource replay(pstr_path);
      store_bytes = replay.reader().file_bytes();
      util::Xoshiro256 unused_rng(0);
      core::CpaEngine engine(ingest_models);
      replay_tps = time_accumulate(replay, unused_rng, engine, store_traces,
                                   column, nullptr, /*replay=*/true);
      replay_identical = engines_identical(recorded_engine, engine);
    }
  }
  const double replay_ratio = regen_tps > 0.0 ? replay_tps / regen_tps : 0.0;
  std::cerr << "store: record " << record_tps << " traces/s, replay "
            << replay_tps << " traces/s, regenerate " << regen_tps
            << " traces/s (replay/regen " << replay_ratio << ", "
            << (replay_identical ? "bit-identical" : "MISMATCH") << ", "
            << store_bytes << " bytes on disk)\n";

  // ---- sharded campaign scaling vs worker count ----
  core::CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = traces,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = bench::bench_seed(),
      .workers = 1,
      .shards = shards,
  };

  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w <= max_workers; w *= 2) {
    worker_counts.push_back(w);
  }

  bool identical = true;
  double reference_ge = 0.0;
  std::array<int, 16> reference_ranks{};
  std::string rows;
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    config.workers = worker_counts[i];
    const auto start = std::chrono::steady_clock::now();
    const auto result = run_cpa_campaign(config);
    const double seconds = seconds_since(start);
    const auto& final = result.keys[0].final_results[0];
    if (i == 0) {
      reference_ge = final.ge_bits;
      reference_ranks = final.true_ranks;
    } else if (final.ge_bits != reference_ge ||
               final.true_ranks != reference_ranks) {
      identical = false;
    }
    if (!rows.empty()) {
      rows += ",";
    }
    rows += "{\"workers\":" + std::to_string(config.workers) +
            ",\"seconds\":" + util::format_double(seconds) +
            ",\"traces_per_sec\":" +
            util::format_double(static_cast<double>(traces) / seconds) +
            ",\"ge_bits\":" + util::format_double(final.ge_bits) + "}";
    std::cerr << "workers=" << config.workers << " " << seconds << "s ("
              << static_cast<double>(traces) / seconds << " traces/s)\n";
  }

  const bool ingest_ok = ingest_identical && ingest_ratio >= min_ratio;
  if (!ingest_ok) {
    std::cerr << "FAIL: columnar ingest "
              << (ingest_identical ? "below required throughput ratio "
                                   : "state mismatch ")
              << "(ratio " << ingest_ratio << ", required " << min_ratio
              << ")\n";
  }
  const bool store_ok = replay_identical && replay_ratio >= replay_min_ratio;
  if (!store_ok) {
    std::cerr << "FAIL: PSTR replay "
              << (replay_identical ? "below required throughput ratio "
                                   : "state mismatch ")
              << "(ratio " << replay_ratio << ", required "
              << replay_min_ratio << ")\n";
  }

  // One JSON object, to stdout and to the trajectory file; progress went
  // to stderr.
  const std::string json =
      "{\"bench\":\"pipeline_scaling\","
      "\"device\":\"macbook_air_m2\","
      "\"channel\":\"PHPC\","
      "\"traces\":" + std::to_string(traces) + ","
      "\"shards\":" + std::to_string(shards) + ","
      "\"seed\":" + std::to_string(bench::bench_seed()) + ","
      "\"identical_results\":" + (identical ? "true" : "false") + ","
      "\"ingest\":{"
      "\"traces\":" + std::to_string(ingest_traces) + ","
      "\"legacy_traces_per_sec\":" + util::format_double(legacy_tps) + ","
      "\"batch_traces_per_sec\":" + util::format_double(batch_tps) + ","
      "\"batch_over_legacy\":" + util::format_double(ingest_ratio) + ","
      "\"bit_identical\":" + (ingest_identical ? "true" : "false") + "},"
      "\"store\":{"
      "\"traces\":" + std::to_string(store_traces) + ","
      "\"file_bytes\":" + std::to_string(store_bytes) + ","
      "\"record_traces_per_sec\":" + util::format_double(record_tps) + ","
      "\"replay_traces_per_sec\":" + util::format_double(replay_tps) + ","
      "\"regen_traces_per_sec\":" + util::format_double(regen_tps) + ","
      "\"replay_over_regen\":" + util::format_double(replay_ratio) + ","
      "\"bit_identical\":" + (replay_identical ? "true" : "false") + "},"
      "\"results\":[" + rows + "]}";
  std::cout << json << "\n";
  const std::string path =
      util::env_string("PSC_BENCH_JSON", "BENCH_pipeline_scaling.json");
  if (std::ofstream out(path); out) {
    out << json << "\n";
  } else {
    std::cerr << "warning: could not write " << path << "\n";
  }
  return identical && ingest_ok && store_ok ? 0 : 1;
}
