// Pipeline scaling micro-bench: acquisition->accumulation throughput of
// the sharded CPA campaign versus worker count, as machine-readable JSON
// so successive commits have a perf trajectory to compare against.
//
// The shard count is pinned (default 8) while workers vary, so every run
// must produce bit-identical campaign results — the bench cross-checks
// that (`identical_results`) while measuring wall-clock traces/sec.
//
//   ./bench_pipeline_scaling
//   PSC_TRACES=N       trace count per campaign      (default 200000)
//   PSC_SHARDS=N       pinned shard count            (default 8)
//   PSC_MAX_WORKERS=N  highest worker count measured (default 8)
//   PSC_SEED=N         campaign seed
#include <array>
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/campaigns.h"
#include "util/csv.h"

int main() {
  using namespace psc;

  const std::size_t traces = util::env_size("PSC_TRACES", 200'000);
  const std::size_t shards = util::env_size("PSC_SHARDS", 8);
  const std::size_t max_workers = util::env_size("PSC_MAX_WORKERS", 8);

  core::CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = traces,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = bench::bench_seed(),
      .workers = 1,
      .shards = shards,
  };

  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w <= max_workers; w *= 2) {
    worker_counts.push_back(w);
  }

  bool identical = true;
  double reference_ge = 0.0;
  std::array<int, 16> reference_ranks{};
  std::string rows;
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    config.workers = worker_counts[i];
    const auto start = std::chrono::steady_clock::now();
    const auto result = run_cpa_campaign(config);
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();
    const auto& final = result.keys[0].final_results[0];
    if (i == 0) {
      reference_ge = final.ge_bits;
      reference_ranks = final.true_ranks;
    } else if (final.ge_bits != reference_ge ||
               final.true_ranks != reference_ranks) {
      identical = false;
    }
    if (!rows.empty()) {
      rows += ",";
    }
    rows += "{\"workers\":" + std::to_string(config.workers) +
            ",\"seconds\":" + util::format_double(seconds) +
            ",\"traces_per_sec\":" +
            util::format_double(static_cast<double>(traces) / seconds) +
            ",\"ge_bits\":" + util::format_double(final.ge_bits) + "}";
    std::cerr << "workers=" << config.workers << " " << seconds << "s ("
              << static_cast<double>(traces) / seconds << " traces/s)\n";
  }

  // stdout carries exactly one JSON object; progress goes to stderr.
  std::cout << "{\"bench\":\"pipeline_scaling\","
            << "\"device\":\"macbook_air_m2\","
            << "\"channel\":\"PHPC\","
            << "\"traces\":" << traces << ","
            << "\"shards\":" << shards << ","
            << "\"seed\":" << bench::bench_seed() << ","
            << "\"identical_results\":" << (identical ? "true" : "false")
            << ","
            << "\"results\":[" << rows << "]}\n";
  return identical ? 0 : 1;
}
