// Pipeline scaling micro-bench: acquisition->accumulation throughput of
// the sharded combined CPA+TVLA campaign versus worker count, per-kernel
// scalar-vs-SIMD ingest throughput, a head-to-head of the legacy
// per-record ingest path against the columnar TraceBatch path,
// and a record-then-replay stage for the PSTR trace store (out-of-core
// replay vs re-simulating the device), as machine-readable JSON so
// successive commits have a perf trajectory to compare against. The JSON
// object is printed to stdout and written to BENCH_pipeline_scaling.json
// (override with PSC_BENCH_JSON); the recorded store is left at
// PSC_BENCH_PSTR (default BENCH_sample.pstr) as a CI artifact.
//
// The shard count is pinned (default 8) while workers vary, so every run
// must produce bit-identical campaign results — the bench cross-checks
// that (`identical_results`) while measuring wall-clock traces/sec. The
// ingest comparison feeds the same live source through both paths and
// requires (a) bit-identical engine state and (b) batch throughput at
// least PSC_INGEST_MIN_RATIO times the legacy throughput (default 0.95).
// The store stage requires the replayed engine to be bit-identical to
// the engine that accumulated during recording, and replay throughput at
// least PSC_REPLAY_MIN_RATIO times the live-regeneration throughput
// (default 1.0 — reading back must not be slower than re-simulating).
// Any failure exits non-zero so CI smoke runs catch regressions.
//
// The store_v2 stage gates the compressed format: a synthetic
// quantized-sensor dataset (PSC_STORE_V2_CHANNELS rails through the
// measurement path's noise + quantizer + float32 truncation) is written
// as both v1 and v2; the v2 file must shrink bytes/trace by at least
// PSC_STORE_V2_MIN_RATIO (default 2.0) and its compressed replay —
// decode-ahead prefetch included — must reach PSC_STORE_V2_MIN_TPS_RATIO
// (default 0.8) times the uncompressed mmap replay, with bit-identical
// engines. The stage also compacts the live recording into the
// PSC_BENCH_PSTR_V2 artifact (default BENCH_sample_v2.pstr), checks the
// compacted replay bit-identical to the v1 replay, and reports — without
// gating — the ratios real recorded data achieves.
//
// The bus stage serves that v2 artifact from an in-process psc::bus
// daemon and measures aggregate campaign throughput for 1/2/4 concurrent
// clients, each submitting a full-dataset CPA job over the shared
// mapping (jobs pinned to sequential in-job execution, so the number
// isolates cross-job concurrency). One served result is cross-checked
// bit-identical against run_cpa_job invoked directly; the 4-client
// aggregate must reach PSC_BUS_MIN_SCALING (default 2.0) times the
// single-client aggregate (enforced only with >= 4 hardware threads).
// The daemon's shared decoded-chunk cache is sampled over the whole
// stage: total decodes must not exceed the dataset's chunk count
// (decode-once) and the hit rate must reach PSC_BUS_MIN_CACHE_HIT
// (default 0.5). A separate job-parallel stage runs ONE large CPA job
// with its shard units fanned out on the worker pool — budget 4 versus
// the sequential baseline, bit-identical by construction and checked —
// and requires PSC_BUS_JOB_MIN_SCALING (default 2.0) speedup, again
// only with >= 4 hardware threads.
//
// The worker sweep runs the *combined* CPA+TVLA campaign (one
// acquisition, every analysis) on the persistent worker pool, 1/2/4/8
// workers at a pinned shard count, and enforces a scaling gate: workers=4
// must reach PSC_SCALING_MIN_SPEEDUP (default 2.5) times workers=1 —
// enforced only when the machine actually has >= 4 hardware threads,
// recorded as "skipped" (with the measured numbers) otherwise, so the
// gate cannot fail spuriously on small CI runners. A SIMD stage times the
// ingest kernels (moment stripes, byte histogram) per available backend
// against the forced-scalar fallback and requires the best backend to
// reach PSC_SIMD_MIN_RATIO (default 1.5) times scalar — skipped when
// only the scalar backend exists (e.g. -DPSC_FORCE_SCALAR=ON builds).
//
//   ./bench_pipeline_scaling
//   PSC_TRACES=N            trace count per campaign      (default 200000)
//   PSC_SHARDS=N            pinned shard count            (default 8)
//   PSC_MAX_WORKERS=N       highest worker count measured (default 8)
//   PSC_SCALING_MIN_SPEEDUP=R  min workers=4/workers=1    (default 2.5)
//   PSC_INGEST_TRACES=N     ingest comparison trace count (default 60000)
//   PSC_INGEST_REPS=N       timing reps, best-of (default 3)
//   PSC_INGEST_MIN_RATIO=R  minimum batch/legacy ratio    (default 0.95)
//   PSC_SIMD_MIN_RATIO=R    minimum best-backend/scalar   (default 1.5)
//   PSC_STORE_TRACES=N      record/replay trace count     (default 60000)
//   PSC_REPLAY_MIN_RATIO=R  minimum replay/live ratio     (default 1.0)
//   PSC_BENCH_PSTR=PATH     recorded store artifact path
//   PSC_STORE_V2_TRACES=N   synthetic v1-vs-v2 trace count (default 60000)
//   PSC_STORE_V2_CHANNELS=N synthetic sensor rail count    (default 16)
//   PSC_STORE_V2_MIN_RATIO=R     minimum v1/v2 bytes-per-trace  (default 2.0)
//   PSC_STORE_V2_MIN_TPS_RATIO=R minimum v2/v1 replay tps       (default 0.8)
//   PSC_BENCH_PSTR_V2=PATH  compacted v2 store artifact path
//   PSC_BUS_MIN_SCALING=R   minimum 4-client/1-client aggregate (default 2.0)
//   PSC_BUS_MIN_CACHE_HIT=R minimum chunk-cache hit rate        (default 0.5)
//   PSC_BUS_JOB_MIN_SCALING=R  minimum budget-4/sequential single-job
//                              speedup                          (default 2.0)
//   PSC_SEED=N              campaign seed
//   PSC_BENCH_JSON=PATH     trajectory file path
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bus/client.h"
#include "bus/daemon.h"
#include "bus/jobs.h"
#include "core/campaigns.h"
#include "core/parallel.h"
#include "power/noise.h"
#include "store/file_trace_source.h"
#include "store/shared_mapping.h"
#include "store/trace_file_writer.h"
#include "util/aligned.h"
#include "util/csv.h"
#include "util/simd.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// True when both engines hold bit-identical accumulator state, judged by
// every guess correlation of every key byte.
bool engines_identical(const psc::core::CpaEngine& a,
                       const psc::core::CpaEngine& b) {
  for (std::size_t i = 0; i < 16; ++i) {
    const psc::core::ByteRanking ra =
        a.analyze_byte(psc::power::PowerModel::rd0_hw, i);
    const psc::core::ByteRanking rb =
        b.analyze_byte(psc::power::PowerModel::rd0_hw, i);
    for (std::size_t g = 0; g < 256; ++g) {
      if (ra.correlation[g] != rb.correlation[g]) {
        return false;
      }
    }
  }
  return true;
}

// One timed acquire->accumulate pass over any source in 1024-row batches,
// optionally teeing every batch to a store writer. Returns traces/sec.
// With `replay` set the source returns recorded plaintexts and would
// discard staged ones, so the timed loop skips the random staging — the
// replay number measures pure out-of-core decode, not wasted RNG work.
double time_accumulate(psc::core::TraceSource& source,
                       psc::util::Xoshiro256& rng,
                       psc::core::CpaEngine& engine,
                       std::size_t traces, std::size_t column,
                       psc::store::TraceFileWriter* writer = nullptr,
                       bool replay = false) {
  constexpr std::size_t batch_rows = 1024;
  psc::core::TraceBatch batch(source.keys().size());
  batch.reserve(batch_rows);
  const auto start = std::chrono::steady_clock::now();
  std::size_t produced = 0;
  while (produced < traces) {
    const std::size_t chunk = std::min(batch_rows, traces - produced);
    if (replay) {
      batch.clear();
      batch.resize(chunk);
      source.collect_batch(batch);
    } else {
      psc::core::collect_random_batch(source, chunk, rng, batch);
    }
    if (writer != nullptr) {
      writer->append(batch);
    }
    engine.add_batch(batch, column);
    produced += chunk;
  }
  return static_cast<double>(traces) / seconds_since(start);
}

}  // namespace

int main() {
  using namespace psc;

  const std::size_t traces = util::env_size("PSC_TRACES", 200'000);
  const std::size_t shards = util::env_size("PSC_SHARDS", 8);
  const std::size_t max_workers = util::env_size("PSC_MAX_WORKERS", 8);
  const std::size_t ingest_traces =
      util::env_size("PSC_INGEST_TRACES", 60'000);
  const double min_ratio = util::env_double("PSC_INGEST_MIN_RATIO", 0.95);

  // ---- ingest throughput: legacy per-record loop vs columnar batches ----
  //
  // Same live source configuration and seeds, so both paths see the same
  // trace stream; the engines must end bit-identical while the columnar
  // path avoids the per-trace TraceRecord allocation and virtual call.
  const core::LiveSourceConfig live_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
  };
  util::Xoshiro256 key_rng(bench::bench_seed());
  aes::Block victim_key;
  key_rng.fill_bytes(victim_key);
  const std::vector<power::PowerModel> ingest_models = {
      power::PowerModel::rd0_hw};

  // Best-of-N timing, reps alternating between the paths, so a transient
  // stall (noisy CI neighbor, page cache warm-up) on one rep cannot fail
  // the throughput gate.
  const std::size_t ingest_reps = util::env_size("PSC_INGEST_REPS", 3);
  double legacy_tps = 0.0;
  double batch_tps = 0.0;
  bool ingest_identical = true;
  {
    std::vector<util::FourCc> channel_probe =
        core::LiveTraceSource::channel_names(live_config);
    const std::size_t column = static_cast<std::size_t>(
        std::find(channel_probe.begin(), channel_probe.end(),
                  util::FourCc("PHPC")) -
        channel_probe.begin());

    for (std::size_t rep = 0; rep < ingest_reps; ++rep) {
      core::LiveTraceSource source(live_config, victim_key, 1);
      util::Xoshiro256 pt_rng(2);
      core::CpaEngine engine(ingest_models);
      aes::Block pt;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t t = 0; t < ingest_traces; ++t) {
        pt_rng.fill_bytes(pt);
        const core::TraceRecord record = source.collect(pt);
        engine.add_trace(record.plaintext, record.ciphertext,
                         record.values[column]);
      }
      legacy_tps = std::max(
          legacy_tps, static_cast<double>(ingest_traces) /
                          seconds_since(start));

      core::LiveTraceSource batch_source(live_config, victim_key, 1);
      util::Xoshiro256 batch_pt_rng(2);
      core::CpaEngine batch_engine(ingest_models);
      batch_tps = std::max(
          batch_tps, time_accumulate(batch_source, batch_pt_rng,
                                     batch_engine, ingest_traces, column));

      // Cross-check: the two paths must accumulate bit-identical state.
      ingest_identical =
          ingest_identical && engines_identical(engine, batch_engine);
    }
  }
  const double ingest_ratio = legacy_tps > 0.0 ? batch_tps / legacy_tps : 0.0;
  std::cerr << "ingest: legacy " << legacy_tps << " traces/s, batch "
            << batch_tps << " traces/s (ratio " << ingest_ratio << ", "
            << (ingest_identical ? "bit-identical" : "MISMATCH") << ")\n";

  // ---- store: record-then-replay vs synthetic regeneration ----
  //
  // One live pass records a PSTR store while a CPA engine accumulates
  // (the capture-once half); then the same stream is obtained two ways —
  // replayed out-of-core from the file, and regenerated by re-simulating
  // the device with the same seeds — and fed to fresh engines. Replay
  // must be bit-identical to the recording pass and at least
  // PSC_REPLAY_MIN_RATIO times the regeneration throughput.
  const std::size_t store_traces = util::env_size("PSC_STORE_TRACES", 60'000);
  const std::string pstr_path =
      util::env_string("PSC_BENCH_PSTR", "BENCH_sample.pstr");
  const double replay_min_ratio = util::env_double("PSC_REPLAY_MIN_RATIO", 1.0);
  double record_tps = 0.0;
  double replay_tps = 0.0;
  double regen_tps = 0.0;
  std::size_t store_bytes = 0;
  bool replay_identical = true;
  {
    const std::vector<util::FourCc> channels =
        core::LiveTraceSource::channel_names(live_config);
    const std::size_t column = static_cast<std::size_t>(
        std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
        channels.begin());

    // Record: acquisition teed to disk while the engine accumulates.
    core::CpaEngine recorded_engine(ingest_models);
    {
      core::LiveTraceSource source(live_config, victim_key, 5);
      util::Xoshiro256 pt_rng(6);
      store::TraceFileWriter writer(
          pstr_path,
          {.channels = channels,
           .metadata = store::device_metadata(live_config.profile.name,
                                              live_config.profile.os_version)});
      record_tps = time_accumulate(source, pt_rng, recorded_engine,
                                   store_traces, column, &writer);
      writer.finalize();
    }

    // Synthetic regeneration baseline: the same stream re-simulated.
    {
      core::LiveTraceSource source(live_config, victim_key, 5);
      util::Xoshiro256 pt_rng(6);
      core::CpaEngine engine(ingest_models);
      regen_tps = time_accumulate(source, pt_rng, engine, store_traces,
                                  column);
    }

    // Out-of-core replay from the recorded store.
    {
      store::FileTraceSource replay(pstr_path);
      store_bytes = replay.reader().file_bytes();
      util::Xoshiro256 unused_rng(0);
      core::CpaEngine engine(ingest_models);
      replay_tps = time_accumulate(replay, unused_rng, engine, store_traces,
                                   column, nullptr, /*replay=*/true);
      replay_identical = engines_identical(recorded_engine, engine);
    }
  }
  const double replay_ratio = regen_tps > 0.0 ? replay_tps / regen_tps : 0.0;
  std::cerr << "store: record " << record_tps << " traces/s, replay "
            << replay_tps << " traces/s, regenerate " << regen_tps
            << " traces/s (replay/regen " << replay_ratio << ", "
            << (replay_identical ? "bit-identical" : "MISMATCH") << ", "
            << store_bytes << " bytes on disk)\n";

  // ---- store v2: compressed codecs + prefetch vs uncompressed mmap ----
  //
  // The gated dataset is synthetic and shaped like the quantized sensor
  // columns the codec targets: PSC_STORE_V2_CHANNELS rails, each a slow
  // random walk pushed through power::GaussianNoise, power::Quantizer and
  // the SMC client's float32 truncation (victim/fast_trace.cpp). Both a
  // v1 and a v2 file of the same stream are written; the v2 file must
  // shrink bytes/trace by >= PSC_STORE_V2_MIN_RATIO and its compressed
  // replay (prefetch on, the default) must hold >=
  // PSC_STORE_V2_MIN_TPS_RATIO of the uncompressed mmap replay while the
  // replayed engines stay bit-identical. The live recording from the
  // store stage above is then compacted into the PSC_BENCH_PSTR_V2
  // artifact and cross-checked the same way, with its ratios reported
  // but not gated (real captures carry fewer channels per byte of AES
  // framing than the sensor-heavy synthetic set).
  const std::size_t v2_traces = util::env_size("PSC_STORE_V2_TRACES", 60'000);
  const std::size_t v2_channels = util::env_size("PSC_STORE_V2_CHANNELS", 16);
  const double v2_min_ratio = util::env_double("PSC_STORE_V2_MIN_RATIO", 2.0);
  const double v2_min_tps_ratio =
      util::env_double("PSC_STORE_V2_MIN_TPS_RATIO", 0.8);
  const std::string pstr_v2_path =
      util::env_string("PSC_BENCH_PSTR_V2", "BENCH_sample_v2.pstr");
  std::size_t v2_ref_bytes = 0;   // synthetic stream as v1
  std::size_t v2_cmp_bytes = 0;   // same stream as v2
  double v1_replay_tps = 0.0;
  double v2_replay_tps = 0.0;
  std::size_t v2_async_decodes = 0;
  bool v2_identical = true;
  std::size_t sample_v1_bytes = 0;
  std::size_t sample_v2_bytes = 0;
  double sample_chan_ratio = 0.0;
  bool sample_identical = true;
  {
    std::vector<util::FourCc> channels;
    for (std::size_t c = 0; c < v2_channels; ++c) {
      char name[5];
      std::snprintf(name, sizeof(name), "QT%02u",
                    static_cast<unsigned>(c % 100));
      channels.push_back(util::FourCc(name));
    }
    const std::string ref_path = "BENCH_store_v2_ref.pstr";
    const std::string cmp_path = "BENCH_store_v2_cmp.pstr";
    {
      store::TraceFileWriter ref_writer(ref_path, {.channels = channels});
      store::TraceFileWriter cmp_writer(
          cmp_path, {.channels = channels,
                     .channel_codecs = store::uniform_channel_codecs(
                         channels.size(), store::ColumnCodec::delta_bitpack)});
      util::Xoshiro256 rng(bench::bench_seed() + 23);
      const power::GaussianNoise noise(250e-6);  // ~250 quantization steps
      const power::Quantizer quant(1e-6);        // uW-resolution sensor
      std::vector<double> levels(channels.size(), 4.0);
      core::TraceBatch batch(channels.size());
      std::size_t produced = 0;
      while (produced < v2_traces) {
        const std::size_t n = std::min<std::size_t>(1024, v2_traces - produced);
        batch.clear();
        batch.resize(n);
        for (auto& pt : batch.plaintexts()) {
          rng.fill_bytes(pt);
        }
        for (auto& ct : batch.ciphertexts()) {
          rng.fill_bytes(ct);
        }
        for (std::size_t c = 0; c < channels.size(); ++c) {
          auto column = batch.column(c);
          for (std::size_t r = 0; r < n; ++r) {
            levels[c] += rng.gaussian(0.0, 10e-6);  // slow baseline drift
            column[r] = static_cast<double>(static_cast<float>(
                quant.apply(noise.apply(levels[c], rng))));
          }
        }
        ref_writer.append(batch);
        cmp_writer.append(batch);
        produced += n;
      }
      ref_writer.finalize();
      cmp_writer.finalize();
    }
    v2_ref_bytes = store::TraceFileReader(ref_path).file_bytes();
    v2_cmp_bytes = store::TraceFileReader(cmp_path).file_bytes();

    // Replay throughput, best of 3 alternating reps; the engines of every
    // rep must match bit-for-bit (column 0 — any rail works, they are
    // statistically identical).
    for (int rep = 0; rep < 3; ++rep) {
      core::CpaEngine ref_engine(ingest_models);
      core::CpaEngine cmp_engine(ingest_models);
      {
        store::FileTraceSource replay(ref_path);
        util::Xoshiro256 unused_rng(0);
        v1_replay_tps = std::max(
            v1_replay_tps, time_accumulate(replay, unused_rng, ref_engine,
                                           v2_traces, 0, nullptr, true));
      }
      {
        store::FileTraceSource replay(cmp_path);
        util::Xoshiro256 unused_rng(0);
        v2_replay_tps = std::max(
            v2_replay_tps, time_accumulate(replay, unused_rng, cmp_engine,
                                           v2_traces, 0, nullptr, true));
        v2_async_decodes = replay.async_completions();
      }
      v2_identical = v2_identical && engines_identical(ref_engine, cmp_engine);
    }
    std::remove(ref_path.c_str());
    std::remove(cmp_path.c_str());

    // Compact the live recording into the v2 CI artifact and cross-check
    // its replay against the v1 replay.
    {
      store::TraceFileReader src(pstr_path);
      store::TraceFileWriter compact(
          pstr_v2_path,
          {.channels = src.channels(),
           .chunk_capacity = src.chunk_capacity(),
           .metadata = src.metadata(),
           .channel_codecs = store::uniform_channel_codecs(
               src.channels().size(), store::ColumnCodec::delta_bitpack)});
      core::TraceBatch batch(src.channels().size());
      for (std::size_t i = 0; i < src.chunk_count(); ++i) {
        batch.clear();
        src.chunk(i).append_to(batch);
        compact.append(batch);
      }
      compact.finalize();
      sample_v1_bytes = src.file_bytes();
      sample_chan_ratio =
          compact.channel_stored_bytes() > 0
              ? static_cast<double>(compact.channel_raw_bytes()) /
                    static_cast<double>(compact.channel_stored_bytes())
              : 0.0;
    }
    sample_v2_bytes = store::TraceFileReader(pstr_v2_path).file_bytes();
    {
      const std::vector<util::FourCc> channels =
          core::LiveTraceSource::channel_names(live_config);
      const std::size_t column = static_cast<std::size_t>(
          std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
          channels.begin());
      core::CpaEngine v1_engine(ingest_models);
      core::CpaEngine v2_engine(ingest_models);
      util::Xoshiro256 unused_rng(0);
      store::FileTraceSource v1_replay(pstr_path);
      time_accumulate(v1_replay, unused_rng, v1_engine, store_traces, column,
                      nullptr, true);
      store::FileTraceSource v2_replay(pstr_v2_path);
      time_accumulate(v2_replay, unused_rng, v2_engine, store_traces, column,
                      nullptr, true);
      sample_identical = engines_identical(v1_engine, v2_engine);
    }
  }
  const double v2_ratio =
      v2_cmp_bytes > 0
          ? static_cast<double>(v2_ref_bytes) / static_cast<double>(v2_cmp_bytes)
          : 0.0;
  const double v2_tps_ratio =
      v1_replay_tps > 0.0 ? v2_replay_tps / v1_replay_tps : 0.0;
  const double sample_file_ratio =
      sample_v2_bytes > 0 ? static_cast<double>(sample_v1_bytes) /
                                static_cast<double>(sample_v2_bytes)
                          : 0.0;
  std::cerr << "store_v2: " << v2_ref_bytes << " -> " << v2_cmp_bytes
            << " bytes (" << v2_ratio << "x), replay v1 " << v1_replay_tps
            << " traces/s, v2 " << v2_replay_tps << " traces/s (ratio "
            << v2_tps_ratio << ", " << v2_async_decodes
            << " async decodes, "
            << (v2_identical ? "bit-identical" : "MISMATCH")
            << "); sample " << sample_v1_bytes << " -> " << sample_v2_bytes
            << " bytes (" << sample_file_ratio << "x file, "
            << sample_chan_ratio << "x channels, "
            << (sample_identical ? "bit-identical" : "MISMATCH") << ")\n";

  // ---- bus: daemon-served campaigns vs concurrent client count ----
  //
  // An in-process BusDaemon serves the compacted v2 artifact over a unix
  // socket; 1, 2 and 4 concurrent clients each submit one full-dataset
  // CPA campaign and the aggregate traces/sec is measured per client
  // count. shard_parallelism is pinned to 1 — each job runs its shards
  // sequentially — so this number isolates cross-job concurrency on the
  // shared mapping; in-job shard scaling is measured by the job-parallel
  // stage below. The gate requires the 4-client aggregate to reach
  // PSC_BUS_MIN_SCALING (default 2.0) times the single-client aggregate,
  // enforced only with >= 4 hardware threads; one served result is also
  // cross-checked bit-for-bit against run_cpa_job invoked directly on
  // the same file. The daemon's decoded-chunk cache is sampled across
  // the whole stage (8 jobs over one compressed dataset): decodes must
  // not exceed the chunk count and the hit rate must reach
  // PSC_BUS_MIN_CACHE_HIT.
  const double bus_min_scaling = util::env_double("PSC_BUS_MIN_SCALING", 2.0);
  const double bus_min_cache_hit =
      util::env_double("PSC_BUS_MIN_CACHE_HIT", 0.5);
  double bus_tps_1 = 0.0;
  double bus_tps_2 = 0.0;
  double bus_tps_4 = 0.0;
  bool bus_identical = true;
  bool bus_clients_ok = true;
  std::size_t bus_chunks = 0;
  bus::StatsMsg bus_stats;
  {
    bus::BusDaemonConfig bus_config;
    bus_config.socket_path =
        "/tmp/psc_bus_bench_" + std::to_string(::getpid()) + ".sock";
    bus_config.per_session_quota = 2;
    bus_config.pool_reserve = 4;
    // Sequential in-job execution: the stage measures job-level
    // concurrency, and a single client must not occupy the whole pool.
    bus_config.shard_parallelism = 1;
    bus_config.datasets = {{"bench", pstr_v2_path}};
    bus::BusDaemon daemon(bus_config);
    daemon.start();
    bus_chunks = store::TraceFileReader(pstr_v2_path).chunk_count();

    bus::CpaJobSpec spec;
    spec.channel = util::FourCc("PHPC").code();
    spec.known_key = victim_key;
    spec.models = {power::PowerModel::rd0_hw};
    spec.shards = 4;

    // Warm-up pass doubling as the correctness check: the daemon-served
    // result must be bit-identical to the same job run in-process.
    {
      bus::BusClient client(bus_config.socket_path);
      const std::uint64_t id = client.submit_cpa("bench", spec);
      client.watch(id);
      const bus::CpaJobResult served = client.cpa_result(id);
      const bus::CpaJobResult local =
          bus::run_cpa_job(store::SharedMapping::open(pstr_v2_path), spec);
      const auto bits = [](double v) {
        return std::bit_cast<std::uint64_t>(v);
      };
      bus_identical = served.traces == local.traces &&
                      served.models.size() == local.models.size();
      for (std::size_t m = 0; bus_identical && m < served.models.size(); ++m) {
        const core::ModelResult& sm = served.models[m];
        const core::ModelResult& lm = local.models[m];
        bus_identical = bits(sm.ge_bits) == bits(lm.ge_bits) &&
                        sm.true_ranks == lm.true_ranks &&
                        sm.scored_key == lm.scored_key;
        for (std::size_t b = 0; bus_identical && b < 16; ++b) {
          for (std::size_t g = 0; g < 256; ++g) {
            if (bits(sm.bytes[b].correlation[g]) !=
                bits(lm.bytes[b].correlation[g])) {
              bus_identical = false;
              break;
            }
          }
        }
      }
    }

    const auto run_clients = [&](std::size_t n) {
      std::atomic<bool> ok{true};
      std::vector<std::thread> clients;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t c = 0; c < n; ++c) {
        clients.emplace_back([&] {
          try {
            bus::BusClient client(bus_config.socket_path);
            const std::uint64_t id = client.submit_cpa("bench", spec);
            client.watch(id);
            if (client.cpa_result(id).traces != store_traces) {
              ok.store(false);
            }
          } catch (const std::exception&) {
            ok.store(false);
          }
        });
      }
      for (std::thread& t : clients) {
        t.join();
      }
      const double tps = static_cast<double>(n * store_traces) /
                         seconds_since(start);
      bus_clients_ok = bus_clients_ok && ok.load();
      return tps;
    };
    bus_tps_1 = run_clients(1);
    bus_tps_2 = run_clients(2);
    bus_tps_4 = run_clients(4);
    {
      bus::BusClient stats_client(bus_config.socket_path);
      bus_stats = stats_client.stats();
    }
    daemon.stop();
  }
  const double bus_scaling = bus_tps_1 > 0.0 ? bus_tps_4 / bus_tps_1 : 0.0;
  const unsigned bus_hw_threads = std::thread::hardware_concurrency();
  const bool bus_gate_enforced = bus_hw_threads >= 4 && bus_tps_4 > 0.0;
  // Cache verdict over the stage's 8 jobs (1 warm-up + 1 + 2 + 4): the
  // shared cache must have decoded each compressed chunk at most once,
  // with every other access a hit.
  const double bus_cache_hit_rate =
      bus_stats.cache_hits + bus_stats.cache_misses > 0
          ? static_cast<double>(bus_stats.cache_hits) /
                static_cast<double>(bus_stats.cache_hits +
                                    bus_stats.cache_misses)
          : 0.0;
  const bool bus_decode_once = bus_stats.cache_misses <= bus_chunks;
  const bool bus_cache_ok =
      bus_decode_once && bus_cache_hit_rate >= bus_min_cache_hit;
  const bool bus_ok = bus_identical && bus_clients_ok && bus_cache_ok &&
                      (!bus_gate_enforced || bus_scaling >= bus_min_scaling);
  std::cerr << "bus: 1 client " << bus_tps_1 << " traces/s, 2 clients "
            << bus_tps_2 << " traces/s, 4 clients " << bus_tps_4
            << " traces/s aggregate (scaling " << bus_scaling << ", "
            << (bus_identical ? "bit-identical" : "MISMATCH") << "); cache "
            << bus_stats.cache_hits << " hits / " << bus_stats.cache_misses
            << " misses over " << bus_chunks << " chunks (hit rate "
            << bus_cache_hit_rate << ")\n";

  // ---- bus job-parallel: one large job's shard units on the pool ----
  //
  // The same full-dataset CPA spec, run in-process through run_cpa_job:
  // once sequentially (the default exec — also the bit-identity
  // reference) and once with a shard budget of 4, fanning the 8 shard
  // units out on the worker pool with merges in shard order. Best of 2
  // reps each, alternating. The budget-4 run must reach
  // PSC_BUS_JOB_MIN_SCALING times sequential throughput (>= 4 hardware
  // threads only) and match it bit-for-bit.
  const double bus_job_min_scaling =
      util::env_double("PSC_BUS_JOB_MIN_SCALING", 2.0);
  double bus_job_tps_seq = 0.0;
  double bus_job_tps_par = 0.0;
  bool bus_job_identical = true;
  {
    core::WorkerPool::instance().reserve(4);
    const auto mapping = store::SharedMapping::open(pstr_v2_path);
    bus::CpaJobSpec spec;
    spec.channel = util::FourCc("PHPC").code();
    spec.known_key = victim_key;
    spec.models = {power::PowerModel::rd0_hw};
    spec.shards = 8;
    bus::JobExecOptions par_exec;
    par_exec.shard_budget = [] { return std::uint32_t{4}; };

    const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
    for (int rep = 0; rep < 2; ++rep) {
      auto start = std::chrono::steady_clock::now();
      const bus::CpaJobResult seq = bus::run_cpa_job(mapping, spec);
      bus_job_tps_seq =
          std::max(bus_job_tps_seq, static_cast<double>(seq.traces) /
                                        seconds_since(start));

      start = std::chrono::steady_clock::now();
      const bus::CpaJobResult par =
          bus::run_cpa_job(mapping, spec, {}, par_exec);
      bus_job_tps_par =
          std::max(bus_job_tps_par, static_cast<double>(par.traces) /
                                        seconds_since(start));

      for (std::size_t b = 0; bus_job_identical && b < 16; ++b) {
        for (std::size_t g = 0; g < 256; ++g) {
          if (bits(seq.models[0].bytes[b].correlation[g]) !=
              bits(par.models[0].bytes[b].correlation[g])) {
            bus_job_identical = false;
            break;
          }
        }
      }
    }
  }
  const double bus_job_scaling =
      bus_job_tps_seq > 0.0 ? bus_job_tps_par / bus_job_tps_seq : 0.0;
  const bool bus_job_gate_enforced =
      bus_hw_threads >= 4 && bus_job_tps_par > 0.0;
  const bool bus_job_ok =
      bus_job_identical &&
      (!bus_job_gate_enforced || bus_job_scaling >= bus_job_min_scaling);
  std::cerr << "bus job-parallel: sequential " << bus_job_tps_seq
            << " traces/s, budget-4 " << bus_job_tps_par
            << " traces/s (speedup " << bus_job_scaling << ", "
            << (bus_job_identical ? "bit-identical" : "MISMATCH") << ")\n";

  // ---- SIMD ingest kernels: each available backend vs forced scalar ----
  //
  // Times the two dispatched kernels the engines ingest through — the
  // striped moment accumulator and the 16-position byte histogram — on a
  // cache-resident working set, once per supported backend, against the
  // forced-scalar fallback built from the same sources. Each backend's
  // accumulator state must stay bit-identical to scalar (the same
  // contract the unit tests enforce, re-checked here on the bench's own
  // stream). The gate requires the best vector backend to reach
  // PSC_SIMD_MIN_RATIO times scalar on at least one kernel, and is
  // skipped when only the scalar backend exists (PSC_FORCE_SCALAR builds
  // or unsupported hardware).
  const double simd_min_ratio = util::env_double("PSC_SIMD_MIN_RATIO", 1.5);
  const std::size_t simd_values = util::env_size("PSC_SIMD_VALUES", 16'000'000);
  constexpr std::size_t simd_block = 4096;  // 32 KiB of doubles: L1-resident
  const std::size_t simd_rep_count =
      std::max<std::size_t>(1, simd_values / simd_block);

  struct SimdRow {
    util::simd::Backend backend;
    double moments_vps = 0.0;  // moment-stripe values/sec
    double hist_tps = 0.0;     // histogram traces/sec (16 bytes + 1 value)
    bool bit_identical = true;
  };
  std::vector<SimdRow> simd_rows;
  {
    util::AlignedVector<double> values(simd_block);
    std::vector<std::uint8_t> blocks(simd_block * 16);
    util::Xoshiro256 simd_rng(bench::bench_seed() + 17);
    for (double& v : values) {
      v = simd_rng.gaussian();
    }
    simd_rng.fill_bytes(blocks);

    // Scalar reference state for the bit-identity cross-check.
    util::simd::MomentStripes ref_moments;
    util::AlignedVector<std::uint32_t> ref_count(16 * 256, 0);
    util::AlignedVector<double> ref_sum(16 * 256, 0.0);
    util::simd::force_backend(util::simd::Backend::scalar);
    util::simd::accumulate_moments(values.data(), simd_block, 0, ref_moments);
    util::simd::accumulate_histogram16(blocks.data(), values.data(),
                                       simd_block, ref_count.data(),
                                       ref_sum.data());

    for (const util::simd::Backend backend : util::simd::supported_backends()) {
      util::simd::force_backend(backend);
      SimdRow row{.backend = backend};

      // Correctness first: one pass over the same stream, compared
      // element-wise against the scalar reference.
      util::simd::MomentStripes moments;
      util::AlignedVector<std::uint32_t> count(16 * 256, 0);
      util::AlignedVector<double> sum(16 * 256, 0.0);
      util::simd::accumulate_moments(values.data(), simd_block, 0, moments);
      util::simd::accumulate_histogram16(blocks.data(), values.data(),
                                         simd_block, count.data(), sum.data());
      row.bit_identical = moments.sum == ref_moments.sum &&
                          moments.sumsq == ref_moments.sumsq &&
                          std::equal(count.begin(), count.end(),
                                     ref_count.begin()) &&
                          std::equal(sum.begin(), sum.end(), ref_sum.begin());

      // Throughput, best of 3 timed passes per kernel.
      for (int rep = 0; rep < 3; ++rep) {
        util::simd::MomentStripes timed;
        std::uint64_t g = 0;
        auto start = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < simd_rep_count; ++r) {
          util::simd::accumulate_moments(values.data(), simd_block, g, timed);
          g += simd_block;
        }
        row.moments_vps = std::max(
            row.moments_vps,
            static_cast<double>(simd_rep_count * simd_block) /
                seconds_since(start));

        std::fill(count.begin(), count.end(), 0u);
        std::fill(sum.begin(), sum.end(), 0.0);
        start = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < simd_rep_count; ++r) {
          util::simd::accumulate_histogram16(blocks.data(), values.data(),
                                             simd_block, count.data(),
                                             sum.data());
        }
        row.hist_tps = std::max(
            row.hist_tps, static_cast<double>(simd_rep_count * simd_block) /
                              seconds_since(start));
      }
      simd_rows.push_back(row);
      std::cerr << "simd[" << util::simd::backend_name(backend)
                << "]: moments " << row.moments_vps << " values/s, hist "
                << row.hist_tps << " traces/s"
                << (row.bit_identical ? "" : " MISMATCH") << "\n";
    }
    util::simd::reset_backend();
  }
  const std::string simd_active(
      util::simd::backend_name(util::simd::active_backend()));
  double scalar_moments_vps = 0.0;
  double scalar_hist_tps = 0.0;
  for (const SimdRow& row : simd_rows) {
    if (row.backend == util::simd::Backend::scalar) {
      scalar_moments_vps = row.moments_vps;
      scalar_hist_tps = row.hist_tps;
    }
  }
  bool simd_identical = true;
  double simd_best_ratio = 0.0;
  for (const SimdRow& row : simd_rows) {
    simd_identical = simd_identical && row.bit_identical;
    if (row.backend == util::simd::Backend::scalar) {
      continue;
    }
    if (scalar_moments_vps > 0.0) {
      simd_best_ratio =
          std::max(simd_best_ratio, row.moments_vps / scalar_moments_vps);
    }
    if (scalar_hist_tps > 0.0) {
      simd_best_ratio =
          std::max(simd_best_ratio, row.hist_tps / scalar_hist_tps);
    }
  }
  const bool simd_gate_enforced = simd_rows.size() > 1;
  const bool simd_ok =
      simd_identical &&
      (!simd_gate_enforced || simd_best_ratio >= simd_min_ratio);

  // ---- combined CPA+TVLA campaign scaling vs worker count ----
  //
  // The combined campaign — one acquisition fanned to TVLA, CPA and GE
  // sinks — is the heaviest per-batch pipeline, so its scaling is what
  // the worker-pool gate measures. traces_per_set is sized so the six
  // labeled sets total PSC_TRACES acquired traces.
  const std::size_t traces_per_set = std::max<std::size_t>(1, traces / 6);
  const std::size_t total_traces = 6 * traces_per_set;
  core::CombinedCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = traces_per_set,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = bench::bench_seed(),
      .workers = 1,
      .shards = shards,
  };

  std::vector<std::size_t> worker_counts;
  for (std::size_t w = 1; w <= max_workers; w *= 2) {
    worker_counts.push_back(w);
  }

  bool identical = true;
  double reference_ge = 0.0;
  std::array<int, 16> reference_ranks{};
  std::vector<core::TvlaMatrix> reference_tvla;
  double tps_at_1 = 0.0;
  double tps_at_4 = 0.0;
  std::string rows;
  for (std::size_t i = 0; i < worker_counts.size(); ++i) {
    config.workers = worker_counts[i];
    const auto start = std::chrono::steady_clock::now();
    const auto result = run_combined_campaign(config);
    const double seconds = seconds_since(start);
    const double tps = static_cast<double>(total_traces) / seconds;
    const auto& final = result.cpa[0].final_results[0];
    if (i == 0) {
      reference_ge = final.ge_bits;
      reference_ranks = final.true_ranks;
      for (const auto& channel : result.tvla) {
        reference_tvla.push_back(channel.matrix);
      }
    } else {
      if (final.ge_bits != reference_ge ||
          final.true_ranks != reference_ranks ||
          result.tvla.size() != reference_tvla.size()) {
        identical = false;
      } else {
        for (std::size_t c = 0; c < reference_tvla.size(); ++c) {
          if (result.tvla[c].matrix.t != reference_tvla[c].t) {
            identical = false;
          }
        }
      }
    }
    if (config.workers == 1) {
      tps_at_1 = tps;
    } else if (config.workers == 4) {
      tps_at_4 = tps;
    }
    if (!rows.empty()) {
      rows += ",";
    }
    rows += "{\"workers\":" + std::to_string(config.workers) +
            ",\"seconds\":" + util::format_double(seconds) +
            ",\"traces_per_sec\":" + util::format_double(tps) +
            ",\"ge_bits\":" + util::format_double(final.ge_bits) + "}";
    std::cerr << "workers=" << config.workers << " " << seconds << "s ("
              << tps << " traces/s)\n";
  }

  // Scaling gate: workers=4 must beat workers=1 by min_speedup — but only
  // on machines that actually have >= 4 hardware threads; a 1- or 2-core
  // CI runner records the measured numbers with the gate marked skipped
  // instead of failing on physics.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const double min_speedup =
      util::env_double("PSC_SCALING_MIN_SPEEDUP", 2.5);
  const double speedup_at_4 = tps_at_1 > 0.0 ? tps_at_4 / tps_at_1 : 0.0;
  const bool scaling_gate_enforced = hw_threads >= 4 && tps_at_4 > 0.0;
  const bool scaling_ok =
      !scaling_gate_enforced || speedup_at_4 >= min_speedup;

  const bool ingest_ok = ingest_identical && ingest_ratio >= min_ratio;
  if (!ingest_ok) {
    std::cerr << "FAIL: columnar ingest "
              << (ingest_identical ? "below required throughput ratio "
                                   : "state mismatch ")
              << "(ratio " << ingest_ratio << ", required " << min_ratio
              << ")\n";
  }
  const bool store_ok = replay_identical && replay_ratio >= replay_min_ratio;
  if (!store_ok) {
    std::cerr << "FAIL: PSTR replay "
              << (replay_identical ? "below required throughput ratio "
                                   : "state mismatch ")
              << "(ratio " << replay_ratio << ", required "
              << replay_min_ratio << ")\n";
  }
  const bool store_v2_ok = v2_identical && sample_identical &&
                           v2_ratio >= v2_min_ratio &&
                           v2_tps_ratio >= v2_min_tps_ratio;
  if (!store_v2_ok) {
    std::cerr << "FAIL: PSTR v2 ";
    if (!v2_identical || !sample_identical) {
      std::cerr << "replay state mismatch";
    } else if (v2_ratio < v2_min_ratio) {
      std::cerr << "compression ratio " << v2_ratio << " below required "
                << v2_min_ratio;
    } else {
      std::cerr << "compressed replay ratio " << v2_tps_ratio
                << " below required " << v2_min_tps_ratio;
    }
    std::cerr << "\n";
  }
  if (!bus_ok) {
    std::cerr << "FAIL: bus daemon ";
    if (!bus_identical) {
      std::cerr << "served result differs from in-process run";
    } else if (!bus_clients_ok) {
      std::cerr << "client campaign errored";
    } else if (!bus_decode_once) {
      std::cerr << "chunk cache decoded " << bus_stats.cache_misses
                << " times over " << bus_chunks << " chunks";
    } else if (bus_cache_hit_rate < bus_min_cache_hit) {
      std::cerr << "chunk cache hit rate " << bus_cache_hit_rate
                << " below required " << bus_min_cache_hit;
    } else {
      std::cerr << "4-client aggregate scaling " << bus_scaling
                << " below required " << bus_min_scaling;
    }
    std::cerr << "\n";
  }
  if (!bus_job_ok) {
    std::cerr << "FAIL: bus job-parallel "
              << (bus_job_identical ? "speedup " : "result mismatch ")
              << "(speedup " << bus_job_scaling << ", required "
              << bus_job_min_scaling << ")\n";
  }
  if (!simd_ok) {
    std::cerr << "FAIL: SIMD ingest "
              << (simd_identical ? "below required speedup over scalar "
                                 : "state mismatch ")
              << "(best ratio " << simd_best_ratio << ", required "
              << simd_min_ratio << ")\n";
  }
  if (!scaling_ok) {
    std::cerr << "FAIL: combined campaign speedup at 4 workers "
              << speedup_at_4 << " below required " << min_speedup << "\n";
  }

  // One JSON object, to stdout and to the trajectory file; progress went
  // to stderr.
  std::string simd_kernels;
  for (const SimdRow& row : simd_rows) {
    if (!simd_kernels.empty()) {
      simd_kernels += ",";
    }
    simd_kernels +=
        "{\"backend\":\"" +
        std::string(util::simd::backend_name(row.backend)) + "\"," +
        "\"moments_values_per_sec\":" + util::format_double(row.moments_vps) +
        ",\"hist_traces_per_sec\":" + util::format_double(row.hist_tps) +
        ",\"moments_over_scalar\":" +
        util::format_double(scalar_moments_vps > 0.0
                                ? row.moments_vps / scalar_moments_vps
                                : 0.0) +
        ",\"hist_over_scalar\":" +
        util::format_double(
            scalar_hist_tps > 0.0 ? row.hist_tps / scalar_hist_tps : 0.0) +
        ",\"bit_identical\":" + (row.bit_identical ? "true" : "false") + "}";
  }

  const std::string json =
      "{\"bench\":\"pipeline_scaling\","
      "\"device\":\"macbook_air_m2\","
      "\"channel\":\"PHPC\","
      "\"traces\":" + std::to_string(total_traces) + ","
      "\"traces_per_set\":" + std::to_string(traces_per_set) + ","
      "\"shards\":" + std::to_string(shards) + ","
      "\"seed\":" + std::to_string(bench::bench_seed()) + ","
      "\"hw_concurrency\":" + std::to_string(hw_threads) + ","
      "\"identical_results\":" + (identical ? "true" : "false") + ","
      "\"simd\":{"
      "\"active_backend\":\"" + simd_active + "\","
      "\"values\":" + std::to_string(simd_rep_count * simd_block) + ","
      "\"kernels\":[" + simd_kernels + "],"
      "\"best_over_scalar\":" + util::format_double(simd_best_ratio) + ","
      "\"min_ratio\":" + util::format_double(simd_min_ratio) + ","
      "\"gate\":\"" + (simd_gate_enforced ? "enforced" : "skipped") + "\","
      "\"bit_identical\":" + (simd_identical ? "true" : "false") + ","
      "\"ok\":" + (simd_ok ? "true" : "false") + "},"
      "\"scaling\":{"
      "\"speedup_at_4\":" + util::format_double(speedup_at_4) + ","
      "\"min_speedup\":" + util::format_double(min_speedup) + ","
      "\"gate\":\"" + (scaling_gate_enforced ? "enforced" : "skipped") + "\","
      "\"ok\":" + (scaling_ok ? "true" : "false") + "},"
      "\"ingest\":{"
      "\"traces\":" + std::to_string(ingest_traces) + ","
      "\"legacy_traces_per_sec\":" + util::format_double(legacy_tps) + ","
      "\"batch_traces_per_sec\":" + util::format_double(batch_tps) + ","
      "\"batch_over_legacy\":" + util::format_double(ingest_ratio) + ","
      "\"bit_identical\":" + (ingest_identical ? "true" : "false") + "},"
      "\"store\":{"
      "\"traces\":" + std::to_string(store_traces) + ","
      "\"file_bytes\":" + std::to_string(store_bytes) + ","
      "\"record_traces_per_sec\":" + util::format_double(record_tps) + ","
      "\"replay_traces_per_sec\":" + util::format_double(replay_tps) + ","
      "\"regen_traces_per_sec\":" + util::format_double(regen_tps) + ","
      "\"replay_over_regen\":" + util::format_double(replay_ratio) + ","
      "\"bit_identical\":" + (replay_identical ? "true" : "false") + "},"
      "\"store_v2\":{"
      "\"traces\":" + std::to_string(v2_traces) + ","
      "\"channels\":" + std::to_string(v2_channels) + ","
      "\"v1_file_bytes\":" + std::to_string(v2_ref_bytes) + ","
      "\"v2_file_bytes\":" + std::to_string(v2_cmp_bytes) + ","
      "\"bytes_per_trace_v1\":" +
      util::format_double(v2_traces > 0
                              ? static_cast<double>(v2_ref_bytes) /
                                    static_cast<double>(v2_traces)
                              : 0.0) + ","
      "\"bytes_per_trace_v2\":" +
      util::format_double(v2_traces > 0
                              ? static_cast<double>(v2_cmp_bytes) /
                                    static_cast<double>(v2_traces)
                              : 0.0) + ","
      "\"compression_ratio\":" + util::format_double(v2_ratio) + ","
      "\"min_ratio\":" + util::format_double(v2_min_ratio) + ","
      "\"v1_replay_traces_per_sec\":" + util::format_double(v1_replay_tps) + ","
      "\"v2_replay_traces_per_sec\":" + util::format_double(v2_replay_tps) + ","
      "\"replay_ratio\":" + util::format_double(v2_tps_ratio) + ","
      "\"min_replay_ratio\":" + util::format_double(v2_min_tps_ratio) + ","
      "\"async_chunk_decodes\":" + std::to_string(v2_async_decodes) + ","
      "\"bit_identical\":" + (v2_identical ? "true" : "false") + ","
      "\"sample\":{"
      "\"path\":\"" + pstr_v2_path + "\","
      "\"v1_bytes\":" + std::to_string(sample_v1_bytes) + ","
      "\"v2_bytes\":" + std::to_string(sample_v2_bytes) + ","
      "\"file_ratio\":" + util::format_double(sample_file_ratio) + ","
      "\"channel_ratio\":" + util::format_double(sample_chan_ratio) + ","
      "\"bit_identical\":" + (sample_identical ? "true" : "false") + "},"
      "\"ok\":" + (store_v2_ok ? "true" : "false") + "},"
      "\"bus\":{"
      "\"dataset\":\"" + pstr_v2_path + "\","
      "\"traces_per_job\":" + std::to_string(store_traces) + ","
      "\"clients\":["
      "{\"clients\":1,\"aggregate_traces_per_sec\":" +
      util::format_double(bus_tps_1) + "},"
      "{\"clients\":2,\"aggregate_traces_per_sec\":" +
      util::format_double(bus_tps_2) + "},"
      "{\"clients\":4,\"aggregate_traces_per_sec\":" +
      util::format_double(bus_tps_4) + "}],"
      "\"scaling_4_over_1\":" + util::format_double(bus_scaling) + ","
      "\"min_scaling\":" + util::format_double(bus_min_scaling) + ","
      "\"gate\":\"" + (bus_gate_enforced ? "enforced" : "skipped") + "\","
      "\"bit_identical\":" + (bus_identical ? "true" : "false") + ","
      "\"chunk_cache\":{"
      "\"chunks\":" + std::to_string(bus_chunks) + ","
      "\"hits\":" + std::to_string(bus_stats.cache_hits) + ","
      "\"misses\":" + std::to_string(bus_stats.cache_misses) + ","
      "\"evictions\":" + std::to_string(bus_stats.cache_evictions) + ","
      "\"hit_rate\":" + util::format_double(bus_cache_hit_rate) + ","
      "\"min_hit_rate\":" + util::format_double(bus_min_cache_hit) + ","
      "\"decode_once\":" + (bus_decode_once ? "true" : "false") + ","
      "\"ok\":" + (bus_cache_ok ? "true" : "false") + "},"
      "\"job_parallel\":{"
      "\"shards\":8,"
      "\"seq_traces_per_sec\":" + util::format_double(bus_job_tps_seq) + ","
      "\"budget4_traces_per_sec\":" + util::format_double(bus_job_tps_par) + ","
      "\"speedup\":" + util::format_double(bus_job_scaling) + ","
      "\"min_speedup\":" + util::format_double(bus_job_min_scaling) + ","
      "\"gate\":\"" + (bus_job_gate_enforced ? "enforced" : "skipped") + "\","
      "\"bit_identical\":" + (bus_job_identical ? "true" : "false") + ","
      "\"ok\":" + (bus_job_ok ? "true" : "false") + "},"
      "\"ok\":" + (bus_ok ? "true" : "false") + "},"
      "\"results\":[" + rows + "]}";
  std::cout << json << "\n";
  const std::string path =
      util::env_string("PSC_BENCH_JSON", "BENCH_pipeline_scaling.json");
  if (std::ofstream out(path); out) {
    out << json << "\n";
  } else {
    std::cerr << "warning: could not write " << path << "\n";
  }
  return identical && ingest_ok && store_ok && store_v2_ok && bus_ok &&
                 bus_job_ok && simd_ok && scaling_ok
             ? 0
             : 1;
}
