// Table 3: TVLA on the selected SMC keys for the user-space AES victim on
// the MacBook Air M2 (3 P-core replicas, fixed key, 10k traces/class).
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/report.h"

int main() {
  using namespace psc;
  bench::banner("Table 3",
                "TVLA between plaintext classes, user-space AES victim, M2");

  core::TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = bench::scaled(5000),  // 2 sets -> 10k per class
      .include_pcpu = false,
      .seed = bench::bench_seed(),
  };
  bench::apply_parallel_env(config);
  std::cout << "traces per (class, collection): " << config.traces_per_set
            << "  (paper: 10k per class)\n\n";
  const auto result = run_tvla_campaign(config);

  core::tvla_table("measured t-scores", result.channels).render(std::cout);
  std::cout << "\n";
  core::tvla_classification_table("classification (threshold |t| >= 4.5)",
                                  result.channels)
      .render(std::cout);

  std::cout <<
      "\npaper reference (Table 3, selected cells):\n"
      "  PHPC: perfect TP/TN (e.g. All0s' vs All1s = 20.94); the star "
      "channel\n"
      "  PDTR/PMVC/PSTR: mostly TP with several FP/FN\n"
      "  PHPS: no true positives (not data-dependent)\n";
  return 0;
}
