// Figure 1(a): Guessing-Entropy trend against the number of collected
// PHPC traces for the user-space AES victim, M1 Mini and M2 Air, under
// the Rd0-HW / Rd10-HW / Rd10-HD power models.
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/report.h"

int main() {
  using namespace psc;
  bench::banner("Figure 1(a)",
                "GE vs collected PHPC traces, user-space victim, M1 + M2");

  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw,
                                                 power::PowerModel::rd10_hw,
                                                 power::PowerModel::rd10_hd};

  core::CpaCampaignConfig m2_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = bench::scaled(1'000'000),
      .models = models,
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = bench::bench_seed(),
  };
  m2_config.checkpoints =
      core::log_spaced_checkpoints(10000, m2_config.trace_count, 10);
  bench::apply_parallel_env(m2_config);
  std::cout << "M2 campaign: " << m2_config.trace_count << " traces..."
            << std::flush;
  const auto m2 = run_cpa_campaign(m2_config);
  std::cout << " done\n";

  core::CpaCampaignConfig m1_config = m2_config;
  m1_config.profile = soc::DeviceProfile::mac_mini_m1();
  m1_config.trace_count = bench::scaled(350'000);
  m1_config.checkpoints =
      core::log_spaced_checkpoints(10000, m1_config.trace_count, 8);
  m1_config.seed = bench::bench_seed() + 1;
  std::cout << "M1 campaign: " << m1_config.trace_count << " traces..."
            << std::flush;
  const auto m1 = run_cpa_campaign(m1_config);
  std::cout << " done\n\n";

  const auto& m2_curves = m2.keys[0].curves;
  const auto& m1_curves = m1.keys[0].curves;
  std::vector<core::GeCurveSeries> series;
  for (std::size_t m = 0; m < models.size(); ++m) {
    series.push_back({"M2 " + std::string(power_model_name(models[m])),
                      &m2_curves[m]});
  }
  for (std::size_t m = 0; m < models.size(); ++m) {
    series.push_back({"M1 " + std::string(power_model_name(models[m])),
                      &m1_curves[m]});
  }

  std::cout << "CSV series (plot input):\n";
  core::write_ge_curves_csv(std::cout, series);
  std::cout << "\n";
  core::render_ge_curves(std::cout, series);

  std::cout <<
      "\npaper reference (Fig 1a): Rd0-HW converges fastest; Rd10-HW "
      "converges more slowly; Rd10-HD shows little convergence. M2 Rd0-HW "
      "reaches GE ~31 bits at 1M traces; M1 ends at ~41-51 bits at 350k.\n";
  return 0;
}
