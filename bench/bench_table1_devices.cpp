// Table 1: specifications of the tested devices.
#include <iostream>

#include "bench_common.h"
#include "soc/device_profile.h"
#include "util/table.h"

int main() {
  using namespace psc;
  bench::banner("Table 1", "specifications of the tested devices");

  util::TextTable table;
  table.header({"Device", "P-cores", "P max freq (GHz)", "E-cores",
                "E max freq (GHz)", "OS version"});
  for (const auto& profile : {soc::DeviceProfile::mac_mini_m1(),
                              soc::DeviceProfile::macbook_air_m2()}) {
    table.add_row({profile.name, std::to_string(profile.p_core_count),
                   util::fixed(profile.p_ladder.max_frequency_hz() / 1e9, 3),
                   std::to_string(profile.e_core_count),
                   util::fixed(profile.e_ladder.max_frequency_hz() / 1e9, 3),
                   profile.os_version});
  }
  table.render(std::cout);

  std::cout << "\npaper reference: M1 Mini 4P@3.2/4E@2.4 macOS 12.5; "
               "M2 Air 4P@3.5/4E@2.06 macOS 13.0\n";
  bench::note(
      "the paper's Table 1 E-core frequencies (M1: 2.4, M2: 2.06 GHz) "
      "contradict its own section 4, which measures M2 E-cores at "
      "2.424 GHz; our profiles use the section-4-consistent ladders "
      "(M1 E max 2.064, M2 E max 2.424).");
  return 0;
}
