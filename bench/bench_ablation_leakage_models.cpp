// Ablation (ours): which silicon leakage shape explains the paper's
// model hierarchy? DESIGN.md's calibration claims the observable channel
// carries value (HW) leakage dominated by the round-0 state and no
// register-overwrite (HD) leakage. This bench flips those knobs:
//
//  A. default profile        -> Rd0-HW best, Rd10-HW slower, Rd10-HD flat
//  B. HD leakage added       -> Rd10-HD starts converging
//  C. round-0 weight removed -> Rd0-HW collapses to random guessing
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "util/table.h"

namespace {

std::array<double, 3> final_ge(const psc::soc::DeviceProfile& profile,
                               std::size_t traces, std::uint64_t seed) {
  using namespace psc;
  core::CpaCampaignConfig config{
      .profile = profile,
      .victim = victim::VictimModel::user_space(),
      .trace_count = traces,
      .models = {power::PowerModel::rd0_hw, power::PowerModel::rd10_hw,
                 power::PowerModel::rd10_hd},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = seed,
  };
  bench::apply_parallel_env(config);
  const auto result = run_cpa_campaign(config);
  return {result.keys[0].final_results[0].ge_bits,
          result.keys[0].final_results[1].ge_bits,
          result.keys[0].final_results[2].ge_bits};
}

}  // namespace

int main() {
  using namespace psc;
  bench::banner("Ablation A2", "leakage-shape knobs vs attack models");

  const std::size_t traces = bench::scaled(400'000);
  std::cout << traces << " traces per configuration; random GE = "
            << util::fixed(core::random_guess_ge_bits(), 1) << " bits\n\n";

  util::TextTable table;
  table.header({"chip leakage configuration", "Rd0-HW GE", "Rd10-HW GE",
                "Rd10-HD GE"});
  table.set_align(0, util::Align::left);

  {
    const auto profile = soc::DeviceProfile::macbook_air_m2();
    const auto ge = final_ge(profile, traces, bench::bench_seed());
    table.add_row({"A. calibrated default (value leakage, w0 > w9, no HD)",
                   util::fixed(ge[0], 1), util::fixed(ge[1], 1),
                   util::fixed(ge[2], 1)});
  }
  {
    auto profile = soc::DeviceProfile::macbook_air_m2();
    profile.leakage.last_round_hd_weight = 1.0;
    const auto ge = final_ge(profile, traces, bench::bench_seed());
    table.add_row({"B. + register-overwrite HD leakage (weight 1.0)",
                   util::fixed(ge[0], 1), util::fixed(ge[1], 1),
                   util::fixed(ge[2], 1)});
  }
  {
    auto profile = soc::DeviceProfile::macbook_air_m2();
    profile.leakage.ark_hw_weight[0] = 0.0;
    profile.leakage.plaintext_load_weight = 0.0;
    const auto ge = final_ge(profile, traces, bench::bench_seed());
    table.add_row({"C. - round-0 value leakage (w0 = 0, no pt load)",
                   util::fixed(ge[0], 1), util::fixed(ge[1], 1),
                   util::fixed(ge[2], 1)});
  }
  table.render(std::cout);

  std::cout <<
      "\nreading: configuration A reproduces the paper's Fig. 1 hierarchy; "
      "B shows the Rd10-HD model is sound and would converge if the "
      "silicon leaked transitions (it evidently does not); C shows Rd0-HW "
      "owes its performance entirely to the round-0 value leakage.\n";
  return 0;
}
