// Micro-performance of the framework's hot paths (google-benchmark):
// the AES kernel, leakage evaluation, trace synthesis, CPA updates and
// analysis, TVLA accumulation, and the full-chip step rate. These bound
// how fast paper-scale campaigns run (1M traces in seconds).
#include <benchmark/benchmark.h>

#include "aes/aes128.h"
#include "aes/aes_armv8.h"
#include "core/cpa.h"
#include "core/tvla.h"
#include "power/leakage_model.h"
#include "sched/scheduler.h"
#include "soc/chip.h"
#include "util/rng.h"
#include "victim/fast_trace.h"

namespace {

using namespace psc;

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

void BM_AesEncrypt(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  aes::Aes128 cipher(random_block(rng));
  aes::Block pt = random_block(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt(pt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesEncrypt);

void BM_AesEncryptTrace(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  aes::Aes128 cipher(random_block(rng));
  aes::Block pt = random_block(rng);
  aes::RoundTrace trace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt_trace(pt, trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesEncryptTrace);

void BM_AesArmv8Encrypt(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  aes::Aes128Armv8 cipher(random_block(rng));
  aes::Block pt = random_block(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt(pt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesArmv8Encrypt);

void BM_LeakageEvaluation(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  aes::Aes128 cipher(random_block(rng));
  power::LeakageEvaluator evaluator(
      power::LeakageConfig::apple_silicon_default());
  aes::Block pt = random_block(rng);
  aes::RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.encryption_energy(pt, trace));
  }
}
BENCHMARK(BM_LeakageEvaluation);

void BM_FastTraceCollect(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  victim::FastTraceSource source(soc::DeviceProfile::macbook_air_m2(),
                                 random_block(rng),
                                 victim::VictimModel::user_space(), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.collect(random_block(rng)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FastTraceCollect);

void BM_CpaAddTrace(benchmark::State& state) {
  util::Xoshiro256 rng(7);
  core::CpaEngine engine({power::PowerModel::rd0_hw});
  aes::Block pt = random_block(rng);
  aes::Block ct = random_block(rng);
  for (auto _ : state) {
    engine.add_trace(pt, ct, 1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CpaAddTrace);

void BM_CpaAddTraceWithPairHistogram(benchmark::State& state) {
  util::Xoshiro256 rng(8);
  core::CpaEngine engine({power::PowerModel::rd10_hd});
  aes::Block pt = random_block(rng);
  aes::Block ct = random_block(rng);
  for (auto _ : state) {
    engine.add_trace(pt, ct, 1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CpaAddTraceWithPairHistogram);

void BM_CpaAnalyzeByte(benchmark::State& state) {
  util::Xoshiro256 rng(9);
  core::CpaEngine engine({power::PowerModel::rd0_hw});
  for (int i = 0; i < 10000; ++i) {
    engine.add_trace(random_block(rng), random_block(rng),
                     rng.gaussian(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.analyze_byte(power::PowerModel::rd0_hw, 0));
  }
}
BENCHMARK(BM_CpaAnalyzeByte);

void BM_CpaAnalyzeByteHd(benchmark::State& state) {
  util::Xoshiro256 rng(10);
  core::CpaEngine engine({power::PowerModel::rd10_hd});
  for (int i = 0; i < 10000; ++i) {
    engine.add_trace(random_block(rng), random_block(rng),
                     rng.gaussian(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.analyze_byte(power::PowerModel::rd10_hd, 0));
  }
}
BENCHMARK(BM_CpaAnalyzeByteHd);

void BM_TvlaAccumulate(benchmark::State& state) {
  util::Xoshiro256 rng(11);
  core::TvlaAccumulator acc;
  for (auto _ : state) {
    acc.add(core::PlaintextClass::all_zeros, false, rng.gaussian());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TvlaAccumulate);

void BM_ChipAdvance(benchmark::State& state) {
  soc::Chip chip(soc::DeviceProfile::macbook_air_m2(), 12);
  soc::FmulStressor fmul;
  chip.p_core(0).assign(&fmul);
  for (auto _ : state) {
    chip.advance(1e-3);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChipAdvance);

void BM_SchedulerQuantum(benchmark::State& state) {
  soc::Chip chip(soc::DeviceProfile::macbook_air_m2(), 13);
  sched::Scheduler scheduler(chip);
  std::vector<sched::ThreadId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(scheduler.spawn(std::string("t") + std::to_string(i),
                                  std::make_unique<soc::FmulStressor>()));
  }
  for (auto _ : state) {
    scheduler.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerQuantum);

}  // namespace

BENCHMARK_MAIN();
