// Micro-performance of the framework's hot paths (google-benchmark):
// the AES kernel, leakage evaluation, trace synthesis, CPA updates and
// analysis, TVLA accumulation, the dispatched SIMD ingest kernels (one
// registration per compiled-and-supported backend, so a single run shows
// the scalar-vs-vector ladder on this machine), and the full-chip step
// rate. These bound how fast paper-scale campaigns run (1M traces in
// seconds). The backend auto-dispatch would pick for the engines is
// recorded in the benchmark context as `simd_backend`.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "aes/aes_armv8.h"
#include "core/cpa.h"
#include "core/tvla.h"
#include "power/leakage_model.h"
#include "sched/scheduler.h"
#include "soc/chip.h"
#include "util/aligned.h"
#include "util/codec.h"
#include "util/rng.h"
#include "util/simd.h"
#include "victim/fast_trace.h"

namespace {

using namespace psc;

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

void BM_AesEncrypt(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  aes::Aes128 cipher(random_block(rng));
  aes::Block pt = random_block(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt(pt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesEncrypt);

void BM_AesEncryptTrace(benchmark::State& state) {
  util::Xoshiro256 rng(2);
  aes::Aes128 cipher(random_block(rng));
  aes::Block pt = random_block(rng);
  aes::RoundTrace trace;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt_trace(pt, trace));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesEncryptTrace);

void BM_AesArmv8Encrypt(benchmark::State& state) {
  util::Xoshiro256 rng(3);
  aes::Aes128Armv8 cipher(random_block(rng));
  aes::Block pt = random_block(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cipher.encrypt(pt));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AesArmv8Encrypt);

void BM_LeakageEvaluation(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  aes::Aes128 cipher(random_block(rng));
  power::LeakageEvaluator evaluator(
      power::LeakageConfig::apple_silicon_default());
  aes::Block pt = random_block(rng);
  aes::RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.encryption_energy(pt, trace));
  }
}
BENCHMARK(BM_LeakageEvaluation);

void BM_FastTraceCollect(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  victim::FastTraceSource source(soc::DeviceProfile::macbook_air_m2(),
                                 random_block(rng),
                                 victim::VictimModel::user_space(), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(source.collect(random_block(rng)));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FastTraceCollect);

void BM_CpaAddTrace(benchmark::State& state) {
  util::Xoshiro256 rng(7);
  core::CpaEngine engine({power::PowerModel::rd0_hw});
  aes::Block pt = random_block(rng);
  aes::Block ct = random_block(rng);
  for (auto _ : state) {
    engine.add_trace(pt, ct, 1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CpaAddTrace);

void BM_CpaAddTraceWithPairHistogram(benchmark::State& state) {
  util::Xoshiro256 rng(8);
  core::CpaEngine engine({power::PowerModel::rd10_hd});
  aes::Block pt = random_block(rng);
  aes::Block ct = random_block(rng);
  for (auto _ : state) {
    engine.add_trace(pt, ct, 1.0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CpaAddTraceWithPairHistogram);

void BM_CpaAnalyzeByte(benchmark::State& state) {
  util::Xoshiro256 rng(9);
  core::CpaEngine engine({power::PowerModel::rd0_hw});
  for (int i = 0; i < 10000; ++i) {
    engine.add_trace(random_block(rng), random_block(rng),
                     rng.gaussian(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.analyze_byte(power::PowerModel::rd0_hw, 0));
  }
}
BENCHMARK(BM_CpaAnalyzeByte);

void BM_CpaAnalyzeByteHd(benchmark::State& state) {
  util::Xoshiro256 rng(10);
  core::CpaEngine engine({power::PowerModel::rd10_hd});
  for (int i = 0; i < 10000; ++i) {
    engine.add_trace(random_block(rng), random_block(rng),
                     rng.gaussian(0.0, 1.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.analyze_byte(power::PowerModel::rd10_hd, 0));
  }
}
BENCHMARK(BM_CpaAnalyzeByteHd);

void BM_TvlaAccumulate(benchmark::State& state) {
  util::Xoshiro256 rng(11);
  core::TvlaAccumulator acc;
  for (auto _ : state) {
    acc.add(core::PlaintextClass::all_zeros, false, rng.gaussian());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TvlaAccumulate);

// ---- dispatched SIMD ingest kernels, one registration per backend ----
//
// Registered from main() for every backend this build can run (see
// util/simd.h), with the backend forced for the duration of the
// benchmark; items processed = values (moments) or traces (histogram,
// 16 plaintext bytes + 1 value each). The working set is L1-resident so
// the numbers measure kernel arithmetic, not memory bandwidth.

constexpr std::size_t simd_bench_block = 4096;

void BM_SimdAccumulateMoments(benchmark::State& state,
                              util::simd::Backend backend) {
  util::simd::force_backend(backend);
  util::Xoshiro256 rng(14);
  util::AlignedVector<double> values(simd_bench_block);
  for (double& v : values) {
    v = rng.gaussian();
  }
  util::simd::MomentStripes moments;
  std::uint64_t g = 0;
  for (auto _ : state) {
    util::simd::accumulate_moments(values.data(), values.size(), g, moments);
    g += values.size();
    benchmark::DoNotOptimize(moments);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(simd_bench_block));
  util::simd::reset_backend();
}

void BM_SimdHistogram16(benchmark::State& state,
                        util::simd::Backend backend) {
  util::simd::force_backend(backend);
  util::Xoshiro256 rng(15);
  std::vector<std::uint8_t> blocks(simd_bench_block * 16);
  rng.fill_bytes(blocks);
  util::AlignedVector<double> values(simd_bench_block);
  for (double& v : values) {
    v = rng.gaussian();
  }
  util::AlignedVector<std::uint32_t> count(16 * 256, 0);
  util::AlignedVector<double> sum(16 * 256, 0.0);
  for (auto _ : state) {
    util::simd::accumulate_histogram16(blocks.data(), values.data(),
                                       simd_bench_block, count.data(),
                                       sum.data());
    benchmark::DoNotOptimize(count.data());
    benchmark::DoNotOptimize(sum.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(simd_bench_block));
  util::simd::reset_backend();
}

void BM_CpaAddTraceBatch(benchmark::State& state,
                         util::simd::Backend backend) {
  util::simd::force_backend(backend);
  util::Xoshiro256 rng(16);
  core::CpaEngine engine({power::PowerModel::rd0_hw});
  std::vector<aes::Block> plaintexts(simd_bench_block);
  std::vector<aes::Block> ciphertexts(simd_bench_block);
  util::AlignedVector<double> values(simd_bench_block);
  for (std::size_t i = 0; i < simd_bench_block; ++i) {
    rng.fill_bytes(plaintexts[i]);
    rng.fill_bytes(ciphertexts[i]);
    values[i] = rng.gaussian();
  }
  for (auto _ : state) {
    engine.add_trace_batch(plaintexts, ciphertexts, values);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(simd_bench_block));
  util::simd::reset_backend();
}

// ---- PSTR v2 column codec: encode, decode, and the unpack kernel ----
//
// One chunk-sized quantized sensor column shaped like a recorded SMC
// rail (µW grid, float32-truncated, ~250-step noise): what
// delta_bitpack compresses in every v2 chunk flush, and what replay
// decodes per chunk — the costs the store_v2 throughput gate bounds
// end-to-end.

std::vector<double> quantized_sensor_column(std::uint64_t seed,
                                            std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<double> values(n);
  double level = 4.0;
  for (double& v : values) {
    level += rng.gaussian(0.0, 10e-6);
    v = static_cast<double>(static_cast<float>(
        std::round((level + rng.gaussian(0.0, 250e-6)) / 1e-6) * 1e-6));
  }
  return values;
}

void BM_DeltaBitpackEncode(benchmark::State& state) {
  const auto values = quantized_sensor_column(18, simd_bench_block);
  std::vector<std::byte> enc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        util::delta_bitpack_encode(values.data(), values.size(), enc));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(simd_bench_block));
}
BENCHMARK(BM_DeltaBitpackEncode);

void BM_DeltaBitpackDecode(benchmark::State& state,
                           util::simd::Backend backend) {
  util::simd::force_backend(backend);
  const auto values = quantized_sensor_column(19, simd_bench_block);
  std::vector<std::byte> enc;
  util::delta_bitpack_encode(values.data(), values.size(), enc);
  std::vector<double> out(values.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::delta_bitpack_decode(
        enc.data(), enc.size(), out.data(), out.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(simd_bench_block));
  util::simd::reset_backend();
}

void BM_SimdUnpackBits(benchmark::State& state,
                       util::simd::Backend backend) {
  util::simd::force_backend(backend);
  constexpr unsigned width = 12;  // typical packed sensor delta width
  util::Xoshiro256 rng(20);
  std::vector<std::byte> packed(simd_bench_block * width / 8 + 8);
  for (std::byte& b : packed) {
    b = static_cast<std::byte>(rng() & 0xff);
  }
  std::vector<std::uint64_t> out(simd_bench_block);
  for (auto _ : state) {
    util::simd::unpack_bits(packed.data(), packed.size(), 0, width,
                            out.data(), out.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(simd_bench_block));
  util::simd::reset_backend();
}

void register_simd_benchmarks() {
  for (const util::simd::Backend backend : util::simd::supported_backends()) {
    const std::string name(util::simd::backend_name(backend));
    benchmark::RegisterBenchmark(
        ("BM_SimdAccumulateMoments/" + name).c_str(),
        BM_SimdAccumulateMoments, backend);
    benchmark::RegisterBenchmark(("BM_SimdHistogram16/" + name).c_str(),
                                 BM_SimdHistogram16, backend);
    benchmark::RegisterBenchmark(("BM_CpaAddTraceBatch/" + name).c_str(),
                                 BM_CpaAddTraceBatch, backend);
    benchmark::RegisterBenchmark(("BM_SimdUnpackBits/" + name).c_str(),
                                 BM_SimdUnpackBits, backend);
    benchmark::RegisterBenchmark(("BM_DeltaBitpackDecode/" + name).c_str(),
                                 BM_DeltaBitpackDecode, backend);
  }
}

void BM_ChipAdvance(benchmark::State& state) {
  soc::Chip chip(soc::DeviceProfile::macbook_air_m2(), 12);
  soc::FmulStressor fmul;
  chip.p_core(0).assign(&fmul);
  for (auto _ : state) {
    chip.advance(1e-3);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChipAdvance);

void BM_SchedulerQuantum(benchmark::State& state) {
  soc::Chip chip(soc::DeviceProfile::macbook_air_m2(), 13);
  sched::Scheduler scheduler(chip);
  std::vector<sched::ThreadId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(scheduler.spawn(std::string("t") + std::to_string(i),
                                  std::make_unique<soc::FmulStressor>()));
  }
  for (auto _ : state) {
    scheduler.step();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SchedulerQuantum);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  // What auto-dispatch would pick for the engines on this machine; the
  // per-backend registrations above force their own backend while timed.
  benchmark::AddCustomContext(
      "simd_backend",
      std::string(util::simd::backend_name(util::simd::active_backend())));
  register_simd_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
