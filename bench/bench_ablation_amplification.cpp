// Ablation (ours): victim-replica amplification. The paper runs three
// copies of the AES workload on three P-cores "so the data-dependent
// power consumption is amplified". This bench quantifies that choice:
// TVLA t-scores and CPA convergence for 1 vs 2 vs 3 victim threads.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "util/table.h"

int main() {
  using namespace psc;
  bench::banner("Ablation A1",
                "victim replica amplification (1 vs 2 vs 3 P-core copies)");

  const std::size_t tvla_sets = bench::scaled(5000);
  const std::size_t cpa_traces = bench::scaled(300'000);

  util::TextTable table;
  table.header({"victim threads", "TVLA |t| (0s vs 1s, PHPC)",
                "CPA GE bits (PHPC)", "CPA bytes rank<10"});
  for (const std::size_t threads : {1u, 2u, 3u}) {
    victim::VictimModel model = victim::VictimModel::user_space();
    model.threads = threads;

    core::TvlaCampaignConfig tvla_config{
        .profile = soc::DeviceProfile::macbook_air_m2(),
        .victim = model,
        .traces_per_set = tvla_sets,
        .include_pcpu = false,
        .seed = bench::bench_seed() + threads,
    };
    bench::apply_parallel_env(tvla_config);
    const auto tvla = run_tvla_campaign(tvla_config);
    const double t = std::abs(tvla.find("PHPC")->matrix.score(
        core::PlaintextClass::all_zeros, core::PlaintextClass::all_ones));

    core::CpaCampaignConfig cpa_config{
        .profile = soc::DeviceProfile::macbook_air_m2(),
        .victim = model,
        .trace_count = cpa_traces,
        .models = {power::PowerModel::rd0_hw},
        .keys = {smc::FourCc("PHPC")},
        .checkpoints = {},
        .seed = bench::bench_seed() + threads,
    };
    bench::apply_parallel_env(cpa_config);
    const auto cpa = run_cpa_campaign(cpa_config);
    const auto& final = cpa.keys[0].final_results[0];

    table.add_row({std::to_string(threads), util::fixed(t, 2),
                   util::fixed(final.ge_bits, 1),
                   std::to_string(final.near_recovered_bytes)});
  }
  table.render(std::cout);

  std::cout << "\n(" << cpa_traces << " CPA traces per row; random GE = "
            << util::fixed(core::random_guess_ge_bits(), 1)
            << " bits)\nexpected: more replicas -> proportionally larger "
               "signal -> larger t and faster GE convergence, which is why "
               "the paper replicated the workload on three P-cores.\n";
  return 0;
}
