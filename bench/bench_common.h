// Shared helpers for the experiment-reproduction binaries. Each binary
// regenerates one table or figure of the paper and prints the measured
// result next to the published reference.
//
// Scale control:
//   PSC_FULL=1      run the paper-scale trace counts (default: already
//                   paper scale for CPA/TVLA; kept for symmetry)
//   PSC_QUICK=1     cut trace counts ~10x for smoke runs
//   PSC_TRACES=N    override the CPA trace count explicitly
//   PSC_SEED=N      change the campaign seed
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "util/env.h"

namespace psc::bench {

inline std::size_t scaled(std::size_t paper_scale) {
  const std::size_t traces =
      util::env_size("PSC_TRACES", util::env_flag("PSC_QUICK")
                                       ? paper_scale / 10
                                       : paper_scale);
  return traces == 0 ? 1 : traces;
}

inline std::uint64_t bench_seed() {
  return util::env_size("PSC_SEED", 42);
}

inline void banner(const std::string& experiment_id,
                   const std::string& description) {
  std::cout << "================================================================\n"
            << experiment_id << ": " << description << "\n"
            << "================================================================\n";
}

inline void note(const std::string& text) {
  std::cout << "note: " << text << "\n";
}

}  // namespace psc::bench
