// Shared helpers for the experiment-reproduction binaries. Each binary
// regenerates one table or figure of the paper and prints the measured
// result next to the published reference.
//
// Scale control:
//   PSC_FULL=1      run the paper-scale trace counts (default: already
//                   paper scale for CPA/TVLA; kept for symmetry)
//   PSC_QUICK=1     cut trace counts ~10x for smoke runs
//   PSC_TRACES=N    override the CPA trace count explicitly
//   PSC_SEED=N      change the campaign seed
//   PSC_WORKERS=N   threads for the sharded campaign pipeline (default 1)
//   PSC_SHARDS=N    shard count (default: 8 when PSC_WORKERS > 1, else 1;
//                   results are a pure function of seed + shards, so any
//                   worker count reproduces the same numbers for a fixed
//                   shard count, and shards=1 matches the sequential run)
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "util/env.h"

namespace psc::bench {

inline std::size_t scaled(std::size_t paper_scale) {
  const std::size_t traces =
      util::env_size("PSC_TRACES", util::env_flag("PSC_QUICK")
                                       ? paper_scale / 10
                                       : paper_scale);
  return traces == 0 ? 1 : traces;
}

inline std::uint64_t bench_seed() {
  return util::env_size("PSC_SEED", 42);
}

inline std::size_t bench_workers() {
  const std::size_t workers = util::env_size("PSC_WORKERS", 1);
  return workers == 0 ? 1 : workers;
}

inline std::size_t bench_shards() {
  return util::env_size("PSC_SHARDS", bench_workers() > 1 ? 8 : 1);
}

// Applies the PSC_WORKERS / PSC_SHARDS execution plan to a campaign
// config. Announces any non-sequential plan: a shard count > 1 replaces
// the sequential RNG stream with the per-shard partition, so the numbers
// differ from (while statistically matching) a sequential run.
template <typename CampaignConfig>
inline void apply_parallel_env(CampaignConfig& config) {
  config.workers = bench_workers();
  config.shards = bench_shards();
  if (config.workers > 1 || config.shards > 1) {
    std::cout << "parallel plan: " << config.workers << " worker(s), "
              << config.shards << " shard(s) — results reproduce for this "
              << "(seed, shards) pair under any worker count\n";
  }
}

inline void banner(const std::string& experiment_id,
                   const std::string& description) {
  std::cout << "================================================================\n"
            << experiment_id << ": " << description << "\n"
            << "================================================================\n";
}

inline void note(const std::string& text) {
  std::cout << "note: " << text << "\n";
}

}  // namespace psc::bench
