// Table 6: the two channels that do NOT leak — the IOReport "Energy
// Model" PCPU channel (mJ-resolution utilization estimate) and execution
// time under lowpowermode throttling (the governor acts on the PHPS
// estimate).
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/report.h"
#include "core/throttle.h"

int main() {
  using namespace psc;
  bench::banner("Table 6",
                "null channels: IOReport PCPU energy and throttled timing");

  // Column 1: PCPU channel TVLA (user-space victim).
  core::TvlaCampaignConfig pcpu_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = bench::scaled(5000),
      .include_pcpu = true,
      .seed = bench::bench_seed() + 6,
  };
  bench::apply_parallel_env(pcpu_config);
  const auto pcpu_result = run_tvla_campaign(pcpu_config);
  const auto* pcpu = pcpu_result.find("PCPU");

  // Column 2: execution-time TVLA under lowpowermode throttling.
  core::ThrottleExperimentConfig throttle_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .aes_threads = 4,
      .stressor_threads = 4,
      .traces_per_set = bench::scaled(600) / 10,
      .window_s = 1.0,
      .seed = bench::bench_seed() + 7,
  };
  std::cout << "throttled-timing traces per set: "
            << throttle_config.traces_per_set << "\n\n";
  const auto throttle = run_throttle_campaign(throttle_config);

  std::vector<core::TvlaChannelResult> channels;
  channels.push_back({"PCPU (IOReport)", pcpu->matrix});
  channels.push_back({"Time (throttling)", throttle.timing_matrix});
  core::tvla_table("measured t-scores", channels).render(std::cout);
  std::cout << "\n";
  core::tvla_classification_table("classification (threshold |t| >= 4.5)",
                                  channels)
      .render(std::cout);

  std::cout << "\nPCPU no-data-dependence: "
            << (pcpu->matrix.no_data_dependence() ? "confirmed"
                                                  : "VIOLATED")
            << "\nthrottled-timing no-data-dependence: "
            << (throttle.timing_matrix.no_data_dependence() ? "confirmed"
                                                            : "VIOLATED")
            << "\n";

  std::cout <<
      "\npaper reference (Table 6): all cross-class pairs are false "
      "negatives for both channels — PCPU because the Energy Model group "
      "reports a utilization-based estimate at mJ resolution, timing "
      "because lowpowermode throttling follows PHPS, which is itself not "
      "data-dependent.\n";
  return 0;
}
