// Section 5 countermeasures, made executable: how each proposed
// mitigation degrades the attack. Compares the open channel against
// RAPL-style filtering (noise blending + coarser resolution + slower
// updates, the INTEL-SA-00389 playbook) and against access control
// (power keys become root-only, the Linux RAPL response).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "util/table.h"
#include "victim/platform.h"

namespace {

struct Row {
  std::string name;
  psc::smc::MitigationPolicy policy;
};

}  // namespace

int main() {
  using namespace psc;
  bench::banner("Section 5", "countermeasures vs the SMC side channel");

  const std::size_t tvla_sets = bench::scaled(5000);
  const std::size_t cpa_traces = bench::scaled(300'000);
  const auto profile = soc::DeviceProfile::macbook_air_m2();

  const std::vector<Row> rows = {
      {"none (shipping state)", smc::MitigationPolicy::none()},
      {"RAPL-style filtering", smc::MitigationPolicy::rapl_style_filtering()},
  };

  util::TextTable table;
  table.header({"mitigation", "PHPC TVLA |t| (0s vs 1s)", "PHPC GE bits",
                "rank-1 bytes", "trace cost", "1M traces take"});
  table.set_align(0, util::Align::left);

  for (const Row& row : rows) {
    core::TvlaCampaignConfig tvla_config{
        .profile = profile,
        .victim = victim::VictimModel::user_space(),
        .traces_per_set = tvla_sets,
        .include_pcpu = false,
        .mitigation = row.policy,
        .seed = bench::bench_seed(),
    };
    bench::apply_parallel_env(tvla_config);
    const auto tvla = run_tvla_campaign(tvla_config);
    const double t = std::abs(tvla.find("PHPC")->matrix.score(
        core::PlaintextClass::all_zeros, core::PlaintextClass::all_ones));

    core::CpaCampaignConfig cpa_config{
        .profile = profile,
        .victim = victim::VictimModel::user_space(),
        .trace_count = cpa_traces,
        .models = {power::PowerModel::rd0_hw},
        .keys = {smc::FourCc("PHPC")},
        .checkpoints = {},
        .mitigation = row.policy,
        .seed = bench::bench_seed(),
    };
    bench::apply_parallel_env(cpa_config);
    const auto cpa = run_cpa_campaign(cpa_config);
    const auto& final = cpa.keys[0].final_results[0];

    util::Xoshiro256 key_rng(1);
    aes::Block key;
    key_rng.fill_bytes(key);
    victim::FastTraceSource source(profile, key,
                                   victim::VictimModel::user_space(), 2,
                                   row.policy);
    const double days = 1e6 * source.window_s() / 86400.0;
    table.add_row({row.name, util::fixed(t, 2), util::fixed(final.ge_bits, 1),
                   std::to_string(final.recovered_bytes) + "/16",
                   util::fixed(source.window_s(), 0) + " s/trace",
                   util::fixed(days, 1) + " days"});
  }

  // Access control cannot be phrased as SNR: the attack never starts.
  {
    victim::Platform platform(profile, bench::bench_seed(),
                              smc::MitigationPolicy::access_control());
    auto conn = platform.open_smc(smc::Privilege::user);
    platform.run_for(1.1);
    smc::SmcValue value;
    const auto status = conn.read_key(smc::FourCc("PHPC"), value);
    table.add_row({"access control (root-only)",
                   std::string("read: ") +
                       std::string(smc::status_name(status)),
                   "-", "-", "-", "attack not mountable"});
  }
  table.render(std::cout);

  std::cout << "\n(" << cpa_traces << " CPA traces per row; random GE = "
            << util::fixed(core::random_guess_ge_bits(), 1) << " bits)\n";
  std::cout <<
      "\npaper reference (section 5): restricting user-space access and "
      "blending noise into the power readings are proposed as analogues "
      "of the Intel/AMD PLATYPUS responses; as of the paper's publication "
      "Apple had not shipped either.\n";
  return 0;
}
