// Table 4: rank of each AES key byte after CPA with the Rd0-HW power
// model — PHPC/PDTR/PMVC/PSTR traces on the M2 (1M traces) and PHPC on
// the M1 (350k traces).
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "core/key_rank.h"
#include "core/report.h"
#include "util/hex.h"

int main() {
  using namespace psc;
  bench::banner("Table 4", "CPA key-byte ranks, Rd0-HW power model");

  const std::size_t m2_traces = bench::scaled(1'000'000);
  const std::size_t m1_traces = bench::scaled(350'000);

  core::CpaCampaignConfig m2_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = m2_traces,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC"), smc::FourCc("PDTR"), smc::FourCc("PMVC"),
               smc::FourCc("PSTR")},
      .checkpoints = {},
      .seed = bench::bench_seed(),
  };
  bench::apply_parallel_env(m2_config);
  std::cout << "collecting " << m2_traces << " M2 traces..." << std::flush;
  const auto m2 = run_cpa_campaign(m2_config);
  std::cout << " done\n";

  core::CpaCampaignConfig m1_config{
      .profile = soc::DeviceProfile::mac_mini_m1(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = m1_traces,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = bench::bench_seed() + 1,
  };
  bench::apply_parallel_env(m1_config);
  std::cout << "collecting " << m1_traces << " M1 traces..." << std::flush;
  const auto m1 = run_cpa_campaign(m1_config);
  std::cout << " done\n\n";

  std::vector<core::RankColumn> columns;
  for (const char* key : {"PHPC", "PDTR", "PMVC", "PSTR"}) {
    const auto parsed = smc::FourCc::parse(key);
    columns.push_back({key, &m2.find(*parsed)->final_results[0]});
  }
  columns.push_back(
      {"PHPC (M1)", &m1.find(smc::FourCc("PHPC"))->final_results[0]});

  core::cpa_rank_table("measured ranks (* = recovered, + = rank < 10)",
                       columns)
      .render(std::cout);

  const auto& phpc = *m2.find(smc::FourCc("PHPC"));
  const auto key_rank = core::estimate_key_rank(phpc.final_results[0]);
  std::cout << "\nRd0-HW best-guess key (PHPC): "
            << util::to_hex(phpc.final_results[0].best_round_key)
            << "\nvictim master key          : "
            << util::to_hex(m2.victim_key)
            << "\noptimal enumeration rank   : 2^"
            << util::fixed(key_rank.log2_rank, 1)
            << " full keys (GE's independence approximation: 2^"
            << util::fixed(phpc.final_results[0].ge_bits, 1) << ")\n";

  std::cout <<
      "\npaper reference (GE row of Table 4):\n"
      "  PHPC 31.0 | PDTR 41.6 | PMVC 42.8 | PSTR 109.3 | PHPC(M1) 40.9\n"
      "  PHPC: 6 bytes rank 1, 6 more rank < 10; PSTR: no recovery\n"
      "  random-guessing reference: "
            << util::fixed(core::random_guess_ge_bits(), 1) << " bits\n";
  return 0;
}
