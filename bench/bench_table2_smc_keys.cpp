// Table 2: workload-dependent SMC keys, found by the smc-fuzzer-style
// idle-vs-stress triage of section 3.2 run against the full platform
// simulation (scheduler + chip + SMC client).
#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "smc/fuzzer.h"
#include "soc/workload.h"
#include "util/table.h"
#include "victim/platform.h"

namespace {

std::vector<psc::smc::FourCc> triage(const psc::soc::DeviceProfile& profile,
                                     std::uint64_t seed) {
  using namespace psc;
  victim::Platform platform(profile, seed);
  auto conn = platform.open_smc();

  platform.run_for(1.2);
  const auto idle = smc::snapshot_keys(conn, 'P');
  std::cout << profile.name << ": scanned " << idle.size()
            << " readable 'P' keys\n";

  for (std::size_t c = 0; c < platform.chip().core_count(); ++c) {
    platform.scheduler().spawn("stress-" + std::to_string(c),
                               std::make_unique<soc::MatrixStressor>());
  }
  platform.run_for(2.0);
  const auto busy = smc::snapshot_keys(conn, 'P');

  return smc::workload_dependent_keys(smc::diff_snapshots(idle, busy));
}

std::string join(const std::vector<psc::smc::FourCc>& keys) {
  std::string out;
  for (const auto& key : keys) {
    if (!out.empty()) {
      out += ", ";
    }
    out += key.str();
  }
  return out;
}

}  // namespace

int main() {
  using namespace psc;
  bench::banner("Table 2", "workload-dependent SMC keys (idle vs stress-ng "
                           "matrix triage)");

  util::TextTable table;
  table.header({"Device", "workload-dependent SMC keys (measured)"});
  table.set_align(1, util::Align::left);
  for (const auto& profile : {soc::DeviceProfile::mac_mini_m1(),
                              soc::DeviceProfile::macbook_air_m2()}) {
    table.add_row({profile.name, join(triage(profile, bench::bench_seed()))});
  }
  std::cout << "\n";
  table.render(std::cout);

  std::cout << "\npaper reference:\n"
               "  Mac Mini M1    : PDTR, PHPC, PHPS, PMVR, PPMR, PSTR\n"
               "  MacBook Air M2 : PDTR, PHPC, PHPS, PMVC, PSTR\n";
  return 0;
}
