// Table 5: TVLA on the selected SMC keys when the victim is the AES
// kernel module on the MacBook Air M2.
#include <iostream>

#include "bench_common.h"
#include "core/campaigns.h"
#include "core/report.h"

int main() {
  using namespace psc;
  bench::banner("Table 5",
                "TVLA between plaintext classes, kernel-module victim, M2");

  core::TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::kernel_module(),
      .traces_per_set = bench::scaled(5000),
      .include_pcpu = false,
      .seed = bench::bench_seed() + 5,
  };
  bench::apply_parallel_env(config);
  std::cout << "traces per (class, collection): " << config.traces_per_set
            << "\n\n";
  const auto result = run_tvla_campaign(config);

  core::tvla_table("measured t-scores", result.channels).render(std::cout);
  std::cout << "\n";
  core::tvla_classification_table("classification (threshold |t| >= 4.5)",
                                  result.channels)
      .render(std::cout);

  std::cout <<
      "\npaper reference (Table 5): data-dependency patterns consistent "
      "with the user-space victim — PHPC strongest (e.g. All0s' vs All1s "
      "= 19.28), PDTR/PMVC/PSTR leak, PHPS stays mostly below threshold.\n";
  return 0;
}
