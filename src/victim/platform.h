// One simulated machine: chip + scheduler + SMC controller + IOReport,
// stepped together. This is the "macOS system" an experiment runs on; the
// attacker process opens SMC connections against it, the victim runs
// threads on it.
#pragma once

#include <cstdint>

#include "ioreport/ioreport.h"
#include "sched/scheduler.h"
#include "smc/client.h"
#include "smc/controller.h"
#include "soc/chip.h"

namespace psc::victim {

class Platform {
 public:
  Platform(soc::DeviceProfile profile, std::uint64_t seed,
           smc::MitigationPolicy mitigation = smc::MitigationPolicy::none());

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  soc::Chip& chip() noexcept { return chip_; }
  sched::Scheduler& scheduler() noexcept { return scheduler_; }
  smc::SmcController& smc() noexcept { return smc_; }
  ioreport::IoReport& ioreport() noexcept { return ioreport_; }

  // Opens an SMC connection at the given privilege (attacker: user).
  smc::SmcConnection open_smc(
      smc::Privilege privilege = smc::Privilege::user) {
    return smc::SmcConnection(smc_, privilege);
  }

  // Advances the machine: scheduler quanta plus SMC sampling.
  void run_for(double seconds);

  // pmset-equivalent.
  void set_lowpowermode(bool enabled) { chip_.set_lowpowermode(enabled); }

  double time_s() const noexcept { return chip_.time_s(); }

 private:
  soc::Chip chip_;
  sched::Scheduler scheduler_;
  smc::SmcController smc_;
  ioreport::IoReport ioreport_;
};

}  // namespace psc::victim
