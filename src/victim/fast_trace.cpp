#include "victim/fast_trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "power/noise.h"
#include "soc/chip.h"
#include "soc/workload.h"

namespace psc::victim {

VictimModel VictimModel::user_space() {
  return {.threads = 3, .duty_cycle = 1.0, .extra_p_rail_noise_w = 0.0};
}

VictimModel VictimModel::kernel_module() {
  return {.threads = 3, .duty_cycle = 0.85, .extra_p_rail_noise_w = 30e-6};
}

FastTraceSource::FastTraceSource(const soc::DeviceProfile& profile,
                                 const aes::Block& victim_key,
                                 VictimModel victim, std::uint64_t seed,
                                 smc::MitigationPolicy mitigation)
    : profile_(profile),
      victim_(victim),
      cipher_(victim_key),
      evaluator_(profile.leakage),
      database_(smc::apply_mitigations(
          smc::KeyDatabase::for_device(profile.name), mitigation)),
      rng_(seed) {
  keys_ = database_.workload_dependent_keys();
  for (const smc::FourCc key : keys_) {
    key_entries_.push_back(database_.find(key));
    window_s_ =
        std::max(window_s_, key_entries_.back()->spec.update_period_s);
  }
  calibrate(seed ^ 0xCA11B8A7Eull);
}

void FastTraceSource::calibrate(std::uint64_t seed) {
  // Run the genuine chip model with the victim's thread layout for a short
  // settling interval plus one full window, and take the window averages
  // as the trace baseline.
  soc::Chip chip(profile_, seed);
  std::vector<std::unique_ptr<soc::AesWorkload>> workers;
  util::Xoshiro256 pt_rng(seed + 1);
  aes::Block calibration_pt;
  pt_rng.fill_bytes(calibration_pt);
  for (std::size_t i = 0; i < victim_.threads && i < chip.p_core_count();
       ++i) {
    workers.push_back(std::make_unique<soc::AesWorkload>(
        cipher_.round_keys()[0], profile_.leakage,
        profile_.aes_cycles_per_block, victim_.duty_cycle));
    workers.back()->set_plaintext(calibration_pt);
    chip.p_core(i).assign(workers.back().get());
  }

  chip.run_for(0.5);  // settle
  const soc::RailEnergies before = chip.rail_energies();
  const double est_p_before =
      chip.estimated_cluster_energy_j(soc::CoreType::performance);
  std::uint64_t blocks_before = 0;
  for (const auto& w : workers) {
    blocks_before += w->blocks_encrypted();
  }

  chip.run_for(window_s_);
  const soc::RailEnergies after = chip.rail_energies();
  for (std::size_t r = 0; r < soc::rail_count; ++r) {
    baseline_rail_w_[r] = (after.joules[r] - before.joules[r]) / window_s_;
  }
  // Remove the calibration plaintext's own leakage so baselines represent
  // the data-independent operating point.
  std::uint64_t blocks_after = 0;
  for (const auto& w : workers) {
    blocks_after += w->blocks_encrypted();
  }
  enc_per_window_ = static_cast<double>(blocks_after - blocks_before);
  if (!workers.empty()) {
    const double core_dev_w =
        workers.front()->core_leak_energy_per_block() * enc_per_window_ /
        window_s_;
    const double bus_dev_w =
        workers.front()->bus_leak_energy_per_block() * enc_per_window_ /
        window_s_;
    auto& rails = baseline_rail_w_;
    rails[static_cast<std::size_t>(soc::RailId::p_cluster)] -= core_dev_w;
    rails[static_cast<std::size_t>(soc::RailId::dram)] -= bus_dev_w;
    rails[static_cast<std::size_t>(soc::RailId::total_soc)] -=
        core_dev_w + bus_dev_w;
    rails[static_cast<std::size_t>(soc::RailId::dc_in)] -=
        (core_dev_w + bus_dev_w) / profile_.dc_conversion_efficiency;
  }

  baseline_estimated_w_ = chip.estimated_package_power_w();
  baseline_estimated_p_w_ =
      (chip.estimated_cluster_energy_j(soc::CoreType::performance) -
       est_p_before) /
      window_s_;
  p_cluster_voltage_ = chip.p_core(0).voltage();
}

double FastTraceSource::baseline_package_w() const noexcept {
  return baseline_rail_w_[static_cast<std::size_t>(soc::RailId::total_soc)];
}

FastTraceSource::TraceSample FastTraceSource::collect(
    const aes::Block& plaintext) {
  TraceSample sample;
  sample.plaintext = plaintext;
  sample.smc_values.resize(key_entries_.size());
  collect_into(plaintext, sample.ciphertext, sample.smc_values,
               sample.pcpu_mj);
  return sample;
}

void FastTraceSource::collect_into(const aes::Block& plaintext,
                                   aes::Block& ciphertext,
                                   std::span<double> smc_values,
                                   std::uint64_t& pcpu_mj) {
  assert(smc_values.size() == key_entries_.size());
  // One real encryption gives the data-dependent energy of every block in
  // the window (all blocks process the same plaintext).
  aes::RoundTrace trace;
  ciphertext = cipher_.encrypt_trace(plaintext, trace);
  const double blocks_per_s = enc_per_window_ / window_s_;
  const double core_dev_w =
      evaluator_.energy_deviation(plaintext, trace) * blocks_per_s;
  const double bus_dev_w =
      evaluator_.bus_energy_deviation(plaintext, ciphertext) * blocks_per_s;

  // Syscall-path noise rides on the P-cluster rail.
  const double p_noise_w =
      victim_.extra_p_rail_noise_w > 0.0
          ? rng_.gaussian(0.0, victim_.extra_p_rail_noise_w)
          : 0.0;

  std::array<double, soc::rail_count> rail_w = baseline_rail_w_;
  rail_w[static_cast<std::size_t>(soc::RailId::p_cluster)] +=
      core_dev_w + p_noise_w;
  rail_w[static_cast<std::size_t>(soc::RailId::dram)] += bus_dev_w;

  for (std::size_t k = 0; k < key_entries_.size(); ++k) {
    const smc::SensorSpec& spec = key_entries_[k]->spec;
    double value = 0.0;
    switch (spec.source) {
      case smc::SensorSource::rail_power:
      case smc::SensorSource::rail_current: {
        for (const soc::RailId rail :
             {soc::RailId::p_cluster, soc::RailId::e_cluster,
              soc::RailId::uncore, soc::RailId::dram}) {
          value += spec.rails.weight(rail) *
                   rail_w[static_cast<std::size_t>(rail)];
        }
        if (spec.source == smc::SensorSource::rail_current) {
          value /= p_cluster_voltage_;
        }
        break;
      }
      case smc::SensorSource::estimated_power:
        value = baseline_estimated_w_;
        break;
      default:
        value = spec.constant_value;
        break;
    }
    if (spec.noise_sigma > 0.0) {
      value += rng_.gaussian(0.0, spec.noise_sigma);
    }
    value = power::Quantizer(spec.quant_step).apply(value);
    // The client reads a float32-encoded value; keep that truncation.
    smc_values[k] = static_cast<double>(static_cast<float>(value));
  }

  // IOReport PCPU channel: utilization-model energy over the window, mJ
  // resolution, small OS-activity jitter — no data term by construction.
  const double pcpu_j =
      baseline_estimated_p_w_ * window_s_ + rng_.gaussian(0.0, 2e-3);
  pcpu_mj =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(pcpu_j * 1e3)));
}

}  // namespace psc::victim
