// Probe-array flush/reload victim: the cache-timing scenario's simulated
// SoC interaction (EXAM-style, see PAPERS.md). The victim owns a small
// probe array — one entry per simulated SLC line — and touches a
// secret/input-derived subset of lines per invocation. The attacker
// flushes the array, triggers the victim once, then reloads every line
// and measures each reload with the platform's coarse timer, using the
// probe idiom of real M-series cache attacks: average several timed
// iterations, and re-read when the coarse timer returns zero ticks
// (hit latencies sit below one tick, so a zero reading carries no
// information until re-sampled at a different phase).
//
// An SLC occupancy knob models EXAM's observation that competing cache
// pressure evicts probe lines between the victim's access and the
// attacker's reload: with probability `slc_pressure`, a line the victim
// touched misses anyway, degrading (and at 1.0 erasing) the channel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aes/aes128.h"
#include "util/rng.h"

namespace psc::victim {

struct ProbeArrayConfig {
  std::size_t lines = 16;       // probe-array size (1..64 simulated lines)
  double hit_ns = 40.0;         // reload latency, line still cached
  double miss_ns = 240.0;       // reload latency after eviction
  double noise_ns = 12.0;       // per-reload latency jitter (sigma)
  double timer_granularity_ns = 41.67;  // 24 MHz coarse counter tick
  int iterations = 4;           // timed reloads averaged per line
  int retries_if_zero = 50;     // re-reads of a zero coarse-timer sample
  double slc_pressure = 0.0;    // [0,1] competing-occupancy eviction prob
  bool secret_dependent = true; // false = fixed input-independent line set
};

class ProbeArrayVictim {
 public:
  ProbeArrayVictim(const ProbeArrayConfig& config, const aes::Block& secret,
                   std::uint64_t seed);

  std::size_t lines() const noexcept { return config_.lines; }

  // One flush + trigger + reload round: the victim consumes `input`, then
  // `out[l]` receives the averaged coarse-timer reload latency (ns) of
  // line l. `out` must hold lines() entries.
  void observe(const aes::Block& input, std::span<double> out);

 private:
  // Lines the victim touches for `input`, as a bitmask over [0, lines).
  std::uint64_t touched_lines(const aes::Block& input) const noexcept;

  // One averaged, coarse-timer probe of a line that is (or is not) cached.
  double probe_line(bool cached);

  ProbeArrayConfig config_;
  aes::Block secret_;
  util::Xoshiro256 rng_;
};

}  // namespace psc::victim
