// Fast analytic trace collection.
//
// In every experiment, one trace = (attacker sets plaintext) -> (victim
// encrypts it back-to-back for one full SMC window) -> (attacker reads the
// freshly latched SMC keys). Because the plaintext is constant within the
// window, the window-averaged rail power is *deterministic leakage plus
// averaged measurement noise* — so a trace can be computed from a single
// real AES encryption plus the calibrated operating point, without
// stepping the chip through ~1000 quanta.
//
// The baselines are measured by running the genuine chip simulation for a
// short calibration interval with the exact victim thread configuration,
// and the per-key transfer (rail weights, noise, quantization) is the same
// SensorSpec data the slow path uses. A statistical-equivalence test pins
// the two paths together (tests/victim/fast_trace_test.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "aes/aes128.h"
#include "power/leakage_model.h"
#include "smc/key_database.h"
#include "smc/mitigation.h"
#include "soc/device_profile.h"
#include "util/rng.h"

namespace psc::victim {

// Victim configuration in the analytic model.
struct VictimModel {
  std::size_t threads = 3;
  double duty_cycle = 1.0;
  // Extra Gaussian noise on the P-cluster rail per window (syscall-path
  // activity of the kernel service's caller), in watts.
  double extra_p_rail_noise_w = 0.0;

  // Section 3.3/3.4 user-space victim: 3 replicated threads.
  static VictimModel user_space();
  // Section 3.5 kernel-module victim: duty-cycled workers + caller noise.
  static VictimModel kernel_module();
};

class FastTraceSource {
 public:
  // `mitigation` applies a firmware-level countermeasure to the SMC specs
  // (paper section 5); the attacker then sees the mitigated channel. A
  // mitigated update interval lengthens the trace window: the attacker
  // still gets exactly one fresh sample per interval.
  FastTraceSource(const soc::DeviceProfile& profile,
                  const aes::Block& victim_key, VictimModel victim,
                  std::uint64_t seed,
                  smc::MitigationPolicy mitigation =
                      smc::MitigationPolicy::none());

  // The SMC keys reported per trace (the device's workload-dependent set,
  // in KeyDatabase order).
  const std::vector<smc::FourCc>& keys() const noexcept { return keys_; }

  struct TraceSample {
    aes::Block plaintext{};
    aes::Block ciphertext{};
    std::vector<double> smc_values;  // aligned with keys()
    std::uint64_t pcpu_mj = 0;       // IOReport PCPU energy over the window
  };

  // One trace for the given plaintext. Thin wrapper over collect_into().
  TraceSample collect(const aes::Block& plaintext);

  // Allocation-free collect for the columnar batch path: writes the
  // ciphertext, the SMC values (`smc_values` must have exactly
  // keys().size() entries) and the IOReport PCPU energy for one trace.
  // Arithmetic and RNG draws are identical to collect().
  void collect_into(const aes::Block& plaintext, aes::Block& ciphertext,
                    std::span<double> smc_values, std::uint64_t& pcpu_mj);

  // Blocks the victim encrypts per measurement window (all threads).
  double encryptions_per_window() const noexcept { return enc_per_window_; }

  // Seconds of real time one trace costs the attacker (the slowest SMC
  // update interval among the attacked keys; 1 s unmitigated).
  double window_s() const noexcept { return window_s_; }

  // Calibrated mean package power (for reporting).
  double baseline_package_w() const noexcept;

  const aes::Aes128& cipher() const noexcept { return cipher_; }
  const VictimModel& victim() const noexcept { return victim_; }

 private:
  void calibrate(std::uint64_t seed);

  soc::DeviceProfile profile_;
  VictimModel victim_;
  aes::Aes128 cipher_;
  power::LeakageEvaluator evaluator_;
  smc::KeyDatabase database_;
  std::vector<smc::FourCc> keys_;
  std::vector<const smc::KeyEntry*> key_entries_;
  util::Xoshiro256 rng_;

  // Calibrated operating point.
  std::array<double, soc::rail_count> baseline_rail_w_{};
  double baseline_estimated_w_ = 0.0;
  double baseline_estimated_p_w_ = 0.0;
  double p_cluster_voltage_ = 0.0;
  double enc_per_window_ = 0.0;
  double window_s_ = 1.0;
};

}  // namespace psc::victim
