#include "victim/victims.h"

#include <memory>

namespace psc::victim {

namespace {

sched::ThreadAttributes realtime_attrs() {
  return {.policy = sched::SchedPolicy::round_robin,
          .priority = 47,
          .cluster_hint = std::nullopt};
}

soc::AesWorkload& aes_workload(Platform& platform, sched::ThreadId id) {
  return dynamic_cast<soc::AesWorkload&>(
      platform.scheduler().thread(id).workload());
}

}  // namespace

UserSpaceVictim::UserSpaceVictim(Platform& platform,
                                 const aes::Block& secret_key,
                                 std::size_t thread_count)
    : platform_(&platform) {
  const auto& profile = platform.chip().profile();
  for (std::size_t i = 0; i < thread_count; ++i) {
    threads_.push_back(platform.scheduler().spawn(
        "aes-victim-" + std::to_string(i),
        std::make_unique<soc::AesWorkload>(secret_key, profile.leakage,
                                           profile.aes_cycles_per_block),
        realtime_attrs()));
  }
}

aes::Block UserSpaceVictim::encrypt_window(const aes::Block& plaintext,
                                           double window_s) {
  for (const sched::ThreadId id : threads_) {
    aes_workload(*platform_, id).set_plaintext(plaintext);
  }
  platform_->run_for(window_s);
  return aes_workload(*platform_, threads_.front()).ciphertext();
}

std::uint64_t UserSpaceVictim::blocks_encrypted() const {
  std::uint64_t total = 0;
  for (const sched::ThreadId id : threads_) {
    total += dynamic_cast<const soc::AesWorkload&>(
                 platform_->scheduler().thread(id).workload())
                 .blocks_encrypted();
  }
  return total;
}

KernelModuleVictim::KernelModuleVictim(Platform& platform,
                                       const aes::Block& secret_key,
                                       std::size_t worker_count,
                                       double duty_cycle)
    : platform_(&platform) {
  const auto& profile = platform.chip().profile();
  for (std::size_t i = 0; i < worker_count; ++i) {
    workers_.push_back(platform.scheduler().spawn(
        "kcrypto-worker-" + std::to_string(i),
        std::make_unique<soc::AesWorkload>(secret_key, profile.leakage,
                                           profile.aes_cycles_per_block,
                                           duty_cycle),
        realtime_attrs()));
  }
  // The user-side caller: default policy, spends its time in the syscall
  // path with wandering intensity. Steered after the workers, so it lands
  // on a remaining core.
  caller_ = platform.scheduler().spawn(
      "kcrypto-caller",
      std::make_unique<soc::JitterWorkload>(0.25, 0.01),
      {.policy = sched::SchedPolicy::other,
       .priority = 31,
       .cluster_hint = std::nullopt});
}

aes::Block KernelModuleVictim::encrypt_window(const aes::Block& plaintext,
                                              double window_s) {
  for (const sched::ThreadId id : workers_) {
    aes_workload(*platform_, id).set_plaintext(plaintext);
  }
  platform_->run_for(window_s);
  return aes_workload(*platform_, workers_.front()).ciphertext();
}

std::uint64_t KernelModuleVictim::blocks_encrypted() const {
  std::uint64_t total = 0;
  for (const sched::ThreadId id : workers_) {
    total += dynamic_cast<const soc::AesWorkload&>(
                 platform_->scheduler().thread(id).workload())
                 .blocks_encrypted();
  }
  return total;
}

}  // namespace psc::victim
