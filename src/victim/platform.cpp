#include "victim/platform.h"

namespace psc::victim {

Platform::Platform(soc::DeviceProfile profile, std::uint64_t seed,
                   smc::MitigationPolicy mitigation)
    : chip_(std::move(profile), seed),
      scheduler_(chip_),
      smc_(chip_, seed ^ 0x534d43ULL, mitigation),  // "SMC"
      ioreport_(chip_, seed ^ 0x494f52ULL) {}       // "IOR"

void Platform::run_for(double seconds) {
  const double quantum = scheduler_.quantum_s();
  const auto quanta = static_cast<std::size_t>(seconds / quantum);
  for (std::size_t q = 0; q < quanta; ++q) {
    scheduler_.step();
    smc_.poll();
  }
}

}  // namespace psc::victim
