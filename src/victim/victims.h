// Full-simulation victim programs (threat model of section 3.1): a service
// holding a secret AES-128 key, accepting attacker-chosen plaintexts, and
// encrypting each one repeatedly for about one SMC update window.
//
// Two deployments, as in the paper:
//  * UserSpaceVictim  — section 3.3/3.4: N replicated threads on P-cores
//    (3 in the paper's amplified setup) encrypting the same plaintext.
//  * KernelModuleVictim — section 3.5: a kernel crypto driver; its worker
//    threads run at a duty cycle < 1 (syscall entry/exit, copyin/copyout)
//    and the user-side caller adds background jitter — both lower SNR.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "aes/aes128.h"
#include "sched/scheduler.h"
#include "victim/platform.h"

namespace psc::victim {

// Common interface the attacker interacts with (known-plaintext setting).
class CryptoService {
 public:
  virtual ~CryptoService() = default;

  // Feeds a plaintext and lets the victim encrypt it repeatedly for
  // `window_s` seconds of simulated time; returns the ciphertext.
  virtual aes::Block encrypt_window(const aes::Block& plaintext,
                                    double window_s) = 0;

  virtual std::string_view description() const noexcept = 0;

  // Total blocks encrypted so far (for throughput/timing measurements).
  virtual std::uint64_t blocks_encrypted() const = 0;
};

class UserSpaceVictim final : public CryptoService {
 public:
  // Spawns `thread_count` AES threads (SCHED_RR, top priority -> P-cores).
  UserSpaceVictim(Platform& platform, const aes::Block& secret_key,
                  std::size_t thread_count = 3);

  aes::Block encrypt_window(const aes::Block& plaintext,
                            double window_s) override;
  std::string_view description() const noexcept override {
    return "user-space AES victim";
  }
  std::uint64_t blocks_encrypted() const override;

  const std::vector<sched::ThreadId>& thread_ids() const noexcept {
    return threads_;
  }

 private:
  Platform* platform_;
  std::vector<sched::ThreadId> threads_;
};

class KernelModuleVictim final : public CryptoService {
 public:
  // `worker_count` kernel worker threads at `duty_cycle`, plus a
  // user-side caller thread generating syscall-path jitter.
  KernelModuleVictim(Platform& platform, const aes::Block& secret_key,
                     std::size_t worker_count = 3, double duty_cycle = 0.85);

  aes::Block encrypt_window(const aes::Block& plaintext,
                            double window_s) override;
  std::string_view description() const noexcept override {
    return "kernel-module AES victim";
  }
  std::uint64_t blocks_encrypted() const override;

 private:
  Platform* platform_;
  std::vector<sched::ThreadId> workers_;
  sched::ThreadId caller_;
};

}  // namespace psc::victim
