#include "victim/probe_array.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace psc::victim {

ProbeArrayVictim::ProbeArrayVictim(const ProbeArrayConfig& config,
                                   const aes::Block& secret,
                                   std::uint64_t seed)
    : config_(config), secret_(secret), rng_(seed) {
  if (config_.lines == 0 || config_.lines > 64) {
    throw std::invalid_argument("ProbeArrayVictim: lines must be 1..64");
  }
  if (config_.timer_granularity_ns <= 0.0 || config_.iterations <= 0) {
    throw std::invalid_argument(
        "ProbeArrayVictim: timer granularity and iterations must be "
        "positive");
  }
  if (config_.slc_pressure < 0.0 || config_.slc_pressure > 1.0) {
    throw std::invalid_argument(
        "ProbeArrayVictim: slc_pressure must be in [0, 1]");
  }
}

std::uint64_t ProbeArrayVictim::touched_lines(
    const aes::Block& input) const noexcept {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::uint8_t selector =
        config_.secret_dependent
            ? static_cast<std::uint8_t>(secret_[i] ^ input[i])
            : static_cast<std::uint8_t>(i);
    mask |= std::uint64_t{1} << (selector % config_.lines);
  }
  return mask;
}

double ProbeArrayVictim::probe_line(bool cached) {
  const double base = cached ? config_.hit_ns : config_.miss_ns;
  double sum = 0.0;
  for (int it = 0; it < config_.iterations; ++it) {
    double measured = 0.0;
    // Coarse-timer read with the retry-on-zero idiom: the access is
    // re-timed until a tick boundary lands inside it (or retries run
    // out); every retry re-samples both latency jitter and timer phase.
    for (int attempt = 0; attempt <= config_.retries_if_zero; ++attempt) {
      const double latency =
          std::max(0.0, base + rng_.gaussian(0.0, config_.noise_ns));
      const double phase =
          rng_.uniform01() * config_.timer_granularity_ns;
      const double ticks =
          std::floor((latency + phase) / config_.timer_granularity_ns);
      if (ticks > 0.0) {
        measured = ticks * config_.timer_granularity_ns;
        break;
      }
    }
    sum += measured;
  }
  return sum / config_.iterations;
}

void ProbeArrayVictim::observe(const aes::Block& input,
                               std::span<double> out) {
  if (out.size() != config_.lines) {
    throw std::invalid_argument(
        "ProbeArrayVictim: output span must hold one entry per line");
  }
  const std::uint64_t touched = touched_lines(input);
  for (std::size_t l = 0; l < config_.lines; ++l) {
    bool cached = (touched >> l) & 1;
    // Competing SLC occupancy may have evicted the line again before the
    // attacker's reload (EXAM's occupancy noise).
    if (cached && config_.slc_pressure > 0.0 &&
        rng_.uniform01() < config_.slc_pressure) {
      cached = false;
    }
    out[l] = probe_line(cached);
  }
}

}  // namespace psc::victim
