#include "core/campaigns.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

namespace psc::core {

namespace {

// Per-shard acquisition batch size: traces are staged in column form and
// handed to the engines through their batch interface, keeping the
// acquire and accumulate halves of the loop separable; the cap bounds the
// staging buffers' memory.
constexpr std::size_t acquisition_batch = 1024;

}  // namespace

const TvlaChannelResult* TvlaCampaignResult::find(
    const std::string& channel) const noexcept {
  for (const auto& c : channels) {
    if (c.channel == channel) {
      return &c;
    }
  }
  return nullptr;
}

TvlaCampaignResult run_tvla_campaign(const TvlaCampaignConfig& config) {
  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);

  const LiveSourceConfig source_config{
      .profile = config.profile,
      .victim = config.victim,
      .mitigation = config.mitigation,
      .include_pcpu = config.include_pcpu,
  };
  const std::vector<util::FourCc> channels =
      LiveTraceSource::channel_names(source_config);

  ParallelRunner runner({.workers = config.workers, .shards = config.shards});
  const std::size_t shards = runner.shards();

  const auto partials = runner.map([&](std::size_t s) {
    // A single-shard run continues the campaign stream so the sharded
    // pipeline reproduces the sequential implementation bit-for-bit;
    // multi-shard runs give each shard its own split stream.
    util::Xoshiro256 shard_rng = shards == 1 ? rng : rng.split(s);
    LiveTraceSource source(source_config, victim_key, shard_rng());
    const std::size_t per_set =
        shard_size(config.traces_per_set, shards, s);

    std::vector<TvlaAccumulator> accumulators(channels.size());
    for (const bool primed : {false, true}) {
      for (const PlaintextClass cls : all_plaintext_classes) {
        for (std::size_t t = 0; t < per_set; ++t) {
          const aes::Block pt = class_plaintext(cls, shard_rng);
          const TraceRecord record = source.collect(pt);
          for (std::size_t c = 0; c < channels.size(); ++c) {
            accumulators[c].add(cls, primed, record.values[c]);
          }
        }
      }
    }
    return accumulators;
  });

  std::vector<TvlaAccumulator> merged(channels.size());
  for (const auto& partial : partials) {
    for (std::size_t c = 0; c < channels.size(); ++c) {
      merged[c].merge(partial[c]);
    }
  }

  TvlaCampaignResult result;
  result.victim_key = victim_key;
  result.traces_per_set = config.traces_per_set;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    result.channels.push_back({channels[c].str(), merged[c].matrix()});
  }
  return result;
}

const CpaKeyResult* CpaCampaignResult::find(smc::FourCc key) const noexcept {
  for (const auto& k : keys) {
    if (k.key == key) {
      return &k;
    }
  }
  return nullptr;
}

CpaCampaignResult run_cpa_campaign(const CpaCampaignConfig& config) {
  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);

  const LiveSourceConfig source_config{
      .profile = config.profile,
      .victim = config.victim,
      .mitigation = config.mitigation,
      .include_pcpu = false,
  };
  const std::vector<util::FourCc> channels =
      LiveTraceSource::channel_names(source_config);

  // Resolve the key set: all data-dependent keys except the PHPS estimate.
  std::vector<smc::FourCc> attack_keys = config.keys;
  if (attack_keys.empty()) {
    for (const smc::FourCc key : channels) {
      if (key != smc::FourCc("PHPS")) {
        attack_keys.push_back(key);
      }
    }
  }
  std::vector<std::size_t> key_columns;
  for (const smc::FourCc key : attack_keys) {
    const auto it = std::find(channels.begin(), channels.end(), key);
    if (it == channels.end()) {
      throw std::invalid_argument("run_cpa_campaign: key not provided by "
                                  "this device: " +
                                  key.str());
    }
    key_columns.push_back(static_cast<std::size_t>(it - channels.begin()));
  }

  CpaCampaignResult result;
  result.victim_key = victim_key;
  result.round_keys = aes::Aes128::expand_key(victim_key);
  result.trace_count = config.trace_count;
  result.keys.resize(attack_keys.size());
  for (std::size_t k = 0; k < attack_keys.size(); ++k) {
    result.keys[k].key = attack_keys[k];
    result.keys[k].curves.resize(config.models.size());
  }

  // Checkpoint schedule: ascending unique counts within (0, trace_count];
  // the final count is always evaluated. Each checkpoint is a merge
  // barrier of the sharded pipeline.
  std::vector<std::size_t> checkpoints = config.checkpoints;
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());
  checkpoints.erase(
      std::remove_if(checkpoints.begin(), checkpoints.end(),
                     [&](std::size_t c) {
                       return c == 0 || c > config.trace_count;
                     }),
      checkpoints.end());
  if (checkpoints.empty() || checkpoints.back() != config.trace_count) {
    checkpoints.push_back(config.trace_count);
  }

  ParallelRunner runner({.workers = config.workers, .shards = config.shards});
  const std::size_t shards = runner.shards();

  // Persistent per-shard acquisition state, advanced segment by segment
  // between checkpoint barriers. Built lazily inside the worker pool so
  // device calibration also runs in parallel.
  struct ShardState {
    util::Xoshiro256 rng;
    std::unique_ptr<LiveTraceSource> source;
    std::vector<CpaEngine> engines;  // one per attacked key
    std::size_t produced = 0;        // traces fed so far
  };
  std::vector<std::optional<ShardState>> states(shards);

  for (const std::size_t checkpoint : checkpoints) {
    runner.for_each([&](std::size_t s) {
      if (!states[s]) {
        ShardState state{.rng = shards == 1 ? rng : rng.split(s)};
        state.source = std::make_unique<LiveTraceSource>(
            source_config, victim_key, state.rng());
        state.engines.reserve(attack_keys.size());
        for (std::size_t k = 0; k < attack_keys.size(); ++k) {
          state.engines.emplace_back(config.models);
        }
        states[s].emplace(std::move(state));
      }
      ShardState& state = *states[s];
      const std::size_t target = shard_size(checkpoint, shards, s);

      std::vector<aes::Block> pts;
      std::vector<aes::Block> cts;
      std::vector<std::vector<double>> columns(key_columns.size());
      aes::Block pt;
      while (state.produced < target) {
        const std::size_t chunk =
            std::min(acquisition_batch, target - state.produced);
        pts.clear();
        cts.clear();
        for (auto& column : columns) {
          column.clear();
        }
        for (std::size_t t = 0; t < chunk; ++t) {
          state.rng.fill_bytes(pt);
          const TraceRecord record = state.source->collect(pt);
          pts.push_back(record.plaintext);
          cts.push_back(record.ciphertext);
          for (std::size_t k = 0; k < key_columns.size(); ++k) {
            columns[k].push_back(record.values[key_columns[k]]);
          }
        }
        for (std::size_t k = 0; k < state.engines.size(); ++k) {
          state.engines[k].add_trace_batch(pts, cts, columns[k]);
        }
        state.produced += chunk;
      }
    });

    // Merge barrier: fold shard snapshots in shard order and analyze the
    // combined engine at this checkpoint.
    for (std::size_t k = 0; k < attack_keys.size(); ++k) {
      CpaEngine combined = states[0]->engines[k].snapshot();
      for (std::size_t s = 1; s < shards; ++s) {
        combined.merge(states[s]->engines[k]);
      }
      for (std::size_t m = 0; m < config.models.size(); ++m) {
        const ModelResult res =
            combined.analyze(config.models[m], result.round_keys);
        result.keys[k].curves[m].push_back(
            {checkpoint, res.ge_bits, res.mean_rank, res.recovered_bytes});
        if (checkpoint == config.trace_count) {
          result.keys[k].final_results.push_back(res);
        }
      }
    }
  }
  return result;
}

std::vector<std::size_t> log_spaced_checkpoints(std::size_t first,
                                                std::size_t last,
                                                std::size_t count) {
  std::vector<std::size_t> out;
  if (count == 0 || first == 0 || last < first) {
    return out;
  }
  const double lo = std::log(static_cast<double>(first));
  const double hi = std::log(static_cast<double>(last));
  for (std::size_t i = 0; i < count; ++i) {
    const double f = count == 1 ? 1.0
                                : static_cast<double>(i) /
                                      static_cast<double>(count - 1);
    out.push_back(static_cast<std::size_t>(
        std::llround(std::exp(lo + f * (hi - lo)))));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace psc::core
