#include "core/campaigns.h"

#include <algorithm>
#include <cmath>

namespace psc::core {

const TvlaChannelResult* TvlaCampaignResult::find(
    const std::string& channel) const noexcept {
  for (const auto& c : channels) {
    if (c.channel == channel) {
      return &c;
    }
  }
  return nullptr;
}

TvlaCampaignResult run_tvla_campaign(const TvlaCampaignConfig& config) {
  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);

  victim::FastTraceSource source(config.profile, victim_key, config.victim,
                                 rng(), config.mitigation);

  const auto& keys = source.keys();
  std::vector<TvlaAccumulator> accumulators(keys.size() +
                                            (config.include_pcpu ? 1 : 0));

  for (const bool primed : {false, true}) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (std::size_t t = 0; t < config.traces_per_set; ++t) {
        const aes::Block pt = class_plaintext(cls, rng);
        const auto sample = source.collect(pt);
        for (std::size_t k = 0; k < keys.size(); ++k) {
          accumulators[k].add(cls, primed, sample.smc_values[k]);
        }
        if (config.include_pcpu) {
          accumulators.back().add(cls, primed,
                                  static_cast<double>(sample.pcpu_mj));
        }
      }
    }
  }

  TvlaCampaignResult result;
  result.victim_key = victim_key;
  result.traces_per_set = config.traces_per_set;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    result.channels.push_back({keys[k].str(), accumulators[k].matrix()});
  }
  if (config.include_pcpu) {
    result.channels.push_back({"PCPU", accumulators.back().matrix()});
  }
  return result;
}

const CpaKeyResult* CpaCampaignResult::find(smc::FourCc key) const noexcept {
  for (const auto& k : keys) {
    if (k.key == key) {
      return &k;
    }
  }
  return nullptr;
}

CpaCampaignResult run_cpa_campaign(const CpaCampaignConfig& config) {
  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);

  victim::FastTraceSource source(config.profile, victim_key, config.victim,
                                 rng(), config.mitigation);

  // Resolve the key set: all data-dependent keys except the PHPS estimate.
  std::vector<smc::FourCc> attack_keys = config.keys;
  if (attack_keys.empty()) {
    for (const smc::FourCc key : source.keys()) {
      if (key != smc::FourCc("PHPS")) {
        attack_keys.push_back(key);
      }
    }
  }
  std::vector<std::size_t> key_columns;
  for (const smc::FourCc key : attack_keys) {
    const auto& all = source.keys();
    const auto it = std::find(all.begin(), all.end(), key);
    if (it == all.end()) {
      throw std::invalid_argument("run_cpa_campaign: key not provided by "
                                  "this device: " +
                                  key.str());
    }
    key_columns.push_back(static_cast<std::size_t>(it - all.begin()));
  }

  std::vector<CpaEngine> engines;
  engines.reserve(attack_keys.size());
  for (std::size_t k = 0; k < attack_keys.size(); ++k) {
    engines.emplace_back(config.models);
  }

  CpaCampaignResult result;
  result.victim_key = victim_key;
  result.round_keys = aes::Aes128::expand_key(victim_key);
  result.trace_count = config.trace_count;
  result.keys.resize(attack_keys.size());
  for (std::size_t k = 0; k < attack_keys.size(); ++k) {
    result.keys[k].key = attack_keys[k];
    result.keys[k].curves.resize(config.models.size());
  }

  std::vector<std::size_t> checkpoints = config.checkpoints;
  std::sort(checkpoints.begin(), checkpoints.end());
  checkpoints.erase(std::unique(checkpoints.begin(), checkpoints.end()),
                    checkpoints.end());
  std::size_t next_checkpoint = 0;

  auto snapshot = [&](std::size_t traces) {
    for (std::size_t k = 0; k < engines.size(); ++k) {
      for (std::size_t m = 0; m < config.models.size(); ++m) {
        const ModelResult res =
            engines[k].analyze(config.models[m], result.round_keys);
        result.keys[k].curves[m].push_back(
            {traces, res.ge_bits, res.mean_rank, res.recovered_bytes});
      }
    }
  };

  aes::Block pt;
  for (std::size_t t = 1; t <= config.trace_count; ++t) {
    rng.fill_bytes(pt);
    const auto sample = source.collect(pt);
    for (std::size_t k = 0; k < engines.size(); ++k) {
      engines[k].add_trace(sample.plaintext, sample.ciphertext,
                           sample.smc_values[key_columns[k]]);
    }
    while (next_checkpoint < checkpoints.size() &&
           t == checkpoints[next_checkpoint]) {
      snapshot(t);
      ++next_checkpoint;
    }
  }
  if (checkpoints.empty() || checkpoints.back() != config.trace_count) {
    snapshot(config.trace_count);
  }

  for (std::size_t k = 0; k < engines.size(); ++k) {
    for (const power::PowerModel model : config.models) {
      result.keys[k].final_results.push_back(
          engines[k].analyze(model, result.round_keys));
    }
  }
  return result;
}

std::vector<std::size_t> log_spaced_checkpoints(std::size_t first,
                                                std::size_t last,
                                                std::size_t count) {
  std::vector<std::size_t> out;
  if (count == 0 || first == 0 || last < first) {
    return out;
  }
  const double lo = std::log(static_cast<double>(first));
  const double hi = std::log(static_cast<double>(last));
  for (std::size_t i = 0; i < count; ++i) {
    const double f = count == 1 ? 1.0
                                : static_cast<double>(i) /
                                      static_cast<double>(count - 1);
    out.push_back(static_cast<std::size_t>(
        std::llround(std::exp(lo + f * (hi - lo)))));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace psc::core
