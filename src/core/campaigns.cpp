#include "core/campaigns.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <optional>

namespace psc::core {

namespace {

// Per-shard acquisition batch size: traces are staged in a columnar
// TraceBatch and handed to the sinks whole, keeping the acquire and
// accumulate halves of the loop separable; the cap bounds the pooled
// batches' memory.
constexpr std::size_t acquisition_batch = 1024;

// Ascending unique checkpoint schedule within (0, total], with `total`
// always included as the final entry.
std::vector<std::size_t> normalize_checkpoints(std::vector<std::size_t> cps,
                                               std::size_t total) {
  std::sort(cps.begin(), cps.end());
  cps.erase(std::unique(cps.begin(), cps.end()), cps.end());
  cps.erase(std::remove_if(cps.begin(), cps.end(),
                           [&](std::size_t c) { return c == 0 || c > total; }),
            cps.end());
  if (cps.empty() || cps.back() != total) {
    cps.push_back(total);
  }
  return cps;
}

// Column indices of the attacked SMC keys within `channels`; when `keys`
// is empty, defaults to every channel except the PHPS estimate (and the
// IOReport PCPU pseudo-channel).
std::vector<smc::FourCc> resolve_attack_keys(
    const std::vector<util::FourCc>& channels,
    const std::vector<smc::FourCc>& keys, const char* who) {
  std::vector<smc::FourCc> attack_keys = keys;
  if (attack_keys.empty()) {
    for (const smc::FourCc key : channels) {
      if (key != smc::FourCc("PHPS") && key != smc::FourCc("PCPU")) {
        attack_keys.push_back(key);
      }
    }
  }
  for (const smc::FourCc key : attack_keys) {
    if (std::find(channels.begin(), channels.end(), key) == channels.end()) {
      throw std::invalid_argument(std::string(who) +
                                  ": key not provided by this device: " +
                                  key.str());
    }
  }
  return attack_keys;
}

std::vector<std::size_t> key_column_indices(
    const std::vector<util::FourCc>& channels,
    const std::vector<smc::FourCc>& attack_keys) {
  std::vector<std::size_t> columns;
  columns.reserve(attack_keys.size());
  for (const smc::FourCc key : attack_keys) {
    const auto it = std::find(channels.begin(), channels.end(), key);
    columns.push_back(static_cast<std::size_t>(it - channels.begin()));
  }
  return columns;
}

// Shared post-pass reduction: folds per-shard GeCheckpointSinks into GE
// curves and final results for each attacked key. Snapshots are released
// as soon as they are merged (release_snapshot), so the working set
// shrinks checkpoint by checkpoint instead of lingering until the whole
// reduction is done.
void reduce_cpa_sinks(std::vector<std::vector<GeCheckpointSink>>& shard_sinks,
                      const std::vector<std::size_t>& checkpoints,
                      const std::vector<power::PowerModel>& models,
                      const std::array<aes::Block, aes::num_rounds + 1>&
                          round_keys,
                      std::vector<CpaKeyResult>& out) {
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k].curves.resize(models.size());
    for (std::size_t ci = 0; ci < checkpoints.size(); ++ci) {
      // Merge the ci-th snapshot of every shard in shard order:
      // bit-identical to the engine a sequential run would hold at this
      // checkpoint.
      CpaEngine combined = shard_sinks[0][k].release_snapshot(ci);
      for (std::size_t s = 1; s < shard_sinks.size(); ++s) {
        const CpaEngine shard = shard_sinks[s][k].release_snapshot(ci);
        combined.merge(shard);
      }
      for (std::size_t m = 0; m < models.size(); ++m) {
        const ModelResult res = combined.analyze(models[m], round_keys);
        out[k].curves[m].push_back({checkpoints[ci], res.ge_bits,
                                    res.mean_rank, res.recovered_bytes});
        if (ci + 1 == checkpoints.size()) {
          out[k].final_results.push_back(res);
        }
      }
    }
  }
}

// Cumulative cross-shard progress counter feeding a CampaignProgressFn;
// null hook = no-op, so the acquisition loops call add() unconditionally.
// Lives on the campaign's stack and is captured by reference in shard
// lambdas — safe because ParallelRunner::map joins before returning.
class ProgressMeter {
 public:
  ProgressMeter(const CampaignProgressFn& fn, std::size_t total)
      : fn_(fn), total_(total) {}

  void add(std::size_t n) {
    if (fn_) {
      fn_(consumed_.fetch_add(n, std::memory_order_relaxed) + n, total_);
    }
  }

 private:
  const CampaignProgressFn& fn_;
  std::size_t total_;
  std::atomic<std::size_t> consumed_{0};
};

}  // namespace

const TvlaChannelResult* TvlaCampaignResult::find(
    const std::string& channel) const noexcept {
  for (const auto& c : channels) {
    if (c.channel == channel) {
      return &c;
    }
  }
  return nullptr;
}

TvlaCampaignResult run_tvla_campaign(const TvlaCampaignConfig& config) {
  const LiveSourceConfig source_config{
      .profile = config.profile,
      .victim = config.victim,
      .mitigation = config.mitigation,
      .include_pcpu = config.include_pcpu,
  };

  SinkCampaignConfig generic;
  generic.channels = LiveTraceSource::channel_names(source_config);
  generic.make_source = [&source_config](const aes::Block& secret,
                                         std::uint64_t seed) {
    return std::make_unique<LiveTraceSource>(source_config, secret, seed);
  };
  generic.traces_per_set = config.traces_per_set;
  generic.seed = config.seed;
  generic.workers = config.workers;
  generic.shards = config.shards;
  generic.progress = config.progress;

  SinkCampaignResult sink_result = run_sink_campaign(generic);

  TvlaCampaignResult result;
  result.victim_key = sink_result.secret;
  result.traces_per_set = config.traces_per_set;
  result.channels = std::move(sink_result.tvla);
  return result;
}

const CpaKeyResult* CpaCampaignResult::find(smc::FourCc key) const noexcept {
  for (const auto& k : keys) {
    if (k.key == key) {
      return &k;
    }
  }
  return nullptr;
}

CpaCampaignResult run_cpa_campaign(const CpaCampaignConfig& config) {
  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);

  const LiveSourceConfig source_config{
      .profile = config.profile,
      .victim = config.victim,
      .mitigation = config.mitigation,
      .include_pcpu = false,
  };
  const std::vector<util::FourCc> channels =
      LiveTraceSource::channel_names(source_config);

  const std::vector<smc::FourCc> attack_keys =
      resolve_attack_keys(channels, config.keys, "run_cpa_campaign");
  const std::vector<std::size_t> key_columns =
      key_column_indices(channels, attack_keys);

  CpaCampaignResult result;
  result.victim_key = victim_key;
  result.round_keys = aes::Aes128::expand_key(victim_key);
  result.trace_count = config.trace_count;
  result.keys.resize(attack_keys.size());
  for (std::size_t k = 0; k < attack_keys.size(); ++k) {
    result.keys[k].key = attack_keys[k];
  }

  const std::vector<std::size_t> checkpoints =
      normalize_checkpoints(config.checkpoints, config.trace_count);

  ShardPlan plan{.workers = config.workers, .shards = config.shards};
  plan.shards = plan.resolved_shards_for(config.trace_count);
  ParallelRunner runner(plan);
  const std::size_t shards = runner.shards();
  TraceBatchPool pool(channels.size(), acquisition_batch);
  ProgressMeter meter(config.progress, config.trace_count);

  // One single pass per shard: sinks snapshot engine state at the shard's
  // share of each checkpoint, so no mid-campaign merge barriers are
  // needed. Device calibration also runs inside the worker pool.
  auto shard_sinks = runner.map([&](std::size_t s) {
    util::Xoshiro256 shard_rng = shards == 1 ? rng : rng.split(s);
    LiveTraceSource source(source_config, victim_key, shard_rng());

    std::vector<std::size_t> targets;
    targets.reserve(checkpoints.size());
    for (const std::size_t cp : checkpoints) {
      targets.push_back(shard_size(cp, shards, s));
    }
    std::vector<GeCheckpointSink> sinks;
    sinks.reserve(attack_keys.size());
    MultiSink multi;
    for (std::size_t k = 0; k < attack_keys.size(); ++k) {
      sinks.emplace_back(config.models, key_columns[k], targets);
    }
    for (auto& sink : sinks) {
      multi.add(&sink);
    }

    const std::size_t total = shard_size(config.trace_count, shards, s);
    auto batch = pool.acquire();
    std::size_t produced = 0;
    while (produced < total) {
      const std::size_t chunk =
          std::min(acquisition_batch, total - produced);
      collect_random_batch(source, chunk, shard_rng, *batch);
      multi.consume(*batch, BatchLabel::unlabeled());
      meter.add(chunk);
      produced += chunk;
    }
    return sinks;
  });

  reduce_cpa_sinks(shard_sinks, checkpoints, config.models,
                   result.round_keys, result.keys);
  return result;
}

const TvlaChannelResult* CombinedCampaignResult::find_tvla(
    const std::string& channel) const noexcept {
  for (const auto& c : tvla) {
    if (c.channel == channel) {
      return &c;
    }
  }
  return nullptr;
}

const CpaKeyResult* CombinedCampaignResult::find_cpa(
    smc::FourCc key) const noexcept {
  for (const auto& k : cpa) {
    if (k.key == key) {
      return &k;
    }
  }
  return nullptr;
}

CombinedCampaignResult run_combined_campaign(
    const CombinedCampaignConfig& config) {
  const LiveSourceConfig source_config{
      .profile = config.profile,
      .victim = config.victim,
      .mitigation = config.mitigation,
      .include_pcpu = config.include_pcpu,
  };
  const std::vector<util::FourCc> channels =
      LiveTraceSource::channel_names(source_config);

  const std::vector<smc::FourCc> attack_keys =
      resolve_attack_keys(channels, config.keys, "run_combined_campaign");

  SinkCampaignConfig generic;
  generic.channels = channels;
  generic.make_source = [&source_config](const aes::Block& secret,
                                         std::uint64_t seed) {
    return std::make_unique<LiveTraceSource>(source_config, secret, seed);
  };
  generic.traces_per_set = config.traces_per_set;
  generic.cpa_columns = key_column_indices(channels, attack_keys);
  generic.models = config.models;
  generic.checkpoints = config.checkpoints;
  generic.seed = config.seed;
  generic.workers = config.workers;
  generic.shards = config.shards;
  generic.progress = config.progress;

  SinkCampaignResult sink_result = run_sink_campaign(generic);

  CombinedCampaignResult result;
  result.victim_key = sink_result.secret;
  result.round_keys = sink_result.round_keys;
  result.traces_per_set = sink_result.traces_per_set;
  result.cpa_trace_count = sink_result.cpa_trace_count;
  result.tvla = std::move(sink_result.tvla);
  result.cpa = std::move(sink_result.cpa);
  return result;
}

const TvlaChannelResult* SinkCampaignResult::find_tvla(
    const std::string& channel) const noexcept {
  for (const auto& c : tvla) {
    if (c.channel == channel) {
      return &c;
    }
  }
  return nullptr;
}

SinkCampaignResult run_sink_campaign(const SinkCampaignConfig& config) {
  if (config.channels.empty()) {
    throw std::invalid_argument("run_sink_campaign: no channels");
  }
  if (!config.make_source) {
    throw std::invalid_argument("run_sink_campaign: no source factory");
  }
  for (const std::size_t column : config.cpa_columns) {
    if (column >= config.channels.size()) {
      throw std::invalid_argument(
          "run_sink_campaign: cpa column out of range");
    }
  }

  util::Xoshiro256 rng(config.seed);
  aes::Block secret;
  rng.fill_bytes(secret);

  const std::vector<util::FourCc>& channels = config.channels;

  SinkCampaignResult result;
  result.secret = secret;
  result.round_keys = aes::Aes128::expand_key(secret);
  result.traces_per_set = config.traces_per_set;
  result.cpa_trace_count = 2 * config.traces_per_set;
  result.cpa.resize(config.cpa_columns.size());
  for (std::size_t k = 0; k < config.cpa_columns.size(); ++k) {
    result.cpa[k].key = channels[config.cpa_columns[k]];
  }

  const std::vector<std::size_t> checkpoints =
      normalize_checkpoints(config.checkpoints, result.cpa_trace_count);

  // Auto shard sizing (shards == 0) counts the whole six-set budget, so
  // small assessments run on fewer shards than workers rather than paying
  // per-shard overhead for trivial jobs.
  ShardPlan plan{.workers = config.workers, .shards = config.shards};
  plan.shards = plan.resolved_shards_for(6 * config.traces_per_set);
  ParallelRunner runner(plan);
  const std::size_t shards = runner.shards();
  TraceBatchPool pool(channels.size(), acquisition_batch);
  ProgressMeter meter(config.progress, 6 * config.traces_per_set);

  struct ShardResult {
    TvlaSink tvla;
    std::vector<GeCheckpointSink> cpa;
  };

  auto shard_results = runner.map([&](std::size_t s) {
    // A single-shard run continues the campaign stream so the sharded
    // pipeline reproduces the sequential implementation bit-for-bit;
    // multi-shard runs give each shard its own split stream.
    util::Xoshiro256 shard_rng = shards == 1 ? rng : rng.split(s);
    const std::unique_ptr<TraceSource> source =
        config.make_source(secret, shard_rng());
    if (!source || source->keys() != channels) {
      throw std::invalid_argument(
          "run_sink_campaign: source channels disagree with config");
    }
    const std::size_t per_set = shard_size(config.traces_per_set, shards, s);

    // The shard's CPA stream is its share of the two random collections,
    // in acquisition order. A global checkpoint cp splits as cp1 traces
    // from the first and cp - cp1 from the second; partitioning each part
    // with shard_size keeps the per-shard targets summing to exactly cp.
    std::vector<std::size_t> targets;
    targets.reserve(checkpoints.size());
    for (const std::size_t cp : checkpoints) {
      const std::size_t cp1 = std::min(cp, config.traces_per_set);
      targets.push_back(shard_size(cp1, shards, s) +
                        shard_size(cp - cp1, shards, s));
    }

    ShardResult out{.tvla = TvlaSink(channels.size()), .cpa = {}};
    out.cpa.reserve(config.cpa_columns.size());
    MultiSink multi;
    multi.add(&out.tvla);
    for (const std::size_t column : config.cpa_columns) {
      out.cpa.emplace_back(config.models, column, targets);
    }
    for (auto& sink : out.cpa) {
      multi.add(&sink);
    }
    if (config.extra_sink) {
      if (AnalysisSink* extra = config.extra_sink(s)) {
        multi.add(extra);
      }
    }

    auto batch = pool.acquire();
    for (const bool primed : {false, true}) {
      for (const PlaintextClass cls : all_plaintext_classes) {
        std::size_t produced = 0;
        while (produced < per_set) {
          const std::size_t chunk =
              std::min(acquisition_batch, per_set - produced);
          batch->clear();
          batch->resize(chunk);
          for (auto& pt : batch->plaintexts()) {
            pt = class_plaintext(cls, shard_rng);
          }
          source->collect_batch(*batch);
          multi.consume(*batch, BatchLabel::tvla(cls, primed));
          meter.add(chunk);
          produced += chunk;
        }
      }
    }
    return out;
  });

  TvlaSink merged_tvla(channels.size());
  for (const auto& shard : shard_results) {
    merged_tvla.merge(shard.tvla);
  }
  for (std::size_t c = 0; c < channels.size(); ++c) {
    result.tvla.push_back(
        {channels[c].str(), merged_tvla.accumulator(c).matrix()});
  }

  if (!config.cpa_columns.empty()) {
    std::vector<std::vector<GeCheckpointSink>> cpa_sinks;
    cpa_sinks.reserve(shard_results.size());
    for (auto& shard : shard_results) {
      cpa_sinks.push_back(std::move(shard.cpa));
    }
    reduce_cpa_sinks(cpa_sinks, checkpoints, config.models, result.round_keys,
                     result.cpa);
  }
  return result;
}

std::vector<std::size_t> log_spaced_checkpoints(std::size_t first,
                                                std::size_t last,
                                                std::size_t count) {
  std::vector<std::size_t> out;
  if (count == 0 || first == 0 || last < first) {
    return out;
  }
  const double lo = std::log(static_cast<double>(first));
  const double hi = std::log(static_cast<double>(last));
  for (std::size_t i = 0; i < count; ++i) {
    const double f = count == 1 ? 1.0
                                : static_cast<double>(i) /
                                      static_cast<double>(count - 1);
    out.push_back(static_cast<std::size_t>(
        std::llround(std::exp(lo + f * (hi - lo)))));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace psc::core
