#include "core/throttle.h"

#include <memory>

#include "sched/scheduler.h"
#include "victim/platform.h"

namespace psc::core {

namespace {

sched::ThreadAttributes realtime_attrs() {
  // The paper's placement recipe: SCHED_RR at the highest priority keeps
  // the AES threads on the P-cores.
  return {.policy = sched::SchedPolicy::round_robin,
          .priority = 47,
          .cluster_hint = std::nullopt};
}

soc::AesWorkload& aes_workload(victim::Platform& platform,
                               sched::ThreadId id) {
  return dynamic_cast<soc::AesWorkload&>(
      platform.scheduler().thread(id).workload());
}

}  // namespace

ThrottleCampaignResult run_throttle_campaign(
    const ThrottleExperimentConfig& config) {
  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);

  victim::Platform platform(config.profile, rng());
  platform.set_lowpowermode(true);
  const auto& profile = platform.chip().profile();

  std::vector<sched::ThreadId> aes_ids;
  for (std::size_t i = 0; i < config.aes_threads; ++i) {
    aes_ids.push_back(platform.scheduler().spawn(
        "aes-" + std::to_string(i),
        std::make_unique<soc::AesWorkload>(victim_key, profile.leakage,
                                           profile.aes_cycles_per_block),
        realtime_attrs()));
  }

  ThrottleCampaignResult result;

  // Phase 1: AES only.
  platform.run_for(1.5);
  result.observation.aes_only_power_w =
      platform.chip().rail_powers().at(soc::RailId::total_soc);
  result.observation.aes_only_p_freq_hz =
      platform.chip().p_core(0).frequency_hz();
  result.observation.aes_only_throttled =
      platform.chip().governor().throttling();

  // Phase 2: constant-operand fmul stressors on the E-cores.
  for (std::size_t i = 0; i < config.stressor_threads; ++i) {
    platform.scheduler().spawn(
        "fmul-" + std::to_string(i), std::make_unique<soc::FmulStressor>(),
        {.policy = sched::SchedPolicy::other,
         .priority = 31,
         .cluster_hint = soc::CoreType::efficiency});
  }
  platform.run_for(2.0);
  result.observation.stressed_estimated_power_w =
      platform.chip().estimated_package_power_w();
  result.observation.stressed_p_freq_hz =
      platform.chip().p_core(0).frequency_hz();
  result.observation.stressed_e_freq_hz =
      platform.chip().e_core(0).frequency_hz();
  result.observation.power_throttled =
      platform.chip().governor().power_throttling();
  result.observation.thermal_throttled =
      platform.chip().governor().thermal_throttling();

  // Phase 3: execution-time traces under throttling, TVLA per class.
  TvlaAccumulator timing;
  util::RunningStats all_times;
  for (const bool primed : {false, true}) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (std::size_t t = 0; t < config.traces_per_set; ++t) {
        const aes::Block pt = class_plaintext(cls, rng);
        std::uint64_t before = 0;
        for (const sched::ThreadId id : aes_ids) {
          aes_workload(platform, id).set_plaintext(pt);
          before += aes_workload(platform, id).blocks_encrypted();
        }
        platform.run_for(config.window_s);
        std::uint64_t after = 0;
        for (const sched::ThreadId id : aes_ids) {
          after += aes_workload(platform, id).blocks_encrypted();
        }
        const double blocks = static_cast<double>(after - before);
        const double time_per_kblock =
            blocks > 0.0 ? config.window_s / blocks * 1000.0 : 0.0;
        timing.add(cls, primed, time_per_kblock);
        all_times.add(time_per_kblock);
      }
    }
  }
  result.timing_matrix = timing.matrix();
  result.mean_time_per_kblock_s = all_times.mean();
  return result;
}

std::vector<SweepPoint> lowpower_aes_sweep(const soc::DeviceProfile& profile,
                                           std::size_t max_threads,
                                           std::uint64_t seed) {
  std::vector<SweepPoint> points;
  util::Xoshiro256 rng(seed);
  aes::Block key;
  rng.fill_bytes(key);

  for (std::size_t threads = 1; threads <= max_threads; ++threads) {
    victim::Platform platform(profile, seed + threads);
    platform.set_lowpowermode(true);
    for (std::size_t i = 0; i < threads; ++i) {
      platform.scheduler().spawn(
          "aes-" + std::to_string(i),
          std::make_unique<soc::AesWorkload>(
              key, profile.leakage, profile.aes_cycles_per_block),
          realtime_attrs());
    }
    platform.run_for(1.5);
    points.push_back({threads,
                      platform.chip().rail_powers().at(
                          soc::RailId::total_soc),
                      platform.chip().p_core(0).frequency_hz(),
                      platform.chip().governor().throttling()});
  }
  return points;
}

}  // namespace psc::core
