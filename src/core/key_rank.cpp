#include "core/key_rank.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace psc::core {

namespace {

double safe_log2(double count) noexcept {
  return count < 1.0 ? 0.0 : std::log2(count);
}

}  // namespace

KeyRankEstimate estimate_key_rank(
    const std::array<ByteRanking, 16>& bytes,
    const std::array<std::uint8_t, 16>& true_key, std::size_t bins) {
  if (bins < 8) {
    throw std::invalid_argument("estimate_key_rank: need at least 8 bins");
  }

  // Global score range across all byte positions, so one bin width maps
  // consistently onto every byte's additive contribution.
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const ByteRanking& byte : bytes) {
    for (const double c : byte.correlation) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  if (!(hi > lo)) {
    // Degenerate scores (all equal): every key ties with the true key.
    KeyRankEstimate flat;
    flat.log2_rank_lower = 0.0;
    flat.log2_rank_upper = 128.0;
    flat.log2_rank = 64.0;
    return flat;
  }
  const double width = (hi - lo) / static_cast<double>(bins - 1);

  const auto bin_of = [&](double score) {
    return static_cast<std::size_t>(
        std::clamp((score - lo) / width, 0.0,
                   static_cast<double>(bins - 1)));
  };

  // Convolve the 16 per-byte histograms. Counts reach 256^16 = 2^128;
  // doubles carry them with ~2^-52 relative error, far below the bin
  // quantization error.
  std::vector<double> acc = {1.0};
  std::size_t true_bin_sum = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    std::vector<double> hist(bins, 0.0);
    for (int g = 0; g < 256; ++g) {
      hist[bin_of(bytes[i].correlation[static_cast<std::size_t>(g)])] +=
          1.0;
    }
    true_bin_sum += bin_of(bytes[i].correlation[true_key[i]]);

    std::vector<double> next(acc.size() + bins - 1, 0.0);
    for (std::size_t a = 0; a < acc.size(); ++a) {
      if (acc[a] == 0.0) {
        continue;
      }
      for (std::size_t b = 0; b < bins; ++b) {
        next[a + b] += acc[a] * hist[b];
      }
    }
    acc = std::move(next);
  }

  // Keys scoring strictly above the true key's bin sum: lower bound.
  // Adding the true bin's own mass: upper bound.
  double above = 0.0;
  for (std::size_t s = true_bin_sum + 1; s < acc.size(); ++s) {
    above += acc[s];
  }
  const double tied = acc[true_bin_sum];

  KeyRankEstimate est;
  est.log2_rank_lower = safe_log2(above + 1.0);
  est.log2_rank_upper = safe_log2(above + tied);
  est.log2_rank = safe_log2(above + 0.5 * tied + 1.0);
  return est;
}

KeyRankEstimate estimate_key_rank(const ModelResult& result,
                                  std::size_t bins) {
  std::array<std::uint8_t, 16> true_key{};
  for (std::size_t i = 0; i < 16; ++i) {
    true_key[i] = result.scored_key[i];
  }
  return estimate_key_rank(result.bytes, true_key, bins);
}

}  // namespace psc::core
