#include "core/tvla.h"

#include <algorithm>
#include <cmath>

namespace psc::core {

std::string_view plaintext_class_name(PlaintextClass cls) noexcept {
  switch (cls) {
    case PlaintextClass::all_zeros:
      return "All 0s";
    case PlaintextClass::all_ones:
      return "All 1s";
    case PlaintextClass::random_pt:
      return "Random";
  }
  return "?";
}

aes::Block class_plaintext(PlaintextClass cls, util::Xoshiro256& rng) {
  aes::Block pt{};
  switch (cls) {
    case PlaintextClass::all_zeros:
      break;
    case PlaintextClass::all_ones:
      pt.fill(0xff);
      break;
    case PlaintextClass::random_pt:
      rng.fill_bytes(pt);
      break;
  }
  return pt;
}

std::string_view tvla_cell_name(TvlaCell cell) noexcept {
  switch (cell) {
    case TvlaCell::true_positive:
      return "TP";
    case TvlaCell::true_negative:
      return "TN";
    case TvlaCell::false_positive:
      return "FP";
    case TvlaCell::false_negative:
      return "FN";
  }
  return "?";
}

TvlaCell TvlaMatrix::classify(PlaintextClass primed,
                              PlaintextClass unprimed) const {
  const bool same_class = primed == unprimed;
  const bool distinguishable =
      std::abs(score(primed, unprimed)) >= util::tvla_threshold;
  if (same_class) {
    return distinguishable ? TvlaCell::false_positive
                           : TvlaCell::true_negative;
  }
  return distinguishable ? TvlaCell::true_positive
                         : TvlaCell::false_negative;
}

TvlaMatrix::Counts TvlaMatrix::counts() const {
  Counts c;
  for (const PlaintextClass row : all_plaintext_classes) {
    for (const PlaintextClass col : all_plaintext_classes) {
      switch (classify(row, col)) {
        case TvlaCell::true_positive:
          ++c.true_positive;
          break;
        case TvlaCell::true_negative:
          ++c.true_negative;
          break;
        case TvlaCell::false_positive:
          ++c.false_positive;
          break;
        case TvlaCell::false_negative:
          ++c.false_negative;
          break;
      }
    }
  }
  return c;
}

bool TvlaMatrix::perfectly_data_dependent() const {
  const Counts c = counts();
  return c.false_positive == 0 && c.false_negative == 0 &&
         c.true_positive == 6 && c.true_negative == 3;
}

bool TvlaMatrix::no_data_dependence() const {
  return counts().true_positive == 0;
}

util::MomentSummary TvlaAccumulator::SetMoments::summary() const noexcept {
  util::MomentSummary s;
  s.count = n;
  if (n == 0) {
    return s;
  }
  const double sum = util::simd::reduce_stripes(moments.sum);
  const double sumsq = util::simd::reduce_stripes(moments.sumsq);
  const double dn = static_cast<double>(n);
  s.mean = sum / dn;
  if (n >= 2) {
    // Clamped against cancellation; values here are SMC-scale readings,
    // far from the regime where the two-pass formula degrades.
    s.variance =
        std::max(0.0, (sumsq - sum * sum / dn) / (dn - 1.0));
  }
  return s;
}

void TvlaAccumulator::add(PlaintextClass cls, bool primed,
                          double value) noexcept {
  SetMoments& s = set(cls, primed);
  util::simd::accumulate_moments(&value, 1, s.n, s.moments);
  ++s.n;
}

void TvlaAccumulator::add_batch(PlaintextClass cls, bool primed,
                                std::span<const double> values) noexcept {
  SetMoments& s = set(cls, primed);
  util::simd::accumulate_moments(values.data(), values.size(), s.n,
                                 s.moments);
  s.n += values.size();
}

void TvlaAccumulator::merge(const TvlaAccumulator& other) noexcept {
  for (std::size_t cls = 0; cls < 3; ++cls) {
    for (std::size_t collection = 0; collection < 2; ++collection) {
      SetMoments& s = sets_[cls][collection];
      const SetMoments& o = other.sets_[cls][collection];
      util::simd::merge_moments(s.moments, s.n, o.moments);
      s.n += o.n;
    }
  }
}

std::size_t TvlaAccumulator::count(PlaintextClass cls,
                                   bool primed) const noexcept {
  return set(cls, primed).n;
}

TvlaMatrix TvlaAccumulator::matrix() const noexcept {
  TvlaMatrix m;
  for (const PlaintextClass row : all_plaintext_classes) {
    for (const PlaintextClass col : all_plaintext_classes) {
      m.t[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          util::welch_t_test(set(row, true).summary(),
                             set(col, false).summary())
              .t;
    }
  }
  return m;
}

}  // namespace psc::core
