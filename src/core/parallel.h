// Sharded campaign orchestration.
//
// A campaign's trace budget is divided into independent *shards*, each
// owning a deterministic RNG stream (util::Xoshiro256::split) and its own
// trace source; shard sinks accumulate partial state that is merged in
// shard order. Shards move trace data as columnar TraceBatches leased
// from a shared TraceBatchPool (core/trace_batch.h): with more shards
// than workers, the same few slabs cycle through successive shard jobs,
// so steady-state acquisition allocates nothing. Two knobs with distinct
// roles:
//
//   shards  determine the RESULT: campaign output is a pure function of
//           (seed, shard count). shards == 1 reproduces the sequential
//           pipeline bit-for-bit.
//   workers determine the EXECUTION: how many threads run the shards. Any
//           worker count yields bit-identical results for a fixed shard
//           count, because per-shard work is self-contained and merges
//           happen in shard order on the calling thread.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace psc::core {

struct ShardPlan {
  std::size_t workers = 1;
  // 0 = one shard per worker.
  std::size_t shards = 0;

  std::size_t resolved_workers() const noexcept {
    return workers == 0 ? 1 : workers;
  }
  std::size_t resolved_shards() const noexcept {
    return shards == 0 ? resolved_workers() : shards;
  }
};

// Near-equal contiguous partition of `total` items into `shards` pieces:
// piece s gets total/shards items plus one of the first total%shards
// remainders. Sizes sum to exactly `total` — the property the checkpoint
// scheduler relies on: a global checkpoint at c traces partitions into
// per-shard targets shard_size(c, shards, s) that sum to exactly c.
std::size_t shard_size(std::size_t total, std::size_t shards,
                       std::size_t s) noexcept;
std::size_t shard_begin(std::size_t total, std::size_t shards,
                        std::size_t s) noexcept;

class ParallelRunner {
 public:
  explicit ParallelRunner(ShardPlan plan) noexcept : plan_(plan) {}

  std::size_t shards() const noexcept { return plan_.resolved_shards(); }
  std::size_t workers() const noexcept { return plan_.resolved_workers(); }

  // Invokes fn(shard_index) once per shard across the worker pool and
  // returns the results ordered by shard index, so downstream merges are
  // deterministic regardless of which worker finished first. If shard jobs
  // throw, the exception of the lowest-indexed failing shard is rethrown
  // after all workers have joined.
  template <typename Fn>
  auto map(Fn&& fn) {
    using Partial = std::invoke_result_t<Fn&, std::size_t>;
    const std::size_t n = shards();
    std::vector<std::optional<Partial>> slots(n);
    const std::size_t pool = std::min(workers(), n);
    if (pool <= 1) {
      for (std::size_t s = 0; s < n; ++s) {
        slots[s].emplace(fn(s));
      }
    } else {
      std::vector<std::exception_ptr> errors(n);
      std::atomic<std::size_t> next{0};
      auto work = [&]() {
        while (true) {
          const std::size_t s = next.fetch_add(1);
          if (s >= n) {
            return;
          }
          try {
            slots[s].emplace(fn(s));
          } catch (...) {
            errors[s] = std::current_exception();
          }
        }
      };
      std::vector<std::thread> threads;
      threads.reserve(pool);
      for (std::size_t w = 0; w < pool; ++w) {
        threads.emplace_back(work);
      }
      for (auto& thread : threads) {
        thread.join();
      }
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    std::vector<Partial> out;
    out.reserve(n);
    for (auto& slot : slots) {
      out.push_back(std::move(*slot));
    }
    return out;
  }

  // map() for shard jobs that mutate external per-shard state instead of
  // returning a value (e.g. advancing persistent shard engines between
  // checkpoint barriers).
  template <typename Fn>
  void for_each(Fn&& fn) {
    map([&fn](std::size_t s) {
      fn(s);
      return 0;
    });
  }

 private:
  ShardPlan plan_;
};

}  // namespace psc::core
