// Sharded campaign orchestration.
//
// A campaign's trace budget is divided into independent *shards*, each
// owning a deterministic RNG stream (util::Xoshiro256::split) and its own
// trace source; shard sinks accumulate partial state that is merged in
// shard order. Shards move trace data as columnar TraceBatches leased
// from a shared TraceBatchPool (core/trace_batch.h): with more shards
// than workers, the same few slabs cycle through successive shard jobs,
// so steady-state acquisition allocates nothing. Two knobs with distinct
// roles:
//
//   shards  determine the RESULT: campaign output is a pure function of
//           (seed, shard count). shards == 1 reproduces the sequential
//           pipeline bit-for-bit.
//   workers determine the EXECUTION: how many threads run the shards. Any
//           worker count yields bit-identical results for a fixed shard
//           count, because per-shard work is self-contained and merges
//           happen in shard order on the calling thread.
//
// Worker-pool lifecycle
// ---------------------
// Shard jobs execute on a process-wide persistent WorkerPool rather than
// threads spawned per map() call. The pool starts empty; the first
// multi-worker map() spawns its helper threads, which then sleep between
// campaigns and are reused by every later runner (threads are added but
// never retired until process exit). One map() call publishes its shard
// jobs as a *generation*: up to workers-1 pool threads join the
// generation and claim shard indices from a shared atomic ticket
// alongside the calling thread, which always participates. map() returns
// only after every job finished AND every joined pool thread has left the
// generation, so no pool thread can touch a caller's stack frame after
// the call — late-waking threads see the generation closed and go back
// to sleep without joining. Exceptions never cross the pool boundary:
// map() captures per-shard exceptions and rethrows the lowest-indexed
// one on the calling thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace psc::core {

// Traces below which an extra shard stops paying for itself: each shard
// job owns a batch lease and a full set of accumulator merges, so auto
// shard sizing never cuts jobs smaller than this.
inline constexpr std::size_t min_traces_per_shard = 8192;

struct ShardPlan {
  std::size_t workers = 1;
  // 0 = one shard per worker.
  std::size_t shards = 0;

  std::size_t resolved_workers() const noexcept {
    return workers == 0 ? 1 : workers;
  }
  std::size_t resolved_shards() const noexcept {
    return shards == 0 ? resolved_workers() : shards;
  }

  // Shard count sized to the workload: an explicit shard count always
  // wins (shards determine the result), but with shards == 0 the
  // campaign picks one shard per worker *capped so every shard job gets
  // at least min_traces_per_shard traces* — tiny runs stay on fewer
  // shards instead of paying per-shard lease/merge overhead that dwarfs
  // the work.
  std::size_t resolved_shards_for(std::size_t total_traces) const noexcept {
    if (shards != 0) {
      return shards;
    }
    const std::size_t w = resolved_workers();
    const std::size_t by_size = total_traces / min_traces_per_shard;
    return std::max<std::size_t>(1, std::min(w, by_size));
  }
};

// Process-wide persistent worker pool (see "Worker-pool lifecycle"
// above). ParallelRunner::map is the intended interface; the pool is
// public for tests and benches that assert on reuse.
class WorkerPool {
  struct AsyncJob;  // private; defined in parallel.cpp

 public:
  static WorkerPool& instance();

  // Runs fn(job) for every job in [0, jobs): the calling thread plus up
  // to participants-1 pool threads claim job indices from a shared
  // ticket. Returns when all jobs completed and no pool thread still
  // references fn. fn must not throw (ParallelRunner::map wraps shard
  // exceptions before they reach the pool). Concurrent run() calls
  // serialize; a run() from inside a pool job executes inline on the
  // caller.
  void run(std::size_t jobs, std::size_t participants,
           const std::function<void(std::size_t)>& fn);

  // Handle to one post()ed side job; redeem with finish(). Default
  // tickets and already-finished tickets are empty (finish() is a no-op
  // on them). Dropping a ticket without finish() leaves the job to run
  // whenever a pool thread gets to it, so its fn must own everything it
  // touches.
  class AsyncTicket {
   public:
    AsyncTicket() = default;
    explicit operator bool() const noexcept { return job_ != nullptr; }

   private:
    friend class WorkerPool;
    std::shared_ptr<AsyncJob> job_;
  };

  // Enqueues one side job for any idle pool thread — the async leg of a
  // double-buffered producer/consumer (the store prefetcher decodes
  // chunk N+1 here while the caller ingests chunk N). fn must not throw;
  // it runs exactly once, on a pool thread or inline in finish().
  AsyncTicket post(std::function<void()> fn);

  // Waits until the ticket's job has run and empties the ticket. If no
  // pool thread has claimed the job yet it is stolen back and run inline
  // on the caller — so finish() never deadlocks, even when every pool
  // thread is parked inside a run() generation that is itself waiting on
  // this job. Returns true iff the job ran on a pool thread (the
  // prefetcher's async-hit statistic); false for inline execution or an
  // empty ticket.
  bool finish(AsyncTicket& ticket);

  // Bounded fan-out of post()ed jobs, drained strictly in post order —
  // the shape a shard-parallel bus job needs: keep a capped window of
  // shard units in flight while merging finished units deterministically
  // (unit s is always finished before unit s+1, whatever order the pool
  // ran them in). finish_next() inherits finish()'s steal-back guarantee,
  // so draining a group can never deadlock even with every pool thread
  // busy. Not thread-safe: one owner thread posts and drains.
  class JobGroup {
   public:
    explicit JobGroup(WorkerPool& pool = WorkerPool::instance())
        : pool_(pool) {}
    ~JobGroup() { finish_all(); }

    JobGroup(const JobGroup&) = delete;
    JobGroup& operator=(const JobGroup&) = delete;

    void post(std::function<void()> fn) {
      tickets_.push_back(pool_.post(std::move(fn)));
    }
    // Waits for (or steals back and runs) the oldest outstanding job;
    // false when none are outstanding.
    bool finish_next() {
      if (tickets_.empty()) {
        return false;
      }
      AsyncTicket ticket = std::move(tickets_.front());
      tickets_.pop_front();
      pool_.finish(ticket);
      return true;
    }
    void finish_all() {
      while (finish_next()) {
      }
    }
    std::size_t in_flight() const noexcept { return tickets_.size(); }

   private:
    WorkerPool& pool_;
    std::deque<AsyncTicket> tickets_;
  };

  // Grows the pool to at least `threads` pool threads up front. post()
  // alone only guarantees one pool thread, so a server expecting N
  // concurrent posted jobs (the bus daemon's job executor) reserves its
  // concurrency target once at startup instead of having posted jobs
  // queue behind each other. Never shrinks; safe to call concurrently.
  void reserve(std::size_t threads);

  // Pool threads spawned so far (grow-only); exposed so tests can assert
  // the pool persists across campaigns.
  std::size_t thread_count() const;

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

 private:
  WorkerPool() = default;
  ~WorkerPool();

  void worker_loop();
  void ensure_threads(std::size_t helpers);  // caller holds mu_

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // new generation or async job
  std::condition_variable done_cv_;   // last active thread left
  std::condition_variable async_cv_;  // an async job completed
  std::vector<std::thread> threads_;
  std::deque<std::shared_ptr<AsyncJob>> async_jobs_;  // posted, unclaimed
  bool shutdown_ = false;

  // Current generation, all guarded by mu_ except the ticket.
  std::uint64_t generation_ = 0;
  bool open_ = false;  // still accepting joiners
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t jobs_ = 0;
  std::size_t max_joiners_ = 0;
  std::size_t joined_ = 0;
  std::size_t active_ = 0;
  std::atomic<std::size_t> next_{0};

  std::mutex run_mu_;  // serializes whole run() calls
};

// Near-equal contiguous partition of `total` items into `shards` pieces:
// piece s gets total/shards items plus one of the first total%shards
// remainders. Sizes sum to exactly `total` — the property the checkpoint
// scheduler relies on: a global checkpoint at c traces partitions into
// per-shard targets shard_size(c, shards, s) that sum to exactly c.
std::size_t shard_size(std::size_t total, std::size_t shards,
                       std::size_t s) noexcept;
std::size_t shard_begin(std::size_t total, std::size_t shards,
                        std::size_t s) noexcept;

class ParallelRunner {
 public:
  explicit ParallelRunner(ShardPlan plan) noexcept : plan_(plan) {}

  std::size_t shards() const noexcept { return plan_.resolved_shards(); }
  std::size_t workers() const noexcept { return plan_.resolved_workers(); }

  // Invokes fn(shard_index) once per shard across the persistent
  // WorkerPool and returns the results ordered by shard index, so
  // downstream merges are deterministic regardless of which worker
  // finished first. If shard jobs throw, the exception of the
  // lowest-indexed failing shard is rethrown after all workers have left
  // the generation.
  template <typename Fn>
  auto map(Fn&& fn) {
    using Partial = std::invoke_result_t<Fn&, std::size_t>;
    const std::size_t n = shards();
    std::vector<std::optional<Partial>> slots(n);
    const std::size_t participants = std::min(workers(), n);
    if (participants <= 1) {
      for (std::size_t s = 0; s < n; ++s) {
        slots[s].emplace(fn(s));
      }
    } else {
      std::vector<std::exception_ptr> errors(n);
      WorkerPool::instance().run(n, participants, [&](std::size_t s) {
        try {
          slots[s].emplace(fn(s));
        } catch (...) {
          errors[s] = std::current_exception();
        }
      });
      for (const auto& error : errors) {
        if (error) {
          std::rethrow_exception(error);
        }
      }
    }
    std::vector<Partial> out;
    out.reserve(n);
    for (auto& slot : slots) {
      out.push_back(std::move(*slot));
    }
    return out;
  }

  // map() for shard jobs that mutate external per-shard state instead of
  // returning a value (e.g. advancing persistent shard engines between
  // checkpoint barriers).
  template <typename Fn>
  void for_each(Fn&& fn) {
    map([&fn](std::size_t s) {
      fn(s);
      return 0;
    });
  }

 private:
  ShardPlan plan_;
};

}  // namespace psc::core
