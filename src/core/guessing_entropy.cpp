#include "core/guessing_entropy.h"

#include <cmath>

namespace psc::core {

double guessing_entropy_bits(std::span<const int> ranks) noexcept {
  double bits = 0.0;
  for (const int rank : ranks) {
    if (rank >= 1) {
      bits += std::log2(static_cast<double>(rank));
    }
  }
  return bits;
}

double mean_rank(std::span<const int> ranks) noexcept {
  if (ranks.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const int rank : ranks) {
    sum += rank;
  }
  return sum / static_cast<double>(ranks.size());
}

double random_guess_ge_bits(std::size_t byte_count) noexcept {
  // Expected log2(rank) for a uniform rank in 1..256:
  // (1/256) * sum_{r=1}^{256} log2(r) = log2(256!) / 256.
  double expected = 0.0;
  for (int r = 1; r <= 256; ++r) {
    expected += std::log2(static_cast<double>(r));
  }
  expected /= 256.0;
  return expected * static_cast<double>(byte_count);
}

}  // namespace psc::core
