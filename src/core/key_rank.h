// Full-key rank estimation by histogram convolution (Glowacz et al.,
// FSE'15 style).
//
// Per-byte ranks understate the attack: an attacker enumerates *full* keys
// in descending order of total score, so a key whose bytes rank {2,2,...,2}
// is found after far fewer than 2^16 trials. The paper's GE metric
// (sum log2 rank) is the independence approximation of this quantity; the
// estimator here computes calibrated bounds on the true enumeration rank:
// per-byte scores are discretized into histograms whose 16-fold
// convolution gives the distribution of full-key scores, and the mass
// above/below the correct key's score bin brackets its rank.
#pragma once

#include <array>
#include <cstdint>

#include "core/cpa.h"

namespace psc::core {

struct KeyRankEstimate {
  // log2 of the number of full keys scoring strictly better than the true
  // key (lower bound on enumeration work).
  double log2_rank_lower = 0.0;
  // log2 rank including the true key's own score bin (upper bound).
  double log2_rank_upper = 0.0;
  // Midpoint estimate, log2((lower_count + upper_count) / 2 + 1).
  double log2_rank = 0.0;
};

// Estimates the enumeration rank of the true key from the per-byte CPA
// correlations in `result` (uses result.bytes and the true-byte scores
// implied by result.true_ranks' underlying key). `bins` trades precision
// for cost; 4096 gives sub-bit accuracy in practice.
KeyRankEstimate estimate_key_rank(const ModelResult& result,
                                  std::size_t bins = 4096);

// Lower-level entry point: per-byte score tables and the true key byte
// values (scores may be any monotone figure of merit, e.g. Pearson
// correlations).
KeyRankEstimate estimate_key_rank(
    const std::array<ByteRanking, 16>& bytes,
    const std::array<std::uint8_t, 16>& true_key, std::size_t bins = 4096);

}  // namespace psc::core
