// The paper's Guessing Entropy metric.
//
// Table 4's "GE" row equals the sum over the 16 key bytes of log2(rank):
// the remaining brute-force search space in bits (e.g. PHPC's ranks sum to
// 31.01 bits — the printed 31.0). GE = 0 means every byte ranks first
// (full recovery); a uniformly random ranking gives ~16 * log2(128.5) ~
// 112 bits. We also report the plain mean rank.
#pragma once

#include <span>

namespace psc::core {

// Sum of log2(rank) over the byte ranks (ranks are 1-based; rank 1
// contributes 0 bits).
double guessing_entropy_bits(std::span<const int> ranks) noexcept;

// Arithmetic mean of the ranks.
double mean_rank(std::span<const int> ranks) noexcept;

// GE of a uniformly random ranking over `byte_count` bytes with 256
// candidates each (the no-information reference line in Fig. 1).
double random_guess_ge_bits(std::size_t byte_count = 16) noexcept;

}  // namespace psc::core
