#include "core/trace.h"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/hex.h"

namespace psc::core {

void TraceSet::add(TraceRecord record) {
  if (record.values.size() != keys_.size()) {
    throw std::invalid_argument("TraceSet::add: value count mismatch");
  }
  batch_.append(record.plaintext, record.ciphertext, record.values);
}

void TraceSet::append(const TraceBatch& batch) {
  batch_.append(batch);
}

std::optional<std::size_t> TraceSet::key_index(
    util::FourCc key) const noexcept {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) {
      return i;
    }
  }
  return std::nullopt;
}

std::span<const double> TraceSet::column(std::size_t key_idx) const {
  return batch_.column(key_idx);
}

void TraceSet::save_csv(std::ostream& out) const {
  util::CsvWriter csv(out);
  std::vector<std::string> header = {"plaintext", "ciphertext"};
  for (const auto& key : keys_) {
    header.push_back(key.str());
  }
  csv.row(header);
  const auto pts = batch_.plaintexts();
  const auto cts = batch_.ciphertexts();
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    auto row = csv.start_row();
    row.cell(util::to_hex(pts[i]));
    row.cell(util::to_hex(cts[i]));
    for (std::size_t c = 0; c < keys_.size(); ++c) {
      // Shortest-round-trip formatting: a reloaded capture feeds the
      // analysis engines bit-identical values.
      row.cell(util::format_double_exact(batch_.column(c)[i]));
    }
    row.done();
  }
}

TraceSet TraceSet::load_csv(std::istream& in) {
  util::CsvReader csv(in);
  std::vector<std::string> cells;
  if (!csv.next_record(cells)) {
    throw std::runtime_error("TraceSet::load_csv: empty input");
  }
  if (cells.size() < 2 || cells[0] != "plaintext" || cells[1] != "ciphertext") {
    throw std::runtime_error("TraceSet::load_csv: bad header");
  }
  std::vector<util::FourCc> keys;
  for (std::size_t i = 2; i < cells.size(); ++i) {
    const auto key = util::FourCc::parse(cells[i]);
    if (!key) {
      throw std::runtime_error("TraceSet::load_csv: bad key name " +
                               cells[i]);
    }
    keys.push_back(*key);
  }

  TraceSet set(keys);
  std::vector<double> values;
  while (csv.next_record(cells)) {
    if (cells.size() == 1 && cells[0].empty()) {
      continue;  // blank line
    }
    aes::Block plaintext{};
    aes::Block ciphertext{};
    values.clear();
    for (std::size_t col = 0; col < cells.size(); ++col) {
      if (col == 0) {
        if (!util::from_hex_exact(cells[col], plaintext)) {
          throw std::runtime_error("TraceSet::load_csv: bad plaintext hex");
        }
      } else if (col == 1) {
        if (!util::from_hex_exact(cells[col], ciphertext)) {
          throw std::runtime_error("TraceSet::load_csv: bad ciphertext hex");
        }
      } else {
        values.push_back(std::stod(cells[col]));
      }
    }
    if (values.size() != keys.size()) {
      throw std::invalid_argument("TraceSet::load_csv: value count mismatch");
    }
    set.batch_.append(plaintext, ciphertext, values);
  }
  return set;
}

}  // namespace psc::core
