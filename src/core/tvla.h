// Test Vector Leakage Assessment (Goodwill et al.), as applied in paper
// sections 3.3/3.5/3.6: fixed-plaintext trace sets are pairwise compared
// with Welch's t-test; |t| >= 4.5 marks the sets as distinguishable.
//
// The paper's tables compare a primed and an unprimed collection of each
// of three plaintext classes (all-0s, all-1s, random), giving a 3x3 grid
// whose cells classify as true/false positive/negative.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "aes/aes128.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stats.h"

namespace psc::core {

enum class PlaintextClass : std::size_t {
  all_zeros = 0,
  all_ones = 1,
  random_pt = 2,
};

inline constexpr std::array<PlaintextClass, 3> all_plaintext_classes = {
    PlaintextClass::all_zeros, PlaintextClass::all_ones,
    PlaintextClass::random_pt};

std::string_view plaintext_class_name(PlaintextClass cls) noexcept;

// The plaintext an attacker submits for a class; random_pt draws fresh
// bytes from `rng` per trace.
aes::Block class_plaintext(PlaintextClass cls, util::Xoshiro256& rng);

// TVLA cell classification (the paper's colour coding).
enum class TvlaCell {
  true_positive,   // different classes, distinguishable
  true_negative,   // same class, not distinguishable
  false_positive,  // same class, distinguishable
  false_negative,  // different classes, not distinguishable
};

std::string_view tvla_cell_name(TvlaCell cell) noexcept;

// 3x3 grid of t-scores: rows are primed collections (All 0s', All 1s',
// Random'), columns unprimed (All 0s, All 1s, Random) — the layout of
// Tables 3/5/6.
struct TvlaMatrix {
  std::array<std::array<double, 3>, 3> t{};

  double score(PlaintextClass primed, PlaintextClass unprimed) const {
    return t[static_cast<std::size_t>(primed)]
            [static_cast<std::size_t>(unprimed)];
  }

  TvlaCell classify(PlaintextClass primed, PlaintextClass unprimed) const;

  // Counts over all 9 cells.
  struct Counts {
    int true_positive = 0;
    int true_negative = 0;
    int false_positive = 0;
    int false_negative = 0;
  };
  Counts counts() const;

  // A channel is leakage-positive when every cross-class pair is
  // distinguishable and no same-class pair is (PHPC's behaviour).
  bool perfectly_data_dependent() const;
  // A channel shows no leakage when no cross-class pair is distinguishable
  // (PHPS / PCPU / throttled-timing behaviour).
  bool no_data_dependence() const;
};

// Streaming accumulator for one measured channel: feed values tagged with
// (class, primed-or-not), then extract the matrix. The batch path ingests
// a whole TraceBatch value column at once (see core::TvlaSink for the
// multi-channel fan-out over labeled acquisition batches).
//
// Each of the six sets keeps raw striped moment sums (util/simd.h) so the
// batch path runs on the dispatched SIMD kernels; per-value and batch
// feeding — and every SIMD backend — produce bit-identical state. The
// matrix is computed from the summarized moments via Welch's test.
class TvlaAccumulator {
 public:
  void add(PlaintextClass cls, bool primed, double value) noexcept;

  // Feeds a batch of values for one (class, collection); equivalent to
  // adding each value in order (bit-for-bit, see util/simd.h).
  void add_batch(PlaintextClass cls, bool primed,
                 std::span<const double> values) noexcept;

  // Absorbs another accumulator's partial state, as if its samples had
  // been added here. The merge step of the sharded TVLA pipeline.
  void merge(const TvlaAccumulator& other) noexcept;

  std::size_t count(PlaintextClass cls, bool primed) const noexcept;

  TvlaMatrix matrix() const noexcept;

 private:
  // One (class, collection) sample set: striped moment sums plus count.
  // Cache-line aligned via MomentStripes, so shard accumulators ingesting
  // on different workers never false-share.
  struct SetMoments {
    std::uint64_t n = 0;
    util::simd::MomentStripes moments;

    util::MomentSummary summary() const noexcept;
  };

  SetMoments& set(PlaintextClass cls, bool primed) noexcept {
    return sets_[static_cast<std::size_t>(cls)][primed ? 1 : 0];
  }
  const SetMoments& set(PlaintextClass cls, bool primed) const noexcept {
    return sets_[static_cast<std::size_t>(cls)][primed ? 1 : 0];
  }

  // [class][0]=unprimed, [class][1]=primed.
  std::array<std::array<SetMoments, 2>, 3> sets_{};
};

}  // namespace psc::core
