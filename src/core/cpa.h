// Correlation Power Analysis engine (paper section 3.4).
//
// For each of the 16 key-byte positions and each of the 256 guesses, CPA
// correlates a hypothetical leakage (Rd0-HW / Rd10-HW / Rd10-HD) with the
// measured SMC values and ranks guesses by correlation. The engine is
// streaming and histogram-based: because every model prediction depends
// only on one known byte (or, for Rd10-HD, one known byte pair), traces
// are binned by those byte values and the per-guess correlation sums are
// reconstructed from 256 (or 65536) bins — O(1) trace updates and
// analysis cost independent of the trace count. That is what makes the
// paper-scale 1M-trace experiments run in seconds.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "aes/aes128.h"
#include "core/trace_batch.h"
#include "power/hypothetical.h"
#include "util/aligned.h"
#include "util/simd.h"

namespace psc::core {

// Correlations of all guesses for one (model, byte position).
struct ByteRanking {
  std::array<double, 256> correlation{};

  // 1-based rank of `candidate` by descending correlation (the paper's
  // metric: rank 1 = recovered).
  int rank_of(std::uint8_t candidate) const noexcept;

  std::uint8_t best_guess() const noexcept;
};

// Result of analyzing one model over all 16 byte positions.
struct ModelResult {
  power::PowerModel model{};
  std::array<ByteRanking, 16> bytes{};
  std::array<int, 16> true_ranks{};  // rank of the correct key byte
  aes::Block scored_key{};  // the true round-key bytes ranked above
  double ge_bits = 0.0;              // sum of log2(rank): the paper's GE
  double mean_rank = 0.0;
  aes::Block best_round_key{};  // best guess per byte (round 0 or 10 key)
  // For round-10 models: the master key implied by best_round_key.
  aes::Block implied_master_key{};
  // Number of correct key bytes at rank 1.
  int recovered_bytes = 0;
  // Number with rank <= 10 ("nearly recovered" in Table 4).
  int near_recovered_bytes = 0;
};

class CpaEngine {
 public:
  // `models` determines which histograms are maintained; including
  // rd10_hd allocates the 16x65536 pair histogram (~12 MB).
  explicit CpaEngine(std::vector<power::PowerModel> models);

  const std::vector<power::PowerModel>& models() const noexcept {
    return models_;
  }

  // Feeds one trace: known plaintext/ciphertext and the measured channel
  // value.
  void add_trace(const aes::Block& plaintext, const aes::Block& ciphertext,
                 double value) noexcept;

  // Feeds a batch of traces in column form; throws std::invalid_argument
  // unless the spans have equal length. The inner loops run on the
  // runtime-dispatched kernels of util/simd.h, but every accumulator word
  // receives the same values in the same order as an add_trace loop —
  // and as every other SIMD backend — so batch and loop feeding produce
  // bit-identical state (see simd.h for the striping/disjoint-bin
  // construction that guarantees it).
  void add_trace_batch(std::span<const aes::Block> plaintexts,
                       std::span<const aes::Block> ciphertexts,
                       std::span<const double> values);

  // Feeds every trace of a columnar batch, taking measured values from
  // channel `column`. The native ingest path of the acquisition pipeline.
  void add_batch(const TraceBatch& batch, std::size_t column) {
    add_trace_batch(batch.plaintexts(), batch.ciphertexts(),
                    batch.column(column));
  }

  // Absorbs another engine's accumulator state, as if its traces had been
  // fed here after this engine's own. Both engines must have been built
  // with the same model list. This is the merge step of the sharded
  // pipeline: K shard engines merged in shard order equal one engine fed
  // the concatenated trace stream.
  void merge(const CpaEngine& other);

  // Cheap copy of the accumulator state for mid-campaign GE checkpoints:
  // shard snapshots taken at the same logical trace count merge into the
  // exact engine a sequential run would have held at that count.
  CpaEngine snapshot() const { return *this; }

  std::size_t trace_count() const noexcept { return n_; }

  // Correlations for every guess at one byte position under one model,
  // computed from the current accumulator state.
  ByteRanking analyze_byte(power::PowerModel model,
                           std::size_t byte_index) const;

  // Full analysis of one model against the true round keys.
  ModelResult analyze(power::PowerModel model,
                      const std::array<aes::Block, aes::num_rounds + 1>&
                          true_round_keys) const;

 private:
  bool has_model(power::PowerModel model) const noexcept;

  std::vector<power::PowerModel> models_;
  bool need_pt_hist_ = false;
  bool need_ct_hist_ = false;
  bool need_pair_hist_ = false;

  std::size_t n_ = 0;
  // Channel-value moments, striped by global trace index (util/simd.h);
  // totals come from simd::reduce_stripes. Cache-line aligned so shard
  // engines never false-share.
  util::simd::MomentStripes moments_;

  // Single-byte histograms: count and value-sum per byte value, per
  // position, flattened to 16x256 (bin = position * 256 + byte value) so
  // the SIMD histogram kernel can address them, and cache-line aligned.
  // Allocated only when a configured model needs them.
  util::AlignedVector<std::uint32_t> pt_count_;
  util::AlignedVector<double> pt_sum_;
  util::AlignedVector<std::uint32_t> ct_count_;
  util::AlignedVector<double> ct_sum_;

  // Pair histogram for Rd10-HD: bins (ct[i], ct[shift_rows_source(i)]).
  // Indexed [pos][ct_i * 256 + ct_src]. Stays scalar: at 16x65536 bins it
  // is cache-miss bound, not ALU bound.
  util::AlignedVector<std::uint32_t> pair_count_;
  util::AlignedVector<double> pair_sum_;
};

}  // namespace psc::core
