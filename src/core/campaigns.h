// End-to-end experiment runners. Each campaign reproduces one of the
// paper's measurement pipelines against the simulated platform and
// returns the data its table/figure reports. The bench binaries are thin
// wrappers over these.
//
// Campaigns run on the sharded columnar pipeline: the trace budget splits
// into shards (core/parallel.h), each with its own RNG stream and trace
// source (core/trace_source.h); shards acquire pooled TraceBatches and
// feed them to AnalysisSinks (core/analysis_sink.h), whose partial state
// merges in shard order. Guessing-entropy checkpoints are per-shard
// engine snapshots — no mid-campaign merge barriers. Results are a pure
// function of (seed, shards): any worker count gives bit-identical
// output, and shards = 1 reproduces the original sequential loop
// bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/analysis_sink.h"
#include "core/cpa.h"
#include "core/parallel.h"
#include "core/trace_source.h"
#include "core/tvla.h"
#include "smc/key_database.h"
#include "soc/device_profile.h"
#include "victim/fast_trace.h"

namespace psc::core {

// Optional job-level progress hook: invoked after every consumed
// acquisition batch with (traces_consumed_so_far, traces_total),
// cumulative across all shards of the campaign. Worker threads call it
// concurrently, so the callee must be thread-safe; each call carries a
// unique cumulative count, but calls from different shards may arrive
// out of order (a callee tracking a high-water mark should max(), not
// assign). The hook observes — it must not mutate campaign state, and
// it runs on the acquisition path, so keep it cheap.
using CampaignProgressFn =
    std::function<void(std::size_t consumed, std::size_t total)>;

// ---------- TVLA campaigns (Tables 3 and 5; Table 6 first column) ----------

struct TvlaCampaignConfig {
  soc::DeviceProfile profile;
  victim::VictimModel victim = victim::VictimModel::user_space();
  // Traces per (class, collection): two collections per class, so the
  // paper's 10k per class corresponds to 5000 here.
  std::size_t traces_per_set = 5000;
  // Also assess the IOReport "PCPU" channel (Table 6, first column).
  bool include_pcpu = false;
  // Firmware countermeasure applied to the SMC channel (section 5).
  smc::MitigationPolicy mitigation = smc::MitigationPolicy::none();
  std::uint64_t seed = 1;
  // Sharded execution (see core/parallel.h): workers = thread count,
  // shards = partial-state count (0 = one per worker; 1 = sequential).
  std::size_t workers = 1;
  std::size_t shards = 0;
  CampaignProgressFn progress{};  // see CampaignProgressFn above
};

struct TvlaChannelResult {
  std::string channel;  // SMC key name or "PCPU"
  TvlaMatrix matrix;
};

struct TvlaCampaignResult {
  aes::Block victim_key{};
  std::size_t traces_per_set = 0;
  std::vector<TvlaChannelResult> channels;

  const TvlaChannelResult* find(const std::string& channel) const noexcept;
};

TvlaCampaignResult run_tvla_campaign(const TvlaCampaignConfig& config);

// ---------- CPA campaigns (Table 4; Figures 1a and 1b) ----------

struct CpaCampaignConfig {
  soc::DeviceProfile profile;
  victim::VictimModel victim = victim::VictimModel::user_space();
  std::size_t trace_count = 1'000'000;
  std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  // SMC keys to attack; empty = every workload-dependent key except PHPS
  // (the estimate channel carries no signal, as Table 3 establishes).
  std::vector<smc::FourCc> keys;
  // Trace counts at which to snapshot GE (ascending; the final count is
  // always evaluated).
  std::vector<std::size_t> checkpoints;
  // Firmware countermeasure applied to the SMC channel (section 5).
  smc::MitigationPolicy mitigation = smc::MitigationPolicy::none();
  std::uint64_t seed = 1;
  // Sharded execution (see core/parallel.h): workers = thread count,
  // shards = partial-state count (0 = one per worker; 1 = sequential).
  std::size_t workers = 1;
  std::size_t shards = 0;
  CampaignProgressFn progress{};  // see CampaignProgressFn above
};

struct GeCurvePoint {
  std::size_t traces = 0;
  double ge_bits = 0.0;
  double mean_rank = 0.0;
  int recovered_bytes = 0;
};

struct CpaKeyResult {
  smc::FourCc key;
  // Final analysis per model, aligned with CpaCampaignConfig::models.
  std::vector<ModelResult> final_results;
  // GE trajectory per model, aligned the same way.
  std::vector<std::vector<GeCurvePoint>> curves;
};

struct CpaCampaignResult {
  aes::Block victim_key{};
  std::array<aes::Block, aes::num_rounds + 1> round_keys{};
  std::size_t trace_count = 0;
  std::vector<CpaKeyResult> keys;

  const CpaKeyResult* find(smc::FourCc key) const noexcept;
};

CpaCampaignResult run_cpa_campaign(const CpaCampaignConfig& config);

// ---------- combined campaign (one acquisition, every analysis) ----------
//
// Runs the TVLA collection protocol once — six labeled (class, collection)
// sets — and fans every batch out to TVLA, CPA and guessing-entropy sinks
// at the same time. The two random-plaintext collections double as the
// CPA trace stream, so one trace budget yields Table 3's matrices and
// Table 4's rankings together. At equal (seed, shards, victim, device,
// mitigation, traces_per_set, include_pcpu), the TVLA half is
// bit-identical to run_tvla_campaign.

struct CombinedCampaignConfig {
  soc::DeviceProfile profile;
  victim::VictimModel victim = victim::VictimModel::user_space();
  // Traces per (class, collection); the CPA stream sees 2x this.
  std::size_t traces_per_set = 5000;
  bool include_pcpu = false;
  std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  // SMC keys to attack with CPA; empty = every workload-dependent key
  // except PHPS (and PCPU when included).
  std::vector<smc::FourCc> keys;
  // CPA trace counts at which to snapshot GE (ascending, over the random
  // stream of 2 * traces_per_set; the final count is always evaluated).
  std::vector<std::size_t> checkpoints;
  smc::MitigationPolicy mitigation = smc::MitigationPolicy::none();
  std::uint64_t seed = 1;
  std::size_t workers = 1;
  std::size_t shards = 0;
  CampaignProgressFn progress{};  // see CampaignProgressFn above
};

struct CombinedCampaignResult {
  aes::Block victim_key{};
  std::array<aes::Block, aes::num_rounds + 1> round_keys{};
  std::size_t traces_per_set = 0;
  std::size_t cpa_trace_count = 0;  // 2 * traces_per_set
  std::vector<TvlaChannelResult> tvla;
  std::vector<CpaKeyResult> cpa;

  const TvlaChannelResult* find_tvla(const std::string& channel) const noexcept;
  const CpaKeyResult* find_cpa(smc::FourCc key) const noexcept;
};

CombinedCampaignResult run_combined_campaign(
    const CombinedCampaignConfig& config);

// ---------- source-generic sink campaign ----------
//
// The combined campaign's acquisition protocol over an arbitrary trace
// source: six labeled (class, collection) sets fan out to a TvlaSink on
// every channel plus optional per-channel CPA/GE sinks. The source is
// built per shard from `make_source(secret, seed)` — exactly how the AES
// campaigns construct their LiveTraceSource — so any TraceSource-shaped
// victim/channel pair (the scenario registry's currency) inherits the
// sharded pipeline, the sink layer and the purity guarantee: results are
// a function of (seed, shards) only. run_tvla_campaign and
// run_combined_campaign are thin wrappers over this runner, which is what
// makes scenario-registry runs of the AES scenarios bit-identical to the
// legacy entry points.

using SinkSourceFactory = std::function<std::unique_ptr<TraceSource>(
    const aes::Block& secret, std::uint64_t seed)>;

struct SinkCampaignConfig {
  // Channel columns the source reports, in column order.
  std::vector<util::FourCc> channels;
  SinkSourceFactory make_source;
  // Traces per (class, collection); the random stream seen by CPA sinks
  // is 2x this.
  std::size_t traces_per_set = 5000;
  // Channel columns to attack with CPA/GE; empty = TVLA only. The secret
  // is interpreted as an AES-128 key for ranking (the CpaEngine's model).
  std::vector<std::size_t> cpa_columns;
  std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  // CPA trace counts at which to snapshot GE (over 2 * traces_per_set).
  std::vector<std::size_t> checkpoints;
  std::uint64_t seed = 1;
  std::size_t workers = 1;
  std::size_t shards = 0;
  CampaignProgressFn progress{};  // see CampaignProgressFn above
  // Optional extra per-shard sink (e.g. a store::RecordingSink teeing the
  // acquisition to disk); non-owning, appended to the shard's MultiSink.
  // Adding or removing it never changes the campaign's RNG stream.
  std::function<AnalysisSink*(std::size_t shard)> extra_sink{};
};

struct SinkCampaignResult {
  aes::Block secret{};
  std::array<aes::Block, aes::num_rounds + 1> round_keys{};
  std::size_t traces_per_set = 0;
  std::size_t cpa_trace_count = 0;  // 2 * traces_per_set
  std::vector<TvlaChannelResult> tvla;  // one per channel, column order
  std::vector<CpaKeyResult> cpa;        // one per cpa_columns entry

  const TvlaChannelResult* find_tvla(const std::string& channel) const noexcept;
};

SinkCampaignResult run_sink_campaign(const SinkCampaignConfig& config);

// Log-spaced checkpoint schedule from `first` to `last` (inclusive).
std::vector<std::size_t> log_spaced_checkpoints(std::size_t first,
                                                std::size_t last,
                                                std::size_t count);

}  // namespace psc::core
