#include "core/trace_batch.h"

#include <algorithm>

namespace psc::core {

void TraceBatch::reset_channels(std::size_t channels) {
  plaintexts_.clear();
  ciphertexts_.clear();
  if (columns_.size() > channels) {
    columns_.resize(channels);
  } else {
    while (columns_.size() < channels) {
      columns_.emplace_back();
    }
  }
  for (auto& column : columns_) {
    column.clear();
  }
}

void TraceBatch::reserve(std::size_t n) {
  plaintexts_.reserve(n);
  ciphertexts_.reserve(n);
  for (auto& column : columns_) {
    column.reserve(n);
  }
}

void TraceBatch::clear() noexcept {
  plaintexts_.clear();
  ciphertexts_.clear();
  for (auto& column : columns_) {
    column.clear();
  }
}

void TraceBatch::resize(std::size_t n) {
  plaintexts_.resize(n);
  ciphertexts_.resize(n);
  for (auto& column : columns_) {
    column.resize(n);
  }
}

std::span<double> TraceBatch::column(std::size_t c) {
  if (c >= columns_.size()) {
    throw std::out_of_range("TraceBatch::column: bad channel index");
  }
  return columns_[c];
}

std::span<const double> TraceBatch::column(std::size_t c) const {
  if (c >= columns_.size()) {
    throw std::out_of_range("TraceBatch::column: bad channel index");
  }
  return columns_[c];
}

void TraceBatch::append(const aes::Block& plaintext,
                        const aes::Block& ciphertext,
                        std::span<const double> values) {
  if (values.size() != columns_.size()) {
    throw std::invalid_argument("TraceBatch::append: value count mismatch");
  }
  plaintexts_.push_back(plaintext);
  ciphertexts_.push_back(ciphertext);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
}

void TraceBatch::append(const TraceBatch& other, std::size_t begin,
                        std::size_t count) {
  if (other.channels() != channels()) {
    throw std::invalid_argument("TraceBatch::append: channel count mismatch");
  }
  if (begin > other.size() || count > other.size() - begin) {
    throw std::out_of_range("TraceBatch::append: bad source range");
  }
  const auto end = begin + count;
  plaintexts_.insert(plaintexts_.end(), other.plaintexts_.begin() + begin,
                     other.plaintexts_.begin() + end);
  ciphertexts_.insert(ciphertexts_.end(), other.ciphertexts_.begin() + begin,
                      other.ciphertexts_.begin() + end);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].insert(columns_[c].end(), other.columns_[c].begin() + begin,
                       other.columns_[c].begin() + end);
  }
}

TraceBatchPool::Lease TraceBatchPool::acquire() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!free_.empty()) {
      TraceBatch batch = std::move(free_.back());
      free_.pop_back();
      batch.reset_channels(channels_);
      return Lease(this, std::move(batch));
    }
  }
  TraceBatch batch(channels_);
  batch.reserve(capacity_);
  return Lease(this, std::move(batch));
}

void TraceBatchPool::release(TraceBatch batch) {
  batch.clear();
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(std::move(batch));
}

}  // namespace psc::core
