// Trace records and sets: what the attacker logs per measurement window —
// the chosen plaintext, the observed ciphertext and the SMC key values
// read right after the window (paper section 3.4).
//
// Storage is columnar: TraceSet is a thin wrapper over core::TraceBatch
// (one contiguous array per field, one contiguous value column per
// channel), so replay and offline analysis ingest whole columns without
// gathering. TraceRecord and the per-record add() path remain as thin
// conveniences over the batch core. CSV round-tripping uses
// shortest-round-trip float formatting so captures replay bit-identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "core/trace_batch.h"
#include "util/fourcc.h"

namespace psc::core {

// One logical trace in record (AoS) form — the convenience currency of
// tests and small captures; bulk paths use TraceBatch columns directly.
struct TraceRecord {
  aes::Block plaintext{};
  aes::Block ciphertext{};
  std::vector<double> values;  // aligned with TraceSet::keys()
};

class TraceSet {
 public:
  TraceSet() = default;
  explicit TraceSet(std::vector<util::FourCc> keys)
      : keys_(std::move(keys)), batch_(keys_.size()) {}

  const std::vector<util::FourCc>& keys() const noexcept { return keys_; }
  std::size_t size() const noexcept { return batch_.size(); }
  bool empty() const noexcept { return batch_.empty(); }

  // Appends a record; its value count must match keys().size(). Thin
  // wrapper over the columnar append.
  void add(TraceRecord record);

  // Bulk-appends every row of `batch` (channel count must match).
  void append(const TraceBatch& batch);

  // Row view into the columnar storage (no value copy).
  TraceBatch::ConstRow operator[](std::size_t i) const {
    return batch_.row(i);
  }

  // The columnar storage itself: replay sources and engines consume this.
  const TraceBatch& batch() const noexcept { return batch_; }

  // Index of a key's value column; nullopt if absent.
  std::optional<std::size_t> key_index(util::FourCc key) const noexcept;

  // All values of one key column — a zero-copy view into the column,
  // valid until the set is modified or destroyed.
  std::span<const double> column(std::size_t key_idx) const;

  // CSV persistence: header "plaintext,ciphertext,<KEY>..." with hex
  // blocks and decimal values.
  void save_csv(std::ostream& out) const;
  static TraceSet load_csv(std::istream& in);

 private:
  std::vector<util::FourCc> keys_;
  TraceBatch batch_;
};

}  // namespace psc::core
