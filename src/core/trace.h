// Trace records: what the attacker logs per measurement window — the
// chosen plaintext, the observed ciphertext and the SMC key values read
// right after the window (paper section 3.4). TraceSet supports CSV
// round-tripping so campaigns can be captured and re-analyzed offline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "util/fourcc.h"

namespace psc::core {

struct TraceRecord {
  aes::Block plaintext{};
  aes::Block ciphertext{};
  std::vector<double> values;  // aligned with TraceSet::keys()
};

class TraceSet {
 public:
  TraceSet() = default;
  explicit TraceSet(std::vector<util::FourCc> keys) : keys_(std::move(keys)) {}

  const std::vector<util::FourCc>& keys() const noexcept { return keys_; }
  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }

  // Appends a record; its value count must match keys().size().
  void add(TraceRecord record);

  const TraceRecord& operator[](std::size_t i) const { return records_[i]; }

  // Index of a key's value column; nullopt if absent.
  std::optional<std::size_t> key_index(util::FourCc key) const noexcept;

  // All values of one key column.
  std::vector<double> column(std::size_t key_idx) const;

  // CSV persistence: header "plaintext,ciphertext,<KEY>..." with hex
  // blocks and decimal values.
  void save_csv(std::ostream& out) const;
  static TraceSet load_csv(std::istream& in);

 private:
  std::vector<util::FourCc> keys_;
  std::vector<TraceRecord> records_;
};

}  // namespace psc::core
