#include "core/trace_source.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "smc/key_database.h"

namespace psc::core {

namespace {

// Acquisition chunk size for the batched helper loops; bounds staging
// memory while keeping the per-chunk virtual-call overhead negligible.
constexpr std::size_t default_chunk = 1024;

void check_channels(const TraceSource& source, const TraceBatch& batch,
                    const char* who) {
  if (batch.channels() != source.keys().size()) {
    throw std::invalid_argument(std::string(who) +
                                ": batch channel count mismatch");
  }
}

}  // namespace

void TraceSource::collect_batch(TraceBatch& batch) {
  check_channels(*this, batch, "TraceSource::collect_batch");
  const auto pts = batch.plaintexts();
  const auto cts = batch.ciphertexts();
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const TraceRecord record = collect(pts[t]);
    pts[t] = record.plaintext;
    cts[t] = record.ciphertext;
    for (std::size_t c = 0; c < batch.channels(); ++c) {
      batch.column(c)[t] = record.values[c];
    }
  }
}

void collect_random_batch(TraceSource& source, std::size_t count,
                          util::Xoshiro256& rng, TraceBatch& batch) {
  batch.clear();
  batch.resize(count);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  source.collect_batch(batch);
}

// ---------- LiveTraceSource ----------

LiveTraceSource::LiveTraceSource(const LiveSourceConfig& config,
                                 const aes::Block& victim_key,
                                 std::uint64_t seed)
    : source_(config.profile, victim_key, config.victim, seed,
              config.mitigation),
      keys_(source_.keys()),
      include_pcpu_(config.include_pcpu),
      scratch_(source_.keys().size()) {
  if (include_pcpu_) {
    keys_.push_back(util::FourCc("PCPU"));
  }
}

std::vector<util::FourCc> LiveTraceSource::channel_names(
    const LiveSourceConfig& config) {
  const smc::KeyDatabase database = smc::apply_mitigations(
      smc::KeyDatabase::for_device(config.profile.name), config.mitigation);
  std::vector<util::FourCc> keys = database.workload_dependent_keys();
  if (config.include_pcpu) {
    keys.push_back(util::FourCc("PCPU"));
  }
  return keys;
}

TraceRecord LiveTraceSource::collect(const aes::Block& plaintext) {
  TraceRecord record;
  record.plaintext = plaintext;
  record.values.resize(keys_.size());
  std::uint64_t pcpu_mj = 0;
  source_.collect_into(plaintext, record.ciphertext,
                       std::span<double>(record.values.data(),
                                         source_.keys().size()),
                       pcpu_mj);
  if (include_pcpu_) {
    record.values.back() = static_cast<double>(pcpu_mj);
  }
  return record;
}

void LiveTraceSource::collect_batch(TraceBatch& batch) {
  check_channels(*this, batch, "LiveTraceSource::collect_batch");
  const auto pts = batch.plaintexts();
  const auto cts = batch.ciphertexts();
  const std::size_t smc_n = source_.keys().size();
  const std::span<double> scratch(scratch_.data(), smc_n);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    std::uint64_t pcpu_mj = 0;
    source_.collect_into(pts[t], cts[t], scratch, pcpu_mj);
    for (std::size_t c = 0; c < smc_n; ++c) {
      batch.column(c)[t] = scratch_[c];
    }
    if (include_pcpu_) {
      batch.column(smc_n)[t] = static_cast<double>(pcpu_mj);
    }
  }
}

// ---------- ReplayTraceSource ----------

ReplayTraceSource::ReplayTraceSource(std::shared_ptr<const TraceSet> set)
    : ReplayTraceSource(std::move(set), 0,
                        std::numeric_limits<std::size_t>::max()) {}

ReplayTraceSource::ReplayTraceSource(std::shared_ptr<const TraceSet> set,
                                     std::size_t begin, std::size_t count)
    : set_(std::move(set)) {
  if (!set_) {
    throw std::invalid_argument("ReplayTraceSource: null trace set");
  }
  pos_ = std::min(begin, set_->size());
  end_ = count > set_->size() - pos_ ? set_->size() : pos_ + count;
}

const std::vector<util::FourCc>& ReplayTraceSource::keys() const noexcept {
  return set_->keys();
}

TraceRecord ReplayTraceSource::collect(const aes::Block& /*plaintext*/) {
  if (pos_ >= end_) {
    throw std::out_of_range("ReplayTraceSource: trace set exhausted");
  }
  const TraceBatch::ConstRow row = (*set_)[pos_++];
  TraceRecord record;
  record.plaintext = row.plaintext;
  record.ciphertext = row.ciphertext;
  record.values.resize(row.values.size());
  for (std::size_t c = 0; c < record.values.size(); ++c) {
    record.values[c] = row.values[c];
  }
  return record;
}

void ReplayTraceSource::collect_batch(TraceBatch& batch) {
  check_channels(*this, batch, "ReplayTraceSource::collect_batch");
  const std::size_t n = batch.size();
  if (n > end_ - pos_) {
    throw std::out_of_range("ReplayTraceSource: trace set exhausted");
  }
  const TraceBatch& stored = set_->batch();
  batch.clear();
  batch.append(stored, pos_, n);
  pos_ += n;
}

std::optional<std::size_t> ReplayTraceSource::remaining() const noexcept {
  return end_ - pos_;
}

// ---------- SyntheticTraceSource ----------

SyntheticTraceSource::SyntheticTraceSource(const SyntheticSourceConfig& config,
                                           const aes::Block& victim_key,
                                           std::uint64_t seed)
    : cipher_(victim_key),
      evaluator_(config.leakage),
      noise_(config.noise_sigma),
      rng_(seed),
      gain_(config.gain),
      keys_({config.channel}) {}

double SyntheticTraceSource::leak_value(const aes::Block& plaintext,
                                        aes::Block& ciphertext) {
  aes::RoundTrace trace;
  ciphertext = cipher_.encrypt_trace(plaintext, trace);
  const double value = gain_ * evaluator_.energy_deviation(plaintext, trace);
  return noise_.apply(value, rng_);
}

TraceRecord SyntheticTraceSource::collect(const aes::Block& plaintext) {
  TraceRecord record;
  record.plaintext = plaintext;
  record.values.push_back(leak_value(plaintext, record.ciphertext));
  return record;
}

void SyntheticTraceSource::collect_batch(TraceBatch& batch) {
  check_channels(*this, batch, "SyntheticTraceSource::collect_batch");
  const auto pts = batch.plaintexts();
  const auto cts = batch.ciphertexts();
  const auto values = batch.column(0);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    values[t] = leak_value(pts[t], cts[t]);
  }
}

// ---------- helpers ----------

TraceSet capture_trace_set(TraceSource& source, std::size_t count,
                           util::Xoshiro256& rng) {
  TraceSet set(source.keys());
  TraceBatch batch(source.keys().size());
  batch.reserve(std::min(count, default_chunk));
  std::size_t produced = 0;
  while (produced < count) {
    const std::size_t chunk = std::min(default_chunk, count - produced);
    collect_random_batch(source, chunk, rng, batch);
    set.append(batch);
    produced += chunk;
  }
  return set;
}

CpaEngine accumulate_cpa(TraceSource& source, util::FourCc key,
                         const std::vector<power::PowerModel>& models,
                         std::size_t count, util::Xoshiro256& rng) {
  const auto& keys = source.keys();
  const auto it = std::find(keys.begin(), keys.end(), key);
  if (it == keys.end()) {
    throw std::invalid_argument("accumulate_cpa: source has no channel " +
                                key.str());
  }
  const auto column = static_cast<std::size_t>(it - keys.begin());
  if (count == 0) {
    const auto remaining = source.remaining();
    if (!remaining) {
      throw std::invalid_argument(
          "accumulate_cpa: count = 0 (everything remaining) requires a "
          "finite source");
    }
    count = *remaining;
  }

  CpaEngine engine(models);
  TraceBatch batch(keys.size());
  batch.reserve(std::min(count, default_chunk));
  std::size_t produced = 0;
  while (produced < count) {
    const std::size_t chunk = std::min(default_chunk, count - produced);
    collect_random_batch(source, chunk, rng, batch);
    engine.add_batch(batch, column);
    produced += chunk;
  }
  return engine;
}

}  // namespace psc::core
