#include "core/trace_source.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "smc/key_database.h"

namespace psc::core {

void TraceSource::collect_batch(std::size_t count, util::Xoshiro256& rng,
                                std::vector<TraceRecord>& out) {
  out.reserve(out.size() + count);
  aes::Block pt;
  for (std::size_t t = 0; t < count; ++t) {
    rng.fill_bytes(pt);
    out.push_back(collect(pt));
  }
}

// ---------- LiveTraceSource ----------

LiveTraceSource::LiveTraceSource(const LiveSourceConfig& config,
                                 const aes::Block& victim_key,
                                 std::uint64_t seed)
    : source_(config.profile, victim_key, config.victim, seed,
              config.mitigation),
      keys_(source_.keys()),
      include_pcpu_(config.include_pcpu) {
  if (include_pcpu_) {
    keys_.push_back(util::FourCc("PCPU"));
  }
}

std::vector<util::FourCc> LiveTraceSource::channel_names(
    const LiveSourceConfig& config) {
  const smc::KeyDatabase database = smc::apply_mitigations(
      smc::KeyDatabase::for_device(config.profile.name), config.mitigation);
  std::vector<util::FourCc> keys = database.workload_dependent_keys();
  if (config.include_pcpu) {
    keys.push_back(util::FourCc("PCPU"));
  }
  return keys;
}

TraceRecord LiveTraceSource::collect(const aes::Block& plaintext) {
  victim::FastTraceSource::TraceSample sample = source_.collect(plaintext);
  TraceRecord record;
  record.plaintext = sample.plaintext;
  record.ciphertext = sample.ciphertext;
  record.values = std::move(sample.smc_values);
  if (include_pcpu_) {
    record.values.push_back(static_cast<double>(sample.pcpu_mj));
  }
  return record;
}

// ---------- ReplayTraceSource ----------

ReplayTraceSource::ReplayTraceSource(std::shared_ptr<const TraceSet> set)
    : ReplayTraceSource(std::move(set), 0,
                        std::numeric_limits<std::size_t>::max()) {}

ReplayTraceSource::ReplayTraceSource(std::shared_ptr<const TraceSet> set,
                                     std::size_t begin, std::size_t count)
    : set_(std::move(set)) {
  if (!set_) {
    throw std::invalid_argument("ReplayTraceSource: null trace set");
  }
  pos_ = std::min(begin, set_->size());
  end_ = count > set_->size() - pos_ ? set_->size() : pos_ + count;
}

const std::vector<util::FourCc>& ReplayTraceSource::keys() const noexcept {
  return set_->keys();
}

TraceRecord ReplayTraceSource::collect(const aes::Block& /*plaintext*/) {
  if (pos_ >= end_) {
    throw std::out_of_range("ReplayTraceSource: trace set exhausted");
  }
  return (*set_)[pos_++];
}

std::optional<std::size_t> ReplayTraceSource::remaining() const noexcept {
  return end_ - pos_;
}

// ---------- SyntheticTraceSource ----------

SyntheticTraceSource::SyntheticTraceSource(const SyntheticSourceConfig& config,
                                           const aes::Block& victim_key,
                                           std::uint64_t seed)
    : cipher_(victim_key),
      evaluator_(config.leakage),
      noise_(config.noise_sigma),
      rng_(seed),
      gain_(config.gain),
      keys_({config.channel}) {}

TraceRecord SyntheticTraceSource::collect(const aes::Block& plaintext) {
  TraceRecord record;
  record.plaintext = plaintext;
  aes::RoundTrace trace;
  record.ciphertext = cipher_.encrypt_trace(plaintext, trace);
  const double value =
      gain_ * evaluator_.energy_deviation(plaintext, trace);
  record.values.push_back(noise_.apply(value, rng_));
  return record;
}

// ---------- helpers ----------

TraceSet capture_trace_set(TraceSource& source, std::size_t count,
                           util::Xoshiro256& rng) {
  TraceSet set(source.keys());
  aes::Block pt;
  for (std::size_t t = 0; t < count; ++t) {
    rng.fill_bytes(pt);
    set.add(source.collect(pt));
  }
  return set;
}

CpaEngine accumulate_cpa(TraceSource& source, util::FourCc key,
                         const std::vector<power::PowerModel>& models,
                         std::size_t count, util::Xoshiro256& rng) {
  const auto& keys = source.keys();
  const auto it = std::find(keys.begin(), keys.end(), key);
  if (it == keys.end()) {
    throw std::invalid_argument("accumulate_cpa: source has no channel " +
                                key.str());
  }
  const auto column = static_cast<std::size_t>(it - keys.begin());
  if (count == 0) {
    const auto remaining = source.remaining();
    if (!remaining) {
      throw std::invalid_argument(
          "accumulate_cpa: count = 0 (everything remaining) requires a "
          "finite source");
    }
    count = *remaining;
  }

  CpaEngine engine(models);
  aes::Block pt;
  for (std::size_t t = 0; t < count; ++t) {
    rng.fill_bytes(pt);
    const TraceRecord record = source.collect(pt);
    engine.add_trace(record.plaintext, record.ciphertext,
                     record.values[column]);
  }
  return engine;
}

}  // namespace psc::core
