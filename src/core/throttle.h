// Section 4: frequency-throttling side-channel analysis on the M2.
//
// Reproduces the full experimental sequence on the chip simulator:
//  1. lowpowermode on; AES threads on the P-cores draw ~2.8 W — under the
//     4 W budget, no throttling, P-cores hold 1.968 GHz.
//  2. fmul stressors added on the E-cores push the package past 4 W —
//     the governor throttles the P-cluster; E-cores stay at 2.424 GHz.
//  3. With throttling active, execution-time traces of the AES threads
//     are collected per plaintext class and TVLA-tested. Because the
//     governor acts on the utilization-based PHPS estimate, timing is not
//     data-dependent (Table 6, second column).
#pragma once

#include <cstdint>
#include <vector>

#include "core/tvla.h"
#include "soc/device_profile.h"

namespace psc::core {

struct ThrottleExperimentConfig {
  soc::DeviceProfile profile;  // the paper runs this on the M2 Air
  std::size_t aes_threads = 4;
  std::size_t stressor_threads = 4;
  std::size_t traces_per_set = 60;
  double window_s = 1.0;
  std::uint64_t seed = 1;
};

// Operating points measured during the experiment phases.
struct ThrottleObservation {
  // Phase 1: AES only, lowpowermode.
  double aes_only_power_w = 0.0;
  double aes_only_p_freq_hz = 0.0;
  bool aes_only_throttled = false;
  // Phase 2: AES + E-core stressors.
  double stressed_estimated_power_w = 0.0;
  double stressed_p_freq_hz = 0.0;
  double stressed_e_freq_hz = 0.0;
  bool power_throttled = false;
  bool thermal_throttled = false;
};

struct ThrottleCampaignResult {
  ThrottleObservation observation;
  // TVLA over execution-time traces (seconds per 1000 blocks) collected
  // under active throttling.
  TvlaMatrix timing_matrix;
  double mean_time_per_kblock_s = 0.0;
};

ThrottleCampaignResult run_throttle_campaign(
    const ThrottleExperimentConfig& config);

// The section-4 scoping sweep: package power and P-core frequency as AES
// threads are added one by one in lowpowermode (no stressors). Shows the
// 2.8 W ceiling staying under the 4 W budget.
struct SweepPoint {
  std::size_t aes_threads = 0;
  double package_power_w = 0.0;
  double p_freq_hz = 0.0;
  bool throttled = false;
};

std::vector<SweepPoint> lowpower_aes_sweep(const soc::DeviceProfile& profile,
                                           std::size_t max_threads,
                                           std::uint64_t seed);

}  // namespace psc::core
