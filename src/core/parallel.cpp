#include "core/parallel.h"

#include <algorithm>

namespace psc::core {

std::size_t shard_size(std::size_t total, std::size_t shards,
                       std::size_t s) noexcept {
  if (shards == 0 || s >= shards) {
    return 0;
  }
  return total / shards + (s < total % shards ? 1 : 0);
}

std::size_t shard_begin(std::size_t total, std::size_t shards,
                        std::size_t s) noexcept {
  if (shards == 0) {
    return 0;
  }
  // Clamp every out-of-range index (s >= shards) the same way, so
  // shard_begin(total, shards, shards) == total without relying on the
  // arithmetic below happening to cancel.
  s = std::min(s, shards);
  return s * (total / shards) + std::min(s, total % shards);
}

namespace {

// Set while a pool thread (or the caller) is inside a generation's job;
// a nested run() from a shard job executes inline instead of touching
// the generation state it is itself running under.
thread_local bool tl_in_pool_job = false;

}  // namespace

// One post()ed side job. state transitions under mu_: queued -> running
// (claimed by a worker, or erased from the deque by a stealing finish())
// -> done. fn itself runs outside the lock.
struct WorkerPool::AsyncJob {
  enum State { queued, running, done };
  std::function<void()> fn;
  State state = queued;
};

WorkerPool& WorkerPool::instance() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
}

std::size_t WorkerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threads_.size();
}

void WorkerPool::reserve(std::size_t threads) {
  std::lock_guard<std::mutex> lock(mu_);
  ensure_threads(threads);
}

void WorkerPool::ensure_threads(std::size_t helpers) {
  while (threads_.size() < helpers) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

void WorkerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  // 0 = "no generation seen yet": a thread spawned mid-generation (the
  // generation counter was already bumped under this same mutex before
  // the spawn) must still see it as new and join it.
  std::uint64_t seen = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || generation_ != seen || !async_jobs_.empty();
    });
    if (shutdown_) {
      return;
    }
    // Async jobs are checked before the generation-skip path below: a
    // thread that already saw the current (closed) generation must still
    // drain the async queue instead of spinning back to sleep.
    if (!async_jobs_.empty()) {
      std::shared_ptr<AsyncJob> job = std::move(async_jobs_.front());
      async_jobs_.pop_front();
      job->state = AsyncJob::running;
      lock.unlock();
      tl_in_pool_job = true;
      job->fn();
      tl_in_pool_job = false;
      lock.lock();
      job->state = AsyncJob::done;
      async_cv_.notify_all();
      continue;
    }
    seen = generation_;
    if (!open_ || joined_ >= max_joiners_) {
      continue;  // generation already closed or fully staffed
    }
    ++joined_;
    ++active_;
    const std::function<void(std::size_t)>* fn = fn_;
    const std::size_t jobs = jobs_;
    lock.unlock();
    tl_in_pool_job = true;
    for (;;) {
      const std::size_t s = next_.fetch_add(1, std::memory_order_relaxed);
      if (s >= jobs) {
        break;
      }
      (*fn)(s);
    }
    tl_in_pool_job = false;
    lock.lock();
    if (--active_ == 0) {
      done_cv_.notify_all();
    }
  }
}

void WorkerPool::run(std::size_t jobs, std::size_t participants,
                     const std::function<void(std::size_t)>& fn) {
  if (jobs == 0) {
    return;
  }
  if (participants <= 1 || jobs == 1 || tl_in_pool_job) {
    for (std::size_t s = 0; s < jobs; ++s) {
      fn(s);
    }
    return;
  }
  // One generation at a time: a second campaign thread queues here
  // rather than corrupting the published generation.
  std::lock_guard<std::mutex> run_lock(run_mu_);
  const std::size_t helpers = std::min(participants - 1, jobs - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ensure_threads(helpers);
    fn_ = &fn;
    jobs_ = jobs;
    max_joiners_ = helpers;
    joined_ = 0;
    active_ = 0;
    next_.store(0, std::memory_order_relaxed);
    open_ = true;
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is always a participant.
  tl_in_pool_job = true;
  for (;;) {
    const std::size_t s = next_.fetch_add(1, std::memory_order_relaxed);
    if (s >= jobs) {
      break;
    }
    fn(s);
  }
  tl_in_pool_job = false;
  std::unique_lock<std::mutex> lock(mu_);
  open_ = false;  // late wakers skip this generation entirely
  done_cv_.wait(lock, [&] { return active_ == 0; });
  fn_ = nullptr;
}

WorkerPool::AsyncTicket WorkerPool::post(std::function<void()> fn) {
  AsyncTicket ticket;
  ticket.job_ = std::make_shared<AsyncJob>();
  ticket.job_->fn = std::move(fn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ensure_threads(1);
    async_jobs_.push_back(ticket.job_);
  }
  work_cv_.notify_all();
  return ticket;
}

bool WorkerPool::finish(AsyncTicket& ticket) {
  std::shared_ptr<AsyncJob> job = std::move(ticket.job_);
  if (job == nullptr) {
    return false;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (job->state == AsyncJob::queued) {
    // No worker has claimed it: steal it back and run inline. This is
    // what makes finish() deadlock-free — a caller that is itself a pool
    // job (sharded replay) never blocks on a queue no thread can drain.
    async_jobs_.erase(
        std::find(async_jobs_.begin(), async_jobs_.end(), job));
    job->state = AsyncJob::running;
    lock.unlock();
    job->fn();
    lock.lock();
    job->state = AsyncJob::done;
    return false;
  }
  async_cv_.wait(lock, [&] { return job->state == AsyncJob::done; });
  return true;
}

}  // namespace psc::core
