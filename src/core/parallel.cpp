#include "core/parallel.h"

#include <algorithm>

namespace psc::core {

std::size_t shard_size(std::size_t total, std::size_t shards,
                       std::size_t s) noexcept {
  if (shards == 0 || s >= shards) {
    return 0;
  }
  return total / shards + (s < total % shards ? 1 : 0);
}

std::size_t shard_begin(std::size_t total, std::size_t shards,
                        std::size_t s) noexcept {
  if (shards == 0) {
    return 0;
  }
  if (s > shards) {
    s = shards;
  }
  return s * (total / shards) + std::min(s, total % shards);
}

}  // namespace psc::core
