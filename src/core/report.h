// Renderers that print campaign results in the layout of the paper's
// tables and figures (text tables and plot-ready CSV).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "core/campaigns.h"
#include "core/throttle.h"
#include "util/table.h"

namespace psc::core {

// Tables 3/5/6 layout: rows All 0s'/All 1s'/Random', one column group of
// three (All 0s / All 1s / Random) per channel, cells are t-scores.
util::TextTable tvla_table(const std::string& title,
                           const std::vector<TvlaChannelResult>& channels);

// Companion classification grid: TP/TN/FP/FN per cell plus a summary row.
util::TextTable tvla_classification_table(
    const std::string& title, const std::vector<TvlaChannelResult>& channels);

// Table 4 layout: one row per key byte, one column per (key, campaign)
// column; ranks of the correct byte; trailing GE/mean-rank/recovered rows.
struct RankColumn {
  std::string label;          // e.g. "PHPC" or "PHPC (M1)"
  const ModelResult* result;  // points into a campaign result
};
util::TextTable cpa_rank_table(const std::string& title,
                               const std::vector<RankColumn>& columns);

// Fig 1 series: CSV with one row per checkpoint per (device, model) curve.
struct GeCurveSeries {
  std::string label;  // e.g. "M2 Rd0-HW"
  const std::vector<GeCurvePoint>* points;
};
void write_ge_curves_csv(std::ostream& out,
                         const std::vector<GeCurveSeries>& series);

// Fixed-width text rendering of GE curves (a terminal-friendly Fig. 1).
void render_ge_curves(std::ostream& out,
                      const std::vector<GeCurveSeries>& series);

// Section 4 observations in table form.
util::TextTable throttle_observation_table(const ThrottleObservation& obs);

}  // namespace psc::core
