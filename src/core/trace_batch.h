// Columnar trace storage: the native currency of the acquisition and
// analysis pipeline.
//
// A TraceBatch is a struct-of-arrays slab: one contiguous plaintext array,
// one contiguous ciphertext array, and one contiguous value column per
// measured channel. Acquisition follows a stage-then-fill protocol —
//
//   batch.clear();
//   batch.resize(n);                    // no allocation within capacity
//   for (auto& pt : batch.plaintexts()) pt = ...;  // choose plaintexts
//   source.collect_batch(batch);        // fills ciphertexts + columns
//
// — and analysis engines ingest whole columns (CpaEngine::add_batch,
// TvlaAccumulator::add_batch), so the hot acquire->accumulate loop touches
// only contiguous memory and performs no per-trace heap allocation.
// TraceBatchPool recycles batches across shard jobs: steady-state
// collection is allocation-free after the first few chunks.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <stdexcept>
#include <vector>

#include "aes/aes128.h"

namespace psc::core {

class TraceBatch {
 public:
  TraceBatch() = default;
  explicit TraceBatch(std::size_t channels) { reset_channels(channels); }

  std::size_t channels() const noexcept { return columns_.size(); }
  std::size_t size() const noexcept { return plaintexts_.size(); }
  bool empty() const noexcept { return plaintexts_.empty(); }
  std::size_t capacity() const noexcept { return plaintexts_.capacity(); }

  // Re-shapes the batch for `channels` value columns and drops all rows.
  // Column storage is kept where possible.
  void reset_channels(std::size_t channels);

  // Pre-allocates storage for `n` rows in every array.
  void reserve(std::size_t n);

  // Drops all rows, keeping channel count and storage (the clear-and-refill
  // step of the pooled collection loop).
  void clear() noexcept;

  // Sets the row count: the staging step of the fill protocol. Rows beyond
  // the previous size are zero-initialized; within capacity no allocation
  // happens.
  void resize(std::size_t n);

  std::span<aes::Block> plaintexts() noexcept { return plaintexts_; }
  std::span<const aes::Block> plaintexts() const noexcept {
    return plaintexts_;
  }
  std::span<aes::Block> ciphertexts() noexcept { return ciphertexts_; }
  std::span<const aes::Block> ciphertexts() const noexcept {
    return ciphertexts_;
  }

  // One channel's value column; throws std::out_of_range on a bad index.
  std::span<double> column(std::size_t c);
  std::span<const double> column(std::size_t c) const;

  // Appends one trace: the thin per-record path over the columnar core.
  // `values` must have exactly channels() entries.
  void append(const aes::Block& plaintext, const aes::Block& ciphertext,
              std::span<const double> values);

  // Appends rows [begin, begin + count) of `other`; channel counts must
  // match. The bulk transfer used by replay sources and TraceSet.
  void append(const TraceBatch& other, std::size_t begin, std::size_t count);
  void append(const TraceBatch& other) { append(other, 0, other.size()); }

  // Row view: gathers one logical trace from the columns without copying
  // the value row (values are strided across columns, not contiguous).
  class RowValues {
   public:
    RowValues(const TraceBatch* batch, std::size_t row) noexcept
        : batch_(batch), row_(row) {}
    std::size_t size() const noexcept { return batch_->channels(); }
    double operator[](std::size_t c) const { return batch_->column(c)[row_]; }

   private:
    const TraceBatch* batch_;
    std::size_t row_;
  };
  struct ConstRow {
    const aes::Block& plaintext;
    const aes::Block& ciphertext;
    RowValues values;
  };
  ConstRow row(std::size_t i) const {
    return {plaintexts_[i], ciphertexts_[i], RowValues(this, i)};
  }

 private:
  std::vector<aes::Block> plaintexts_;
  std::vector<aes::Block> ciphertexts_;
  std::vector<std::vector<double>> columns_;  // [channel][row]
};

// Thread-safe pool of reusable batches. Shard jobs acquire a batch at
// start and return it when done, so a run with more shards than workers
// recycles the same few slabs instead of allocating per shard — this is
// how batches travel between shard jobs under core::ParallelRunner.
class TraceBatchPool {
 public:
  // Batches handed out are shaped for `channels` columns with at least
  // `capacity` rows reserved.
  TraceBatchPool(std::size_t channels, std::size_t capacity)
      : channels_(channels), capacity_(capacity) {}

  // RAII lease: returns the batch to the pool on destruction.
  class Lease {
   public:
    Lease(TraceBatchPool* pool, TraceBatch batch) noexcept
        : pool_(pool), batch_(std::move(batch)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), batch_(std::move(other.batch_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr) {
        pool_->release(std::move(batch_));
      }
    }

    TraceBatch& operator*() noexcept { return batch_; }
    TraceBatch* operator->() noexcept { return &batch_; }

   private:
    TraceBatchPool* pool_;
    TraceBatch batch_;
  };

  Lease acquire();

 private:
  void release(TraceBatch batch);

  std::mutex mu_;
  std::vector<TraceBatch> free_;
  std::size_t channels_;
  std::size_t capacity_;
};

}  // namespace psc::core
