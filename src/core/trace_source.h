// Pluggable trace acquisition (the paper's acquire->accumulate loop,
// abstracted). Every campaign, bench and example consumes traces through
// one interface, so the same CPA/TVLA analysis code runs against:
//
//   LiveTraceSource      the simulated device (victim::FastTraceSource
//                        driving the SMC read path), optionally exposing
//                        the IOReport PCPU channel as an extra column;
//   ReplayTraceSource    a recorded TraceSet (e.g. a CSV capture),
//                        decoupling analysis from collection;
//   SyntheticTraceSource a bare leakage model plus measurement noise, for
//                        fast statistical tests of the analysis pipeline.
//
// A fourth source lives in the store layer: store::FileTraceSource
// (store/file_trace_source.h) replays a chunked binary PSTR trace store
// out-of-core — datasets larger than RAM stream through collect_batch
// one chunk at a time, optionally sharded so ParallelRunner workers each
// own a disjoint chunk range of the same file.
//
// The native currency is the columnar core::TraceBatch, filled through a
// stage-then-collect protocol: the caller sizes the batch and writes the
// chosen plaintexts into its plaintext column, then collect_batch()
// computes the ciphertext and channel columns in place. All three shipped
// sources override collect_batch with allocation-free columnar fills; the
// per-trace collect() path remains as a thin wrapper for convenience.
//
// Sources are single-threaded; the parallel campaign runner gives each
// shard its own source built from a split RNG stream (see core/parallel.h).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "aes/aes128.h"
#include "core/cpa.h"
#include "core/trace.h"
#include "core/trace_batch.h"
#include "power/leakage_model.h"
#include "power/noise.h"
#include "smc/mitigation.h"
#include "soc/device_profile.h"
#include "util/rng.h"
#include "victim/fast_trace.h"

namespace psc::core {

class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Channel columns reported per trace, aligned with the batch's value
  // columns (and TraceRecord::values).
  virtual const std::vector<util::FourCc>& keys() const noexcept = 0;

  // One trace for an attacker-chosen plaintext. Replay sources ignore
  // `plaintext` and return the next recorded trace (whose own plaintext is
  // in the returned record).
  virtual TraceRecord collect(const aes::Block& plaintext) = 0;

  // Fills the ciphertext and value columns of `batch` for its staged
  // plaintext column (the caller resizes the batch and writes chosen
  // plaintexts first). Replay sources overwrite the plaintext column with
  // the recorded plaintexts instead. Throws std::invalid_argument unless
  // batch.channels() == keys().size(). The base implementation loops
  // collect(); sources override it with allocation-free columnar fills
  // that are bit-identical to the loop.
  virtual void collect_batch(TraceBatch& batch);

  // Seconds of attacker wall-time one trace costs (the SMC update window).
  virtual double window_s() const noexcept { return 1.0; }

  // Traces left before the source is exhausted; nullopt for unbounded
  // (live / synthetic) sources.
  virtual std::optional<std::size_t> remaining() const noexcept {
    return std::nullopt;
  }
};

// Clears `batch`, stages `count` plaintexts drawn from `rng` and collects
// into them: one chosen-plaintext acquisition chunk. RNG consumption and
// results match a collect() loop drawing one plaintext per trace.
void collect_random_batch(TraceSource& source, std::size_t count,
                          util::Xoshiro256& rng, TraceBatch& batch);

// ---------- live simulated capture ----------

struct LiveSourceConfig {
  soc::DeviceProfile profile;
  victim::VictimModel victim = victim::VictimModel::user_space();
  smc::MitigationPolicy mitigation = smc::MitigationPolicy::none();
  // Also expose the IOReport PCPU energy (mJ) as a trailing "PCPU" column.
  bool include_pcpu = false;
};

class LiveTraceSource final : public TraceSource {
 public:
  LiveTraceSource(const LiveSourceConfig& config, const aes::Block& victim_key,
                  std::uint64_t seed);

  // The channel columns a source with this config will report, without
  // paying for device calibration (the set depends only on the device's
  // key database and the mitigation policy).
  static std::vector<util::FourCc> channel_names(
      const LiveSourceConfig& config);

  const std::vector<util::FourCc>& keys() const noexcept override {
    return keys_;
  }
  TraceRecord collect(const aes::Block& plaintext) override;
  // Columnar fill through FastTraceSource::collect_into — no per-trace
  // allocation.
  void collect_batch(TraceBatch& batch) override;
  double window_s() const noexcept override { return source_.window_s(); }

  // The underlying calibrated device pipeline.
  const victim::FastTraceSource& device() const noexcept { return source_; }

 private:
  victim::FastTraceSource source_;
  std::vector<util::FourCc> keys_;
  bool include_pcpu_;
  std::vector<double> scratch_;  // one row of SMC values, reused
};

// ---------- CSV / TraceSet replay ----------

class ReplayTraceSource final : public TraceSource {
 public:
  // Replays every record of `set` in order.
  explicit ReplayTraceSource(std::shared_ptr<const TraceSet> set);
  // Replays records [begin, begin + count) — a shard view for parallel
  // offline analysis.
  ReplayTraceSource(std::shared_ptr<const TraceSet> set, std::size_t begin,
                    std::size_t count);

  const std::vector<util::FourCc>& keys() const noexcept override;
  // Returns the next recorded trace; `plaintext` is ignored. Throws
  // std::out_of_range once the view is exhausted.
  TraceRecord collect(const aes::Block& plaintext) override;
  // Bulk column copy of the next batch.size() recorded traces (including
  // their plaintexts); throws std::out_of_range if fewer remain.
  void collect_batch(TraceBatch& batch) override;
  std::optional<std::size_t> remaining() const noexcept override;

 private:
  std::shared_ptr<const TraceSet> set_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
};

// ---------- synthetic leakage ----------

struct SyntheticSourceConfig {
  // Chip-side leakage shape; the default is the calibrated Apple-silicon
  // profile.
  power::LeakageConfig leakage = power::LeakageConfig::apple_silicon_default();
  // Channel units per joule of data-dependent energy deviation.
  double gain = 1.0;
  // Additive Gaussian measurement noise, in channel units (after gain).
  double noise_sigma = 0.0;
  util::FourCc channel = util::FourCc("SYNT");
};

class SyntheticTraceSource final : public TraceSource {
 public:
  SyntheticTraceSource(const SyntheticSourceConfig& config,
                       const aes::Block& victim_key, std::uint64_t seed);

  const std::vector<util::FourCc>& keys() const noexcept override {
    return keys_;
  }
  TraceRecord collect(const aes::Block& plaintext) override;
  void collect_batch(TraceBatch& batch) override;

  const aes::Aes128& cipher() const noexcept { return cipher_; }

 private:
  double leak_value(const aes::Block& plaintext, aes::Block& ciphertext);

  aes::Aes128 cipher_;
  power::LeakageEvaluator evaluator_;
  power::GaussianNoise noise_;
  util::Xoshiro256 rng_;
  double gain_;
  std::vector<util::FourCc> keys_;
};

// ---------- source-generic acquisition helpers ----------

// Captures `count` chosen-plaintext traces (plaintexts drawn from `rng`)
// into a TraceSet ready for CSV persistence. Runs on the batched path.
TraceSet capture_trace_set(TraceSource& source, std::size_t count,
                           util::Xoshiro256& rng);

// Acquire-and-accumulate CPA over any source: feeds `count` traces
// (0 = everything remaining, for finite sources) into a CpaEngine
// attacking channel `key`. Runs on the batched path; feeding order and
// arithmetic match a hand-rolled collect()/add_trace loop bit-for-bit.
CpaEngine accumulate_cpa(TraceSource& source, util::FourCc key,
                         const std::vector<power::PowerModel>& models,
                         std::size_t count, util::Xoshiro256& rng);

}  // namespace psc::core
