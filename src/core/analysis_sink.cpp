#include "core/analysis_sink.h"

#include <algorithm>
#include <stdexcept>

namespace psc::core {

// ---------- CpaSink ----------

CpaSink::CpaSink(std::vector<power::PowerModel> models,
                 std::vector<std::size_t> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("CpaSink: need at least one column");
  }
  engines_.reserve(columns_.size());
  for (std::size_t k = 0; k < columns_.size(); ++k) {
    engines_.emplace_back(models);
  }
}

void CpaSink::consume(const TraceBatch& batch, const BatchLabel& label) {
  if (!label.random_plaintexts()) {
    return;
  }
  for (std::size_t k = 0; k < engines_.size(); ++k) {
    engines_[k].add_batch(batch, columns_[k]);
  }
}

std::size_t CpaSink::trace_count() const noexcept {
  return engines_.front().trace_count();
}

void CpaSink::merge(const CpaSink& other) {
  if (columns_ != other.columns_) {
    throw std::invalid_argument("CpaSink::merge: column lists differ");
  }
  for (std::size_t k = 0; k < engines_.size(); ++k) {
    engines_[k].merge(other.engines_[k]);
  }
}

// ---------- TvlaSink ----------

void TvlaSink::consume(const TraceBatch& batch, const BatchLabel& label) {
  if (!label.cls.has_value()) {
    return;
  }
  if (batch.channels() != accumulators_.size()) {
    throw std::invalid_argument("TvlaSink::consume: channel count mismatch");
  }
  for (std::size_t c = 0; c < accumulators_.size(); ++c) {
    accumulators_[c].add_batch(*label.cls, label.primed, batch.column(c));
  }
}

void TvlaSink::merge(const TvlaSink& other) {
  if (accumulators_.size() != other.accumulators_.size()) {
    throw std::invalid_argument("TvlaSink::merge: channel count mismatch");
  }
  for (std::size_t c = 0; c < accumulators_.size(); ++c) {
    accumulators_[c].merge(other.accumulators_[c]);
  }
}

// ---------- GeCheckpointSink ----------

GeCheckpointSink::GeCheckpointSink(std::vector<power::PowerModel> models,
                                   std::size_t column,
                                   std::vector<std::size_t> targets)
    : engine_(std::move(models)),
      column_(column),
      targets_(std::move(targets)) {
  if (!std::is_sorted(targets_.begin(), targets_.end())) {
    throw std::invalid_argument("GeCheckpointSink: targets not ascending");
  }
  snapshots_.reserve(targets_.size());
  // Targets already satisfied by the empty engine (e.g. a zero share of a
  // small checkpoint on a late shard) snapshot immediately.
  while (next_target_ < targets_.size() && targets_[next_target_] == 0) {
    snapshots_.push_back(engine_.snapshot());
    ++next_target_;
  }
}

void GeCheckpointSink::consume(const TraceBatch& batch,
                               const BatchLabel& label) {
  if (!label.random_plaintexts()) {
    return;
  }
  const auto pts = batch.plaintexts();
  const auto cts = batch.ciphertexts();
  const auto values = batch.column(column_);
  std::size_t begin = 0;
  while (begin < batch.size()) {
    std::size_t end = batch.size();
    // Split the batch at the next snapshot target so the snapshot captures
    // exactly the target trace count.
    if (next_target_ < targets_.size()) {
      const std::size_t to_target =
          targets_[next_target_] - engine_.trace_count();
      end = std::min(end, begin + to_target);
    }
    engine_.add_trace_batch(pts.subspan(begin, end - begin),
                            cts.subspan(begin, end - begin),
                            values.subspan(begin, end - begin));
    while (next_target_ < targets_.size() &&
           engine_.trace_count() == targets_[next_target_]) {
      snapshots_.push_back(engine_.snapshot());
      ++next_target_;
    }
    begin = end;
  }
}

}  // namespace psc::core
