// Multi-sink analysis: feed several consumers from one acquisition pass.
//
// The paper's Tables 3-6 each re-acquire traces per analysis; at 1M-trace
// scale the acquisition dominates, so this layer decouples "what the
// attacker collects" from "what is computed over it". An AnalysisSink
// consumes columnar TraceBatches tagged with a BatchLabel; MultiSink fans
// one stream out to any number of sinks, so a single sharded acquisition
// pass produces CPA rankings, TVLA matrices and guessing-entropy
// checkpoints concurrently — one trace budget, all the statistics.
//
// Sinks are shard-local: each shard of core::ParallelRunner owns its own
// sinks, and the campaign merges per-sink partial state in shard order
// (CpaSink::merge / TvlaSink::merge), exactly like the bare engines.
//
// Sinks need not compute anything: store::RecordingSink
// (store/trace_file_writer.h) tees the acquisition stream to a PSTR
// trace store, so one pass both analyzes and persists — the recorded
// file replays (store::FileTraceSource) bit-identically to the live run.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "core/cpa.h"
#include "core/trace_batch.h"
#include "core/tvla.h"
#include "power/hypothetical.h"

namespace psc::core {

// Provenance tag of an acquisition batch. Chosen-plaintext CPA batches
// are unlabeled; the TVLA collection protocol labels each batch with its
// (plaintext class, primed-or-not collection) pair.
struct BatchLabel {
  std::optional<PlaintextClass> cls;
  bool primed = false;

  static BatchLabel unlabeled() noexcept { return {}; }
  static BatchLabel tvla(PlaintextClass cls, bool primed) noexcept {
    return {cls, primed};
  }

  // True when the batch carries attacker-unpredictable plaintexts — the
  // only traces a chosen/known-plaintext CPA can rank guesses with.
  bool random_plaintexts() const noexcept {
    return !cls.has_value() || *cls == PlaintextClass::random_pt;
  }
};

class AnalysisSink {
 public:
  virtual ~AnalysisSink() = default;

  // Consumes one acquisition batch. Sinks sharing a MultiSink see the
  // same batches in the same order; a sink ignores batches outside its
  // protocol (e.g. CPA sinks skip fixed-plaintext TVLA sets).
  virtual void consume(const TraceBatch& batch, const BatchLabel& label) = 0;
};

// Fans one acquisition stream out to several sinks, in order. Non-owning:
// the campaign keeps the concrete sinks so it can read their state after
// the pass.
class MultiSink final : public AnalysisSink {
 public:
  MultiSink() = default;
  explicit MultiSink(std::vector<AnalysisSink*> sinks)
      : sinks_(std::move(sinks)) {}

  void add(AnalysisSink* sink) { sinks_.push_back(sink); }

  void consume(const TraceBatch& batch, const BatchLabel& label) override {
    for (AnalysisSink* sink : sinks_) {
      sink->consume(batch, label);
    }
  }

 private:
  std::vector<AnalysisSink*> sinks_;
};

// CPA over one or more channel columns: one CpaEngine per attacked
// column, all fed from the same batches. Consumes random-plaintext
// batches only.
class CpaSink final : public AnalysisSink {
 public:
  CpaSink(std::vector<power::PowerModel> models,
          std::vector<std::size_t> columns);

  void consume(const TraceBatch& batch, const BatchLabel& label) override;

  std::size_t engines() const noexcept { return engines_.size(); }
  const CpaEngine& engine(std::size_t i) const { return engines_.at(i); }
  std::size_t trace_count() const noexcept;

  // Absorbs another sink's accumulator state (same models and columns), as
  // if its batches had been consumed here: the shard-merge step.
  void merge(const CpaSink& other);

 private:
  std::vector<std::size_t> columns_;
  std::vector<CpaEngine> engines_;
};

// TVLA over every channel column: one TvlaAccumulator per channel, fed
// from labeled batches only (unlabeled CPA batches carry no collection
// tag and are skipped).
class TvlaSink final : public AnalysisSink {
 public:
  explicit TvlaSink(std::size_t channels) : accumulators_(channels) {}

  void consume(const TraceBatch& batch, const BatchLabel& label) override;

  std::size_t channels() const noexcept { return accumulators_.size(); }
  const TvlaAccumulator& accumulator(std::size_t c) const {
    return accumulators_.at(c);
  }

  void merge(const TvlaSink& other);

 private:
  std::vector<TvlaAccumulator> accumulators_;
};

// CPA accumulation with engine snapshots at ascending trace-count targets
// — the sharded pipeline's guessing-entropy checkpoints without merge
// barriers. Each shard runs one GeCheckpointSink per attacked channel with
// targets shard_size(checkpoint, shards, s); because those per-shard
// targets sum to exactly the global checkpoint, merging the k-th snapshot
// of every shard (in shard order) reconstructs bit-for-bit the engine a
// sequential run would hold at that checkpoint. A batch straddling a
// target is split so snapshots land exactly on it.
//
// Memory: each snapshot is a full accumulator copy, so a campaign holds
// shards x (targets + 1) engines until the post-pass reduction drains
// them (release_snapshot). With pair-histogram models (rd10_hd, ~13 MB
// per engine) keep the checkpoint schedule short or the shard count
// moderate; single-byte-histogram models cost ~0.1 MB per snapshot.
class GeCheckpointSink final : public AnalysisSink {
 public:
  // `targets` must be ascending; a trailing target equal to the shard's
  // total trace share yields the final-state snapshot.
  GeCheckpointSink(std::vector<power::PowerModel> models, std::size_t column,
                   std::vector<std::size_t> targets);

  void consume(const TraceBatch& batch, const BatchLabel& label) override;

  // The running engine (state after everything consumed so far).
  const CpaEngine& engine() const noexcept { return engine_; }
  // Snapshots taken so far, one per reached target, in target order.
  const std::vector<CpaEngine>& snapshots() const noexcept {
    return snapshots_;
  }
  // Moves snapshot `i` out (freeing its histograms), for reductions that
  // drain checkpoints in order instead of holding every copy alive.
  CpaEngine release_snapshot(std::size_t i) {
    return std::move(snapshots_.at(i));
  }

 private:
  CpaEngine engine_;
  std::size_t column_;
  std::vector<std::size_t> targets_;
  std::size_t next_target_ = 0;
  std::vector<CpaEngine> snapshots_;
};

}  // namespace psc::core
