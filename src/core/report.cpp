#include "core/report.h"

#include <algorithm>
#include <cmath>

#include "util/csv.h"

namespace psc::core {

namespace {

std::vector<std::string> tvla_header(
    const std::vector<TvlaChannelResult>& channels) {
  std::vector<std::string> header = {"Plaintext"};
  for (const auto& channel : channels) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      header.push_back(channel.channel + " " +
                       std::string(plaintext_class_name(cls)));
    }
  }
  return header;
}

}  // namespace

util::TextTable tvla_table(const std::string& title,
                           const std::vector<TvlaChannelResult>& channels) {
  util::TextTable table;
  table.set_title(title);
  table.header(tvla_header(channels));
  for (const PlaintextClass row : all_plaintext_classes) {
    std::vector<std::string> cells = {
        std::string(plaintext_class_name(row)) + "'"};
    for (const auto& channel : channels) {
      for (const PlaintextClass col : all_plaintext_classes) {
        cells.push_back(util::fixed(channel.matrix.score(row, col), 2));
      }
    }
    table.add_row(std::move(cells));
  }
  return table;
}

util::TextTable tvla_classification_table(
    const std::string& title,
    const std::vector<TvlaChannelResult>& channels) {
  util::TextTable table;
  table.set_title(title);
  table.header(tvla_header(channels));
  for (const PlaintextClass row : all_plaintext_classes) {
    std::vector<std::string> cells = {
        std::string(plaintext_class_name(row)) + "'"};
    for (const auto& channel : channels) {
      for (const PlaintextClass col : all_plaintext_classes) {
        cells.push_back(
            std::string(tvla_cell_name(channel.matrix.classify(row, col))));
      }
    }
    table.add_row(std::move(cells));
  }
  std::vector<std::string> summary = {"summary"};
  for (const auto& channel : channels) {
    const auto counts = channel.matrix.counts();
    summary.push_back("TP=" + std::to_string(counts.true_positive));
    summary.push_back("FP=" + std::to_string(counts.false_positive));
    summary.push_back("FN=" + std::to_string(counts.false_negative));
  }
  table.add_row(std::move(summary));
  return table;
}

util::TextTable cpa_rank_table(const std::string& title,
                               const std::vector<RankColumn>& columns) {
  util::TextTable table;
  table.set_title(title);
  std::vector<std::string> header = {"#key byte"};
  for (const auto& column : columns) {
    header.push_back(column.label);
  }
  table.header(std::move(header));

  for (std::size_t byte = 0; byte < 16; ++byte) {
    std::vector<std::string> cells = {std::to_string(byte)};
    for (const auto& column : columns) {
      const int rank = column.result->true_ranks[byte];
      std::string cell = std::to_string(rank);
      if (rank == 1) {
        cell += " *";  // recovered (red in the paper)
      } else if (rank < 10) {
        cell += " +";  // nearly recovered (yellow in the paper)
      }
      cells.push_back(std::move(cell));
    }
    table.add_row(std::move(cells));
  }

  std::vector<std::string> ge_row = {"GE"};
  std::vector<std::string> mean_row = {"mean rank"};
  std::vector<std::string> rec_row = {"recovered"};
  for (const auto& column : columns) {
    ge_row.push_back(util::fixed(column.result->ge_bits, 1));
    mean_row.push_back(util::fixed(column.result->mean_rank, 1));
    rec_row.push_back(std::to_string(column.result->recovered_bytes) + "/16");
  }
  table.add_row(std::move(ge_row));
  table.add_row(std::move(mean_row));
  table.add_row(std::move(rec_row));
  return table;
}

void write_ge_curves_csv(std::ostream& out,
                         const std::vector<GeCurveSeries>& series) {
  util::CsvWriter csv(out);
  csv.row({"series", "traces", "ge_bits", "mean_rank", "recovered_bytes"});
  for (const auto& s : series) {
    for (const auto& point : *s.points) {
      csv.start_row()
          .cell(s.label)
          .cell(point.traces)
          .cell(point.ge_bits)
          .cell(point.mean_rank)
          .cell(static_cast<std::size_t>(point.recovered_bytes))
          .done();
    }
  }
}

void render_ge_curves(std::ostream& out,
                      const std::vector<GeCurveSeries>& series) {
  // Text plot: x = checkpoint index (log-spaced trace counts), y = GE bits.
  constexpr int height = 18;
  double max_ge = 0.0;
  std::size_t max_points = 0;
  for (const auto& s : series) {
    for (const auto& p : *s.points) {
      max_ge = std::max(max_ge, p.ge_bits);
    }
    max_points = std::max(max_points, s.points->size());
  }
  if (max_ge <= 0.0 || max_points == 0) {
    out << "(no curve data)\n";
    return;
  }
  const int width = static_cast<int>(max_points);
  std::vector<std::string> canvas(height, std::string(
      static_cast<std::size_t>(width) * 3, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char mark = static_cast<char>('A' + (si % 26));
    const auto& points = *series[si].points;
    for (std::size_t x = 0; x < points.size(); ++x) {
      const double fraction = points[x].ge_bits / max_ge;
      int y = static_cast<int>(std::round(
          (1.0 - fraction) * (height - 1)));
      y = std::clamp(y, 0, height - 1);
      canvas[static_cast<std::size_t>(y)][x * 3 + 1] = mark;
    }
  }
  out << "GE (bits), max=" << util::fixed(max_ge, 1)
      << "; columns are log-spaced trace-count checkpoints\n";
  for (const auto& line : canvas) {
    out << "|" << line << "\n";
  }
  out << "+" << std::string(static_cast<std::size_t>(width) * 3, '-')
      << "\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  " << static_cast<char>('A' + (si % 26)) << " = "
        << series[si].label << "\n";
  }
}

util::TextTable throttle_observation_table(const ThrottleObservation& obs) {
  util::TextTable table;
  table.set_title("Section 4 operating points (lowpowermode)");
  table.header({"quantity", "value"});
  table.set_align(1, util::Align::right);
  table.add_row({"AES-only package power (W)",
                 util::fixed(obs.aes_only_power_w, 2)});
  table.add_row({"AES-only P-core freq (GHz)",
                 util::fixed(obs.aes_only_p_freq_hz / 1e9, 3)});
  table.add_row({"AES-only throttled",
                 obs.aes_only_throttled ? "yes" : "no"});
  table.add_row({"AES+stressor est. power (W)",
                 util::fixed(obs.stressed_estimated_power_w, 2)});
  table.add_row({"AES+stressor P-core freq (GHz)",
                 util::fixed(obs.stressed_p_freq_hz / 1e9, 3)});
  table.add_row({"AES+stressor E-core freq (GHz)",
                 util::fixed(obs.stressed_e_freq_hz / 1e9, 3)});
  table.add_row({"power throttling", obs.power_throttled ? "yes" : "no"});
  table.add_row({"thermal throttling", obs.thermal_throttled ? "yes" : "no"});
  return table;
}

}  // namespace psc::core
