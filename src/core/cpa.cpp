#include "core/cpa.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/guessing_entropy.h"

namespace psc::core {

namespace {

// Pearson correlation from accumulated sums.
double correlation_from_sums(double n, double sum_m, double sum_mm,
                             double sum_mt, double sum_t,
                             double sum_tt) noexcept {
  const double cov = n * sum_mt - sum_m * sum_t;
  const double var_m = n * sum_mm - sum_m * sum_m;
  const double var_t = n * sum_tt - sum_t * sum_t;
  if (var_m <= 0.0 || var_t <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_m * var_t);
}

}  // namespace

int ByteRanking::rank_of(std::uint8_t candidate) const noexcept {
  const double own = correlation[candidate];
  int rank = 1;
  for (int g = 0; g < 256; ++g) {
    if (g != candidate && correlation[static_cast<std::size_t>(g)] > own) {
      ++rank;
    }
  }
  return rank;
}

std::uint8_t ByteRanking::best_guess() const noexcept {
  return static_cast<std::uint8_t>(
      std::max_element(correlation.begin(), correlation.end()) -
      correlation.begin());
}

CpaEngine::CpaEngine(std::vector<power::PowerModel> models)
    : models_(std::move(models)) {
  if (models_.empty()) {
    throw std::invalid_argument("CpaEngine: need at least one model");
  }
  for (const power::PowerModel model : models_) {
    const auto inputs = power::power_model_inputs(model);
    if (inputs.uses_plaintext) {
      need_pt_hist_ = true;
    } else if (inputs.uses_ciphertext_pair) {
      need_pair_hist_ = true;
    } else {
      need_ct_hist_ = true;
    }
  }
  if (need_pt_hist_) {
    pt_count_.assign(16 * 256, 0);
    pt_sum_.assign(16 * 256, 0.0);
  }
  if (need_ct_hist_) {
    ct_count_.assign(16 * 256, 0);
    ct_sum_.assign(16 * 256, 0.0);
  }
  if (need_pair_hist_) {
    pair_count_.assign(16 * 65536, 0);
    pair_sum_.assign(16 * 65536, 0.0);
  }
}

bool CpaEngine::has_model(power::PowerModel model) const noexcept {
  return std::find(models_.begin(), models_.end(), model) != models_.end();
}

void CpaEngine::add_trace(const aes::Block& plaintext,
                          const aes::Block& ciphertext,
                          double value) noexcept {
  // Stripe by the global trace index (n_ before this trace) so per-trace
  // and batch feeding build identical moment state.
  util::simd::accumulate_moments(&value, 1, n_, moments_);
  ++n_;
  if (need_pt_hist_) {
    for (std::size_t i = 0; i < 16; ++i) {
      const std::size_t bin = i * 256 + plaintext[i];
      ++pt_count_[bin];
      pt_sum_[bin] += value;
    }
  }
  if (need_ct_hist_) {
    for (std::size_t i = 0; i < 16; ++i) {
      const std::size_t bin = i * 256 + ciphertext[i];
      ++ct_count_[bin];
      ct_sum_[bin] += value;
    }
  }
  if (need_pair_hist_) {
    for (std::size_t i = 0; i < 16; ++i) {
      const std::size_t bin =
          i * 65536 +
          static_cast<std::size_t>(ciphertext[i]) * 256 +
          ciphertext[aes::shift_rows_source(i)];
      ++pair_count_[bin];
      pair_sum_[bin] += value;
    }
  }
}

void CpaEngine::add_trace_batch(std::span<const aes::Block> plaintexts,
                                std::span<const aes::Block> ciphertexts,
                                std::span<const double> values) {
  if (plaintexts.size() != ciphertexts.size() ||
      plaintexts.size() != values.size()) {
    throw std::invalid_argument("CpaEngine::add_trace_batch: span length "
                                "mismatch");
  }
  const std::size_t n = values.size();
  if (n == 0) {
    return;
  }
  util::simd::accumulate_moments(values.data(), n, n_, moments_);
  n_ += n;
  // Histogram updates go through the dispatched kernel. aes::Block is a
  // packed std::array<uint8_t, 16>, so a Block span is exactly the
  // 16-bytes-per-trace layout accumulate_histogram16 consumes. Per bin,
  // values arrive in trace order on every backend, so the sums are
  // bit-identical to the per-trace path.
  if (need_pt_hist_) {
    util::simd::accumulate_histogram16(plaintexts.data()->data(),
                                       values.data(), n, pt_count_.data(),
                                       pt_sum_.data());
  }
  if (need_ct_hist_) {
    util::simd::accumulate_histogram16(ciphertexts.data()->data(),
                                       values.data(), n, ct_count_.data(),
                                       ct_sum_.data());
  }
  if (need_pair_hist_) {
    for (std::size_t i = 0; i < 16; ++i) {
      const std::size_t src = aes::shift_rows_source(i);
      std::uint32_t* counts = &pair_count_[i * 65536];
      double* sums = &pair_sum_[i * 65536];
      for (std::size_t t = 0; t < n; ++t) {
        const std::size_t bin =
            static_cast<std::size_t>(ciphertexts[t][i]) * 256 +
            ciphertexts[t][src];
        ++counts[bin];
        sums[bin] += values[t];
      }
    }
  }
}

void CpaEngine::merge(const CpaEngine& other) {
  if (models_ != other.models_) {
    throw std::invalid_argument("CpaEngine::merge: model lists differ");
  }
  // Rotate other's stripes to where its values would have landed in the
  // concatenated stream (uses n_ before the count update).
  util::simd::merge_moments(moments_, n_, other.moments_);
  n_ += other.n_;
  for (std::size_t b = 0; b < pt_count_.size(); ++b) {
    pt_count_[b] += other.pt_count_[b];
    pt_sum_[b] += other.pt_sum_[b];
  }
  for (std::size_t b = 0; b < ct_count_.size(); ++b) {
    ct_count_[b] += other.ct_count_[b];
    ct_sum_[b] += other.ct_sum_[b];
  }
  for (std::size_t b = 0; b < pair_count_.size(); ++b) {
    pair_count_[b] += other.pair_count_[b];
    pair_sum_[b] += other.pair_sum_[b];
  }
}

ByteRanking CpaEngine::analyze_byte(power::PowerModel model,
                                    std::size_t byte_index) const {
  if (!has_model(model)) {
    throw std::invalid_argument("CpaEngine: model not configured");
  }
  ByteRanking out;
  if (n_ < 2) {
    return out;
  }
  const double n = static_cast<double>(n_);
  const double sum_t = util::simd::reduce_stripes(moments_.sum);
  const double sum_tt = util::simd::reduce_stripes(moments_.sumsq);

  const auto inputs = power::power_model_inputs(model);
  if (inputs.uses_ciphertext_pair) {
    const std::uint32_t* counts = &pair_count_[byte_index * 65536];
    const double* sums = &pair_sum_[byte_index * 65536];
    for (int g = 0; g < 256; ++g) {
      double sum_m = 0.0;
      double sum_mm = 0.0;
      double sum_mt = 0.0;
      for (int ct_i = 0; ct_i < 256; ++ct_i) {
        const std::size_t row = static_cast<std::size_t>(ct_i) * 256;
        for (int ct_src = 0; ct_src < 256; ++ct_src) {
          const std::uint32_t c = counts[row + static_cast<std::size_t>(
                                                   ct_src)];
          if (c == 0) {
            continue;
          }
          const double m = power::predict_rd10_hd(
              static_cast<std::uint8_t>(ct_i),
              static_cast<std::uint8_t>(ct_src),
              static_cast<std::uint8_t>(g));
          sum_m += m * c;
          sum_mm += m * m * c;
          sum_mt += m * sums[row + static_cast<std::size_t>(ct_src)];
        }
      }
      out.correlation[static_cast<std::size_t>(g)] =
          correlation_from_sums(n, sum_m, sum_mm, sum_mt, sum_t, sum_tt);
    }
    return out;
  }

  const std::uint32_t* hist_count =
      inputs.uses_plaintext ? &pt_count_[byte_index * 256]
                            : &ct_count_[byte_index * 256];
  const double* hist_sum = inputs.uses_plaintext
                               ? &pt_sum_[byte_index * 256]
                               : &ct_sum_[byte_index * 256];
  int (*predictor)(std::uint8_t, std::uint8_t) = nullptr;
  switch (model) {
    case power::PowerModel::rd0_hw:
      predictor = power::predict_rd0_hw;
      break;
    case power::PowerModel::rd1_sbox_hw:
      predictor = power::predict_rd1_sbox_hw;
      break;
    case power::PowerModel::rd10_hw:
      predictor = power::predict_rd10_hw;
      break;
    case power::PowerModel::rd10_hd:
      break;  // handled above
  }
  for (int g = 0; g < 256; ++g) {
    double sum_m = 0.0;
    double sum_mm = 0.0;
    double sum_mt = 0.0;
    for (int v = 0; v < 256; ++v) {
      const std::uint32_t c = hist_count[static_cast<std::size_t>(v)];
      if (c == 0) {
        continue;
      }
      const double m = predictor(static_cast<std::uint8_t>(v),
                                 static_cast<std::uint8_t>(g));
      sum_m += m * c;
      sum_mm += m * m * c;
      sum_mt += m * hist_sum[static_cast<std::size_t>(v)];
    }
    out.correlation[static_cast<std::size_t>(g)] =
        correlation_from_sums(n, sum_m, sum_mm, sum_mt, sum_t, sum_tt);
  }
  return out;
}

ModelResult CpaEngine::analyze(
    power::PowerModel model,
    const std::array<aes::Block, aes::num_rounds + 1>& true_round_keys)
    const {
  ModelResult result;
  result.model = model;
  for (std::size_t i = 0; i < 16; ++i) {
    result.bytes[i] = analyze_byte(model, i);
    const std::uint8_t truth =
        power::true_key_byte(model, true_round_keys, i);
    result.scored_key[i] = truth;
    result.true_ranks[i] = result.bytes[i].rank_of(truth);
    result.best_round_key[i] = result.bytes[i].best_guess();
    if (result.true_ranks[i] == 1) {
      ++result.recovered_bytes;
    }
    if (result.true_ranks[i] <= 10) {
      ++result.near_recovered_bytes;
    }
  }
  result.ge_bits = guessing_entropy_bits(result.true_ranks);
  result.mean_rank = mean_rank(result.true_ranks);
  result.implied_master_key =
      power::recovered_round(model) == 0
          ? result.best_round_key
          : aes::Aes128::master_key_from_round10(result.best_round_key);
  return result;
}

}  // namespace psc::core
