#include "soc/workload.h"

#include <cmath>

namespace psc::soc {

WorkStep IdleWorkload::run(double cycles, util::Xoshiro256& /*rng*/) {
  WorkStep step;
  step.cycles = cycles;
  step.intensity = nominal_intensity();
  return step;
}

WorkStep MatrixStressor::run(double cycles, util::Xoshiro256& /*rng*/) {
  WorkStep step;
  step.cycles = cycles;
  step.intensity = nominal_intensity();
  // One "item" per 4k-cycle matrix tile, for progress accounting.
  step.items_completed = static_cast<std::uint64_t>(cycles / 4096.0);
  return step;
}

WorkStep FmulStressor::run(double cycles, util::Xoshiro256& /*rng*/) {
  WorkStep step;
  step.cycles = cycles;
  // Constant operands: steady activity, zero data-dependent energy by
  // construction (section 4's stressor design goal).
  step.intensity = nominal_intensity();
  step.items_completed = static_cast<std::uint64_t>(cycles);
  return step;
}

JitterWorkload::JitterWorkload(double mean_intensity, double sigma,
                               double phi)
    : mean_(mean_intensity),
      sigma_(sigma),
      phi_(phi),
      intensity_(mean_intensity) {}

WorkStep JitterWorkload::run(double cycles, util::Xoshiro256& rng) {
  intensity_ = mean_ + phi_ * (intensity_ - mean_) +
               rng.gaussian(0.0, sigma_);
  intensity_ = std::max(0.0, intensity_);
  WorkStep step;
  step.cycles = cycles;
  step.intensity = intensity_;
  return step;
}

AesWorkload::AesWorkload(const aes::Block& key, power::LeakageConfig leakage,
                         double cycles_per_block, double duty_cycle)
    : cipher_(key),
      evaluator_(leakage),
      cycles_per_block_(cycles_per_block),
      duty_cycle_(duty_cycle) {
  refresh_leakage();
}

void AesWorkload::set_plaintext(const aes::Block& plaintext) {
  plaintext_ = plaintext;
  refresh_leakage();
}

void AesWorkload::set_key(const aes::Block& key) {
  cipher_ = aes::Aes128(key);
  refresh_leakage();
}

void AesWorkload::refresh_leakage() {
  // The same plaintext is encrypted back to back for a whole measurement
  // window, so the per-block leakage is computed once per plaintext change
  // from the true intermediate states.
  aes::RoundTrace trace;
  ciphertext_ = cipher_.encrypt_trace(plaintext_, trace);
  core_leak_per_block_ = evaluator_.energy_deviation(plaintext_, trace);
  bus_leak_per_block_ = evaluator_.bus_energy_deviation(plaintext_,
                                                        ciphertext_);
}

WorkStep AesWorkload::run(double cycles, util::Xoshiro256& /*rng*/) {
  WorkStep step;
  step.cycles = cycles;
  step.intensity = nominal_intensity() * duty_cycle_ +
                   0.15 * (1.0 - duty_cycle_);
  const double effective = cycles * duty_cycle_ + cycle_carry_;
  const double blocks_exact = effective / cycles_per_block_;
  const auto blocks = static_cast<std::uint64_t>(blocks_exact);
  cycle_carry_ = effective -
                 static_cast<double>(blocks) * cycles_per_block_;
  step.items_completed = blocks;
  blocks_total_ += blocks;
  step.core_extra_energy_j = static_cast<double>(blocks) *
                             core_leak_per_block_;
  step.bus_extra_energy_j = static_cast<double>(blocks) *
                            bus_leak_per_block_;
  return step;
}

}  // namespace psc::soc
