// Frequency-residency accounting: how long a cluster spent at each DVFS
// state. This is the §4 attacker's observable — macOS exposes per-state
// residency through IOReport/powermetrics, and the throttling governor
// turns workload intensity into residency shifts, so a tracker over the
// simulated governor is the DVFS side channel's sampling primitive.
#pragma once

#include <cstddef>
#include <vector>

#include "soc/dvfs.h"

namespace psc::soc {

class FrequencyResidency {
 public:
  explicit FrequencyResidency(const DvfsLadder& ladder);

  void reset() noexcept;

  // Accounts `dt_s` seconds spent at `state` (clamped to the ladder).
  void add(std::size_t state, double dt_s) noexcept;

  double total_s() const noexcept { return total_s_; }

  // Time-weighted mean frequency over everything accounted; 0 when empty.
  double mean_frequency_hz() const noexcept;

  // Fraction of accounted time spent strictly below `state`; 0 when empty.
  double fraction_below(std::size_t state) const noexcept;

  // Seconds per state, aligned with the ladder.
  const std::vector<double>& seconds() const noexcept { return seconds_; }

 private:
  const DvfsLadder* ladder_;
  std::vector<double> seconds_;
  double total_s_ = 0.0;
};

}  // namespace psc::soc
