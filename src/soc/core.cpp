#include "soc/core.h"

#include <algorithm>
#include <stdexcept>

namespace psc::soc {

Core::Core(CoreConfig config, const DvfsLadder* ladder)
    : config_(config), ladder_(ladder) {
  if (ladder_ == nullptr) {
    throw std::invalid_argument("Core: null DVFS ladder");
  }
  requested_state_ = ladder_->max_state();
  state_limit_ = ladder_->max_state();
}

void Core::request_state(std::size_t state) noexcept {
  requested_state_ = std::min(state, ladder_->max_state());
}

std::size_t Core::effective_state() const noexcept {
  return std::min(requested_state_, state_limit_);
}

double Core::frequency_hz() const noexcept {
  return ladder_->frequency_hz(effective_state());
}

double Core::voltage() const noexcept {
  return ladder_->voltage(effective_state());
}

double Core::estimated_power_w() const noexcept {
  const Workload& w =
      workload_ != nullptr ? *workload_ : static_cast<const Workload&>(idle_);
  const double v = voltage();
  return config_.ceff_farads * w.nominal_intensity() * v * v *
             frequency_hz() +
         config_.static_power_w;
}

CoreStep Core::step(double dt_s, util::Xoshiro256& rng) {
  Workload& w =
      workload_ != nullptr ? *workload_ : static_cast<Workload&>(idle_);
  const double f = frequency_hz();
  const double v = voltage();
  const double cycles = f * dt_s;
  const WorkStep ws = w.run(cycles, rng);

  CoreStep out;
  out.cycles = ws.cycles;
  out.items_completed = ws.items_completed;
  const double dynamic_w = config_.ceff_farads * ws.intensity * v * v * f;
  out.core_energy_j = (dynamic_w + config_.static_power_w) * dt_s +
                      ws.core_extra_energy_j;
  out.bus_energy_j = ws.bus_extra_energy_j;

  total_items_ += ws.items_completed;
  total_cycles_ += ws.cycles;
  return out;
}

}  // namespace psc::soc
