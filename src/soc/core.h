// One CPU core: runs an assigned workload at the cluster's DVFS point and
// reports the energy it dissipated. Dynamic power follows the standard
// C_eff * V^2 * f * activity model plus per-core static leakage; workload
// data-dependent energy rides on top.
#pragma once

#include <cstdint>

#include "soc/dvfs.h"
#include "soc/types.h"
#include "soc/workload.h"
#include "util/rng.h"

namespace psc::soc {

struct CoreConfig {
  CoreType type = CoreType::performance;
  // Effective switched capacitance at intensity 1.0, in farads.
  double ceff_farads = 0.0;
  // Static (leakage) power when powered on, in watts.
  double static_power_w = 0.0;
};

// Result of advancing one core by one step.
struct CoreStep {
  double core_energy_j = 0.0;  // dynamic + static + data-dependent (core)
  double bus_energy_j = 0.0;   // data-dependent energy routed to DRAM/IO
  double cycles = 0.0;
  std::uint64_t items_completed = 0;
};

class Core {
 public:
  Core(CoreConfig config, const DvfsLadder* ladder);

  CoreType type() const noexcept { return config_.type; }

  // Assigns a workload (non-owning; nullptr reverts to built-in idle).
  void assign(Workload* workload) noexcept { workload_ = workload; }
  Workload* workload() const noexcept { return workload_; }
  bool is_idle() const noexcept { return workload_ == nullptr; }

  // Requested DVFS state; the effective state is min(requested, limit).
  void request_state(std::size_t state) noexcept;
  void set_state_limit(std::size_t limit) noexcept { state_limit_ = limit; }

  std::size_t effective_state() const noexcept;
  double frequency_hz() const noexcept;
  double voltage() const noexcept;

  // Nominal-intensity power at the current operating point; what a
  // utilization-based estimator believes this core draws when busy.
  double estimated_power_w() const noexcept;

  // Advances by dt seconds.
  CoreStep step(double dt_s, util::Xoshiro256& rng);

  std::uint64_t total_items() const noexcept { return total_items_; }
  double total_cycles() const noexcept { return total_cycles_; }

 private:
  CoreConfig config_;
  const DvfsLadder* ladder_;
  Workload* workload_ = nullptr;
  IdleWorkload idle_;
  std::size_t requested_state_ = 0;
  std::size_t state_limit_ = 0;
  std::uint64_t total_items_ = 0;
  double total_cycles_ = 0.0;
};

}  // namespace psc::soc
