// Reactive-limit governor: the firmware loop that throttles the P-cluster
// when a limit is hit. Reproduces the two §4 behaviours:
//
//  * Default mode: only the thermal limit exists; sustained heavy load
//    trips it before any power cap, and the governor steps the P-cluster
//    frequency down (thermal throttling).
//  * lowpowermode: the P-cluster is additionally capped at a fixed
//    frequency (1.968 GHz on M2) and a hard package power budget (4 W)
//    is enforced; exceeding it throttles the P-cluster only. E-cores are
//    never throttled (observed to stay at 2.424 GHz).
//
// Crucially, the power input of the cap is the *estimated* power (the PHPS
// model value, derived from utilization), not a measured rail — which is
// why throttling carries no data dependence (Table 6, right column).
#pragma once

#include <cstddef>

#include "soc/dvfs.h"

namespace psc::soc {

struct GovernorConfig {
  double thermal_limit_c = 95.0;      // junction trip point
  double thermal_hysteresis_c = 3.0;  // recover below limit - hysteresis
  double lowpower_cap_w = 4.0;        // package budget in lowpowermode
  double lowpower_cap_margin_w = 0.25;  // re-raise frequency below cap-margin
  double lowpower_max_p_freq_hz = 1.968e9;  // P-cluster ceiling in lowpowermode
  // Steps between governor decisions, in seconds of simulated time.
  double decision_period_s = 0.010;
};

class Governor {
 public:
  Governor(GovernorConfig config, const DvfsLadder& p_ladder);

  void set_lowpowermode(bool enabled) noexcept;
  bool lowpowermode() const noexcept { return lowpowermode_; }

  // Feeds one simulation step; acts only every decision_period_s.
  // `estimated_power_w` is the utilization-model package power (PHPS),
  // `temperature_c` the die temperature.
  void update(double estimated_power_w, double temperature_c,
              double dt_s) noexcept;

  // Current P-cluster DVFS state limit to be applied by the chip.
  std::size_t p_state_limit() const noexcept { return p_state_limit_; }

  bool thermal_throttling() const noexcept { return thermal_throttling_; }
  bool power_throttling() const noexcept { return power_throttling_; }
  bool throttling() const noexcept {
    return thermal_throttling_ || power_throttling_;
  }

  const GovernorConfig& config() const noexcept { return config_; }

 private:
  std::size_t max_allowed_state() const noexcept;

  GovernorConfig config_;
  const DvfsLadder* p_ladder_;
  bool lowpowermode_ = false;
  std::size_t p_state_limit_;
  bool thermal_throttling_ = false;
  bool power_throttling_ = false;
  double time_since_decision_s_ = 0.0;
};

}  // namespace psc::soc
