#include "soc/residency.h"

#include <algorithm>

namespace psc::soc {

FrequencyResidency::FrequencyResidency(const DvfsLadder& ladder)
    : ladder_(&ladder), seconds_(ladder.state_count(), 0.0) {}

void FrequencyResidency::reset() noexcept {
  std::fill(seconds_.begin(), seconds_.end(), 0.0);
  total_s_ = 0.0;
}

void FrequencyResidency::add(std::size_t state, double dt_s) noexcept {
  state = std::min(state, ladder_->max_state());
  seconds_[state] += dt_s;
  total_s_ += dt_s;
}

double FrequencyResidency::mean_frequency_hz() const noexcept {
  if (total_s_ <= 0.0) {
    return 0.0;
  }
  double weighted = 0.0;
  for (std::size_t s = 0; s < seconds_.size(); ++s) {
    weighted += seconds_[s] * ladder_->frequency_hz(s);
  }
  return weighted / total_s_;
}

double FrequencyResidency::fraction_below(std::size_t state) const noexcept {
  if (total_s_ <= 0.0) {
    return 0.0;
  }
  double below = 0.0;
  const std::size_t bound = std::min(state, seconds_.size());
  for (std::size_t s = 0; s < bound; ++s) {
    below += seconds_[s];
  }
  return below / total_s_;
}

}  // namespace psc::soc
