#include "soc/dvfs.h"

#include <algorithm>
#include <stdexcept>

namespace psc::soc {

DvfsLadder::DvfsLadder(std::vector<double> frequencies_hz, double v0,
                       double volts_per_ghz)
    : frequencies_hz_(std::move(frequencies_hz)),
      v0_(v0),
      volts_per_ghz_(volts_per_ghz) {
  if (frequencies_hz_.empty()) {
    throw std::invalid_argument("DvfsLadder: empty frequency list");
  }
  if (!std::is_sorted(frequencies_hz_.begin(), frequencies_hz_.end()) ||
      std::adjacent_find(frequencies_hz_.begin(), frequencies_hz_.end()) !=
          frequencies_hz_.end()) {
    throw std::invalid_argument(
        "DvfsLadder: frequencies must be strictly ascending");
  }
  if (frequencies_hz_.front() <= 0.0) {
    throw std::invalid_argument("DvfsLadder: frequencies must be positive");
  }
}

double DvfsLadder::frequency_hz(std::size_t state) const {
  return frequencies_hz_.at(state);
}

double DvfsLadder::voltage(std::size_t state) const {
  return v0_ + volts_per_ghz_ * frequencies_hz_.at(state) * 1e-9;
}

std::size_t DvfsLadder::state_at_or_below(double freq_hz) const noexcept {
  std::size_t best = 0;
  for (std::size_t s = 0; s < frequencies_hz_.size(); ++s) {
    if (frequencies_hz_[s] <= freq_hz) {
      best = s;
    }
  }
  return best;
}

}  // namespace psc::soc
