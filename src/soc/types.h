// Shared SoC-level vocabulary. All physical quantities are SI doubles:
// seconds, hertz, volts, watts, joules, degrees Celsius.
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

namespace psc::soc {

enum class CoreType {
  performance,  // "P-core" (Firestorm/Avalanche class)
  efficiency,   // "E-core" (Icestorm/Blizzard class)
};

std::string_view core_type_name(CoreType type) noexcept;

// Power rails a sensor can be attached to. The SMC key database binds each
// power key to one of these.
enum class RailId : std::size_t {
  p_cluster,   // P-core cluster supply
  e_cluster,   // E-core cluster supply
  uncore,      // fabric, caches, always-on
  dram,        // memory + IO buses
  total_soc,   // sum of the above (package power)
  dc_in,       // upstream DC input (total / conversion efficiency)
};

inline constexpr std::size_t rail_count = 6;

std::string_view rail_name(RailId rail) noexcept;

// Instantaneous or window-averaged power per rail, in watts.
struct RailPowers {
  std::array<double, rail_count> watts{};

  double at(RailId rail) const noexcept {
    return watts[static_cast<std::size_t>(rail)];
  }
  double& at(RailId rail) noexcept {
    return watts[static_cast<std::size_t>(rail)];
  }
};

// Cumulative per-rail energy in joules.
struct RailEnergies {
  std::array<double, rail_count> joules{};

  double at(RailId rail) const noexcept {
    return joules[static_cast<std::size_t>(rail)];
  }
  double& at(RailId rail) noexcept {
    return joules[static_cast<std::size_t>(rail)];
  }
};

}  // namespace psc::soc
