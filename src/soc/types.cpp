#include "soc/types.h"

namespace psc::soc {

std::string_view core_type_name(CoreType type) noexcept {
  return type == CoreType::performance ? "P" : "E";
}

std::string_view rail_name(RailId rail) noexcept {
  switch (rail) {
    case RailId::p_cluster:
      return "p_cluster";
    case RailId::e_cluster:
      return "e_cluster";
    case RailId::uncore:
      return "uncore";
    case RailId::dram:
      return "dram";
    case RailId::total_soc:
      return "total_soc";
    case RailId::dc_in:
      return "dc_in";
  }
  return "?";
}

}  // namespace psc::soc
