#include "soc/thermal.h"

#include <cmath>

namespace psc::soc {

ThermalModel::ThermalModel(ThermalConfig config) noexcept
    : config_(config), temperature_c_(config.ambient_c) {}

void ThermalModel::step(double power_w, double dt_s) noexcept {
  // Exact exponential update of T' = (T_target - T) / tau, stable for any
  // dt (the simulator uses 1 ms steps, but tests exercise coarse steps).
  const double target = steady_state_c(power_w);
  const double alpha = 1.0 - std::exp(-dt_s / config_.tau_s);
  temperature_c_ += (target - temperature_c_) * alpha;
}

double ThermalModel::steady_state_c(double power_w) const noexcept {
  return config_.ambient_c + config_.r_thermal_c_per_w * power_w;
}

void ThermalModel::reset() noexcept {
  temperature_c_ = config_.ambient_c;
}

}  // namespace psc::soc
