// Workloads a core can execute. A workload abstracts an instruction stream
// by three quantities per step: switching intensity (scales dynamic power),
// data-dependent extra energy on the core rail (the side-channel signal),
// and data-dependent extra energy on the memory/IO rail (bus toggling).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "aes/aes128.h"
#include "power/leakage_model.h"
#include "util/rng.h"

namespace psc::soc {

// What one core executed during one step.
struct WorkStep {
  double cycles = 0.0;            // cycles consumed
  double intensity = 0.0;         // switching activity factor (~0..1.5)
  double core_extra_energy_j = 0.0;  // data-dependent energy, core rail
  double bus_extra_energy_j = 0.0;   // data-dependent energy, dram/IO rail
  std::uint64_t items_completed = 0; // workload-defined unit (e.g. blocks)
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string_view name() const noexcept = 0;

  // Executes `cycles` cycles. `rng` may be used for workload-internal
  // randomness (none of the bundled workloads use it; the interface allows
  // e.g. a random-memory stressor).
  virtual WorkStep run(double cycles, util::Xoshiro256& rng) = 0;

  // Switching intensity when running flat out; used by power estimators
  // that never see the actual data (PHPS, IOReport).
  virtual double nominal_intensity() const noexcept = 0;
};

// A core with nothing scheduled: clock-gated most of the time.
class IdleWorkload final : public Workload {
 public:
  std::string_view name() const noexcept override { return "idle"; }
  WorkStep run(double cycles, util::Xoshiro256& rng) override;
  double nominal_intensity() const noexcept override { return 0.04; }
};

// stress-ng --matrix analogue: dense FP/SIMD matrix products, the highest
// sustained switching activity of the bundled workloads (used for the
// idle-vs-busy SMC key triage of Table 2).
class MatrixStressor final : public Workload {
 public:
  std::string_view name() const noexcept override { return "matrix"; }
  WorkStep run(double cycles, util::Xoshiro256& rng) override;
  double nominal_intensity() const noexcept override { return 1.30; }
};

// The paper's E-core stressor: fmul between two constant operands — a
// steady, completely data-independent power load (section 4).
class FmulStressor final : public Workload {
 public:
  std::string_view name() const noexcept override { return "fmul"; }
  WorkStep run(double cycles, util::Xoshiro256& rng) override;
  double nominal_intensity() const noexcept override { return 0.95; }
};

// Background activity with slowly wandering intensity (AR(1) process),
// modelling unmodelled OS work such as the syscall/IOKit path of a kernel
// crypto service's caller. Data-independent, but it raises the variance of
// window-averaged rail power and therefore lowers the attacker's SNR.
class JitterWorkload final : public Workload {
 public:
  // intensity_t+1 = mean + phi * (intensity_t - mean) + N(0, sigma).
  JitterWorkload(double mean_intensity, double sigma, double phi = 0.98);

  std::string_view name() const noexcept override { return "jitter"; }
  WorkStep run(double cycles, util::Xoshiro256& rng) override;
  double nominal_intensity() const noexcept override { return mean_; }

 private:
  double mean_;
  double sigma_;
  double phi_;
  double intensity_;
};

// AES-128 encryption loop (AES-Intrinsics style): encrypts the current
// plaintext back to back, constant cycles per block, and contributes
// data-dependent leakage energy computed from the true round states.
class AesWorkload final : public Workload {
 public:
  // `cycles_per_block` models the constant-cycle kernel (AESE/AESMC chain
  // plus loop overhead). `duty_cycle` < 1 models invocation overhead (e.g.
  // syscall entry/exit for the kernel-module victim): the fraction of
  // cycles spent encrypting.
  AesWorkload(const aes::Block& key, power::LeakageConfig leakage,
              double cycles_per_block = 80.0, double duty_cycle = 1.0);

  std::string_view name() const noexcept override { return "aes"; }
  WorkStep run(double cycles, util::Xoshiro256& rng) override;
  double nominal_intensity() const noexcept override { return 0.80; }

  // Changes the plaintext being encrypted (the attacker-controlled input).
  void set_plaintext(const aes::Block& plaintext);

  const aes::Block& plaintext() const noexcept { return plaintext_; }
  aes::Block ciphertext() const noexcept { return ciphertext_; }

  // Re-keys the cipher (e.g. a fresh victim secret).
  void set_key(const aes::Block& key);

  std::uint64_t blocks_encrypted() const noexcept { return blocks_total_; }

  double cycles_per_block() const noexcept { return cycles_per_block_; }
  double duty_cycle() const noexcept { return duty_cycle_; }

  // Per-encryption data-dependent energies for the current plaintext
  // (exposed for the fast analytic trace path).
  double core_leak_energy_per_block() const noexcept {
    return core_leak_per_block_;
  }
  double bus_leak_energy_per_block() const noexcept {
    return bus_leak_per_block_;
  }

 private:
  void refresh_leakage();

  aes::Aes128 cipher_;
  power::LeakageEvaluator evaluator_;
  double cycles_per_block_;
  double duty_cycle_;
  aes::Block plaintext_{};
  aes::Block ciphertext_{};
  double core_leak_per_block_ = 0.0;
  double bus_leak_per_block_ = 0.0;
  double cycle_carry_ = 0.0;
  std::uint64_t blocks_total_ = 0;
};

}  // namespace psc::soc
