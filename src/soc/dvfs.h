// DVFS operating-point ladders: the discrete frequency states a cluster can
// run at, and the (affine-approximated) supply voltage at each state.
#pragma once

#include <cstddef>
#include <vector>

namespace psc::soc {

class DvfsLadder {
 public:
  // `frequencies_hz` must be non-empty and strictly ascending. The voltage
  // model is V(f) = v0 + volts_per_ghz * f_ghz, the usual first-order fit
  // of a P-state table.
  DvfsLadder(std::vector<double> frequencies_hz, double v0,
             double volts_per_ghz);

  std::size_t state_count() const noexcept { return frequencies_hz_.size(); }

  // Highest state index.
  std::size_t max_state() const noexcept { return frequencies_hz_.size() - 1; }

  double frequency_hz(std::size_t state) const;

  double max_frequency_hz() const noexcept { return frequencies_hz_.back(); }
  double min_frequency_hz() const noexcept { return frequencies_hz_.front(); }

  // Supply voltage at a state.
  double voltage(std::size_t state) const;

  // Largest state whose frequency is <= `freq_hz`; state 0 if all are
  // above (the cluster can always run at its lowest point).
  std::size_t state_at_or_below(double freq_hz) const noexcept;

 private:
  std::vector<double> frequencies_hz_;
  double v0_;
  double volts_per_ghz_;
};

}  // namespace psc::soc
