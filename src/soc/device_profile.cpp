#include "soc/device_profile.h"

namespace psc::soc {

namespace {

constexpr double mhz = 1e6;

}  // namespace

DeviceProfile DeviceProfile::mac_mini_m1() {
  DeviceProfile p{
      .name = "Mac Mini M1",
      .os_version = "macOS 12.5",
      .p_core_count = 4,
      .e_core_count = 4,
      // Firestorm / Icestorm P-state tables (public powermetrics dumps).
      .p_ladder = DvfsLadder({600 * mhz, 972 * mhz, 1332 * mhz, 1704 * mhz,
                              2064 * mhz, 2388 * mhz, 2724 * mhz, 2988 * mhz,
                              3096 * mhz, 3144 * mhz, 3204 * mhz},
                             0.65, 0.125),
      .e_ladder = DvfsLadder({600 * mhz, 972 * mhz, 1332 * mhz, 1704 * mhz,
                              2064 * mhz},
                             0.65, 0.125),
      .p_core = {.type = CoreType::performance,
                 .ceff_farads = 0.32e-9,
                 .static_power_w = 0.045},
      .e_core = {.type = CoreType::efficiency,
                 .ceff_farads = 0.13e-9,
                 .static_power_w = 0.015},
      .uncore_idle_w = 0.40,
      .uncore_w_per_active_core = 0.04,
      .dram_idle_w = 0.30,
      .dram_w_per_unit_intensity = 0.06,
      .dc_conversion_efficiency = 0.90,
      // Desktop enclosure with active cooling: low junction-to-ambient
      // resistance; sustained all-core load stays below the trip point.
      .thermal = {.ambient_c = 25.0, .r_thermal_c_per_w = 3.0, .tau_s = 25.0},
      .governor = {.thermal_limit_c = 95.0,
                   .thermal_hysteresis_c = 3.0,
                   .lowpower_cap_w = 4.0,
                   .lowpower_cap_margin_w = 0.25,
                   .lowpower_max_p_freq_hz = 2.064e9,
                   .decision_period_s = 0.010},
      .leakage = power::LeakageConfig::apple_silicon_default(),
      .aes_cycles_per_block = 80.0,
  };
  return p;
}

DeviceProfile DeviceProfile::macbook_air_m2() {
  DeviceProfile p{
      .name = "MacBook Air M2",
      .os_version = "macOS 13.0",
      .p_core_count = 4,
      .e_core_count = 4,
      // Avalanche / Blizzard P-state tables. Note the 1968 MHz point: the
      // P-cluster ceiling observed under lowpowermode (section 4).
      .p_ladder = DvfsLadder({660 * mhz, 912 * mhz, 1284 * mhz, 1752 * mhz,
                              1968 * mhz, 2208 * mhz, 2400 * mhz, 2568 * mhz,
                              2724 * mhz, 2868 * mhz, 2988 * mhz, 3096 * mhz,
                              3204 * mhz, 3324 * mhz, 3408 * mhz, 3504 * mhz},
                             0.65, 0.125),
      .e_ladder = DvfsLadder({912 * mhz, 1284 * mhz, 1572 * mhz, 1824 * mhz,
                              2004 * mhz, 2256 * mhz, 2424 * mhz},
                             0.65, 0.125),
      .p_core = {.type = CoreType::performance,
                 .ceff_farads = 0.30e-9,
                 .static_power_w = 0.045},
      .e_core = {.type = CoreType::efficiency,
                 .ceff_farads = 0.15e-9,
                 .static_power_w = 0.015},
      .uncore_idle_w = 0.40,
      .uncore_w_per_active_core = 0.04,
      .dram_idle_w = 0.30,
      .dram_w_per_unit_intensity = 0.06,
      .dc_conversion_efficiency = 0.90,
      // Fanless enclosure: high junction-to-ambient resistance; sustained
      // all-core stress trips the thermal limit before any power limit
      // (the section 4 observation that motivated lowpowermode).
      .thermal = {.ambient_c = 25.0, .r_thermal_c_per_w = 7.5, .tau_s = 18.0},
      .governor = {.thermal_limit_c = 95.0,
                   .thermal_hysteresis_c = 3.0,
                   .lowpower_cap_w = 4.0,
                   .lowpower_cap_margin_w = 0.25,
                   .lowpower_max_p_freq_hz = 1.968e9,
                   .decision_period_s = 0.010},
      .leakage = power::LeakageConfig::apple_silicon_default(),
      .aes_cycles_per_block = 80.0,
  };
  return p;
}

}  // namespace psc::soc
