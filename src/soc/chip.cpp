#include "soc/chip.h"

#include <stdexcept>

namespace psc::soc {

Chip::Chip(DeviceProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      thermal_(profile_.thermal),
      governor_(profile_.governor, profile_.p_ladder),
      rng_(seed) {
  if (profile_.p_core_count == 0) {
    throw std::invalid_argument("Chip: need at least one P-core");
  }
  cores_.reserve(profile_.p_core_count + profile_.e_core_count);
  for (std::size_t i = 0; i < profile_.p_core_count; ++i) {
    cores_.emplace_back(profile_.p_core, &profile_.p_ladder);
  }
  for (std::size_t i = 0; i < profile_.e_core_count; ++i) {
    cores_.emplace_back(profile_.e_core, &profile_.e_ladder);
  }
}

void Chip::advance(double dt_s) {
  if (dt_s <= 0.0) {
    throw std::invalid_argument("Chip::advance: dt must be positive");
  }

  // Apply the governor's P-cluster limit; E-cores are never throttled.
  for (std::size_t i = 0; i < profile_.p_core_count; ++i) {
    cores_[i].set_state_limit(governor_.p_state_limit());
  }

  double p_cluster_j = 0.0;
  double e_cluster_j = 0.0;
  double bus_extra_j = 0.0;
  double intensity_sum = 0.0;
  std::size_t active_cores = 0;
  double est_p_w = 0.0;
  double est_e_w = 0.0;

  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& c = cores_[i];
    const CoreStep step = c.step(dt_s, rng_);
    const bool is_p = i < profile_.p_core_count;
    (is_p ? p_cluster_j : e_cluster_j) += step.core_energy_j;
    bus_extra_j += step.bus_energy_j;
    const Workload* w = c.workload();
    const double intensity =
        w != nullptr ? w->nominal_intensity() : IdleWorkload{}.nominal_intensity();
    intensity_sum += intensity;
    if (!c.is_idle()) {
      ++active_cores;
    }
    (is_p ? est_p_w : est_e_w) += c.estimated_power_w();
  }

  const double uncore_w = profile_.uncore_idle_w +
                          profile_.uncore_w_per_active_core *
                              static_cast<double>(active_cores);
  const double dram_w = profile_.dram_idle_w +
                        profile_.dram_w_per_unit_intensity * intensity_sum +
                        bus_extra_j / dt_s;

  RailPowers powers;
  powers.at(RailId::p_cluster) = p_cluster_j / dt_s;
  powers.at(RailId::e_cluster) = e_cluster_j / dt_s;
  powers.at(RailId::uncore) = uncore_w;
  powers.at(RailId::dram) = dram_w;
  const double total = powers.at(RailId::p_cluster) +
                       powers.at(RailId::e_cluster) + uncore_w + dram_w;
  powers.at(RailId::total_soc) = total;
  powers.at(RailId::dc_in) = total / profile_.dc_conversion_efficiency;
  last_powers_ = powers;

  for (std::size_t r = 0; r < rail_count; ++r) {
    energies_.joules[r] += powers.watts[r] * dt_s;
  }

  // Utilization-based estimate: nominal-intensity core power plus the same
  // uncore/dram formulas with no data-dependent component.
  const double est_dram_w = profile_.dram_idle_w +
                            profile_.dram_w_per_unit_intensity *
                                intensity_sum;
  last_estimated_package_w_ = est_p_w + est_e_w + uncore_w + est_dram_w;
  est_p_cluster_energy_j_ += est_p_w * dt_s;
  est_e_cluster_energy_j_ += est_e_w * dt_s;

  thermal_.step(total, dt_s);
  governor_.update(last_estimated_package_w_, thermal_.temperature_c(),
                   dt_s);

  time_s_ += dt_s;
}

void Chip::run_for(double seconds, double dt_s) {
  const auto steps = static_cast<std::size_t>(seconds / dt_s);
  for (std::size_t i = 0; i < steps; ++i) {
    advance(dt_s);
  }
}

}  // namespace psc::soc
