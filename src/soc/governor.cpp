#include "soc/governor.h"

#include <algorithm>

namespace psc::soc {

Governor::Governor(GovernorConfig config, const DvfsLadder& p_ladder)
    : config_(config),
      p_ladder_(&p_ladder),
      p_state_limit_(p_ladder.max_state()) {}

void Governor::set_lowpowermode(bool enabled) noexcept {
  lowpowermode_ = enabled;
  p_state_limit_ = std::min(p_state_limit_, max_allowed_state());
  if (!enabled) {
    power_throttling_ = false;
  }
}

std::size_t Governor::max_allowed_state() const noexcept {
  if (!lowpowermode_) {
    return p_ladder_->max_state();
  }
  return p_ladder_->state_at_or_below(config_.lowpower_max_p_freq_hz);
}

void Governor::update(double estimated_power_w, double temperature_c,
                      double dt_s) noexcept {
  time_since_decision_s_ += dt_s;
  if (time_since_decision_s_ < config_.decision_period_s) {
    return;
  }
  time_since_decision_s_ = 0.0;

  const std::size_t ceiling = max_allowed_state();

  // Thermal limit applies in every mode.
  if (temperature_c >= config_.thermal_limit_c) {
    thermal_throttling_ = true;
    if (p_state_limit_ > 0) {
      --p_state_limit_;
    }
    return;
  }
  const bool thermal_recovered =
      temperature_c <
      config_.thermal_limit_c - config_.thermal_hysteresis_c;
  if (thermal_throttling_ && !thermal_recovered) {
    return;  // hold current limit inside the hysteresis band
  }
  thermal_throttling_ = false;

  // Power budget applies only in lowpowermode.
  if (lowpowermode_) {
    if (estimated_power_w > config_.lowpower_cap_w) {
      power_throttling_ = true;
      if (p_state_limit_ > 0) {
        --p_state_limit_;
      }
      return;
    }
    if (estimated_power_w <
        config_.lowpower_cap_w - config_.lowpower_cap_margin_w) {
      if (p_state_limit_ < ceiling) {
        ++p_state_limit_;
      }
      if (p_state_limit_ >= ceiling) {
        power_throttling_ = false;
      }
      return;
    }
    // Inside the margin band: hold (prevents limit cycling).
    return;
  }

  // No active limit: relax toward the ceiling.
  if (p_state_limit_ < ceiling) {
    ++p_state_limit_;
  }
  p_state_limit_ = std::min(p_state_limit_, ceiling);
}

}  // namespace psc::soc
