// First-order lumped RC thermal model of the package: one thermal
// resistance from junction to ambient and one time constant. Good enough to
// reproduce the §4 behaviour that matters — under default limits the die
// reaches the thermal trip point before any power limit, while the 4 W
// lowpowermode cap keeps it far below.
#pragma once

namespace psc::soc {

struct ThermalConfig {
  double ambient_c = 25.0;       // ambient/baseline temperature
  double r_thermal_c_per_w = 4.0;  // steady-state rise per watt
  double tau_s = 18.0;           // thermal time constant
};

class ThermalModel {
 public:
  explicit ThermalModel(ThermalConfig config) noexcept;

  // Advances the die temperature given the package power over `dt_s`.
  void step(double power_w, double dt_s) noexcept;

  double temperature_c() const noexcept { return temperature_c_; }

  // Steady-state temperature at a constant power.
  double steady_state_c(double power_w) const noexcept;

  // Resets to ambient.
  void reset() noexcept;

  const ThermalConfig& config() const noexcept { return config_; }

 private:
  ThermalConfig config_;
  double temperature_c_;
};

}  // namespace psc::soc
