// Device profiles for the two systems the paper evaluates (Table 1):
// Mac Mini M1 and MacBook Air M2. A profile carries everything the chip
// simulator needs: cluster topology, DVFS ladders, power coefficients,
// thermal/governor configuration and the leakage calibration.
#pragma once

#include <string>

#include "power/leakage_model.h"
#include "soc/core.h"
#include "soc/dvfs.h"
#include "soc/governor.h"
#include "soc/thermal.h"

namespace psc::soc {

struct DeviceProfile {
  std::string name;
  std::string os_version;

  std::size_t p_core_count = 0;
  std::size_t e_core_count = 0;
  DvfsLadder p_ladder;
  DvfsLadder e_ladder;
  CoreConfig p_core;
  CoreConfig e_core;

  // Fabric / memory rails.
  double uncore_idle_w = 0.0;
  double uncore_w_per_active_core = 0.0;
  double dram_idle_w = 0.0;
  double dram_w_per_unit_intensity = 0.0;  // scaled by sum of core intensity
  double dc_conversion_efficiency = 0.9;   // total_soc / dc_in

  ThermalConfig thermal;
  GovernorConfig governor;
  power::LeakageConfig leakage;

  // Constant-cycle AES kernel cost on this microarchitecture.
  double aes_cycles_per_block = 80.0;

  // The paper's two test systems.
  static DeviceProfile mac_mini_m1();
  static DeviceProfile macbook_air_m2();
};

}  // namespace psc::soc
