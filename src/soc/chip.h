// The SoC simulator: cores, rails, thermal state and the reactive-limit
// governor, advanced in fixed time steps. It maintains two parallel views
// of power:
//
//  * Measured rails: true dissipated energy, including the data-dependent
//    leakage contributed by workloads. SMC power keys sample these.
//  * Estimated power: what a utilization-based model (frequency, voltage,
//    nominal workload intensity) predicts. The governor's power cap, the
//    PHPS key and the IOReport "Energy Model" channels all read this
//    estimate — which is exactly why none of them leak data (paper
//    sections 3.6 and 4).
#pragma once

#include <cstdint>
#include <vector>

#include "soc/core.h"
#include "soc/device_profile.h"
#include "soc/governor.h"
#include "soc/thermal.h"
#include "soc/types.h"
#include "util/rng.h"

namespace psc::soc {

class Chip {
 public:
  // `seed` drives all chip-internal randomness.
  Chip(DeviceProfile profile, std::uint64_t seed);

  Chip(const Chip&) = delete;
  Chip& operator=(const Chip&) = delete;

  const DeviceProfile& profile() const noexcept { return profile_; }

  std::size_t p_core_count() const noexcept { return profile_.p_core_count; }
  std::size_t e_core_count() const noexcept { return profile_.e_core_count; }
  std::size_t core_count() const noexcept { return cores_.size(); }

  // Cores 0..p_core_count-1 are P-cores, the rest E-cores.
  Core& core(std::size_t index) { return cores_.at(index); }
  const Core& core(std::size_t index) const { return cores_.at(index); }
  Core& p_core(std::size_t index) { return cores_.at(index); }
  Core& e_core(std::size_t index) {
    return cores_.at(profile_.p_core_count + index);
  }

  Governor& governor() noexcept { return governor_; }
  const Governor& governor() const noexcept { return governor_; }

  // pmset lowpowermode analogue.
  void set_lowpowermode(bool enabled) noexcept {
    governor_.set_lowpowermode(enabled);
  }
  bool lowpowermode() const noexcept { return governor_.lowpowermode(); }

  // Advances the whole chip by `dt_s` seconds (default step 1 ms).
  void advance(double dt_s);

  // Convenience: advance in fixed steps until `seconds` have elapsed.
  void run_for(double seconds, double dt_s = 1e-3);

  double time_s() const noexcept { return time_s_; }

  // Rail power averaged over the last step.
  const RailPowers& rail_powers() const noexcept { return last_powers_; }

  // Cumulative measured energy per rail since construction.
  const RailEnergies& rail_energies() const noexcept { return energies_; }

  // Utilization-model package power of the last step (PHPS view).
  double estimated_package_power_w() const noexcept {
    return last_estimated_package_w_;
  }

  // Cumulative estimated energy per cluster (IOReport "Energy Model").
  double estimated_cluster_energy_j(CoreType type) const noexcept {
    return type == CoreType::performance ? est_p_cluster_energy_j_
                                         : est_e_cluster_energy_j_;
  }

  double temperature_c() const noexcept { return thermal_.temperature_c(); }

  util::Xoshiro256& rng() noexcept { return rng_; }

 private:
  DeviceProfile profile_;
  std::vector<Core> cores_;
  ThermalModel thermal_;
  Governor governor_;
  util::Xoshiro256 rng_;

  double time_s_ = 0.0;
  RailPowers last_powers_{};
  RailEnergies energies_{};
  double last_estimated_package_w_ = 0.0;
  double est_p_cluster_energy_j_ = 0.0;
  double est_e_cluster_energy_j_ = 0.0;
};

}  // namespace psc::soc
