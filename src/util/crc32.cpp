#include "util/crc32.h"

#include <array>

namespace psc::util {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr auto table = make_table();

}  // namespace

void Crc32::update(std::span<const std::byte> data) noexcept {
  std::uint32_t c = state_;
  for (const std::byte b : data) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace psc::util
