// Statistics primitives used by the leakage-assessment (TVLA) and key
// extraction (CPA) engines: numerically stable running moments, Welch's
// t-test, and Pearson correlation in both batch and online form.
#pragma once

#include <cstddef>
#include <span>

namespace psc::util {

// Numerically stable running mean/variance (Welford's algorithm) with
// support for merging partial results (Chan et al.), min/max tracking.
class RunningStats {
 public:
  // Adds one observation.
  void add(double x) noexcept;

  // Adds a batch of observations; equivalent to adding each in order.
  void add_batch(std::span<const double> xs) noexcept;

  // Merges another accumulator into this one, as if all of its samples had
  // been added here.
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return count_; }
  // Mean of the samples seen so far; 0 when empty.
  double mean() const noexcept { return mean_; }
  // Unbiased sample variance (divides by n-1); 0 when count < 2.
  double variance() const noexcept;
  // Population variance (divides by n); 0 when empty.
  double population_variance() const noexcept;
  double stddev() const noexcept;
  // Smallest / largest sample; undefined (0) when empty.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Result of a Welch two-sample t-test.
struct WelchResult {
  double t = 0.0;    // t statistic (sign: mean(a) - mean(b))
  double dof = 0.0;  // Welch-Satterthwaite degrees of freedom
};

// Moment summary of one sample set — the exact inputs Welch's test needs.
// Accumulators that keep raw striped sums (util/simd.h) summarize into
// this instead of carrying Welford state.
struct MomentSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n-1 denominator); 0 when count < 2
};

// Welch's unequal-variance t-test between two summarized sample sets.
// Returns t = 0 when either set has fewer than two samples or both
// variances are zero.
WelchResult welch_t_test(const MomentSummary& a,
                         const MomentSummary& b) noexcept;

// Welch's unequal-variance t-test between two sample sets summarized by
// their running statistics. Returns t = 0 when either set has fewer than
// two samples or both variances are zero.
WelchResult welch_t_test(const RunningStats& a, const RunningStats& b) noexcept;

// Convenience overload over raw sample spans.
WelchResult welch_t_test(std::span<const double> a,
                         std::span<const double> b) noexcept;

// TVLA threshold from Goodwill et al.: |t| >= 4.5 indicates the two trace
// sets are distinguishable with confidence > 99.999%.
inline constexpr double tvla_threshold = 4.5;

// Pearson correlation coefficient of two equal-length sample spans.
// Returns 0 for degenerate inputs (fewer than 2 samples or zero variance).
double pearson(std::span<const double> x, std::span<const double> y) noexcept;

// Streaming accumulator for the Pearson correlation of paired observations.
// Keeps only sums, so millions of pairs cost O(1) memory.
class OnlineCorrelation {
 public:
  void add(double x, double y) noexcept;
  // Adds a batch of paired observations; throws std::invalid_argument
  // unless the spans have equal length.
  void add_batch(std::span<const double> xs, std::span<const double> ys);
  void merge(const OnlineCorrelation& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  // Correlation of the pairs seen so far; 0 for degenerate input.
  double correlation() const noexcept;
  double mean_x() const noexcept;
  double mean_y() const noexcept;
  // Sample covariance (n-1 denominator); 0 when count < 2.
  double covariance() const noexcept;

 private:
  std::size_t n_ = 0;
  double sum_x_ = 0.0;
  double sum_y_ = 0.0;
  double sum_xx_ = 0.0;
  double sum_yy_ = 0.0;
  double sum_xy_ = 0.0;
};

// Mean of a span; 0 when empty.
double mean(std::span<const double> xs) noexcept;

// Unbiased sample variance of a span; 0 when size < 2.
double variance(std::span<const double> xs) noexcept;

// Linear-interpolated percentile (p in [0,100]) of a span. The span is
// copied and sorted internally; 0 when empty.
double percentile(std::span<const double> xs, double p);

}  // namespace psc::util
