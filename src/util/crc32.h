// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-chunk
// integrity check of the PSTR trace store. Table-driven, streamable:
// feed a payload in pieces through Crc32 or hash it whole with crc32().
// crc32("123456789") == 0xCBF43926, the standard check value.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace psc::util {

// Incremental CRC over a byte stream.
class Crc32 {
 public:
  void update(std::span<const std::byte> data) noexcept;
  void update(const void* data, std::size_t size) noexcept {
    update(std::span(static_cast<const std::byte*>(data), size));
  }

  // The CRC of everything fed so far.
  std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

// One-shot CRC of a contiguous buffer.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;
inline std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  return crc32(std::span(static_cast<const std::byte*>(data), size));
}

}  // namespace psc::util
