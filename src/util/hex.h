// Hex encoding/decoding for keys, plaintexts and ciphertexts in logs,
// test vectors and the CLI examples.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace psc::util {

// Lower-case hex string of `bytes` ("0123af...").
std::string to_hex(std::span<const std::uint8_t> bytes);

// Decodes a hex string (case-insensitive, no separators). Returns nullopt
// on odd length or non-hex characters.
std::optional<std::vector<std::uint8_t>> from_hex(std::string_view hex);

// Decodes exactly N bytes into `out`; returns false on any mismatch.
bool from_hex_exact(std::string_view hex, std::span<std::uint8_t> out);

}  // namespace psc::util
