// Cache-line / vector-register aligned storage.
//
// The analysis accumulators (CpaEngine histograms, striped moment sums)
// are written millions of times per second from worker-pool threads; each
// shard's accumulators live in their own allocations, and aligning those
// allocations to the cache line guarantees (a) no two shards' hot state
// ever share a line (false sharing) and (b) the SIMD kernels in
// util/simd.h see vector-register-aligned rows.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace psc::util {

inline constexpr std::size_t cache_line_bytes = 64;

// Minimal C++17 aligned allocator: every allocation starts on an
// `Alignment`-byte boundary.
template <typename T, std::size_t Alignment = cache_line_bytes>
struct AlignedAllocator {
  using value_type = T;

  static_assert(Alignment >= alignof(T),
                "AlignedAllocator: alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "AlignedAllocator: alignment must be a power of two");

  AlignedAllocator() noexcept = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

// std::vector whose data() is cache-line aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace psc::util
