#include "util/fourcc.h"

#include <cctype>

namespace psc::util {

std::optional<FourCc> FourCc::parse(std::string_view s) noexcept {
  if (s.size() != 4) {
    return std::nullopt;
  }
  std::uint32_t code = 0;
  for (const char c : s) {
    code = (code << 8) | static_cast<unsigned char>(c);
  }
  return FourCc(code);
}

std::string FourCc::str() const {
  std::string out(4, '.');
  for (std::size_t i = 0; i < 4; ++i) {
    const char c = at(i);
    if (std::isprint(static_cast<unsigned char>(c)) != 0) {
      out[i] = c;
    }
  }
  return out;
}

}  // namespace psc::util
