// Environment-variable knobs for the bench harness (e.g. PSC_FULL=1 to run
// paper-scale trace counts).
#pragma once

#include <cstddef>
#include <string>

namespace psc::util {

// True when `name` is set to a truthy value ("1", "true", "yes", "on";
// case-insensitive); `fallback` when unset or empty.
bool env_flag(const std::string& name, bool fallback = false);

// Parses `name` as a non-negative integer; `fallback` when unset/invalid.
std::size_t env_size(const std::string& name, std::size_t fallback);

// Parses `name` as a floating-point value; `fallback` when unset/invalid.
double env_double(const std::string& name, double fallback);

// Raw string value of `name`; `fallback` when unset or empty.
std::string env_string(const std::string& name, const std::string& fallback);

}  // namespace psc::util
