#include "util/codec.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/simd.h"

namespace psc::util {

namespace {

// Grid indices are bounded to the integers a double represents exactly:
// beyond 2^53, k and k+1 collide in fl(k * step) and the bit-verify
// below could pass for the wrong k.
constexpr double max_grid_index = 9007199254740992.0;  // 2^53

void put_u32le(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}
void put_u64le(std::byte* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}
std::uint32_t get_u32le(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint32_t>(p[i]);
  }
  return v;
}
std::uint64_t get_u64le(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(p[i]);
  }
  return v;
}

// `c` rounded to `digits` significant decimal digits, as the nearest
// double to that decimal — exactly the value a source literal like 1e-6
// or 5e-3 denotes, which is what power::Quantizer was constructed with.
double snap_decimal(double c, int digits) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*e", digits - 1, c);
  return std::strtod(buf, nullptr);
}

// fl(k * step), optionally pushed through the float32 truncation the SMC
// read path applies — the two expressions a recorded grid value can be.
double reconstruct(std::int64_t k, double step, bool f32) noexcept {
  const double v = static_cast<double>(k) * step;
  return f32 ? static_cast<double>(static_cast<float>(v)) : v;
}

// True when every value is exactly reconstruct(k, step, f32) for an
// integer k within the exact range; fills ks on success.
bool extract_grid(const double* values, std::size_t n, double step, bool f32,
                  std::vector<std::int64_t>& ks) {
  if (!(step > 0.0) || !std::isfinite(step)) {
    return false;
  }
  ks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = values[i] / step;
    if (!(std::fabs(q) < max_grid_index)) {  // also rejects NaN
      return false;
    }
    const std::int64_t k = std::llround(q);
    // Float truncation can shift a value across the rounding midpoint of
    // its own grid cell (f32 ulp > step/2 for large values), so the true
    // k may sit one off the quotient; bit-verify the neighbors too.
    bool matched = false;
    for (const std::int64_t kc :
         {k, f32 ? k - 1 : k, f32 ? k + 1 : k}) {
      if (std::bit_cast<std::uint64_t>(reconstruct(kc, step, f32)) ==
          std::bit_cast<std::uint64_t>(values[i])) {
        ks[i] = kc;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return false;
    }
  }
  return true;
}

std::uint64_t zigzag(std::int64_t d) noexcept {
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}
std::int64_t unzigzag(std::uint64_t z) noexcept {
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace

bool delta_bitpack_encode(const double* values, std::size_t n,
                          std::vector<std::byte>& out) {
  if (n == 0) {
    return false;  // nothing to shrink
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      return false;
    }
  }

  // Step recovery: the smallest gap between adjacent distinct values is
  // within an ulp of a small multiple of the true step; snapping it to
  // 1-3 significant decimal digits reproduces the quantizer's literal.
  // Wrong guesses are harmless — extract_grid bit-verifies every value.
  double candidates[4];
  std::size_t n_candidates = 0;
  double min_abs = std::fabs(values[0]);
  {
    std::vector<double> sorted(values, values + n);
    std::sort(sorted.begin(), sorted.end());
    double min_gap = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
      const double gap = sorted[i] - sorted[i - 1];
      if (gap > 0.0 && (min_gap == 0.0 || gap < min_gap)) {
        min_gap = gap;
      }
      min_abs = std::min(min_abs, std::fabs(sorted[i]));
    }
    if (min_gap > 0.0) {
      candidates[n_candidates++] = snap_decimal(min_gap, 1);
      candidates[n_candidates++] = snap_decimal(min_gap, 2);
      candidates[n_candidates++] = snap_decimal(min_gap, 3);
      candidates[n_candidates++] = min_gap;
    } else {
      // All values equal: the value itself is its own grid (k = 1), or
      // any step at all when the column is exactly zero.
      candidates[n_candidates++] = min_abs > 0.0 ? min_abs : 1.0;
    }
  }

  // Prefer the plain grid (cheaper decode); fall back to the
  // float32-truncated grid recorded sensor columns actually live on.
  std::vector<std::int64_t> ks;
  bool have_grid = false;
  bool f32 = false;
  for (const bool try_f32 : {false, true}) {
    for (std::size_t c = 0; c < n_candidates && !have_grid; ++c) {
      have_grid = extract_grid(values, n, candidates[c], try_f32, ks);
      if (have_grid) {
        // Remember which candidate matched by leaving it in slot 0.
        candidates[0] = candidates[c];
        f32 = try_f32;
      }
    }
    if (have_grid) {
      break;
    }
  }
  if (!have_grid) {
    return false;
  }
  const double step = candidates[0];

  unsigned width = 0;
  for (std::size_t i = 1; i < n; ++i) {
    const std::uint64_t z = zigzag(ks[i] - ks[i - 1]);
    if (z != 0) {
      width = std::max(
          width, static_cast<unsigned>(64 - std::countl_zero(z)));
    }
  }
  if (width > delta_bitpack_max_width) {
    return false;
  }
  const std::size_t encoded = delta_bitpack_encoded_bytes(n, width);
  if (encoded >= n * sizeof(double)) {
    return false;  // compression would not pay
  }

  out.assign(encoded, std::byte{0});
  put_u32le(out.data(), static_cast<std::uint32_t>(n));
  put_u32le(out.data() + 4, width | (f32 ? delta_bitpack_f32_flag : 0u));
  put_u64le(out.data() + 8, std::bit_cast<std::uint64_t>(step));
  put_u64le(out.data() + 16, static_cast<std::uint64_t>(ks[0]));
  if (width > 0) {
    std::byte* packed = out.data() + delta_bitpack_header_bytes;
    std::size_t bit = 0;
    for (std::size_t i = 1; i < n; ++i, bit += width) {
      std::uint64_t z = zigzag(ks[i] - ks[i - 1]);
      std::size_t b = bit >> 3;
      unsigned used = static_cast<unsigned>(bit & 7);
      unsigned left = width;
      while (left > 0) {
        packed[b] |= static_cast<std::byte>((z << used) & 0xff);
        const unsigned consumed = 8 - used;
        z >>= consumed;
        left -= std::min(left, consumed);
        used = 0;
        ++b;
      }
    }
  }
  return true;
}

bool delta_bitpack_decode(const std::byte* in, std::size_t size,
                          double* values, std::size_t n) {
  if (size < delta_bitpack_header_bytes) {
    return false;
  }
  if (get_u32le(in) != n) {
    return false;
  }
  const std::uint32_t width_field = get_u32le(in + 4);
  const std::uint32_t width = width_field & 0xff;
  const bool f32 = (width_field & delta_bitpack_f32_flag) != 0;
  if (width > delta_bitpack_max_width ||
      (width_field & ~(0xffu | delta_bitpack_f32_flag)) != 0) {
    return false;
  }
  if (size != delta_bitpack_encoded_bytes(n, width)) {
    return false;
  }
  if (n == 0) {
    return true;
  }
  const double step = std::bit_cast<double>(get_u64le(in + 8));
  std::int64_t k = static_cast<std::int64_t>(get_u64le(in + 16));
  values[0] = reconstruct(k, step, f32);

  const std::byte* packed = in + delta_bitpack_header_bytes;
  const std::size_t packed_bytes = size - delta_bitpack_header_bytes;
  // Unpack in cache-friendly stack blocks through the dispatched SIMD
  // kernel; the prefix sum and the single fl(k * step) multiply per value
  // mirror the quantizer exactly (bit-exactness contract, see header).
  constexpr std::size_t block = 1024;
  std::uint64_t zs[block];
  std::size_t i = 1;
  while (i < n) {
    const std::size_t take = std::min(block, n - i);
    simd::unpack_bits(packed, packed_bytes,
                      static_cast<std::uint64_t>(i - 1) * width, width, zs,
                      take);
    for (std::size_t j = 0; j < take; ++j) {
      k += unzigzag(zs[j]);
      values[i + j] = reconstruct(k, step, f32);
    }
    i += take;
  }
  return true;
}

}  // namespace psc::util
