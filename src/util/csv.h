// Minimal CSV emitter used by the bench harness to dump figure series
// (e.g. GE-vs-traces curves) in a plot-ready form, plus the matching
// RFC 4180 reader so trace captures and bench outputs round-trip.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace psc::util {

class CsvWriter {
 public:
  // Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  // Writes a header or data row of pre-rendered cells. Cells containing
  // commas, quotes or newlines are quoted per RFC 4180.
  void row(std::initializer_list<std::string_view> cells);
  void row(const std::vector<std::string>& cells);

  // Row builder for mixed numeric/string content.
  class Row {
   public:
    explicit Row(CsvWriter& parent) : parent_(&parent) {}
    Row& cell(std::string_view text);
    Row& cell(double value);
    Row& cell(std::size_t value);
    // Emits the accumulated row.
    void done();

   private:
    CsvWriter* parent_;
    std::vector<std::string> cells_;
  };

  Row start_row() { return Row(*this); }

 private:
  friend class Row;
  void write_raw(const std::vector<std::string>& cells);

  std::ostream* out_;
};

// RFC 4180 record reader, the inverse of CsvWriter: quoted cells may
// contain commas, escaped "" quotes and embedded newlines; empty trailing
// cells are preserved ("a,," is three cells). Accepts both \n and \r\n
// record separators; a trailing newline at end of input does not produce
// an extra empty record.
class CsvReader {
 public:
  // Reads records from `in`; the stream must outlive the reader.
  explicit CsvReader(std::istream& in) : in_(&in) {}

  // Parses the next record into `cells` (cleared first). Returns false
  // once the input is exhausted. Throws std::runtime_error on a quoted
  // cell left unterminated at end of input.
  bool next_record(std::vector<std::string>& cells);

 private:
  std::istream* in_;
};

// Formats a double with 10 significant digits — plot-friendly, but not
// guaranteed to parse back to the same bits ("3.5", "0.004123").
std::string format_double(double value);

// Shortest decimal representation that parses back to exactly the same
// double. Used wherever a CSV must round-trip losslessly (trace capture
// files replayed through the analysis pipeline).
std::string format_double_exact(double value);

}  // namespace psc::util
