// Column codecs for the PSTR v2 trace store: lossless, bit-exact
// compression of quantized sensor columns.
//
// Every channel value the measurement path produces has passed
// power::Quantizer::apply — it is fl(k * step) for an integer k and the
// sensor's quantization step (powermetrics-class counters quantize at
// 1e-6 W, SMC floats at 1e-3..1e-2). delta_bitpack_encode recovers the
// step from the data, maps each double back to its integer grid index k,
// delta-encodes the k stream (sensor streams are a slow baseline plus
// bounded noise, so deltas are small), zigzags the signed deltas and
// packs them at the minimal fixed bit width. Decoding is a prefix sum
// and one multiply per value: fl(k * step) — exactly the expression the
// quantizer evaluated, so round-tripping is bit-exact, not just
// value-approximate.
//
// SMC clients read float32-encoded sensor values, so recorded columns
// are usually fl64(fl32(k * step)) rather than fl64(k * step) (see
// victim/fast_trace.cpp). The encoder detects that grid too and sets a
// flag in the block; decoding then applies the same float truncation
// after the multiply, keeping the round trip bit-exact.
//
// The encoder trusts nothing: every value must verify bit-for-bit
// against its reconstruction (k = llround(v/step); bit_cast(k*step) ==
// bit_cast(v)) or the column is rejected and the caller stores it raw
// (ColumnCodec::identity). Corrupt encoded input never produces UB —
// decode bounds-checks the block and returns false — and the store
// layer additionally CRCs the *decoded* bytes, so a bit flip inside a
// compressed payload surfaces as a loud StoreError either way.
//
// The packed little-endian bit stream is unpacked through the
// runtime-dispatched util::simd::unpack_bits kernel (AVX2 gathers on
// x86), which is why widths are capped at 56 bits: every field then
// fits one shifted 8-byte window.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psc::util {

// Encoded block layout (all little-endian):
//   u32 count   values encoded
//   u32 width   low byte: bits per packed zigzag delta (0..56; 0 = all
//               deltas zero); bit 8: float32-truncated grid (values are
//               fl64(fl32(k * step))); higher bits must be zero
//   u64 step    IEEE-754 bits of the recovered quantization step
//   i64 k0      grid index of the first value
//   ceil((count-1) * width / 8) packed bytes
inline constexpr std::size_t delta_bitpack_header_bytes = 24;
inline constexpr unsigned delta_bitpack_max_width = 56;
inline constexpr std::uint32_t delta_bitpack_f32_flag = 0x100;

// Bytes of a width-w encoding of n values (the size encode would write).
inline constexpr std::size_t delta_bitpack_encoded_bytes(
    std::size_t n, unsigned width) noexcept {
  const std::size_t packed = n == 0 ? 0 : (n - 1) * width;
  return delta_bitpack_header_bytes + (packed + 7) / 8;
}

// Encodes values[0..n) into `out` (replacing its contents). Returns true
// only when the encoding is bit-exact for every value AND strictly
// smaller than the raw column (n * 8 bytes); on false `out` is
// unspecified and the caller must store the column raw.
bool delta_bitpack_encode(const double* values, std::size_t n,
                          std::vector<std::byte>& out);

// Decodes an encoded block of exactly `size` bytes into values[0..n).
// Returns false (touching no more than the first n outputs) when the
// block is structurally invalid: short/oversized, count != n, width out
// of range. Bit flips that keep the structure valid decode to different
// bytes, which the store layer's payload CRC rejects.
bool delta_bitpack_decode(const std::byte* in, std::size_t size,
                          double* values, std::size_t n);

}  // namespace psc::util
