// Runtime-dispatched SIMD kernels for the analysis ingest hot path.
//
// The CPA and TVLA engines accumulate three things per trace: running
// moment sums of the measured channel value, 16 byte-indexed histograms
// of (count, value-sum), and — for the pair model — a 16x65536 pair
// histogram. This header exposes those inner loops as free-function
// kernels with one implementation per instruction set (scalar, SSE2,
// AVX2, AVX-512, NEON), selected once at runtime from CPU capabilities —
// the same per-ISA-dispatch model aes_armv8 set for the cipher.
//
// Bit-exactness contract
// ----------------------
// Every backend produces bit-identical accumulator state. This is not an
// accident of testing but of construction:
//
//  * Moment sums are *striped*: the value with global stream index g
//    accumulates into stripe g % stripes. A lane-width w backend
//    processes stripes [0,w), [w,2w), ... as vector lanes, so each
//    stripe always receives the same values in the same order — an
//    8-lane AVX-512 body, a 2-lane SSE2 body, and the portable scalar
//    loop all build identical stripes. Totals come from the fixed
//    pairwise reduction tree of reduce_stripes.
//  * Histogram updates touch 16 *disjoint* bins per trace (one per byte
//    position), so the vector body that updates all 16 positions of one
//    trace at a time (AVX-512 gather/scatter) performs, per bin, the same
//    floating-point additions in the same trace order as the scalar
//    position-major loop.
//
// None of the kernels uses fused multiply-add: x*x + s is always two
// roundings, matching the portable fallback on every ISA.
//
// The engines stripe by *global* trace index, which also makes their
// state prefix-consistent: feeding a stream in any batch-boundary
// chunking yields identical accumulators, the property the store replay
// and checkpoint-snapshot tests pin down.
//
// Dispatch
// --------
// active_backend() resolves once from the CPU (best available wins); the
// PSC_SIMD environment variable (scalar|sse2|avx2|avx512|neon) or
// force_backend() — the override hook the bit-consistency tests and the
// per-kernel benches use — pin a specific backend. Building with
// -DPSC_FORCE_SCALAR=ON (CMake) compiles the portable fallback only.
//
// Adding a new SIMD kernel
// ------------------------
//  1. Declare the free function here; implement the portable body in
//     simd.cpp as `<name>_scalar`.
//  2. Add per-ISA bodies guarded by PSC_SIMD_HAVE_* with
//     __attribute__((target(...))); reuse a backend's scalar body when an
//     ISA brings nothing (e.g. histogram scatter below AVX-512).
//  3. Wire the function pointers into KernelTable and the per-backend
//     tables; extend tests/util/simd_test.cpp's backend sweep — the
//     bit-identity harness picks the kernel up automatically.
//  4. Keep the kernel's FP-addition order per accumulator word identical
//     across bodies (stripe or disjoint-bin constructions above), or the
//     cross-backend tests will fail loudly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace psc::util::simd {

enum class Backend { scalar = 0, sse2, avx2, avx512, neon };

inline constexpr std::array<Backend, 5> all_backends = {
    Backend::scalar, Backend::sse2, Backend::avx2, Backend::avx512,
    Backend::neon};

std::string_view backend_name(Backend backend) noexcept;

// Compiled into this binary (ISA headers and bodies present).
bool backend_compiled(Backend backend) noexcept;
// Compiled and supported by the running CPU; scalar is always supported.
bool backend_supported(Backend backend) noexcept;
std::vector<Backend> supported_backends();

// The backend the kernels currently dispatch to.
Backend active_backend() noexcept;

// Dispatch override hook for tests and benches. Throws
// std::invalid_argument if `backend` is not supported on this machine.
// Takes effect for subsequent kernel calls; do not race against threads
// inside kernels (the campaign runners never switch mid-run).
void force_backend(Backend backend);

// Drops any override and re-resolves from PSC_SIMD / CPU capabilities.
void reset_backend() noexcept;

// ---------------------------------------------------------------------------
// Striped moment accumulation.

inline constexpr std::size_t stripes = 8;

// Per-stream running sums, striped by global index. Cache-line aligned so
// per-shard copies never share a line and vector loads are aligned.
struct alignas(64) MomentStripes {
  std::array<double, stripes> sum{};
  std::array<double, stripes> sumsq{};
};

// Accumulates x[0..n) into m, where x[i] carries global stream index
// g0 + i and lands in stripe (g0 + i) % stripes. sum gets x, sumsq gets
// x*x (two roundings, never fused).
void accumulate_moments(const double* x, std::size_t n, std::uint64_t g0,
                        MomentStripes& m) noexcept;

// Fixed pairwise reduction: ((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)).
// Identical on every backend — the only sanctioned way to total stripes.
double reduce_stripes(const std::array<double, stripes>& s) noexcept;

// Merges `b` (accumulated from local indices 0..nb) into `a`, whose
// stream already holds `na` values: b's stripe j joins a's stripe
// (na + j) % stripes, exactly where those values would have landed had
// the streams been concatenated. Deterministic, so shard merges in shard
// order are reproducible bit-for-bit.
void merge_moments(MomentStripes& a, std::uint64_t na,
                   const MomentStripes& b) noexcept;

// ---------------------------------------------------------------------------
// CPA byte histograms.

// For each trace t < n and byte position i < 16:
//   bin = i * 256 + blocks[16 t + i]
//   ++count[bin];  sum[bin] += values[t];
// `blocks` is the packed 16-byte-per-trace column (plaintexts or
// ciphertexts); count/sum hold 16 x 256 bins. Per bin, additions happen
// in trace order on every backend (the 16 bins of one trace are
// disjoint), so the state is bit-identical to the scalar loop.
void accumulate_histogram16(const std::uint8_t* blocks, const double* values,
                            std::size_t n, std::uint32_t* count,
                            double* sum) noexcept;

// ---------------------------------------------------------------------------
// Fixed-width bit-field unpack (store codec decode hot loop).

// Field widths the kernel accepts: with width <= 56, any field starting
// at bit b lies entirely inside the 8-byte window at byte b/8 after a
// shift of b%8 (<= 7) — one load, one variable shift, one mask per
// field, and the AVX2 body turns that into 4-lane gathers.
inline constexpr unsigned unpack_bits_max_width = 56;

// Unpacks n little-endian bit fields of `width` bits (0 <= width <= 56)
// starting at bit `bit0` of `packed` into out[0..n): field j occupies
// bits [bit0 + j*width, bit0 + (j+1)*width) of the stream, where bit b
// lives in byte b/8 at in-byte position b%8. width == 0 zero-fills.
// `packed_bytes` must cover the last field's final byte; near the buffer
// end the kernels assemble the window byte-wise instead of over-reading.
// Pure integer, so every backend is bit-identical by construction.
void unpack_bits(const std::byte* packed, std::size_t packed_bytes,
                 std::uint64_t bit0, unsigned width, std::uint64_t* out,
                 std::size_t n) noexcept;

}  // namespace psc::util::simd
