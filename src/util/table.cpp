#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace psc::util {

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

void TextTable::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::set_align(std::size_t column, Align align) {
  if (align_.size() <= column) {
    align_.resize(column + 1, Align::right);
    if (align_.size() > 0 && column_count() > 0) {
      align_[0] = Align::left;
    }
  }
  align_[column] = align;
}

std::size_t TextTable::column_count() const {
  std::size_t n = header_.size();
  for (const auto& row : rows_) {
    n = std::max(n, row.size());
  }
  return n;
}

Align TextTable::alignment(std::size_t column) const {
  if (column < align_.size()) {
    return align_[column];
  }
  return column == 0 ? Align::left : Align::right;
}

void TextTable::render(std::ostream& out) const {
  const std::size_t cols = column_count();
  if (cols == 0) {
    return;
  }
  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : std::string{};
      const std::size_t pad = width[c] - cell.size();
      out << (c == 0 ? "| " : " ");
      if (alignment(c) == Align::right) {
        out << std::string(pad, ' ') << cell;
      } else {
        out << cell << std::string(pad, ' ');
      }
      out << " |";
    }
    out << '\n';
  };

  if (!title_.empty()) {
    out << title_ << '\n';
  }
  std::size_t rule_len = 1;
  for (const std::size_t w : width) {
    rule_len += w + 3;
  }
  const std::string rule(rule_len, '-');
  out << rule << '\n';
  if (!header_.empty()) {
    emit(header_);
    out << rule << '\n';
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  out << rule << '\n';
}

}  // namespace psc::util
