#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace psc::util {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::add_batch(std::span<const double> xs) noexcept {
  for (const double x : xs) {
    add(x);
  }
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::population_variance() const noexcept {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

WelchResult welch_t_test(const MomentSummary& a,
                         const MomentSummary& b) noexcept {
  if (a.count < 2 || b.count < 2) {
    return {};
  }
  const double na = static_cast<double>(a.count);
  const double nb = static_cast<double>(b.count);
  const double va = a.variance / na;
  const double vb = b.variance / nb;
  const double pooled = va + vb;
  if (pooled <= 0.0) {
    return {};
  }
  WelchResult r;
  r.t = (a.mean - b.mean) / std::sqrt(pooled);
  const double denom =
      va * va / (na - 1.0) + vb * vb / (nb - 1.0);
  r.dof = denom > 0.0 ? pooled * pooled / denom : na + nb - 2.0;
  return r;
}

WelchResult welch_t_test(const RunningStats& a,
                         const RunningStats& b) noexcept {
  return welch_t_test(MomentSummary{a.count(), a.mean(), a.variance()},
                      MomentSummary{b.count(), b.mean(), b.variance()});
}

WelchResult welch_t_test(std::span<const double> a,
                         std::span<const double> b) noexcept {
  RunningStats sa;
  RunningStats sb;
  for (const double x : a) {
    sa.add(x);
  }
  for (const double x : b) {
    sb.add(x);
  }
  return welch_t_test(sa, sb);
}

double pearson(std::span<const double> x, std::span<const double> y) noexcept {
  OnlineCorrelation acc;
  const std::size_t n = std::min(x.size(), y.size());
  for (std::size_t i = 0; i < n; ++i) {
    acc.add(x[i], y[i]);
  }
  return acc.correlation();
}

void OnlineCorrelation::add(double x, double y) noexcept {
  ++n_;
  sum_x_ += x;
  sum_y_ += y;
  sum_xx_ += x * x;
  sum_yy_ += y * y;
  sum_xy_ += x * y;
}

void OnlineCorrelation::add_batch(std::span<const double> xs,
                                  std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument(
        "OnlineCorrelation::add_batch: span length mismatch");
  }
  for (std::size_t i = 0; i < xs.size(); ++i) {
    add(xs[i], ys[i]);
  }
}

void OnlineCorrelation::merge(const OnlineCorrelation& other) noexcept {
  n_ += other.n_;
  sum_x_ += other.sum_x_;
  sum_y_ += other.sum_y_;
  sum_xx_ += other.sum_xx_;
  sum_yy_ += other.sum_yy_;
  sum_xy_ += other.sum_xy_;
}

double OnlineCorrelation::correlation() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(n_);
  const double cov = sum_xy_ - sum_x_ * sum_y_ / n;
  const double var_x = sum_xx_ - sum_x_ * sum_x_ / n;
  const double var_y = sum_yy_ - sum_y_ * sum_y_ / n;
  if (var_x <= 0.0 || var_y <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_x * var_y);
}

double OnlineCorrelation::mean_x() const noexcept {
  return n_ == 0 ? 0.0 : sum_x_ / static_cast<double>(n_);
}

double OnlineCorrelation::mean_y() const noexcept {
  return n_ == 0 ? 0.0 : sum_y_ / static_cast<double>(n_);
}

double OnlineCorrelation::covariance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(n_);
  return (sum_xy_ - sum_x_ * sum_y_ / n) / (n - 1.0);
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) {
    return 0.0;
  }
  double acc = 0.0;
  for (const double x : xs) {
    acc += x;
  }
  return acc / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) noexcept {
  RunningStats s;
  for (const double x : xs) {
    s.add(x);
  }
  return s.variance();
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace psc::util
