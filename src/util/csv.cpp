#include "util/csv.h"

#include <charconv>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace psc::util {

namespace {

bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view cell) {
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (const char c : cell) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

std::string format_double(double value) {
  if (std::isnan(value)) {
    return "nan";
  }
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  char buf[32];
  const auto [ptr, ec] =
      std::to_chars(buf, buf + sizeof buf, value, std::chars_format::general,
                    10);
  if (ec != std::errc{}) {
    return "0";
  }
  return std::string(buf, ptr);
}

std::string format_double_exact(double value) {
  if (std::isnan(value)) {
    return "nan";
  }
  if (std::isinf(value)) {
    return value > 0 ? "inf" : "-inf";
  }
  char buf[32];
  // Precision-less to_chars emits the shortest string that round-trips.
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) {
    return "0";
  }
  return std::string(buf, ptr);
}

void CsvWriter::row(std::initializer_list<std::string_view> cells) {
  std::vector<std::string> rendered;
  rendered.reserve(cells.size());
  for (const auto cell : cells) {
    rendered.emplace_back(cell);
  }
  write_raw(rendered);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_raw(cells);
}

void CsvWriter::write_raw(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) {
      *out_ << ',';
    }
    first = false;
    if (needs_quoting(cell)) {
      *out_ << quote(cell);
    } else {
      *out_ << cell;
    }
  }
  *out_ << '\n';
}

CsvWriter::Row& CsvWriter::Row::cell(std::string_view text) {
  cells_.emplace_back(text);
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(double value) {
  cells_.push_back(format_double(value));
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(std::size_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

void CsvWriter::Row::done() {
  parent_->write_raw(cells_);
  cells_.clear();
}

bool CsvReader::next_record(std::vector<std::string>& cells) {
  cells.clear();
  std::istream& in = *in_;
  if (in.peek() == std::char_traits<char>::eof()) {
    return false;
  }

  std::string cell;
  bool quoted = false;
  int ch;
  while ((ch = in.get()) != std::char_traits<char>::eof()) {
    const char c = static_cast<char>(ch);
    if (quoted) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get();
          cell.push_back('"');
        } else {
          quoted = false;  // closing quote; delimiter or EOL must follow
        }
      } else {
        cell.push_back(c);  // commas and newlines are data inside quotes
      }
      continue;
    }
    if (c == '"' && cell.empty()) {
      quoted = true;
    } else if (c == ',') {
      cells.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n' || (c == '\r' && in.peek() == '\n')) {
      if (c == '\r') {
        in.get();
      }
      cells.push_back(std::move(cell));
      return true;
    } else {
      cell.push_back(c);
    }
  }
  if (quoted) {
    throw std::runtime_error("CsvReader: unterminated quoted cell");
  }
  cells.push_back(std::move(cell));  // final record without trailing newline
  return true;
}

}  // namespace psc::util
