#include "util/simd.h"

#include <atomic>
#include <stdexcept>
#include <string>

#include "util/env.h"

// ISA availability. PSC_SIMD_FORCE_SCALAR (CMake -DPSC_FORCE_SCALAR=ON)
// compiles the portable fallback only — the configuration CI keeps green
// so non-x86/non-ARM ports always have a working path.
#if !defined(PSC_SIMD_FORCE_SCALAR)
#if defined(__x86_64__) && defined(__GNUC__)
#define PSC_SIMD_HAVE_SSE2 1
#define PSC_SIMD_HAVE_AVX2 1
#define PSC_SIMD_HAVE_AVX512 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define PSC_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif
#endif  // !PSC_SIMD_FORCE_SCALAR

namespace psc::util::simd {

namespace {

// ---------------------------------------------------------------------------
// Moment bodies. Each consumes whole stripe blocks (n a multiple of
// `stripes`, stream index aligned so x[0] lands in stripe 0); head/tail
// alignment is handled once in accumulate_moments so every body sees the
// same stripe phase.

void moments_body_scalar(const double* x, std::size_t blocks,
                         MomentStripes& m) noexcept {
  std::array<double, stripes> sum = m.sum;
  std::array<double, stripes> sumsq = m.sumsq;
  for (std::size_t b = 0; b < blocks; ++b, x += stripes) {
    for (std::size_t j = 0; j < stripes; ++j) {
      sum[j] += x[j];
      sumsq[j] += x[j] * x[j];
    }
  }
  m.sum = sum;
  m.sumsq = sumsq;
}

#if defined(PSC_SIMD_HAVE_SSE2)
void moments_body_sse2(const double* x, std::size_t blocks,
                       MomentStripes& m) noexcept {
  __m128d s0 = _mm_load_pd(&m.sum[0]);
  __m128d s1 = _mm_load_pd(&m.sum[2]);
  __m128d s2 = _mm_load_pd(&m.sum[4]);
  __m128d s3 = _mm_load_pd(&m.sum[6]);
  __m128d q0 = _mm_load_pd(&m.sumsq[0]);
  __m128d q1 = _mm_load_pd(&m.sumsq[2]);
  __m128d q2 = _mm_load_pd(&m.sumsq[4]);
  __m128d q3 = _mm_load_pd(&m.sumsq[6]);
  for (std::size_t b = 0; b < blocks; ++b, x += stripes) {
    const __m128d v0 = _mm_loadu_pd(x + 0);
    const __m128d v1 = _mm_loadu_pd(x + 2);
    const __m128d v2 = _mm_loadu_pd(x + 4);
    const __m128d v3 = _mm_loadu_pd(x + 6);
    s0 = _mm_add_pd(s0, v0);
    s1 = _mm_add_pd(s1, v1);
    s2 = _mm_add_pd(s2, v2);
    s3 = _mm_add_pd(s3, v3);
    q0 = _mm_add_pd(q0, _mm_mul_pd(v0, v0));
    q1 = _mm_add_pd(q1, _mm_mul_pd(v1, v1));
    q2 = _mm_add_pd(q2, _mm_mul_pd(v2, v2));
    q3 = _mm_add_pd(q3, _mm_mul_pd(v3, v3));
  }
  _mm_store_pd(&m.sum[0], s0);
  _mm_store_pd(&m.sum[2], s1);
  _mm_store_pd(&m.sum[4], s2);
  _mm_store_pd(&m.sum[6], s3);
  _mm_store_pd(&m.sumsq[0], q0);
  _mm_store_pd(&m.sumsq[2], q1);
  _mm_store_pd(&m.sumsq[4], q2);
  _mm_store_pd(&m.sumsq[6], q3);
}

__attribute__((target("avx2"))) void moments_body_avx2(
    const double* x, std::size_t blocks, MomentStripes& m) noexcept {
  __m256d s0 = _mm256_load_pd(&m.sum[0]);
  __m256d s1 = _mm256_load_pd(&m.sum[4]);
  __m256d q0 = _mm256_load_pd(&m.sumsq[0]);
  __m256d q1 = _mm256_load_pd(&m.sumsq[4]);
  for (std::size_t b = 0; b < blocks; ++b, x += stripes) {
    const __m256d v0 = _mm256_loadu_pd(x + 0);
    const __m256d v1 = _mm256_loadu_pd(x + 4);
    s0 = _mm256_add_pd(s0, v0);
    s1 = _mm256_add_pd(s1, v1);
    q0 = _mm256_add_pd(q0, _mm256_mul_pd(v0, v0));
    q1 = _mm256_add_pd(q1, _mm256_mul_pd(v1, v1));
  }
  _mm256_store_pd(&m.sum[0], s0);
  _mm256_store_pd(&m.sum[4], s1);
  _mm256_store_pd(&m.sumsq[0], q0);
  _mm256_store_pd(&m.sumsq[4], q1);
}

__attribute__((target("avx512f"))) void moments_body_avx512(
    const double* x, std::size_t blocks, MomentStripes& m) noexcept {
  __m512d s = _mm512_load_pd(m.sum.data());
  __m512d q = _mm512_load_pd(m.sumsq.data());
  for (std::size_t b = 0; b < blocks; ++b, x += stripes) {
    const __m512d v = _mm512_loadu_pd(x);
    s = _mm512_add_pd(s, v);
    q = _mm512_add_pd(q, _mm512_mul_pd(v, v));
  }
  _mm512_store_pd(m.sum.data(), s);
  _mm512_store_pd(m.sumsq.data(), q);
}
#endif  // PSC_SIMD_HAVE_SSE2

#if defined(PSC_SIMD_HAVE_NEON)
void moments_body_neon(const double* x, std::size_t blocks,
                       MomentStripes& m) noexcept {
  float64x2_t s0 = vld1q_f64(&m.sum[0]);
  float64x2_t s1 = vld1q_f64(&m.sum[2]);
  float64x2_t s2 = vld1q_f64(&m.sum[4]);
  float64x2_t s3 = vld1q_f64(&m.sum[6]);
  float64x2_t q0 = vld1q_f64(&m.sumsq[0]);
  float64x2_t q1 = vld1q_f64(&m.sumsq[2]);
  float64x2_t q2 = vld1q_f64(&m.sumsq[4]);
  float64x2_t q3 = vld1q_f64(&m.sumsq[6]);
  for (std::size_t b = 0; b < blocks; ++b, x += stripes) {
    const float64x2_t v0 = vld1q_f64(x + 0);
    const float64x2_t v1 = vld1q_f64(x + 2);
    const float64x2_t v2 = vld1q_f64(x + 4);
    const float64x2_t v3 = vld1q_f64(x + 6);
    s0 = vaddq_f64(s0, v0);
    s1 = vaddq_f64(s1, v1);
    s2 = vaddq_f64(s2, v2);
    s3 = vaddq_f64(s3, v3);
    // vmulq + vaddq, not vfmaq: fused multiply-add rounds once and would
    // diverge from the scalar body's two-rounding x*x + q.
    q0 = vaddq_f64(q0, vmulq_f64(v0, v0));
    q1 = vaddq_f64(q1, vmulq_f64(v1, v1));
    q2 = vaddq_f64(q2, vmulq_f64(v2, v2));
    q3 = vaddq_f64(q3, vmulq_f64(v3, v3));
  }
  vst1q_f64(&m.sum[0], s0);
  vst1q_f64(&m.sum[2], s1);
  vst1q_f64(&m.sum[4], s2);
  vst1q_f64(&m.sum[6], s3);
  vst1q_f64(&m.sumsq[0], q0);
  vst1q_f64(&m.sumsq[2], q1);
  vst1q_f64(&m.sumsq[4], q2);
  vst1q_f64(&m.sumsq[6], q3);
}
#endif  // PSC_SIMD_HAVE_NEON

// ---------------------------------------------------------------------------
// Histogram bodies. The scalar body runs position-major (one 256-bin
// histogram stays hot across the whole column); AVX-512 runs trace-major,
// updating all 16 disjoint bins of a trace with gather/scatter. Per bin
// both orders perform the same additions in trace order. SSE2/AVX2 have
// no scatter, so they reuse the scalar body — dispatch still reports
// them, covering the moment kernels they do accelerate.

void histogram16_scalar(const std::uint8_t* blocks, const double* values,
                        std::size_t n, std::uint32_t* count,
                        double* sum) noexcept {
  for (std::size_t i = 0; i < 16; ++i) {
    std::uint32_t* c = count + i * 256;
    double* s = sum + i * 256;
    const std::uint8_t* b = blocks + i;
    for (std::size_t t = 0; t < n; ++t) {
      const std::uint8_t v = b[t * 16];
      ++c[v];
      s[v] += values[t];
    }
  }
}

#if defined(PSC_SIMD_HAVE_AVX512)
__attribute__((target("avx512f"))) void histogram16_avx512(
    const std::uint8_t* blocks, const double* values, std::size_t n,
    std::uint32_t* count, double* sum) noexcept {
  // Flat bin index for position i is i*256 + byte: every lane of one
  // trace addresses a different 256-bin block, so gather-add-scatter
  // never collides within a trace.
  const __m512i lane_base = _mm512_setr_epi32(
      0 * 256, 1 * 256, 2 * 256, 3 * 256, 4 * 256, 5 * 256, 6 * 256,
      7 * 256, 8 * 256, 9 * 256, 10 * 256, 11 * 256, 12 * 256, 13 * 256,
      14 * 256, 15 * 256);
  const __m512i one = _mm512_set1_epi32(1);
  for (std::size_t t = 0; t < n; ++t) {
    const __m128i bytes = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(blocks + t * 16));
    const __m512i idx =
        _mm512_add_epi32(_mm512_cvtepu8_epi32(bytes), lane_base);
    // Masked gathers with an explicit zero source: the unmasked forms
    // leave GCC's pass-through operand formally uninitialized and trip
    // -Wmaybe-uninitialized.
    const __m512i c = _mm512_mask_i32gather_epi32(
        _mm512_setzero_si512(), 0xffff, idx, count, 4);
    _mm512_i32scatter_epi32(count, idx, _mm512_add_epi32(c, one), 4);

    const __m512d v = _mm512_set1_pd(values[t]);
    const __m256i idx_lo = _mm512_castsi512_si256(idx);
    const __m256i idx_hi = _mm512_extracti64x4_epi64(idx, 1);
    const __m512d s_lo = _mm512_mask_i32gather_pd(
        _mm512_setzero_pd(), 0xff, idx_lo, sum, 8);
    const __m512d s_hi = _mm512_mask_i32gather_pd(
        _mm512_setzero_pd(), 0xff, idx_hi, sum, 8);
    _mm512_i32scatter_pd(sum, idx_lo, _mm512_add_pd(s_lo, v), 8);
    _mm512_i32scatter_pd(sum, idx_hi, _mm512_add_pd(s_hi, v), 8);
  }
}
#endif  // PSC_SIMD_HAVE_AVX512

// ---------------------------------------------------------------------------
// Bit-unpack bodies. Each field (width <= 56) is one shifted 8-byte
// little-endian window; near the end of the buffer the window is
// assembled byte-wise so the kernel never reads past packed_bytes. The
// AVX2 body replaces the window load + shift with a 4-lane byte-offset
// gather and a per-lane variable shift; everything is integer, so the
// backends are bit-identical without any ordering discipline.

// One field at bit index `bit`, safe at any distance from the end.
inline std::uint64_t unpack_one(const std::byte* packed,
                                std::size_t packed_bytes, std::uint64_t bit,
                                std::uint64_t mask) noexcept {
  const std::size_t byte = static_cast<std::size_t>(bit >> 3);
  const unsigned shift = static_cast<unsigned>(bit & 7);
  std::uint64_t window = 0;
  const std::size_t avail =
      byte < packed_bytes ? std::min<std::size_t>(8, packed_bytes - byte) : 0;
  for (std::size_t i = avail; i-- > 0;) {
    window = (window << 8) | static_cast<std::uint64_t>(packed[byte + i]);
  }
  return (window >> shift) & mask;
}

void unpack_bits_scalar(const std::byte* packed, std::size_t packed_bytes,
                        std::uint64_t bit0, unsigned width,
                        std::uint64_t* out, std::size_t n) noexcept {
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::uint64_t bit = bit0;
  for (std::size_t j = 0; j < n; ++j, bit += width) {
    out[j] = unpack_one(packed, packed_bytes, bit, mask);
  }
}

#if defined(PSC_SIMD_HAVE_AVX2)
__attribute__((target("avx2"))) void unpack_bits_avx2(
    const std::byte* packed, std::size_t packed_bytes, std::uint64_t bit0,
    unsigned width, std::uint64_t* out, std::size_t n) noexcept {
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::size_t j = 0;
  if (width > 0) {
    while (j + 4 <= n) {
      const std::uint64_t b0 = bit0 + j * width;
      const std::uint64_t b3 = b0 + 3 * width;
      // Gather loads a full 8-byte window per lane; stop vectorizing when
      // the last lane's window would cross the end of the buffer (or the
      // byte offset no longer fits the i32 gather index).
      if ((b3 >> 3) + 8 > packed_bytes || (b3 >> 3) > 0x7fffffff) {
        break;
      }
      const __m128i idx = _mm_set_epi32(
          static_cast<int>(b3 >> 3), static_cast<int>((b0 + 2 * width) >> 3),
          static_cast<int>((b0 + width) >> 3), static_cast<int>(b0 >> 3));
      const __m256i shifts = _mm256_set_epi64x(
          static_cast<long long>(b3 & 7),
          static_cast<long long>((b0 + 2 * width) & 7),
          static_cast<long long>((b0 + width) & 7),
          static_cast<long long>(b0 & 7));
      __m256i v = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(packed), idx, 1);
      v = _mm256_srlv_epi64(v, shifts);
      v = _mm256_and_si256(v, vmask);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j), v);
      j += 4;
    }
  }
  for (std::uint64_t bit = bit0 + j * width; j < n; ++j, bit += width) {
    out[j] = unpack_one(packed, packed_bytes, bit, mask);
  }
}
#endif  // PSC_SIMD_HAVE_AVX2

// ---------------------------------------------------------------------------
// Dispatch.

struct KernelTable {
  void (*moments_body)(const double*, std::size_t, MomentStripes&) noexcept;
  void (*histogram16)(const std::uint8_t*, const double*, std::size_t,
                      std::uint32_t*, double*) noexcept;
  void (*unpack_bits)(const std::byte*, std::size_t, std::uint64_t, unsigned,
                      std::uint64_t*, std::size_t) noexcept;
};

constexpr KernelTable scalar_table{moments_body_scalar, histogram16_scalar,
                                   unpack_bits_scalar};
#if defined(PSC_SIMD_HAVE_SSE2)
// SSE2 lacks per-lane variable shifts, so its unpack is the scalar body;
// AVX-512 gains nothing over the AVX2 gather for 4-lane 64-bit windows.
constexpr KernelTable sse2_table{moments_body_sse2, histogram16_scalar,
                                 unpack_bits_scalar};
constexpr KernelTable avx2_table{moments_body_avx2, histogram16_scalar,
                                 unpack_bits_avx2};
constexpr KernelTable avx512_table{moments_body_avx512, histogram16_avx512,
                                   unpack_bits_avx2};
#endif
#if defined(PSC_SIMD_HAVE_NEON)
constexpr KernelTable neon_table{moments_body_neon, histogram16_scalar,
                                 unpack_bits_scalar};
#endif

const KernelTable* table_for(Backend backend) noexcept {
  switch (backend) {
    case Backend::scalar:
      return &scalar_table;
#if defined(PSC_SIMD_HAVE_SSE2)
    case Backend::sse2:
      return &sse2_table;
    case Backend::avx2:
      return &avx2_table;
    case Backend::avx512:
      return &avx512_table;
#endif
#if defined(PSC_SIMD_HAVE_NEON)
    case Backend::neon:
      return &neon_table;
#endif
    default:
      return nullptr;
  }
}

bool cpu_supports(Backend backend) noexcept {
  if (!backend_compiled(backend)) {
    return false;
  }
  switch (backend) {
    case Backend::scalar:
      return true;
#if defined(PSC_SIMD_HAVE_SSE2)
    case Backend::sse2:
      return true;  // x86-64 baseline
    case Backend::avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Backend::avx512:
      return __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(PSC_SIMD_HAVE_NEON)
    case Backend::neon:
      return true;  // aarch64 baseline
#endif
    default:
      return false;
  }
}

Backend resolve_auto() noexcept {
  const std::string requested = env_string("PSC_SIMD", "");
  if (!requested.empty()) {
    for (const Backend backend : all_backends) {
      if (requested == backend_name(backend) &&
          cpu_supports(backend)) {
        return backend;
      }
    }
    // Unknown or unsupported request: fall through to auto (loud failure
    // belongs to force_backend; env is a soft knob).
  }
  Backend best = Backend::scalar;
  for (const Backend backend : all_backends) {
    if (cpu_supports(backend)) {
      best = backend;  // all_backends is ordered slowest to fastest
    }
  }
  return best;
}

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<Backend> g_backend{Backend::scalar};

const KernelTable& active_table() noexcept {
  const KernelTable* table = g_table.load(std::memory_order_acquire);
  if (table == nullptr) {
    const Backend backend = resolve_auto();
    table = table_for(backend);
    g_backend.store(backend, std::memory_order_relaxed);
    g_table.store(table, std::memory_order_release);
  }
  return *table;
}

}  // namespace

std::string_view backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::scalar:
      return "scalar";
    case Backend::sse2:
      return "sse2";
    case Backend::avx2:
      return "avx2";
    case Backend::avx512:
      return "avx512";
    case Backend::neon:
      return "neon";
  }
  return "?";
}

bool backend_compiled(Backend backend) noexcept {
  switch (backend) {
    case Backend::scalar:
      return true;
#if defined(PSC_SIMD_HAVE_SSE2)
    case Backend::sse2:
    case Backend::avx2:
    case Backend::avx512:
      return true;
#endif
#if defined(PSC_SIMD_HAVE_NEON)
    case Backend::neon:
      return true;
#endif
    default:
      return false;
  }
}

bool backend_supported(Backend backend) noexcept {
  return cpu_supports(backend);
}

std::vector<Backend> supported_backends() {
  std::vector<Backend> out;
  for (const Backend backend : all_backends) {
    if (cpu_supports(backend)) {
      out.push_back(backend);
    }
  }
  return out;
}

Backend active_backend() noexcept {
  active_table();  // ensure resolved
  return g_backend.load(std::memory_order_relaxed);
}

void force_backend(Backend backend) {
  if (!cpu_supports(backend)) {
    throw std::invalid_argument(
        "simd::force_backend: backend not supported here: " +
        std::string(backend_name(backend)));
  }
  g_backend.store(backend, std::memory_order_relaxed);
  g_table.store(table_for(backend), std::memory_order_release);
}

void reset_backend() noexcept {
  g_table.store(nullptr, std::memory_order_release);
}

void accumulate_moments(const double* x, std::size_t n, std::uint64_t g0,
                        MomentStripes& m) noexcept {
  // Scalar head until the stream index hits a stripe-0 boundary, so every
  // backend body sees the same phase.
  while (n > 0 && g0 % stripes != 0) {
    const double v = *x;
    m.sum[g0 % stripes] += v;
    m.sumsq[g0 % stripes] += v * v;
    ++x;
    ++g0;
    --n;
  }
  const std::size_t blocks = n / stripes;
  if (blocks > 0) {
    active_table().moments_body(x, blocks, m);
    x += blocks * stripes;
    n -= blocks * stripes;
  }
  for (std::size_t j = 0; j < n; ++j) {
    m.sum[j] += x[j];
    m.sumsq[j] += x[j] * x[j];
  }
}

double reduce_stripes(const std::array<double, stripes>& s) noexcept {
  return ((s[0] + s[1]) + (s[2] + s[3])) + ((s[4] + s[5]) + (s[6] + s[7]));
}

void merge_moments(MomentStripes& a, std::uint64_t na,
                   const MomentStripes& b) noexcept {
  const std::size_t rot = static_cast<std::size_t>(na % stripes);
  for (std::size_t j = 0; j < stripes; ++j) {
    const std::size_t k = (rot + j) % stripes;
    a.sum[k] += b.sum[j];
    a.sumsq[k] += b.sumsq[j];
  }
}

void accumulate_histogram16(const std::uint8_t* blocks, const double* values,
                            std::size_t n, std::uint32_t* count,
                            double* sum) noexcept {
  active_table().histogram16(blocks, values, n, count, sum);
}

void unpack_bits(const std::byte* packed, std::size_t packed_bytes,
                 std::uint64_t bit0, unsigned width, std::uint64_t* out,
                 std::size_t n) noexcept {
  active_table().unpack_bits(packed, packed_bytes, bit0, width, out, n);
}

}  // namespace psc::util::simd
