// Plain-text table rendering for the bench binaries, which print the same
// rows the paper's tables report.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace psc::util {

enum class Align { left, right };

class TextTable {
 public:
  // Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  // Sets the header row; defines the column count.
  void header(std::vector<std::string> cells);

  // Appends a data row. Rows shorter than the header are padded with
  // empty cells; longer rows extend the column count.
  void add_row(std::vector<std::string> cells);

  // Per-column alignment; defaults to left for col 0, right elsewhere.
  void set_align(std::size_t column, Align align);

  // Renders with column separators and a header rule.
  void render(std::ostream& out) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::size_t column_count() const;
  Align alignment(std::size_t column) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

// Fixed-precision float formatting for table cells ("20.94", "-0.18").
std::string fixed(double value, int decimals);

}  // namespace psc::util
