#include "util/rng.h"

#include <cmath>

namespace psc::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : state_) {
    word = sm();
  }
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;

  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);

  return result;
}

double Xoshiro256::uniform01() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Xoshiro256::uniform_u64(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Xoshiro256::gaussian(double mean, double sigma) noexcept {
  return mean + sigma * gaussian();
}

void Xoshiro256::fill_bytes(std::span<std::uint8_t> out) noexcept {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = (*this)();
    for (std::size_t b = 0; b < 8; ++b) {
      out[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
    i += 8;
  }
  if (i < out.size()) {
    const std::uint64_t word = (*this)();
    for (std::size_t b = 0; i < out.size(); ++i, ++b) {
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

Xoshiro256 Xoshiro256::fork() noexcept {
  return Xoshiro256((*this)());
}

Xoshiro256 Xoshiro256::split(std::uint64_t stream_id) const noexcept {
  // Hash the full 256-bit state and the stream id down to a 64-bit child
  // seed with the SplitMix64 finalizer; Xoshiro256's own seeding expands it
  // back to 256 bits. The finalizer's avalanche keeps children of adjacent
  // ids (0, 1, 2, ...) decorrelated.
  auto mix = [](std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t acc = 0x243f6a8885a308d3ULL;  // pi's fraction: arbitrary
  for (const std::uint64_t word : state_) {
    acc = mix(acc ^ word) + 0x9e3779b97f4a7c15ULL;
  }
  acc = mix(acc ^ (stream_id + 0x9e3779b97f4a7c15ULL));
  return Xoshiro256(acc);
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kLongJump = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};

  std::array<std::uint64_t, 4> acc{};
  for (const std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        for (std::size_t w = 0; w < 4; ++w) {
          acc[w] ^= state_[w];
        }
      }
      (void)(*this)();
    }
  }
  state_ = acc;
  has_cached_gaussian_ = false;
}

}  // namespace psc::util
