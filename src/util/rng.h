// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component of the simulator (sensor noise, scheduler jitter,
// plaintext generation) draws from an explicitly seeded generator so that a
// whole campaign is reproducible from a single seed. The engines are
// SplitMix64 (seeding / cheap streams) and Xoshiro256** (main engine),
// both public-domain algorithms by Steele/Lea and Blackman/Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <limits>
#include <span>

namespace psc::util {

// SplitMix64: a tiny 64-bit generator. Primarily used to expand a single
// 64-bit seed into the larger state of Xoshiro256 and to derive independent
// child seeds for subsystems.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

// Xoshiro256**: fast, high-quality 64-bit generator with 256-bit state.
// Satisfies the UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  // Expands `seed` into the full state via SplitMix64 (the recommended
  // seeding procedure from the authors).
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  result_type operator()() noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  // Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  // Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  // Uniform integer in [0, bound) without modulo bias. Requires bound > 0.
  std::uint64_t uniform_u64(std::uint64_t bound) noexcept;

  // Standard normal deviate (Marsaglia polar method; one deviate cached).
  double gaussian() noexcept;

  // Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double sigma) noexcept;

  // Fills `out` with independent uniform bytes.
  void fill_bytes(std::span<std::uint8_t> out) noexcept;

  // Returns a generator seeded from this one; the child stream is
  // statistically independent for all practical purposes.
  Xoshiro256 fork() noexcept;

  // Deterministic stream splitting: derives the child generator identified
  // by `stream_id` from the current state *without advancing it*. Distinct
  // ids yield statistically independent streams, and the same id always
  // yields the same stream — the primitive the parallel campaign runner's
  // per-shard reproducibility rests on (shard results are a pure function
  // of the campaign seed and the shard index, not of scheduling order).
  Xoshiro256 split(std::uint64_t stream_id) const noexcept;

  // Jump function equivalent to 2^192 calls; used to create widely
  // separated parallel streams from one seed.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace psc::util
