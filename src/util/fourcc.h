// Four-character codes, the key type of Apple's SMC key/value store
// (e.g. "PHPC", "TC0P"). Stored big-endian in a 32-bit word, matching the
// wire format of the SMC protocol.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace psc::util {

class FourCc {
 public:
  constexpr FourCc() = default;

  // Builds from the packed big-endian representation.
  constexpr explicit FourCc(std::uint32_t code) noexcept : code_(code) {}

  // Builds from a 4-character string literal, e.g. FourCc("PHPC").
  constexpr explicit FourCc(const char (&s)[5]) noexcept
      : code_((static_cast<std::uint32_t>(static_cast<unsigned char>(s[0]))
               << 24) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(s[1]))
               << 16) |
              (static_cast<std::uint32_t>(static_cast<unsigned char>(s[2]))
               << 8) |
              static_cast<std::uint32_t>(static_cast<unsigned char>(s[3]))) {}

  // Parses a 4-character string at runtime; rejects other lengths.
  static std::optional<FourCc> parse(std::string_view s) noexcept;

  constexpr std::uint32_t code() const noexcept { return code_; }

  // The 4-character string form (non-printable bytes rendered as '.').
  std::string str() const;

  // Character at position i (0..3), most significant first.
  constexpr char at(std::size_t i) const noexcept {
    return static_cast<char>((code_ >> (8 * (3 - i))) & 0xff);
  }

  constexpr auto operator<=>(const FourCc&) const noexcept = default;

 private:
  std::uint32_t code_ = 0;
};

}  // namespace psc::util

template <>
struct std::hash<psc::util::FourCc> {
  std::size_t operator()(const psc::util::FourCc& k) const noexcept {
    return std::hash<std::uint32_t>{}(k.code());
  }
};
