#include "util/env.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace psc::util {

namespace {

const char* lookup(const std::string& name) {
  return std::getenv(name.c_str());
}

}  // namespace

bool env_flag(const std::string& name, bool fallback) {
  const char* raw = lookup(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  std::string value(raw);
  std::transform(value.begin(), value.end(), value.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

std::size_t env_size(const std::string& name, std::size_t fallback) {
  const char* raw = lookup(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') {
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = lookup(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  return raw;
}

double env_double(const std::string& name, double fallback) {
  const char* raw = lookup(name);
  if (raw == nullptr || *raw == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const double parsed = std::strtod(raw, &end);
  if (end == raw || *end != '\0') {
    return fallback;
  }
  return parsed;
}

}  // namespace psc::util
