#include "power/hypothetical.h"

#include <bit>

#include "aes/sbox.h"

namespace psc::power {

std::string_view power_model_name(PowerModel model) noexcept {
  switch (model) {
    case PowerModel::rd0_hw:
      return "Rd0-HW";
    case PowerModel::rd10_hw:
      return "Rd10-HW";
    case PowerModel::rd10_hd:
      return "Rd10-HD";
    case PowerModel::rd1_sbox_hw:
      return "Rd1-SBox-HW";
  }
  return "?";
}

int recovered_round(PowerModel model) noexcept {
  switch (model) {
    case PowerModel::rd0_hw:
    case PowerModel::rd1_sbox_hw:
      return 0;
    case PowerModel::rd10_hw:
    case PowerModel::rd10_hd:
      return 10;
  }
  return 0;
}

ModelInputBytes power_model_inputs(PowerModel model) noexcept {
  ModelInputBytes in;
  switch (model) {
    case PowerModel::rd0_hw:
    case PowerModel::rd1_sbox_hw:
      in.uses_plaintext = true;
      break;
    case PowerModel::rd10_hw:
      break;
    case PowerModel::rd10_hd:
      in.uses_ciphertext_pair = true;
      break;
  }
  return in;
}

int predict_rd0_hw(std::uint8_t pt_byte, std::uint8_t g) noexcept {
  return std::popcount(static_cast<std::uint8_t>(pt_byte ^ g));
}

int predict_rd10_hw(std::uint8_t ct_byte, std::uint8_t g) noexcept {
  return std::popcount(aes::inv_sbox[static_cast<std::uint8_t>(ct_byte ^ g)]);
}

int predict_rd10_hd(std::uint8_t ct_byte, std::uint8_t ct_shifted_byte,
                    std::uint8_t g) noexcept {
  const std::uint8_t last_round_input =
      aes::inv_sbox[static_cast<std::uint8_t>(ct_byte ^ g)];
  return std::popcount(
      static_cast<std::uint8_t>(last_round_input ^ ct_shifted_byte));
}

int predict_rd1_sbox_hw(std::uint8_t pt_byte, std::uint8_t g) noexcept {
  return std::popcount(aes::sbox[static_cast<std::uint8_t>(pt_byte ^ g)]);
}

int predict(PowerModel model, const aes::Block& plaintext,
            const aes::Block& ciphertext, std::size_t i,
            std::uint8_t g) noexcept {
  switch (model) {
    case PowerModel::rd0_hw:
      return predict_rd0_hw(plaintext[i], g);
    case PowerModel::rd10_hw:
      return predict_rd10_hw(ciphertext[i], g);
    case PowerModel::rd10_hd:
      // The last-round input byte recovered from ct[i] lives at state
      // position shift_rows_source(i) and is overwritten by the ciphertext
      // byte written there.
      return predict_rd10_hd(ciphertext[i],
                             ciphertext[aes::shift_rows_source(i)], g);
    case PowerModel::rd1_sbox_hw:
      return predict_rd1_sbox_hw(plaintext[i], g);
  }
  return 0;
}

std::uint8_t true_key_byte(
    PowerModel model,
    const std::array<aes::Block, aes::num_rounds + 1>& round_keys,
    std::size_t i) noexcept {
  return recovered_round(model) == 0 ? round_keys[0][i]
                                     : round_keys[aes::num_rounds][i];
}

}  // namespace psc::power
