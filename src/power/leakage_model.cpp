#include "power/leakage_model.h"

namespace psc::power {

LeakageConfig LeakageConfig::apple_silicon_default() {
  LeakageConfig cfg;
  // Value leakage concentrated on the first AddRoundKey state: with the
  // same plaintext encrypted back-to-back for a full SMC window, the
  // whitened input is the value most often re-driven through the datapath
  // (input registers, first AESE operand). Matches Rd0-HW converging
  // fastest in Fig. 1.
  cfg.ark_hw_weight[0] = 1.0;
  // The last-round input (post-ARK9) leaks at roughly half the weight:
  // Rd10-HW converges, but visibly slower.
  cfg.ark_hw_weight[9] = 0.5;
  // Remaining round states contribute a uniform background: data-dependent
  // (TVLA sees the full-state differences) but uncorrelated with any
  // single-byte hypothesis (CPA-algorithmic noise).
  for (std::size_t r = 1; r <= aes::num_rounds; ++r) {
    if (r != 9) {
      cfg.ark_hw_weight[r] = 0.15;
    }
  }
  for (auto& w : cfg.sbox_hw_weight) {
    w = 0.15;
  }
  cfg.plaintext_load_weight = 0.85;
  cfg.last_round_hd_weight = 0.0;
  // Joules per weighted bit per encryption; the end-to-end scale is
  // validated by tests/calibration (see soc/device_profile.cpp for the
  // derived per-key SNR figures).
  cfg.leak_joules_per_bit = 1.0e-15;
  // Bus termination / lane toggling costs roughly 5x the core datapath per
  // bit; dominates the package-rail TVLA signal.
  cfg.bus_joules_per_bit = 7.0e-15;
  return cfg;
}

double LeakageConfig::expected_energy() const noexcept {
  // Uniform random state bytes have expected HW 64 per 16-byte block, and
  // expected HD 64 between two independent blocks.
  double weighted_bits = 0.0;
  for (const double w : ark_hw_weight) {
    weighted_bits += w * 64.0;
  }
  for (const double w : sbox_hw_weight) {
    weighted_bits += w * 64.0;
  }
  weighted_bits += plaintext_load_weight * 64.0;
  weighted_bits += last_round_hd_weight * 64.0;
  return weighted_bits * leak_joules_per_bit;
}

double LeakageConfig::max_energy() const noexcept {
  double weighted_bits = 0.0;
  for (const double w : ark_hw_weight) {
    weighted_bits += w * 128.0;
  }
  for (const double w : sbox_hw_weight) {
    weighted_bits += w * 128.0;
  }
  weighted_bits += plaintext_load_weight * 128.0;
  weighted_bits += last_round_hd_weight * 128.0;
  return weighted_bits * leak_joules_per_bit;
}

double LeakageEvaluator::encryption_energy(
    const aes::Block& plaintext, const aes::RoundTrace& trace) const noexcept {
  double weighted_bits = 0.0;
  for (std::size_t r = 0; r <= aes::num_rounds; ++r) {
    const double w = config_.ark_hw_weight[r];
    if (w != 0.0) {
      weighted_bits += w * aes::hamming_weight(trace.post_add_round_key[r]);
    }
  }
  for (std::size_t r = 0; r < aes::num_rounds; ++r) {
    const double w = config_.sbox_hw_weight[r];
    if (w != 0.0) {
      weighted_bits += w * aes::hamming_weight(trace.post_sub_bytes[r]);
    }
  }
  if (config_.plaintext_load_weight != 0.0) {
    weighted_bits += config_.plaintext_load_weight *
                     aes::hamming_weight(plaintext);
  }
  if (config_.last_round_hd_weight != 0.0) {
    weighted_bits += config_.last_round_hd_weight *
                     aes::hamming_distance(
                         trace.post_add_round_key[aes::num_rounds - 1],
                         trace.post_add_round_key[aes::num_rounds]);
  }
  return weighted_bits * config_.leak_joules_per_bit;
}

double LeakageEvaluator::energy_deviation(
    const aes::Block& plaintext, const aes::RoundTrace& trace) const noexcept {
  return encryption_energy(plaintext, trace) - config_.expected_energy();
}

double LeakageEvaluator::bus_energy(
    const aes::Block& plaintext, const aes::Block& ciphertext) const noexcept {
  if (config_.bus_joules_per_bit == 0.0) {
    return 0.0;
  }
  const int bits = aes::hamming_weight(plaintext) +
                   aes::hamming_weight(ciphertext);
  return config_.bus_joules_per_bit * bits;
}

double LeakageEvaluator::bus_energy_deviation(
    const aes::Block& plaintext, const aes::Block& ciphertext) const noexcept {
  return bus_energy(plaintext, ciphertext) -
         config_.bus_joules_per_bit * 128.0;
}

}  // namespace psc::power
