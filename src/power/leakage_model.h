// Chip-side data-dependent leakage model.
//
// CMOS datapaths consume energy proportional to the values they process
// (value leakage on precharged buses and register file reads: ~Hamming
// weight) and to the transitions they drive (switching leakage: ~Hamming
// distance). This module assigns an energy to each AES encryption as a
// weighted sum over its true intermediate states.
//
// The weight profile is the calibration surface of the whole reproduction:
// the paper's evidence (Rd0-HW converges fastest, Rd10-HW slower, Rd10-HD
// not at all; Table 4 / Fig. 1) pins the silicon to value-dominated leakage
// with the first AddRoundKey state most exposed. `apple_silicon_default()`
// encodes exactly that shape; the ablation bench flips the weights to show
// the attack models respond as theory predicts.
#pragma once

#include <array>

#include "aes/aes128.h"

namespace psc::power {

// Per-round energy weights, in units of `leak_joules_per_bit`.
struct LeakageConfig {
  // Weight of HW(post-AddRoundKey state of round r), r = 0..10.
  std::array<double, aes::num_rounds + 1> ark_hw_weight{};

  // Weight of HW(post-SubBytes state of round r), r = 1..10.
  std::array<double, aes::num_rounds> sbox_hw_weight{};

  // Weight of HW(plaintext) (input buffer loads; key-independent).
  double plaintext_load_weight = 0.0;

  // Weight of HD(last-round input, ciphertext) — register-overwrite
  // transition leakage. Zero by default: the paper's Rd10-HD model shows no
  // convergence on M1/M2, so the observable channel carries no measurable
  // transition leakage.
  double last_round_hd_weight = 0.0;

  // Global scale: joules contributed per weighted Hamming-weight bit per
  // encryption.
  double leak_joules_per_bit = 0.0;

  // Memory/IO-side value leakage: every encryption drives the plaintext and
  // ciphertext buffers across the fabric, dissipating energy proportional
  // to HW(pt) + HW(ct) on the DRAM/IO rail (bus termination and lane
  // toggling) rather than on the core rail. This is the mechanism behind
  // the paper's package-level keys (PSTR, PDTR) showing clear TVLA
  // leakage between all-0s and all-1s plaintexts while their per-byte CPA
  // signal stays buried: the term is large for full-block differences but
  // only weakly correlated with any single-byte hypothesis.
  double bus_joules_per_bit = 0.0;

  // Calibrated profile reproducing the paper's observations (see DESIGN.md
  // "Calibration targets").
  static LeakageConfig apple_silicon_default();

  // Expected energy per encryption under uniform random data, used to
  // separate the data-dependent deviation from the mean workload power.
  double expected_energy() const noexcept;

  // Maximum possible per-encryption energy (all states at HW 128).
  double max_energy() const noexcept;
};

// Evaluates the per-encryption data-dependent energy from a captured
// round trace.
class LeakageEvaluator {
 public:
  explicit LeakageEvaluator(LeakageConfig config) noexcept
      : config_(config) {}

  // Joules of data-dependent energy dissipated by one encryption whose
  // intermediate states are `trace` and whose input block was `plaintext`.
  double encryption_energy(const aes::Block& plaintext,
                           const aes::RoundTrace& trace) const noexcept;

  // Deviation of one encryption's energy from the random-data expectation;
  // this is the signal a power meter sees on top of the mean draw.
  double energy_deviation(const aes::Block& plaintext,
                          const aes::RoundTrace& trace) const noexcept;

  // Bus/IO-side energy of one encryption: bus_joules_per_bit *
  // (HW(pt) + HW(ct)). Routed to the DRAM/IO rail by the SoC model.
  double bus_energy(const aes::Block& plaintext,
                    const aes::Block& ciphertext) const noexcept;

  // Deviation of the bus energy from its random-data expectation (128
  // bits).
  double bus_energy_deviation(const aes::Block& plaintext,
                              const aes::Block& ciphertext) const noexcept;

  const LeakageConfig& config() const noexcept { return config_; }

 private:
  LeakageConfig config_;
};

}  // namespace psc::power
