#include "power/noise.h"

#include <cmath>

namespace psc::power {

double Quantizer::apply(double value) const noexcept {
  if (step_ <= 0.0) {
    return value;
  }
  return std::round(value / step_) * step_;
}

}  // namespace psc::power
