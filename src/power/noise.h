// Measurement-path distortions applied between a physical rail power and
// the value a software-visible sensor reports: additive electrical noise
// and ADC quantization.
#pragma once

#include "util/rng.h"

namespace psc::power {

// Zero-mean Gaussian measurement noise with fixed standard deviation.
class GaussianNoise {
 public:
  explicit GaussianNoise(double sigma) noexcept : sigma_(sigma) {}

  double sigma() const noexcept { return sigma_; }

  // One noise sample.
  double sample(util::Xoshiro256& rng) const noexcept {
    return sigma_ == 0.0 ? 0.0 : rng.gaussian(0.0, sigma_);
  }

  // `value` plus one noise sample.
  double apply(double value, util::Xoshiro256& rng) const noexcept {
    return value + sample(rng);
  }

 private:
  double sigma_;
};

// Uniform mid-tread quantizer modelling sensor ADC resolution. A step of
// 1e-6 represents a uW-resolution power meter, 1e-3 a mW one.
class Quantizer {
 public:
  // step == 0 disables quantization (identity).
  explicit Quantizer(double step) noexcept : step_(step) {}

  double step() const noexcept { return step_; }

  double apply(double value) const noexcept;

 private:
  double step_;
};

}  // namespace psc::power
