// Attacker-side hypothetical power models for CPA (paper section 3.4).
//
// The attacker knows plaintext and ciphertext of every trace and, for each
// 16-way key-byte position and each of the 256 guesses, predicts a leakage
// value. CPA ranks guesses by the Pearson correlation between prediction
// and measured SMC values. The three models evaluated by the paper:
//
//   Rd0-HW : HW of the state byte after the initial AddRoundKey
//            (pt[i] ^ g) — recovers the initial round key (= AES-128 key).
//   Rd10-HW: HW of the last-round input byte reconstructed from the
//            ciphertext, InvSBox(ct[i] ^ g) — recovers the round-10 key.
//   Rd10-HD: HD between the last-round input byte and the ciphertext byte
//            it is overwritten by — recovers the round-10 key.
//
// Note on Rd0-HW ghost guesses: HW(pt ^ g) correlates with HW(pt ^ k) by
// (8 - 2*HD(g,k))/8, so single-bit neighbours of the true key correlate at
// 0.75 of the true peak. This is why the paper's Table 4 shows many ranks
// in 2..9 ("nearly recovered"): those are Hamming neighbours.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "aes/aes128.h"

namespace psc::power {

enum class PowerModel {
  rd0_hw,
  rd10_hw,
  rd10_hd,
  // Extension beyond the paper: HW after the first SubBytes,
  // HW(SBox(pt[i] ^ g)). The S-box nonlinearity removes the linear ghost
  // guesses that plague Rd0-HW, at the cost of targeting a state the SMC
  // channel exposes only weakly.
  rd1_sbox_hw,
};

// The models the paper evaluates, in paper order.
inline constexpr std::array<PowerModel, 3> paper_power_models = {
    PowerModel::rd0_hw, PowerModel::rd10_hw, PowerModel::rd10_hd};

// All implemented models, including extensions.
inline constexpr std::array<PowerModel, 4> all_power_models = {
    PowerModel::rd0_hw, PowerModel::rd10_hw, PowerModel::rd10_hd,
    PowerModel::rd1_sbox_hw};

// Display name ("Rd0-HW", ...).
std::string_view power_model_name(PowerModel model) noexcept;

// Which round key a model recovers: 0 (master) or 10.
int recovered_round(PowerModel model) noexcept;

// Known-data byte(s) the model consumes for byte position i.
//   rd0_hw  -> pt[i]
//   rd10_hw -> ct[i]
//   rd10_hd -> (ct[i], ct[shift_rows_source(i)])
// Exposed so the CPA engine can bin traces by exactly these bytes.
struct ModelInputBytes {
  bool uses_plaintext = false;
  bool uses_ciphertext_pair = false;  // true only for rd10_hd
};
ModelInputBytes power_model_inputs(PowerModel model) noexcept;

// Predicted leakage (0..8) for byte position `i`, key guess `g`, given the
// known data of one trace.
int predict(PowerModel model, const aes::Block& plaintext,
            const aes::Block& ciphertext, std::size_t i,
            std::uint8_t g) noexcept;

// Single-byte predictors used by the histogram CPA engine (the known byte
// values are the bin indices, so no Block is needed).
int predict_rd0_hw(std::uint8_t pt_byte, std::uint8_t g) noexcept;
int predict_rd10_hw(std::uint8_t ct_byte, std::uint8_t g) noexcept;
int predict_rd10_hd(std::uint8_t ct_byte, std::uint8_t ct_shifted_byte,
                    std::uint8_t g) noexcept;
int predict_rd1_sbox_hw(std::uint8_t pt_byte, std::uint8_t g) noexcept;

// Ground-truth key byte the model should rank first, for scoring: the
// master key byte for rd0_hw, the round-10 key byte otherwise.
std::uint8_t true_key_byte(PowerModel model,
                           const std::array<aes::Block, aes::num_rounds + 1>&
                               round_keys,
                           std::size_t i) noexcept;

}  // namespace psc::power
