#include "store/chunk_prefetcher.h"

#include <algorithm>

namespace psc::store {

ChunkPrefetcher::ChunkPrefetcher(TraceFileReader& reader, std::size_t begin,
                                 std::size_t end)
    : reader_(&reader),
      pool_(&core::WorkerPool::instance()),
      end_(std::min(end, reader.chunk_count())),
      next_issue_(begin) {
  if (next_issue_ < end_) {
    issue(slots_[0], next_issue_++);
  }
}

ChunkPrefetcher::~ChunkPrefetcher() {
  // At most one ticket is outstanding; finishing both is a no-op on the
  // empty one. This keeps the posted lambda's captures (this, the slot)
  // alive until the job has run.
  for (Slot& slot : slots_) {
    pool_->finish(slot.ticket);
  }
}

void ChunkPrefetcher::issue(Slot& slot, std::size_t chunk) {
  slot.pending = true;
  slot.error = nullptr;
  // The job must not throw across the pool boundary: decode errors are
  // parked in the slot and rethrown by next_chunk() on the caller.
  slot.ticket = pool_->post([this, &slot, chunk] {
    try {
      slot.view = reader_->read_chunk_into(chunk, slot.buf);
    } catch (...) {
      slot.error = std::current_exception();
    }
  });
}

std::optional<ChunkView> ChunkPrefetcher::next_chunk() {
  Slot& slot = slots_[cur_];
  if (!slot.pending) {
    return std::nullopt;
  }
  if (pool_->finish(slot.ticket)) {
    ++async_completions_;
  }
  slot.pending = false;
  // The reader is idle between the finish() above and this post, which
  // is the only window where issuing a new job is safe.
  if (next_issue_ < end_) {
    issue(slots_[cur_ ^ 1], next_issue_++);
  }
  if (slot.error != nullptr) {
    std::rethrow_exception(slot.error);
  }
  cur_ ^= 1;
  return slot.view;
}

}  // namespace psc::store
