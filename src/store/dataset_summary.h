// Cheap whole-dataset summary shared by `trace_convert info` and the bus
// daemon's dataset registry (`psc_busctl datasets`): one struct, one
// formatter, so the CLI and the wire both describe a dataset the same
// way. Built from chunk headers and v2 column directories only — no
// chunk payload is decoded (see TraceFileReader::column_stats), which is
// what lets the daemon list multi-gigabyte datasets instantly.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "store/pstr_format.h"

namespace psc::store {

class TraceFileReader;

// One chunk column (plaintexts, ciphertexts, then each channel).
struct DatasetColumnSummary {
  std::string name;              // "plaintext", "ciphertext" or FourCC
  std::size_t chunks_coded = 0;  // chunks stored with a non-identity codec
  std::uint64_t raw_bytes = 0;
  std::uint64_t stored_bytes = 0;

  // raw/stored; 1.0 for identity columns and empty files.
  double ratio() const noexcept {
    return stored_bytes == 0 ? 1.0
                             : static_cast<double>(raw_bytes) /
                                   static_cast<double>(stored_bytes);
  }
};

struct DatasetSummary {
  std::string path;
  std::uint16_t format_version = format_version_v1;
  std::uint64_t trace_count = 0;
  std::uint64_t file_bytes = 0;
  std::size_t chunk_count = 0;
  std::size_t chunk_capacity = 0;
  std::vector<std::string> channels;  // FourCC strings, in column order
  Metadata metadata;
  std::vector<DatasetColumnSummary> columns;

  std::uint64_t raw_bytes_total() const noexcept;
  std::uint64_t stored_bytes_total() const noexcept;
  double ratio() const noexcept;
};

// Walks the reader's index and column directories; never touches chunk
// payload bytes.
DatasetSummary summarize_dataset(TraceFileReader& reader);

// Human-readable dump, one `prefix`-indented line per fact — the exact
// output both `trace_convert info` and `psc_busctl datasets` print.
void print_dataset_summary(std::ostream& os, const DatasetSummary& summary,
                           const std::string& prefix = "");

}  // namespace psc::store
