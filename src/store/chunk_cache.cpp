#include "store/chunk_cache.h"

#include <utility>

namespace psc::store {

ChunkCache::Payload ChunkCache::get_or_decode(
    std::uint64_t dataset, std::size_t chunk,
    const std::function<void(std::vector<std::byte>&)>& decode) {
  const Key key{dataset, chunk};
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      break;  // nobody has it: this caller becomes the decoder
    }
    if (it->second.bytes != nullptr) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.bytes;
    }
    // Another caller is decoding this chunk right now. Waiting counts as
    // a hit: the decode it saves is the whole point of sharing.
    ready_cv_.wait(lock);
  }

  // Reserve the key with a placeholder so concurrent callers wait
  // instead of decoding the same chunk in parallel, then decode outside
  // the lock.
  entries_.emplace(key, Entry{});
  ++misses_;
  lock.unlock();

  auto bytes = std::make_shared<std::vector<std::byte>>();
  try {
    decode(*bytes);
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    ready_cv_.notify_all();
    throw;
  }

  Payload payload(std::move(bytes));
  lock.lock();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // drop_dataset may have erased the placeholder mid-decode; only a
    // still-reserved key publishes.
    it->second.bytes = payload;
    lru_.push_front(key);
    it->second.lru = lru_.begin();
    resident_ += payload->size();
    evict_locked();
  }
  ready_cv_.notify_all();
  return payload;
}

void ChunkCache::drop_dataset(std::uint64_t dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.dataset != dataset) {
      ++it;
      continue;
    }
    if (it->second.bytes != nullptr) {
      resident_ -= it->second.bytes->size();
      lru_.erase(it->second.lru);
    }
    // In-flight placeholders are erased too: the decoder notices at
    // publish time and returns its private copy without caching it.
    it = entries_.erase(it);
  }
  ready_cv_.notify_all();
}

ChunkCache::Stats ChunkCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.resident_bytes = resident_;
  s.entries = entries_.size();
  return s;
}

void ChunkCache::evict_locked() {
  // Placeholders are not on the LRU list, so an in-flight decode can
  // never be evicted. An entry larger than the whole budget evicts
  // itself immediately — its caller still holds the pin, so the bytes
  // survive exactly as long as they are used.
  while (resident_ > capacity_ && !lru_.empty()) {
    const Key victim = lru_.back();
    auto it = entries_.find(victim);
    resident_ -= it->second.bytes->size();
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace psc::store
