// On-disk layout of the PSTR trace store — the persistent form of the
// columnar core::TraceBatch, shared by TraceFileWriter and
// TraceFileReader. All integers are little-endian; values are IEEE-754
// doubles. The file is a header, a run of fixed-capacity chunks, a chunk
// index and a fixed-size footer:
//
//   +------------------------------------------------------------------+
//   | header   "PSTR" u16 version u16 flags u32 header_size            |
//   |          u32 block_bytes(16) u32 channel_count u32 chunk_capacity|
//   |          u64 reserved; channel FourCC codes; metadata pairs;     |
//   |          zero padding to header_size (8-byte aligned)            |
//   +------------------------------------------------------------------+
//   | chunk 0  "CHNK" u32 rows u32 payload_crc32 u32 reserved          |
//   |          payload: plaintexts  rows*16 B  (contiguous column)     |
//   |                   ciphertexts rows*16 B                          |
//   |                   channel 0   rows*8 B doubles                   |
//   |                   ...                                            |
//   | chunk 1  ... (every chunk holds chunk_capacity rows except a     |
//   |          shorter final chunk)                                    |
//   +------------------------------------------------------------------+
//
// Version 2 keeps the header, index and footer byte-identical and adds
// per-column chunk compression. A v2 chunk carries a column directory
// between the chunk header and the column blocks:
//
//   | chunk    "CHNK" u32 rows u32 payload_crc32 u32 reserved          |
//   |          directory, one entry per column (pt, ct, channels...):  |
//   |            u32 codec u32 reserved u64 raw_bytes u64 stored_bytes |
//   |          column blocks, each padded to an 8-byte boundary        |
//
// rows and payload_crc32 still describe the *decoded* v1-layout payload
// — the CRC is computed before compression and checked after decode, so
// corruption inside a compressed block is as loud as in v1. A chunk
// whose columns are all identity stores exactly the v1 payload bytes
// after the directory, which lets a mapped reader serve it zero-copy.
//   | index    "CIDX" u32 reserved u64 chunk_count                     |
//   |          per chunk: u64 offset u64 row_begin u32 rows u32 crc32  |
//   |          u32 index_crc32 (over the entries) u32 reserved         |
//   +------------------------------------------------------------------+
//   | footer   u64 index_offset u64 trace_count u64 chunk_count        |
//   | (32 B)   u32 footer_crc32 (over the 24 bytes above) "RTSP"       |
//   +------------------------------------------------------------------+
//
// Every section start is 8-byte aligned (header_size is padded, chunk
// sizes are multiples of 8), so a memory-mapped reader can expose chunk
// columns as aligned spans without copying. The footer is fixed-size and
// last so a reader locates the index in O(1) from the end of the file;
// per-chunk CRCs make byte-level corruption a loud error instead of a
// silently wrong correlation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace psc::store {

// Every store failure — unopenable paths, malformed or truncated files,
// CRC mismatches, misuse of a finalized writer — throws this, with a
// message naming the file and the specific violation.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr char file_magic[4] = {'P', 'S', 'T', 'R'};
inline constexpr char chunk_magic[4] = {'C', 'H', 'N', 'K'};
inline constexpr char index_magic[4] = {'C', 'I', 'D', 'X'};
inline constexpr char footer_magic[4] = {'R', 'T', 'S', 'P'};

// Version 1: identity chunk payloads. Version 2: per-column codecs. The
// writer emits 1 unless a channel codec is configured; the reader
// accepts both with no migration step.
inline constexpr std::uint16_t format_version_v1 = 1;
inline constexpr std::uint16_t format_version_v2 = 2;

// Per-column codec of a v2 chunk directory entry.
enum class ColumnCodec : std::uint32_t {
  identity = 0,       // raw column bytes, stored_bytes == raw_bytes
  delta_bitpack = 1,  // util/codec.h (quantized sensor double columns)
};

// Plaintext/ciphertext bytes per trace (an AES-128 block).
inline constexpr std::size_t block_bytes = 16;

inline constexpr std::size_t fixed_header_bytes = 32;
inline constexpr std::size_t chunk_header_bytes = 16;
inline constexpr std::size_t index_entry_bytes = 24;
inline constexpr std::size_t footer_bytes = 32;

// Free-form header metadata ("device" = "MacBook Air M2", ...).
using Metadata = std::vector<std::pair<std::string, std::string>>;

// One entry of the footer-located chunk index.
struct ChunkIndexEntry {
  std::uint64_t offset = 0;     // absolute file offset of the chunk header
  std::uint64_t row_begin = 0;  // global index of the chunk's first trace
  std::uint32_t rows = 0;
  std::uint32_t crc32 = 0;  // CRC of the chunk payload (also in the chunk)
};

// Bytes of one v1 chunk on disk, header included. Its payload size
// (chunk_bytes - chunk_header_bytes) is also the *decoded* payload size
// of a v2 chunk — codecs change the stored bytes, never the layout a
// ChunkView exposes.
inline constexpr std::size_t chunk_bytes(std::size_t rows,
                                         std::size_t channels) noexcept {
  return chunk_header_bytes + rows * (2 * block_bytes + 8 * channels);
}

// Columns of one chunk: plaintexts, ciphertexts, then the channels.
inline constexpr std::size_t chunk_column_count(std::size_t channels) noexcept {
  return 2 + channels;
}

// v2 column directory entry: u32 codec, u32 reserved, u64 raw_bytes,
// u64 stored_bytes.
inline constexpr std::size_t column_entry_bytes = 24;

// Column blocks start 8-aligned (the directory size is a multiple of 8)
// and are padded to 8 bytes, so decoded and all-identity mapped columns
// alike serve as aligned double spans.
inline constexpr std::size_t pad8(std::size_t n) noexcept {
  return (n + 7) & ~std::size_t{7};
}

// ---------- little-endian scalar encode/decode ----------

inline void put_u16(std::byte* p, std::uint16_t v) noexcept {
  for (int i = 0; i < 2; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}
inline void put_u32(std::byte* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}
inline void put_u64(std::byte* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  }
}

inline std::uint16_t get_u16(const std::byte* p) noexcept {
  std::uint16_t v = 0;
  for (int i = 1; i >= 0; --i) {
    v = static_cast<std::uint16_t>((v << 8) |
                                   static_cast<std::uint16_t>(p[i]));
  }
  return v;
}
inline std::uint32_t get_u32(const std::byte* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint32_t>(p[i]);
  }
  return v;
}
inline std::uint64_t get_u64(const std::byte* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint64_t>(p[i]);
  }
  return v;
}

inline bool magic_matches(const std::byte* p, const char (&magic)[4]) noexcept {
  return std::memcmp(p, magic, 4) == 0;
}

}  // namespace psc::store
