#include "store/file_trace_source.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/parallel.h"

namespace psc::store {

FileTraceSource::FileTraceSource(const std::string& path, ReaderMode mode)
    : FileTraceSource(std::make_unique<TraceFileReader>(path, mode), 0,
                      std::numeric_limits<std::size_t>::max()) {}

FileTraceSource::FileTraceSource(const std::string& path, std::size_t begin,
                                 std::size_t count, ReaderMode mode)
    : FileTraceSource(std::make_unique<TraceFileReader>(path, mode), begin,
                      count) {}

FileTraceSource::FileTraceSource(std::unique_ptr<TraceFileReader> reader)
    : FileTraceSource(std::move(reader), 0,
                      std::numeric_limits<std::size_t>::max()) {}

FileTraceSource::FileTraceSource(std::unique_ptr<TraceFileReader> reader,
                                 std::size_t begin, std::size_t count)
    : reader_(std::move(reader)) {
  if (!reader_) {
    throw std::invalid_argument("FileTraceSource: null reader");
  }
  row_scratch_.reset_channels(reader_->channels().size());
  row_scratch_.reserve(1);
  pos_ = std::min(begin, reader_->trace_count());
  end_ = count > reader_->trace_count() - pos_ ? reader_->trace_count()
                                               : pos_ + count;
}

core::TraceRecord FileTraceSource::collect(const aes::Block& /*plaintext*/) {
  if (pos_ >= end_) {
    throw std::out_of_range("FileTraceSource: file exhausted");
  }
  row_scratch_.clear();
  reader_->read_rows(pos_++, 1, row_scratch_);
  core::TraceRecord record;
  record.plaintext = row_scratch_.plaintexts()[0];
  record.ciphertext = row_scratch_.ciphertexts()[0];
  record.values.resize(row_scratch_.channels());
  for (std::size_t c = 0; c < row_scratch_.channels(); ++c) {
    record.values[c] = row_scratch_.column(c)[0];
  }
  return record;
}

void FileTraceSource::collect_batch(core::TraceBatch& batch) {
  if (batch.channels() != reader_->channels().size()) {
    throw std::invalid_argument(
        "FileTraceSource::collect_batch: batch channel count mismatch");
  }
  const std::size_t n = batch.size();
  if (n > end_ - pos_) {
    throw std::out_of_range("FileTraceSource: file exhausted");
  }
  batch.clear();
  reader_->read_rows(pos_, n, batch);
  pos_ += n;
}

std::pair<std::size_t, std::size_t> shard_row_range(
    const TraceFileReader& reader, std::size_t shards, std::size_t s) {
  const std::size_t chunks = reader.chunk_count();
  const std::size_t first = core::shard_begin(chunks, shards, s);
  const std::size_t count = core::shard_size(chunks, shards, s);
  if (count == 0) {
    return {reader.trace_count(), 0};
  }
  const std::size_t row_begin = reader.chunk_row_begin(first);
  const std::size_t last = first + count - 1;
  const std::size_t row_end =
      reader.chunk_row_begin(last) + reader.chunk_rows(last);
  return {row_begin, row_end - row_begin};
}

}  // namespace psc::store
