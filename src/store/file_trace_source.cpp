#include "store/file_trace_source.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "core/parallel.h"
#include "util/env.h"

namespace psc::store {

namespace {

bool resolve_prefetch(PrefetchMode mode) {
  switch (mode) {
    case PrefetchMode::on:
      return true;
    case PrefetchMode::off:
      return false;
    case PrefetchMode::automatic:
      break;
  }
  return util::env_flag("PSC_STORE_PREFETCH", true);
}

}  // namespace

FileTraceSource::FileTraceSource(const std::string& path, ReaderMode mode)
    : FileTraceSource(path, FileSourceOptions{.mode = mode}) {}

FileTraceSource::FileTraceSource(const std::string& path,
                                 const FileSourceOptions& options)
    : FileTraceSource(std::make_unique<TraceFileReader>(path, options.mode),
                      0, std::numeric_limits<std::size_t>::max(), options) {}

FileTraceSource::FileTraceSource(const std::string& path, std::size_t begin,
                                 std::size_t count, ReaderMode mode)
    : FileTraceSource(path, begin, count, FileSourceOptions{.mode = mode}) {}

FileTraceSource::FileTraceSource(const std::string& path, std::size_t begin,
                                 std::size_t count,
                                 const FileSourceOptions& options)
    : FileTraceSource(std::make_unique<TraceFileReader>(path, options.mode),
                      begin, count, options) {}

FileTraceSource::FileTraceSource(std::unique_ptr<TraceFileReader> reader)
    : FileTraceSource(std::move(reader), 0,
                      std::numeric_limits<std::size_t>::max()) {}

FileTraceSource::FileTraceSource(std::unique_ptr<TraceFileReader> reader,
                                 std::size_t begin, std::size_t count,
                                 const FileSourceOptions& options)
    : reader_(std::move(reader)), prefetch_(resolve_prefetch(options.prefetch)) {
  if (!reader_) {
    throw std::invalid_argument("FileTraceSource: null reader");
  }
  row_scratch_.reset_channels(reader_->channels().size());
  row_scratch_.reserve(1);
  pos_ = std::min(begin, reader_->trace_count());
  end_ = count > reader_->trace_count() - pos_ ? reader_->trace_count()
                                               : pos_ + count;
}

const ChunkView& FileTraceSource::current_view(std::size_t row) {
  if (!prefetcher_) {
    // Built lazily on the first read so a source that is constructed but
    // never consumed posts no decode work; [first, last) is the chunk
    // range covering this source's rows.
    const std::size_t first = reader_->chunk_containing(row);
    const std::size_t last = reader_->chunk_containing(end_ - 1) + 1;
    prefetcher_.emplace(*reader_, first, last);
  }
  while (!have_view_ || row < view_.row_begin() ||
         row >= view_.row_begin() + view_.rows()) {
    std::optional<ChunkView> next = prefetcher_->next_chunk();
    if (!next.has_value()) {
      // Unreachable when the bounds checks in collect()/collect_batch()
      // hold; guard so a logic bug cannot become an infinite loop.
      throw std::out_of_range("FileTraceSource: prefetch range exhausted");
    }
    view_ = *next;
    have_view_ = true;
  }
  return view_;
}

core::TraceRecord FileTraceSource::collect(const aes::Block& /*plaintext*/) {
  if (pos_ >= end_) {
    throw std::out_of_range("FileTraceSource: file exhausted");
  }
  row_scratch_.clear();
  if (prefetch_) {
    const ChunkView& view = current_view(pos_);
    view.append_to(row_scratch_, pos_ - view.row_begin(), 1);
    ++pos_;
  } else {
    reader_->read_rows(pos_++, 1, row_scratch_);
  }
  core::TraceRecord record;
  record.plaintext = row_scratch_.plaintexts()[0];
  record.ciphertext = row_scratch_.ciphertexts()[0];
  record.values.resize(row_scratch_.channels());
  for (std::size_t c = 0; c < row_scratch_.channels(); ++c) {
    record.values[c] = row_scratch_.column(c)[0];
  }
  return record;
}

void FileTraceSource::collect_batch(core::TraceBatch& batch) {
  if (batch.channels() != reader_->channels().size()) {
    throw std::invalid_argument(
        "FileTraceSource::collect_batch: batch channel count mismatch");
  }
  const std::size_t n = batch.size();
  if (n > end_ - pos_) {
    throw std::out_of_range("FileTraceSource: file exhausted");
  }
  batch.clear();
  if (!prefetch_) {
    reader_->read_rows(pos_, n, batch);
    pos_ += n;
    return;
  }
  std::size_t row = pos_;
  std::size_t left = n;
  while (left > 0) {
    const ChunkView& view = current_view(row);
    const std::size_t local = row - view.row_begin();
    const std::size_t take = std::min(left, view.rows() - local);
    view.append_to(batch, local, take);
    row += take;
    left -= take;
  }
  pos_ = row;
}

std::pair<std::size_t, std::size_t> shard_row_range(
    const TraceFileReader& reader, std::size_t shards, std::size_t s) {
  const std::size_t chunks = reader.chunk_count();
  const std::size_t first = core::shard_begin(chunks, shards, s);
  const std::size_t count = core::shard_size(chunks, shards, s);
  if (count == 0) {
    return {reader.trace_count(), 0};
  }
  const std::size_t row_begin = reader.chunk_row_begin(first);
  const std::size_t last = first + count - 1;
  const std::size_t row_end =
      reader.chunk_row_begin(last) + reader.chunk_rows(last);
  return {row_begin, row_end - row_begin};
}

}  // namespace psc::store
