#include "store/trace_file_writer.h"

#include <algorithm>
#include <cstring>

#include "util/codec.h"
#include "util/crc32.h"

namespace psc::store {

namespace {

// Serialized header: fixed fields, channel codes, metadata pairs, zero
// padding to an 8-byte boundary.
std::vector<std::byte> render_header(const TraceFileWriterConfig& config,
                                     std::uint16_t version) {
  std::size_t size = fixed_header_bytes + 4 * config.channels.size() + 4;
  for (const auto& [key, value] : config.metadata) {
    size += 8 + key.size() + value.size();
  }
  size = (size + 7) & ~std::size_t{7};

  std::vector<std::byte> header(size, std::byte{0});
  std::memcpy(header.data(), file_magic, 4);
  put_u16(header.data() + 4, version);
  put_u16(header.data() + 6, 0);  // flags
  put_u32(header.data() + 8, static_cast<std::uint32_t>(size));
  put_u32(header.data() + 12, static_cast<std::uint32_t>(block_bytes));
  put_u32(header.data() + 16,
          static_cast<std::uint32_t>(config.channels.size()));
  put_u32(header.data() + 20,
          static_cast<std::uint32_t>(config.chunk_capacity));
  put_u64(header.data() + 24, 0);  // reserved

  std::byte* p = header.data() + fixed_header_bytes;
  for (const util::FourCc channel : config.channels) {
    put_u32(p, channel.code());
    p += 4;
  }
  put_u32(p, static_cast<std::uint32_t>(config.metadata.size()));
  p += 4;
  for (const auto& [key, value] : config.metadata) {
    put_u32(p, static_cast<std::uint32_t>(key.size()));
    p += 4;
    std::memcpy(p, key.data(), key.size());
    p += key.size();
    put_u32(p, static_cast<std::uint32_t>(value.size()));
    p += 4;
    std::memcpy(p, value.data(), value.size());
    p += value.size();
  }
  return header;
}

// The staging batch's columns laid out back to back — the v1 chunk
// payload, and the decoded form a v2 chunk's CRC covers.
void serialize_payload(const psc::core::TraceBatch& staging,
                       std::byte* payload) {
  const std::size_t rows = staging.size();
  const std::size_t channels = staging.channels();
  std::memcpy(payload, staging.plaintexts().data(), rows * block_bytes);
  std::memcpy(payload + rows * block_bytes, staging.ciphertexts().data(),
              rows * block_bytes);
  std::byte* columns = payload + 2 * rows * block_bytes;
  for (std::size_t c = 0; c < channels; ++c) {
    std::memcpy(columns + c * rows * 8, staging.column(c).data(), rows * 8);
  }
}

}  // namespace

Metadata device_metadata(const std::string& device_name,
                         const std::string& os_version) {
  return {{"device", device_name}, {"os", os_version}};
}

std::vector<ColumnCodec> uniform_channel_codecs(std::size_t channels,
                                                ColumnCodec codec) {
  return std::vector<ColumnCodec>(channels, codec);
}

TraceFileWriter::TraceFileWriter(const std::string& path,
                                 TraceFileWriterConfig config)
    : config_(std::move(config)), path_(path) {
  if (config_.channels.empty()) {
    throw StoreError("TraceFileWriter: no channels configured");
  }
  if (config_.chunk_capacity == 0) {
    throw StoreError("TraceFileWriter: chunk capacity must be positive");
  }
  if (!config_.channel_codecs.empty() &&
      config_.channel_codecs.size() != config_.channels.size()) {
    throw StoreError(
        "TraceFileWriter: channel_codecs size must match channels");
  }
  for (const ColumnCodec codec : config_.channel_codecs) {
    if (codec != ColumnCodec::identity &&
        codec != ColumnCodec::delta_bitpack) {
      throw StoreError("TraceFileWriter: unknown channel codec");
    }
    v2_ = v2_ || codec != ColumnCodec::identity;
  }
  out_.open(path_, std::ios::binary | std::ios::trunc);
  if (!out_) {
    throw StoreError("TraceFileWriter: cannot create " + path_);
  }
  staging_.reset_channels(config_.channels.size());
  staging_.reserve(config_.chunk_capacity);
  if (v2_) {
    enc_cols_.resize(config_.channels.size());
  }

  const std::vector<std::byte> header =
      render_header(config_, format_version());
  write_bytes(header.data(), header.size());
}

TraceFileWriter::~TraceFileWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructors must not throw; callers that care about durability call
    // finalize() explicitly and see the error there.
  }
}

void TraceFileWriter::write_bytes(const std::byte* data, std::size_t size) {
  out_.write(reinterpret_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) {
    throw StoreError("TraceFileWriter: write failed on " + path_);
  }
  file_offset_ += size;
}

void TraceFileWriter::append(const core::TraceBatch& batch) {
  if (finalized_) {
    throw StoreError("TraceFileWriter: append after finalize on " + path_);
  }
  if (batch.channels() != config_.channels.size()) {
    throw StoreError("TraceFileWriter: batch channel count mismatch");
  }
  std::size_t consumed = 0;
  while (consumed < batch.size()) {
    const std::size_t take =
        std::min(batch.size() - consumed,
                 config_.chunk_capacity - staging_.size());
    staging_.append(batch, consumed, take);
    consumed += take;
    rows_appended_ += take;
    if (staging_.size() == config_.chunk_capacity) {
      flush_chunk();
    }
  }
}

void TraceFileWriter::flush_chunk() {
  const std::size_t rows = staging_.size();
  if (rows == 0) {
    return;
  }
  const std::size_t channels = staging_.channels();

  if (!v2_) {
    scratch_.resize(chunk_bytes(rows, channels));
    std::byte* payload = scratch_.data() + chunk_header_bytes;
    serialize_payload(staging_, payload);
    const std::size_t payload_size = scratch_.size() - chunk_header_bytes;
    const std::uint32_t crc = util::crc32(payload, payload_size);

    std::memcpy(scratch_.data(), chunk_magic, 4);
    put_u32(scratch_.data() + 4, static_cast<std::uint32_t>(rows));
    put_u32(scratch_.data() + 8, crc);
    put_u32(scratch_.data() + 12, 0);  // reserved

    index_.push_back({.offset = file_offset_,
                      .row_begin = rows_flushed_,
                      .rows = static_cast<std::uint32_t>(rows),
                      .crc32 = crc});
    write_bytes(scratch_.data(), scratch_.size());
    rows_flushed_ += rows;
    staging_.clear();
    return;
  }

  // v2: CRC the decoded payload first (codec-independent), then encode
  // each channel column, falling back to identity per chunk when the
  // codec cannot represent the data bit-exactly or would not shrink it.
  const std::size_t payload_size =
      chunk_bytes(rows, channels) - chunk_header_bytes;
  payload_scratch_.resize(payload_size);
  serialize_payload(staging_, payload_scratch_.data());
  const std::uint32_t crc =
      util::crc32(payload_scratch_.data(), payload_size);

  const std::size_t columns = chunk_column_count(channels);
  const std::size_t dir_bytes = columns * column_entry_bytes;
  std::vector<ColumnCodec> codecs(columns, ColumnCodec::identity);
  std::vector<std::size_t> stored(columns);
  stored[0] = stored[1] = rows * block_bytes;
  std::size_t blocks_bytes = pad8(stored[0]) + pad8(stored[1]);
  for (std::size_t c = 0; c < channels; ++c) {
    const std::size_t raw = rows * sizeof(double);
    stored[2 + c] = raw;
    if (config_.channel_codecs[c] == ColumnCodec::delta_bitpack &&
        util::delta_bitpack_encode(staging_.column(c).data(), rows,
                                   enc_cols_[c])) {
      codecs[2 + c] = ColumnCodec::delta_bitpack;
      stored[2 + c] = enc_cols_[c].size();
    }
    channel_raw_bytes_ += raw;
    channel_stored_bytes_ += stored[2 + c];
    blocks_bytes += pad8(stored[2 + c]);
  }

  scratch_.assign(chunk_header_bytes + dir_bytes + blocks_bytes,
                  std::byte{0});
  std::memcpy(scratch_.data(), chunk_magic, 4);
  put_u32(scratch_.data() + 4, static_cast<std::uint32_t>(rows));
  put_u32(scratch_.data() + 8, crc);
  put_u32(scratch_.data() + 12, 0);  // reserved

  std::byte* dir = scratch_.data() + chunk_header_bytes;
  std::byte* block = dir + dir_bytes;
  const std::byte* raw_col = payload_scratch_.data();
  for (std::size_t col = 0; col < columns; ++col) {
    const std::size_t raw =
        col < 2 ? rows * block_bytes : rows * sizeof(double);
    std::byte* e = dir + col * column_entry_bytes;
    put_u32(e, static_cast<std::uint32_t>(codecs[col]));
    put_u32(e + 4, 0);  // reserved
    put_u64(e + 8, raw);
    put_u64(e + 16, stored[col]);
    if (codecs[col] == ColumnCodec::identity) {
      std::memcpy(block, raw_col, raw);
    } else {
      std::memcpy(block, enc_cols_[col - 2].data(), stored[col]);
    }
    block += pad8(stored[col]);
    raw_col += raw;
  }

  index_.push_back({.offset = file_offset_,
                    .row_begin = rows_flushed_,
                    .rows = static_cast<std::uint32_t>(rows),
                    .crc32 = crc});
  write_bytes(scratch_.data(), scratch_.size());
  rows_flushed_ += rows;
  staging_.clear();
}

void TraceFileWriter::finalize() {
  if (finalized_) {
    return;
  }
  flush_chunk();

  const std::uint64_t index_offset = file_offset_;
  scratch_.resize(16 + index_.size() * index_entry_bytes + 8);
  std::memcpy(scratch_.data(), index_magic, 4);
  put_u32(scratch_.data() + 4, 0);  // reserved
  put_u64(scratch_.data() + 8, index_.size());
  std::byte* entries = scratch_.data() + 16;
  for (std::size_t i = 0; i < index_.size(); ++i) {
    std::byte* e = entries + i * index_entry_bytes;
    put_u64(e, index_[i].offset);
    put_u64(e + 8, index_[i].row_begin);
    put_u32(e + 16, index_[i].rows);
    put_u32(e + 20, index_[i].crc32);
  }
  const std::size_t entries_size = index_.size() * index_entry_bytes;
  put_u32(entries + entries_size, util::crc32(entries, entries_size));
  put_u32(entries + entries_size + 4, 0);  // reserved
  write_bytes(scratch_.data(), scratch_.size());

  std::byte footer[footer_bytes];
  put_u64(footer, index_offset);
  put_u64(footer + 8, rows_flushed_);
  put_u64(footer + 16, index_.size());
  put_u32(footer + 24, util::crc32(footer, 24));
  std::memcpy(footer + 28, footer_magic, 4);
  write_bytes(footer, footer_bytes);

  out_.close();
  if (!out_) {
    throw StoreError("TraceFileWriter: close failed on " + path_);
  }
  // Only now is the file durable: a finalize that threw above stays
  // un-finalized, so a retry errors loudly instead of silently
  // succeeding on a footer-less file.
  finalized_ = true;
}

}  // namespace psc::store
