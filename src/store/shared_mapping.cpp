#include "store/shared_mapping.h"

#include <atomic>
#include <fstream>

#include "store/pstr_format.h"
#include "util/env.h"

#if defined(__unix__) || defined(__APPLE__)
#define PSC_SHARED_MAPPING_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#define PSC_SHARED_MAPPING_HAS_MMAP 0
#endif

namespace psc::store {

std::shared_ptr<const SharedMapping> SharedMapping::open(
    const std::string& path) {
  // shared_ptr with a custom-constructible target: the constructor is
  // private, so go through a local subclass-free allocation.
  static std::atomic<std::uint64_t> next_id{1};
  std::shared_ptr<SharedMapping> mapping(new SharedMapping());
  mapping->path_ = path;
  mapping->id_ = next_id.fetch_add(1, std::memory_order_relaxed);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError("PSTR " + path + ": cannot open file");
  }
  in.seekg(0, std::ios::end);
  const std::size_t size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  mapping->size_ = size;

#if PSC_SHARED_MAPPING_HAS_MMAP
  if (!util::env_flag("PSC_NO_MMAP") && size > 0) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        mapping->data_ = static_cast<const std::byte*>(map);
        mapping->mapped_ = true;
        return mapping;
      }
    }
  }
#endif

  // Heap fallback: one shared copy of the file.
  mapping->heap_.resize(size);
  if (size > 0) {
    in.read(reinterpret_cast<char*>(mapping->heap_.data()),
            static_cast<std::streamsize>(size));
    if (in.gcount() != static_cast<std::streamsize>(size)) {
      throw StoreError("PSTR " + path + ": short read loading file");
    }
  }
  mapping->data_ = mapping->heap_.data();
  return mapping;
}

SharedMapping::~SharedMapping() {
#if PSC_SHARED_MAPPING_HAS_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

}  // namespace psc::store
