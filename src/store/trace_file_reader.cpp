#include "store/trace_file_reader.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "store/chunk_cache.h"
#include "util/codec.h"
#include "util/crc32.h"
#include "util/env.h"

#if defined(__unix__) || defined(__APPLE__)
#define PSC_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#else
#define PSC_STORE_HAS_MMAP 0
#endif

namespace psc::store {

std::span<const double> ChunkView::column(std::size_t c) const {
  if (c >= channels_) {
    throw std::out_of_range("ChunkView::column: bad channel index");
  }
  const std::byte* base =
      payload_ + 2 * rows_ * block_bytes + c * rows_ * sizeof(double);
  return {reinterpret_cast<const double*>(base), rows_};
}

void ChunkView::append_to(core::TraceBatch& batch, std::size_t begin,
                          std::size_t count) const {
  if (batch.channels() != channels_) {
    throw std::invalid_argument("ChunkView::append_to: channel mismatch");
  }
  if (begin > rows_ || count > rows_ - begin) {
    throw std::out_of_range("ChunkView::append_to: bad row range");
  }
  const std::size_t old = batch.size();
  batch.resize(old + count);
  const auto pts = plaintexts().subspan(begin, count);
  const auto cts = ciphertexts().subspan(begin, count);
  std::copy(pts.begin(), pts.end(), batch.plaintexts().begin() + old);
  std::copy(cts.begin(), cts.end(), batch.ciphertexts().begin() + old);
  for (std::size_t c = 0; c < channels_; ++c) {
    const auto values = column(c).subspan(begin, count);
    std::copy(values.begin(), values.end(), batch.column(c).begin() + old);
  }
}

void TraceFileReader::fail(const std::string& what) const {
  throw StoreError("PSTR " + path_ + ": " + what);
}

TraceFileReader::TraceFileReader(const std::string& path, ReaderMode mode)
    : path_(path) {
  // PSC_NO_MMAP forces the buffered-read fallback everywhere automatic
  // mode would map — the knob CI uses to run the whole suite down the
  // stream path (an explicit ReaderMode::mmap request still maps).
  if (mode == ReaderMode::automatic && util::env_flag("PSC_NO_MMAP")) {
    mode = ReaderMode::stream;
  }
  in_.open(path_, std::ios::binary);
  if (!in_) {
    fail("cannot open file");
  }
  in_.seekg(0, std::ios::end);
  file_bytes_ = static_cast<std::size_t>(in_.tellg());
  in_.seekg(0);

#if PSC_STORE_HAS_MMAP
  if (mode != ReaderMode::stream && file_bytes_ > 0) {
    const int fd = ::open(path_.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* map = ::mmap(nullptr, file_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        map_ = static_cast<const std::byte*>(map);
        map_size_ = file_bytes_;
      }
    }
  }
  if (mode == ReaderMode::mmap && map_ == nullptr) {
    fail("mmap failed");
  }
#else
  if (mode == ReaderMode::mmap) {
    fail("mmap unsupported on this platform");
  }
#endif

  // A throwing constructor skips the destructor, so the mapping made
  // above must be released by hand when validation rejects the file.
  try {
    validate_structure();
  } catch (...) {
    unmap();
    throw;
  }

  if (map_ != nullptr) {
    in_.close();
  }
}

TraceFileReader::TraceFileReader(std::shared_ptr<const SharedMapping> mapping)
    : path_(mapping != nullptr ? mapping->path() : std::string()) {
  if (mapping == nullptr) {
    throw std::invalid_argument("TraceFileReader: null SharedMapping");
  }
  // Borrowed bytes: both the mmap and the heap-fallback flavors of
  // SharedMapping present one contiguous buffer, so the reader always
  // takes its (zero-copy) mapped path; no stream state is opened.
  mapping_ = std::move(mapping);
  file_bytes_ = mapping_->size();
  map_ = mapping_->data();
  map_size_ = file_bytes_;
  validate_structure();
}

void TraceFileReader::validate_structure() {
  // Structural validation, cheapest check first so each failure mode gets
  // its own message: magic, version, gross size, header, footer, index.
  if (file_bytes_ < 4) {
    fail("truncated file (shorter than the magic)");
  }
  std::byte fixed[fixed_header_bytes];
  load_bytes(0, std::span(fixed, std::min(file_bytes_, fixed_header_bytes)));
  if (!magic_matches(fixed, file_magic)) {
    fail("bad magic (not a PSTR trace store)");
  }
  if (file_bytes_ < 8) {
    fail("truncated file (no version field)");
  }
  const std::uint16_t version = get_u16(fixed + 4);
  if (version != format_version_v1 && version != format_version_v2) {
    fail("unsupported format version " + std::to_string(version) +
         " (expected " + std::to_string(format_version_v1) + " or " +
         std::to_string(format_version_v2) + ")");
  }
  version_ = version;
  if (file_bytes_ < fixed_header_bytes + footer_bytes) {
    fail("truncated file (no room for header and footer)");
  }
  header_bytes_ = get_u32(fixed + 8);
  if (header_bytes_ < fixed_header_bytes + 4 || header_bytes_ % 8 != 0) {
    fail("corrupt header (bad header size)");
  }
  if (header_bytes_ > file_bytes_ - footer_bytes) {
    fail("truncated file (header overlaps footer)");
  }
  std::vector<std::byte> header(header_bytes_);
  load_bytes(0, header);
  parse_header(header.data(), header.size());
  parse_footer_and_index();
  crc_checked_.assign(index_.size(), 0);
}

void TraceFileReader::unmap() noexcept {
  if (mapping_ != nullptr) {
    // Borrowed bytes: the SharedMapping releases them when its last
    // reference drops, which may be long after this reader dies.
    map_ = nullptr;
    mapping_.reset();
    return;
  }
#if PSC_STORE_HAS_MMAP
  if (map_ != nullptr) {
    ::munmap(const_cast<std::byte*>(map_), map_size_);
    map_ = nullptr;
  }
#endif
}

TraceFileReader::~TraceFileReader() { unmap(); }

void TraceFileReader::load_bytes(std::uint64_t offset,
                                 std::span<std::byte> out) {
  if (offset > file_bytes_ || out.size() > file_bytes_ - offset) {
    fail("truncated file (read past end)");
  }
  if (map_ != nullptr) {
    std::memcpy(out.data(), map_ + offset, out.size());
    return;
  }
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(offset));
  in_.read(reinterpret_cast<char*>(out.data()),
           static_cast<std::streamsize>(out.size()));
  if (in_.gcount() != static_cast<std::streamsize>(out.size())) {
    fail("short read at offset " + std::to_string(offset));
  }
}

void TraceFileReader::parse_header(const std::byte* data, std::size_t size) {
  const std::uint32_t block = get_u32(data + 12);
  if (block != block_bytes) {
    fail("unsupported block size " + std::to_string(block));
  }
  const std::uint32_t channel_count = get_u32(data + 16);
  chunk_capacity_ = get_u32(data + 20);
  if (chunk_capacity_ == 0) {
    fail("corrupt header (zero chunk capacity)");
  }
  const std::byte* p = data + fixed_header_bytes;
  const std::byte* end = data + size;
  if (channel_count == 0 ||
      static_cast<std::size_t>(end - p) < 4 * channel_count + 4) {
    fail("corrupt header (channel list out of bounds)");
  }
  channels_.reserve(channel_count);
  for (std::uint32_t c = 0; c < channel_count; ++c) {
    channels_.push_back(util::FourCc(get_u32(p)));
    p += 4;
  }
  const std::uint32_t pairs = get_u32(p);
  p += 4;
  for (std::uint32_t i = 0; i < pairs; ++i) {
    std::string fields[2];
    for (std::string& field : fields) {
      if (end - p < 4) {
        fail("corrupt header (metadata out of bounds)");
      }
      const std::uint32_t len = get_u32(p);
      p += 4;
      if (static_cast<std::size_t>(end - p) < len) {
        fail("corrupt header (metadata out of bounds)");
      }
      field.assign(reinterpret_cast<const char*>(p), len);
      p += len;
    }
    metadata_.emplace_back(std::move(fields[0]), std::move(fields[1]));
  }
}

void TraceFileReader::parse_footer_and_index() {
  std::byte footer[footer_bytes];
  load_bytes(file_bytes_ - footer_bytes, footer);
  if (!magic_matches(footer + 28, footer_magic) ||
      util::crc32(footer, 24) != get_u32(footer + 24)) {
    fail("missing or corrupt footer (file truncated?)");
  }
  const std::uint64_t index_offset = get_u64(footer);
  index_offset_ = index_offset;
  trace_count_ = get_u64(footer + 8);
  const std::uint64_t chunks = get_u64(footer + 16);

  // Counts and offsets below come from the file, so every bounds test is
  // in division/subtraction form: a crafted near-UINT64_MAX value must
  // fail here, not wrap the arithmetic past the check.
  const std::uint64_t avail = file_bytes_ - header_bytes_ - footer_bytes;
  if (chunks > avail / index_entry_bytes) {
    fail("corrupt footer (chunk count exceeds file size)");
  }
  const std::uint64_t index_size = 16 + chunks * index_entry_bytes + 8;
  if (index_size > avail || index_offset < header_bytes_ ||
      index_offset != file_bytes_ - footer_bytes - index_size) {
    fail("corrupt footer (index bounds)");
  }
  std::vector<std::byte> raw(index_size);
  load_bytes(index_offset, raw);
  if (!magic_matches(raw.data(), index_magic) ||
      get_u64(raw.data() + 8) != chunks) {
    fail("corrupt chunk index (bad index header)");
  }
  const std::byte* entries = raw.data() + 16;
  const std::size_t entries_size = chunks * index_entry_bytes;
  if (util::crc32(entries, entries_size) !=
      get_u32(entries + entries_size)) {
    fail("corrupt chunk index (CRC mismatch)");
  }

  // v1 chunks have a fixed rows->bytes mapping, so the index can bound
  // rows exactly. A v2 chunk's size depends on its codecs; here we only
  // require room for the chunk header and column directory — per-column
  // block extents are validated against index_offset_ when the chunk is
  // opened (parse_v2_directory).
  const std::uint64_t row_bytes = 2 * block_bytes + 8 * channels_.size();
  const std::uint64_t min_chunk =
      version_ >= format_version_v2
          ? chunk_header_bytes +
                chunk_column_count(channels_.size()) * column_entry_bytes
          : chunk_header_bytes;
  index_.reserve(chunks);
  std::uint64_t expected_row = 0;
  for (std::uint64_t i = 0; i < chunks; ++i) {
    const std::byte* e = entries + i * index_entry_bytes;
    ChunkIndexEntry entry{.offset = get_u64(e),
                          .row_begin = get_u64(e + 8),
                          .rows = get_u32(e + 16),
                          .crc32 = get_u32(e + 20)};
    const bool in_bounds =
        entry.offset >= header_bytes_ && entry.offset <= index_offset &&
        index_offset - entry.offset >= min_chunk &&
        (version_ >= format_version_v2 ||
         entry.rows <=
             (index_offset - entry.offset - chunk_header_bytes) / row_bytes);
    if (entry.rows == 0 || entry.rows > chunk_capacity_ ||
        entry.row_begin != expected_row || !in_bounds) {
      fail("corrupt chunk index (entry " + std::to_string(i) +
           " out of bounds)");
    }
    expected_row += entry.rows;
    index_.push_back(entry);
  }
  if (expected_row != trace_count_) {
    fail("corrupt chunk index (row total does not match footer)");
  }
}

std::size_t TraceFileReader::chunk_containing(std::size_t row) const {
  if (row >= trace_count_) {
    throw std::out_of_range("TraceFileReader::chunk_containing: bad row");
  }
  const auto it = std::upper_bound(
      index_.begin(), index_.end(), row,
      [](std::size_t r, const ChunkIndexEntry& e) { return r < e.row_begin; });
  return static_cast<std::size_t>(it - index_.begin()) - 1;
}

const std::byte* TraceFileReader::chunk_base(const ChunkIndexEntry& entry,
                                             std::size_t i) {
  const std::size_t size = chunk_bytes(entry.rows, channels_.size());
  if (map_ != nullptr) {
    const std::byte* base = map_ + entry.offset;
    // The format 8-aligns chunks, so the mapped payload serves as aligned
    // double columns directly; a corrupt index offset falls back to the
    // copying path rather than a misaligned load.
    if (reinterpret_cast<std::uintptr_t>(base + chunk_header_bytes) %
            alignof(double) ==
        0) {
      return base;
    }
  }
  if (loaded_chunk_ != i) {
    scratch_.resize(size);
    load_bytes(entry.offset, scratch_);
    loaded_chunk_ = i;
    crc_checked_[i] = 0;  // fresh bytes: re-verify below
  }
  return scratch_.data();
}

ChunkView TraceFileReader::make_view(const std::byte* payload,
                                     const ChunkIndexEntry& entry) {
  ChunkView view;
  view.payload_ = payload;
  view.rows_ = entry.rows;
  view.row_begin_ = entry.row_begin;
  view.channels_ = channels_.size();
  return view;
}

ChunkView TraceFileReader::chunk(std::size_t i) {
  if (version_ >= format_version_v2) {
    return chunk_v2(i);
  }
  const ChunkIndexEntry& entry = index_.at(i);
  const std::byte* base = chunk_base(entry, i);

  if (!magic_matches(base, chunk_magic)) {
    fail("corrupt chunk " + std::to_string(i) + " (bad magic)");
  }
  if (get_u32(base + 4) != entry.rows || get_u32(base + 8) != entry.crc32) {
    fail("corrupt chunk " + std::to_string(i) +
         " (header disagrees with index)");
  }
  if (!crc_checked_[i]) {
    const std::size_t payload_size =
        chunk_bytes(entry.rows, channels_.size()) - chunk_header_bytes;
    if (util::crc32(base + chunk_header_bytes, payload_size) != entry.crc32) {
      fail("chunk " + std::to_string(i) + " payload CRC mismatch");
    }
    crc_checked_[i] = 1;
  }
  return make_view(base + chunk_header_bytes, entry);
}

// v1 chunk into caller-owned storage: zero-copy from an aligned mapping,
// else the whole chunk lands in `storage` (validated + CRC-checked).
ChunkView TraceFileReader::chunk_v1_into(std::size_t i,
                                         std::vector<std::byte>& storage) {
  const ChunkIndexEntry& entry = index_.at(i);
  const std::size_t size = chunk_bytes(entry.rows, channels_.size());
  const std::byte* base = nullptr;
  bool fresh = false;
  if (map_ != nullptr) {
    const std::byte* mapped = map_ + entry.offset;
    if (reinterpret_cast<std::uintptr_t>(mapped + chunk_header_bytes) %
            alignof(double) ==
        0) {
      base = mapped;
    }
  }
  if (base == nullptr) {
    storage.resize(size);
    load_bytes(entry.offset, storage);
    base = storage.data();
    fresh = true;  // private bytes: always verify this copy
  }
  if (!magic_matches(base, chunk_magic)) {
    fail("corrupt chunk " + std::to_string(i) + " (bad magic)");
  }
  if (get_u32(base + 4) != entry.rows || get_u32(base + 8) != entry.crc32) {
    fail("corrupt chunk " + std::to_string(i) +
         " (header disagrees with index)");
  }
  if (fresh || !crc_checked_[i]) {
    if (util::crc32(base + chunk_header_bytes, size - chunk_header_bytes) !=
        entry.crc32) {
      fail("chunk " + std::to_string(i) + " payload CRC mismatch");
    }
    if (!fresh) {
      crc_checked_[i] = 1;
    }
  }
  return make_view(base + chunk_header_bytes, entry);
}

bool TraceFileReader::load_v2_directory(std::size_t i) {
  const ChunkIndexEntry& entry = index_.at(i);
  const std::size_t columns = chunk_column_count(channels_.size());
  const std::size_t dir_bytes = columns * column_entry_bytes;

  const std::byte* head = nullptr;
  if (map_ != nullptr) {
    head = map_ + entry.offset;
  } else {
    dir_scratch_.resize(chunk_header_bytes + dir_bytes);
    load_bytes(entry.offset, dir_scratch_);
    head = dir_scratch_.data();
  }
  if (!magic_matches(head, chunk_magic)) {
    fail("corrupt chunk " + std::to_string(i) + " (bad magic)");
  }
  if (get_u32(head + 4) != entry.rows || get_u32(head + 8) != entry.crc32) {
    fail("corrupt chunk " + std::to_string(i) +
         " (header disagrees with index)");
  }

  // Bytes this chunk may occupy before the index; parse_footer_and_index
  // already guaranteed header + directory fit, so the subtraction below
  // cannot wrap. Every stored size from the directory is tested against
  // the remaining budget in subtraction form.
  const std::uint64_t budget =
      index_offset_ - entry.offset - chunk_header_bytes - dir_bytes;
  dir_.resize(columns);
  std::uint64_t block_off = chunk_header_bytes + dir_bytes;
  std::uint64_t used = 0;
  bool all_identity = true;
  for (std::size_t col = 0; col < columns; ++col) {
    const std::byte* e = head + chunk_header_bytes + col * column_entry_bytes;
    const std::uint32_t codec_raw = get_u32(e);
    ColumnBlock& block = dir_[col];
    block.raw_bytes = get_u64(e + 8);
    block.stored_bytes = get_u64(e + 16);
    block.offset = block_off + used;
    const std::uint64_t expected_raw = col < 2
                                           ? entry.rows * std::uint64_t{16}
                                           : entry.rows * std::uint64_t{8};
    if (block.raw_bytes != expected_raw) {
      fail("corrupt chunk " + std::to_string(i) + " (column " +
           std::to_string(col) + " raw size mismatch)");
    }
    if (codec_raw == static_cast<std::uint32_t>(ColumnCodec::identity)) {
      block.codec = ColumnCodec::identity;
      if (block.stored_bytes != block.raw_bytes) {
        fail("corrupt chunk " + std::to_string(i) + " (column " +
             std::to_string(col) + " identity size mismatch)");
      }
    } else if (codec_raw ==
               static_cast<std::uint32_t>(ColumnCodec::delta_bitpack)) {
      if (col < 2) {
        fail("corrupt chunk " + std::to_string(i) +
             " (codec on a block column)");
      }
      block.codec = ColumnCodec::delta_bitpack;
      all_identity = false;
    } else {
      fail("corrupt chunk " + std::to_string(i) + " (unknown codec " +
           std::to_string(codec_raw) + " in column " + std::to_string(col) +
           ")");
    }
    if (used > budget || block.stored_bytes > budget - used) {
      fail("corrupt chunk " + std::to_string(i) + " (column " +
           std::to_string(col) + " block out of bounds)");
    }
    const std::uint64_t padded = pad8(block.stored_bytes);
    if (padded > budget - used) {
      fail("corrupt chunk " + std::to_string(i) + " (column " +
           std::to_string(col) + " block padding out of bounds)");
    }
    used += padded;
  }
  return all_identity;
}

bool TraceFileReader::parse_v2_directory(std::size_t i,
                                         const std::byte*& payload) {
  const bool all_identity = load_v2_directory(i);
  const ChunkIndexEntry& entry = index_.at(i);
  const std::size_t dir_bytes =
      chunk_column_count(channels_.size()) * column_entry_bytes;

  // An all-identity mapped chunk stores exactly the v1 payload bytes
  // after the directory: serve it zero-copy when aligned, CRC-checking
  // the mapped bytes once.
  if (all_identity && map_ != nullptr) {
    const std::byte* mapped = map_ + entry.offset + chunk_header_bytes +
                              dir_bytes;
    if (reinterpret_cast<std::uintptr_t>(mapped) % alignof(double) == 0) {
      if (!crc_checked_[i]) {
        const std::size_t payload_size =
            chunk_bytes(entry.rows, channels_.size()) - chunk_header_bytes;
        if (util::crc32(mapped, payload_size) != entry.crc32) {
          fail("chunk " + std::to_string(i) + " payload CRC mismatch");
        }
        crc_checked_[i] = 1;
      }
      payload = mapped;
      return true;
    }
  }
  return false;
}

void TraceFileReader::decode_v2_chunk(std::size_t i,
                                      std::vector<std::byte>& dest) {
  const ChunkIndexEntry& entry = index_.at(i);
  const std::size_t rows = entry.rows;
  const std::size_t payload_size =
      chunk_bytes(rows, channels_.size()) - chunk_header_bytes;
  dest.resize(payload_size);

  std::uint64_t raw_off = 0;
  for (std::size_t col = 0; col < dir_.size(); ++col) {
    const ColumnBlock& block = dir_[col];
    const std::byte* src;
    if (map_ != nullptr) {
      src = map_ + entry.offset + block.offset;
    } else {
      comp_scratch_.resize(block.stored_bytes);
      load_bytes(entry.offset + block.offset, comp_scratch_);
      src = comp_scratch_.data();
    }
    std::byte* out = dest.data() + raw_off;
    if (block.codec == ColumnCodec::identity) {
      std::memcpy(out, src, block.raw_bytes);
    } else if (!util::delta_bitpack_decode(
                   src, block.stored_bytes,
                   reinterpret_cast<double*>(out), rows)) {
      fail("chunk " + std::to_string(i) + " column " + std::to_string(col) +
           ": corrupt compressed block");
    }
    raw_off += block.raw_bytes;
  }
  // The CRC was computed over the decoded payload before compression, so
  // a bit flip anywhere in a compressed block that survives decoding is
  // still caught here, on the bytes the analysis will actually read.
  if (util::crc32(dest.data(), payload_size) != entry.crc32) {
    fail("chunk " + std::to_string(i) + " payload CRC mismatch");
  }
}

void TraceFileReader::set_chunk_cache(std::shared_ptr<ChunkCache> cache) {
  if (mapping_ == nullptr) {
    throw std::logic_error(
        "TraceFileReader::set_chunk_cache: reader does not borrow a "
        "SharedMapping (no stable dataset id to key the cache by)");
  }
  chunk_cache_ = std::move(cache);
  dataset_id_ = mapping_->id();
  cache_hold_.reset();
}

std::shared_ptr<const std::vector<std::byte>> TraceFileReader::cached_chunk(
    std::size_t i) {
  // The decode callback runs on this reader (dir_ is already loaded for
  // chunk i) and only for the one caller that misses; concurrent readers
  // of the same chunk wait inside the cache and share the result.
  return chunk_cache_->get_or_decode(
      dataset_id_, i,
      [this, i](std::vector<std::byte>& dest) { decode_v2_chunk(i, dest); });
}

ChunkView TraceFileReader::chunk_v2(std::size_t i) {
  const std::byte* payload = nullptr;
  if (parse_v2_directory(i, payload)) {
    return make_view(payload, index_[i]);
  }
  if (chunk_cache_ != nullptr) {
    cache_hold_ = cached_chunk(i);
    return make_view(cache_hold_->data(), index_[i]);
  }
  if (loaded_chunk_ != i) {
    decode_v2_chunk(i, decode_);
    loaded_chunk_ = i;
  }
  return make_view(decode_.data(), index_[i]);
}

ChunkView TraceFileReader::chunk_v2_into(std::size_t i, ChunkBuffer& buf) {
  const std::byte* payload = nullptr;
  if (parse_v2_directory(i, payload)) {
    buf.cached.reset();
    return make_view(payload, index_.at(i));
  }
  if (chunk_cache_ != nullptr) {
    buf.cached = cached_chunk(i);
    return make_view(buf.cached->data(), index_.at(i));
  }
  buf.cached.reset();
  decode_v2_chunk(i, buf.bytes);
  return make_view(buf.bytes.data(), index_.at(i));
}

ChunkView TraceFileReader::read_chunk_into(std::size_t i, ChunkBuffer& buf) {
  if (version_ >= format_version_v2) {
    return chunk_v2_into(i, buf);
  }
  buf.cached.reset();
  ChunkView view = chunk_v1_into(i, buf.bytes);
  return view;
}

std::vector<TraceFileReader::ColumnStats> TraceFileReader::column_stats() {
  const std::size_t columns = chunk_column_count(channels_.size());
  std::vector<ColumnStats> stats(columns);
  stats[0].name = "plaintext";
  stats[1].name = "ciphertext";
  for (std::size_t c = 0; c < channels_.size(); ++c) {
    stats[2 + c].name = channels_[c].str();
  }
  for (std::size_t i = 0; i < index_.size(); ++i) {
    const std::uint64_t rows = index_[i].rows;
    if (version_ < format_version_v2) {
      // v1 columns are always identity with a fixed rows->bytes mapping.
      for (std::size_t col = 0; col < columns; ++col) {
        const std::uint64_t bytes =
            rows * (col < 2 ? std::uint64_t{block_bytes} : std::uint64_t{8});
        stats[col].raw_bytes += bytes;
        stats[col].stored_bytes += bytes;
      }
      continue;
    }
    load_v2_directory(i);
    for (std::size_t col = 0; col < columns; ++col) {
      stats[col].raw_bytes += dir_[col].raw_bytes;
      stats[col].stored_bytes += dir_[col].stored_bytes;
      if (dir_[col].codec != ColumnCodec::identity) {
        ++stats[col].chunks_coded;
      }
    }
  }
  return stats;
}

void TraceFileReader::read_rows(std::size_t begin, std::size_t count,
                                core::TraceBatch& batch) {
  if (begin > trace_count_ || count > trace_count_ - begin) {
    throw std::out_of_range("TraceFileReader::read_rows: bad row range");
  }
  std::size_t row = begin;
  std::size_t left = count;
  while (left > 0) {
    const ChunkView view = chunk(chunk_containing(row));
    const std::size_t local = row - view.row_begin();
    const std::size_t take = std::min(left, view.rows() - local);
    view.append_to(batch, local, take);
    row += take;
    left -= take;
  }
}

}  // namespace psc::store
