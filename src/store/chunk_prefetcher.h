// Double-buffered async chunk prefetch for out-of-core replay.
//
// Replaying a v2 (compressed) store serializes decode and analysis on
// one thread: decode chunk N, ingest chunk N, decode chunk N+1... The
// prefetcher overlaps them by posting the decode of chunk N+1 to the
// persistent core::WorkerPool while the caller ingests chunk N — two
// ChunkBuffers alternate as decode target and ingest source, so steady
// state allocates nothing and resident memory stays at two chunks.
//
// Exactly one posted job is in flight at a time, which preserves the
// reader's single-threaded contract: next_chunk() always finish()es the
// outstanding job before issuing the next, so the reader is only ever
// touched by one thread at any moment (with the pool mutex ordering the
// hand-offs — clean under TSan). When every pool thread is busy — e.g.
// sharded replay, where each shard's prefetcher lives inside a pool job
// — finish() steals the job back and decodes inline: the schedule
// degrades to the serial one, it never deadlocks.
//
// Decode errors (CRC mismatch, corrupt codec block) are captured on the
// decode thread and rethrown from the next_chunk() call that would have
// returned that chunk, so StoreError surfaces on the replaying thread
// exactly as it does without prefetch.
#pragma once

#include <cstddef>
#include <exception>
#include <optional>

#include "core/parallel.h"
#include "store/trace_file_reader.h"

namespace psc::store {

class ChunkPrefetcher {
 public:
  // Prefetches chunks [begin, min(end, chunk_count)) of `reader` in
  // order; issues the first decode immediately. The reader must outlive
  // the prefetcher, and nothing else may touch it while the prefetcher
  // is alive (chunk()/read_rows() calls would race the posted decode).
  ChunkPrefetcher(TraceFileReader& reader, std::size_t begin,
                  std::size_t end);
  ~ChunkPrefetcher();  // waits out any in-flight decode

  ChunkPrefetcher(const ChunkPrefetcher&) = delete;
  ChunkPrefetcher& operator=(const ChunkPrefetcher&) = delete;

  // The next chunk's decoded view, or nullopt when the range is
  // exhausted. The view stays valid until the next-next next_chunk()
  // call (its slot is only reused then); throws StoreError if the chunk
  // is corrupt.
  std::optional<ChunkView> next_chunk();

  // Chunks whose decode actually completed on a pool thread (vs stolen
  // back inline) — the overlap statistic the benches report.
  std::size_t async_completions() const noexcept {
    return async_completions_;
  }

 private:
  struct Slot {
    TraceFileReader::ChunkBuffer buf;
    ChunkView view;
    std::exception_ptr error;
    core::WorkerPool::AsyncTicket ticket;
    bool pending = false;
  };

  void issue(Slot& slot, std::size_t chunk);

  TraceFileReader* reader_;
  core::WorkerPool* pool_;
  std::size_t end_;
  std::size_t next_issue_;
  std::size_t cur_ = 0;  // slot the next next_chunk() delivers from
  std::size_t async_completions_ = 0;
  Slot slots_[2];
};

}  // namespace psc::store
