// Refcounted read-only bytes of one PSTR file, shared across readers.
//
// A TraceFileReader normally owns a private mmap of its file; N readers
// over the same dataset each pay their own open/map and page-table setup.
// The bus daemon serves many concurrent jobs over one dataset, so it
// opens the file once as a SharedMapping and builds each job's (and each
// shard's) reader over the same bytes: one mapping, one page-cache
// working set, any number of single-threaded readers on top. The handle
// is handed around as shared_ptr<const SharedMapping>; the bytes unmap
// when the last reader and the registry drop it.
//
// On platforms without mmap (or under PSC_NO_MMAP) the whole file is
// loaded into one heap buffer instead — still a single shared copy, so
// the sharing contract survives the fallback; out-of-core streaming is
// lost, which matches what a no-mmap platform could do anyway.
//
// The bytes are immutable after open(), so concurrent readers need no
// locking on the mapping itself.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace psc::store {

class SharedMapping {
 public:
  // Opens `path` and maps (or loads) its current contents. Throws
  // StoreError when the file cannot be opened, mapped or read.
  static std::shared_ptr<const SharedMapping> open(const std::string& path);

  ~SharedMapping();

  SharedMapping(const SharedMapping&) = delete;
  SharedMapping& operator=(const SharedMapping&) = delete;

  const std::string& path() const noexcept { return path_; }
  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  // True when the bytes are an mmap of the file (zero-copy reads); false
  // for the heap-loaded fallback.
  bool mmap_backed() const noexcept { return mapped_; }
  // Process-unique id, assigned at open() and never reused. Caches keyed
  // by mapping cannot key on the pointer — a mapping closed and reopened
  // can land at the same address — so this is the stable dataset key for
  // anything that outlives an individual reader (store::ChunkCache).
  std::uint64_t id() const noexcept { return id_; }

 private:
  SharedMapping() = default;

  std::string path_;
  std::uint64_t id_ = 0;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> heap_;  // fallback storage when not mapped
};

}  // namespace psc::store
