// PSTR reader: validates and decodes the chunked binary trace store
// written by store::TraceFileWriter (layout in store/pstr_format.h).
//
// On POSIX the file is memory-mapped and chunks are exposed as zero-copy
// ChunkViews — aligned spans straight into the mapping (the format
// 8-aligns every column), so replaying a 100 GB capture touches only the
// pages the analysis walks. Elsewhere, or with ReaderMode::stream, a
// buffered-read fallback materializes one chunk at a time into a
// reusable scratch buffer: resident memory is a single chunk regardless
// of file size, which is what lets replay campaigns run out-of-core.
//
// Every structural failure is a loud StoreError, never UB or a silent
// short read: bad magic, unsupported version, truncated file, corrupt
// footer/index, and per-chunk CRC mismatches (checked on first access of
// each chunk) all name the file and the violation.
//
// Readers are single-threaded; sharded replay gives each shard its own
// reader over a disjoint chunk range (see store/file_trace_source.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "core/trace_batch.h"
#include "store/pstr_format.h"
#include "store/shared_mapping.h"
#include "util/fourcc.h"

namespace psc::store {

class ChunkCache;  // store/chunk_cache.h

enum class ReaderMode {
  automatic,  // mmap where the platform supports it, else stream; the
              // PSC_NO_MMAP env flag forces the stream fallback
  mmap,       // require the memory-mapped path (StoreError if unsupported)
  stream,     // force the buffered-read fallback (one chunk resident)
};

// Decoded view of one chunk: column spans over either the file mapping
// (zero-copy) or the reader's scratch buffer. Valid until the next
// chunk()/read_rows() call on the owning reader.
class ChunkView {
 public:
  std::size_t rows() const noexcept { return rows_; }
  // Global index of the chunk's first trace.
  std::size_t row_begin() const noexcept { return row_begin_; }
  std::size_t channels() const noexcept { return channels_; }

  std::span<const aes::Block> plaintexts() const noexcept {
    return {reinterpret_cast<const aes::Block*>(payload_), rows_};
  }
  std::span<const aes::Block> ciphertexts() const noexcept {
    return {reinterpret_cast<const aes::Block*>(payload_ +
                                                rows_ * block_bytes),
            rows_};
  }
  std::span<const double> column(std::size_t c) const;

  // Appends chunk rows [begin, begin + count) to `batch`; the batch's
  // channel count must match.
  void append_to(core::TraceBatch& batch, std::size_t begin,
                 std::size_t count) const;
  void append_to(core::TraceBatch& batch) const {
    append_to(batch, 0, rows_);
  }

 private:
  friend class TraceFileReader;
  const std::byte* payload_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t row_begin_ = 0;
  std::size_t channels_ = 0;
};

class TraceFileReader {
 public:
  // Opens and structurally validates `path` (header, footer, chunk
  // index); chunk payload CRCs are checked lazily on first access.
  explicit TraceFileReader(const std::string& path,
                           ReaderMode mode = ReaderMode::automatic);
  // Reads through an already-open SharedMapping instead of opening the
  // file again: N readers (one per job or shard) share one mapping of
  // the dataset. The reader keeps a reference, so the bytes outlive it.
  explicit TraceFileReader(std::shared_ptr<const SharedMapping> mapping);
  ~TraceFileReader();

  TraceFileReader(const TraceFileReader&) = delete;
  TraceFileReader& operator=(const TraceFileReader&) = delete;

  const std::string& path() const noexcept { return path_; }
  // On-disk format version (1 or 2; see store/pstr_format.h).
  std::uint16_t format_version() const noexcept { return version_; }
  const std::vector<util::FourCc>& channels() const noexcept {
    return channels_;
  }
  const Metadata& metadata() const noexcept { return metadata_; }
  std::size_t trace_count() const noexcept { return trace_count_; }
  std::size_t chunk_count() const noexcept { return index_.size(); }
  std::size_t chunk_capacity() const noexcept { return chunk_capacity_; }
  std::size_t file_bytes() const noexcept { return file_bytes_; }

  // True when the file is memory-mapped (the zero-copy path).
  bool mapped() const noexcept { return map_ != nullptr; }
  // Bytes of chunk data the reader itself keeps resident: at most one
  // chunk's scratch (stream mode) plus one decoded chunk and its
  // compressed bytes (v2); 0 when mapped v1 (pages belong to the OS
  // cache). Bounded by a small constant number of chunks regardless of
  // file size — the out-of-core property.
  std::size_t resident_bytes() const noexcept {
    return scratch_.size() + decode_.size() + comp_scratch_.size();
  }

  std::size_t chunk_rows(std::size_t i) const { return index_.at(i).rows; }
  std::size_t chunk_row_begin(std::size_t i) const {
    return index_.at(i).row_begin;
  }
  // Index of the chunk holding global row `row` (row < trace_count()).
  std::size_t chunk_containing(std::size_t row) const;

  // Decodes chunk `i`, verifying its CRC on first access; throws
  // StoreError on corruption. The view is invalidated by the next
  // chunk()/read_rows() call.
  ChunkView chunk(std::size_t i);

  // Routes v2 chunk decodes through a shared decoded-chunk cache keyed
  // by (mapping id, chunk index): N readers over one SharedMapping decode
  // each compressed chunk once and share the immutable bytes. Identity
  // all-column chunks keep their zero-copy mapped path and never touch
  // the cache. Only SharedMapping-backed readers can attach a cache (the
  // key needs a stable dataset id); throws std::logic_error otherwise.
  void set_chunk_cache(std::shared_ptr<ChunkCache> cache);

  // Caller-owned decoded-chunk storage for read_chunk_into: lets the
  // prefetcher keep two chunks alive while the reader's internal
  // resident chunk advances.
  struct ChunkBuffer {
    std::vector<std::byte> bytes;
    // Pin on the cache entry backing the last view served from a shared
    // ChunkCache, so the view keeps its valid-until-buf-reused contract
    // even if the cache evicts the entry meanwhile.
    std::shared_ptr<const std::vector<std::byte>> cached;
  };

  // Like chunk(), but materializes into `buf` when the chunk cannot be
  // served zero-copy from the mapping, leaving the reader's internal
  // resident chunk untouched. The view stays valid until `buf` is
  // reused, even across later chunk()/read_chunk_into() calls — the
  // contract the double-buffered prefetcher needs. Not thread-safe:
  // callers serialize all access to the reader (see
  // store/chunk_prefetcher.h).
  ChunkView read_chunk_into(std::size_t i, ChunkBuffer& buf);

  // Appends rows [begin, begin + count) to `batch`, seeking through the
  // chunk index in O(1) per chunk touched.
  void read_rows(std::size_t begin, std::size_t count,
                 core::TraceBatch& batch);

  // Per-column storage accounting over the whole file: codec usage plus
  // raw vs. stored bytes, one entry per chunk column (plaintexts,
  // ciphertexts, then each channel). Walks chunk headers and v2 column
  // directories only — no chunk payload is decoded and no payload CRC is
  // checked, so listing a dataset stays cheap no matter its size (the
  // contract the bus daemon's dataset registry relies on). Corrupt
  // directory structure still fails loudly; corrupt payload *data* is
  // only caught when a chunk is actually decoded.
  struct ColumnStats {
    std::string name;              // "plaintext", "ciphertext" or FourCC
    std::size_t chunks_coded = 0;  // chunks stored with a real codec
    std::uint64_t raw_bytes = 0;
    std::uint64_t stored_bytes = 0;
  };
  std::vector<ColumnStats> column_stats();

 private:
  // Parsed v2 column directory of one chunk.
  struct ColumnBlock {
    ColumnCodec codec = ColumnCodec::identity;
    std::uint64_t raw_bytes = 0;
    std::uint64_t stored_bytes = 0;
    std::uint64_t offset = 0;  // of the column block, relative to the chunk
  };

  [[noreturn]] void fail(const std::string& what) const;
  void validate_structure();
  void unmap() noexcept;
  void parse_header(const std::byte* data, std::size_t size);
  void parse_footer_and_index();
  void load_bytes(std::uint64_t offset, std::span<std::byte> out);
  const std::byte* chunk_base(const ChunkIndexEntry& entry, std::size_t i);
  ChunkView chunk_v1_into(std::size_t i, std::vector<std::byte>& storage);
  ChunkView chunk_v2(std::size_t i);
  ChunkView chunk_v2_into(std::size_t i, ChunkBuffer& buf);
  // Fetches chunk i's decoded payload through the attached cache; the
  // chunk's directory (dir_) must already be loaded.
  std::shared_ptr<const std::vector<std::byte>> cached_chunk(std::size_t i);
  // Loads + validates chunk i's header and column directory into dir_;
  // returns true when every column is stored identity. No payload bytes
  // are touched.
  bool load_v2_directory(std::size_t i);
  // Loads + validates chunk i's header and column directory; returns
  // true with `payload` set when the all-identity mapped chunk can be
  // served zero-copy (CRC checked once).
  bool parse_v2_directory(std::size_t i, const std::byte*& payload);
  void decode_v2_chunk(std::size_t i, std::vector<std::byte>& dest);
  ChunkView make_view(const std::byte* payload, const ChunkIndexEntry& entry);

  std::string path_;
  std::size_t file_bytes_ = 0;

  // mmap path (null when streaming).
  const std::byte* map_ = nullptr;
  std::size_t map_size_ = 0;
  // Set when map_ points into a SharedMapping this reader does not own.
  std::shared_ptr<const SharedMapping> mapping_;

  // stream path.
  std::ifstream in_;
  std::vector<std::byte> scratch_;
  std::size_t loaded_chunk_ = static_cast<std::size_t>(-1);

  // Shared decoded-chunk cache (optional; SharedMapping-backed readers
  // only). cache_hold_ pins the entry behind the last chunk() view.
  std::shared_ptr<ChunkCache> chunk_cache_;
  std::uint64_t dataset_id_ = 0;
  std::shared_ptr<const std::vector<std::byte>> cache_hold_;

  // v2 path: decoded resident chunk (both modes), compressed staging and
  // the parsed directory of the chunk being opened.
  std::vector<std::byte> decode_;
  std::vector<std::byte> comp_scratch_;
  std::vector<std::byte> dir_scratch_;
  std::vector<ColumnBlock> dir_;

  std::uint16_t version_ = format_version_v1;
  std::vector<util::FourCc> channels_;
  Metadata metadata_;
  std::size_t chunk_capacity_ = 0;
  std::size_t header_bytes_ = 0;
  std::uint64_t index_offset_ = 0;  // chunk data ends here
  std::uint64_t trace_count_ = 0;
  std::vector<ChunkIndexEntry> index_;
  std::vector<std::uint8_t> crc_checked_;
};

}  // namespace psc::store
