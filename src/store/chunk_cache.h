// Shared decoded-chunk cache: a bounded, ref-counted LRU of decoded v2
// chunk payloads, shared by every reader of the same SharedMapping.
//
// PSTR v2 stores channel columns compressed; each TraceFileReader
// decodes a chunk privately, so N concurrent jobs over one dataset pay
// the delta_bitpack decode (and its CRC check) N times. Routing
// TraceFileReader::read_chunk_into through a ChunkCache keyed by
// (mapping id, chunk index) makes the decode happen once: the first
// reader to miss decodes while every concurrent reader of the same chunk
// blocks until the bytes are published, then all of them share one
// immutable payload. Identity-codec chunks never get here — the reader
// keeps serving them zero-copy straight from the mapping.
//
// The cached unit is the whole decoded chunk payload (v1 layout:
// plaintexts, ciphertexts, then every channel column); per-column views
// are cheap slices of it, so caching finer than a chunk would only
// fragment the buffer the decoder produces anyway.
//
// Ref-counting makes eviction safe under pressure: an entry pushed out
// by the byte budget is dropped from the map, but callers holding its
// shared_ptr keep the bytes alive until the last view dies. The budget
// therefore bounds what the *cache* keeps resident, not what in-flight
// readers have pinned.
//
// Thread-safe; one mutex, decode runs outside it. A throwing decode
// publishes nothing — the placeholder is erased and every waiter retries
// (and typically rethrows the same StoreError on the same corrupt
// bytes), so corruption stays loud per caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace psc::store {

class ChunkCache {
 public:
  // Immutable decoded payload; holding one pins the bytes across any
  // eviction.
  using Payload = std::shared_ptr<const std::vector<std::byte>>;

  explicit ChunkCache(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  ChunkCache(const ChunkCache&) = delete;
  ChunkCache& operator=(const ChunkCache&) = delete;

  // The decoded payload of (dataset, chunk). On a miss the calling
  // thread runs `decode` into a fresh buffer (outside the cache lock);
  // concurrent callers of the same key wait for that decode instead of
  // repeating it. Counted: a decode is a miss, anything served without
  // decoding — including a wait on an in-flight decode — is a hit.
  Payload get_or_decode(std::uint64_t dataset, std::size_t chunk,
                        const std::function<void(std::vector<std::byte>&)>&
                            decode);

  // Drops every entry of `dataset` (the registry calls this on close).
  // Mapping ids are never reused, so this only frees memory early; it is
  // not needed for correctness.
  void drop_dataset(std::uint64_t dataset);

  struct Stats {
    std::uint64_t hits = 0;        // served without a decode
    std::uint64_t misses = 0;      // decodes performed
    std::uint64_t evictions = 0;   // entries pushed out by the byte budget
    std::uint64_t resident_bytes = 0;
    std::uint64_t entries = 0;
  };
  Stats stats() const;

  std::size_t capacity_bytes() const noexcept { return capacity_; }

 private:
  struct Key {
    std::uint64_t dataset = 0;
    std::size_t chunk = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      // Mapping ids are small sequential integers; spread them before
      // mixing in the chunk index.
      return static_cast<std::size_t>(k.dataset * 0x9e3779b97f4a7c15ull) ^
             (k.chunk * 0xff51afd7ed558ccdull);
    }
  };
  struct Entry {
    Payload bytes;  // null while the first caller is still decoding
    std::list<Key>::iterator lru;  // valid only once bytes is set
  };

  void evict_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  // a decode published or failed
  std::unordered_map<Key, Entry, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recently used
  std::uint64_t resident_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace psc::store
