// Out-of-core replay: a core::TraceSource that streams a PSTR trace
// store through the standard acquire->accumulate pipeline, so every
// existing analysis (CPA, TVLA, GE, combined campaigns) runs against a
// recorded dataset larger than RAM without touching its math. Like
// ReplayTraceSource, collect() ignores the requested plaintext and
// collect_batch() overwrites the staged plaintext column with the
// recorded plaintexts.
//
// Sharded replay: core::ParallelRunner workers each own a disjoint,
// chunk-aligned row range of the same file — shard_row_range() partitions
// the chunk list with core::shard_size so ranges cover the file exactly
// and no two shards decode the same chunk. Each shard constructs its own
// FileTraceSource (and thus its own reader; readers are single-threaded,
// while the OS page cache shares the mapped file across all of them).
// Because ranges are contiguous and in shard order, merging per-shard
// engines in shard order is bit-identical to one sequential replay.
// Replay overlaps chunk decode with analysis by default: the source
// walks its row range through a store::ChunkPrefetcher, which decodes
// chunk N+1 on the persistent core::WorkerPool while the caller ingests
// chunk N. The schedule — not the result — changes: batches are
// bit-identical with prefetch on or off, and sharded replay inside pool
// jobs degrades gracefully to inline decode (see chunk_prefetcher.h).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "core/trace_source.h"
#include "store/chunk_prefetcher.h"
#include "store/trace_file_reader.h"

namespace psc::store {

// Whether replay decodes ahead asynchronously. `automatic` is on unless
// the PSC_STORE_PREFETCH env knob is set falsy (PSC_STORE_PREFETCH=0
// turns every automatic source into the serial decode path — the A/B
// switch the benches and equivalence tests use).
enum class PrefetchMode {
  automatic,
  on,
  off,
};

struct FileSourceOptions {
  ReaderMode mode = ReaderMode::automatic;
  PrefetchMode prefetch = PrefetchMode::automatic;
};

class FileTraceSource final : public core::TraceSource {
 public:
  // Replays every trace of the file at `path` in order.
  explicit FileTraceSource(const std::string& path,
                           ReaderMode mode = ReaderMode::automatic);
  FileTraceSource(const std::string& path, const FileSourceOptions& options);
  // Replays rows [begin, begin + count) — a shard view for parallel
  // out-of-core analysis. `count` is clamped to the rows available.
  FileTraceSource(const std::string& path, std::size_t begin,
                  std::size_t count, ReaderMode mode = ReaderMode::automatic);
  FileTraceSource(const std::string& path, std::size_t begin,
                  std::size_t count, const FileSourceOptions& options);
  // Adopts an already-open reader (single-threaded use only).
  explicit FileTraceSource(std::unique_ptr<TraceFileReader> reader);
  FileTraceSource(std::unique_ptr<TraceFileReader> reader, std::size_t begin,
                  std::size_t count,
                  const FileSourceOptions& options = FileSourceOptions{});

  const TraceFileReader& reader() const noexcept { return *reader_; }

  // True when this source decodes ahead through the worker pool.
  bool prefetch_enabled() const noexcept { return prefetch_; }
  // Chunk decodes that completed asynchronously so far (0 with prefetch
  // off or before the first batch).
  std::size_t async_completions() const noexcept {
    return prefetcher_ ? prefetcher_->async_completions() : 0;
  }

  const std::vector<util::FourCc>& keys() const noexcept override {
    return reader_->channels();
  }
  // Returns the next recorded trace; `plaintext` is ignored. Throws
  // std::out_of_range once the view is exhausted.
  core::TraceRecord collect(const aes::Block& plaintext) override;
  // Bulk chunk-seeked copy of the next batch.size() recorded traces
  // (including their plaintexts); throws std::out_of_range if fewer
  // remain.
  void collect_batch(core::TraceBatch& batch) override;
  std::optional<std::size_t> remaining() const noexcept override {
    return end_ - pos_;
  }

 private:
  // The prefetched view covering global row `row`, advancing the
  // prefetcher as needed (rows are consumed strictly in order).
  const ChunkView& current_view(std::size_t row);

  std::unique_ptr<TraceFileReader> reader_;
  core::TraceBatch row_scratch_;  // one-row staging for collect(), reused
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  bool prefetch_ = false;
  std::optional<ChunkPrefetcher> prefetcher_;  // built on first read
  ChunkView view_;
  bool have_view_ = false;
};

// The chunk-aligned (row_begin, row_count) range shard `s` of `shards`
// owns: chunks are partitioned contiguously with core::shard_size, so
// the ranges are disjoint, cover every trace, and keep whole chunks on
// one shard (each worker decodes and CRC-checks its chunks exactly once).
std::pair<std::size_t, std::size_t> shard_row_range(
    const TraceFileReader& reader, std::size_t shards, std::size_t s);

}  // namespace psc::store
