// Streaming PSTR writer: persists columnar core::TraceBatches as the
// chunked binary trace store (see store/pstr_format.h for the layout).
// The writer buffers appended rows into a chunk-sized staging batch and
// emits each full chunk with its CRC as it fills, so recording is
// out-of-core: memory stays one chunk regardless of campaign size.
// finalize() flushes the last partial chunk and writes the chunk index
// and footer; a file is only readable after finalize.
//
// Use it standalone (capture loops, trace_convert) or tee a live
// campaign's acquisition pass to disk by adding a RecordingSink to the
// campaign's core::MultiSink: analysis sinks and the recorder then see
// exactly the same batches, which is what makes replayed-from-file
// campaigns bit-identical to the live run that recorded them.
//
// The writer is single-stream and not thread-safe. Sharded campaigns
// record one file per shard (each shard owns its sinks; see
// core/parallel.h) or record through a shards=1 pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/analysis_sink.h"
#include "core/trace.h"
#include "core/trace_batch.h"
#include "store/pstr_format.h"
#include "util/fourcc.h"

namespace psc::store {

struct TraceFileWriterConfig {
  // Channel columns of every appended batch, in column order.
  std::vector<util::FourCc> channels;
  // Traces per chunk: the unit of CRC checking, seeking and sharded
  // replay. Larger chunks amortize headers; smaller chunks seek finer.
  std::size_t chunk_capacity = 4096;
  // Free-form provenance pairs stored in the header (device profile,
  // OS, victim...). See device_metadata().
  Metadata metadata = {};
  // Requested codec per channel column, for version-2 files. Empty (the
  // default) keeps the writer emitting byte-identical version-1 files;
  // otherwise the size must equal channels.size(). Plaintext/ciphertext
  // columns are always identity (uniformly random AES blocks do not
  // compress). A requested codec is per-chunk best-effort: a chunk whose
  // column fails the codec's bit-exact verification — or would not
  // shrink — is stored identity, so any data round-trips exactly.
  std::vector<ColumnCodec> channel_codecs = {};
};

// `codec` for every one of `channels` columns — the "compress
// everything" config of trace_convert compact and the v2 benches.
std::vector<ColumnCodec> uniform_channel_codecs(std::size_t channels,
                                                ColumnCodec codec);

// Header metadata describing the capture device, for
// TraceFileWriterConfig::metadata.
Metadata device_metadata(const std::string& device_name,
                         const std::string& os_version);

class TraceFileWriter {
 public:
  // Creates/truncates `path` and writes the header. Throws StoreError
  // (std::runtime_error) if the file cannot be created or the config is
  // invalid (no channels, zero chunk capacity).
  TraceFileWriter(const std::string& path, TraceFileWriterConfig config);
  ~TraceFileWriter();  // finalizes, swallowing errors; prefer finalize()

  TraceFileWriter(const TraceFileWriter&) = delete;
  TraceFileWriter& operator=(const TraceFileWriter&) = delete;

  const std::vector<util::FourCc>& channels() const noexcept {
    return config_.channels;
  }
  std::size_t chunk_capacity() const noexcept {
    return config_.chunk_capacity;
  }
  // Rows appended so far (buffered rows included).
  std::size_t trace_count() const noexcept { return rows_appended_; }

  // On-disk format version this writer emits (1, or 2 when any channel
  // codec is configured).
  std::uint16_t format_version() const noexcept {
    return v2_ ? format_version_v2 : format_version_v1;
  }
  // Compression accounting over flushed chunks: decoded vs stored bytes
  // of the channel columns (pt/ct and framing excluded) — the ratio the
  // store_v2 bench gates on.
  std::uint64_t channel_raw_bytes() const noexcept {
    return channel_raw_bytes_;
  }
  std::uint64_t channel_stored_bytes() const noexcept {
    return channel_stored_bytes_;
  }

  // Appends every row of `batch` (channel count must match); slices
  // across chunk boundaries internally, so any batch size works.
  void append(const core::TraceBatch& batch);
  void append(const core::TraceSet& set) { append(set.batch()); }

  // Flushes the final partial chunk, writes the chunk index and footer
  // and closes the file. Idempotent; append() after finalize throws.
  void finalize();

 private:
  void flush_chunk();
  void write_bytes(const std::byte* data, std::size_t size);

  TraceFileWriterConfig config_;
  bool v2_ = false;
  std::string path_;
  std::ofstream out_;
  core::TraceBatch staging_;
  std::vector<std::byte> scratch_;  // chunk serialization buffer, reused
  std::vector<std::byte> payload_scratch_;        // decoded payload (v2)
  std::vector<std::vector<std::byte>> enc_cols_;  // per-channel encodings
  std::uint64_t channel_raw_bytes_ = 0;
  std::uint64_t channel_stored_bytes_ = 0;
  std::vector<ChunkIndexEntry> index_;
  std::uint64_t file_offset_ = 0;
  std::uint64_t rows_appended_ = 0;
  std::uint64_t rows_flushed_ = 0;
  bool finalized_ = false;
};

// Tees an acquisition stream to a TraceFileWriter: drop one into a
// campaign's MultiSink and the recorded file replays (via
// store::FileTraceSource) the exact batches every co-attached analysis
// sink consumed. Non-owning; the writer must outlive the sink and be
// finalized by the caller after the pass.
class RecordingSink final : public core::AnalysisSink {
 public:
  enum class Filter {
    all,                     // record every batch (default)
    random_plaintexts_only,  // only batches a CPA would consume — records
                             // the CPA stream of a combined TVLA+CPA pass
  };

  explicit RecordingSink(TraceFileWriter& writer, Filter filter = Filter::all)
      : writer_(&writer), filter_(filter) {}

  void consume(const core::TraceBatch& batch,
               const core::BatchLabel& label) override {
    if (filter_ == Filter::random_plaintexts_only &&
        !label.random_plaintexts()) {
      return;
    }
    writer_->append(batch);
  }

 private:
  TraceFileWriter* writer_;
  Filter filter_;
};

}  // namespace psc::store
