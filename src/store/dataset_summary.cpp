#include "store/dataset_summary.h"

#include <cstdio>

#include "store/trace_file_reader.h"

namespace psc::store {
namespace {

// Codec label for a column: what the chunks actually use, including the
// per-chunk fallback case where the codec only took on some chunks.
std::string codec_label(const DatasetColumnSummary& col,
                        std::size_t chunk_count) {
  if (col.chunks_coded == 0) {
    return "identity";
  }
  if (col.chunks_coded == chunk_count) {
    return "delta_bitpack";
  }
  return "delta_bitpack " + std::to_string(col.chunks_coded) + "/" +
         std::to_string(chunk_count);
}

std::string fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

std::uint64_t DatasetSummary::raw_bytes_total() const noexcept {
  std::uint64_t total = 0;
  for (const DatasetColumnSummary& col : columns) {
    total += col.raw_bytes;
  }
  return total;
}

std::uint64_t DatasetSummary::stored_bytes_total() const noexcept {
  std::uint64_t total = 0;
  for (const DatasetColumnSummary& col : columns) {
    total += col.stored_bytes;
  }
  return total;
}

double DatasetSummary::ratio() const noexcept {
  const std::uint64_t stored = stored_bytes_total();
  return stored == 0 ? 1.0
                     : static_cast<double>(raw_bytes_total()) /
                           static_cast<double>(stored);
}

DatasetSummary summarize_dataset(TraceFileReader& reader) {
  DatasetSummary summary;
  summary.path = reader.path();
  summary.format_version = reader.format_version();
  summary.trace_count = reader.trace_count();
  summary.file_bytes = reader.file_bytes();
  summary.chunk_count = reader.chunk_count();
  summary.chunk_capacity = reader.chunk_capacity();
  for (const util::FourCc& channel : reader.channels()) {
    summary.channels.push_back(channel.str());
  }
  summary.metadata = reader.metadata();
  for (const TraceFileReader::ColumnStats& stats : reader.column_stats()) {
    summary.columns.push_back({.name = stats.name,
                               .chunks_coded = stats.chunks_coded,
                               .raw_bytes = stats.raw_bytes,
                               .stored_bytes = stats.stored_bytes});
  }
  return summary;
}

void print_dataset_summary(std::ostream& os, const DatasetSummary& summary,
                           const std::string& prefix) {
  os << prefix << "file        : " << summary.path << " (v"
     << summary.format_version << ", " << summary.file_bytes << " bytes)\n"
     << prefix << "traces      : " << summary.trace_count << "\n"
     << prefix << "channels    : " << summary.channels.size() << " [";
  for (std::size_t c = 0; c < summary.channels.size(); ++c) {
    os << (c ? " " : "") << summary.channels[c];
  }
  os << "]\n"
     << prefix << "chunks      : " << summary.chunk_count << " x up to "
     << summary.chunk_capacity << " traces\n";
  for (const DatasetColumnSummary& col : summary.columns) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "column      : %-10s  %-17s  raw %12llu B  stored %12llu B"
                  "  %sx",
                  col.name.c_str(),
                  codec_label(col, summary.chunk_count).c_str(),
                  static_cast<unsigned long long>(col.raw_bytes),
                  static_cast<unsigned long long>(col.stored_bytes),
                  fixed2(col.ratio()).c_str());
    os << prefix << line << "\n";
  }
  os << prefix << "payload     : raw " << summary.raw_bytes_total()
     << " B -> stored " << summary.stored_bytes_total() << " B ("
     << fixed2(summary.ratio()) << "x)\n";
  for (const auto& [key, value] : summary.metadata) {
    os << prefix << "meta        : " << key << " = " << value << "\n";
  }
}

}  // namespace psc::store
