// Scenario jobs: live-acquisition campaigns the bus daemon serves by
// registry name (protocol v3's SUBMIT_SCENARIO), next to the recorded-
// dataset jobs of bus/jobs.h.
//
// run_scenario_job is the single compute path: the daemon runs it under
// a driver thread per job, and in-process verification (`psc_busctl
// submit scenario --verify-local`, the ctest suite) calls the same
// function directly. Scenario results are a pure function of (scenario,
// params, traces_per_set, seed, shards) — the worker count only changes
// how fast they arrive (tests/scenario asserts worker invariance) — so
// the daemon may execute with however many pool threads it owns while a
// client verifies sequentially, and the doubles still match bit for bit.
// As with the dataset jobs, a spec shard count of 0 auto-sizes through a
// policy that is a pure function of the trace budget (resolved_job_shards
// clamped to the per-set size), never of worker availability; anything
// else would let the daemon and a local rerun resolve different shard
// counts and mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bus/jobs.h"
#include "scenario/runner.h"

namespace psc::bus {

// A scenario campaign request, addressable by registry name. Everything
// here is result-determining.
struct ScenarioJobSpec {
  std::string scenario;  // ScenarioRegistry::built_in() name
  // key=value overrides, validated against the scenario's ParamSpecs
  // (unknown keys and malformed values are rejected before the job is
  // accepted).
  std::vector<std::pair<std::string, std::string>> params;
  std::uint64_t traces_per_set = 0;  // 0 = the scenario's default
  std::uint64_t seed = 1;
  // 0 auto-sizes (see resolved_job_shards), clamped to traces_per_set.
  std::uint32_t shards = 0;
};

// The full runner result crosses the wire (TVLA matrices, CPA rankings
// and GE curves), so --verify-local can compare every double.
using ScenarioJobResult = scenario::ScenarioRunResult;

// Shard count `spec` resolves to: explicit wins verbatim, 0 auto-sizes
// over the 6 * traces_per_set acquisition budget and is clamped to the
// per-set size (shards slice per-set rows). Pure function of the spec,
// identical wherever the job runs.
std::uint32_t resolved_scenario_shards(const ScenarioJobSpec& spec,
                                       std::uint64_t traces_per_set) noexcept;

// Resolves the scenario in the built-in registry, parses params and runs
// the generic sink campaign. Throws std::invalid_argument for an unknown
// scenario name, malformed/out-of-range params, or an unsatisfiable
// shard count — the daemon's typed-error path. `workers` is an execution
// knob only (threads for the sharded pipeline); it never shows in the
// result.
ScenarioJobResult run_scenario_job(const ScenarioJobSpec& spec,
                                   const JobProgressFn& progress = {},
                                   std::size_t workers = 1);

}  // namespace psc::bus
