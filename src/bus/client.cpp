#include "bus/client.h"

#include <utility>

namespace psc::bus {

namespace {

[[noreturn]] void throw_unexpected(MsgType got, MsgType expected) {
  throw ProtocolError("daemon sent message type " +
                      std::to_string(static_cast<unsigned>(got)) +
                      " where type " +
                      std::to_string(static_cast<unsigned>(expected)) +
                      " was expected");
}

}  // namespace

BusClient::BusClient(const std::string& socket_path)
    : socket_(connect_unix(socket_path)) {}

void BusClient::request(MsgType type, const PayloadWriter& body,
                        MsgType expected) {
  send_frame(socket_, type, body);
  const std::optional<MsgType> got = recv_frame(socket_, payload_);
  if (!got.has_value()) {
    throw BusError("daemon closed the connection mid-request");
  }
  if (*got == MsgType::error) {
    PayloadReader r(payload_);
    const ErrorMsg err = ErrorMsg::decode(r);
    throw BusRemoteError(err.code, err.message);
  }
  if (*got != expected) {
    throw_unexpected(*got, expected);
  }
}

void BusClient::ping() {
  request(MsgType::ping, PayloadWriter{}, MsgType::ok);
}

std::vector<DatasetListMsg::Entry> BusClient::list_datasets() {
  request(MsgType::list_datasets, PayloadWriter{}, MsgType::dataset_list);
  PayloadReader r(payload_);
  return DatasetListMsg::decode(r).datasets;
}

void BusClient::open_dataset(const std::string& name, const std::string& path) {
  PayloadWriter w;
  OpenDatasetMsg{name, path}.encode(w);
  request(MsgType::open_dataset, w, MsgType::ok);
}

std::uint64_t BusClient::submit_cpa(const std::string& dataset,
                                    const CpaJobSpec& spec) {
  PayloadWriter w;
  SubmitCpaMsg{dataset, spec}.encode(w);
  request(MsgType::submit_cpa, w, MsgType::job_accepted);
  PayloadReader r(payload_);
  return JobIdMsg::decode(r).id;
}

std::uint64_t BusClient::submit_tvla(const std::string& dataset,
                                     const TvlaJobSpec& spec) {
  PayloadWriter w;
  SubmitTvlaMsg{dataset, spec}.encode(w);
  request(MsgType::submit_tvla, w, MsgType::job_accepted);
  PayloadReader r(payload_);
  return JobIdMsg::decode(r).id;
}

std::vector<ScenarioListMsg::Entry> BusClient::list_scenarios() {
  request(MsgType::list_scenarios, PayloadWriter{}, MsgType::scenario_list);
  PayloadReader r(payload_);
  return ScenarioListMsg::decode(r).scenarios;
}

std::uint64_t BusClient::submit_scenario(const ScenarioJobSpec& spec) {
  PayloadWriter w;
  SubmitScenarioMsg{spec}.encode(w);
  request(MsgType::submit_scenario, w, MsgType::job_accepted);
  PayloadReader r(payload_);
  return JobIdMsg::decode(r).id;
}

JobStatusMsg BusClient::status(std::uint64_t id) {
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  request(MsgType::job_status, w, MsgType::job_status_r);
  PayloadReader r(payload_);
  return JobStatusMsg::decode(r);
}

StatsMsg BusClient::stats() {
  request(MsgType::get_stats, PayloadWriter{}, MsgType::stats);
  PayloadReader r(payload_);
  return StatsMsg::decode(r);
}

JobStatusMsg BusClient::watch(std::uint64_t id, const WatchFn& on_progress) {
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  send_frame(socket_, MsgType::watch_job, w);
  for (;;) {
    const std::optional<MsgType> got = recv_frame(socket_, payload_);
    if (!got.has_value()) {
      throw BusError("daemon closed the connection mid-watch");
    }
    PayloadReader r(payload_);
    switch (*got) {
      case MsgType::progress: {
        const ProgressMsg msg = ProgressMsg::decode(r);
        if (on_progress) {
          on_progress(msg);
        }
        break;
      }
      case MsgType::job_done:
        return JobStatusMsg::decode(r);
      case MsgType::error: {
        const ErrorMsg err = ErrorMsg::decode(r);
        throw BusRemoteError(err.code, err.message);
      }
      default:
        throw_unexpected(*got, MsgType::job_done);
    }
  }
}

CpaJobResult BusClient::cpa_result(std::uint64_t id) {
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  request(MsgType::fetch_result, w, MsgType::cpa_result);
  PayloadReader r(payload_);
  return CpaResultMsg::decode(r).result;
}

TvlaJobResult BusClient::tvla_result(std::uint64_t id) {
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  request(MsgType::fetch_result, w, MsgType::tvla_result);
  PayloadReader r(payload_);
  return TvlaResultMsg::decode(r).result;
}

ScenarioJobResult BusClient::scenario_result(std::uint64_t id) {
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  request(MsgType::fetch_result, w, MsgType::scenario_result);
  PayloadReader r(payload_);
  return ScenarioResultMsg::decode(r).result;
}

void BusClient::shutdown_server() {
  request(MsgType::shutdown, PayloadWriter{}, MsgType::ok);
}

}  // namespace psc::bus
