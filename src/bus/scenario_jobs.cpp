#include "bus/scenario_jobs.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "scenario/registry.h"

namespace psc::bus {

std::uint32_t resolved_scenario_shards(
    const ScenarioJobSpec& spec, std::uint64_t traces_per_set) noexcept {
  if (spec.shards != 0) {
    return spec.shards;
  }
  const std::uint32_t by_budget =
      resolved_job_shards(0, 6 * traces_per_set);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(by_budget, std::max<std::uint64_t>(
                                             1, traces_per_set)));
}

ScenarioJobResult run_scenario_job(const ScenarioJobSpec& spec,
                                   const JobProgressFn& progress,
                                   std::size_t workers) {
  const std::shared_ptr<const scenario::Scenario> sc =
      scenario::ScenarioRegistry::built_in().find(spec.scenario);
  if (sc == nullptr) {
    throw std::invalid_argument("unknown scenario '" + spec.scenario + "'");
  }
  const scenario::ParamSet params = sc->parse_params(spec.params);
  // Surfaces out-of-range values (e.g. cache-timing lines > 64) here,
  // where the daemon can still answer with a typed ERROR frame, instead
  // of deep inside the campaign.
  (void)sc->channels(params);

  const std::uint64_t per_set =
      spec.traces_per_set != 0 ? spec.traces_per_set
                               : sc->analysis(params).default_traces_per_set;
  const std::uint32_t shards = resolved_scenario_shards(spec, per_set);
  if (shards > per_set) {
    throw std::invalid_argument("run_scenario_job: more shards than traces");
  }

  scenario::ScenarioRunConfig config;
  config.traces_per_set = static_cast<std::size_t>(per_set);
  config.seed = spec.seed;
  config.workers = std::max<std::size_t>(1, workers);
  config.shards = shards;
  if (progress) {
    config.progress = [progress](std::size_t consumed, std::size_t total) {
      progress(consumed, total);
    };
  }
  return scenario::run_scenario(*sc, params, config);
}

}  // namespace psc::bus
