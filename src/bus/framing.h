// Socket plumbing for the bus protocol: RAII fds, Unix-domain
// listen/connect, and frame send/recv implementing the header layout of
// bus/protocol.h.
//
// Failure taxonomy (the daemon's robustness tests exercise each):
//   - clean EOF at a frame boundary   -> recv_frame returns nullopt
//   - EOF mid-frame (truncated frame) -> ProtocolError
//   - bad magic / version / CRC /
//     oversized declared length       -> ProtocolError
//   - socket-level errors             -> BusError
// A ProtocolError means the peer is speaking garbage: the daemon answers
// with one best-effort ERROR frame and closes that connection, touching
// nothing else.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bus/protocol.h"

namespace psc::bus {

// Move-only owning fd. -1 = empty.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;
  // shutdown(SHUT_RDWR): unblocks a thread parked in recv on this fd
  // without racing the close of the fd number itself.
  void shutdown_both() noexcept;

 private:
  int fd_ = -1;
};

// Connects to a Unix-domain socket path; throws BusError on failure.
Socket connect_unix(const std::string& path);

// Bound + listening Unix-domain server socket. Unlinks a stale socket
// file at bind and its own file on destruction.
class Listener {
 public:
  explicit Listener(const std::string& path);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  int fd() const noexcept { return socket_.fd(); }
  const std::string& path() const noexcept { return path_; }

  // Accepts one connection; empty Socket when the listener was shut
  // down. Throws BusError on unexpected accept failures.
  Socket accept();

  void shutdown() noexcept { socket_.shutdown_both(); }

 private:
  Socket socket_;
  std::string path_;
};

// Sends one complete frame (header + payload); throws BusError when the
// peer is gone (EPIPE/ECONNRESET — common when a client disconnects
// mid-watch) or on any short write.
void send_frame(const Socket& socket, MsgType type,
                std::span<const std::byte> payload);
void send_frame(const Socket& socket, MsgType type, const PayloadWriter& w);

// Receives one complete frame into `payload`. Returns the message type,
// or nullopt on clean EOF before any header byte. Validates magic,
// version, declared length and payload CRC (ProtocolError on each).
std::optional<MsgType> recv_frame(const Socket& socket,
                                  std::vector<std::byte>& payload);

}  // namespace psc::bus
