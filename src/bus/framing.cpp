#include "bus/framing.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "store/pstr_format.h"
#include "util/crc32.h"

namespace psc::bus {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw BusError("bus: " + what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw BusError("bus: socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

// Full write; throws BusError on failure (EPIPE surfaces here rather
// than as SIGPIPE thanks to MSG_NOSIGNAL).
void send_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      sys_fail("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

// Full read. Returns false on EOF with zero bytes read; throws
// ProtocolError when EOF lands mid-buffer (a truncated frame) and
// BusError on socket errors.
bool recv_all(int fd, std::byte* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      sys_fail("recv");
    }
    if (n == 0) {
      if (got == 0) {
        return false;
      }
      throw ProtocolError("bus: connection closed mid-frame (truncated)");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Socket connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    sys_fail("socket");
  }
  Socket socket(fd);
  const sockaddr_un addr = unix_address(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    throw BusError("bus: connect " + path + ": " + std::strerror(errno));
  }
  return socket;
}

Listener::Listener(const std::string& path) : path_(path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    sys_fail("socket");
  }
  socket_ = Socket(fd);
  const sockaddr_un addr = unix_address(path);
  ::unlink(path.c_str());  // a stale file from a dead daemon blocks bind
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw BusError("bus: bind " + path + ": " + std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    sys_fail("listen");
  }
}

Listener::~Listener() {
  socket_.close();
  ::unlink(path_.c_str());
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    // The daemon shut the listener down (or closed it) to stop the
    // accept loop; anything else is a real error.
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) {
      return Socket();
    }
    sys_fail("accept");
  }
}

void send_frame(const Socket& socket, MsgType type,
                std::span<const std::byte> payload) {
  if (payload.size() > max_payload_bytes) {
    throw BusError("bus: frame payload too large");
  }
  std::vector<std::byte> frame(frame_header_bytes + payload.size());
  std::memcpy(frame.data(), frame_magic, 4);
  store::put_u16(frame.data() + 4, protocol_version);
  store::put_u16(frame.data() + 6, static_cast<std::uint16_t>(type));
  store::put_u32(frame.data() + 8,
                 static_cast<std::uint32_t>(payload.size()));
  store::put_u32(frame.data() + 12,
                 util::crc32(payload.data(), payload.size()));
  if (!payload.empty()) {
    std::memcpy(frame.data() + frame_header_bytes, payload.data(),
                payload.size());
  }
  send_all(socket.fd(), frame.data(), frame.size());
}

void send_frame(const Socket& socket, MsgType type, const PayloadWriter& w) {
  send_frame(socket, type, std::span<const std::byte>(w.bytes()));
}

std::optional<MsgType> recv_frame(const Socket& socket,
                                  std::vector<std::byte>& payload) {
  std::byte header[frame_header_bytes];
  if (!recv_all(socket.fd(), header, sizeof(header))) {
    return std::nullopt;
  }
  if (std::memcmp(header, frame_magic, 4) != 0) {
    throw ProtocolError("bus: bad frame magic");
  }
  const std::uint16_t version = store::get_u16(header + 4);
  if (version != protocol_version) {
    throw ProtocolError("bus: unsupported protocol version " +
                        std::to_string(version));
  }
  const std::uint16_t type = store::get_u16(header + 6);
  const std::uint32_t length = store::get_u32(header + 8);
  const std::uint32_t crc = store::get_u32(header + 12);
  // Bound the declared length before allocating anything: a hostile or
  // corrupt length can demand gigabytes.
  if (length > max_payload_bytes) {
    throw ProtocolError("bus: declared payload length " +
                        std::to_string(length) + " exceeds limit");
  }
  payload.resize(length);
  if (length > 0 && !recv_all(socket.fd(), payload.data(), length)) {
    throw ProtocolError("bus: connection closed mid-frame (truncated)");
  }
  if (util::crc32(payload.data(), payload.size()) != crc) {
    throw ProtocolError("bus: frame payload CRC mismatch");
  }
  return static_cast<MsgType>(type);
}

}  // namespace psc::bus
