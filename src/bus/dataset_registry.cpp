#include "bus/dataset_registry.h"

#include <algorithm>
#include <stdexcept>

#include "store/chunk_cache.h"
#include "store/trace_file_reader.h"

namespace psc::bus {

namespace {

// Sorted-vector lookup keeps list() allocation-free of surprises and the
// registry deterministic; registries hold a handful of datasets, so
// binary search vs hash is irrelevant.
template <typename Vec>
auto find_entry(Vec& datasets, const std::string& name) {
  const auto it = std::lower_bound(
      datasets.begin(), datasets.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  return it != datasets.end() && it->first == name ? it : datasets.end();
}

}  // namespace

void DatasetRegistry::set_chunk_cache(
    std::shared_ptr<store::ChunkCache> cache) {
  std::lock_guard<std::mutex> lock(mu_);
  chunk_cache_ = std::move(cache);
}

void DatasetRegistry::open(const std::string& name, const std::string& path) {
  if (name.empty()) {
    throw std::invalid_argument("DatasetRegistry: empty dataset name");
  }
  // Map and summarize outside the lock: opening a cold file does disk
  // I/O and must not stall list()/mapping() calls from other sessions.
  std::shared_ptr<const store::SharedMapping> mapping =
      store::SharedMapping::open(path);
  store::TraceFileReader reader(mapping);
  store::DatasetSummary summary = store::summarize_dataset(reader);

  std::lock_guard<std::mutex> lock(mu_);
  if (find_entry(datasets_, name) != datasets_.end()) {
    throw std::invalid_argument("DatasetRegistry: name already registered: " +
                                name);
  }
  const auto at = std::lower_bound(
      datasets_.begin(), datasets_.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  datasets_.insert(at, {name, Dataset{std::move(mapping),
                                      std::move(summary)}});
}

std::shared_ptr<const store::SharedMapping> DatasetRegistry::mapping(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = find_entry(datasets_, name);
  return it == datasets_.end() ? nullptr : it->second.mapping;
}

std::unique_ptr<store::DatasetSummary> DatasetRegistry::summary(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = find_entry(datasets_, name);
  if (it == datasets_.end()) {
    return nullptr;
  }
  return std::make_unique<store::DatasetSummary>(it->second.summary);
}

std::vector<DatasetRegistry::Entry> DatasetRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(datasets_.size());
  for (const auto& [name, dataset] : datasets_) {
    out.push_back({name, dataset.summary});
  }
  return out;
}

bool DatasetRegistry::close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = find_entry(datasets_, name);
  if (it == datasets_.end()) {
    return false;
  }
  if (chunk_cache_ != nullptr && it->second.mapping != nullptr) {
    chunk_cache_->drop_dataset(it->second.mapping->id());
  }
  datasets_.erase(it);
  return true;
}

std::size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return datasets_.size();
}

}  // namespace psc::bus
