#include "bus/jobs.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>

#include "core/analysis_sink.h"
#include "core/parallel.h"
#include "core/trace_batch.h"
#include "store/chunk_cache.h"
#include "store/file_trace_source.h"
#include "util/fourcc.h"

namespace psc::bus {

namespace {

// Batch granularity of job ingest (and thus of progress callbacks).
// Matches the campaigns' acquisition batch so replayed jobs feed the
// engines the same batch shapes a live campaign would.
constexpr std::size_t job_batch = 1024;

std::unique_ptr<store::TraceFileReader> make_shard_reader(
    const std::shared_ptr<const store::SharedMapping>& dataset,
    const JobExecOptions& exec) {
  auto reader = std::make_unique<store::TraceFileReader>(dataset);
  if (exec.chunk_cache != nullptr) {
    reader->set_chunk_cache(exec.chunk_cache);
  }
  return reader;
}

// Runs fn(s) for every shard in [0, shards) and on_merged(s) strictly in
// ascending shard order on the calling thread — the deterministic merge
// hook. Without a shard budget everything runs sequentially inline; with
// one, units are posted to the worker pool with a sliding in-flight
// window re-capped from exec.shard_budget() before each unit is issued,
// and the caller finishes units in post order (so at most ~cap shard
// engines are ever alive). If any unit threw, the exception of the
// lowest-indexed failing shard is rethrown after every unit finished;
// shards whose unit failed are never merged.
void run_shard_units(std::uint32_t shards, const JobExecOptions& exec,
                     const std::function<void(std::uint32_t)>& fn,
                     const std::function<void(std::uint32_t)>& on_merged) {
  if (exec.on_shard_activity) {
    exec.on_shard_activity(shards, 0);
  }
  if (!exec.shard_budget || shards <= 1) {
    for (std::uint32_t s = 0; s < shards; ++s) {
      fn(s);
      on_merged(s);
    }
    return;
  }

  std::vector<std::exception_ptr> errors(shards);
  std::atomic<std::uint32_t> running{0};
  const auto unit = [&](std::uint32_t s) {
    const std::uint32_t started = running.fetch_add(1) + 1;
    if (exec.on_shard_activity) {
      exec.on_shard_activity(shards, started);
    }
    try {
      fn(s);
    } catch (...) {
      errors[s] = std::current_exception();
    }
    const std::uint32_t left = running.fetch_sub(1) - 1;
    if (exec.on_shard_activity) {
      exec.on_shard_activity(shards, left);
    }
  };

  core::WorkerPool::JobGroup group;
  std::uint32_t merged = 0;
  const auto drain_one = [&] {
    group.finish_next();
    if (errors[merged] == nullptr) {
      on_merged(merged);
    }
    ++merged;
  };
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint32_t cap = std::max<std::uint32_t>(1, exec.shard_budget());
    while (group.in_flight() >= cap) {
      drain_one();
    }
    group.post([&unit, s] { unit(s); });
  }
  while (group.in_flight() > 0) {
    drain_one();
  }
  for (const std::exception_ptr& error : errors) {
    if (error != nullptr) {
      std::rethrow_exception(error);
    }
  }
}

}  // namespace

std::uint32_t resolved_job_shards(std::uint32_t spec_shards,
                                  std::uint64_t total_traces) noexcept {
  if (spec_shards != 0) {
    return spec_shards;
  }
  const std::uint64_t by_size = total_traces / core::min_traces_per_shard;
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(by_size, 1, auto_shard_cap));
}

CpaJobResult run_cpa_job(std::shared_ptr<const store::SharedMapping> dataset,
                         const CpaJobSpec& spec, const JobProgressFn& progress,
                         const JobExecOptions& exec) {
  if (dataset == nullptr) {
    throw std::invalid_argument("run_cpa_job: null dataset");
  }
  if (spec.models.empty()) {
    throw std::invalid_argument("run_cpa_job: no power models");
  }
  // A throwaway reader resolves the dataset's shape; each shard below
  // builds its own single-threaded reader over the same shared bytes.
  store::TraceFileReader probe(dataset);
  const auto& channels = probe.channels();
  const util::FourCc wanted(spec.channel);
  const auto it = std::find(channels.begin(), channels.end(), wanted);
  if (it == channels.end()) {
    throw std::invalid_argument("run_cpa_job: dataset has no channel " +
                                wanted.str());
  }
  const std::size_t column = static_cast<std::size_t>(it - channels.begin());

  const std::uint64_t total =
      spec.trace_count == 0 ? probe.trace_count()
                            : std::min<std::uint64_t>(spec.trace_count,
                                                      probe.trace_count());
  if (total == 0) {
    throw std::invalid_argument("run_cpa_job: dataset holds no traces");
  }
  const std::uint32_t shards = resolved_job_shards(spec.shards, total);
  if (shards > total) {
    throw std::invalid_argument("run_cpa_job: more shards than traces");
  }

  // One self-contained engine per shard, merged strictly in shard order:
  // the result depends on (dataset, spec) only — which threads ran the
  // units, and in what order they completed, never shows.
  core::CpaEngine engine(spec.models);
  std::vector<std::unique_ptr<core::CpaEngine>> parts(shards);
  std::atomic<std::uint64_t> consumed{0};
  const auto run_shard = [&](std::uint32_t s) {
    const std::size_t begin = core::shard_begin(total, shards, s);
    const std::size_t count = core::shard_size(total, shards, s);
    auto part = std::make_unique<core::CpaEngine>(spec.models);
    core::TraceBatch batch(channels.size());
    store::FileTraceSource source(make_shard_reader(dataset, exec), begin,
                                  count);
    std::size_t left = count;
    while (left > 0) {
      const std::size_t take = std::min(job_batch, left);
      batch.clear();
      batch.resize(take);
      source.collect_batch(batch);
      part->add_batch(batch, column);
      left -= take;
      const std::uint64_t now =
          consumed.fetch_add(take, std::memory_order_relaxed) + take;
      if (progress) {
        progress(now, total);
      }
    }
    parts[s] = std::move(part);
  };
  run_shard_units(shards, exec, run_shard, [&](std::uint32_t s) {
    engine.merge(*parts[s]);
    parts[s].reset();
  });

  CpaJobResult result;
  result.traces = total;
  const auto round_keys = aes::Aes128::expand_key(spec.known_key);
  result.models.reserve(spec.models.size());
  for (const power::PowerModel model : spec.models) {
    result.models.push_back(engine.analyze(model, round_keys));
  }
  return result;
}

TvlaJobResult run_tvla_job(std::shared_ptr<const store::SharedMapping> dataset,
                           const TvlaJobSpec& spec,
                           const JobProgressFn& progress,
                           const JobExecOptions& exec) {
  if (dataset == nullptr) {
    throw std::invalid_argument("run_tvla_job: null dataset");
  }
  store::TraceFileReader probe(dataset);
  const std::size_t channel_count = probe.channels().size();
  const std::uint64_t block = probe.trace_count() / 6;
  if (block == 0) {
    throw std::invalid_argument(
        "run_tvla_job: dataset holds fewer than 6 traces");
  }
  const std::uint64_t per_set =
      spec.traces_per_set == 0 ? block : spec.traces_per_set;
  if (per_set > block) {
    throw std::invalid_argument(
        "run_tvla_job: traces_per_set exceeds the dataset's set size");
  }
  const std::uint64_t total = 6 * per_set;
  std::uint32_t shards = resolved_job_shards(spec.shards, total);
  if (spec.shards == 0) {
    // Auto-sizing must stay satisfiable: shards slice per-set rows.
    shards = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(shards, per_set));
  }
  if (shards > per_set) {
    throw std::invalid_argument("run_tvla_job: more shards than traces");
  }

  // Positional labels (see jobs.h): set k = rows [k * block, k * block +
  // per_set), class k % 3, primed k >= 3 — TVLA protocol order. Shard s
  // takes its shard_size slice of every set; one sink per shard, merged
  // in shard order, mirrors the live campaign's structure.
  core::TvlaSink merged(channel_count);
  std::vector<std::unique_ptr<core::TvlaSink>> parts(shards);
  std::atomic<std::uint64_t> consumed{0};
  const auto run_shard = [&](std::uint32_t s) {
    auto sink = std::make_unique<core::TvlaSink>(channel_count);
    core::TraceBatch batch(channel_count);
    for (std::size_t set = 0; set < 6; ++set) {
      const core::BatchLabel label = core::BatchLabel::tvla(
          core::all_plaintext_classes[set % 3], set >= 3);
      const std::size_t begin = set * block +
                                core::shard_begin(per_set, shards, s);
      const std::size_t count = core::shard_size(per_set, shards, s);
      store::FileTraceSource source(make_shard_reader(dataset, exec), begin,
                                    count);
      std::size_t left = count;
      while (left > 0) {
        const std::size_t take = std::min(job_batch, left);
        batch.clear();
        batch.resize(take);
        source.collect_batch(batch);
        sink->consume(batch, label);
        left -= take;
        const std::uint64_t now =
            consumed.fetch_add(take, std::memory_order_relaxed) + take;
        if (progress) {
          progress(now, total);
        }
      }
    }
    parts[s] = std::move(sink);
  };
  run_shard_units(shards, exec, run_shard, [&](std::uint32_t s) {
    merged.merge(*parts[s]);
    parts[s].reset();
  });

  TvlaJobResult result;
  result.traces_per_set = per_set;
  result.channels.reserve(channel_count);
  for (std::size_t c = 0; c < channel_count; ++c) {
    result.channels.push_back({probe.channels()[c].str(),
                               merged.accumulator(c).matrix()});
  }
  return result;
}

}  // namespace psc::bus
