#include "bus/jobs.h"

#include <algorithm>
#include <stdexcept>

#include "core/analysis_sink.h"
#include "core/parallel.h"
#include "core/trace_batch.h"
#include "store/file_trace_source.h"
#include "util/fourcc.h"

namespace psc::bus {

namespace {

// Batch granularity of job ingest (and thus of progress callbacks).
// Matches the campaigns' acquisition batch so replayed jobs feed the
// engines the same batch shapes a live campaign would.
constexpr std::size_t job_batch = 1024;

std::uint32_t resolved_shards(std::uint32_t shards) {
  return shards == 0 ? 1 : shards;
}

}  // namespace

CpaJobResult run_cpa_job(std::shared_ptr<const store::SharedMapping> dataset,
                         const CpaJobSpec& spec,
                         const JobProgressFn& progress) {
  if (dataset == nullptr) {
    throw std::invalid_argument("run_cpa_job: null dataset");
  }
  if (spec.models.empty()) {
    throw std::invalid_argument("run_cpa_job: no power models");
  }
  // A throwaway reader resolves the dataset's shape; each shard below
  // builds its own single-threaded reader over the same shared bytes.
  store::TraceFileReader probe(dataset);
  const auto& channels = probe.channels();
  const util::FourCc wanted(spec.channel);
  const auto it = std::find(channels.begin(), channels.end(), wanted);
  if (it == channels.end()) {
    throw std::invalid_argument("run_cpa_job: dataset has no channel " +
                                wanted.str());
  }
  const std::size_t column = static_cast<std::size_t>(it - channels.begin());

  const std::uint64_t total =
      spec.trace_count == 0 ? probe.trace_count()
                            : std::min<std::uint64_t>(spec.trace_count,
                                                      probe.trace_count());
  if (total == 0) {
    throw std::invalid_argument("run_cpa_job: dataset holds no traces");
  }
  const std::uint32_t shards = resolved_shards(spec.shards);
  if (shards > total) {
    throw std::invalid_argument("run_cpa_job: more shards than traces");
  }

  // Shards run sequentially and merge in shard order: the result depends
  // on (dataset, spec) only, never on scheduling. The daemon gets its
  // concurrency from running many jobs at once, not from one job.
  core::CpaEngine engine(spec.models);
  core::TraceBatch batch(channels.size());
  std::uint64_t consumed = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::size_t begin = core::shard_begin(total, shards, s);
    const std::size_t count = core::shard_size(total, shards, s);
    core::CpaEngine shard_engine(spec.models);
    store::FileTraceSource source(
        std::make_unique<store::TraceFileReader>(dataset), begin, count);
    std::size_t left = count;
    while (left > 0) {
      const std::size_t take = std::min(job_batch, left);
      batch.clear();
      batch.resize(take);
      source.collect_batch(batch);
      shard_engine.add_batch(batch, column);
      left -= take;
      consumed += take;
      if (progress) {
        progress(consumed, total);
      }
    }
    engine.merge(shard_engine);
  }

  CpaJobResult result;
  result.traces = total;
  const auto round_keys = aes::Aes128::expand_key(spec.known_key);
  result.models.reserve(spec.models.size());
  for (const power::PowerModel model : spec.models) {
    result.models.push_back(engine.analyze(model, round_keys));
  }
  return result;
}

TvlaJobResult run_tvla_job(std::shared_ptr<const store::SharedMapping> dataset,
                           const TvlaJobSpec& spec,
                           const JobProgressFn& progress) {
  if (dataset == nullptr) {
    throw std::invalid_argument("run_tvla_job: null dataset");
  }
  store::TraceFileReader probe(dataset);
  const std::size_t channel_count = probe.channels().size();
  const std::uint64_t block = probe.trace_count() / 6;
  if (block == 0) {
    throw std::invalid_argument(
        "run_tvla_job: dataset holds fewer than 6 traces");
  }
  const std::uint64_t per_set =
      spec.traces_per_set == 0 ? block : spec.traces_per_set;
  if (per_set > block) {
    throw std::invalid_argument(
        "run_tvla_job: traces_per_set exceeds the dataset's set size");
  }
  const std::uint32_t shards = resolved_shards(spec.shards);
  if (shards > per_set) {
    throw std::invalid_argument("run_tvla_job: more shards than traces");
  }
  const std::uint64_t total = 6 * per_set;

  // Positional labels (see jobs.h): set k = rows [k * block, k * block +
  // per_set), class k % 3, primed k >= 3 — TVLA protocol order. Shard s
  // takes its shard_size slice of every set; one sink per shard, merged
  // in shard order, mirrors the live campaign's structure.
  core::TvlaSink merged(channel_count);
  core::TraceBatch batch(channel_count);
  std::uint64_t consumed = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    core::TvlaSink sink(channel_count);
    for (std::size_t set = 0; set < 6; ++set) {
      const core::BatchLabel label = core::BatchLabel::tvla(
          core::all_plaintext_classes[set % 3], set >= 3);
      const std::size_t begin = set * block +
                                core::shard_begin(per_set, shards, s);
      const std::size_t count = core::shard_size(per_set, shards, s);
      store::FileTraceSource source(
          std::make_unique<store::TraceFileReader>(dataset), begin, count);
      std::size_t left = count;
      while (left > 0) {
        const std::size_t take = std::min(job_batch, left);
        batch.clear();
        batch.resize(take);
        source.collect_batch(batch);
        sink.consume(batch, label);
        left -= take;
        consumed += take;
        if (progress) {
          progress(consumed, total);
        }
      }
    }
    merged.merge(sink);
  }

  TvlaJobResult result;
  result.traces_per_set = per_set;
  result.channels.reserve(channel_count);
  for (std::size_t c = 0; c < channel_count; ++c) {
    result.channels.push_back({probe.channels()[c].str(),
                               merged.accumulator(c).matrix()});
  }
  return result;
}

}  // namespace psc::bus
