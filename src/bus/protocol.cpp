#include "bus/protocol.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace psc::bus {

namespace {

[[noreturn]] void malformed(const char* what) {
  throw ProtocolError(std::string("bus payload: ") + what);
}

void encode_model_result(PayloadWriter& w, const core::ModelResult& m) {
  w.u8(static_cast<std::uint8_t>(m.model));
  for (const core::ByteRanking& ranking : m.bytes) {
    for (const double c : ranking.correlation) {
      w.f64(c);
    }
  }
  for (const int rank : m.true_ranks) {
    w.u32(static_cast<std::uint32_t>(rank));
  }
  w.block(m.scored_key.data(), m.scored_key.size());
  w.f64(m.ge_bits);
  w.f64(m.mean_rank);
  w.block(m.best_round_key.data(), m.best_round_key.size());
  w.block(m.implied_master_key.data(), m.implied_master_key.size());
  w.u32(static_cast<std::uint32_t>(m.recovered_bytes));
  w.u32(static_cast<std::uint32_t>(m.near_recovered_bytes));
}

power::PowerModel decode_power_model(std::uint8_t v) {
  if (v >= power::all_power_models.size()) {
    malformed("unknown power model");
  }
  return power::all_power_models[v];
}

aes::Block decode_key_block(PayloadReader& r) {
  const std::vector<std::uint8_t> bytes = r.block();
  if (bytes.size() != std::tuple_size_v<aes::Block>) {
    malformed("key block is not 16 bytes");
  }
  aes::Block out;
  std::memcpy(out.data(), bytes.data(), out.size());
  return out;
}

core::ModelResult decode_model_result(PayloadReader& r) {
  core::ModelResult m;
  m.model = decode_power_model(r.u8());
  for (core::ByteRanking& ranking : m.bytes) {
    for (double& c : ranking.correlation) {
      c = r.f64();
    }
  }
  for (int& rank : m.true_ranks) {
    rank = static_cast<int>(r.u32());
  }
  m.scored_key = decode_key_block(r);
  m.ge_bits = r.f64();
  m.mean_rank = r.f64();
  m.best_round_key = decode_key_block(r);
  m.implied_master_key = decode_key_block(r);
  m.recovered_bytes = static_cast<int>(r.u32());
  m.near_recovered_bytes = static_cast<int>(r.u32());
  return m;
}

void encode_ge_curve(PayloadWriter& w,
                     const std::vector<core::GeCurvePoint>& curve) {
  w.u32(static_cast<std::uint32_t>(curve.size()));
  for (const core::GeCurvePoint& point : curve) {
    w.u64(point.traces);
    w.f64(point.ge_bits);
    w.f64(point.mean_rank);
    w.u32(static_cast<std::uint32_t>(point.recovered_bytes));
  }
}

std::vector<core::GeCurvePoint> decode_ge_curve(PayloadReader& r) {
  std::vector<core::GeCurvePoint> curve;
  const std::uint32_t points = r.u32();
  for (std::uint32_t p = 0; p < points; ++p) {
    core::GeCurvePoint point;
    point.traces = static_cast<std::size_t>(r.u64());
    point.ge_bits = r.f64();
    point.mean_rank = r.f64();
    point.recovered_bytes = static_cast<int>(r.u32());
    curve.push_back(point);
  }
  return curve;
}

void encode_tvla_channel(PayloadWriter& w,
                         const core::TvlaChannelResult& channel) {
  w.str(channel.channel);
  for (const auto& row : channel.matrix.t) {
    for (const double t : row) {
      w.f64(t);
    }
  }
}

core::TvlaChannelResult decode_tvla_channel(PayloadReader& r) {
  core::TvlaChannelResult channel;
  channel.channel = r.str();
  for (auto& row : channel.matrix.t) {
    for (double& t : row) {
      t = r.f64();
    }
  }
  return channel;
}

void encode_fourcc_list(PayloadWriter& w,
                        const std::vector<util::FourCc>& keys) {
  w.u32(static_cast<std::uint32_t>(keys.size()));
  for (const util::FourCc key : keys) {
    w.u32(key.code());
  }
}

std::vector<util::FourCc> decode_fourcc_list(PayloadReader& r) {
  std::vector<util::FourCc> keys;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    keys.push_back(util::FourCc(r.u32()));
  }
  return keys;
}

void encode_summary(PayloadWriter& w, const store::DatasetSummary& s) {
  w.str(s.path);
  w.u16(s.format_version);
  w.u64(s.trace_count);
  w.u64(s.file_bytes);
  w.u64(s.chunk_count);
  w.u64(s.chunk_capacity);
  w.u32(static_cast<std::uint32_t>(s.channels.size()));
  for (const std::string& channel : s.channels) {
    w.str(channel);
  }
  w.u32(static_cast<std::uint32_t>(s.metadata.size()));
  for (const auto& [key, value] : s.metadata) {
    w.str(key);
    w.str(value);
  }
  w.u32(static_cast<std::uint32_t>(s.columns.size()));
  for (const store::DatasetColumnSummary& col : s.columns) {
    w.str(col.name);
    w.u64(col.chunks_coded);
    w.u64(col.raw_bytes);
    w.u64(col.stored_bytes);
  }
}

store::DatasetSummary decode_summary(PayloadReader& r) {
  store::DatasetSummary s;
  s.path = r.str();
  s.format_version = r.u16();
  s.trace_count = r.u64();
  s.file_bytes = r.u64();
  s.chunk_count = r.u64();
  s.chunk_capacity = r.u64();
  const std::uint32_t channels = r.u32();
  for (std::uint32_t c = 0; c < channels; ++c) {
    s.channels.push_back(r.str());
  }
  const std::uint32_t pairs = r.u32();
  for (std::uint32_t i = 0; i < pairs; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    s.metadata.emplace_back(std::move(key), std::move(value));
  }
  const std::uint32_t columns = r.u32();
  for (std::uint32_t c = 0; c < columns; ++c) {
    store::DatasetColumnSummary col;
    col.name = r.str();
    col.chunks_coded = r.u64();
    col.raw_bytes = r.u64();
    col.stored_bytes = r.u64();
    s.columns.push_back(std::move(col));
  }
  return s;
}

}  // namespace

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::bad_request:
      return "bad_request";
    case ErrorCode::unknown_dataset:
      return "unknown_dataset";
    case ErrorCode::unknown_job:
      return "unknown_job";
    case ErrorCode::quota_exceeded:
      return "quota_exceeded";
    case ErrorCode::shutting_down:
      return "shutting_down";
    case ErrorCode::internal:
      return "internal";
    case ErrorCode::unknown_scenario:
      return "unknown_scenario";
  }
  return "unknown";
}

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::queued:
      return "queued";
    case JobState::running:
      return "running";
    case JobState::done:
      return "done";
    case JobState::failed:
      return "failed";
  }
  return "unknown";
}

// ---------- PayloadWriter ----------

void PayloadWriter::u8(std::uint8_t v) {
  bytes_.push_back(static_cast<std::byte>(v));
}

void PayloadWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void PayloadWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void PayloadWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void PayloadWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void PayloadWriter::str(const std::string& s) { block(s.data(), s.size()); }

void PayloadWriter::block(const void* data, std::size_t size) {
  u32(static_cast<std::uint32_t>(size));
  const std::byte* p = static_cast<const std::byte*>(data);
  bytes_.insert(bytes_.end(), p, p + size);
}

// ---------- PayloadReader ----------

const std::byte* PayloadReader::need(std::size_t n) {
  if (n > size_ - pos_) {
    malformed("truncated payload");
  }
  const std::byte* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t PayloadReader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint16_t PayloadReader::u16() {
  const std::byte* p = need(2);
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint8_t>(p[1]) << 8));
}

std::uint32_t PayloadReader::u32() {
  const std::byte* p = need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t PayloadReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

double PayloadReader::f64() { return std::bit_cast<double>(u64()); }

std::string PayloadReader::str() {
  const std::uint32_t len = u32();
  const std::byte* p = need(len);
  return std::string(reinterpret_cast<const char*>(p), len);
}

std::vector<std::uint8_t> PayloadReader::block() {
  const std::uint32_t len = u32();
  const std::byte* p = need(len);
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(p);
  return std::vector<std::uint8_t>(bytes, bytes + len);
}

void PayloadReader::raw(void* out, std::size_t size) {
  std::memcpy(out, need(size), size);
}

void PayloadReader::expect_end() const {
  if (pos_ != size_) {
    malformed("trailing bytes after message body");
  }
}

// ---------- message bodies ----------

void ErrorMsg::encode(PayloadWriter& w) const {
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
}

ErrorMsg ErrorMsg::decode(PayloadReader& r) {
  ErrorMsg m;
  m.code = static_cast<ErrorCode>(r.u16());
  m.message = r.str();
  r.expect_end();
  return m;
}

void OpenDatasetMsg::encode(PayloadWriter& w) const {
  w.str(name);
  w.str(path);
}

OpenDatasetMsg OpenDatasetMsg::decode(PayloadReader& r) {
  OpenDatasetMsg m;
  m.name = r.str();
  m.path = r.str();
  r.expect_end();
  return m;
}

void DatasetListMsg::encode(PayloadWriter& w) const {
  w.u32(static_cast<std::uint32_t>(datasets.size()));
  for (const Entry& entry : datasets) {
    w.str(entry.name);
    encode_summary(w, entry.summary);
  }
}

DatasetListMsg DatasetListMsg::decode(PayloadReader& r) {
  DatasetListMsg m;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    entry.name = r.str();
    entry.summary = decode_summary(r);
    m.datasets.push_back(std::move(entry));
  }
  r.expect_end();
  return m;
}

void SubmitCpaMsg::encode(PayloadWriter& w) const {
  w.str(dataset);
  w.u32(spec.channel);
  w.block(spec.known_key.data(), spec.known_key.size());
  w.u32(static_cast<std::uint32_t>(spec.models.size()));
  for (const power::PowerModel model : spec.models) {
    w.u8(static_cast<std::uint8_t>(model));
  }
  w.u64(spec.trace_count);
  w.u32(spec.shards);
}

SubmitCpaMsg SubmitCpaMsg::decode(PayloadReader& r) {
  SubmitCpaMsg m;
  m.dataset = r.str();
  m.spec.channel = r.u32();
  m.spec.known_key = decode_key_block(r);
  const std::uint32_t models = r.u32();
  if (models == 0 || models > power::all_power_models.size()) {
    malformed("bad model count");
  }
  m.spec.models.clear();
  for (std::uint32_t i = 0; i < models; ++i) {
    m.spec.models.push_back(decode_power_model(r.u8()));
  }
  m.spec.trace_count = r.u64();
  m.spec.shards = r.u32();
  r.expect_end();
  return m;
}

void SubmitTvlaMsg::encode(PayloadWriter& w) const {
  w.str(dataset);
  w.u64(spec.traces_per_set);
  w.u32(spec.shards);
}

SubmitTvlaMsg SubmitTvlaMsg::decode(PayloadReader& r) {
  SubmitTvlaMsg m;
  m.dataset = r.str();
  m.spec.traces_per_set = r.u64();
  m.spec.shards = r.u32();
  r.expect_end();
  return m;
}

void SubmitScenarioMsg::encode(PayloadWriter& w) const {
  w.str(spec.scenario);
  w.u32(static_cast<std::uint32_t>(spec.params.size()));
  for (const auto& [key, value] : spec.params) {
    w.str(key);
    w.str(value);
  }
  w.u64(spec.traces_per_set);
  w.u64(spec.seed);
  w.u32(spec.shards);
}

SubmitScenarioMsg SubmitScenarioMsg::decode(PayloadReader& r) {
  SubmitScenarioMsg m;
  m.spec.scenario = r.str();
  const std::uint32_t params = r.u32();
  for (std::uint32_t i = 0; i < params; ++i) {
    std::string key = r.str();
    std::string value = r.str();
    m.spec.params.emplace_back(std::move(key), std::move(value));
  }
  m.spec.traces_per_set = r.u64();
  m.spec.seed = r.u64();
  m.spec.shards = r.u32();
  r.expect_end();
  return m;
}

void ScenarioListMsg::encode(PayloadWriter& w) const {
  w.u32(static_cast<std::uint32_t>(scenarios.size()));
  for (const Entry& entry : scenarios) {
    w.str(entry.name);
    w.str(entry.description);
    w.str(entry.victim);
    w.str(entry.channel);
    w.u32(static_cast<std::uint32_t>(entry.params.size()));
    for (const scenario::ParamSpec& param : entry.params) {
      w.str(param.name);
      w.str(param.default_value);
      w.str(param.description);
    }
    encode_fourcc_list(w, entry.channels);
    w.u8(entry.cpa ? 1 : 0);
    w.u64(entry.default_traces_per_set);
  }
}

ScenarioListMsg ScenarioListMsg::decode(PayloadReader& r) {
  ScenarioListMsg m;
  const std::uint32_t count = r.u32();
  for (std::uint32_t i = 0; i < count; ++i) {
    Entry entry;
    entry.name = r.str();
    entry.description = r.str();
    entry.victim = r.str();
    entry.channel = r.str();
    const std::uint32_t params = r.u32();
    for (std::uint32_t p = 0; p < params; ++p) {
      scenario::ParamSpec param;
      param.name = r.str();
      param.default_value = r.str();
      param.description = r.str();
      entry.params.push_back(std::move(param));
    }
    entry.channels = decode_fourcc_list(r);
    const std::uint8_t cpa = r.u8();
    if (cpa > 1) {
      malformed("bad cpa flag");
    }
    entry.cpa = cpa != 0;
    entry.default_traces_per_set = r.u64();
    m.scenarios.push_back(std::move(entry));
  }
  r.expect_end();
  return m;
}

void JobIdMsg::encode(PayloadWriter& w) const { w.u64(id); }

JobIdMsg JobIdMsg::decode(PayloadReader& r) {
  JobIdMsg m;
  m.id = r.u64();
  r.expect_end();
  return m;
}

void JobStatusMsg::encode(PayloadWriter& w) const {
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(state));
  w.u64(consumed);
  w.u64(total);
  w.u32(running_shards);
  w.str(error);
}

JobStatusMsg JobStatusMsg::decode(PayloadReader& r) {
  JobStatusMsg m;
  m.id = r.u64();
  const std::uint8_t state = r.u8();
  if (state > static_cast<std::uint8_t>(JobState::failed)) {
    malformed("unknown job state");
  }
  m.state = static_cast<JobState>(state);
  m.consumed = r.u64();
  m.total = r.u64();
  m.running_shards = r.u32();
  m.error = r.str();
  r.expect_end();
  return m;
}

void ProgressMsg::encode(PayloadWriter& w) const {
  w.u64(id);
  w.u64(consumed);
  w.u64(total);
  w.u32(running_shards);
}

ProgressMsg ProgressMsg::decode(PayloadReader& r) {
  ProgressMsg m;
  m.id = r.u64();
  m.consumed = r.u64();
  m.total = r.u64();
  m.running_shards = r.u32();
  r.expect_end();
  return m;
}

void StatsMsg::encode(PayloadWriter& w) const {
  w.u64(cache_hits);
  w.u64(cache_misses);
  w.u64(cache_evictions);
  w.u64(cache_resident_bytes);
  w.u64(cache_capacity_bytes);
  w.u64(cache_entries);
  w.u64(jobs_submitted);
  w.u64(jobs_active);
  w.u32(pool_threads);
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const JobRow& job : jobs) {
    w.u64(job.id);
    w.u8(static_cast<std::uint8_t>(job.state));
    w.u32(job.shards);
    w.u32(job.shard_cap);
    w.u32(job.running_shards);
    w.u32(job.peak_shards);
  }
}

StatsMsg StatsMsg::decode(PayloadReader& r) {
  StatsMsg m;
  m.cache_hits = r.u64();
  m.cache_misses = r.u64();
  m.cache_evictions = r.u64();
  m.cache_resident_bytes = r.u64();
  m.cache_capacity_bytes = r.u64();
  m.cache_entries = r.u64();
  m.jobs_submitted = r.u64();
  m.jobs_active = r.u64();
  m.pool_threads = r.u32();
  const std::uint32_t count = r.u32();
  m.jobs.reserve(std::min<std::size_t>(count, r.remaining()));
  for (std::uint32_t i = 0; i < count; ++i) {
    JobRow job;
    job.id = r.u64();
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(JobState::failed)) {
      malformed("unknown job state");
    }
    job.state = static_cast<JobState>(state);
    job.shards = r.u32();
    job.shard_cap = r.u32();
    job.running_shards = r.u32();
    job.peak_shards = r.u32();
    m.jobs.push_back(job);
  }
  r.expect_end();
  return m;
}

void CpaResultMsg::encode(PayloadWriter& w) const {
  w.u64(id);
  w.u64(result.traces);
  w.u32(static_cast<std::uint32_t>(result.models.size()));
  for (const core::ModelResult& m : result.models) {
    encode_model_result(w, m);
  }
}

CpaResultMsg CpaResultMsg::decode(PayloadReader& r) {
  CpaResultMsg m;
  m.id = r.u64();
  m.result.traces = r.u64();
  const std::uint32_t models = r.u32();
  if (models > power::all_power_models.size()) {
    malformed("bad model count");
  }
  for (std::uint32_t i = 0; i < models; ++i) {
    m.result.models.push_back(decode_model_result(r));
  }
  r.expect_end();
  return m;
}

void TvlaResultMsg::encode(PayloadWriter& w) const {
  w.u64(id);
  w.u64(result.traces_per_set);
  w.u32(static_cast<std::uint32_t>(result.channels.size()));
  for (const core::TvlaChannelResult& channel : result.channels) {
    w.str(channel.channel);
    for (const auto& row : channel.matrix.t) {
      for (const double t : row) {
        w.f64(t);
      }
    }
  }
}

TvlaResultMsg TvlaResultMsg::decode(PayloadReader& r) {
  TvlaResultMsg m;
  m.id = r.u64();
  m.result.traces_per_set = r.u64();
  const std::uint32_t channels = r.u32();
  for (std::uint32_t c = 0; c < channels; ++c) {
    core::TvlaChannelResult channel;
    channel.channel = r.str();
    for (auto& row : channel.matrix.t) {
      for (double& t : row) {
        t = r.f64();
      }
    }
    m.result.channels.push_back(std::move(channel));
  }
  r.expect_end();
  return m;
}

void ScenarioResultMsg::encode(PayloadWriter& w) const {
  w.u64(id);
  w.str(result.scenario);
  w.block(result.secret.data(), result.secret.size());
  w.u64(result.traces_per_set);
  w.u64(result.cpa_trace_count);
  encode_fourcc_list(w, result.channels);
  encode_fourcc_list(w, result.leakage_channels);
  w.u32(static_cast<std::uint32_t>(result.tvla.size()));
  for (const core::TvlaChannelResult& channel : result.tvla) {
    encode_tvla_channel(w, channel);
  }
  w.u32(static_cast<std::uint32_t>(result.cpa.size()));
  for (const core::CpaKeyResult& key : result.cpa) {
    w.u32(key.key.code());
    w.u32(static_cast<std::uint32_t>(key.final_results.size()));
    for (const core::ModelResult& model : key.final_results) {
      encode_model_result(w, model);
    }
    w.u32(static_cast<std::uint32_t>(key.curves.size()));
    for (const std::vector<core::GeCurvePoint>& curve : key.curves) {
      encode_ge_curve(w, curve);
    }
  }
}

ScenarioResultMsg ScenarioResultMsg::decode(PayloadReader& r) {
  ScenarioResultMsg m;
  m.id = r.u64();
  m.result.scenario = r.str();
  m.result.secret = decode_key_block(r);
  m.result.traces_per_set = static_cast<std::size_t>(r.u64());
  m.result.cpa_trace_count = static_cast<std::size_t>(r.u64());
  m.result.channels = decode_fourcc_list(r);
  m.result.leakage_channels = decode_fourcc_list(r);
  const std::uint32_t tvla = r.u32();
  for (std::uint32_t c = 0; c < tvla; ++c) {
    m.result.tvla.push_back(decode_tvla_channel(r));
  }
  const std::uint32_t cpa = r.u32();
  for (std::uint32_t k = 0; k < cpa; ++k) {
    core::CpaKeyResult key;
    key.key = util::FourCc(r.u32());
    const std::uint32_t models = r.u32();
    if (models > power::all_power_models.size()) {
      malformed("bad model count");
    }
    for (std::uint32_t i = 0; i < models; ++i) {
      key.final_results.push_back(decode_model_result(r));
    }
    const std::uint32_t curves = r.u32();
    if (curves > power::all_power_models.size()) {
      malformed("bad curve count");
    }
    for (std::uint32_t i = 0; i < curves; ++i) {
      key.curves.push_back(decode_ge_curve(r));
    }
    m.result.cpa.push_back(std::move(key));
  }
  r.expect_end();
  return m;
}

}  // namespace psc::bus
