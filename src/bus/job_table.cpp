#include "bus/job_table.h"

#include <algorithm>
#include <utility>

namespace psc::bus {

namespace {

JobStatusMsg status_of(const Job& job) {
  JobStatusMsg msg;
  msg.id = job.id;
  msg.state = job.state;
  msg.consumed = job.consumed;
  msg.total = job.total;
  msg.running_shards = job.running_shards;
  msg.error = job.error;
  return msg;
}

bool terminal(JobState state) {
  return state == JobState::done || state == JobState::failed;
}

}  // namespace

std::uint64_t JobTable::submit(std::uint64_t session, JobKind kind,
                               std::string dataset, const CpaJobSpec& cpa,
                               const TvlaJobSpec& tvla,
                               const ScenarioJobSpec& scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t& in_flight = in_flight_[session];
  if (in_flight >= quota_) {
    return 0;
  }
  ++in_flight;
  ++submitted_;
  ++active_;
  auto job = std::make_shared<Job>();
  job->id = next_id_++;
  job->session = session;
  job->kind = kind;
  job->dataset = std::move(dataset);
  job->cpa_spec = cpa;
  job->tvla_spec = tvla;
  job->scenario_spec = scenario;
  jobs_.emplace(job->id, job);
  change_cv_.notify_all();
  return job->id;
}

std::unique_ptr<JobStatusMsg> JobTable::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return nullptr;
  }
  return std::make_unique<JobStatusMsg>(status_of(*it->second));
}

std::shared_ptr<Job> JobTable::find(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void JobTable::mark_running(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end() && it->second->state == JobState::queued) {
    it->second->state = JobState::running;
    change_cv_.notify_all();
  }
}

void JobTable::update_progress(std::uint64_t id, std::uint64_t consumed,
                               std::uint64_t total) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) {
    Job& job = *it->second;
    if (consumed > job.consumed) {
      job.consumed = consumed;
    }
    job.total = total;
    change_cv_.notify_all();
  }
}

void JobTable::update_shard_activity(std::uint64_t id, std::uint32_t shards,
                                     std::uint32_t running) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return;
  }
  Job& job = *it->second;
  job.shards = shards;
  job.running_shards = running;
  job.peak_shards = std::max(job.peak_shards, running);
}

std::uint32_t JobTable::shard_budget(std::uint64_t id,
                                     std::uint32_t parallelism) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t share = static_cast<std::uint32_t>(
      parallelism / std::max<std::size_t>(1, active_));
  const std::uint32_t cap = std::max<std::uint32_t>(1, share);
  const auto it = jobs_.find(id);
  if (it != jobs_.end()) {
    it->second->shard_cap = cap;
  }
  return cap;
}

void JobTable::fill_stats(StatsMsg& msg) const {
  std::lock_guard<std::mutex> lock(mu_);
  msg.jobs_submitted = submitted_;
  msg.jobs_active = active_;
  for (const auto& [id, job] : jobs_) {
    if (terminal(job->state)) {
      continue;
    }
    msg.jobs.push_back({job->id, job->state, job->shards, job->shard_cap,
                        job->running_shards, job->peak_shards});
  }
  std::sort(msg.jobs.begin(), msg.jobs.end(),
            [](const StatsMsg::JobRow& a, const StatsMsg::JobRow& b) {
              return a.id < b.id;
            });
}

void JobTable::mark_done(std::uint64_t id, std::unique_ptr<CpaJobResult> cpa,
                         std::unique_ptr<TvlaJobResult> tvla,
                         std::unique_ptr<ScenarioJobResult> scenario) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || terminal(it->second->state)) {
    return;
  }
  Job& job = *it->second;
  job.state = JobState::done;
  job.cpa_result = std::move(cpa);
  job.tvla_result = std::move(tvla);
  job.scenario_result = std::move(scenario);
  job.consumed = job.total;
  job.running_shards = 0;
  --active_;
  release_slot_locked(job.session);
  change_cv_.notify_all();
}

void JobTable::mark_failed(std::uint64_t id, const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || terminal(it->second->state)) {
    return;
  }
  Job& job = *it->second;
  job.state = JobState::failed;
  job.error = error;
  job.running_shards = 0;
  --active_;
  release_slot_locked(job.session);
  change_cv_.notify_all();
}

std::unique_ptr<JobStatusMsg> JobTable::wait_change(
    std::uint64_t id, JobState seen_state, std::uint64_t seen_consumed,
    std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return nullptr;
  }
  const std::shared_ptr<Job> job = it->second;
  change_cv_.wait_for(lock, timeout, [&] {
    return job->state != seen_state || job->consumed != seen_consumed;
  });
  return std::make_unique<JobStatusMsg>(status_of(*job));
}

void JobTable::wait_idle() const {
  std::unique_lock<std::mutex> lock(mu_);
  change_cv_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_) {
      if (!terminal(job->state)) {
        return false;
      }
    }
    return true;
  });
}

std::size_t JobTable::in_flight(std::uint64_t session) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = in_flight_.find(session);
  return it == in_flight_.end() ? 0 : it->second;
}

std::size_t JobTable::job_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void JobTable::release_slot_locked(std::uint64_t session) {
  const auto it = in_flight_.find(session);
  if (it != in_flight_.end() && it->second > 0) {
    if (--it->second == 0) {
      in_flight_.erase(it);
    }
  }
}

}  // namespace psc::bus
