// Session + job table of the bus daemon: tracks every submitted
// campaign job through queued -> running -> done/failed, enforces
// per-session in-flight quotas, and wakes watchers on any change.
//
// Quota accounting is the part the robustness tests lean on: a session's
// in-flight count is charged at submit and released exactly once when
// the job reaches a terminal state — even if the submitting client
// disconnected long before (mid-job disconnect must not leak the job
// slot, and the job itself runs to completion; results stay fetchable by
// job id from any connection).
//
// The table owns jobs as shared_ptr so worker-pool closures can hold a
// job across the daemon's lifetime edges; all mutable state is guarded
// by one mutex, with a single condition variable for watchers
// (wait_change) and the drain barrier (wait_idle).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "bus/jobs.h"
#include "bus/protocol.h"

namespace psc::bus {

enum class JobKind : std::uint8_t { cpa, tvla, scenario };

// One submitted campaign. Immutable identity fields are set at submit;
// everything mutable is written under JobTable::mu_.
struct Job {
  std::uint64_t id = 0;
  std::uint64_t session = 0;
  JobKind kind = JobKind::cpa;
  std::string dataset;  // empty for scenario jobs (live acquisition)
  CpaJobSpec cpa_spec;
  TvlaJobSpec tvla_spec;
  ScenarioJobSpec scenario_spec;

  JobState state = JobState::queued;
  std::uint64_t consumed = 0;
  std::uint64_t total = 0;
  // Shard-execution telemetry (STATS frame): resolved shard count,
  // units currently running, high-water running units, and the fair
  // in-flight cap last granted to this job.
  std::uint32_t shards = 0;
  std::uint32_t running_shards = 0;
  std::uint32_t peak_shards = 0;
  std::uint32_t shard_cap = 0;
  std::string error;
  // Set on done, by kind.
  std::unique_ptr<CpaJobResult> cpa_result;
  std::unique_ptr<TvlaJobResult> tvla_result;
  std::unique_ptr<ScenarioJobResult> scenario_result;
};

class JobTable {
 public:
  explicit JobTable(std::size_t per_session_quota)
      : quota_(per_session_quota) {}

  // Registers a job for `session`, charging its quota. Returns the job
  // id, or 0 when the session already has `quota` jobs in flight.
  // Scenario jobs carry no dataset; the other kinds leave `scenario`
  // defaulted.
  std::uint64_t submit(std::uint64_t session, JobKind kind,
                       std::string dataset, const CpaJobSpec& cpa,
                       const TvlaJobSpec& tvla,
                       const ScenarioJobSpec& scenario = {});

  // Point-in-time status copy; nullptr when the id is unknown.
  std::unique_ptr<JobStatusMsg> status(std::uint64_t id) const;

  // The job's shared handle (for the executor and result fetch);
  // nullptr when unknown.
  std::shared_ptr<Job> find(std::uint64_t id) const;

  // State transitions, called from the executing worker thread. Each
  // terminal transition (done/failed) releases the owning session's
  // quota slot exactly once and wakes all waiters.
  void mark_running(std::uint64_t id);
  // Monotonic: under shard-parallel execution progress reports arrive
  // out of order from pool threads, so only a larger `consumed` value
  // advances the watermark (watchers never see progress regress).
  void update_progress(std::uint64_t id, std::uint64_t consumed,
                       std::uint64_t total);
  // Records shard-unit activity on the job row (STATS frame); called
  // concurrently from unit threads as they start and finish.
  void update_shard_activity(std::uint64_t id, std::uint32_t shards,
                             std::uint32_t running);

  // Fair in-flight shard budget for job `id`: `parallelism` total units
  // split evenly across non-terminal jobs, never below 1. Re-read by the
  // job before each shard unit is issued, so a running job's window
  // shrinks as new jobs arrive and regrows as others drain — the piece
  // that stops one huge job from starving small ones. The grant is
  // remembered on the job row for STATS.
  std::uint32_t shard_budget(std::uint64_t id, std::uint32_t parallelism);

  // Fills the scheduler half of a STATS frame: lifetime submit count,
  // active (non-terminal) count, and one row per non-terminal job in id
  // order.
  void fill_stats(StatsMsg& msg) const;
  void mark_done(std::uint64_t id, std::unique_ptr<CpaJobResult> cpa,
                 std::unique_ptr<TvlaJobResult> tvla,
                 std::unique_ptr<ScenarioJobResult> scenario = nullptr);
  void mark_failed(std::uint64_t id, const std::string& error);

  // Blocks until the job's (state, consumed) differs from the caller's
  // last observation or `timeout` elapses; returns the fresh status
  // (nullptr for unknown id). The watch loop's building block.
  std::unique_ptr<JobStatusMsg> wait_change(std::uint64_t id,
                                            JobState seen_state,
                                            std::uint64_t seen_consumed,
                                            std::chrono::milliseconds timeout)
      const;

  // Blocks until no job is queued or running — the graceful-shutdown
  // drain barrier.
  void wait_idle() const;

  // In-flight (queued + running) jobs charged to `session`.
  std::size_t in_flight(std::uint64_t session) const;

  std::size_t job_count() const;

 private:
  void release_slot_locked(std::uint64_t session);

  const std::size_t quota_;
  mutable std::mutex mu_;
  mutable std::condition_variable change_cv_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::size_t active_ = 0;  // non-terminal jobs (fair-share denominator)
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::unordered_map<std::uint64_t, std::size_t> in_flight_;
};

}  // namespace psc::bus
