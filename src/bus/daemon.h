// BusDaemon: the long-running campaign server of psc::bus.
//
// One accept-loop thread plus one thread per client connection speak the
// framed protocol of bus/protocol.h over a Unix-domain socket. Submitted
// campaigns become job-table entries executed shard-parallel: each job
// gets a dedicated driver thread (drivers mostly block, so they must not
// occupy pool slots) that fans the job's shard units out on the
// process-wide core::WorkerPool and merges them in shard order. All
// jobs' units interleave in the pool's FIFO queue, and each driver
// re-reads its fair in-flight cap (JobTable::shard_budget — the shard
// parallelism budget split evenly over active jobs) before issuing a
// unit, so one huge job shrinks its window as small jobs arrive instead
// of starving them; every job's result stays a pure function of
// (dataset, spec) regardless. Datasets resolve through the
// DatasetRegistry: one shared mmap per file, any number of jobs on top,
// with a shared store::ChunkCache so concurrent jobs decode each
// compressed chunk once.
//
// Shutdown is graceful by construction: a stop request (stop(), the
// SHUTDOWN message, or SIGINT/SIGTERM via install_signal_handlers) first
// flips `stopping_` — new submits are rejected with shutting_down —
// then drains the job table, and only then tears down sockets and joins
// threads. A client watching a job across shutdown sees its final
// JOB_DONE before the connection drops. All teardown runs on a
// dedicated stopper thread, so stop may be requested from a signal
// handler (async-signal-safe self-pipe write), a connection thread
// (SHUTDOWN message) or any caller without self-join deadlocks.
//
// A misbehaving client costs exactly its own connection: frame-level
// garbage (bad magic/version/CRC, oversize, truncation) raises
// ProtocolError in that connection's thread, which answers with one
// best-effort ERROR frame and closes — the daemon, other sessions, and
// any jobs the client had in flight are untouched (quota slots release
// when those jobs finish).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bus/dataset_registry.h"
#include "bus/framing.h"
#include "bus/job_table.h"
#include "util/env.h"

namespace psc::store {
class ChunkCache;
}

namespace psc::bus {

struct BusDaemonConfig {
  std::string socket_path;
  // Max queued+running jobs per client connection.
  std::size_t per_session_quota = 4;
  // Worker-pool threads reserved at start() so that shard units from
  // many concurrent jobs actually run in parallel
  // (core::WorkerPool::reserve).
  std::size_t pool_reserve = 4;
  // Total shard units allowed in flight across all jobs, split fairly
  // over active jobs (see JobTable::shard_budget). 0 = pool_reserve.
  // 1 pins every job to sequential shard execution.
  std::size_t shard_parallelism = 0;
  // Decoded-chunk cache budget in MiB, shared by all jobs; 0 disables
  // the cache (every shard reader then decodes privately).
  std::size_t chunk_cache_mb = util::env_size("PSC_BUS_CHUNK_CACHE_MB", 256);
  // Datasets registered before the socket opens: (name, path).
  std::vector<std::pair<std::string, std::string>> datasets;
};

class BusDaemon {
 public:
  explicit BusDaemon(BusDaemonConfig config);
  ~BusDaemon();  // stops gracefully if still running
  BusDaemon(const BusDaemon&) = delete;
  BusDaemon& operator=(const BusDaemon&) = delete;

  // Opens registered datasets, binds the socket and starts serving.
  // Throws (and leaves nothing running) when a dataset or the socket
  // path is unusable.
  void start();

  // Requests a graceful stop and blocks until teardown finished.
  // Idempotent; callable from any thread.
  void stop();

  // Blocks until the daemon stopped (by stop(), SHUTDOWN or a signal).
  void wait();

  bool stopping() const noexcept {
    return stopping_.load(std::memory_order_acquire);
  }

  const std::string& socket_path() const noexcept {
    return config_.socket_path;
  }
  DatasetRegistry& registry() noexcept { return registry_; }
  JobTable& jobs() noexcept { return *jobs_; }

  // Routes SIGINT/SIGTERM to daemon.stop() via an async-signal-safe
  // self-pipe write. One daemon per process can own the handlers.
  static void install_signal_handlers(BusDaemon& daemon);

 private:
  void accept_loop();
  void handle_connection(Socket* socket, std::uint64_t session);
  // One request; returns false when the connection should close.
  bool dispatch(Socket& socket, std::uint64_t session, MsgType type,
                const std::vector<std::byte>& payload);
  void submit_job(Socket& socket, std::uint64_t session, JobKind kind,
                  std::string dataset, const CpaJobSpec& cpa,
                  const TvlaJobSpec& tvla);
  // SUBMIT_SCENARIO: validates the name against the built-in registry
  // (unknown_scenario) and the params against its specs (bad_request)
  // before accepting — either failure is a typed ERROR frame on a
  // connection that stays open.
  void submit_scenario_job(Socket& socket, std::uint64_t session,
                           ScenarioJobSpec spec);
  void stream_watch(Socket& socket, std::uint64_t id);
  void send_result(Socket& socket, std::uint64_t id);
  void request_stop();  // async: nudges the stopper thread
  void stopper_loop();
  void do_stop();
  std::uint32_t shard_parallelism() const noexcept;
  void reap_drivers_locked();

  BusDaemonConfig config_;
  DatasetRegistry registry_;
  // Shared decoded-chunk cache (null when chunk_cache_mb == 0); handed
  // to every job's exec options and to the registry for drop-on-close.
  std::shared_ptr<store::ChunkCache> chunk_cache_;
  // shared_ptr: posted job closures capture the table so a job finishing
  // after teardown (never happens under the drain, but the pool contract
  // demands ownership) touches valid memory.
  std::shared_ptr<JobTable> jobs_;

  // One driver thread per submitted job (see file comment). `done` lets
  // submit_job reap finished drivers eagerly; do_stop joins the rest
  // after the job-table drain.
  struct JobDriver {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex drivers_mu_;
  std::vector<JobDriver> drivers_;

  std::unique_ptr<Listener> listener_;
  std::thread accept_thread_;
  std::thread stopper_thread_;
  int stop_pipe_[2] = {-1, -1};  // [0] read end, [1] write end

  std::mutex conn_mu_;
  std::uint64_t next_session_ = 1;
  // Live connections by session; entries point at the owning thread's
  // stack Socket and are erased (under conn_mu_) before that Socket
  // closes, so do_stop's shutdown sweep never touches a dead fd.
  std::vector<std::pair<std::uint64_t, Socket*>> connections_;
  std::vector<std::thread> conn_threads_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ = false;
};

}  // namespace psc::bus
