// Campaign jobs the bus daemon executes over shared mmap'd datasets.
//
// run_cpa_job / run_tvla_job are the single compute path for a campaign
// over a recorded PSTR dataset: the daemon runs them on worker-pool
// threads, and in-process verification (`psc_busctl submit --verify-local`,
// the ctest bit-identity suite) calls the same functions directly. A job
// result is a pure function of (dataset bytes, spec): shards execute
// sequentially inside the job and merge in shard order, so the identical
// spec yields bit-identical doubles wherever it runs — which is what
// makes the daemon's results checkable against an independent local run.
// Cross-job parallelism comes from the daemon scheduling many jobs on
// the pool, not from threads inside one job.
//
// TVLA replay labeling: a PSTR file carries no (class, collection)
// labels, so TVLA-over-file assumes the dataset was recorded in TVLA
// protocol order — six equal consecutive sets, unprimed collections of
// (all-0s, all-1s, random) then the primed three, exactly the order
// run_tvla_campaign acquires. Set k of N/6 rows is labeled
// (class k % 3, primed = k >= 3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "core/campaigns.h"
#include "core/cpa.h"
#include "core/tvla.h"
#include "power/hypothetical.h"
#include "store/shared_mapping.h"

namespace psc::bus {

// Progress hook: (traces consumed so far, traces total). Invoked from
// the thread running the job after every ingested batch.
using JobProgressFn =
    std::function<void(std::uint64_t consumed, std::uint64_t total)>;

struct CpaJobSpec {
  std::uint32_t channel = 0;  // FourCC code of the attacked column
  aes::Block known_key{};     // victim key, for ranking/GE
  std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  std::uint64_t trace_count = 0;  // 0 = every recorded trace
  std::uint32_t shards = 1;       // result-determining (0 = 1)
};

struct CpaJobResult {
  std::uint64_t traces = 0;
  // One entry per spec model, in spec order.
  std::vector<core::ModelResult> models;
};

struct TvlaJobSpec {
  std::uint64_t traces_per_set = 0;  // 0 = trace_count / 6
  std::uint32_t shards = 1;          // result-determining (0 = 1)
};

struct TvlaJobResult {
  std::uint64_t traces_per_set = 0;
  // One entry per dataset channel, in column order.
  std::vector<core::TvlaChannelResult> channels;
};

// Runs CPA over the dataset: feeds the spec's trace budget (sharded,
// merged in shard order) into one CpaEngine per run and analyzes every
// spec model against the known key. Throws std::invalid_argument on a
// spec the dataset cannot satisfy (unknown channel, trace_count or
// shards beyond the data).
CpaJobResult run_cpa_job(std::shared_ptr<const store::SharedMapping> dataset,
                         const CpaJobSpec& spec,
                         const JobProgressFn& progress = {});

// Runs TVLA over the dataset under the positional labeling rule above,
// producing one matrix per channel. Throws std::invalid_argument when
// the dataset holds fewer than 6 traces or the spec oversubscribes it.
TvlaJobResult run_tvla_job(std::shared_ptr<const store::SharedMapping> dataset,
                           const TvlaJobSpec& spec,
                           const JobProgressFn& progress = {});

}  // namespace psc::bus
