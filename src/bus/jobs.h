// Campaign jobs the bus daemon executes over shared mmap'd datasets.
//
// run_cpa_job / run_tvla_job are the single compute path for a campaign
// over a recorded PSTR dataset: the daemon runs them under a driver
// thread per job, and in-process verification (`psc_busctl submit
// --verify-local`, the ctest bit-identity suite) calls the same
// functions directly. A job result is a pure function of (dataset bytes,
// spec): each shard accumulates self-contained engine state and the
// partials merge strictly in shard order, so the identical spec yields
// bit-identical doubles wherever — and on however many threads — it
// runs. Shards determine the RESULT; JobExecOptions determine only the
// EXECUTION (the split PR 1 established for campaigns, applied to served
// jobs):
//
//   - Without a shard budget (the default, and the --verify-local path)
//     shards run sequentially on the calling thread.
//   - With one, up to budget() shard units run concurrently as posted
//     worker-pool jobs; the caller drains them in shard order and merges
//     incrementally, so at most ~budget shard engines are alive and the
//     merge order never depends on completion order. The budget is
//     re-read before each unit is issued, which is how the daemon's fair
//     scheduler shrinks a running job's window when new jobs arrive.
//
// TVLA replay labeling: a PSTR file carries no (class, collection)
// labels, so TVLA-over-file assumes the dataset was recorded in TVLA
// protocol order — six equal consecutive sets, unprimed collections of
// (all-0s, all-1s, random) then the primed three, exactly the order
// run_tvla_campaign acquires. Set k of N/6 rows is labeled
// (class k % 3, primed = k >= 3).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "core/campaigns.h"
#include "core/cpa.h"
#include "core/tvla.h"
#include "power/hypothetical.h"
#include "store/shared_mapping.h"

namespace psc::store {
class ChunkCache;  // store/chunk_cache.h
}

namespace psc::bus {

// Progress hook: (traces consumed so far, traces total). `consumed` is
// aggregated across shard units, so under a shard budget the hook may be
// invoked concurrently from pool threads and values may arrive out of
// order; the largest value seen is the true watermark.
using JobProgressFn =
    std::function<void(std::uint64_t consumed, std::uint64_t total)>;

// Auto-sizing cap for spec.shards == 0. The resolved shard count is
// result-determining, so the policy must be a pure function of the trace
// count — never of worker availability, or the daemon and an in-process
// verification run could resolve different counts and mismatch. A job
// therefore auto-sizes to core::min_traces_per_shard-sized shards capped
// at this fixed constant.
inline constexpr std::uint32_t auto_shard_cap = 16;

// Shard count a spec value of `spec_shards` resolves to over
// `total_traces` traces: an explicit count wins verbatim; 0 auto-sizes
// as documented on auto_shard_cap. Identical wherever the job runs.
std::uint32_t resolved_job_shards(std::uint32_t spec_shards,
                                  std::uint64_t total_traces) noexcept;

// Execution knobs — how a job runs, never what it computes.
struct JobExecOptions {
  // Max shard units to keep in flight on the worker pool, re-read before
  // each unit is issued (values < 1 are treated as 1). Null: shards run
  // sequentially on the calling thread, touching no pool state — the
  // in-process verification path.
  std::function<std::uint32_t()> shard_budget;
  // Shared decoded-chunk cache for the shard readers (null = every
  // reader decodes privately, the legacy behavior).
  std::shared_ptr<store::ChunkCache> chunk_cache;
  // Observer of shard-unit activity: (resolved shard count, units
  // currently running). Called once with running = 0 when the shard
  // count resolves, then from unit threads as they start and finish —
  // concurrently under a shard budget.
  std::function<void(std::uint32_t shards, std::uint32_t running)>
      on_shard_activity;
};

struct CpaJobSpec {
  std::uint32_t channel = 0;  // FourCC code of the attacked column
  aes::Block known_key{};     // victim key, for ranking/GE
  std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  std::uint64_t trace_count = 0;  // 0 = every recorded trace
  // Result-determining; 0 auto-sizes (see resolved_job_shards).
  std::uint32_t shards = 0;
};

struct CpaJobResult {
  std::uint64_t traces = 0;
  // One entry per spec model, in spec order.
  std::vector<core::ModelResult> models;
};

struct TvlaJobSpec {
  std::uint64_t traces_per_set = 0;  // 0 = trace_count / 6
  // Result-determining; 0 auto-sizes (see resolved_job_shards), further
  // clamped to traces_per_set.
  std::uint32_t shards = 0;
};

struct TvlaJobResult {
  std::uint64_t traces_per_set = 0;
  // One entry per dataset channel, in column order.
  std::vector<core::TvlaChannelResult> channels;
};

// Runs CPA over the dataset: feeds the spec's trace budget (sharded,
// merged in shard order) into one CpaEngine per run and analyzes every
// spec model against the known key. Throws std::invalid_argument on a
// spec the dataset cannot satisfy (unknown channel, trace_count or
// shards beyond the data).
CpaJobResult run_cpa_job(std::shared_ptr<const store::SharedMapping> dataset,
                         const CpaJobSpec& spec,
                         const JobProgressFn& progress = {},
                         const JobExecOptions& exec = {});

// Runs TVLA over the dataset under the positional labeling rule above,
// producing one matrix per channel. Throws std::invalid_argument when
// the dataset holds fewer than 6 traces or the spec oversubscribes it.
TvlaJobResult run_tvla_job(std::shared_ptr<const store::SharedMapping> dataset,
                           const TvlaJobSpec& spec,
                           const JobProgressFn& progress = {},
                           const JobExecOptions& exec = {});

}  // namespace psc::bus
