// Named dataset registry: the daemon-side map from dataset name to one
// shared mmap of its PSTR file.
//
// Each file is opened exactly once (store::SharedMapping); every job —
// and every shard inside a job — builds its own cheap TraceFileReader
// over the same refcounted bytes, so N concurrent campaigns on one
// dataset share one mapping and one page-cache working set. The summary
// captured at open() comes from chunk headers and column directories
// only (store/dataset_summary.h), so listing never touches chunk data.
//
// Thread-safe: connection threads open/list concurrently with job
// threads resolving mappings. close() only drops the registry's
// reference — jobs holding the mapping keep the bytes alive until they
// finish.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "store/dataset_summary.h"
#include "store/shared_mapping.h"

namespace psc::store {
class ChunkCache;  // store/chunk_cache.h
}

namespace psc::bus {

class DatasetRegistry {
 public:
  // Attaches the daemon's shared decoded-chunk cache: close() then drops
  // the closed dataset's entries. Mapping ids are never reused, so this
  // only frees the bytes earlier — stale aliasing is impossible either
  // way.
  void set_chunk_cache(std::shared_ptr<store::ChunkCache> cache);

  // Opens `path` and registers it under `name`. Throws
  // std::invalid_argument when the name is taken and StoreError when the
  // file does not validate; a failed open registers nothing.
  void open(const std::string& name, const std::string& path);

  // The shared bytes for `name`, or nullptr when unknown.
  std::shared_ptr<const store::SharedMapping> mapping(
      const std::string& name) const;

  // Summary captured at open(), or nullptr when unknown. (Value copy:
  // the registry entry may be closed concurrently.)
  std::unique_ptr<store::DatasetSummary> summary(
      const std::string& name) const;

  // Name-sorted snapshot of everything registered.
  struct Entry {
    std::string name;
    store::DatasetSummary summary;
  };
  std::vector<Entry> list() const;

  // Drops the registry's reference; running jobs are unaffected. Returns
  // false when the name is unknown.
  bool close(const std::string& name);

  std::size_t size() const;

 private:
  struct Dataset {
    std::shared_ptr<const store::SharedMapping> mapping;
    store::DatasetSummary summary;
  };

  mutable std::mutex mu_;
  std::shared_ptr<store::ChunkCache> chunk_cache_;
  std::vector<std::pair<std::string, Dataset>> datasets_;  // name-sorted
};

}  // namespace psc::bus
