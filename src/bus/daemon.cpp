#include "bus/daemon.h"

#include <csignal>
#include <cstring>
#include <stdexcept>
#include <unistd.h>

#include "bus/scenario_jobs.h"
#include "core/parallel.h"
#include "scenario/registry.h"
#include "store/chunk_cache.h"

namespace psc::bus {

namespace {

bool is_terminal(JobState state) noexcept {
  return state == JobState::done || state == JobState::failed;
}

void send_error(const Socket& socket, ErrorCode code,
                const std::string& message) {
  PayloadWriter w;
  ErrorMsg{code, message}.encode(w);
  send_frame(socket, MsgType::error, w);
}

// Write end of the owning daemon's stop pipe, for the signal handler.
// std::atomic<int> is lock-free on every supported target, which keeps
// the handler async-signal-safe.
std::atomic<int> g_signal_fd{-1};

void handle_stop_signal(int /*signo*/) {
  const int fd = g_signal_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 's';
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

BusDaemon::BusDaemon(BusDaemonConfig config)
    : config_(std::move(config)),
      jobs_(std::make_shared<JobTable>(config_.per_session_quota)) {
  // The stop pipe exists from construction so install_signal_handlers
  // may run before start(); a signal delivered in between simply stops
  // the daemon right after it starts.
  if (::pipe(stop_pipe_) != 0) {
    throw BusError(std::string("pipe: ") + std::strerror(errno));
  }
}

BusDaemon::~BusDaemon() {
  if (started_.load(std::memory_order_acquire)) {
    stop();
  }
  if (stopper_thread_.joinable()) {
    stopper_thread_.join();
  }
  // A submit that raced do_stop's drain can leave one last driver behind
  // (its job only touches the table and mapping, both still alive); a
  // joinable thread must not reach the vector's destructor.
  {
    std::lock_guard<std::mutex> lock(drivers_mu_);
    for (JobDriver& driver : drivers_) {
      driver.thread.join();
    }
    drivers_.clear();
  }
  if (g_signal_fd.load(std::memory_order_relaxed) == stop_pipe_[1]) {
    g_signal_fd.store(-1, std::memory_order_relaxed);
  }
  ::close(stop_pipe_[0]);
  ::close(stop_pipe_[1]);
}

void BusDaemon::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    throw BusError("BusDaemon: already started");
  }
  try {
    if (config_.chunk_cache_mb > 0) {
      chunk_cache_ = std::make_shared<store::ChunkCache>(
          config_.chunk_cache_mb * std::size_t{1024} * 1024);
      registry_.set_chunk_cache(chunk_cache_);
    }
    for (const auto& [name, path] : config_.datasets) {
      registry_.open(name, path);
    }
    core::WorkerPool::instance().reserve(config_.pool_reserve);
    listener_ = std::make_unique<Listener>(config_.socket_path);
  } catch (...) {
    started_.store(false, std::memory_order_release);
    throw;
  }
  stopper_thread_ = std::thread([this] { stopper_loop(); });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void BusDaemon::stop() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  request_stop();
  wait();
}

void BusDaemon::wait() {
  if (!started_.load(std::memory_order_acquire)) {
    return;
  }
  std::unique_lock<std::mutex> lock(stopped_mu_);
  stopped_cv_.wait(lock, [&] { return stopped_; });
}

void BusDaemon::install_signal_handlers(BusDaemon& daemon) {
  g_signal_fd.store(daemon.stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

void BusDaemon::request_stop() {
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
}

void BusDaemon::stopper_loop() {
  // Park until anyone requests a stop: stop(), a SHUTDOWN frame (which
  // cannot run the teardown on its own connection thread — it would join
  // itself) or a signal handler.
  for (;;) {
    char byte = 0;
    const ssize_t n = ::read(stop_pipe_[0], &byte, 1);
    if (n == 1 || n == 0) {
      break;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    break;  // pipe broken: stop anyway rather than leak the daemon
  }
  do_stop();
}

void BusDaemon::do_stop() {
  // Order matters: reject new work, drain what is running (watchers get
  // their JOB_DONE while sockets are still healthy), then tear down.
  stopping_.store(true, std::memory_order_release);
  jobs_->wait_idle();

  // Every job is terminal, so each driver is at most a few instructions
  // from returning; join them all before the sockets go away.
  {
    std::lock_guard<std::mutex> lock(drivers_mu_);
    for (JobDriver& driver : drivers_) {
      driver.thread.join();
    }
    drivers_.clear();
  }

  listener_->shutdown();
  // On Linux, shutdown() on a *listening* AF_UNIX socket does not
  // reliably unblock a thread parked in accept(); a throwaway connection
  // does. The accept loop sees stopping_ set and exits.
  try {
    Socket wake = connect_unix(config_.socket_path);
  } catch (...) {
    // Listener already dead: accept() has returned on its own.
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }

  std::vector<std::thread> conn_threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (auto& [session, socket] : connections_) {
      socket->shutdown_both();
    }
    conn_threads = std::move(conn_threads_);
  }
  for (auto& thread : conn_threads) {
    thread.join();
  }

  listener_.reset();  // unlink the socket file

  {
    std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void BusDaemon::accept_loop() {
  for (;;) {
    Socket accepted;
    try {
      accepted = listener_->accept();
    } catch (const BusError&) {
      return;
    }
    if (!accepted.valid()) {
      return;  // listener shut down
    }
    if (stopping_.load(std::memory_order_acquire)) {
      return;  // draining: drop the connection and stop accepting
    }
    // Heap-box the socket and register it before the thread exists, so
    // the shutdown sweep in do_stop can never miss a connection that the
    // accept loop already handed off.
    auto socket = std::make_unique<Socket>(std::move(accepted));
    Socket* raw = socket.get();
    std::uint64_t session = 0;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      session = next_session_++;
      connections_.emplace_back(session, raw);
      conn_threads_.emplace_back(
          [this, session, owned = std::move(socket)]() mutable {
            handle_connection(owned.get(), session);
            std::lock_guard<std::mutex> inner(conn_mu_);
            for (auto it = connections_.begin(); it != connections_.end();
                 ++it) {
              if (it->first == session) {
                connections_.erase(it);
                break;
              }
            }
            // `owned` is destroyed with the closure after the thread
            // function returns — strictly after the erase above, so a
            // registered Socket* is always alive.
            owned->close();
          });
    }
  }
}

void BusDaemon::handle_connection(Socket* socket, std::uint64_t session) {
  std::vector<std::byte> payload;
  try {
    for (;;) {
      const std::optional<MsgType> type = recv_frame(*socket, payload);
      if (!type.has_value()) {
        return;  // clean EOF: client hung up between frames
      }
      if (!dispatch(*socket, session, *type, payload)) {
        return;
      }
    }
  } catch (const ProtocolError& e) {
    // Peer spoke garbage: one best-effort diagnosis, then hang up. The
    // daemon and every other session are unaffected.
    try {
      send_error(*socket, ErrorCode::bad_request, e.what());
    } catch (...) {
    }
  } catch (const BusError&) {
    // Peer vanished mid-frame or the shutdown sweep closed us; nothing
    // to send and nobody to send it to.
  } catch (const std::exception& e) {
    try {
      send_error(*socket, ErrorCode::internal, e.what());
    } catch (...) {
    }
  }
}

bool BusDaemon::dispatch(Socket& socket, std::uint64_t session, MsgType type,
                         const std::vector<std::byte>& payload) {
  switch (type) {
    case MsgType::ping: {
      PayloadReader r(payload);
      r.expect_end();
      send_frame(socket, MsgType::ok, std::span<const std::byte>{});
      return true;
    }
    case MsgType::list_datasets: {
      PayloadReader r(payload);
      r.expect_end();
      DatasetListMsg msg;
      for (auto& entry : registry_.list()) {
        msg.datasets.push_back({std::move(entry.name),
                                std::move(entry.summary)});
      }
      PayloadWriter w;
      msg.encode(w);
      send_frame(socket, MsgType::dataset_list, w);
      return true;
    }
    case MsgType::open_dataset: {
      PayloadReader r(payload);
      const OpenDatasetMsg msg = OpenDatasetMsg::decode(r);
      if (stopping_.load(std::memory_order_acquire)) {
        send_error(socket, ErrorCode::shutting_down, "daemon is draining");
        return true;
      }
      try {
        registry_.open(msg.name, msg.path);
      } catch (const std::exception& e) {
        send_error(socket, ErrorCode::bad_request, e.what());
        return true;
      }
      send_frame(socket, MsgType::ok, std::span<const std::byte>{});
      return true;
    }
    case MsgType::submit_cpa: {
      PayloadReader r(payload);
      SubmitCpaMsg msg = SubmitCpaMsg::decode(r);
      submit_job(socket, session, JobKind::cpa, std::move(msg.dataset),
                 msg.spec, TvlaJobSpec{});
      return true;
    }
    case MsgType::submit_tvla: {
      PayloadReader r(payload);
      SubmitTvlaMsg msg = SubmitTvlaMsg::decode(r);
      submit_job(socket, session, JobKind::tvla, std::move(msg.dataset),
                 CpaJobSpec{}, msg.spec);
      return true;
    }
    case MsgType::list_scenarios: {
      PayloadReader r(payload);
      r.expect_end();
      ScenarioListMsg msg;
      for (const scenario::ScenarioInfo& info :
           scenario::ScenarioRegistry::built_in().describe_all()) {
        msg.scenarios.push_back({info.name, info.description, info.victim,
                                 info.channel, info.params, info.channels,
                                 info.analysis.cpa,
                                 info.analysis.default_traces_per_set});
      }
      PayloadWriter w;
      msg.encode(w);
      send_frame(socket, MsgType::scenario_list, w);
      return true;
    }
    case MsgType::submit_scenario: {
      PayloadReader r(payload);
      SubmitScenarioMsg msg = SubmitScenarioMsg::decode(r);
      submit_scenario_job(socket, session, std::move(msg.spec));
      return true;
    }
    case MsgType::job_status: {
      PayloadReader r(payload);
      const JobIdMsg msg = JobIdMsg::decode(r);
      const std::unique_ptr<JobStatusMsg> status = jobs_->status(msg.id);
      if (status == nullptr) {
        send_error(socket, ErrorCode::unknown_job,
                   "no such job: " + std::to_string(msg.id));
        return true;
      }
      PayloadWriter w;
      status->encode(w);
      send_frame(socket, MsgType::job_status_r, w);
      return true;
    }
    case MsgType::watch_job: {
      PayloadReader r(payload);
      const JobIdMsg msg = JobIdMsg::decode(r);
      stream_watch(socket, msg.id);
      return true;
    }
    case MsgType::fetch_result: {
      PayloadReader r(payload);
      const JobIdMsg msg = JobIdMsg::decode(r);
      send_result(socket, msg.id);
      return true;
    }
    case MsgType::get_stats: {
      PayloadReader r(payload);
      r.expect_end();
      StatsMsg msg;
      if (chunk_cache_ != nullptr) {
        const store::ChunkCache::Stats cache = chunk_cache_->stats();
        msg.cache_hits = cache.hits;
        msg.cache_misses = cache.misses;
        msg.cache_evictions = cache.evictions;
        msg.cache_resident_bytes = cache.resident_bytes;
        msg.cache_capacity_bytes = chunk_cache_->capacity_bytes();
        msg.cache_entries = cache.entries;
      }
      jobs_->fill_stats(msg);
      msg.pool_threads = static_cast<std::uint32_t>(
          core::WorkerPool::instance().thread_count());
      PayloadWriter w;
      msg.encode(w);
      send_frame(socket, MsgType::stats, w);
      return true;
    }
    case MsgType::shutdown: {
      PayloadReader r(payload);
      r.expect_end();
      send_frame(socket, MsgType::ok, std::span<const std::byte>{});
      request_stop();
      return true;  // keep reading; the shutdown sweep will close us
    }
    default: {
      send_error(socket, ErrorCode::bad_request,
                 "unexpected message type " +
                     std::to_string(static_cast<unsigned>(type)));
      return false;
    }
  }
}

void BusDaemon::submit_job(Socket& socket, std::uint64_t session, JobKind kind,
                           std::string dataset, const CpaJobSpec& cpa,
                           const TvlaJobSpec& tvla) {
  if (stopping_.load(std::memory_order_acquire)) {
    send_error(socket, ErrorCode::shutting_down, "daemon is draining");
    return;
  }
  std::shared_ptr<const store::SharedMapping> mapping =
      registry_.mapping(dataset);
  if (mapping == nullptr) {
    send_error(socket, ErrorCode::unknown_dataset,
               "no such dataset: " + dataset);
    return;
  }
  const std::uint64_t id =
      jobs_->submit(session, kind, std::move(dataset), cpa, tvla);
  if (id == 0) {
    send_error(socket, ErrorCode::quota_exceeded,
               "session quota of " + std::to_string(config_.per_session_quota) +
                   " in-flight jobs reached");
    return;
  }
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  send_frame(socket, MsgType::job_accepted, w);

  // Each job gets a dedicated driver thread instead of one whole-job
  // pool task: the driver posts the job's shard units to the pool under
  // its fair in-flight cap and blocks merging them, so a blocked driver
  // never occupies a pool slot, and units from every active job
  // interleave in the pool's FIFO queue. The closure owns everything it
  // touches: the table keeps the job row alive, the mapping keeps the
  // dataset bytes alive, both independent of this daemon's sockets and
  // of the submitting client, which may disconnect long before the job
  // finishes.
  std::shared_ptr<JobTable> table = jobs_;
  std::shared_ptr<store::ChunkCache> cache = chunk_cache_;
  const std::uint32_t parallelism = shard_parallelism();
  auto done = std::make_shared<std::atomic<bool>>(false);
  auto driver = [table, mapping, cache, parallelism, done, id, kind, cpa,
                 tvla] {
    table->mark_running(id);
    try {
      JobExecOptions exec;
      exec.chunk_cache = cache;
      if (parallelism > 1) {
        exec.shard_budget = [table, id, parallelism] {
          return table->shard_budget(id, parallelism);
        };
      }
      exec.on_shard_activity = [table, id](std::uint32_t shards,
                                           std::uint32_t running) {
        table->update_shard_activity(id, shards, running);
      };
      const JobProgressFn progress = [&](std::uint64_t consumed,
                                         std::uint64_t total) {
        table->update_progress(id, consumed, total);
      };
      if (kind == JobKind::cpa) {
        auto result = std::make_unique<CpaJobResult>(
            run_cpa_job(mapping, cpa, progress, exec));
        table->mark_done(id, std::move(result), nullptr);
      } else {
        auto result = std::make_unique<TvlaJobResult>(
            run_tvla_job(mapping, tvla, progress, exec));
        table->mark_done(id, nullptr, std::move(result));
      }
    } catch (const std::exception& e) {
      table->mark_failed(id, e.what());
    } catch (...) {
      table->mark_failed(id, "unknown job failure");
    }
    done->store(true, std::memory_order_release);
  };
  {
    std::lock_guard<std::mutex> lock(drivers_mu_);
    reap_drivers_locked();
    drivers_.push_back({std::thread(std::move(driver)), std::move(done)});
  }
}

void BusDaemon::submit_scenario_job(Socket& socket, std::uint64_t session,
                                    ScenarioJobSpec spec) {
  if (stopping_.load(std::memory_order_acquire)) {
    send_error(socket, ErrorCode::shutting_down, "daemon is draining");
    return;
  }
  // Validate everything a typed error can catch before the job exists:
  // an unknown name or malformed params costs one ERROR frame, never the
  // connection (and never the daemon).
  const std::shared_ptr<const scenario::Scenario> sc =
      scenario::ScenarioRegistry::built_in().find(spec.scenario);
  if (sc == nullptr) {
    send_error(socket, ErrorCode::unknown_scenario,
               "no such scenario: " + spec.scenario);
    return;
  }
  try {
    const scenario::ParamSet params = sc->parse_params(spec.params);
    (void)sc->channels(params);  // surfaces out-of-range values
  } catch (const std::exception& e) {
    send_error(socket, ErrorCode::bad_request, e.what());
    return;
  }
  const std::uint64_t id = jobs_->submit(session, JobKind::scenario,
                                         /*dataset=*/"", CpaJobSpec{},
                                         TvlaJobSpec{}, spec);
  if (id == 0) {
    send_error(socket, ErrorCode::quota_exceeded,
               "session quota of " + std::to_string(config_.per_session_quota) +
                   " in-flight jobs reached");
    return;
  }
  PayloadWriter w;
  JobIdMsg{id}.encode(w);
  send_frame(socket, MsgType::job_accepted, w);

  // Same driver-thread pattern as the dataset jobs; the scenario runner
  // fans shards out through the core worker pool itself, so the driver
  // only needs a worker count. The resolved shard count — and with it
  // the result — is a pure function of the spec (see scenario_jobs.h),
  // so the pool size here can never make a served job differ from a
  // client's local verification run.
  std::shared_ptr<JobTable> table = jobs_;
  const std::uint32_t workers = shard_parallelism();
  auto done = std::make_shared<std::atomic<bool>>(false);
  auto driver = [table, spec = std::move(spec), workers, done, id] {
    table->mark_running(id);
    try {
      const JobProgressFn progress = [&](std::uint64_t consumed,
                                         std::uint64_t total) {
        table->update_progress(id, consumed, total);
      };
      auto result = std::make_unique<ScenarioJobResult>(
          run_scenario_job(spec, progress, workers));
      table->mark_done(id, nullptr, nullptr, std::move(result));
    } catch (const std::exception& e) {
      table->mark_failed(id, e.what());
    } catch (...) {
      table->mark_failed(id, "unknown job failure");
    }
    done->store(true, std::memory_order_release);
  };
  {
    std::lock_guard<std::mutex> lock(drivers_mu_);
    reap_drivers_locked();
    drivers_.push_back({std::thread(std::move(driver)), std::move(done)});
  }
}

std::uint32_t BusDaemon::shard_parallelism() const noexcept {
  const std::size_t p = config_.shard_parallelism == 0
                            ? config_.pool_reserve
                            : config_.shard_parallelism;
  return static_cast<std::uint32_t>(p == 0 ? 1 : p);
}

void BusDaemon::reap_drivers_locked() {
  for (auto it = drivers_.begin(); it != drivers_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      it->thread.join();
      it = drivers_.erase(it);
    } else {
      ++it;
    }
  }
}

void BusDaemon::stream_watch(Socket& socket, std::uint64_t id) {
  std::unique_ptr<JobStatusMsg> status = jobs_->status(id);
  if (status == nullptr) {
    send_error(socket, ErrorCode::unknown_job,
               "no such job: " + std::to_string(id));
    return;
  }
  constexpr std::chrono::milliseconds poll_interval{250};
  while (!is_terminal(status->state)) {
    PayloadWriter w;
    ProgressMsg{id, status->consumed, status->total, status->running_shards}
        .encode(w);
    send_frame(socket, MsgType::progress, w);
    std::unique_ptr<JobStatusMsg> next =
        jobs_->wait_change(id, status->state, status->consumed, poll_interval);
    if (next == nullptr) {
      send_error(socket, ErrorCode::unknown_job,
                 "job vanished: " + std::to_string(id));
      return;
    }
    status = std::move(next);
  }
  PayloadWriter w;
  status->encode(w);
  send_frame(socket, MsgType::job_done, w);
}

void BusDaemon::send_result(Socket& socket, std::uint64_t id) {
  const std::unique_ptr<JobStatusMsg> status = jobs_->status(id);
  if (status == nullptr) {
    send_error(socket, ErrorCode::unknown_job,
               "no such job: " + std::to_string(id));
    return;
  }
  if (status->state == JobState::failed) {
    send_error(socket, ErrorCode::internal, status->error);
    return;
  }
  if (status->state != JobState::done) {
    send_error(socket, ErrorCode::bad_request,
               "job " + std::to_string(id) + " is still " +
                   job_state_name(status->state));
    return;
  }
  // A done job never mutates again and the status() read above
  // synchronized with the terminal transition, so the result fields are
  // safe to read without the table lock.
  const std::shared_ptr<Job> job = jobs_->find(id);
  if (job->kind == JobKind::cpa) {
    PayloadWriter w;
    CpaResultMsg{id, *job->cpa_result}.encode(w);
    send_frame(socket, MsgType::cpa_result, w);
  } else if (job->kind == JobKind::tvla) {
    PayloadWriter w;
    TvlaResultMsg{id, *job->tvla_result}.encode(w);
    send_frame(socket, MsgType::tvla_result, w);
  } else {
    PayloadWriter w;
    ScenarioResultMsg{id, *job->scenario_result}.encode(w);
    send_frame(socket, MsgType::scenario_result, w);
  }
}

}  // namespace psc::bus
