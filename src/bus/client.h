// BusClient: the request/response side of the bus protocol, one method
// per daemon capability. Connection-oriented and synchronous — each call
// sends one request frame and blocks for the response on the same
// socket (watch() consumes the PROGRESS stream until JOB_DONE).
//
// Daemon-reported failures surface as BusRemoteError carrying the wire
// ErrorCode, distinct from local socket trouble (BusError) and malformed
// daemon bytes (ProtocolError). A client is not thread-safe; use one per
// thread — they are cheap, and the daemon handles each connection
// independently.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bus/framing.h"
#include "bus/protocol.h"

namespace psc::bus {

// The daemon answered with an ERROR frame.
class BusRemoteError : public std::runtime_error {
 public:
  BusRemoteError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(error_code_name(code)) + ": " +
                           message),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

class BusClient {
 public:
  // Connects to a serving daemon; throws BusError when nobody listens.
  explicit BusClient(const std::string& socket_path);

  // Round-trip liveness check (PING -> OK).
  void ping();

  std::vector<DatasetListMsg::Entry> list_datasets();

  // The daemon's scenario registry (LIST_SCENARIOS -> SCENARIO_LIST).
  std::vector<ScenarioListMsg::Entry> list_scenarios();

  // Asks the daemon to register `path` under `name`.
  void open_dataset(const std::string& name, const std::string& path);

  // Submit a campaign; returns the accepted job id.
  std::uint64_t submit_cpa(const std::string& dataset, const CpaJobSpec& spec);
  std::uint64_t submit_tvla(const std::string& dataset,
                            const TvlaJobSpec& spec);
  // Submit a live-acquisition campaign by scenario name; an unknown name
  // surfaces as BusRemoteError(unknown_scenario), malformed params as
  // BusRemoteError(bad_request) — the connection stays usable either way.
  std::uint64_t submit_scenario(const ScenarioJobSpec& spec);

  JobStatusMsg status(std::uint64_t id);

  // Daemon observability counters: chunk-cache hit/miss/eviction totals
  // plus per-job shard-scheduler state (GET_STATS -> STATS).
  StatsMsg stats();

  // Streams the job's progress (on_progress per PROGRESS frame, may be
  // empty) and returns the terminal status carried by JOB_DONE.
  using WatchFn = std::function<void(const ProgressMsg&)>;
  JobStatusMsg watch(std::uint64_t id, const WatchFn& on_progress = {});

  // Fetch a finished job's result; BusRemoteError(internal) relays the
  // failure message of a failed job.
  CpaJobResult cpa_result(std::uint64_t id);
  TvlaJobResult tvla_result(std::uint64_t id);
  ScenarioJobResult scenario_result(std::uint64_t id);

  // Asks the daemon to stop gracefully (drain, then exit). Returns once
  // the daemon acknowledged; the drain itself may outlive this client.
  void shutdown_server();

 private:
  // Sends `type` and blocks for one response frame, which must be
  // `expected` — an ERROR frame becomes BusRemoteError, anything else a
  // ProtocolError. The response payload lands in payload_.
  void request(MsgType type, const PayloadWriter& body, MsgType expected);

  Socket socket_;
  std::vector<std::byte> payload_;
};

}  // namespace psc::bus
