// psc::bus wire protocol: length-prefixed, versioned, CRC-checked binary
// frames over a local Unix-domain socket.
//
// Frame layout (little-endian, 16-byte header):
//
//   offset  size  field
//   0       4     magic "PSCB"
//   4       2     protocol version (= 3)
//   6       2     message type (MsgType)
//   8       4     payload length in bytes (<= max_payload_bytes)
//   12      4     CRC32 of the payload bytes (util/crc32)
//   16      n     payload
//
// Payloads are flat little-endian scalar sequences built and consumed by
// PayloadWriter/PayloadReader: u8/u16/u32/u64, f64 carried as its IEEE-754
// bit pattern (so results cross the wire bit-exactly — the daemon's
// bit-identity contract extends to the client), and length-prefixed (u32)
// strings/byte blocks. Every decode bound-checks; a malformed payload is
// a ProtocolError, never UB.
//
// A peer that sends garbage gets one ERROR frame (bad_request) where
// possible and its connection closed; the daemon survives any byte
// stream. Responses to one request arrive in order on the same
// connection; WATCH_JOB is the only request answered by more than one
// frame (a stream of PROGRESS then one JOB_DONE).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "bus/jobs.h"
#include "bus/scenario_jobs.h"
#include "store/dataset_summary.h"

namespace psc::bus {

inline constexpr char frame_magic[4] = {'P', 'S', 'C', 'B'};
// v2: GET_STATS/STATS frames; running_shards added to JobStatusMsg and
// ProgressMsg.
// v3: scenario-registry service — LIST_SCENARIOS/SCENARIO_LIST,
// SUBMIT_SCENARIO (a live-acquisition campaign addressed by registry
// name), the SCENARIO_RESULT frame and ErrorCode::unknown_scenario.
// Both sides of the protocol live in this repo and are versioned
// together, so there is no cross-version compatibility path — a version
// mismatch is rejected at the frame layer.
inline constexpr std::uint16_t protocol_version = 3;
inline constexpr std::size_t frame_header_bytes = 16;
// Largest payload either side accepts; a declared length beyond this is
// rejected before any allocation (oversize-length robustness).
inline constexpr std::size_t max_payload_bytes = 8 * 1024 * 1024;

// Peer sent malformed bytes: bad magic/version/CRC, truncated frame,
// oversized declared length, or a payload that does not decode.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Local socket failure (connect/send/recv), as opposed to peer-sent
// garbage.
class BusError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class MsgType : std::uint16_t {
  // Requests (client -> daemon).
  list_datasets = 1,
  open_dataset = 2,
  submit_cpa = 3,
  submit_tvla = 4,
  job_status = 5,
  watch_job = 6,
  fetch_result = 7,
  shutdown = 8,
  ping = 9,
  get_stats = 10,
  list_scenarios = 11,
  submit_scenario = 12,
  // Responses (daemon -> client).
  ok = 64,
  error = 65,
  dataset_list = 66,
  job_accepted = 67,
  job_status_r = 68,
  progress = 69,
  job_done = 70,
  cpa_result = 71,
  tvla_result = 72,
  stats = 73,
  scenario_list = 74,
  scenario_result = 75,
};

enum class ErrorCode : std::uint16_t {
  bad_request = 1,     // malformed frame/payload or unsupported request
  unknown_dataset = 2,
  unknown_job = 3,
  quota_exceeded = 4,  // per-session in-flight job quota hit
  shutting_down = 5,   // daemon draining; no new jobs
  internal = 6,        // job failed server-side (message carries why)
  unknown_scenario = 7,  // SUBMIT_SCENARIO named nothing in the registry
};

const char* error_code_name(ErrorCode code) noexcept;

// ---------- payload building / parsing ----------

class PayloadWriter {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f64(double v);  // IEEE-754 bit pattern, bit-exact round trip
  void str(const std::string& s);
  void block(const void* data, std::size_t size);  // u32 length + bytes

  const std::vector<std::byte>& bytes() const noexcept { return bytes_; }

 private:
  std::vector<std::byte> bytes_;
};

class PayloadReader {
 public:
  PayloadReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit PayloadReader(const std::vector<std::byte>& payload)
      : PayloadReader(payload.data(), payload.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<std::uint8_t> block();
  // Fixed-size copy (e.g. an aes::Block), no length prefix.
  void raw(void* out, std::size_t size);

  std::size_t remaining() const noexcept { return size_ - pos_; }
  // Throws ProtocolError unless the payload was consumed exactly.
  void expect_end() const;

 private:
  const std::byte* need(std::size_t n);

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------- message bodies ----------
//
// Each message struct encodes itself into a PayloadWriter and decodes
// from a PayloadReader (throwing ProtocolError on malformed payloads).
// Requests with no body (list_datasets, shutdown, ping) have no struct.

struct ErrorMsg {
  ErrorCode code = ErrorCode::internal;
  std::string message;

  void encode(PayloadWriter& w) const;
  static ErrorMsg decode(PayloadReader& r);
};

struct OpenDatasetMsg {
  std::string name;
  std::string path;

  void encode(PayloadWriter& w) const;
  static OpenDatasetMsg decode(PayloadReader& r);
};

struct DatasetListMsg {
  struct Entry {
    std::string name;
    store::DatasetSummary summary;
  };
  std::vector<Entry> datasets;

  void encode(PayloadWriter& w) const;
  static DatasetListMsg decode(PayloadReader& r);
};

struct SubmitCpaMsg {
  std::string dataset;
  CpaJobSpec spec;

  void encode(PayloadWriter& w) const;
  static SubmitCpaMsg decode(PayloadReader& r);
};

struct SubmitTvlaMsg {
  std::string dataset;
  TvlaJobSpec spec;

  void encode(PayloadWriter& w) const;
  static SubmitTvlaMsg decode(PayloadReader& r);
};

// job_accepted, job_status, watch_job, fetch_result all carry one id.
struct JobIdMsg {
  std::uint64_t id = 0;

  void encode(PayloadWriter& w) const;
  static JobIdMsg decode(PayloadReader& r);
};

enum class JobState : std::uint8_t {
  queued = 0,
  running = 1,
  done = 2,
  failed = 3,
};

const char* job_state_name(JobState state) noexcept;

struct JobStatusMsg {
  std::uint64_t id = 0;
  JobState state = JobState::queued;
  std::uint64_t consumed = 0;
  std::uint64_t total = 0;
  std::uint32_t running_shards = 0;  // shard units in flight right now
  std::string error;  // non-empty iff state == failed

  void encode(PayloadWriter& w) const;
  static JobStatusMsg decode(PayloadReader& r);
};

struct ProgressMsg {
  std::uint64_t id = 0;
  std::uint64_t consumed = 0;
  std::uint64_t total = 0;
  std::uint32_t running_shards = 0;  // shard units in flight right now

  void encode(PayloadWriter& w) const;
  static ProgressMsg decode(PayloadReader& r);
};

// Daemon observability counters (GET_STATS -> STATS): the shared
// decoded-chunk cache plus the shard scheduler's per-job view. Cache
// fields are all zero when the cache is disabled (PSC_BUS_CHUNK_CACHE_MB
// = 0).
struct StatsMsg {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_resident_bytes = 0;
  std::uint64_t cache_capacity_bytes = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t jobs_submitted = 0;  // lifetime
  std::uint64_t jobs_active = 0;     // queued + running
  std::uint32_t pool_threads = 0;

  struct JobRow {
    std::uint64_t id = 0;
    JobState state = JobState::queued;
    std::uint32_t shards = 0;         // resolved shard count
    std::uint32_t shard_cap = 0;      // fair in-flight cap last granted
    std::uint32_t running_shards = 0;
    std::uint32_t peak_shards = 0;
  };
  std::vector<JobRow> jobs;  // non-terminal jobs, id-ascending

  void encode(PayloadWriter& w) const;
  static StatsMsg decode(PayloadReader& r);
};

// SUBMIT_SCENARIO: a live-acquisition campaign addressed by registry
// name. Params travel as the key=value strings the registry validates,
// so one frame shape serves every scenario, present and future.
struct SubmitScenarioMsg {
  ScenarioJobSpec spec;

  void encode(PayloadWriter& w) const;
  static SubmitScenarioMsg decode(PayloadReader& r);
};

// LIST_SCENARIOS -> SCENARIO_LIST: the registry's describe_all(), flat
// enough for a CLI table — name, one-line victim/channel summaries,
// parameter specs with defaults, channel columns and the default
// analysis binding.
struct ScenarioListMsg {
  struct Entry {
    std::string name;
    std::string description;
    std::string victim;
    std::string channel;
    std::vector<scenario::ParamSpec> params;
    std::vector<util::FourCc> channels;  // with default params
    bool cpa = false;                    // CPA/GE sinks attach by default
    std::uint64_t default_traces_per_set = 0;
  };
  std::vector<Entry> scenarios;

  void encode(PayloadWriter& w) const;
  static ScenarioListMsg decode(PayloadReader& r);
};

struct CpaResultMsg {
  std::uint64_t id = 0;
  CpaJobResult result;

  void encode(PayloadWriter& w) const;
  static CpaResultMsg decode(PayloadReader& r);
};

struct TvlaResultMsg {
  std::uint64_t id = 0;
  TvlaJobResult result;

  void encode(PayloadWriter& w) const;
  static TvlaResultMsg decode(PayloadReader& r);
};

// The complete scenario runner result: secret, TVLA matrix per channel,
// and — when the scenario binds CPA — the full rankings and GE curves.
// Everything a local rerun produces crosses the wire bit-exactly, which
// is what `submit scenario --verify-local` compares.
struct ScenarioResultMsg {
  std::uint64_t id = 0;
  ScenarioJobResult result;

  void encode(PayloadWriter& w) const;
  static ScenarioResultMsg decode(PayloadReader& r);
};

}  // namespace psc::bus
