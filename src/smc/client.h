// User-space SMC access, shaped like the real macOS path: an AppleSMC
// user client reached through IOConnectCallStructMethod with the
// kSMCHandleYPCEvent selector and an SMCKeyData struct carrying an inner
// command byte (read key / write key / key info / key by index). Tools
// like smc-fuzzer speak exactly this protocol; the convenience wrappers
// below are what a typical attacker process uses.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "smc/controller.h"
#include "smc/types.h"

namespace psc::smc {

// Struct-method selector (kSMCHandleYPCEvent).
inline constexpr std::uint32_t selector_handle_ypc_event = 2;

// Inner command codes, matching the AppleSMC driver's.
enum class SmcCommand : std::uint8_t {
  read_key = 5,
  write_key = 6,
  key_by_index = 8,
  key_info = 9,
};

// Wire structure exchanged with the (simulated) SMC user client. Field
// layout follows SMCKeyData_t in spirit: key, index, inner command,
// key-info block, result code and a small payload buffer.
struct SmcKeyData {
  std::uint32_t key = 0;    // FourCc code
  std::uint32_t index = 0;  // for key_by_index
  std::uint8_t command = 0; // SmcCommand
  struct KeyInfoBlock {
    std::uint32_t data_size = 0;
    std::uint32_t data_type = 0;  // FourCc of the type ("flt ", ...)
    std::uint8_t attributes = 0;  // bit0 readable, bit1 writable, bit2 priv
  } key_info;
  std::uint8_t result = 0;  // SmcStatus
  std::array<std::uint8_t, 32> bytes{};
};

// A user- or root-privileged connection to the SMC service.
class SmcConnection {
 public:
  SmcConnection(SmcController& controller,
                Privilege privilege = Privilege::user);

  Privilege privilege() const noexcept { return privilege_; }

  // The raw IOConnectCallStructMethod-shaped entry point. Returns
  // bad_argument for unknown selectors/commands; per-key status is also
  // mirrored in `out.result`.
  SmcStatus call_struct_method(std::uint32_t selector, const SmcKeyData& in,
                               SmcKeyData& out);

  // Convenience wrappers (each issues struct-method calls).
  SmcStatus read_key(FourCc key, SmcValue& out);
  SmcStatus write_key(FourCc key, const SmcValue& value);
  SmcStatus key_info(FourCc key, SmcKeyInfo& out);
  SmcStatus key_at_index(std::uint32_t index, FourCc& out);
  std::uint32_t key_count();

  // Enumerates all keys via key_by_index (what smc-fuzzer does).
  std::vector<FourCc> list_keys();

  // Reads a key and interprets it numerically; NaN on failure.
  double read_numeric(FourCc key);

 private:
  SmcController* controller_;
  Privilege privilege_;
};

}  // namespace psc::smc
