#include "smc/controller.h"

#include <algorithm>
#include <cmath>

#include "power/noise.h"

namespace psc::smc {

SmcController::SmcController(soc::Chip& chip, std::uint64_t seed,
                             MitigationPolicy mitigation)
    : chip_(&chip),
      database_(apply_mitigations(
          KeyDatabase::for_device(chip.profile().name), mitigation)),
      rng_(seed) {
  states_.resize(database_.size());
  poll();  // initial latch so every key has a value from t=0
}

void SmcController::poll() {
  const double now = chip_->time_s();
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (now >= states_[i].next_update_s) {
      latch(i);
    }
  }
}

void SmcController::latch(std::size_t index) {
  const KeyEntry& entry = database_.entries()[index];
  KeyState& state = states_[index];
  state.latched = sample(entry, state);
  state.last_latch_s = chip_->time_s();
  state.energy_snapshot = chip_->rail_energies();
  const double period = std::max(entry.spec.update_period_s, 1e-9);
  state.next_update_s = chip_->time_s() + period;
}

double SmcController::windowed_rail_value(const SensorSpec& spec,
                                          const KeyState& state) const {
  const double now = chip_->time_s();
  const double elapsed = now - state.last_latch_s;
  double value = 0.0;
  for (const soc::RailId rail :
       {soc::RailId::p_cluster, soc::RailId::e_cluster, soc::RailId::uncore,
        soc::RailId::dram}) {
    const double w = spec.rails.weight(rail);
    if (w == 0.0) {
      continue;
    }
    double rail_power = 0.0;
    if (state.last_latch_s >= 0.0 && elapsed > 0.0) {
      rail_power = (chip_->rail_energies().at(rail) -
                    state.energy_snapshot.at(rail)) /
                   elapsed;
    } else {
      // First latch: no window yet, fall back to the instantaneous value.
      rail_power = chip_->rail_powers().at(rail);
    }
    value += w * rail_power;
  }
  return value;
}

SmcValue SmcController::sample(const KeyEntry& entry, KeyState& state) {
  const SensorSpec& spec = entry.spec;
  double value = 0.0;
  switch (spec.source) {
    case SensorSource::rail_power:
      value = windowed_rail_value(spec, state);
      break;
    case SensorSource::rail_current:
      value = windowed_rail_value(spec, state) / chip_->p_core(0).voltage();
      break;
    case SensorSource::estimated_power:
      value = chip_->estimated_package_power_w();
      break;
    case SensorSource::temperature:
      value = chip_->temperature_c();
      break;
    case SensorSource::cluster_voltage:
      value = chip_->p_core(0).voltage();
      break;
    case SensorSource::fan_speed: {
      // Simple fan curve: spins up linearly above 40C.
      const double t = chip_->temperature_c();
      value = std::clamp(1700.0 + 40.0 * (t - 40.0), 1700.0, 4800.0);
      break;
    }
    case SensorSource::constant:
      value = spec.constant_value;
      break;
    case SensorSource::lowpower_flag:
      return SmcValue::from_flag(chip_->lowpowermode());
  }

  if (spec.noise_sigma > 0.0) {
    value += rng_.gaussian(0.0, spec.noise_sigma);
  }
  value = power::Quantizer(spec.quant_step).apply(value);

  switch (entry.info.type) {
    case SmcDataType::flt:
      return SmcValue::from_float(static_cast<float>(value));
    case SmcDataType::ui8:
      return SmcValue::from_u8(static_cast<std::uint8_t>(
          std::clamp(value, 0.0, 255.0)));
    case SmcDataType::ui16:
      return SmcValue::from_u16(static_cast<std::uint16_t>(
          std::clamp(value, 0.0, 65535.0)));
    case SmcDataType::ui32:
      return SmcValue::from_u32(static_cast<std::uint32_t>(
          std::max(value, 0.0)));
    case SmcDataType::flag:
      return SmcValue::from_flag(value != 0.0);
  }
  return SmcValue{};
}

SmcStatus SmcController::read(FourCc key, Privilege privilege,
                              SmcValue& out) {
  poll();
  for (std::size_t i = 0; i < database_.size(); ++i) {
    const KeyEntry& entry = database_.entries()[i];
    if (entry.info.key != key) {
      continue;
    }
    if (!entry.info.readable) {
      return SmcStatus::not_readable;
    }
    if (entry.info.privileged_read && privilege != Privilege::root) {
      return SmcStatus::privilege_required;
    }
    out = states_[i].latched;
    return SmcStatus::ok;
  }
  return SmcStatus::key_not_found;
}

SmcStatus SmcController::write(FourCc key, Privilege privilege,
                               const SmcValue& in) {
  const KeyEntry* entry = database_.find(key);
  if (entry == nullptr) {
    return SmcStatus::key_not_found;
  }
  if (!entry->info.writable) {
    return SmcStatus::not_writable;
  }
  if (privilege != Privilege::root) {
    return SmcStatus::privilege_required;
  }
  if (in.type() != entry->info.type) {
    return SmcStatus::bad_argument;
  }
  if (entry->spec.source == SensorSource::lowpower_flag) {
    chip_->set_lowpowermode(in.as_flag());
    return SmcStatus::ok;
  }
  return SmcStatus::bad_argument;
}

double SmcController::last_latch_time(FourCc key) const noexcept {
  for (std::size_t i = 0; i < database_.size(); ++i) {
    if (database_.entries()[i].info.key == key) {
      return states_[i].last_latch_s;
    }
  }
  return -1.0;
}

}  // namespace psc::smc
