#include "smc/fuzzer.h"

#include <algorithm>
#include <cmath>

namespace psc::smc {

std::vector<KeySnapshot> snapshot_keys(SmcConnection& conn, char prefix) {
  std::vector<KeySnapshot> out;
  for (const FourCc key : conn.list_keys()) {
    if (key.at(0) != prefix) {
      continue;
    }
    SmcValue value;
    if (conn.read_key(key, value) != SmcStatus::ok) {
      continue;
    }
    out.push_back({key, value.as_double()});
  }
  return out;
}

std::vector<KeyDelta> diff_snapshots(const std::vector<KeySnapshot>& baseline,
                                     const std::vector<KeySnapshot>& loaded) {
  std::vector<KeyDelta> out;
  for (const KeySnapshot& base : baseline) {
    const auto it = std::find_if(
        loaded.begin(), loaded.end(),
        [&base](const KeySnapshot& s) { return s.key == base.key; });
    if (it == loaded.end()) {
      continue;
    }
    KeyDelta d;
    d.key = base.key;
    d.baseline = base.value;
    d.loaded = it->value;
    d.abs_delta = std::abs(it->value - base.value);
    const double denom = std::max(std::abs(base.value), 1e-9);
    d.rel_delta = d.abs_delta / denom;
    out.push_back(d);
  }
  std::sort(out.begin(), out.end(), [](const KeyDelta& a, const KeyDelta& b) {
    return a.rel_delta > b.rel_delta;
  });
  return out;
}

std::vector<FourCc> workload_dependent_keys(
    const std::vector<KeyDelta>& deltas, double rel_threshold,
    double abs_threshold) {
  std::vector<FourCc> out;
  for (const KeyDelta& d : deltas) {
    if (d.rel_delta >= rel_threshold && d.abs_delta >= abs_threshold) {
      out.push_back(d.key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace psc::smc
