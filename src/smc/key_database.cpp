#include "smc/key_database.h"

#include <stdexcept>

namespace psc::smc {

namespace {

SmcKeyInfo power_key(const char (&name)[5], std::string description) {
  SmcKeyInfo info;
  info.key = FourCc(name);
  info.type = SmcDataType::flt;
  info.readable = true;
  info.writable = false;
  info.description = std::move(description);
  return info;
}

// The taps every key variant shares. Conversion loss of the DC input
// meter: 1 / 0.9.
constexpr double dc_gain = 1.0 / 0.9;

}  // namespace

void KeyDatabase::add(SmcKeyInfo info, SensorSpec spec) {
  entries_.push_back(KeyEntry{std::move(info), spec});
}

const KeyEntry* KeyDatabase::find(FourCc key) const noexcept {
  for (const auto& e : entries_) {
    if (e.info.key == key) {
      return &e;
    }
  }
  return nullptr;
}

std::vector<FourCc> KeyDatabase::keys_with_prefix(char prefix_char) const {
  std::vector<FourCc> out;
  for (const auto& e : entries_) {
    if (e.info.key.at(0) == prefix_char) {
      out.push_back(e.info.key);
    }
  }
  return out;
}

KeyDatabase KeyDatabase::for_device(const std::string& device_name) {
  const bool m1 = device_name == "Mac Mini M1";
  const bool m2 = device_name == "MacBook Air M2";
  if (!m1 && !m2) {
    throw std::invalid_argument("KeyDatabase: unknown device " + device_name);
  }

  KeyDatabase db;

  // --- Workload- and data-dependent power meters (Table 2 ground truth).

  // PHPC: P-cluster core rail, the cleanest channel (Table 3/4 star).
  db.add(power_key("PHPC", "P-cluster core rail power (W)"),
         {.source = SensorSource::rail_power,
          .rails = {.p_cluster = 1.0},
          .noise_sigma = m1 ? 33e-6 : 45e-6,
          .quant_step = 1e-6,
          .update_period_s = 1.0});
  db.workload_dependent_.push_back(FourCc("PHPC"));

  // PDTR: DC input meter over the compute rails; partial DRAM/IO coupling
  // adds a full-block bus component that boosts TVLA but plants ghost
  // guesses in per-byte CPA (Table 4: GE 41.6).
  db.add(power_key("PDTR", "DC input rail power, compute-side (W)"),
         {.source = SensorSource::rail_power,
          .rails = {.p_cluster = dc_gain,
                    .e_cluster = dc_gain,
                    .uncore = dc_gain,
                    .dram = 0.03},
          .noise_sigma = 40e-6,
          .quant_step = 1e-6,
          .update_period_s = 1.0});
  db.workload_dependent_.push_back(FourCc("PDTR"));

  // PHPS: the governor's utilization-based estimate. Workload-correlated
  // (it passes the Table 2 triage) but carries no data dependence; also
  // the input of the lowpowermode power cap (section 4).
  db.add(power_key("PHPS", "package power estimate, governor input (W)"),
         {.source = SensorSource::estimated_power,
          .noise_sigma = 2e-3,
          .quant_step = 1e-3,
          .update_period_s = 1.0});
  db.workload_dependent_.push_back(FourCc("PHPS"));

  if (m2) {
    // PMVC: P-cluster VRM current meter.
    db.add(power_key("PMVC", "P-cluster VRM output current (A)"),
           {.source = SensorSource::rail_current,
            .rails = {.p_cluster = 1.0, .dram = 0.055},
            .noise_sigma = 40e-6,
            .quant_step = 1e-6,
            .update_period_s = 1.0});
    db.workload_dependent_.push_back(FourCc("PMVC"));
  }
  if (m1) {
    // PMVR: VRM-side P-cluster power meter (upstream of the regulator).
    db.add(power_key("PMVR", "P-cluster VRM input power (W)"),
           {.source = SensorSource::rail_power,
            .rails = {.p_cluster = 1.03},
            .noise_sigma = 70e-6,
            .quant_step = 1e-6,
            .update_period_s = 1.0});
    db.workload_dependent_.push_back(FourCc("PMVR"));

    // PPMR: package power meter rail.
    db.add(power_key("PPMR", "package power meter rail (W)"),
           {.source = SensorSource::rail_power,
            .rails = {.p_cluster = 1.0,
                      .e_cluster = 1.0,
                      .uncore = 1.0,
                      .dram = 0.6},
            .noise_sigma = 150e-6,
            .quant_step = 1e-6,
            .update_period_s = 1.0});
    db.workload_dependent_.push_back(FourCc("PPMR"));
  }

  // PSTR: full system rail including DRAM/IO. Strong full-block bus signal
  // (clear TVLA) drowned in rail noise at byte granularity (CPA fails;
  // Table 4: GE 109.3 ~ random).
  db.add(power_key("PSTR", "system total rail power (W)"),
         {.source = SensorSource::rail_power,
          .rails = {.p_cluster = 1.0,
                    .e_cluster = 1.0,
                    .uncore = 1.0,
                    .dram = 1.0},
          .noise_sigma = 550e-6,
          .quant_step = 1e-6,
          .update_period_s = 1.0});
  db.workload_dependent_.push_back(FourCc("PSTR"));

  // --- Static power keys ('P' prefix, workload-independent): always-on
  // rails, setpoints and counters. These are the haystack the section 3.2
  // triage has to reject. Values are plausible constants with sensor-level
  // noise.
  struct StaticKey {
    const char* name;
    double value;
    double sigma;
    const char* desc;
  };
  const StaticKey static_keys[] = {
      {"PB0R", m1 ? 0.0 : 0.08, 2e-4, "battery rail power (W)"},
      {"PBLC", m1 ? 0.0 : 1.45, 1e-3, "display backlight rail (W)"},
      {"PC0C", 0.02, 1e-4, "charger control loop power (W)"},
      {"PC0R", 0.05, 2e-4, "charge controller rail (W)"},
      {"PCPC", 0.01, 1e-4, "PMU control plane power (W)"},
      {"PCTR", 45.0, 0.0, "charger target (W, setpoint)"},
      {"PD0R", 0.12, 3e-4, "display controller rail (W)"},
      {"PDBR", 0.03, 1e-4, "debug bridge rail (W)"},
      {"PG0R", 0.15, 4e-4, "GPU always-on rail (W)"},
      {"PH02", 0.0, 0.0, "reserved power channel 2"},
      {"PICT", 3.0, 0.0, "input current target (A, setpoint)"},
      {"PIOR", 0.22, 4e-4, "IO complex rail (W)"},
      {"PM0R", 0.04, 1e-4, "PMU core rail (W)"},
      {"PMTR", 1.0, 0.0, "power meter timer period (s, setpoint)"},
      {"PN0C", 0.01, 1e-4, "NAND controller idle power (W)"},
      {"PO0R", 0.02, 1e-4, "audio codec rail (W)"},
      {"PSSR", 0.06, 2e-4, "SSD rail power (W)"},
      {"PST9", 0.0, 0.0, "reserved power state channel"},
      {"PWRC", 0.09, 2e-4, "wireless combo rail (W)"},
      {"PZ0T", 0.0, 0.0, "reserved power zone"},
      {"PSOC", 0.35, 5e-4, "always-on domain power (W)"},
      {"PLSB", 0.01, 1e-4, "low-speed bus rail (W)"},
      {"PUSB", m1 ? 0.25 : 0.10, 4e-4, "USB subsystem rail (W)"},
      {"PAVG", 4.0, 0.0, "power budget reference (W, setpoint)"},
  };
  for (const auto& k : static_keys) {
    SmcKeyInfo info;
    info.key = *FourCc::parse(k.name);
    info.type = SmcDataType::flt;
    info.description = k.desc;
    db.add(std::move(info), {.source = SensorSource::constant,
                             .constant_value = k.value,
                             .noise_sigma = k.sigma,
                             .quant_step = 1e-4,
                             .update_period_s = 1.0});
  }

  // PLPM: lowpowermode flag; writable with root privilege (the pmset
  // path). Reading reflects the chip state.
  {
    SmcKeyInfo info;
    info.key = FourCc("PLPM");
    info.type = SmcDataType::flag;
    info.writable = true;
    info.description = "lowpowermode enable flag";
    db.add(std::move(info),
           {.source = SensorSource::lowpower_flag, .update_period_s = 0.0});
  }

  // PSEC: a privileged-read key, to model that *some* keys are protected
  // (the point being that the leaky ones are not).
  {
    SmcKeyInfo info = power_key("PSEC", "secure enclave power budget (W)");
    info.privileged_read = true;
    db.add(std::move(info), {.source = SensorSource::constant,
                             .constant_value = 0.5,
                             .update_period_s = 1.0});
  }

  // --- Non-power keys: temperature, voltage, current, fan, battery.
  db.add({.key = FourCc("TC0P"),
          .type = SmcDataType::flt,
          .description = "CPU proximity temperature (C)"},
         {.source = SensorSource::temperature,
          .noise_sigma = 0.2,
          .quant_step = 0.01,
          .update_period_s = 1.0});
  db.add({.key = FourCc("TG0P"),
          .type = SmcDataType::flt,
          .description = "GPU proximity temperature (C)"},
         {.source = SensorSource::temperature,
          .noise_sigma = 0.3,
          .quant_step = 0.01,
          .update_period_s = 1.0});
  db.add({.key = FourCc("VP0C"),
          .type = SmcDataType::flt,
          .description = "P-cluster core voltage (V)"},
         {.source = SensorSource::cluster_voltage,
          .noise_sigma = 1e-3,
          .quant_step = 1e-3,
          .update_period_s = 1.0});
  db.add({.key = FourCc("IP0C"),
          .type = SmcDataType::flt,
          .description = "P-cluster current (A)"},
         {.source = SensorSource::rail_current,
          .rails = {.p_cluster = 1.0},
          .noise_sigma = 1e-3,
          .quant_step = 1e-3,
          .update_period_s = 1.0});
  if (m1) {
    db.add({.key = FourCc("F0Ac"),
            .type = SmcDataType::flt,
            .description = "fan 0 actual speed (rpm)"},
           {.source = SensorSource::fan_speed,
            .noise_sigma = 10.0,
            .quant_step = 1.0,
            .update_period_s = 1.0});
  }
  if (m2) {
    db.add({.key = FourCc("BNCB"),
            .type = SmcDataType::ui8,
            .description = "battery count"},
           {.source = SensorSource::constant,
            .constant_value = 1.0,
            .update_period_s = 0.0});
  }

  return db;
}

}  // namespace psc::smc
