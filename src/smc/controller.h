// The SMC co-processor simulation: owns the key catalog, samples the chip
// on each key's update schedule (power keys latch a new window-averaged
// value about once per second — the paper's observed cadence), and applies
// the per-key measurement path (noise, ADC quantization).
//
// Readers between updates see the same latched value, exactly like
// polling the real SMC faster than its refresh rate.
#pragma once

#include <cstdint>
#include <vector>

#include "smc/key_database.h"
#include "smc/mitigation.h"
#include "smc/types.h"
#include "soc/chip.h"
#include "util/rng.h"

namespace psc::smc {

class SmcController {
 public:
  // Builds the catalog for the chip's device profile, optionally with a
  // firmware-level mitigation policy applied (paper section 5).
  SmcController(soc::Chip& chip, std::uint64_t seed,
                MitigationPolicy mitigation = MitigationPolicy::none());

  SmcController(const SmcController&) = delete;
  SmcController& operator=(const SmcController&) = delete;

  const KeyDatabase& database() const noexcept { return database_; }
  soc::Chip& chip() noexcept { return *chip_; }

  // Latches every key whose update period has elapsed at the chip's
  // current simulated time. Read paths call this implicitly, so explicit
  // polling is only needed for precise experiment sequencing.
  void poll();

  // Reads the latched value of a key, subject to privilege checks.
  SmcStatus read(FourCc key, Privilege privilege, SmcValue& out);

  // Writes a writable key (configuration only; root required).
  SmcStatus write(FourCc key, Privilege privilege, const SmcValue& in);

  // Time the given key last latched a fresh value (for collectors that
  // align on update boundaries); negative if never.
  double last_latch_time(FourCc key) const noexcept;

 private:
  struct KeyState {
    double next_update_s = 0.0;
    double last_latch_s = -1.0;
    soc::RailEnergies energy_snapshot{};
    SmcValue latched{};
  };

  void latch(std::size_t index);
  SmcValue sample(const KeyEntry& entry, KeyState& state);
  double windowed_rail_value(const SensorSpec& spec,
                             const KeyState& state) const;

  soc::Chip* chip_;
  KeyDatabase database_;
  std::vector<KeyState> states_;
  util::Xoshiro256 rng_;
};

}  // namespace psc::smc
