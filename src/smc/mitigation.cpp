#include "smc/mitigation.h"

#include <algorithm>
#include <cmath>

namespace psc::smc {

MitigationPolicy MitigationPolicy::none() {
  return {};
}

MitigationPolicy MitigationPolicy::rapl_style_filtering() {
  // The blended noise must defeat the *strongest* class separation of any
  // key (PSTR's full-block bus signal, ~0.13 mW), not just the per-byte
  // CPA signal; 2 mW keeps every channel below the TVLA threshold at
  // paper-scale trace counts.
  return {.restrict_power_keys_to_root = false,
          .added_noise_sigma = 2e-3,
          .min_quant_step = 1e-3,        // report whole milliwatts
          .min_update_period_s = 10.0};  // 10x slower sampling
}

MitigationPolicy MitigationPolicy::access_control() {
  return {.restrict_power_keys_to_root = true};
}

bool MitigationPolicy::is_noop() const noexcept {
  return !restrict_power_keys_to_root && added_noise_sigma == 0.0 &&
         min_quant_step == 0.0 && min_update_period_s == 0.0;
}

bool is_power_telemetry(const KeyEntry& entry) noexcept {
  switch (entry.spec.source) {
    case SensorSource::rail_power:
    case SensorSource::rail_current:
    case SensorSource::estimated_power:
      return true;
    default:
      return false;
  }
}

KeyDatabase apply_mitigations(const KeyDatabase& database,
                              const MitigationPolicy& policy) {
  KeyDatabase out = database;
  if (policy.is_noop()) {
    return out;
  }
  for (KeyEntry& entry : out.mutable_entries()) {
    if (!is_power_telemetry(entry)) {
      continue;
    }
    if (policy.restrict_power_keys_to_root) {
      entry.info.privileged_read = true;
    }
    if (policy.added_noise_sigma > 0.0) {
      entry.spec.noise_sigma = std::hypot(entry.spec.noise_sigma,
                                          policy.added_noise_sigma);
    }
    entry.spec.quant_step =
        std::max(entry.spec.quant_step, policy.min_quant_step);
    entry.spec.update_period_s =
        std::max(entry.spec.update_period_s, policy.min_update_period_s);
  }
  return out;
}

}  // namespace psc::smc
