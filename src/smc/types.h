// SMC key/value vocabulary, mirroring the AppleSMC user-client data model:
// 4-character keys, 4-character type codes, small fixed-size payloads and
// per-key attribute flags.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/fourcc.h"

namespace psc::smc {

using util::FourCc;

// Payload encodings used by this simulator (a subset of the real SMC's
// type zoo).
enum class SmcDataType : std::uint8_t {
  flt,   // "flt ": 32-bit little-endian IEEE float
  ui8,   // "ui8 ": unsigned byte
  ui16,  // "ui16"
  ui32,  // "ui32"
  flag,  // "flag": boolean byte
};

// The 4-character type code for a data type ("flt ", "ui32", ...).
FourCc data_type_code(SmcDataType type) noexcept;

// Payload size in bytes.
std::uint8_t data_type_size(SmcDataType type) noexcept;

// Operation results, modelled on SMC result codes.
enum class SmcStatus : std::uint8_t {
  ok = 0,
  key_not_found,
  not_readable,
  not_writable,
  privilege_required,
  bad_argument,
  bad_index,
};

std::string_view status_name(SmcStatus status) noexcept;

// Caller privilege for the connection (kernel/root vs. sandboxed user).
// The paper's attacker is an unprivileged user-mode process.
enum class Privilege : std::uint8_t {
  user,
  root,
};

// A typed SMC value with its raw payload.
class SmcValue {
 public:
  SmcValue() = default;

  static SmcValue from_float(float value);
  static SmcValue from_u8(std::uint8_t value);
  static SmcValue from_u16(std::uint16_t value);
  static SmcValue from_u32(std::uint32_t value);
  static SmcValue from_flag(bool value);

  SmcDataType type() const noexcept { return type_; }
  std::uint8_t size() const noexcept { return data_type_size(type_); }
  const std::array<std::uint8_t, 8>& bytes() const noexcept { return bytes_; }

  float as_float() const noexcept;
  std::uint8_t as_u8() const noexcept { return bytes_[0]; }
  std::uint16_t as_u16() const noexcept;
  std::uint32_t as_u32() const noexcept;
  bool as_flag() const noexcept { return bytes_[0] != 0; }

  // Numeric view regardless of encoding (used by the fuzzer's diffing).
  double as_double() const noexcept;

  // Raw payload decoding (client side, from wire bytes).
  static SmcValue from_raw(SmcDataType type,
                           const std::uint8_t* data) noexcept;

 private:
  SmcDataType type_ = SmcDataType::flt;
  std::array<std::uint8_t, 8> bytes_{};
};

// Static description of a key (the "key info" the SMC reports).
struct SmcKeyInfo {
  FourCc key;
  SmcDataType type = SmcDataType::flt;
  bool readable = true;
  bool writable = false;
  // Requires a root connection to read (most power keys are NOT privileged
  // on Apple silicon — that is the paper's core finding).
  bool privileged_read = false;
  std::string description;
};

}  // namespace psc::smc
