#include "smc/types.h"

#include <cstring>

namespace psc::smc {

FourCc data_type_code(SmcDataType type) noexcept {
  switch (type) {
    case SmcDataType::flt:
      return FourCc("flt ");
    case SmcDataType::ui8:
      return FourCc("ui8 ");
    case SmcDataType::ui16:
      return FourCc("ui16");
    case SmcDataType::ui32:
      return FourCc("ui32");
    case SmcDataType::flag:
      return FourCc("flag");
  }
  return FourCc();
}

std::uint8_t data_type_size(SmcDataType type) noexcept {
  switch (type) {
    case SmcDataType::flt:
      return 4;
    case SmcDataType::ui8:
      return 1;
    case SmcDataType::ui16:
      return 2;
    case SmcDataType::ui32:
      return 4;
    case SmcDataType::flag:
      return 1;
  }
  return 0;
}

std::string_view status_name(SmcStatus status) noexcept {
  switch (status) {
    case SmcStatus::ok:
      return "ok";
    case SmcStatus::key_not_found:
      return "key_not_found";
    case SmcStatus::not_readable:
      return "not_readable";
    case SmcStatus::not_writable:
      return "not_writable";
    case SmcStatus::privilege_required:
      return "privilege_required";
    case SmcStatus::bad_argument:
      return "bad_argument";
    case SmcStatus::bad_index:
      return "bad_index";
  }
  return "?";
}

SmcValue SmcValue::from_float(float value) {
  SmcValue v;
  v.type_ = SmcDataType::flt;
  std::memcpy(v.bytes_.data(), &value, sizeof value);
  return v;
}

SmcValue SmcValue::from_u8(std::uint8_t value) {
  SmcValue v;
  v.type_ = SmcDataType::ui8;
  v.bytes_[0] = value;
  return v;
}

SmcValue SmcValue::from_u16(std::uint16_t value) {
  SmcValue v;
  v.type_ = SmcDataType::ui16;
  v.bytes_[0] = static_cast<std::uint8_t>(value & 0xff);
  v.bytes_[1] = static_cast<std::uint8_t>(value >> 8);
  return v;
}

SmcValue SmcValue::from_u32(std::uint32_t value) {
  SmcValue v;
  v.type_ = SmcDataType::ui32;
  for (int i = 0; i < 4; ++i) {
    v.bytes_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
  return v;
}

SmcValue SmcValue::from_flag(bool value) {
  SmcValue v;
  v.type_ = SmcDataType::flag;
  v.bytes_[0] = value ? 1 : 0;
  return v;
}

float SmcValue::as_float() const noexcept {
  float out = 0.0f;
  std::memcpy(&out, bytes_.data(), sizeof out);
  return out;
}

std::uint16_t SmcValue::as_u16() const noexcept {
  return static_cast<std::uint16_t>(bytes_[0] |
                                    (static_cast<std::uint16_t>(bytes_[1])
                                     << 8));
}

std::uint32_t SmcValue::as_u32() const noexcept {
  std::uint32_t out = 0;
  for (int i = 3; i >= 0; --i) {
    out = (out << 8) | bytes_[static_cast<std::size_t>(i)];
  }
  return out;
}

double SmcValue::as_double() const noexcept {
  switch (type_) {
    case SmcDataType::flt:
      return static_cast<double>(as_float());
    case SmcDataType::ui8:
      return as_u8();
    case SmcDataType::ui16:
      return as_u16();
    case SmcDataType::ui32:
      return as_u32();
    case SmcDataType::flag:
      return as_flag() ? 1.0 : 0.0;
  }
  return 0.0;
}

SmcValue SmcValue::from_raw(SmcDataType type,
                            const std::uint8_t* data) noexcept {
  SmcValue v;
  v.type_ = type;
  const std::uint8_t n = data_type_size(type);
  for (std::uint8_t i = 0; i < n; ++i) {
    v.bytes_[i] = data[i];
  }
  return v;
}

}  // namespace psc::smc
