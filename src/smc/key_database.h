// Per-device SMC key catalogs.
//
// Key names follow the convention the paper exploits: power-related keys
// start with 'P'. The catalog contains the keys the paper found to be
// workload-dependent (Table 2) bound to chip rails, plus a population of
// static power keys (always-on rails, setpoints) and non-power keys
// (temperature, voltage, fan, battery) so that the idle-vs-busy triage of
// section 3.2 is a real search problem.
//
// Rail binding hypothesis (real semantics are not public; see DESIGN.md):
//   PHPC - P-cluster core rail meter (uW class, low noise)
//   PDTR - DC input meter over the compute rails, weak DRAM/IO coupling
//   PSTR - full system rail including DRAM/IO (noisy)
//   PMVC - P-cluster VRM current meter (M2)
//   PMVR - P-cluster VRM-side power meter (M1)
//   PPMR - package power meter rail (M1)
//   PHPS - governor's utilization-based power estimate (not a sensor)
#pragma once

#include <optional>
#include <vector>

#include "smc/sensor.h"
#include "smc/types.h"

namespace psc::smc {

struct KeyEntry {
  SmcKeyInfo info;
  SensorSpec spec;
};

class KeyDatabase {
 public:
  // Builds the catalog for one of the two supported devices by name
  // ("Mac Mini M1" / "MacBook Air M2", as in DeviceProfile::name).
  static KeyDatabase for_device(const std::string& device_name);

  std::size_t size() const noexcept { return entries_.size(); }

  // Keys in index order (the order key-by-index enumeration walks).
  const std::vector<KeyEntry>& entries() const noexcept { return entries_; }

  // Mutable access for mitigation layers that rewrite sensor specs (see
  // smc/mitigation.h).
  std::vector<KeyEntry>& mutable_entries() noexcept { return entries_; }

  const KeyEntry* find(FourCc key) const noexcept;

  // All keys whose name starts with `prefix_char`.
  std::vector<FourCc> keys_with_prefix(char prefix_char) const;

  // The data-dependent power keys of this device, in paper order — the
  // ground truth that the Table 2 scan is expected to rediscover.
  const std::vector<FourCc>& workload_dependent_keys() const noexcept {
    return workload_dependent_;
  }

 private:
  void add(SmcKeyInfo info, SensorSpec spec);

  std::vector<KeyEntry> entries_;
  std::vector<FourCc> workload_dependent_;
};

}  // namespace psc::smc
