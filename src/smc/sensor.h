// Binding of an SMC key to a physical quantity of the chip simulator, plus
// the measurement-path parameters (update period, averaging, noise, ADC
// resolution) that determine what a software reader actually sees.
//
// Real SMC key semantics on Apple silicon are undocumented; these bindings
// are the reproduction's ground-truth hypothesis, chosen so the published
// per-key behaviour (Tables 2-5) emerges mechanistically. See DESIGN.md §3.
#pragma once

#include <array>

#include "soc/types.h"

namespace psc::smc {

enum class SensorSource {
  rail_power,        // weighted sum of window-averaged rail powers (watts)
  rail_current,      // same weighted sum divided by P-cluster voltage (amps)
  estimated_power,   // utilization-model package power (no data dependence)
  temperature,       // die temperature (Celsius)
  cluster_voltage,   // DVFS voltage of the P-cluster (volts)
  fan_speed,         // cooling fan (rpm); 0 on fanless devices
  constant,          // fixed value (static rails, setpoints, counters)
  lowpower_flag,     // the chip's lowpowermode state (read/write)
};

// Weights over the four physical rails a power meter can tap. Each SMC
// power key integrates its own combination of VRM taps; e.g. a "DC in"
// meter sees the compute rails through the conversion loss (weight 1/eta)
// but only part of the memory/IO rail.
struct RailWeights {
  double p_cluster = 0.0;
  double e_cluster = 0.0;
  double uncore = 0.0;
  double dram = 0.0;

  double weight(soc::RailId rail) const noexcept {
    switch (rail) {
      case soc::RailId::p_cluster:
        return p_cluster;
      case soc::RailId::e_cluster:
        return e_cluster;
      case soc::RailId::uncore:
        return uncore;
      case soc::RailId::dram:
        return dram;
      default:
        return 0.0;
    }
  }
};

struct SensorSpec {
  SensorSource source = SensorSource::constant;
  RailWeights rails{};           // for rail_power / rail_current sources
  double constant_value = 0.0;   // for constant source
  double noise_sigma = 0.0;      // additive Gaussian, in reported units
  double quant_step = 0.0;       // ADC resolution, in reported units
  double update_period_s = 1.0;  // how often the SMC latches a new value
};

}  // namespace psc::smc
