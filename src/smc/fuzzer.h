// smc-fuzzer-style enumeration utilities: snapshot key values under
// different system conditions and diff them to find workload-correlated
// keys (the section 3.2 triage that produced Table 2).
#pragma once

#include <vector>

#include "smc/client.h"

namespace psc::smc {

struct KeySnapshot {
  FourCc key;
  double value = 0.0;
};

struct KeyDelta {
  FourCc key;
  double baseline = 0.0;  // e.g. idle
  double loaded = 0.0;    // e.g. stressed
  double abs_delta = 0.0;
  double rel_delta = 0.0;  // |delta| / max(|baseline|, epsilon)
};

// Reads every readable key starting with `prefix` through `conn`.
// Unreadable/privileged keys are skipped (as an unprivileged fuzzer would
// experience).
std::vector<KeySnapshot> snapshot_keys(SmcConnection& conn, char prefix);

// Pairs up snapshots by key and computes deltas, sorted by descending
// relative delta. Keys present in only one snapshot are ignored.
std::vector<KeyDelta> diff_snapshots(const std::vector<KeySnapshot>& baseline,
                                     const std::vector<KeySnapshot>& loaded);

// Filters deltas down to keys considered workload-dependent: relative
// change above `rel_threshold` and absolute change above `abs_threshold`
// (to reject noise wiggle on near-zero constants).
std::vector<FourCc> workload_dependent_keys(
    const std::vector<KeyDelta>& deltas, double rel_threshold = 0.05,
    double abs_threshold = 5e-3);

}  // namespace psc::smc
