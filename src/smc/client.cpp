#include "smc/client.h"

#include <cmath>

namespace psc::smc {

namespace {

std::uint8_t attribute_bits(const SmcKeyInfo& info) noexcept {
  std::uint8_t bits = 0;
  if (info.readable) {
    bits |= 0x01;
  }
  if (info.writable) {
    bits |= 0x02;
  }
  if (info.privileged_read) {
    bits |= 0x04;
  }
  return bits;
}

}  // namespace

SmcConnection::SmcConnection(SmcController& controller, Privilege privilege)
    : controller_(&controller), privilege_(privilege) {}

SmcStatus SmcConnection::call_struct_method(std::uint32_t selector,
                                            const SmcKeyData& in,
                                            SmcKeyData& out) {
  out = SmcKeyData{};
  if (selector != selector_handle_ypc_event) {
    out.result = static_cast<std::uint8_t>(SmcStatus::bad_argument);
    return SmcStatus::bad_argument;
  }

  const auto finish = [&out](SmcStatus status) {
    out.result = static_cast<std::uint8_t>(status);
    return status;
  };

  switch (static_cast<SmcCommand>(in.command)) {
    case SmcCommand::read_key: {
      SmcValue value;
      const SmcStatus status =
          controller_->read(FourCc(in.key), privilege_, value);
      if (status != SmcStatus::ok) {
        return finish(status);
      }
      out.key = in.key;
      out.key_info.data_size = value.size();
      out.key_info.data_type = data_type_code(value.type()).code();
      for (std::size_t i = 0; i < value.size(); ++i) {
        out.bytes[i] = value.bytes()[i];
      }
      return finish(SmcStatus::ok);
    }
    case SmcCommand::write_key: {
      const KeyEntry* entry = controller_->database().find(FourCc(in.key));
      if (entry == nullptr) {
        return finish(SmcStatus::key_not_found);
      }
      const SmcValue value =
          SmcValue::from_raw(entry->info.type, in.bytes.data());
      return finish(controller_->write(FourCc(in.key), privilege_, value));
    }
    case SmcCommand::key_info: {
      const KeyEntry* entry = controller_->database().find(FourCc(in.key));
      if (entry == nullptr) {
        return finish(SmcStatus::key_not_found);
      }
      out.key = in.key;
      out.key_info.data_size = data_type_size(entry->info.type);
      out.key_info.data_type = data_type_code(entry->info.type).code();
      out.key_info.attributes = attribute_bits(entry->info);
      return finish(SmcStatus::ok);
    }
    case SmcCommand::key_by_index: {
      const auto& entries = controller_->database().entries();
      if (in.index >= entries.size()) {
        return finish(SmcStatus::bad_index);
      }
      out.key = entries[in.index].info.key.code();
      return finish(SmcStatus::ok);
    }
  }
  return finish(SmcStatus::bad_argument);
}

SmcStatus SmcConnection::read_key(FourCc key, SmcValue& out) {
  SmcKeyData in;
  in.key = key.code();
  in.command = static_cast<std::uint8_t>(SmcCommand::read_key);
  SmcKeyData reply;
  const SmcStatus status =
      call_struct_method(selector_handle_ypc_event, in, reply);
  if (status != SmcStatus::ok) {
    return status;
  }
  const KeyEntry* entry = controller_->database().find(key);
  out = SmcValue::from_raw(entry->info.type, reply.bytes.data());
  return SmcStatus::ok;
}

SmcStatus SmcConnection::write_key(FourCc key, const SmcValue& value) {
  SmcKeyData in;
  in.key = key.code();
  in.command = static_cast<std::uint8_t>(SmcCommand::write_key);
  for (std::size_t i = 0; i < value.size(); ++i) {
    in.bytes[i] = value.bytes()[i];
  }
  SmcKeyData reply;
  return call_struct_method(selector_handle_ypc_event, in, reply);
}

SmcStatus SmcConnection::key_info(FourCc key, SmcKeyInfo& out) {
  SmcKeyData in;
  in.key = key.code();
  in.command = static_cast<std::uint8_t>(SmcCommand::key_info);
  SmcKeyData reply;
  const SmcStatus status =
      call_struct_method(selector_handle_ypc_event, in, reply);
  if (status != SmcStatus::ok) {
    return status;
  }
  // The wire call returns sizes/attributes; the catalog holds the full
  // description for convenience.
  const KeyEntry* entry = controller_->database().find(key);
  out = entry->info;
  return SmcStatus::ok;
}

SmcStatus SmcConnection::key_at_index(std::uint32_t index, FourCc& out) {
  SmcKeyData in;
  in.index = index;
  in.command = static_cast<std::uint8_t>(SmcCommand::key_by_index);
  SmcKeyData reply;
  const SmcStatus status =
      call_struct_method(selector_handle_ypc_event, in, reply);
  if (status != SmcStatus::ok) {
    return status;
  }
  out = FourCc(reply.key);
  return SmcStatus::ok;
}

std::uint32_t SmcConnection::key_count() {
  return static_cast<std::uint32_t>(controller_->database().size());
}

std::vector<FourCc> SmcConnection::list_keys() {
  std::vector<FourCc> keys;
  const std::uint32_t count = key_count();
  keys.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    FourCc key;
    if (key_at_index(i, key) == SmcStatus::ok) {
      keys.push_back(key);
    }
  }
  return keys;
}

double SmcConnection::read_numeric(FourCc key) {
  SmcValue value;
  if (read_key(key, value) != SmcStatus::ok) {
    return std::nan("");
  }
  return value.as_double();
}

}  // namespace psc::smc
