// Countermeasures against the SMC power side channel (paper section 5),
// modelled after the industry response to PLATYPUS (INTEL-SA-00389 /
// CVE-2020-8694): restrict unprivileged access to power telemetry, blend
// random noise into the reported energy, clamp the reporting resolution,
// and slow the update interval. Applying a policy rewrites the per-key
// sensor specs, so both the full-platform SMC controller and the fast
// trace source observe the mitigated channel identically.
#pragma once

#include "smc/key_database.h"

namespace psc::smc {

struct MitigationPolicy {
  // Access-control mitigation: power-related keys require a root
  // connection (what Linux did for RAPL after PLATYPUS).
  bool restrict_power_keys_to_root = false;

  // Energy-filtering mitigation: extra zero-mean Gaussian noise blended
  // into every power/current reading, in reported units (RAPL-style
  // "random energy noise").
  double added_noise_sigma = 0.0;

  // Resolution clamp: minimum quantization step for power/current keys
  // (e.g. 1e-3 = milliwatt-only reporting).
  double min_quant_step = 0.0;

  // Update-interval clamp: minimum seconds between fresh samples. Does
  // not change per-trace statistics, but divides the attacker's trace
  // collection rate (each trace costs one update interval).
  double min_update_period_s = 0.0;

  // No mitigation (the state of the ecosystem the paper reports).
  static MitigationPolicy none();

  // The RAPL-filtering analogue: noise blending + coarser resolution +
  // slower updates, keeping the keys readable for legitimate telemetry.
  static MitigationPolicy rapl_style_filtering();

  // The access-control response: power keys become root-only.
  static MitigationPolicy access_control();

  bool is_noop() const noexcept;
};

// True for keys the policy considers power telemetry (rail meters,
// current meters and the estimate channel).
bool is_power_telemetry(const KeyEntry& entry) noexcept;

// Returns a copy of `database` with the policy applied to every power
// telemetry key.
KeyDatabase apply_mitigations(const KeyDatabase& database,
                              const MitigationPolicy& policy);

}  // namespace psc::smc
