// Simulated OS scheduler over the chip's cores.
//
// Models the macOS behaviour the paper's §4 setup relies on: by switching
// the policy to round-robin (SCHED_RR) and raising thread priority, the
// AES victim threads are steered onto the P-cores, while default-policy
// stressors land on the E-cores. Threads in excess of cores are time
// sliced per scheduling quantum.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "soc/chip.h"
#include "soc/workload.h"

namespace psc::sched {

enum class SchedPolicy {
  other,        // default timesharing
  round_robin,  // SCHED_RR
};

struct ThreadAttributes {
  SchedPolicy policy = SchedPolicy::other;
  // Larger is stronger; SCHED_RR at max priority is the paper's recipe for
  // P-core placement.
  int priority = 31;
  // Hard affinity, if set (macOS offers only hints; the simulator exposes
  // a hint too — it biases placement but loses to higher-priority demand).
  std::optional<soc::CoreType> cluster_hint;
};

using ThreadId = std::uint32_t;

// A schedulable thread wrapping a workload.
class SimThread {
 public:
  SimThread(ThreadId id, std::string name,
            std::unique_ptr<soc::Workload> workload, ThreadAttributes attrs);

  ThreadId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  soc::Workload& workload() noexcept { return *workload_; }
  const soc::Workload& workload() const noexcept { return *workload_; }
  const ThreadAttributes& attributes() const noexcept { return attrs_; }

  // Seconds of CPU time received so far.
  double cpu_time_s() const noexcept { return cpu_time_s_; }
  // Index of the core the thread ran on in the last quantum, if any.
  std::optional<std::size_t> last_core() const noexcept { return last_core_; }

 private:
  friend class Scheduler;

  ThreadId id_;
  std::string name_;
  std::unique_ptr<soc::Workload> workload_;
  ThreadAttributes attrs_;
  double cpu_time_s_ = 0.0;
  std::optional<std::size_t> last_core_;
  std::uint64_t virtual_runtime_ticks_ = 0;  // for time slicing fairness
};

class Scheduler {
 public:
  // Schedules onto `chip`'s cores; quantum is the scheduling period.
  explicit Scheduler(soc::Chip& chip, double quantum_s = 1e-3);

  // Creates a thread; the scheduler owns it until kill().
  ThreadId spawn(std::string name, std::unique_ptr<soc::Workload> workload,
                 ThreadAttributes attrs = {});

  // Removes a thread (its workload is destroyed).
  void kill(ThreadId id);

  SimThread& thread(ThreadId id);
  const SimThread& thread(ThreadId id) const;
  std::size_t thread_count() const noexcept { return threads_.size(); }

  // Runs the machine for `seconds`: each quantum, picks core assignments,
  // then advances the chip.
  void run_for(double seconds);

  // Runs a single quantum.
  void step();

  double quantum_s() const noexcept { return quantum_s_; }

 private:
  void place_threads();

  soc::Chip* chip_;
  double quantum_s_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  ThreadId next_id_ = 1;
};

}  // namespace psc::sched
