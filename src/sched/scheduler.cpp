#include "sched/scheduler.h"

#include <algorithm>
#include <stdexcept>

namespace psc::sched {

namespace {

// Effective placement weight: real-time (round-robin) policy outranks any
// timesharing priority, mirroring how SCHED_RR threads preempt default
// ones.
int placement_weight(const ThreadAttributes& attrs) noexcept {
  return attrs.priority + (attrs.policy == SchedPolicy::round_robin ? 64 : 0);
}

}  // namespace

SimThread::SimThread(ThreadId id, std::string name,
                     std::unique_ptr<soc::Workload> workload,
                     ThreadAttributes attrs)
    : id_(id),
      name_(std::move(name)),
      workload_(std::move(workload)),
      attrs_(attrs) {
  if (workload_ == nullptr) {
    throw std::invalid_argument("SimThread: null workload");
  }
}

Scheduler::Scheduler(soc::Chip& chip, double quantum_s)
    : chip_(&chip), quantum_s_(quantum_s) {
  if (quantum_s_ <= 0.0) {
    throw std::invalid_argument("Scheduler: quantum must be positive");
  }
}

ThreadId Scheduler::spawn(std::string name,
                          std::unique_ptr<soc::Workload> workload,
                          ThreadAttributes attrs) {
  const ThreadId id = next_id_++;
  threads_.push_back(std::make_unique<SimThread>(id, std::move(name),
                                                 std::move(workload), attrs));
  return id;
}

void Scheduler::kill(ThreadId id) {
  const auto it = std::find_if(
      threads_.begin(), threads_.end(),
      [id](const auto& t) { return t->id() == id; });
  if (it == threads_.end()) {
    throw std::out_of_range("Scheduler::kill: unknown thread id");
  }
  // Detach from any core still pointing at the workload.
  for (std::size_t c = 0; c < chip_->core_count(); ++c) {
    if (chip_->core(c).workload() == &(*it)->workload()) {
      chip_->core(c).assign(nullptr);
    }
  }
  threads_.erase(it);
}

SimThread& Scheduler::thread(ThreadId id) {
  for (const auto& t : threads_) {
    if (t->id() == id) {
      return *t;
    }
  }
  throw std::out_of_range("Scheduler::thread: unknown thread id");
}

const SimThread& Scheduler::thread(ThreadId id) const {
  for (const auto& t : threads_) {
    if (t->id() == id) {
      return *t;
    }
  }
  throw std::out_of_range("Scheduler::thread: unknown thread id");
}

void Scheduler::place_threads() {
  for (std::size_t c = 0; c < chip_->core_count(); ++c) {
    chip_->core(c).assign(nullptr);
  }

  // Pick order: strongest weight first; equal weights rotate by least
  // virtual runtime (giving RR time slicing when threads exceed cores).
  std::vector<SimThread*> order;
  order.reserve(threads_.size());
  for (const auto& t : threads_) {
    order.push_back(t.get());
  }
  std::sort(order.begin(), order.end(), [](const SimThread* a,
                                           const SimThread* b) {
    const int wa = placement_weight(a->attributes());
    const int wb = placement_weight(b->attributes());
    if (wa != wb) {
      return wa > wb;
    }
    if (a->virtual_runtime_ticks_ != b->virtual_runtime_ticks_) {
      return a->virtual_runtime_ticks_ < b->virtual_runtime_ticks_;
    }
    return a->id() < b->id();
  });

  const std::size_t p_count = chip_->p_core_count();
  const std::size_t total = chip_->core_count();
  std::vector<bool> taken(total, false);

  auto take_first_free = [&](std::size_t begin,
                             std::size_t end) -> std::optional<std::size_t> {
    for (std::size_t c = begin; c < end; ++c) {
      if (!taken[c]) {
        return c;
      }
    }
    return std::nullopt;
  };

  for (SimThread* t : order) {
    std::optional<std::size_t> slot;
    const auto& attrs = t->attributes();
    const bool wants_efficiency =
        attrs.cluster_hint == soc::CoreType::efficiency;
    if (wants_efficiency) {
      slot = take_first_free(p_count, total);
      if (!slot) {
        slot = take_first_free(0, p_count);
      }
    } else {
      // Performance-first placement; demand sorted by weight means
      // real-time threads grab the P-cores and default threads overflow
      // onto the E-cores.
      slot = take_first_free(0, p_count);
      if (!slot) {
        slot = take_first_free(p_count, total);
      }
    }
    if (!slot) {
      t->last_core_ = std::nullopt;  // time sliced out this quantum
      continue;
    }
    taken[*slot] = true;
    chip_->core(*slot).assign(&t->workload());
    t->last_core_ = *slot;
  }
}

void Scheduler::step() {
  place_threads();
  chip_->advance(quantum_s_);
  for (const auto& t : threads_) {
    if (t->last_core_.has_value()) {
      t->cpu_time_s_ += quantum_s_;
      ++t->virtual_runtime_ticks_;
    }
  }
}

void Scheduler::run_for(double seconds) {
  const auto quanta = static_cast<std::size_t>(seconds / quantum_s_);
  for (std::size_t q = 0; q < quanta; ++q) {
    step();
  }
}

}  // namespace psc::sched
