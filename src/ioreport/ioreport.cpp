#include "ioreport/ioreport.h"

#include <algorithm>
#include <cmath>

namespace psc::ioreport {

IoReport::IoReport(const soc::Chip& chip, std::uint64_t seed)
    : chip_(&chip), rng_(seed) {}

std::vector<Channel> IoReport::channels() const {
  return {
      {"Energy Model", "PCPU"},
      {"Energy Model", "ECPU"},
  };
}

Sample IoReport::sample() {
  Sample s;
  s.time_s = chip_->time_s();
  // Utilization-model energy plus a small jitter representing OS activity
  // the model attributes to the cluster (daemons, the sampling process
  // itself); then truncated to whole millijoules.
  const double p_j =
      chip_->estimated_cluster_energy_j(soc::CoreType::performance) +
      rng_.gaussian(0.0, 2e-3);
  const double e_j =
      chip_->estimated_cluster_energy_j(soc::CoreType::efficiency) +
      rng_.gaussian(0.0, 1e-3);
  s.pcpu_energy_mj =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(p_j * 1e3)));
  s.ecpu_energy_mj =
      static_cast<std::uint64_t>(std::max(0.0, std::floor(e_j * 1e3)));
  return s;
}

std::uint64_t IoReport::pcpu_delta_mj(const Sample& before,
                                      const Sample& after) noexcept {
  return after.pcpu_energy_mj >= before.pcpu_energy_mj
             ? after.pcpu_energy_mj - before.pcpu_energy_mj
             : 0;
}

}  // namespace psc::ioreport
