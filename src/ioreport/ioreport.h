// IOReport "Energy Model" channel simulation (paper section 3.6).
//
// socpowerbud-style readers subscribe to channel groups and sample
// cumulative energy counters. The "Energy Model" group's PCPU/ECPU
// channels report energy in *millijoules*, computed from core utilization
// and the DVFS operating point — an estimate, not a sensor reading. Both
// properties the paper blames for the channel's lack of data dependence
// are modelled: mJ resolution (vs the uW-class SMC keys) and
// utilization-derived values that cannot see data-dependent draw.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "soc/chip.h"
#include "util/rng.h"

namespace psc::ioreport {

struct Channel {
  std::string group;
  std::string name;
};

// A subscription samples cumulative counters; deltas between samples give
// per-interval energy, as socpowerbud computes.
struct Sample {
  double time_s = 0.0;
  std::uint64_t pcpu_energy_mj = 0;
  std::uint64_t ecpu_energy_mj = 0;
};

class IoReport {
 public:
  // `seed` drives the unmodelled-OS-activity jitter on the estimates.
  IoReport(const soc::Chip& chip, std::uint64_t seed);

  // Available channels (Energy Model group).
  std::vector<Channel> channels() const;

  // Samples the cumulative counters at the chip's current time.
  Sample sample();

  // Convenience: energy delta of the PCPU channel between two samples, in
  // millijoules.
  static std::uint64_t pcpu_delta_mj(const Sample& before,
                                     const Sample& after) noexcept;

 private:
  const soc::Chip* chip_;
  util::Xoshiro256 rng_;
};

}  // namespace psc::ioreport
