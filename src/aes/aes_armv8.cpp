#include "aes/aes_armv8.h"

namespace psc::aes {

Block aese(const Block& state, const Block& round_key) noexcept {
  Block s = state;
  add_round_key(s, round_key);
  sub_bytes(s);
  shift_rows(s);
  return s;
}

Block aesmc(const Block& state) noexcept {
  Block s = state;
  mix_columns(s);
  return s;
}

Aes128Armv8::Aes128Armv8(const Block& key) noexcept
    : round_keys_(Aes128::expand_key(key)) {}

Block Aes128Armv8::encrypt(const Block& plaintext) const noexcept {
  Block s = plaintext;
  for (std::size_t r = 0; r + 1 < num_rounds; ++r) {
    s = aesmc(aese(s, round_keys_[r]));
  }
  s = aese(s, round_keys_[num_rounds - 1]);
  add_round_key(s, round_keys_[num_rounds]);
  return s;
}

Block Aes128Armv8::encrypt_trace(const Block& plaintext,
                                 Armv8InstructionTrace& trace) const noexcept {
  Block s = plaintext;
  std::size_t slot = 0;
  for (std::size_t r = 0; r + 1 < num_rounds; ++r) {
    s = aese(s, round_keys_[r]);
    trace.values[slot++] = s;
    s = aesmc(s);
    trace.values[slot++] = s;
  }
  s = aese(s, round_keys_[num_rounds - 1]);
  trace.values[slot++] = s;
  add_round_key(s, round_keys_[num_rounds]);
  trace.values[slot++] = s;
  return s;
}

}  // namespace psc::aes
