// AES-128 (FIPS-197) with full intermediate-state capture.
//
// The simulator needs more than encrypt/decrypt: the leakage model consumes
// the true intermediate round states of every encryption, and the CPA
// attack needs the key schedule in both directions (a round-10 key recovered
// by a last-round attack must be inverted to the master key). The state is
// kept as a flat 16-byte block in FIPS input order (byte i holds state
// element s[i%4][i/4], i.e. columns are consecutive 4-byte groups).
#pragma once

#include <array>
#include <cstdint>

namespace psc::aes {

using Block = std::array<std::uint8_t, 16>;

// Number of AES-128 rounds.
inline constexpr int num_rounds = 10;

// All intermediate states of one encryption, for leakage evaluation.
//   post_add_round_key[r] : state after AddRoundKey of round r (r=0 is the
//                           initial whitening; r=10 is the ciphertext).
//   post_sub_bytes[r-1]   : state after SubBytes of round r (r=1..10).
struct RoundTrace {
  std::array<Block, num_rounds + 1> post_add_round_key{};
  std::array<Block, num_rounds> post_sub_bytes{};
};

// AES-128 block cipher with a fixed key.
class Aes128 {
 public:
  // Expands the 16-byte key into all 11 round keys.
  explicit Aes128(const Block& key) noexcept;

  // Encrypts one block.
  Block encrypt(const Block& plaintext) const noexcept;

  // Encrypts one block and records all intermediate states in `trace`.
  // Returns the ciphertext (== trace.post_add_round_key[10]).
  Block encrypt_trace(const Block& plaintext, RoundTrace& trace) const noexcept;

  // Decrypts one block (inverse cipher, FIPS-197 section 5.3).
  Block decrypt(const Block& ciphertext) const noexcept;

  // Round keys rk[0..10]; rk[0] is the master key.
  const std::array<Block, num_rounds + 1>& round_keys() const noexcept {
    return round_keys_;
  }

  // Forward key expansion (exposed for tests and for key-schedule
  // inversion checks).
  static std::array<Block, num_rounds + 1> expand_key(
      const Block& key) noexcept;

  // Reconstructs the master key from the round-10 key by running the key
  // schedule backwards. A last-round CPA recovers rk[10]; this maps it to
  // the AES-128 key the victim loaded.
  static Block master_key_from_round10(const Block& round10_key) noexcept;

 private:
  std::array<Block, num_rounds + 1> round_keys_{};
};

// In-place round primitives, exposed so that the ARMv8-flavour
// implementation and the attack-side power models can reuse the exact same
// transforms.
void sub_bytes(Block& state) noexcept;
void inv_sub_bytes(Block& state) noexcept;
void shift_rows(Block& state) noexcept;
void inv_shift_rows(Block& state) noexcept;
void mix_columns(Block& state) noexcept;
void inv_mix_columns(Block& state) noexcept;
void add_round_key(Block& state, const Block& round_key) noexcept;

// Index of the state byte that ShiftRows moves *into* position i: after
// ShiftRows, out[i] == in[shift_rows_source(i)].
constexpr std::size_t shift_rows_source(std::size_t i) noexcept {
  const std::size_t row = i % 4;
  const std::size_t col = i / 4;
  return row + 4 * ((col + row) % 4);
}

// Hamming weight of one byte.
constexpr int hamming_weight(std::uint8_t b) noexcept {
  int count = 0;
  for (int i = 0; i < 8; ++i) {
    count += (b >> i) & 1;
  }
  return count;
}

// Hamming weight of a 16-byte block (0..128).
int hamming_weight(const Block& block) noexcept;

// Hamming distance between two blocks (0..128).
int hamming_distance(const Block& a, const Block& b) noexcept;

}  // namespace psc::aes
