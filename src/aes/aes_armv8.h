// Software model of the ARMv8 Cryptographic Extension AES instructions.
//
// The paper's victim workload is the AES-Intrinsics implementation, which
// encrypts with the AESE/AESMC instruction pair. Modelling the instruction
// semantics (rather than only the abstract cipher) lets the leakage model
// attach energy to the architecturally visible values each instruction
// produces, mirroring what the silicon datapath toggles.
//
//   AESE  (state, key): ShiftRows(SubBytes(state XOR key))
//   AESMC (state)     : MixColumns(state)
#pragma once

#include <array>

#include "aes/aes128.h"

namespace psc::aes {

// Single-round AESE instruction semantics.
Block aese(const Block& state, const Block& round_key) noexcept;

// AESMC instruction semantics.
Block aesmc(const Block& state) noexcept;

// Values produced by each instruction of one ARMv8 AES-128 encryption, in
// program order: AESE/AESMC alternating for rounds 1..9 (18 entries), then
// the final AESE and the closing EOR (2 entries). 20 values total.
struct Armv8InstructionTrace {
  static constexpr std::size_t instruction_count = 20;
  std::array<Block, instruction_count> values{};
};

// AES-128 encryption composed exactly like the AES-Intrinsics kernel:
//
//   for r in 0..8:  s = AESMC(AESE(s, rk[r]))
//   s = AESE(s, rk[9])
//   s = s XOR rk[10]
//
// Produces ciphertext identical to Aes128::encrypt (tested property).
class Aes128Armv8 {
 public:
  explicit Aes128Armv8(const Block& key) noexcept;

  Block encrypt(const Block& plaintext) const noexcept;

  // Encrypts while recording the output of every AESE/AESMC/EOR.
  Block encrypt_trace(const Block& plaintext,
                      Armv8InstructionTrace& trace) const noexcept;

  const std::array<Block, num_rounds + 1>& round_keys() const noexcept {
    return round_keys_;
  }

 private:
  std::array<Block, num_rounds + 1> round_keys_{};
};

}  // namespace psc::aes
