#include "aes/aes128.h"

#include <bit>

#include "aes/sbox.h"

namespace psc::aes {

namespace {

constexpr std::array<std::uint8_t, 11> rcon = {0x00, 0x01, 0x02, 0x04,
                                               0x08, 0x10, 0x20, 0x40,
                                               0x80, 0x1b, 0x36};

// Words of the expanded key, little-endian over the byte stream: word i is
// bytes [4i, 4i+4) of the concatenated round keys.
using Word = std::array<std::uint8_t, 4>;

Word sub_word(Word w) noexcept {
  for (auto& b : w) {
    b = sbox[b];
  }
  return w;
}

Word rot_word(Word w) noexcept {
  return {w[1], w[2], w[3], w[0]};
}

Word xor_word(Word a, const Word& b) noexcept {
  for (std::size_t i = 0; i < 4; ++i) {
    a[i] ^= b[i];
  }
  return a;
}

Word get_word(const std::array<Block, num_rounds + 1>& keys,
              std::size_t i) noexcept {
  const Block& blk = keys[i / 4];
  const std::size_t off = (i % 4) * 4;
  return {blk[off], blk[off + 1], blk[off + 2], blk[off + 3]};
}

void set_word(std::array<Block, num_rounds + 1>& keys, std::size_t i,
              const Word& w) noexcept {
  Block& blk = keys[i / 4];
  const std::size_t off = (i % 4) * 4;
  for (std::size_t b = 0; b < 4; ++b) {
    blk[off + b] = w[b];
  }
}

}  // namespace

void sub_bytes(Block& state) noexcept {
  for (auto& b : state) {
    b = sbox[b];
  }
}

void inv_sub_bytes(Block& state) noexcept {
  for (auto& b : state) {
    b = inv_sbox[b];
  }
}

void shift_rows(Block& state) noexcept {
  Block out;
  for (std::size_t i = 0; i < 16; ++i) {
    out[i] = state[shift_rows_source(i)];
  }
  state = out;
}

void inv_shift_rows(Block& state) noexcept {
  Block out;
  for (std::size_t i = 0; i < 16; ++i) {
    out[shift_rows_source(i)] = state[i];
  }
  state = out;
}

void mix_columns(Block& state) noexcept {
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = state[4 * c];
    const std::uint8_t a1 = state[4 * c + 1];
    const std::uint8_t a2 = state[4 * c + 2];
    const std::uint8_t a3 = state[4 * c + 3];
    state[4 * c] = static_cast<std::uint8_t>(xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^
                                             a3);
    state[4 * c + 1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ xtime(a2) ^
                                                 a2 ^ a3);
    state[4 * c + 2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^
                                                 xtime(a3) ^ a3);
    state[4 * c + 3] = static_cast<std::uint8_t>(xtime(a0) ^ a0 ^ a1 ^ a2 ^
                                                 xtime(a3));
  }
}

void inv_mix_columns(Block& state) noexcept {
  for (std::size_t c = 0; c < 4; ++c) {
    const std::uint8_t a0 = state[4 * c];
    const std::uint8_t a1 = state[4 * c + 1];
    const std::uint8_t a2 = state[4 * c + 2];
    const std::uint8_t a3 = state[4 * c + 3];
    state[4 * c] = static_cast<std::uint8_t>(gf_mul(a0, 0x0e) ^
                                             gf_mul(a1, 0x0b) ^
                                             gf_mul(a2, 0x0d) ^
                                             gf_mul(a3, 0x09));
    state[4 * c + 1] = static_cast<std::uint8_t>(gf_mul(a0, 0x09) ^
                                                 gf_mul(a1, 0x0e) ^
                                                 gf_mul(a2, 0x0b) ^
                                                 gf_mul(a3, 0x0d));
    state[4 * c + 2] = static_cast<std::uint8_t>(gf_mul(a0, 0x0d) ^
                                                 gf_mul(a1, 0x09) ^
                                                 gf_mul(a2, 0x0e) ^
                                                 gf_mul(a3, 0x0b));
    state[4 * c + 3] = static_cast<std::uint8_t>(gf_mul(a0, 0x0b) ^
                                                 gf_mul(a1, 0x0d) ^
                                                 gf_mul(a2, 0x09) ^
                                                 gf_mul(a3, 0x0e));
  }
}

void add_round_key(Block& state, const Block& round_key) noexcept {
  for (std::size_t i = 0; i < 16; ++i) {
    state[i] ^= round_key[i];
  }
}

std::array<Block, num_rounds + 1> Aes128::expand_key(
    const Block& key) noexcept {
  std::array<Block, num_rounds + 1> keys{};
  keys[0] = key;
  for (std::size_t i = 4; i < 44; ++i) {
    Word temp = get_word(keys, i - 1);
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp));
      temp[0] ^= rcon[i / 4];
    }
    set_word(keys, i, xor_word(temp, get_word(keys, i - 4)));
  }
  return keys;
}

Block Aes128::master_key_from_round10(const Block& round10_key) noexcept {
  std::array<Block, num_rounds + 1> keys{};
  keys[num_rounds] = round10_key;
  // Walk the schedule backwards: w[i-4] = w[i] ^ f(w[i-1]). Descending i
  // guarantees both operands are already known.
  for (std::size_t i = 43; i >= 4; --i) {
    Word temp = get_word(keys, i - 1);
    if (i % 4 == 0) {
      temp = sub_word(rot_word(temp));
      temp[0] ^= rcon[i / 4];
    }
    set_word(keys, i - 4, xor_word(temp, get_word(keys, i)));
  }
  return keys[0];
}

Aes128::Aes128(const Block& key) noexcept : round_keys_(expand_key(key)) {}

Block Aes128::encrypt(const Block& plaintext) const noexcept {
  Block state = plaintext;
  add_round_key(state, round_keys_[0]);
  for (int round = 1; round < num_rounds; ++round) {
    sub_bytes(state);
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, round_keys_[static_cast<std::size_t>(round)]);
  }
  sub_bytes(state);
  shift_rows(state);
  add_round_key(state, round_keys_[num_rounds]);
  return state;
}

Block Aes128::encrypt_trace(const Block& plaintext,
                            RoundTrace& trace) const noexcept {
  Block state = plaintext;
  add_round_key(state, round_keys_[0]);
  trace.post_add_round_key[0] = state;
  for (int round = 1; round < num_rounds; ++round) {
    sub_bytes(state);
    trace.post_sub_bytes[static_cast<std::size_t>(round - 1)] = state;
    shift_rows(state);
    mix_columns(state);
    add_round_key(state, round_keys_[static_cast<std::size_t>(round)]);
    trace.post_add_round_key[static_cast<std::size_t>(round)] = state;
  }
  sub_bytes(state);
  trace.post_sub_bytes[num_rounds - 1] = state;
  shift_rows(state);
  add_round_key(state, round_keys_[num_rounds]);
  trace.post_add_round_key[num_rounds] = state;
  return state;
}

Block Aes128::decrypt(const Block& ciphertext) const noexcept {
  Block state = ciphertext;
  add_round_key(state, round_keys_[num_rounds]);
  inv_shift_rows(state);
  inv_sub_bytes(state);
  for (int round = num_rounds - 1; round >= 1; --round) {
    add_round_key(state, round_keys_[static_cast<std::size_t>(round)]);
    inv_mix_columns(state);
    inv_shift_rows(state);
    inv_sub_bytes(state);
  }
  add_round_key(state, round_keys_[0]);
  return state;
}

int hamming_weight(const Block& block) noexcept {
  int total = 0;
  for (const std::uint8_t b : block) {
    total += std::popcount(b);
  }
  return total;
}

int hamming_distance(const Block& a, const Block& b) noexcept {
  int total = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    total += std::popcount(static_cast<std::uint8_t>(a[i] ^ b[i]));
  }
  return total;
}

}  // namespace psc::aes
