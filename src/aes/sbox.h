// AES S-box and GF(2^8) arithmetic, generated at compile time from first
// principles (multiplicative inverse in GF(2^8) with the AES reduction
// polynomial x^8+x^4+x^3+x+1, followed by the affine transform). Generating
// rather than transcribing the tables lets a unit test cross-check them
// against the FIPS-197 definition.
#pragma once

#include <array>
#include <cstdint>

namespace psc::aes {

// Multiplication by x in GF(2^8) modulo the AES polynomial 0x11b.
constexpr std::uint8_t xtime(std::uint8_t x) noexcept {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

// Full GF(2^8) multiplication (Russian-peasant).
constexpr std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  std::uint8_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) {
      acc ^= a;
    }
    a = xtime(a);
    b = static_cast<std::uint8_t>(b >> 1);
  }
  return acc;
}

// Multiplicative inverse in GF(2^8); maps 0 to 0 (as AES requires).
// Computed as a^254 via square-and-multiply.
constexpr std::uint8_t gf_inv(std::uint8_t a) noexcept {
  std::uint8_t result = 1;
  std::uint8_t base = a;
  // 254 = 0b11111110
  for (int bit = 7; bit >= 0; --bit) {
    result = gf_mul(result, result);
    if (254 & (1 << bit)) {
      result = gf_mul(result, base);
    }
  }
  return a == 0 ? std::uint8_t{0} : result;
}

// The AES affine transformation over GF(2).
constexpr std::uint8_t aes_affine(std::uint8_t x) noexcept {
  auto rotl8 = [](std::uint8_t v, int k) {
    return static_cast<std::uint8_t>((v << k) | (v >> (8 - k)));
  };
  return static_cast<std::uint8_t>(x ^ rotl8(x, 1) ^ rotl8(x, 2) ^
                                   rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63);
}

namespace detail {

constexpr std::array<std::uint8_t, 256> make_sbox() noexcept {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    table[static_cast<std::size_t>(i)] =
        aes_affine(gf_inv(static_cast<std::uint8_t>(i)));
  }
  return table;
}

constexpr std::array<std::uint8_t, 256> make_inv_sbox(
    const std::array<std::uint8_t, 256>& fwd) noexcept {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    table[fwd[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  }
  return table;
}

}  // namespace detail

// Forward S-box: sbox[0x00] == 0x63, sbox[0x53] == 0xed, ...
inline constexpr std::array<std::uint8_t, 256> sbox = detail::make_sbox();

// Inverse S-box: inv_sbox[sbox[x]] == x for all x.
inline constexpr std::array<std::uint8_t, 256> inv_sbox =
    detail::make_inv_sbox(sbox);

}  // namespace psc::aes
