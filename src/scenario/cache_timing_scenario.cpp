// Cache-timing scenario: flush/reload over a probe array in the simulated
// SoC (victim/probe_array.h). Channels are per-line reload latencies read
// through the platform's coarse timer; the victim's line selection is
// secret XOR input, so fixed-vs-random TVLA classes shift every line's
// hit/miss mix. `slc_pressure` models EXAM-style competing SLC occupancy
// (1.0 erases the channel); `leak=0` pins the victim to an
// input-independent line set, which must drive every cross-class |t|
// under the 4.5 threshold (asserted in tests and the scenario bench).

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/probe.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "victim/probe_array.h"

namespace psc::scenario {

namespace {

std::vector<util::FourCc> line_channels(std::size_t lines) {
  std::vector<util::FourCc> channels;
  channels.reserve(lines);
  for (std::size_t l = 0; l < lines; ++l) {
    char name[5];
    std::snprintf(name, sizeof(name), "LN%02zu", l);
    channels.push_back(*util::FourCc::parse(name));
  }
  return channels;
}

class ProbeArrayProbe final : public ChannelProbe {
 public:
  ProbeArrayProbe(const victim::ProbeArrayConfig& config,
                  const aes::Block& secret, std::uint64_t seed)
      : victim_(config, secret, seed),
        keys_(line_channels(config.lines)) {}

  const std::vector<util::FourCc>& keys() const noexcept override {
    return keys_;
  }

  void sample(const aes::Block& input, aes::Block& output,
              std::span<double> values) override {
    output = input;  // the probe-array victim produces no ciphertext
    victim_.observe(input, values);
  }

  // A flush + trigger + reload round over the whole array is micro-scale
  // work, not an SMC update window.
  double window_s() const noexcept override { return 1e-4; }

 private:
  victim::ProbeArrayVictim victim_;
  std::vector<util::FourCc> keys_;
};

class CacheTimingScenario final : public Scenario {
 public:
  std::string name() const override { return "cache-timing"; }
  std::string description() const override {
    return "probe-array flush/reload in the simulated SoC, per-line "
           "coarse-timer reload latency (EXAM-style SLC occupancy knob)";
  }
  std::string victim() const override {
    return "probe-array accessor touching secret XOR input lines";
  }
  std::string channel() const override {
    return "per-line reload latency via the coarse (24 MHz) timer";
  }

  std::vector<ParamSpec> params() const override {
    return {
        {"lines", "16", "probe-array lines (1..64), one channel each"},
        {"iterations", "4", "timed reloads averaged per line"},
        {"slc_pressure", "0",
         "[0,1] probability competing SLC occupancy evicts a touched line "
         "before reload"},
        {"noise_ns", "12", "reload latency jitter sigma (ns)"},
        {"leak", "1", "0 = input-independent line set (channel disabled)"},
    };
  }

  std::vector<util::FourCc> channels(const ParamSet& params) const override {
    return line_channels(bounded_lines(params));
  }

  AnalysisSpec analysis(const ParamSet& params) const override {
    AnalysisSpec spec;
    spec.default_traces_per_set = 1500;
    spec.cpa = false;  // line latencies carry no AES S-box leakage model
    spec.leakage_channels = channels(params);
    return spec;
  }

  std::unique_ptr<core::TraceSource> make_source(
      const ParamSet& params, const aes::Block& secret,
      std::uint64_t seed) const override {
    victim::ProbeArrayConfig config;
    config.lines = bounded_lines(params);
    config.iterations = static_cast<int>(params.get_size("iterations"));
    config.slc_pressure = params.get_double("slc_pressure");
    config.noise_ns = params.get_double("noise_ns");
    config.secret_dependent = params.get_flag("leak");
    return std::make_unique<ProbeTraceSource>(
        std::make_unique<ProbeArrayProbe>(config, secret, seed));
  }

 private:
  std::size_t bounded_lines(const ParamSet& params) const {
    const std::size_t lines = params.get_size("lines");
    if (lines == 0 || lines > 64) {
      throw std::invalid_argument(
          "scenario param 'lines': must be in 1..64");
    }
    return lines;
  }
};

}  // namespace

std::unique_ptr<Scenario> make_cache_timing_scenario() {
  return std::make_unique<CacheTimingScenario>();
}

}  // namespace psc::scenario
