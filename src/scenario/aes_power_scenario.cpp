// The paper's own scenarios, ported onto the registry: an AES-128 victim
// (user-space process or kernel module) observed through the simulated
// device's SMC power keys. make_source builds the same LiveTraceSource
// the legacy run_tvla_campaign / run_combined_campaign entry points
// build, with the same per-shard seeding — so a registry run is
// bit-identical to the pre-registry campaign paths (asserted in
// tests/scenario/scenario_runner_test.cpp).

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/trace_source.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "soc/device_profile.h"
#include "victim/fast_trace.h"

namespace psc::scenario {

namespace {

soc::DeviceProfile profile_for(const std::string& device) {
  if (device == "m1") {
    return soc::DeviceProfile::mac_mini_m1();
  }
  if (device == "m2") {
    return soc::DeviceProfile::macbook_air_m2();
  }
  throw std::invalid_argument("scenario param 'device': expected m1 or m2, got '" +
                              device + "'");
}

class AesPowerScenario final : public Scenario {
 public:
  explicit AesPowerScenario(bool kernel_module) : kernel_(kernel_module) {}

  std::string name() const override {
    return kernel_ ? "aes-power-kernel" : "aes-power-user";
  }
  std::string description() const override {
    return kernel_ ? "AES-128 kernel-module victim observed through SMC "
                     "power keys (paper sections 3.5/3.6)"
                   : "AES-128 user-space victim observed through SMC power "
                     "keys (paper sections 3.3/3.4)";
  }
  std::string victim() const override {
    return kernel_ ? "AES-128 kernel module (no scheduler preemption)"
                   : "AES-128 user-space process";
  }
  std::string channel() const override {
    return "SMC power/current/voltage keys, one read per update window";
  }

  std::vector<ParamSpec> params() const override {
    return {
        {"device", "m2", "simulated platform: m1 (Mac Mini) or m2 "
                         "(MacBook Air)"},
        {"pcpu", "0", "also expose the IOReport PCPU energy channel (0/1)"},
    };
  }

  std::vector<util::FourCc> channels(const ParamSet& params) const override {
    return core::LiveTraceSource::channel_names(source_config(params));
  }

  AnalysisSpec analysis(const ParamSet& params) const override {
    AnalysisSpec spec;
    spec.default_traces_per_set = 2000;
    spec.cpa = true;
    // The legacy campaigns' default attack set: every workload-dependent
    // key except the PHPS estimate (no signal, Table 3) and the IOReport
    // PCPU pseudo-channel. These are also the channels TVLA flags.
    for (const util::FourCc key : channels(params)) {
      if (key != util::FourCc("PHPS") && key != util::FourCc("PCPU")) {
        spec.cpa_keys.push_back(key);
      }
    }
    spec.leakage_channels = spec.cpa_keys;
    return spec;
  }

  std::unique_ptr<core::TraceSource> make_source(
      const ParamSet& params, const aes::Block& secret,
      std::uint64_t seed) const override {
    return std::make_unique<core::LiveTraceSource>(source_config(params),
                                                   secret, seed);
  }

 private:
  core::LiveSourceConfig source_config(const ParamSet& params) const {
    return core::LiveSourceConfig{
        .profile = profile_for(params.get("device")),
        .victim = kernel_ ? victim::VictimModel::kernel_module()
                          : victim::VictimModel::user_space(),
        .mitigation = smc::MitigationPolicy::none(),
        .include_pcpu = params.get_flag("pcpu"),
    };
  }

  bool kernel_;
};

}  // namespace

std::unique_ptr<Scenario> make_aes_power_scenario(bool kernel_module) {
  return std::make_unique<AesPowerScenario>(kernel_module);
}

}  // namespace psc::scenario
