// Pluggable attack scenarios (ROADMAP item 3).
//
// Every campaign in the repo used to hardwire one scenario: an AES-128
// victim observed through SMC power keys. The paper itself (Section 4)
// and the related work (EXAM's SLC probe arrays, SideLine's delay lines,
// Hertzbleed-style frequency channels) show the same analysis machinery
// applies to very different victim/channel pairs. A Scenario bundles the
// three choices a campaign needs:
//
//   victim   what secret-dependent computation runs per trace,
//   channel  what the attacker samples while it runs (a ChannelProbe or a
//            full core::TraceSource),
//   analysis which sinks to attach by default (TVLA always; CPA/GE when
//            the channel admits the AES leakage models).
//
// Scenarios are stateless descriptors: make_source() builds a fresh
// single-shard trace source from (params, secret, seed), exactly the
// factory shape core::run_sink_campaign shards over, so every scenario
// inherits the sharded pipeline, the sink layer, PSTR recording and the
// purity guarantee (results are a function of (seed, shards) only).
// ScenarioRegistry (scenario/registry.h) names them; scenario/runner.h
// executes them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "aes/aes128.h"
#include "core/trace_source.h"
#include "power/hypothetical.h"
#include "util/fourcc.h"

namespace psc::scenario {

// One tunable knob of a scenario. Values travel as strings (CLI flags,
// bus frames) and are validated/converted by ParamSet.
struct ParamSpec {
  std::string name;
  std::string default_value;
  std::string description;
};

// A validated key=value set for one scenario: unknown keys are rejected
// at parse time (the bus daemon's typed-error path relies on this),
// missing keys fall back to the spec's default. Values convert lazily;
// a malformed number throws std::invalid_argument naming the key.
class ParamSet {
 public:
  ParamSet() = default;

  // Validates `values` against `specs`: every key must name a spec
  // (throws std::invalid_argument otherwise) and duplicate keys are
  // rejected. Entries come out in spec order with defaults filled in.
  static ParamSet parse(
      const std::vector<ParamSpec>& specs,
      const std::vector<std::pair<std::string, std::string>>& values);

  // Entries in spec order (every spec present exactly once).
  const std::vector<std::pair<std::string, std::string>>& entries()
      const noexcept {
    return entries_;
  }

  // Typed accessors; throw std::invalid_argument on unknown key or
  // unconvertible value.
  const std::string& get(const std::string& name) const;
  std::size_t get_size(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;  // "0"/"1"

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

// Default analysis binding: which sinks a scenario run attaches when the
// caller does not override them.
struct AnalysisSpec {
  // Traces per (class, collection) when the caller passes 0.
  std::size_t default_traces_per_set = 2000;
  // Attach CPA/GE sinks (AES leakage models over cpa_keys). Only
  // meaningful for scenarios whose secret is an AES-128 key and whose
  // channel carries first-round S-box leakage.
  bool cpa = false;
  std::vector<util::FourCc> cpa_keys;
  std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  // Channels expected to show TVLA leakage with default params — what the
  // scenario-sweep bench gates |t| > 4.5 on.
  std::vector<util::FourCc> leakage_channels;
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  // Registry name (stable, lowercase-with-dashes).
  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  // Human-readable victim and channel summaries (one line each).
  virtual std::string victim() const = 0;
  virtual std::string channel() const = 0;

  virtual std::vector<ParamSpec> params() const = 0;

  // Channel columns a source built with these params reports, without
  // paying for source construction/calibration.
  virtual std::vector<util::FourCc> channels(const ParamSet& params) const = 0;

  virtual AnalysisSpec analysis(const ParamSet& params) const = 0;

  // Builds one single-shard trace source. `secret` is the victim secret
  // (16 bytes; AES key, exponent bits, probe-line selector — scenario
  // defined); `seed` seeds all scenario-local randomness. Must report
  // exactly channels(params).
  virtual std::unique_ptr<core::TraceSource> make_source(
      const ParamSet& params, const aes::Block& secret,
      std::uint64_t seed) const = 0;

  // Parses key=value pairs against this scenario's specs.
  ParamSet parse_params(
      const std::vector<std::pair<std::string, std::string>>& values) const {
    return ParamSet::parse(params(), values);
  }
};

// Fully-expanded description of one scenario: what `describe()` surfaces
// to the CLI, the bus SCENARIOS frame and the README table. Built with
// default params, so params/channels/analysis round-trip through
// parse_params by construction.
struct ScenarioInfo {
  std::string name;
  std::string description;
  std::string victim;
  std::string channel;
  std::vector<ParamSpec> params;            // defaults included
  std::vector<util::FourCc> channels;       // with default params
  AnalysisSpec analysis;                    // with default params
};

ScenarioInfo describe(const Scenario& scenario);

}  // namespace psc::scenario
