// Square-and-multiply timing scenario — the registry's extension-point
// proof: victim, probe and descriptor in one self-contained file.
//
// The victim is a textbook left-to-right square-and-multiply modular
// exponentiation (the classic RSA/DH timing target): the secret block is
// the 128-bit exponent, the input block folds into the base. Two timing
// dependences make it leak:
//
//   * key-dependent:  a multiply runs only for set exponent bits, so the
//     total time scales with the exponent's Hamming weight;
//   * input-dependent: each square/multiply costs extra per set bit in
//     its operands (a value-dependent multiplier, as in pre-constant-time
//     bignum code), so fixed-vs-random TVLA input classes separate.
//
// The attacker times whole exponentiations through the coarse timer.
// `leak=0` switches the victim to a constant-time ladder — fixed
// square+multiply schedule, operand-independent cost — which must erase
// every cross-class |t| (asserted in tests and the scenario bench).

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/probe.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace psc::scenario {

namespace {

// Largest 64-bit prime; the fixed public modulus.
constexpr std::uint64_t sqmul_modulus = 0xffffffffffffffc5ULL;

std::uint64_t load_le64(const aes::Block& block, std::size_t offset) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(block[offset + i]) << (8 * i);
  }
  return v;
}

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % sqmul_modulus);
}

struct SqmulProbeConfig {
  double sq_ns = 90.0;       // base cost of one square
  double mul_ns = 110.0;     // base cost of one multiply
  double bit_ns = 1.8;       // extra cost per set operand bit
  double noise_ns = 200.0;   // end-to-end timing jitter (sigma)
  double timer_granularity_ns = 41.67;  // 24 MHz coarse counter tick
  bool leak = true;          // false = constant-time ladder
};

class SqmulTimingProbe final : public ChannelProbe {
 public:
  SqmulTimingProbe(const SqmulProbeConfig& config, const aes::Block& secret,
                   std::uint64_t seed)
      : config_(config),
        exponent_(secret),
        rng_(seed),
        keys_({util::FourCc("TIME")}) {}

  const std::vector<util::FourCc>& keys() const noexcept override {
    return keys_;
  }

  void sample(const aes::Block& input, aes::Block& output,
              std::span<double> values) override {
    // Fold the input block into the base; the multiplicative mix keeps
    // the all-ones TVLA class distinct from all-zeros after folding.
    const std::uint64_t base =
        load_le64(input, 0) ^
        (load_le64(input, 8) * 0x9e3779b97f4a7c15ULL);

    double time_ns = 0.0;
    std::uint64_t x = 1;
    std::uint64_t dummy = 1;
    for (std::size_t bit = 0; bit < 128; ++bit) {
      const std::size_t byte = 15 - bit / 8;  // MSB first
      const bool set = (exponent_[byte] >> (7 - bit % 8)) & 1;

      time_ns += cost_ns(config_.sq_ns, x, x);
      x = mulmod(x, x);
      if (config_.leak) {
        if (set) {
          time_ns += cost_ns(config_.mul_ns, x, base % sqmul_modulus);
          x = mulmod(x, base % sqmul_modulus);
        }
      } else {
        // Constant-time ladder: the multiply always runs, into a dummy
        // when the bit is clear, at operand-independent cost.
        time_ns += config_.mul_ns;
        if (set) {
          x = mulmod(x, base % sqmul_modulus);
        } else {
          dummy = mulmod(dummy, base % sqmul_modulus);
        }
      }
    }

    // Echo the result so the trace carries the victim's output.
    aes::Block out{};
    for (std::size_t i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(x >> (8 * i));
      out[8 + i] = static_cast<std::uint8_t>(dummy >> (8 * i));
    }
    output = out;

    const double raw =
        std::max(0.0, time_ns + rng_.gaussian(0.0, config_.noise_ns));
    const double phase = rng_.uniform01() * config_.timer_granularity_ns;
    values[0] = std::floor((raw + phase) / config_.timer_granularity_ns) *
                config_.timer_granularity_ns;
  }

  double window_s() const noexcept override { return 1e-4; }

 private:
  double cost_ns(double base_ns, std::uint64_t a, std::uint64_t b) const {
    if (!config_.leak) {
      return base_ns;
    }
    const int bits = std::popcount(a) + std::popcount(b);
    return base_ns + config_.bit_ns * bits;
  }

  SqmulProbeConfig config_;
  aes::Block exponent_;
  util::Xoshiro256 rng_;
  std::vector<util::FourCc> keys_;
};

class SqmulTimingScenario final : public Scenario {
 public:
  std::string name() const override { return "sqmul-timing"; }
  std::string description() const override {
    return "square-and-multiply bignum exponentiation with key- and "
           "operand-dependent timing";
  }
  std::string victim() const override {
    return "128-bit square-and-multiply modular exponentiation (secret "
           "exponent)";
  }
  std::string channel() const override {
    return "whole-exponentiation latency via the coarse (24 MHz) timer";
  }

  std::vector<ParamSpec> params() const override {
    return {
        {"noise_ns", "200", "end-to-end timing jitter sigma (ns)"},
        {"bit_ns", "1.8", "extra cost per set operand bit (ns)"},
        {"leak", "1", "0 = constant-time ladder (channel disabled)"},
    };
  }

  std::vector<util::FourCc> channels(const ParamSet& params) const override {
    (void)params;
    return {util::FourCc("TIME")};
  }

  AnalysisSpec analysis(const ParamSet& params) const override {
    AnalysisSpec spec;
    spec.default_traces_per_set = 1500;
    spec.cpa = false;  // one latency sample carries no S-box model
    spec.leakage_channels = channels(params);
    return spec;
  }

  std::unique_ptr<core::TraceSource> make_source(
      const ParamSet& params, const aes::Block& secret,
      std::uint64_t seed) const override {
    SqmulProbeConfig config;
    config.noise_ns = params.get_double("noise_ns");
    config.bit_ns = params.get_double("bit_ns");
    config.leak = params.get_flag("leak");
    return std::make_unique<ProbeTraceSource>(
        std::make_unique<SqmulTimingProbe>(config, secret, seed));
  }
};

}  // namespace

std::unique_ptr<Scenario> make_sqmul_timing_scenario() {
  return std::make_unique<SqmulTimingScenario>();
}

}  // namespace psc::scenario
