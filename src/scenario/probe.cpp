#include "scenario/probe.h"

#include <stdexcept>

namespace psc::scenario {

ProbeTraceSource::ProbeTraceSource(std::unique_ptr<ChannelProbe> probe)
    : probe_(std::move(probe)) {
  if (!probe_) {
    throw std::invalid_argument("ProbeTraceSource: null probe");
  }
  row_.resize(probe_->keys().size());
}

core::TraceRecord ProbeTraceSource::collect(const aes::Block& plaintext) {
  core::TraceRecord record;
  record.plaintext = plaintext;
  record.values.resize(row_.size());
  probe_->sample(plaintext, record.ciphertext, record.values);
  return record;
}

void ProbeTraceSource::collect_batch(core::TraceBatch& batch) {
  if (batch.channels() != row_.size()) {
    throw std::invalid_argument(
        "ProbeTraceSource: batch channel count mismatch");
  }
  const std::span<const aes::Block> plaintexts = batch.plaintexts();
  const std::span<aes::Block> ciphertexts = batch.ciphertexts();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    probe_->sample(plaintexts[i], ciphertexts[i], row_);
    for (std::size_t c = 0; c < row_.size(); ++c) {
      batch.column(c)[i] = row_[c];
    }
  }
}

}  // namespace psc::scenario
