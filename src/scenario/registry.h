// Named scenario registration and lookup.
//
// A registry maps stable names to Scenario descriptors. The process-wide
// built_in() registry carries the five shipped scenarios; tests and
// embedders can build their own and add to it. Lookup handles are
// shared_ptr<const Scenario> — descriptors are immutable and stateless,
// so concurrent list()/find()/describe()/make_source() across threads is
// safe (the TSan suite exercises exactly that).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "scenario/scenario.h"

namespace psc::scenario {

class ScenarioRegistry {
 public:
  ScenarioRegistry() = default;

  // Registers a scenario under its name(); throws std::invalid_argument
  // on an empty name or a duplicate registration.
  void add(std::shared_ptr<const Scenario> scenario);

  // nullptr when unknown.
  std::shared_ptr<const Scenario> find(const std::string& name) const;

  // Registered names, in registration order.
  std::vector<std::string> list() const;

  // describe() for every registered scenario, in registration order.
  std::vector<ScenarioInfo> describe_all() const;

  // The shipped scenarios: aes-power-user, aes-power-kernel,
  // cache-timing, dvfs-frequency, sqmul-timing.
  static const ScenarioRegistry& built_in();

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const Scenario>> scenarios_;
};

// Built-in scenario factories (one translation unit each; registered by
// ScenarioRegistry::built_in, exposed for direct instantiation in tests).
std::unique_ptr<Scenario> make_aes_power_scenario(bool kernel_module);
std::unique_ptr<Scenario> make_cache_timing_scenario();
std::unique_ptr<Scenario> make_dvfs_frequency_scenario();
std::unique_ptr<Scenario> make_sqmul_timing_scenario();

}  // namespace psc::scenario
