// Executes a registered scenario through the generic sink campaign
// (core::run_sink_campaign): TVLA over every channel, plus CPA/GE when
// the scenario's analysis spec binds the AES leakage models. Results are
// a pure function of (scenario, params, traces_per_set, seed, shards) —
// any worker count is bit-identical — which is what lets the bus daemon
// serve scenario jobs that psc_busctl can re-verify locally.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/campaigns.h"
#include "scenario/scenario.h"

namespace psc::scenario {

struct ScenarioRunConfig {
  // Traces per (class, collection); 0 = the scenario's analysis default.
  std::size_t traces_per_set = 0;
  // GE checkpoints over the CPA stream (ignored for TVLA-only scenarios).
  std::vector<std::size_t> checkpoints;
  std::uint64_t seed = 1;
  std::size_t workers = 1;
  std::size_t shards = 0;
  core::CampaignProgressFn progress{};
  // Tee the acquisition to a PSTR trace store (store::RecordingSink).
  // Recording requires shards == 1 and workers == 1: one writer, one
  // deterministic stream. Empty = no recording.
  std::string record_path;
};

struct ScenarioRunResult {
  std::string scenario;
  aes::Block secret{};
  std::size_t traces_per_set = 0;
  std::size_t cpa_trace_count = 0;
  std::vector<util::FourCc> channels;
  // Cross-class leakage channels the scenario expects to light up.
  std::vector<util::FourCc> leakage_channels;
  std::vector<core::TvlaChannelResult> tvla;  // one per channel
  std::vector<core::CpaKeyResult> cpa;        // empty for TVLA-only

  // Largest cross-class |t| over `channels` restricted to
  // leakage_channels — the scalar the scenario bench gates on.
  double max_cross_class_t() const noexcept;
};

ScenarioRunResult run_scenario(const Scenario& scenario,
                               const ParamSet& params,
                               const ScenarioRunConfig& config);

// Convenience: resolve `name` in the built-in registry and parse
// `params` against its specs. Throws std::invalid_argument for an
// unknown scenario or malformed params (the bus daemon's typed-error
// path).
ScenarioRunResult run_scenario(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& params,
    const ScenarioRunConfig& config);

}  // namespace psc::scenario
