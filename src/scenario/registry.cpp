#include "scenario/registry.h"

#include <stdexcept>

namespace psc::scenario {

void ScenarioRegistry::add(std::shared_ptr<const Scenario> scenario) {
  if (!scenario) {
    throw std::invalid_argument("ScenarioRegistry: null scenario");
  }
  const std::string name = scenario->name();
  if (name.empty()) {
    throw std::invalid_argument("ScenarioRegistry: empty scenario name");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& existing : scenarios_) {
    if (existing->name() == name) {
      throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                  name + "'");
    }
  }
  scenarios_.push_back(std::move(scenario));
}

std::shared_ptr<const Scenario> ScenarioRegistry::find(
    const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& scenario : scenarios_) {
    if (scenario->name() == name) {
      return scenario;
    }
  }
  return nullptr;
}

std::vector<std::string> ScenarioRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(scenarios_.size());
  for (const auto& scenario : scenarios_) {
    names.push_back(scenario->name());
  }
  return names;
}

std::vector<ScenarioInfo> ScenarioRegistry::describe_all() const {
  std::vector<std::shared_ptr<const Scenario>> snapshot;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snapshot = scenarios_;
  }
  std::vector<ScenarioInfo> infos;
  infos.reserve(snapshot.size());
  for (const auto& scenario : snapshot) {
    infos.push_back(describe(*scenario));
  }
  return infos;
}

const ScenarioRegistry& ScenarioRegistry::built_in() {
  static const ScenarioRegistry* const registry = [] {
    auto* r = new ScenarioRegistry();
    r->add(make_aes_power_scenario(/*kernel_module=*/false));
    r->add(make_aes_power_scenario(/*kernel_module=*/true));
    r->add(make_cache_timing_scenario());
    r->add(make_dvfs_frequency_scenario());
    r->add(make_sqmul_timing_scenario());
    return r;
  }();
  return *registry;
}

}  // namespace psc::scenario
