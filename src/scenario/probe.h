// ChannelProbe: the attacker's sampling loop, one observation at a time.
//
// A probe is the minimal thing a new scenario has to implement: given one
// victim input it runs the victim once and writes one sample per channel.
// ProbeTraceSource adapts a probe to core::TraceSource, transposing
// per-observation rows into the pipeline's columnar TraceBatches — so a
// probe author never touches batches, sinks, shards or the store, yet
// CpaSink/TvlaSink/GeCheckpointSink, PSTR recording and shard-parallel
// execution all work unchanged.
//
// Probes are single-shard and stateful (a real probe owns timers, arrays,
// a simulated governor...): the campaign builds one per shard from a
// split seed, mirroring every other source.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "aes/aes128.h"
#include "core/trace_source.h"
#include "util/fourcc.h"

namespace psc::scenario {

class ChannelProbe {
 public:
  virtual ~ChannelProbe() = default;

  // Channel columns one observation produces, aligned with sample()'s
  // output row. Must be stable over the probe's lifetime.
  virtual const std::vector<util::FourCc>& keys() const noexcept = 0;

  // One observation: the victim consumes `input` (writing whatever output
  // it produces into `output`; echo the input when there is none) while
  // the attacker samples every channel into `values` (keys().size()
  // entries).
  virtual void sample(const aes::Block& input, aes::Block& output,
                      std::span<double> values) = 0;

  // Seconds of attacker wall-time one observation costs.
  virtual double window_s() const noexcept { return 1.0; }
};

// Adapts a ChannelProbe to the columnar TraceSource protocol. Fills are
// bit-identical to a per-trace collect() loop: rows are sampled in order
// and scattered into the batch's value columns.
class ProbeTraceSource final : public core::TraceSource {
 public:
  explicit ProbeTraceSource(std::unique_ptr<ChannelProbe> probe);

  const std::vector<util::FourCc>& keys() const noexcept override {
    return probe_->keys();
  }
  core::TraceRecord collect(const aes::Block& plaintext) override;
  void collect_batch(core::TraceBatch& batch) override;
  double window_s() const noexcept override { return probe_->window_s(); }

  const ChannelProbe& probe() const noexcept { return *probe_; }

 private:
  std::unique_ptr<ChannelProbe> probe_;
  std::vector<double> row_;  // one observation, reused across traces
};

}  // namespace psc::scenario
