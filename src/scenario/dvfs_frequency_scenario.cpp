// DVFS-frequency scenario: the paper's Section 4 channel. A workload
// whose intensity depends on the victim input runs under the reactive
// governor (soc/governor.h) in lowpowermode; when its estimated package
// power exceeds the 4 W budget the governor steps the P-cluster down the
// DVFS ladder, so the cluster's frequency residency (soc/residency.h)
// encodes workload identity. The attacker samples mean frequency and the
// below-ceiling residency fraction over one observation window — the
// powermetrics view of paper Figure 2 — each with a little measurement
// noise (a real attacker estimates frequency from timing loops).
//
// Workload power tracks the applied frequency, so throttling converges to
// the equilibrium state where estimated power crosses the cap: light
// inputs never throttle, heavy inputs settle deep down the ladder, and
// random inputs hover at the cap with input-dependent depth. `leak=0`
// fixes the intensity at 0.5 regardless of input, which must erase every
// cross-class |t| (asserted in tests and the scenario bench).

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/probe.h"
#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "soc/device_profile.h"
#include "soc/governor.h"
#include "soc/residency.h"
#include "util/rng.h"

namespace psc::scenario {

namespace {

constexpr std::size_t popcount_block_bits = 128;

std::size_t block_popcount(const aes::Block& block) noexcept {
  std::size_t bits = 0;
  for (const std::uint8_t byte : block) {
    bits += static_cast<std::size_t>(__builtin_popcount(byte));
  }
  return bits;
}

struct DvfsProbeConfig {
  soc::DeviceProfile profile;
  bool lowpower = true;
  double window_s = 0.5;       // observation window per trace
  double idle_w = 1.5;         // package power at zero intensity
  double span_w = 6.0;         // extra power at intensity 1, full frequency
  double power_noise_w = 0.15; // per-decision estimated-power jitter
  double freq_noise_hz = 5e6;  // attacker frequency-estimate jitter
  double residency_noise = 0.01;
  bool leak = true;
};

class DvfsFrequencyProbe final : public ChannelProbe {
 public:
  DvfsFrequencyProbe(const DvfsProbeConfig& config, std::uint64_t seed)
      : config_(config),
        rng_(seed),
        keys_({util::FourCc("FAVG"), util::FourCc("FRES")}) {
    // The frequency the workload's power model is normalized to: the
    // highest state the governor will ever apply in this mode.
    soc::Governor probe(config_.profile.governor, config_.profile.p_ladder);
    probe.set_lowpowermode(config_.lowpower);
    ceiling_state_ = probe.p_state_limit();
    ceiling_hz_ = config_.profile.p_ladder.frequency_hz(ceiling_state_);
  }

  const std::vector<util::FourCc>& keys() const noexcept override {
    return keys_;
  }

  void sample(const aes::Block& input, aes::Block& output,
              std::span<double> values) override {
    output = input;  // the workload produces no ciphertext

    const double intensity =
        config_.leak ? static_cast<double>(block_popcount(input)) /
                           popcount_block_bits
                     : 0.5;

    soc::Governor governor(config_.profile.governor,
                           config_.profile.p_ladder);
    governor.set_lowpowermode(config_.lowpower);
    soc::FrequencyResidency residency(config_.profile.p_ladder);

    const double dt = config_.profile.governor.decision_period_s;
    const std::size_t steps = std::max<std::size_t>(
        1, static_cast<std::size_t>(config_.window_s / dt));
    for (std::size_t step = 0; step < steps; ++step) {
      const std::size_t applied =
          std::min(governor.p_state_limit(), ceiling_state_);
      const double f = config_.profile.p_ladder.frequency_hz(applied);
      const double power =
          config_.idle_w + intensity * config_.span_w * (f / ceiling_hz_) +
          rng_.gaussian(0.0, config_.power_noise_w);
      governor.update(power, /*temperature_c=*/45.0, dt);
      residency.add(std::min(governor.p_state_limit(), ceiling_state_), dt);
    }

    values[0] = residency.mean_frequency_hz() +
                rng_.gaussian(0.0, config_.freq_noise_hz);
    values[1] = residency.fraction_below(ceiling_state_) +
                rng_.gaussian(0.0, config_.residency_noise);
  }

  double window_s() const noexcept override { return config_.window_s; }

 private:
  DvfsProbeConfig config_;
  util::Xoshiro256 rng_;
  std::vector<util::FourCc> keys_;
  std::size_t ceiling_state_ = 0;
  double ceiling_hz_ = 0.0;
};

soc::DeviceProfile dvfs_profile_for(const std::string& device) {
  if (device == "m1") {
    return soc::DeviceProfile::mac_mini_m1();
  }
  if (device == "m2") {
    return soc::DeviceProfile::macbook_air_m2();
  }
  throw std::invalid_argument(
      "scenario param 'device': expected m1 or m2, got '" + device + "'");
}

class DvfsFrequencyScenario final : public Scenario {
 public:
  std::string name() const override { return "dvfs-frequency"; }
  std::string description() const override {
    return "throttling governor leaks workload identity through P-cluster "
           "frequency residency (paper section 4)";
  }
  std::string victim() const override {
    return "workload whose intensity follows the input's popcount";
  }
  std::string channel() const override {
    return "mean P-cluster frequency + below-ceiling residency fraction";
  }

  std::vector<ParamSpec> params() const override {
    return {
        {"device", "m2", "simulated platform: m1 (Mac Mini) or m2 "
                         "(MacBook Air)"},
        {"lowpower", "1", "run under the lowpowermode 4 W budget (0/1)"},
        {"window_s", "0.5", "observation window per trace (seconds)"},
        {"freq_noise_mhz", "5",
         "attacker frequency-estimate jitter sigma (MHz)"},
        {"leak", "1", "0 = input-independent intensity (channel disabled)"},
    };
  }

  std::vector<util::FourCc> channels(const ParamSet& params) const override {
    (void)params;
    return {util::FourCc("FAVG"), util::FourCc("FRES")};
  }

  AnalysisSpec analysis(const ParamSet& params) const override {
    AnalysisSpec spec;
    spec.default_traces_per_set = 1500;
    spec.cpa = false;  // frequency residency carries no S-box model
    spec.leakage_channels = channels(params);
    return spec;
  }

  std::unique_ptr<core::TraceSource> make_source(
      const ParamSet& params, const aes::Block& secret,
      std::uint64_t seed) const override {
    // The DVFS channel leaks *workload identity*, not the block cipher
    // key: the secret block does not parameterize the victim (the input
    // plays that role, mirroring the paper's unprivileged-observer
    // setup).
    (void)secret;
    DvfsProbeConfig config{
        .profile = dvfs_profile_for(params.get("device")),
        .lowpower = params.get_flag("lowpower"),
        .window_s = params.get_double("window_s"),
    };
    if (config.window_s <= 0.0) {
      throw std::invalid_argument(
          "scenario param 'window_s': must be positive");
    }
    config.freq_noise_hz = params.get_double("freq_noise_mhz") * 1e6;
    config.leak = params.get_flag("leak");
    return std::make_unique<ProbeTraceSource>(
        std::make_unique<DvfsFrequencyProbe>(config, seed));
  }
};

}  // namespace

std::unique_ptr<Scenario> make_dvfs_frequency_scenario() {
  return std::make_unique<DvfsFrequencyScenario>();
}

}  // namespace psc::scenario
