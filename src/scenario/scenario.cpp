#include "scenario/scenario.h"

#include <cerrno>
#include <cstdlib>
#include <stdexcept>

namespace psc::scenario {

namespace {

[[noreturn]] void bad_param(const std::string& key, const std::string& why) {
  throw std::invalid_argument("scenario param '" + key + "': " + why);
}

}  // namespace

ParamSet ParamSet::parse(
    const std::vector<ParamSpec>& specs,
    const std::vector<std::pair<std::string, std::string>>& values) {
  for (const auto& [key, value] : values) {
    bool known = false;
    for (const ParamSpec& spec : specs) {
      if (spec.name == key) {
        known = true;
        break;
      }
    }
    if (!known) {
      bad_param(key, "unknown parameter");
    }
    std::size_t occurrences = 0;
    for (const auto& [other_key, other_value] : values) {
      occurrences += other_key == key ? 1 : 0;
    }
    if (occurrences > 1) {
      bad_param(key, "given more than once");
    }
    (void)value;
  }

  ParamSet out;
  out.entries_.reserve(specs.size());
  for (const ParamSpec& spec : specs) {
    std::string value = spec.default_value;
    for (const auto& [key, given] : values) {
      if (key == spec.name) {
        value = given;
        break;
      }
    }
    out.entries_.emplace_back(spec.name, std::move(value));
  }
  return out;
}

const std::string& ParamSet::get(const std::string& name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) {
      return value;
    }
  }
  bad_param(name, "not in this scenario's parameter set");
}

std::size_t ParamSet::get_size(const std::string& name) const {
  const std::string& raw = get(name);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw.c_str(), &end, 10);
  if (raw.empty() || end != raw.c_str() + raw.size() || errno == ERANGE) {
    bad_param(name, "expected a non-negative integer, got '" + raw + "'");
  }
  return static_cast<std::size_t>(v);
}

double ParamSet::get_double(const std::string& name) const {
  const std::string& raw = get(name);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end != raw.c_str() + raw.size() || errno == ERANGE) {
    bad_param(name, "expected a number, got '" + raw + "'");
  }
  return v;
}

bool ParamSet::get_flag(const std::string& name) const {
  const std::string& raw = get(name);
  if (raw == "0") {
    return false;
  }
  if (raw == "1") {
    return true;
  }
  bad_param(name, "expected 0 or 1, got '" + raw + "'");
}

ScenarioInfo describe(const Scenario& scenario) {
  ScenarioInfo info;
  info.name = scenario.name();
  info.description = scenario.description();
  info.victim = scenario.victim();
  info.channel = scenario.channel();
  info.params = scenario.params();
  const ParamSet defaults = scenario.parse_params({});
  info.channels = scenario.channels(defaults);
  info.analysis = scenario.analysis(defaults);
  return info;
}

}  // namespace psc::scenario
