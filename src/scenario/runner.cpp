#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "scenario/registry.h"
#include "store/trace_file_writer.h"

namespace psc::scenario {

double ScenarioRunResult::max_cross_class_t() const noexcept {
  double max_t = 0.0;
  for (const auto& channel_result : tvla) {
    bool gated = leakage_channels.empty();
    for (const util::FourCc key : leakage_channels) {
      if (key.str() == channel_result.channel) {
        gated = true;
        break;
      }
    }
    if (!gated) {
      continue;
    }
    for (const core::PlaintextClass primed : core::all_plaintext_classes) {
      for (const core::PlaintextClass unprimed :
           core::all_plaintext_classes) {
        if (primed == unprimed) {
          continue;
        }
        const double t =
            std::fabs(channel_result.matrix.score(primed, unprimed));
        if (std::isfinite(t)) {
          max_t = std::max(max_t, t);
        }
      }
    }
  }
  return max_t;
}

ScenarioRunResult run_scenario(const Scenario& scenario,
                               const ParamSet& params,
                               const ScenarioRunConfig& config) {
  const std::vector<util::FourCc> channels = scenario.channels(params);
  const AnalysisSpec analysis = scenario.analysis(params);

  core::SinkCampaignConfig generic;
  generic.channels = channels;
  generic.make_source = [&scenario, &params](const aes::Block& secret,
                                             std::uint64_t seed) {
    return scenario.make_source(params, secret, seed);
  };
  generic.traces_per_set = config.traces_per_set != 0
                               ? config.traces_per_set
                               : analysis.default_traces_per_set;
  if (analysis.cpa) {
    for (const util::FourCc key : analysis.cpa_keys) {
      const auto it = std::find(channels.begin(), channels.end(), key);
      if (it == channels.end()) {
        throw std::invalid_argument("run_scenario: cpa key " + key.str() +
                                    " is not one of the scenario's channels");
      }
      generic.cpa_columns.push_back(
          static_cast<std::size_t>(it - channels.begin()));
    }
    generic.models = analysis.models;
    generic.checkpoints = config.checkpoints;
  }
  generic.seed = config.seed;
  generic.workers = config.workers;
  generic.shards = config.shards;
  generic.progress = config.progress;

  // Optional PSTR tee: a single recording sink on the one shard of a
  // sequential run (a sharded pass would interleave several writers).
  std::unique_ptr<store::TraceFileWriter> writer;
  std::optional<store::RecordingSink> recording;
  if (!config.record_path.empty()) {
    if (config.shards != 1 || config.workers > 1) {
      throw std::invalid_argument(
          "run_scenario: recording requires shards == 1 and workers == 1");
    }
    store::TraceFileWriterConfig writer_config;
    writer_config.channels = channels;
    writer_config.metadata = {{"scenario", scenario.name()}};
    writer = std::make_unique<store::TraceFileWriter>(config.record_path,
                                                      writer_config);
    recording.emplace(*writer);
    generic.extra_sink = [&recording](std::size_t) {
      return &*recording;
    };
  }

  core::SinkCampaignResult sink_result = core::run_sink_campaign(generic);
  if (writer) {
    writer->finalize();
  }

  ScenarioRunResult result;
  result.scenario = scenario.name();
  result.secret = sink_result.secret;
  result.traces_per_set = sink_result.traces_per_set;
  result.cpa_trace_count = sink_result.cpa_trace_count;
  result.channels = channels;
  result.leakage_channels = analysis.leakage_channels;
  result.tvla = std::move(sink_result.tvla);
  result.cpa = std::move(sink_result.cpa);
  return result;
}

ScenarioRunResult run_scenario(
    const std::string& name,
    const std::vector<std::pair<std::string, std::string>>& params,
    const ScenarioRunConfig& config) {
  const std::shared_ptr<const Scenario> scenario =
      ScenarioRegistry::built_in().find(name);
  if (!scenario) {
    throw std::invalid_argument("unknown scenario '" + name + "'");
  }
  return run_scenario(*scenario, scenario->parse_params(params), config);
}

}  // namespace psc::scenario
