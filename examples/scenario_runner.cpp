// scenario_runner: run any registered attack scenario from the command
// line — the direct (daemon-less) face of the scenario registry.
//
//   scenario_runner list
//   scenario_runner describe <name>
//   scenario_runner run <name> [--param key=value]... [--per-set N]
//                   [--seed N] [--workers N] [--shards N]
//                   [--record out.pstr]
//
// `run` executes the scenario through core::run_sink_campaign: TVLA over
// every channel the scenario reports, plus CPA/GE when its analysis spec
// binds the AES leakage models. Results are a pure function of
// (scenario, params, per-set, seed, shards) — --workers only changes
// wall-clock. --record tees the acquisition to a PSTR store (forces
// workers=1, shards=1: one writer, one deterministic stream) so a live
// scenario run can later be replayed through psc_busctl as a dataset.
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "scenario/registry.h"
#include "scenario/runner.h"
#include "util/hex.h"
#include "util/table.h"

namespace {

using namespace psc;

int usage() {
  std::cerr << "usage:\n"
               "  scenario_runner list\n"
               "  scenario_runner describe <name>\n"
               "  scenario_runner run <name> [--param key=value]...\n"
               "                  [--per-set N] [--seed N] [--workers N]\n"
               "                  [--shards N] [--record out.pstr]\n";
  return 2;
}

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

void print_info(const scenario::ScenarioInfo& info) {
  std::cout << info.name << ": " << info.description << "\n"
            << "  victim:   " << info.victim << "\n"
            << "  channel:  " << info.channel << "\n"
            << "  analysis: " << (info.analysis.cpa ? "TVLA + CPA/GE" : "TVLA")
            << ", " << info.analysis.default_traces_per_set
            << " traces per set\n"
            << "  channels: ";
  for (std::size_t i = 0; i < info.channels.size(); ++i) {
    std::cout << (i > 0 ? " " : "") << info.channels[i].str();
  }
  std::cout << "\n  leakage:  ";
  for (std::size_t i = 0; i < info.analysis.leakage_channels.size(); ++i) {
    std::cout << (i > 0 ? " " : "")
              << info.analysis.leakage_channels[i].str();
  }
  std::cout << "\n";
  for (const scenario::ParamSpec& param : info.params) {
    std::cout << "  --param " << param.name << "=" << param.default_value
              << "  " << param.description << "\n";
  }
}

int cmd_list() {
  for (const auto& info : scenario::ScenarioRegistry::built_in()
                              .describe_all()) {
    std::cout << info.name << "  (" << (info.analysis.cpa ? "TVLA+CPA" : "TVLA")
              << ")  " << info.description << "\n";
  }
  return 0;
}

int cmd_describe(const std::string& name) {
  const auto sc = scenario::ScenarioRegistry::built_in().find(name);
  if (!sc) {
    std::cerr << "unknown scenario: " << name << "\n";
    return 1;
  }
  print_info(scenario::describe(*sc));
  return 0;
}

int cmd_run(const std::string& name, int argc, char** argv, int from) {
  std::vector<std::pair<std::string, std::string>> params;
  scenario::ScenarioRunConfig config;
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i + 1 >= argc) {
      std::cerr << "flag " << arg << " needs a value\n";
      return 2;
    }
    const std::string value = argv[++i];
    if (arg == "--param") {
      const std::size_t eq = value.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "--param wants key=value, got: " << value << "\n";
        return 2;
      }
      params.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (arg == "--per-set") {
      config.traces_per_set = parse_u64(value);
    } else if (arg == "--seed") {
      config.seed = parse_u64(value);
    } else if (arg == "--workers") {
      config.workers = parse_u64(value);
    } else if (arg == "--shards") {
      config.shards = parse_u64(value);
    } else if (arg == "--record") {
      config.record_path = value;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  if (!config.record_path.empty()) {
    config.workers = 1;
    config.shards = 1;
  }

  const scenario::ScenarioRunResult result =
      scenario::run_scenario(name, params, config);
  std::cout << "scenario '" << result.scenario << "': "
            << result.traces_per_set << " traces per set, secret "
            << util::to_hex(result.secret) << "\n";
  core::tvla_table("TVLA t-scores (" + result.scenario + ")", result.tvla)
      .render(std::cout);
  for (const core::CpaKeyResult& key : result.cpa) {
    std::cout << "CPA over " << key.key.str() << " ("
              << result.cpa_trace_count << " traces):\n";
    std::vector<core::RankColumn> columns;
    for (const core::ModelResult& model : key.final_results) {
      columns.push_back({std::string(power::power_model_name(model.model)),
                         &model});
    }
    core::cpa_rank_table("CPA key ranks (" + key.key.str() + ")", columns)
        .render(std::cout);
    for (const core::ModelResult& model : key.final_results) {
      std::cout << "  " << power::power_model_name(model.model) << ": GE "
                << model.ge_bits << " bits, " << model.recovered_bytes
                << "/16 recovered, best key "
                << util::to_hex(model.best_round_key) << "\n";
    }
  }
  std::cout << "max cross-class |t| over leakage channels: "
            << result.max_cross_class_t() << "\n";
  if (!config.record_path.empty()) {
    std::cout << "recorded acquisition to " << config.record_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string verb = argv[1];
  try {
    if (verb == "list") {
      return cmd_list();
    }
    if (verb == "describe" && argc == 3) {
      return cmd_describe(argv[2]);
    }
    if (verb == "run" && argc >= 3) {
      return cmd_run(argv[2], argc, argv, 3);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
