// Quickstart: build a simulated M2 machine, read power-related SMC keys
// from user space, and run a miniature leakage assessment — the whole
// attack surface of the paper in ~80 lines.
//
//   ./quickstart
#include <algorithm>
#include <iostream>

#include "core/trace_source.h"
#include "core/tvla.h"
#include "util/table.h"
#include "victim/platform.h"
#include "victim/victims.h"

int main() {
  using namespace psc;

  // 1. A simulated MacBook Air M2 with chip, scheduler, SMC and IOReport.
  victim::Platform platform(soc::DeviceProfile::macbook_air_m2(), /*seed=*/1);

  // 2. An unprivileged user-space SMC connection (the attacker's view).
  auto smc = platform.open_smc(smc::Privilege::user);
  platform.run_for(1.1);  // let the SMC latch its first samples

  std::cout << "SMC keys visible to an unprivileged process ("
            << smc.key_count() << " total). Power keys:\n";
  util::TextTable keys;
  keys.header({"key", "value", "description"});
  keys.set_align(2, util::Align::left);
  for (const auto& entry : platform.smc().database().entries()) {
    if (entry.info.key.at(0) != 'P') {
      continue;
    }
    smc::SmcValue value;
    if (smc.read_key(entry.info.key, value) != smc::SmcStatus::ok) {
      continue;
    }
    keys.add_row({entry.info.key.str(), util::fixed(value.as_double(), 4),
                  entry.info.description});
  }
  keys.render(std::cout);

  // 3. A victim: a crypto service holding a secret AES-128 key.
  const aes::Block secret_key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                 0x09, 0xcf, 0x4f, 0x3c};

  // 4. Miniature TVLA: does PHPC distinguish what the victim encrypts?
  //    Acquisition goes through the pluggable trace-source layer (the
  //    live source is statistically equivalent to driving the full
  //    platform; see DESIGN.md section 6 — swap in a ReplayTraceSource to
  //    run the same assessment from a CSV capture).
  core::LiveTraceSource source(
      {.profile = soc::DeviceProfile::macbook_air_m2(),
       .victim = victim::VictimModel::user_space()},
      secret_key, /*seed=*/2);
  const std::size_t phpc =
      static_cast<std::size_t>(std::find(source.keys().begin(),
                                         source.keys().end(),
                                         smc::FourCc("PHPC")) -
                               source.keys().begin());

  core::TvlaAccumulator tvla;
  util::Xoshiro256 rng(3);
  constexpr int traces_per_set = 3000;
  for (const bool primed : {false, true}) {
    for (const auto cls : core::all_plaintext_classes) {
      for (int i = 0; i < traces_per_set; ++i) {
        const aes::Block pt = core::class_plaintext(cls, rng);
        tvla.add(cls, primed, source.collect(pt).values[phpc]);
      }
    }
  }

  const core::TvlaMatrix matrix = tvla.matrix();
  std::cout << "\nTVLA on PHPC (" << traces_per_set
            << " traces per class and collection):\n";
  std::cout << "  t(All 0s' vs All 1s) = "
            << util::fixed(matrix.score(core::PlaintextClass::all_zeros,
                                        core::PlaintextClass::all_ones),
                           2)
            << "  (|t| >= 4.5 means the key's value leaks into the power "
               "reading)\n";
  std::cout << "  data-dependent: "
            << (matrix.perfectly_data_dependent() ? "yes - this is the "
                                                    "paper's side channel"
                                                  : "no")
            << "\n\nNext: run examples/aes_key_recovery to turn this "
               "leakage into key bytes.\n";
  return 0;
}
