// throttling_demo: exploring the frequency-throttling channel (paper
// section 4). Walks the full investigation: finding the lowpowermode
// power cap, steering victim threads to P-cores and stressors to E-cores
// via scheduler policy, triggering throttling, and testing the resulting
// timing channel for data dependence.
//
//   ./throttling_demo
#include <iostream>

#include "core/report.h"
#include "core/throttle.h"
#include "util/table.h"
#include "victim/platform.h"

int main() {
  using namespace psc;
  const auto profile = soc::DeviceProfile::macbook_air_m2();

  std::cout << "step 1: enable lowpowermode (pmset analogue) and sweep AES "
               "threads\n";
  util::TextTable sweep;
  sweep.header({"AES threads", "package W", "P freq GHz", "throttled"});
  for (const auto& point : core::lowpower_aes_sweep(profile, 4, 5)) {
    sweep.add_row({std::to_string(point.aes_threads),
                   util::fixed(point.package_power_w, 2),
                   util::fixed(point.p_freq_hz / 1e9, 3),
                   point.throttled ? "yes" : "no"});
  }
  sweep.render(std::cout);
  std::cout << "AES alone stays under the 4 W budget -> no throttling.\n\n";

  std::cout << "step 2: add constant fmul stressors on the E-cores and "
               "collect timing traces\n";
  core::ThrottleExperimentConfig config{
      .profile = profile,
      .aes_threads = 4,
      .stressor_threads = 4,
      .traces_per_set = 40,
      .window_s = 1.0,
      .seed = 6,
  };
  const auto result = run_throttle_campaign(config);
  core::throttle_observation_table(result.observation).render(std::cout);

  std::cout << "\nstep 3: TVLA on execution-time traces under throttling\n";
  std::vector<core::TvlaChannelResult> channels = {
      {"Time", result.timing_matrix}};
  core::tvla_table("timing t-scores", channels).render(std::cout);

  std::cout << "\nconclusion: throttling engages (P-cluster below 1.968 "
               "GHz, E-cores untouched at 2.424 GHz), but timing carries "
               "no data dependence — the governor follows the PHPS "
               "estimate, which Table 3 already showed is not "
               "data-dependent. The frequency channel is a dead end on "
               "this platform; the SMC keys are the exploitable one.\n";
  return 0;
}
