// multi_sink_analysis: one acquisition pass, every analysis.
//
// Collects the TVLA protocol's six labeled trace sets once through the
// columnar batch pipeline and fans every batch out to two sinks at the
// same time: a TvlaSink (is the channel data-dependent?) and a CpaSink
// (what key bytes do the random-plaintext sets leak?). The point of the
// core::AnalysisSink layer: the attacker pays for the traces once and
// asks every question afterwards.
//
//   ./multi_sink_analysis [traces_per_set]
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/analysis_sink.h"
#include "core/guessing_entropy.h"
#include "core/trace_source.h"
#include "util/hex.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::size_t per_set =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20'000;

  util::Xoshiro256 rng(7);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  core::LiveTraceSource source(
      {.profile = soc::DeviceProfile::macbook_air_m2(),
       .victim = victim::VictimModel::user_space()},
      victim_key, 1);
  const auto& channels = source.keys();
  const std::size_t phpc = static_cast<std::size_t>(
      std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
      channels.begin());

  // One TVLA accumulator per channel, one CPA engine on the star channel,
  // both fed from the same stream.
  core::TvlaSink tvla(channels.size());
  core::CpaSink cpa({power::PowerModel::rd0_hw}, {phpc});
  core::MultiSink sinks({&tvla, &cpa});

  core::TraceBatch batch(channels.size());
  constexpr std::size_t chunk_size = 1024;
  batch.reserve(chunk_size);
  std::size_t total = 0;
  for (const bool primed : {false, true}) {
    for (const core::PlaintextClass cls : core::all_plaintext_classes) {
      std::size_t produced = 0;
      while (produced < per_set) {
        const std::size_t chunk = std::min(chunk_size, per_set - produced);
        batch.clear();
        batch.resize(chunk);
        for (auto& pt : batch.plaintexts()) {
          pt = core::class_plaintext(cls, rng);
        }
        source.collect_batch(batch);
        sinks.consume(batch, core::BatchLabel::tvla(cls, primed));
        produced += chunk;
        total += chunk;
      }
    }
  }
  std::cout << "collected " << total << " traces ("
            << 6 * per_set << " budgeted, one pass)\n\n";

  // TVLA verdicts per channel.
  std::cout << "TVLA (|t| >= " << util::tvla_threshold << " leaks):\n";
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const core::TvlaMatrix m = tvla.accumulator(c).matrix();
    std::cout << "  " << channels[c].str() << ": t(0s' vs 1s) = "
              << m.score(core::PlaintextClass::all_zeros,
                         core::PlaintextClass::all_ones)
              << (m.perfectly_data_dependent()
                      ? "  <- perfectly data-dependent"
                      : m.no_data_dependence() ? "  (no leakage)" : "")
              << "\n";
  }

  // CPA from the very same traces: the sink consumed only the two
  // random-plaintext collections.
  const auto result = cpa.engine(0).analyze(
      power::PowerModel::rd0_hw, aes::Aes128::expand_key(victim_key));
  std::cout << "\nCPA on PHPC from the " << cpa.trace_count()
            << " random-plaintext traces of the same pass:\n"
            << "  GE " << result.ge_bits << " bits (random "
            << core::random_guess_ge_bits() << "), "
            << result.recovered_bytes << "/16 bytes at rank 1\n"
            << "  best guess : " << util::to_hex(result.best_round_key)
            << "\n  victim key : " << util::to_hex(victim_key) << "\n";
  return 0;
}
