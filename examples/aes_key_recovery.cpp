// aes_key_recovery: the paper's headline attack (section 3.4) end to end.
// An unprivileged attacker submits known plaintexts to a victim crypto
// service, reads the PHPC SMC key after each measurement window, and runs
// CPA with the Rd0-HW model until key bytes surface.
//
//   ./aes_key_recovery [traces] [workers]   (default 300000 traces, 1
//                                            worker; workers > 1 runs the
//                                            sharded pipeline)
#include <cstdlib>
#include <iostream>

#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "core/key_rank.h"
#include "core/report.h"
#include "util/hex.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::size_t traces =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;
  const std::size_t workers =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  std::cout << "victim : user-space AES-128 service, 3 P-core threads, M2\n"
            << "channel: PHPC (P-cluster power, read as unprivileged user)\n"
            << "attack : known-plaintext CPA, Rd0-HW model, " << traces
            << " traces, " << workers << " worker(s)\n\n";

  core::CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = traces,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = core::log_spaced_checkpoints(traces / 32, traces, 6),
      .seed = 2024,
      .workers = workers,
      // Pinned shard count: results depend only on the seed, so any
      // worker count reproduces the same numbers.
      .shards = 8,
  };
  const auto result = run_cpa_campaign(config);
  const auto& key_result = *result.find(smc::FourCc("PHPC"));
  const auto& final = key_result.final_results[0];

  std::cout << "GE trajectory (bits of remaining key search space):\n";
  for (const auto& point : key_result.curves[0]) {
    std::cout << "  " << point.traces << " traces -> GE "
              << util::fixed(point.ge_bits, 1) << " bits, "
              << point.recovered_bytes << "/16 bytes at rank 1\n";
  }

  std::cout << "\nper-byte outcome:\n";
  util::TextTable table;
  table.header({"byte", "true key", "best guess", "rank"});
  for (std::size_t i = 0; i < 16; ++i) {
    char truth[8];
    char guess[8];
    std::snprintf(truth, sizeof truth, "0x%02x", result.victim_key[i]);
    std::snprintf(guess, sizeof guess, "0x%02x",
                  final.best_round_key[i]);
    table.add_row({std::to_string(i), truth, guess,
                   std::to_string(final.true_ranks[i]) +
                       (final.true_ranks[i] == 1 ? " *" : "")});
  }
  table.render(std::cout);

  const auto key_rank = core::estimate_key_rank(final);
  std::cout << "\nvictim key : " << util::to_hex(result.victim_key)
            << "\nbest guess : " << util::to_hex(final.best_round_key)
            << "\nGE " << util::fixed(final.ge_bits, 1) << " bits (random: "
            << util::fixed(core::random_guess_ge_bits(), 1)
            << ")\noptimal key-enumeration rank: 2^"
            << util::fixed(key_rank.log2_rank, 1) << " (bounds 2^"
            << util::fixed(key_rank.log2_rank_lower, 1) << " .. 2^"
            << util::fixed(key_rank.log2_rank_upper, 1)
            << ") — the actual work for a score-ordered full-key search; "
               "GE is its per-byte independence approximation\n";
  if (final.recovered_bytes < 16) {
    std::cout << "collect more traces to push the remaining bytes to rank "
                 "1 (the paper used 1M).\n";
  }
  return 0;
}
