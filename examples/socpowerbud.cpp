// socpowerbud: an IOReport "Energy Model" sampler in the style of the
// socpowerbud tool the paper examined (section 3.6). Samples the PCPU /
// ECPU cumulative energy counters once per second while the workload mix
// changes, and shows why this interface does not leak data: mJ
// resolution and utilization-based estimation.
//
//   ./socpowerbud
#include <iostream>
#include <memory>

#include "soc/workload.h"
#include "util/table.h"
#include "victim/platform.h"

int main() {
  using namespace psc;
  victim::Platform platform(soc::DeviceProfile::macbook_air_m2(), 11);
  auto& report = platform.ioreport();

  std::cout << "channels:\n";
  for (const auto& channel : report.channels()) {
    std::cout << "  " << channel.group << " / " << channel.name << "\n";
  }
  std::cout << "\n";

  util::TextTable table;
  table.header({"t (s)", "phase", "PCPU mW", "ECPU mW"});
  table.set_align(1, util::Align::left);

  auto sample_phase = [&](const std::string& phase, int seconds) {
    auto prev = report.sample();
    for (int s = 0; s < seconds; ++s) {
      platform.run_for(1.0);
      const auto cur = report.sample();
      table.add_row(
          {util::fixed(platform.time_s(), 0), phase,
           std::to_string(ioreport::IoReport::pcpu_delta_mj(prev, cur)),
           std::to_string(cur.ecpu_energy_mj - prev.ecpu_energy_mj)});
      prev = cur;
    }
  };

  sample_phase("idle", 2);

  const sched::ThreadId aes_id = platform.scheduler().spawn(
      "aes",
      std::make_unique<soc::AesWorkload>(
          aes::Block{}, platform.chip().profile().leakage,
          platform.chip().profile().aes_cycles_per_block),
      {.policy = sched::SchedPolicy::round_robin,
       .priority = 47,
       .cluster_hint = std::nullopt});
  sample_phase("1x AES on P-core", 3);

  std::vector<sched::ThreadId> stressors;
  for (int i = 0; i < 4; ++i) {
    stressors.push_back(platform.scheduler().spawn(
        "fmul-" + std::to_string(i), std::make_unique<soc::FmulStressor>(),
        {.cluster_hint = soc::CoreType::efficiency}));
  }
  sample_phase("+ 4x fmul on E-cores", 3);

  for (const auto id : stressors) {
    platform.scheduler().kill(id);
  }
  platform.scheduler().kill(aes_id);
  sample_phase("back to idle", 2);

  table.render(std::cout);

  std::cout << "\nnote: PCPU/ECPU report whole millijoules derived from "
               "core utilization — workload-dependent (good telemetry) but "
               "blind to the data being processed (paper Table 6: no "
               "data dependence), unlike the uW-class SMC rail meters.\n";
  return 0;
}
