// smc_explorer: an smc-fuzzer-style key explorer (paper section 3.2).
// Enumerates the SMC key space through the IOKit-shaped user client,
// dumps key info and values, and runs the idle-vs-stress diff that
// identifies workload-dependent power keys.
//
//   ./smc_explorer [m1|m2] [prefix]
#include <iostream>
#include <memory>
#include <string>

#include "smc/fuzzer.h"
#include "soc/workload.h"
#include "util/table.h"
#include "victim/platform.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::string device = argc > 1 ? argv[1] : "m2";
  const char prefix = argc > 2 ? argv[2][0] : 'P';
  const auto profile = device == "m1" ? soc::DeviceProfile::mac_mini_m1()
                                      : soc::DeviceProfile::macbook_air_m2();

  victim::Platform platform(profile, 7);
  auto conn = platform.open_smc(smc::Privilege::user);
  platform.run_for(1.2);

  std::cout << "device: " << profile.name << ", " << conn.key_count()
            << " keys enumerable via key-by-index\n\n";

  // Key catalog dump, like `smc -l`.
  util::TextTable catalog;
  catalog.header({"key", "type", "size", "attr", "value", "description"});
  catalog.set_align(5, util::Align::left);
  for (const smc::FourCc key : conn.list_keys()) {
    if (key.at(0) != prefix) {
      continue;
    }
    smc::SmcKeyInfo info;
    if (conn.key_info(key, info) != smc::SmcStatus::ok) {
      continue;
    }
    std::string attr;
    attr += info.readable ? 'r' : '-';
    attr += info.writable ? 'w' : '-';
    attr += info.privileged_read ? 'p' : '-';
    smc::SmcValue value;
    const smc::SmcStatus status = conn.read_key(key, value);
    catalog.add_row({key.str(), smc::data_type_code(info.type).str(),
                     std::to_string(smc::data_type_size(info.type)), attr,
                     status == smc::SmcStatus::ok
                         ? util::fixed(value.as_double(), 4)
                         : std::string(smc::status_name(status)),
                     info.description});
  }
  catalog.render(std::cout);

  // Idle-vs-stress diff (Table 2 methodology).
  std::cout << "\nrunning idle-vs-stress diff (stress-ng matrix analogue on "
               "all cores)...\n";
  const auto idle = smc::snapshot_keys(conn, prefix);
  for (std::size_t c = 0; c < platform.chip().core_count(); ++c) {
    platform.scheduler().spawn("stress-" + std::to_string(c),
                               std::make_unique<soc::MatrixStressor>());
  }
  platform.run_for(2.0);
  const auto busy = smc::snapshot_keys(conn, prefix);

  util::TextTable diff;
  diff.header({"key", "idle", "busy", "rel delta"});
  for (const auto& delta : smc::diff_snapshots(idle, busy)) {
    if (delta.rel_delta < 0.01) {
      continue;
    }
    diff.add_row({delta.key.str(), util::fixed(delta.baseline, 4),
                  util::fixed(delta.loaded, 4),
                  util::fixed(delta.rel_delta * 100.0, 1) + "%"});
  }
  diff.render(std::cout);

  std::cout << "\nworkload-dependent keys found:";
  for (const auto& key :
       smc::workload_dependent_keys(smc::diff_snapshots(idle, busy))) {
    std::cout << " " << key.str();
  }
  std::cout << "\n";
  return 0;
}
