// psc_busctl: CLI for the psc::bus campaign daemon — one binary that is
// both the server (`serve`) and every client verb.
//
//   psc_busctl serve    --socket S --dataset name=path [--dataset ...]
//                       [--quota N] [--threads N] [--job-parallel N]
//                       [--cache-mb N]
//   psc_busctl ping      --socket S
//   psc_busctl datasets  --socket S
//   psc_busctl scenarios --socket S
//   psc_busctl open      --socket S <name> <path.pstr>
//   psc_busctl submit    --socket S cpa  <dataset> --channel CCCC --key HEX32
//                        [--model NAME]... [--traces N] [--shards N]
//                        [--watch] [--verify-local]
//   psc_busctl submit    --socket S tvla <dataset> [--per-set N] [--shards N]
//                        [--watch] [--verify-local]
//   psc_busctl submit    --socket S scenario <name> [--param k=v]...
//                        [--per-set N] [--seed N] [--shards N]
//                        [--watch] [--verify-local]
//   psc_busctl watch     --socket S <job-id>
//   psc_busctl result    --socket S cpa|tvla|scenario <job-id>
//   psc_busctl shutdown  --socket S
//
// `submit --verify-local` is the bit-identity check the CI smoke job
// leans on: after the daemon finishes the job, the same spec is rerun
// in-process (run_*_job over the same file, or run_scenario_job for
// live-acquisition scenario jobs) and every result double is compared
// bit-for-bit — any drift between daemon-served and local analysis
// exits non-zero. `serve` installs SIGINT/SIGTERM handlers and drains
// running jobs before exiting, so `kill -TERM` is a clean stop.
// `datasets` also prints the daemon's STATS frame: decoded-chunk cache
// counters plus the per-job shard-scheduler rows.
#include <bit>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "aes/aes128.h"
#include "bus/client.h"
#include "bus/daemon.h"
#include "bus/jobs.h"
#include "bus/scenario_jobs.h"
#include "core/report.h"
#include "store/shared_mapping.h"
#include "util/hex.h"
#include "util/table.h"

namespace {

using namespace psc;

int usage() {
  std::cerr
      << "usage:\n"
         "  psc_busctl serve     --socket S --dataset name=path [...]\n"
         "                       [--quota N] [--threads N]\n"
         "                       [--job-parallel N] [--cache-mb N]\n"
         "  psc_busctl ping      --socket S\n"
         "  psc_busctl datasets  --socket S\n"
         "  psc_busctl scenarios --socket S\n"
         "  psc_busctl open      --socket S <name> <path.pstr>\n"
         "  psc_busctl submit    --socket S cpa  <dataset> --channel CCCC\n"
         "                       --key HEX32 [--model NAME]... [--traces N]\n"
         "                       [--shards N] [--watch] [--verify-local]\n"
         "  psc_busctl submit    --socket S tvla <dataset> [--per-set N]\n"
         "                       [--shards N] [--watch] [--verify-local]\n"
         "  psc_busctl submit    --socket S scenario <name> [--param k=v]...\n"
         "                       [--per-set N] [--seed N] [--shards N]\n"
         "                       [--watch] [--verify-local]\n"
         "  psc_busctl watch     --socket S <job-id>\n"
         "  psc_busctl result    --socket S cpa|tvla|scenario <job-id>\n"
         "  psc_busctl shutdown  --socket S\n";
  return 2;
}

// argv cursor: flags may appear anywhere after the verb.
struct Args {
  std::vector<std::string> positional;
  std::vector<std::pair<std::string, std::string>> flags;  // --name value
  bool watch = false;
  bool verify_local = false;

  std::optional<std::string> flag(const std::string& name) const {
    for (const auto& [key, value] : flags) {
      if (key == name) {
        return value;
      }
    }
    return std::nullopt;
  }
  std::vector<std::string> flag_all(const std::string& name) const {
    std::vector<std::string> out;
    for (const auto& [key, value] : flags) {
      if (key == name) {
        out.push_back(value);
      }
    }
    return out;
  }
};

bool parse_args(int argc, char** argv, int from, Args& args) {
  for (int i = from; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--watch") {
      args.watch = true;
    } else if (arg == "--verify-local") {
      args.verify_local = true;
    } else if (arg.rfind("--", 0) == 0) {
      if (i + 1 >= argc) {
        std::cerr << "flag " << arg << " needs a value\n";
        return false;
      }
      args.flags.emplace_back(arg.substr(2), argv[++i]);
    } else {
      args.positional.push_back(arg);
    }
  }
  return true;
}

std::string require_socket(const Args& args) {
  const auto socket = args.flag("socket");
  if (!socket.has_value()) {
    throw std::invalid_argument("--socket is required");
  }
  return *socket;
}

std::uint64_t parse_u64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 10);
}

power::PowerModel parse_model(const std::string& name) {
  for (const power::PowerModel model : power::all_power_models) {
    if (power::power_model_name(model) == name) {
      return model;
    }
  }
  throw std::invalid_argument("unknown power model: " + name);
}

void print_progress(const bus::ProgressMsg& msg) {
  std::cout << "job " << msg.id << ": " << msg.consumed << "/" << msg.total
            << " traces";
  if (msg.running_shards > 0) {
    std::cout << " (" << msg.running_shards << " shard units)";
  }
  std::cout << "\n";
}

void print_cpa_result(std::uint64_t id, const bus::CpaJobResult& result) {
  std::cout << "job " << id << ": CPA over " << result.traces << " traces\n";
  std::vector<core::RankColumn> columns;
  for (const core::ModelResult& model : result.models) {
    columns.push_back({std::string(power::power_model_name(model.model)),
                       &model});
  }
  core::cpa_rank_table("CPA key ranks (daemon job " + std::to_string(id) + ")",
                       columns)
      .render(std::cout);
  for (const core::ModelResult& model : result.models) {
    std::cout << power::power_model_name(model.model) << ": GE "
              << model.ge_bits << " bits, " << model.recovered_bytes
              << "/16 recovered, best key "
              << util::to_hex(model.best_round_key) << "\n";
  }
}

void print_tvla_result(std::uint64_t id, const bus::TvlaJobResult& result) {
  std::cout << "job " << id << ": TVLA with " << result.traces_per_set
            << " traces per set\n";
  core::tvla_table("TVLA t-scores (daemon job " + std::to_string(id) + ")",
                   result.channels)
      .render(std::cout);
}

void print_scenario_result(std::uint64_t id,
                           const bus::ScenarioJobResult& result) {
  std::cout << "job " << id << ": scenario '" << result.scenario << "', "
            << result.traces_per_set << " traces per set\n";
  core::tvla_table("TVLA t-scores (daemon job " + std::to_string(id) + ")",
                   result.tvla)
      .render(std::cout);
  for (const core::CpaKeyResult& key : result.cpa) {
    std::cout << "CPA over " << key.key.str() << " (" << result.cpa_trace_count
              << " traces):\n";
    for (const core::ModelResult& model : key.final_results) {
      std::cout << "  " << power::power_model_name(model.model) << ": GE "
                << model.ge_bits << " bits, " << model.recovered_bytes
                << "/16 recovered\n";
    }
  }
  std::cout << "max cross-class |t| over leakage channels: "
            << result.max_cross_class_t() << "\n";
}

// ---------- bit-identity comparison (submit --verify-local) ----------

bool bits_equal(double a, double b) {
  // == would call 0.0 and -0.0 identical and NaN unequal to itself; the
  // contract is bit-identity, so compare the representation.
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool model_result_equal(const core::ModelResult& x,
                        const core::ModelResult& y) {
  if (x.model != y.model || x.true_ranks != y.true_ranks ||
      x.scored_key != y.scored_key || !bits_equal(x.ge_bits, y.ge_bits) ||
      !bits_equal(x.mean_rank, y.mean_rank) ||
      x.best_round_key != y.best_round_key ||
      x.implied_master_key != y.implied_master_key ||
      x.recovered_bytes != y.recovered_bytes ||
      x.near_recovered_bytes != y.near_recovered_bytes) {
    return false;
  }
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t g = 0; g < 256; ++g) {
      if (!bits_equal(x.bytes[i].correlation[g], y.bytes[i].correlation[g])) {
        return false;
      }
    }
  }
  return true;
}

bool cpa_equal(const bus::CpaJobResult& a, const bus::CpaJobResult& b) {
  if (a.traces != b.traces || a.models.size() != b.models.size()) {
    return false;
  }
  for (std::size_t m = 0; m < a.models.size(); ++m) {
    if (!model_result_equal(a.models[m], b.models[m])) {
      return false;
    }
  }
  return true;
}

bool tvla_equal(const bus::TvlaJobResult& a, const bus::TvlaJobResult& b) {
  if (a.traces_per_set != b.traces_per_set ||
      a.channels.size() != b.channels.size()) {
    return false;
  }
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    if (a.channels[c].channel != b.channels[c].channel) {
      return false;
    }
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        if (!bits_equal(a.channels[c].matrix.t[i][j],
                        b.channels[c].matrix.t[i][j])) {
          return false;
        }
      }
    }
  }
  return true;
}

bool scenario_equal(const bus::ScenarioJobResult& a,
                    const bus::ScenarioJobResult& b) {
  if (a.scenario != b.scenario || a.secret != b.secret ||
      a.traces_per_set != b.traces_per_set ||
      a.cpa_trace_count != b.cpa_trace_count || a.channels != b.channels ||
      a.leakage_channels != b.leakage_channels ||
      a.tvla.size() != b.tvla.size() || a.cpa.size() != b.cpa.size()) {
    return false;
  }
  for (std::size_t c = 0; c < a.tvla.size(); ++c) {
    if (a.tvla[c].channel != b.tvla[c].channel) {
      return false;
    }
    for (std::size_t i = 0; i < 3; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        if (!bits_equal(a.tvla[c].matrix.t[i][j], b.tvla[c].matrix.t[i][j])) {
          return false;
        }
      }
    }
  }
  for (std::size_t k = 0; k < a.cpa.size(); ++k) {
    const core::CpaKeyResult& x = a.cpa[k];
    const core::CpaKeyResult& y = b.cpa[k];
    if (x.key != y.key || x.final_results.size() != y.final_results.size() ||
        x.curves.size() != y.curves.size()) {
      return false;
    }
    for (std::size_t m = 0; m < x.final_results.size(); ++m) {
      if (!model_result_equal(x.final_results[m], y.final_results[m])) {
        return false;
      }
    }
    for (std::size_t m = 0; m < x.curves.size(); ++m) {
      if (x.curves[m].size() != y.curves[m].size()) {
        return false;
      }
      for (std::size_t p = 0; p < x.curves[m].size(); ++p) {
        const core::GeCurvePoint& u = x.curves[m][p];
        const core::GeCurvePoint& v = y.curves[m][p];
        if (u.traces != v.traces || !bits_equal(u.ge_bits, v.ge_bits) ||
            !bits_equal(u.mean_rank, v.mean_rank) ||
            u.recovered_bytes != v.recovered_bytes) {
          return false;
        }
      }
    }
  }
  return true;
}

// The daemon's stored path for `dataset` (the summary travels with the
// dataset list), so --verify-local can open the same file in-process.
std::string dataset_path(bus::BusClient& client, const std::string& dataset) {
  for (const auto& entry : client.list_datasets()) {
    if (entry.name == dataset) {
      return entry.summary.path;
    }
  }
  throw std::runtime_error("dataset not listed by daemon: " + dataset);
}

// ---------- verbs ----------

int cmd_serve(const Args& args) {
  bus::BusDaemonConfig config;
  config.socket_path = require_socket(args);
  if (const auto quota = args.flag("quota")) {
    config.per_session_quota = parse_u64(*quota);
  }
  if (const auto threads = args.flag("threads")) {
    config.pool_reserve = parse_u64(*threads);
  }
  if (const auto parallel = args.flag("job-parallel")) {
    config.shard_parallelism = parse_u64(*parallel);
  }
  if (const auto cache_mb = args.flag("cache-mb")) {
    config.chunk_cache_mb = parse_u64(*cache_mb);
  }
  for (const std::string& spec : args.flag_all("dataset")) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::cerr << "--dataset wants name=path, got: " << spec << "\n";
      return 2;
    }
    config.datasets.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
  }

  bus::BusDaemon daemon(std::move(config));
  bus::BusDaemon::install_signal_handlers(daemon);
  daemon.start();
  std::cout << "psc_busctl: serving on " << daemon.socket_path() << " ("
            << daemon.registry().size() << " datasets)\n"
            << std::flush;
  daemon.wait();
  std::cout << "psc_busctl: stopped\n";
  return 0;
}

void print_daemon_stats(const bus::StatsMsg& stats) {
  std::cout << "daemon: " << stats.jobs_active << " active / "
            << stats.jobs_submitted << " submitted job(s), "
            << stats.pool_threads << " pool thread(s)\n";
  if (stats.cache_capacity_bytes > 0) {
    std::cout << "chunk cache: " << stats.cache_hits << " hits, "
              << stats.cache_misses << " misses, " << stats.cache_evictions
              << " evictions, " << stats.cache_resident_bytes << "/"
              << stats.cache_capacity_bytes << " bytes ("
              << stats.cache_entries << " chunks)\n";
  } else {
    std::cout << "chunk cache: disabled\n";
  }
  for (const bus::StatsMsg::JobRow& job : stats.jobs) {
    std::cout << "job " << job.id << ": " << bus::job_state_name(job.state)
              << ", "
              << job.running_shards << "/" << job.shards
              << " shard units running (cap " << job.shard_cap << ", peak "
              << job.peak_shards << ")\n";
  }
}

int cmd_datasets(const Args& args) {
  bus::BusClient client(require_socket(args));
  const auto datasets = client.list_datasets();
  std::cout << datasets.size() << " dataset(s)\n";
  for (const auto& entry : datasets) {
    std::cout << entry.name << ":\n";
    store::print_dataset_summary(std::cout, entry.summary, "  ");
  }
  print_daemon_stats(client.stats());
  return 0;
}

int cmd_scenarios(const Args& args) {
  bus::BusClient client(require_socket(args));
  const auto scenarios = client.list_scenarios();
  std::cout << scenarios.size() << " scenario(s)\n";
  for (const auto& entry : scenarios) {
    std::cout << entry.name << ": " << entry.description << "\n"
              << "  victim:   " << entry.victim << "\n"
              << "  channel:  " << entry.channel << "\n"
              << "  analysis: " << (entry.cpa ? "TVLA + CPA/GE" : "TVLA")
              << ", " << entry.default_traces_per_set
              << " traces per set, channels";
    for (const util::FourCc& channel : entry.channels) {
      std::cout << " " << channel.str();
    }
    std::cout << "\n";
    for (const auto& param : entry.params) {
      std::cout << "  --param " << param.name << "=" << param.default_value
                << "  " << param.description << "\n";
    }
  }
  return 0;
}

int cmd_submit(const Args& args) {
  if (args.positional.size() != 2) {
    return usage();
  }
  const std::string& kind = args.positional[0];
  const std::string& dataset = args.positional[1];
  bus::BusClient client(require_socket(args));

  std::uint64_t id = 0;
  bus::CpaJobSpec cpa;
  bus::TvlaJobSpec tvla;
  bus::ScenarioJobSpec scenario;
  if (kind == "cpa") {
    const auto channel = args.flag("channel");
    const auto key = args.flag("key");
    if (!channel.has_value() || !key.has_value()) {
      std::cerr << "submit cpa needs --channel and --key\n";
      return 2;
    }
    const auto fourcc = util::FourCc::parse(*channel);
    if (!fourcc.has_value()) {
      std::cerr << "--channel wants a 4-character FourCC\n";
      return 2;
    }
    cpa.channel = fourcc->code();
    if (!util::from_hex_exact(*key, cpa.known_key)) {
      std::cerr << "--key wants 32 hex characters\n";
      return 2;
    }
    const std::vector<std::string> models = args.flag_all("model");
    if (!models.empty()) {
      cpa.models.clear();
      for (const std::string& name : models) {
        cpa.models.push_back(parse_model(name));
      }
    }
    if (const auto traces = args.flag("traces")) {
      cpa.trace_count = parse_u64(*traces);
    }
    if (const auto shards = args.flag("shards")) {
      cpa.shards = static_cast<std::uint32_t>(parse_u64(*shards));
    }
    id = client.submit_cpa(dataset, cpa);
  } else if (kind == "tvla") {
    if (const auto per_set = args.flag("per-set")) {
      tvla.traces_per_set = parse_u64(*per_set);
    }
    if (const auto shards = args.flag("shards")) {
      tvla.shards = static_cast<std::uint32_t>(parse_u64(*shards));
    }
    id = client.submit_tvla(dataset, tvla);
  } else if (kind == "scenario") {
    scenario.scenario = dataset;  // second positional is the scenario name
    for (const std::string& spec : args.flag_all("param")) {
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) {
        std::cerr << "--param wants key=value, got: " << spec << "\n";
        return 2;
      }
      scenario.params.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    }
    if (const auto per_set = args.flag("per-set")) {
      scenario.traces_per_set = parse_u64(*per_set);
    }
    if (const auto seed = args.flag("seed")) {
      scenario.seed = parse_u64(*seed);
    }
    if (const auto shards = args.flag("shards")) {
      scenario.shards = static_cast<std::uint32_t>(parse_u64(*shards));
    }
    id = client.submit_scenario(scenario);
  } else {
    return usage();
  }
  std::cout << "accepted job " << id << "\n";

  if (!args.watch && !args.verify_local) {
    return 0;
  }
  const bus::JobStatusMsg final_status =
      client.watch(id, args.watch ? print_progress : bus::BusClient::WatchFn{});
  if (final_status.state == bus::JobState::failed) {
    std::cerr << "job " << id << " FAILED: " << final_status.error << "\n";
    return 1;
  }

  if (kind == "cpa") {
    const bus::CpaJobResult remote = client.cpa_result(id);
    print_cpa_result(id, remote);
    if (args.verify_local) {
      const bus::CpaJobResult local =
          bus::run_cpa_job(store::SharedMapping::open(
                               dataset_path(client, dataset)),
                           cpa);
      const bool same = cpa_equal(remote, local);
      std::cout << "verify-local: " << (same ? "bit-identical" : "MISMATCH")
                << "\n";
      return same ? 0 : 1;
    }
  } else if (kind == "tvla") {
    const bus::TvlaJobResult remote = client.tvla_result(id);
    print_tvla_result(id, remote);
    if (args.verify_local) {
      const bus::TvlaJobResult local =
          bus::run_tvla_job(store::SharedMapping::open(
                                dataset_path(client, dataset)),
                            tvla);
      const bool same = tvla_equal(remote, local);
      std::cout << "verify-local: " << (same ? "bit-identical" : "MISMATCH")
                << "\n";
      return same ? 0 : 1;
    }
  } else {
    const bus::ScenarioJobResult remote = client.scenario_result(id);
    print_scenario_result(id, remote);
    if (args.verify_local) {
      // Scenario results are worker-invariant, so a single-worker rerun
      // of the same spec must match the daemon's parallel run exactly.
      const bus::ScenarioJobResult local = bus::run_scenario_job(scenario);
      const bool same = scenario_equal(remote, local);
      std::cout << "verify-local: " << (same ? "bit-identical" : "MISMATCH")
                << "\n";
      return same ? 0 : 1;
    }
  }
  return 0;
}

int cmd_watch(const Args& args) {
  if (args.positional.size() != 1) {
    return usage();
  }
  bus::BusClient client(require_socket(args));
  const std::uint64_t id = parse_u64(args.positional[0]);
  const bus::JobStatusMsg status = client.watch(id, print_progress);
  std::cout << "job " << id << ": " << bus::job_state_name(status.state);
  if (status.state == bus::JobState::failed) {
    std::cout << " (" << status.error << ")";
  }
  std::cout << "\n";
  return status.state == bus::JobState::done ? 0 : 1;
}

int cmd_result(const Args& args) {
  if (args.positional.size() != 2) {
    return usage();
  }
  bus::BusClient client(require_socket(args));
  const std::string& kind = args.positional[0];
  const std::uint64_t id = parse_u64(args.positional[1]);
  if (kind == "cpa") {
    print_cpa_result(id, client.cpa_result(id));
  } else if (kind == "tvla") {
    print_tvla_result(id, client.tvla_result(id));
  } else if (kind == "scenario") {
    print_scenario_result(id, client.scenario_result(id));
  } else {
    return usage();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return usage();
  }
  const std::string verb = argv[1];
  Args args;
  if (!parse_args(argc, argv, 2, args)) {
    return 2;
  }
  try {
    if (verb == "serve") {
      return cmd_serve(args);
    }
    if (verb == "ping") {
      bus::BusClient(require_socket(args)).ping();
      std::cout << "pong\n";
      return 0;
    }
    if (verb == "datasets") {
      return cmd_datasets(args);
    }
    if (verb == "scenarios") {
      return cmd_scenarios(args);
    }
    if (verb == "open") {
      if (args.positional.size() != 2) {
        return usage();
      }
      bus::BusClient(require_socket(args))
          .open_dataset(args.positional[0], args.positional[1]);
      std::cout << "opened " << args.positional[0] << "\n";
      return 0;
    }
    if (verb == "submit") {
      return cmd_submit(args);
    }
    if (verb == "watch") {
      return cmd_watch(args);
    }
    if (verb == "result") {
      return cmd_result(args);
    }
    if (verb == "shutdown") {
      bus::BusClient(require_socket(args)).shutdown_server();
      std::cout << "daemon draining\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
