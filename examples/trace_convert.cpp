// trace_convert: the dataset toolbox for the PSTR trace store. Converts
// captures between the two persistence formats — CSV (human-readable,
// interchange) and PSTR (chunked binary, CRC-checked, out-of-core
// replay) — and inspects store files without loading them.
//
//   trace_convert info     <file.pstr>
//   trace_convert csv2pstr <in.csv>  <out.pstr> [chunk_rows]
//   trace_convert pstr2csv <in.pstr> <out.csv>
//
// Both conversions are value-exact: CSV cells use shortest-round-trip
// float formatting and PSTR stores raw IEEE-754 doubles, so
// csv -> pstr -> csv and pstr -> csv -> pstr reproduce the same bits.
// pstr2csv streams chunk by chunk, so converting a file larger than RAM
// is fine; csv2pstr currently loads the CSV through core::TraceSet.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/trace.h"
#include "store/file_trace_source.h"
#include "store/trace_file_writer.h"
#include "util/csv.h"
#include "util/hex.h"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  trace_convert info     <file.pstr>\n"
               "  trace_convert csv2pstr <in.csv>  <out.pstr> [chunk_rows]\n"
               "  trace_convert pstr2csv <in.pstr> <out.csv>\n";
  return 2;
}

int cmd_info(const std::string& path) {
  using namespace psc;
  store::TraceFileReader reader(path);
  std::cout << "file        : " << path << " (" << reader.file_bytes()
            << " bytes, " << (reader.mapped() ? "mmap" : "stream")
            << " reader)\n"
            << "traces      : " << reader.trace_count() << "\n"
            << "channels    : " << reader.channels().size() << " [";
  for (std::size_t c = 0; c < reader.channels().size(); ++c) {
    std::cout << (c ? " " : "") << reader.channels()[c].str();
  }
  std::cout << "]\n"
            << "chunks      : " << reader.chunk_count() << " x up to "
            << reader.chunk_capacity() << " traces ("
            << store::chunk_bytes(reader.chunk_capacity(),
                                  reader.channels().size())
            << " bytes full)\n";
  if (reader.chunk_count() > 0) {
    const std::size_t last = reader.chunk_count() - 1;
    std::cout << "last chunk  : " << reader.chunk_rows(last)
              << " traces at row " << reader.chunk_row_begin(last) << "\n";
  }
  for (const auto& [key, value] : reader.metadata()) {
    std::cout << "meta        : " << key << " = " << value << "\n";
  }
  return 0;
}

int cmd_csv2pstr(const std::string& in_path, const std::string& out_path,
                 std::size_t chunk_rows) {
  using namespace psc;
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "cannot open " << in_path << "\n";
    return 1;
  }
  const core::TraceSet set = core::TraceSet::load_csv(in);
  store::TraceFileWriter writer(out_path,
                                {.channels = set.keys(),
                                 .chunk_capacity = chunk_rows,
                                 .metadata = {{"source", in_path}}});
  writer.append(set);
  writer.finalize();
  std::cout << "wrote " << set.size() << " traces ("
            << set.keys().size() << " channels) -> " << out_path << "\n";
  return 0;
}

int cmd_pstr2csv(const std::string& in_path, const std::string& out_path) {
  using namespace psc;
  store::TraceFileReader reader(in_path);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  util::CsvWriter csv(out);
  std::vector<std::string> header = {"plaintext", "ciphertext"};
  for (const auto& key : reader.channels()) {
    header.push_back(key.str());
  }
  csv.row(header);
  // Chunk-by-chunk streaming: resident memory is one chunk, whatever the
  // file size.
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    const store::ChunkView view = reader.chunk(i);
    for (std::size_t r = 0; r < view.rows(); ++r) {
      auto row = csv.start_row();
      row.cell(util::to_hex(view.plaintexts()[r]));
      row.cell(util::to_hex(view.ciphertexts()[r]));
      for (std::size_t c = 0; c < view.channels(); ++c) {
        row.cell(util::format_double_exact(view.column(c)[r]));
      }
      row.done();
    }
  }
  std::cout << "wrote " << reader.trace_count() << " traces ("
            << reader.channels().size() << " channels) -> " << out_path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "info" && argc == 3) {
      return cmd_info(argv[2]);
    }
    if (command == "csv2pstr" && (argc == 4 || argc == 5)) {
      const std::size_t chunk_rows =
          argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 4096;
      return cmd_csv2pstr(argv[2], argv[3], chunk_rows);
    }
    if (command == "pstr2csv" && argc == 4) {
      return cmd_pstr2csv(argv[2], argv[3]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
