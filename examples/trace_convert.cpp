// trace_convert: the dataset toolbox for the PSTR trace store. Converts
// captures between the two persistence formats — CSV (human-readable,
// interchange) and PSTR (chunked binary, CRC-checked, out-of-core
// replay) — and inspects store files without loading them.
//
//   trace_convert info     <file.pstr>
//   trace_convert csv2pstr <in.csv>  <out.pstr> [chunk_rows]
//   trace_convert pstr2csv <in.pstr> <out.csv>
//   trace_convert compact  <in.pstr> <out.pstr> [chunk_rows]
//   trace_convert verify   <file.pstr>
//   trace_convert cat      <file.pstr> [begin [count]]
//
// Both conversions are value-exact: CSV cells use shortest-round-trip
// float formatting and PSTR stores raw IEEE-754 doubles, so
// csv -> pstr -> csv and pstr -> csv -> pstr reproduce the same bits.
// pstr2csv streams chunk by chunk, so converting a file larger than RAM
// is fine; csv2pstr currently loads the CSV through core::TraceSet.
//
// compact rewrites any readable store as a version-2 file with the
// delta_bitpack codec requested on every channel (chunks that do not
// compress stay identity — the output always round-trips bit-exactly);
// verify walks every chunk, CRC-checking and decoding it, and exits
// non-zero on the first corruption; cat streams a trace range to stdout
// in the pstr2csv format. All three stream out-of-core.
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "core/trace.h"
#include "store/dataset_summary.h"
#include "store/file_trace_source.h"
#include "store/trace_file_writer.h"
#include "util/csv.h"
#include "util/hex.h"

namespace {

int usage() {
  std::cerr << "usage:\n"
               "  trace_convert info     <file.pstr>\n"
               "  trace_convert csv2pstr <in.csv>  <out.pstr> [chunk_rows]\n"
               "  trace_convert pstr2csv <in.pstr> <out.csv>\n"
               "  trace_convert compact  <in.pstr> <out.pstr> [chunk_rows]\n"
               "  trace_convert verify   <file.pstr>\n"
               "  trace_convert cat      <file.pstr> [begin [count]]\n";
  return 2;
}

int cmd_info(const std::string& path) {
  using namespace psc;
  store::TraceFileReader reader(path);
  // The shared summary (store/dataset_summary.h) is what the bus daemon
  // serves for `psc_busctl datasets` — same struct, same formatter, so
  // local and daemon-side views of a dataset print identically. It walks
  // chunk headers and column directories only; per-column codec,
  // raw/stored bytes and compression ratios come without decoding a
  // single payload byte.
  const store::DatasetSummary summary = store::summarize_dataset(reader);
  print_dataset_summary(std::cout, summary);
  std::cout << "reader      : " << (reader.mapped() ? "mmap" : "stream")
            << "\n";
  if (reader.chunk_count() > 0) {
    const std::size_t last = reader.chunk_count() - 1;
    std::cout << "last chunk  : " << reader.chunk_rows(last)
              << " traces at row " << reader.chunk_row_begin(last) << "\n";
  }
  return 0;
}

int cmd_csv2pstr(const std::string& in_path, const std::string& out_path,
                 std::size_t chunk_rows) {
  using namespace psc;
  std::ifstream in(in_path);
  if (!in) {
    std::cerr << "cannot open " << in_path << "\n";
    return 1;
  }
  const core::TraceSet set = core::TraceSet::load_csv(in);
  store::TraceFileWriter writer(out_path,
                                {.channels = set.keys(),
                                 .chunk_capacity = chunk_rows,
                                 .metadata = {{"source", in_path}}});
  writer.append(set);
  writer.finalize();
  std::cout << "wrote " << set.size() << " traces ("
            << set.keys().size() << " channels) -> " << out_path << "\n";
  return 0;
}

int cmd_pstr2csv(const std::string& in_path, const std::string& out_path) {
  using namespace psc;
  store::TraceFileReader reader(in_path);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << "\n";
    return 1;
  }
  util::CsvWriter csv(out);
  std::vector<std::string> header = {"plaintext", "ciphertext"};
  for (const auto& key : reader.channels()) {
    header.push_back(key.str());
  }
  csv.row(header);
  // Chunk-by-chunk streaming: resident memory is one chunk, whatever the
  // file size.
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    const store::ChunkView view = reader.chunk(i);
    for (std::size_t r = 0; r < view.rows(); ++r) {
      auto row = csv.start_row();
      row.cell(util::to_hex(view.plaintexts()[r]));
      row.cell(util::to_hex(view.ciphertexts()[r]));
      for (std::size_t c = 0; c < view.channels(); ++c) {
        row.cell(util::format_double_exact(view.column(c)[r]));
      }
      row.done();
    }
  }
  std::cout << "wrote " << reader.trace_count() << " traces ("
            << reader.channels().size() << " channels) -> " << out_path
            << "\n";
  return 0;
}

int cmd_compact(const std::string& in_path, const std::string& out_path,
                std::size_t chunk_rows) {
  using namespace psc;
  store::TraceFileReader reader(in_path);
  store::TraceFileWriter writer(
      out_path,
      {.channels = reader.channels(),
       .chunk_capacity = chunk_rows ? chunk_rows : reader.chunk_capacity(),
       .metadata = reader.metadata(),
       .channel_codecs = store::uniform_channel_codecs(
           reader.channels().size(), store::ColumnCodec::delta_bitpack)});
  core::TraceBatch batch;
  batch.reset_channels(reader.channels().size());
  for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
    batch.clear();
    reader.chunk(i).append_to(batch);
    writer.append(batch);
  }
  writer.finalize();

  store::TraceFileReader out(out_path);
  const double file_ratio = out.file_bytes() > 0
                                ? static_cast<double>(reader.file_bytes()) /
                                      static_cast<double>(out.file_bytes())
                                : 0.0;
  const double channel_ratio =
      writer.channel_stored_bytes() > 0
          ? static_cast<double>(writer.channel_raw_bytes()) /
                static_cast<double>(writer.channel_stored_bytes())
          : 0.0;
  std::cout << "compacted " << reader.trace_count() << " traces (v"
            << reader.format_version() << " -> v" << out.format_version()
            << ") " << reader.file_bytes() << " -> " << out.file_bytes()
            << " bytes\n"
            << std::fixed << std::setprecision(2)  //
            << "file ratio  : " << file_ratio << "x\n"
            << "chan ratio  : " << channel_ratio << "x ("
            << writer.channel_raw_bytes() << " -> "
            << writer.channel_stored_bytes() << " channel bytes)\n";
  return 0;
}

int cmd_verify(const std::string& path) {
  using namespace psc;
  try {
    store::TraceFileReader reader(path);
    std::uint64_t rows = 0;
    // chunk() decodes every column and checks the payload CRC, so this
    // walk exercises exactly the bytes a replay campaign would consume.
    for (std::size_t i = 0; i < reader.chunk_count(); ++i) {
      rows += reader.chunk(i).rows();
    }
    if (rows != reader.trace_count()) {
      std::cerr << "verify FAILED: " << path << ": chunk rows " << rows
                << " != trace count " << reader.trace_count() << "\n";
      return 1;
    }
    std::cout << "OK: " << path << " v" << reader.format_version() << ", "
              << reader.trace_count() << " traces in "
              << reader.chunk_count() << " chunks, "
              << reader.channels().size() << " channels\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "verify FAILED: " << e.what() << "\n";
    return 1;
  }
}

int cmd_cat(const std::string& path, std::size_t begin, std::size_t count) {
  using namespace psc;
  store::FileTraceSource source(path, begin, count);
  util::CsvWriter csv(std::cout);
  std::vector<std::string> header = {"row", "plaintext", "ciphertext"};
  for (const auto& key : source.keys()) {
    header.push_back(key.str());
  }
  csv.row(header);
  core::TraceBatch batch;
  batch.reset_channels(source.keys().size());
  std::size_t row_index = begin;
  while (source.remaining().value() > 0) {
    batch.resize(std::min<std::size_t>(4096, source.remaining().value()));
    source.collect_batch(batch);
    for (std::size_t r = 0; r < batch.size(); ++r) {
      auto row = csv.start_row();
      row.cell(std::to_string(row_index++));
      row.cell(util::to_hex(batch.plaintexts()[r]));
      row.cell(util::to_hex(batch.ciphertexts()[r]));
      for (std::size_t c = 0; c < batch.channels(); ++c) {
        row.cell(util::format_double_exact(batch.column(c)[r]));
      }
      row.done();
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    return usage();
  }
  const std::string command = argv[1];
  try {
    if (command == "info" && argc == 3) {
      return cmd_info(argv[2]);
    }
    if (command == "csv2pstr" && (argc == 4 || argc == 5)) {
      const std::size_t chunk_rows =
          argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 4096;
      return cmd_csv2pstr(argv[2], argv[3], chunk_rows);
    }
    if (command == "pstr2csv" && argc == 4) {
      return cmd_pstr2csv(argv[2], argv[3]);
    }
    if (command == "compact" && (argc == 4 || argc == 5)) {
      const std::size_t chunk_rows =
          argc == 5 ? std::strtoull(argv[4], nullptr, 10) : 0;
      return cmd_compact(argv[2], argv[3], chunk_rows);
    }
    if (command == "verify" && argc == 3) {
      return cmd_verify(argv[2]);
    }
    if (command == "cat" && argc >= 3 && argc <= 5) {
      const std::size_t begin =
          argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 0;
      const std::size_t count =
          argc == 5 ? std::strtoull(argv[4], nullptr, 10)
                    : std::numeric_limits<std::size_t>::max();
      return cmd_cat(argv[2], begin, count);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
