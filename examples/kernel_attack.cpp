// kernel_attack: crossing the privilege boundary (paper section 3.5).
// The victim is now a kernel crypto driver: its secret never leaves
// kernel space, the attacker merely calls the encryption service and
// reads user-visible SMC keys. Demonstrates that the side channel works
// across the user/kernel boundary, just with lower SNR.
//
//   ./kernel_attack [traces]            (default 300000)
#include <cstdlib>
#include <iostream>

#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "util/hex.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::size_t traces =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300'000;

  std::cout
      << "victim : AES-128 kernel module (duty-cycled service threads +\n"
         "         syscall-path noise from the caller), M2\n"
      << "attack : same unprivileged CPA as the user-space case\n\n";

  // Step 1: confirm the channel still leaks for the kernel victim (TVLA).
  core::TvlaCampaignConfig tvla_config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::kernel_module(),
      .traces_per_set = 4000,
      .include_pcpu = false,
      .seed = 99,
  };
  const auto tvla = run_tvla_campaign(tvla_config);
  std::cout << "TVLA (kernel victim): PHPC t(0s' vs 1s) = "
            << util::fixed(tvla.find("PHPC")->matrix.score(
                               core::PlaintextClass::all_zeros,
                               core::PlaintextClass::all_ones),
                           2)
            << ", PHPS t(0s' vs 1s) = "
            << util::fixed(tvla.find("PHPS")->matrix.score(
                               core::PlaintextClass::all_zeros,
                               core::PlaintextClass::all_ones),
                           2)
            << "\n\n";

  // Step 2: extract key material, comparing convergence against the
  // user-space victim at the same trace budget.
  core::CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::kernel_module(),
      .trace_count = traces,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = 100,
  };
  const auto kernel = run_cpa_campaign(config);

  config.victim = victim::VictimModel::user_space();
  const auto user = run_cpa_campaign(config);

  util::TextTable table;
  table.header({"victim", "GE bits", "mean rank", "rank-1 bytes",
                "rank<10 bytes"});
  const auto& kernel_final = kernel.keys[0].final_results[0];
  const auto& user_final = user.keys[0].final_results[0];
  table.add_row({"kernel module", util::fixed(kernel_final.ge_bits, 1),
                 util::fixed(kernel_final.mean_rank, 1),
                 std::to_string(kernel_final.recovered_bytes),
                 std::to_string(kernel_final.near_recovered_bytes)});
  table.add_row({"user space", util::fixed(user_final.ge_bits, 1),
                 util::fixed(user_final.mean_rank, 1),
                 std::to_string(user_final.recovered_bytes),
                 std::to_string(user_final.near_recovered_bytes)});
  table.render(std::cout);

  std::cout << "\nkernel secret  : " << util::to_hex(kernel.victim_key)
            << "\nbest guess     : "
            << util::to_hex(kernel_final.best_round_key) << "\n\n"
            << "the kernel attack needs roughly twice the traces of the "
               "user-space attack for the same GE (paper Fig. 1b) — the "
               "confidentiality of kernel-held secrets is still broken by "
               "an unprivileged SMC reader.\n";
  return 0;
}
