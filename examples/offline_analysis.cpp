// offline_analysis: capture once, analyze many times. A live acquisition
// pass tees its batches to a PSTR trace store through store::RecordingSink
// while a CPA sink consumes them; the recorded file is then replayed
// out-of-core through store::FileTraceSource into a fresh engine — and
// the two ModelResults are bit-identical, demonstrating that analysis is
// fully decoupled from collection. The store is written as format v2:
// the quantized sensor columns compress losslessly (delta_bitpack), and
// replay decodes ahead on the worker pool (chunk prefetch, on by
// default) — both change bytes and schedule, never a result bit. CSV
// interchange (the format a logging attacker might keep) is handled by
// the trace_convert tool: csv2pstr / pstr2csv are value-exact in both
// directions.
//
//   ./offline_analysis [traces] [path.pstr]
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/analysis_sink.h"
#include "core/guessing_entropy.h"
#include "core/trace_source.h"
#include "store/file_trace_source.h"
#include "store/trace_file_writer.h"
#include "util/hex.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::size_t traces =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::string path = argc > 2 ? argv[2] : "/tmp/psc_traces.pstr";
  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};

  // --- Collection phase (the attacker's logger): one live pass feeds the
  // CPA sink and the recorder the same batches.
  util::Xoshiro256 rng(2025);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  const core::LiveSourceConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space()};
  core::LiveTraceSource source(config, victim_key, 1);
  const auto& channels = source.keys();
  const std::size_t column = static_cast<std::size_t>(
      std::find(channels.begin(), channels.end(), util::FourCc("PHPC")) -
      channels.begin());

  store::TraceFileWriter writer(
      path, {.channels = channels,
             .metadata = store::device_metadata(config.profile.name,
                                                config.profile.os_version),
             .channel_codecs = store::uniform_channel_codecs(
                 channels.size(), store::ColumnCodec::delta_bitpack)});
  core::CpaSink live_cpa(models, {column});
  store::RecordingSink recorder(writer);
  core::MultiSink multi({&live_cpa, &recorder});

  core::TraceBatch batch(channels.size());
  std::size_t produced = 0;
  while (produced < traces) {
    const std::size_t chunk = std::min<std::size_t>(1024, traces - produced);
    core::collect_random_batch(source, chunk, rng, batch);
    multi.consume(batch, core::BatchLabel::unlabeled());
    produced += chunk;
  }
  writer.finalize();
  std::cout << "captured " << writer.trace_count() << " traces ("
            << channels.size() << " channels) -> " << path << " (v"
            << writer.format_version() << ", channel columns "
            << writer.channel_raw_bytes() << " -> "
            << writer.channel_stored_bytes() << " bytes)\n";

  // --- Analysis phase (possibly days later, on another machine): stream
  // the store back through the same analysis path, out-of-core.
  store::FileTraceSource replay(path);
  std::cout << "replaying " << *replay.remaining() << " traces ("
            << (replay.reader().mapped() ? "mmap" : "stream") << " reader, "
            << (replay.prefetch_enabled() ? "prefetch on" : "prefetch off")
            << ")\n\n";
  util::Xoshiro256 unused_rng(0);  // replay returns its recorded plaintexts
  const core::CpaEngine engine = core::accumulate_cpa(
      replay, util::FourCc("PHPC"), models, /*count=*/0, unused_rng);

  const auto round_keys = aes::Aes128::expand_key(victim_key);
  const auto from_file = engine.analyze(models[0], round_keys);
  const auto live = live_cpa.engine(0).analyze(models[0], round_keys);

  std::cout << "CPA from file: GE " << from_file.ge_bits << " bits (random "
            << core::random_guess_ge_bits() << "), "
            << from_file.recovered_bytes << "/16 bytes at rank 1\n"
            << "bit-identical to live pass: "
            << (from_file.ge_bits == live.ge_bits &&
                        from_file.true_ranks == live.true_ranks &&
                        from_file.best_round_key == live.best_round_key
                    ? "yes"
                    : "NO")
            << "\nbest guess : " << util::to_hex(from_file.best_round_key)
            << "\nvictim key : " << util::to_hex(victim_key) << "\n";
  return 0;
}
