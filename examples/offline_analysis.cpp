// offline_analysis: capture once, analyze later. Collects a trace set
// through the pluggable acquisition layer (core::LiveTraceSource),
// persists it as CSV (the format a real logging attacker would keep),
// reloads it, and replays CPA from the file through the *same* analysis
// path via core::ReplayTraceSource — the two ModelResults are
// bit-identical, demonstrating that analysis is fully decoupled from
// collection.
//
//   ./offline_analysis [traces] [path]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>

#include "core/guessing_entropy.h"
#include "core/trace_source.h"
#include "util/hex.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::size_t traces =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::string path = argc > 2 ? argv[2] : "/tmp/psc_traces.csv";

  // --- Collection phase (the attacker's logger).
  util::Xoshiro256 rng(2025);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  core::LiveTraceSource source(
      {.profile = soc::DeviceProfile::macbook_air_m2(),
       .victim = victim::VictimModel::user_space()},
      victim_key, 1);

  const core::TraceSet set = core::capture_trace_set(source, traces, rng);
  {
    std::ofstream out(path);
    set.save_csv(out);
  }
  std::cout << "captured " << set.size() << " traces ("
            << set.keys().size() << " channels) -> " << path << "\n";

  // --- Analysis phase (possibly days later, on another machine).
  std::ifstream in(path);
  auto loaded = std::make_shared<core::TraceSet>(core::TraceSet::load_csv(in));
  std::cout << "reloaded " << loaded->size() << " traces\n\n";

  core::ReplayTraceSource replay(loaded);
  util::Xoshiro256 unused_rng(0);  // replay returns its recorded plaintexts
  const core::CpaEngine engine = core::accumulate_cpa(
      replay, util::FourCc("PHPC"), {power::PowerModel::rd0_hw},
      /*count=*/0, unused_rng);
  const auto result = engine.analyze(power::PowerModel::rd0_hw,
                                     aes::Aes128::expand_key(victim_key));

  std::cout << "CPA from file: GE " << result.ge_bits << " bits (random "
            << core::random_guess_ge_bits() << "), "
            << result.recovered_bytes << "/16 bytes at rank 1\n"
            << "best guess : " << util::to_hex(result.best_round_key)
            << "\nvictim key : " << util::to_hex(victim_key) << "\n";
  return 0;
}
