// offline_analysis: capture once, analyze later. Collects a trace set
// through the attack pipeline, persists it as CSV (the format a real
// logging attacker would keep), reloads it, and replays CPA and TVLA from
// the file — demonstrating that analysis is decoupled from collection.
//
//   ./offline_analysis [traces] [path]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/cpa.h"
#include "core/guessing_entropy.h"
#include "core/trace.h"
#include "util/hex.h"
#include "victim/fast_trace.h"

int main(int argc, char** argv) {
  using namespace psc;

  const std::size_t traces =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const std::string path = argc > 2 ? argv[2] : "/tmp/psc_traces.csv";

  // --- Collection phase (the attacker's logger).
  util::Xoshiro256 rng(2025);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  victim::FastTraceSource source(soc::DeviceProfile::macbook_air_m2(),
                                 victim_key,
                                 victim::VictimModel::user_space(), 1);

  core::TraceSet set(source.keys());
  for (std::size_t i = 0; i < traces; ++i) {
    aes::Block pt;
    rng.fill_bytes(pt);
    const auto sample = source.collect(pt);
    set.add({sample.plaintext, sample.ciphertext, sample.smc_values});
  }
  {
    std::ofstream out(path);
    set.save_csv(out);
  }
  std::cout << "captured " << set.size() << " traces ("
            << set.keys().size() << " channels) -> " << path << "\n";

  // --- Analysis phase (possibly days later, on another machine).
  std::ifstream in(path);
  const core::TraceSet loaded = core::TraceSet::load_csv(in);
  std::cout << "reloaded " << loaded.size() << " traces\n\n";

  const auto phpc = loaded.key_index(util::FourCc("PHPC"));
  if (!phpc) {
    std::cerr << "no PHPC column in capture\n";
    return 1;
  }

  core::CpaEngine engine({power::PowerModel::rd0_hw});
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    engine.add_trace(loaded[i].plaintext, loaded[i].ciphertext,
                     loaded[i].values[*phpc]);
  }
  const auto result = engine.analyze(power::PowerModel::rd0_hw,
                                     aes::Aes128::expand_key(victim_key));

  std::cout << "CPA from file: GE " << result.ge_bits << " bits (random "
            << core::random_guess_ge_bits() << "), "
            << result.recovered_bytes << "/16 bytes at rank 1\n"
            << "best guess : " << util::to_hex(result.best_round_key)
            << "\nvictim key : " << util::to_hex(victim_key) << "\n";
  return 0;
}
