#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "soc/chip.h"
#include "soc/workload.h"

namespace psc::sched {
namespace {

std::unique_ptr<soc::Chip> make_chip() {
  return std::make_unique<soc::Chip>(soc::DeviceProfile::macbook_air_m2(), 9);
}

ThreadAttributes realtime_attrs() {
  return {.policy = SchedPolicy::round_robin,
          .priority = 47,
          .cluster_hint = std::nullopt};
}

TEST(Scheduler, SpawnAndLookup) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  const ThreadId id = sched.spawn("w", std::make_unique<soc::FmulStressor>());
  EXPECT_EQ(sched.thread_count(), 1u);
  EXPECT_EQ(sched.thread(id).name(), "w");
  EXPECT_THROW(sched.thread(999), std::out_of_range);
}

TEST(Scheduler, KillRemovesThread) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  const ThreadId id = sched.spawn("w", std::make_unique<soc::FmulStressor>());
  sched.step();
  sched.kill(id);
  EXPECT_EQ(sched.thread_count(), 0u);
  EXPECT_THROW(sched.kill(id), std::out_of_range);
  // No core may still reference the destroyed workload.
  for (std::size_t c = 0; c < chip->core_count(); ++c) {
    EXPECT_TRUE(chip->core(c).is_idle());
  }
}

TEST(Scheduler, RejectsNonPositiveQuantum) {
  auto chip = make_chip();
  EXPECT_THROW(Scheduler(*chip, 0.0), std::invalid_argument);
}

TEST(Scheduler, RealtimeThreadsGetPCores) {
  // The paper's placement recipe: SCHED_RR + top priority lands on P-cores
  // even when default threads compete.
  auto chip = make_chip();
  Scheduler sched(*chip);
  std::vector<ThreadId> aes_ids;
  for (int i = 0; i < 4; ++i) {
    aes_ids.push_back(sched.spawn("aes" + std::to_string(i),
                                  std::make_unique<soc::FmulStressor>(),
                                  realtime_attrs()));
  }
  std::vector<ThreadId> stress_ids;
  for (int i = 0; i < 4; ++i) {
    stress_ids.push_back(sched.spawn("stress" + std::to_string(i),
                                     std::make_unique<soc::FmulStressor>()));
  }
  sched.step();
  for (const ThreadId id : aes_ids) {
    const auto core = sched.thread(id).last_core();
    ASSERT_TRUE(core.has_value());
    EXPECT_LT(*core, chip->p_core_count()) << "realtime thread on E-core";
  }
  for (const ThreadId id : stress_ids) {
    const auto core = sched.thread(id).last_core();
    ASSERT_TRUE(core.has_value());
    EXPECT_GE(*core, chip->p_core_count()) << "default thread on P-core";
  }
}

TEST(Scheduler, EfficiencyHintRespected) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  const ThreadId id = sched.spawn(
      "bg", std::make_unique<soc::FmulStressor>(),
      {.policy = SchedPolicy::other,
       .priority = 31,
       .cluster_hint = soc::CoreType::efficiency});
  sched.step();
  const auto core = sched.thread(id).last_core();
  ASSERT_TRUE(core.has_value());
  EXPECT_GE(*core, chip->p_core_count());
}

TEST(Scheduler, SingleDefaultThreadPrefersPCore) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  const ThreadId id =
      sched.spawn("fg", std::make_unique<soc::FmulStressor>());
  sched.step();
  const auto core = sched.thread(id).last_core();
  ASSERT_TRUE(core.has_value());
  EXPECT_LT(*core, chip->p_core_count());
}

TEST(Scheduler, TimeSlicesExcessThreads) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  std::vector<ThreadId> ids;
  for (int i = 0; i < 16; ++i) {  // 16 threads on 8 cores
    ids.push_back(sched.spawn(std::string("t") + std::to_string(i),
                              std::make_unique<soc::FmulStressor>()));
  }
  sched.run_for(0.1);
  for (const ThreadId id : ids) {
    // Each equal-weight thread should get about half the CPU.
    EXPECT_NEAR(sched.thread(id).cpu_time_s(), 0.05, 0.01)
        << sched.thread(id).name();
  }
}

TEST(Scheduler, CpuTimeFullyAccountedWhenUnderloaded) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  const ThreadId id =
      sched.spawn("only", std::make_unique<soc::FmulStressor>());
  sched.run_for(0.05);
  EXPECT_NEAR(sched.thread(id).cpu_time_s(), 0.05, 1e-9);
}

TEST(Scheduler, HigherPriorityWinsContention) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  // 8 high-priority + 8 low-priority threads on 8 cores: high gets all.
  std::vector<ThreadId> high;
  std::vector<ThreadId> low;
  for (int i = 0; i < 8; ++i) {
    high.push_back(sched.spawn("hi" + std::to_string(i),
                               std::make_unique<soc::FmulStressor>(),
                               realtime_attrs()));
    low.push_back(sched.spawn("lo" + std::to_string(i),
                              std::make_unique<soc::FmulStressor>()));
  }
  sched.run_for(0.05);
  for (const ThreadId id : high) {
    EXPECT_NEAR(sched.thread(id).cpu_time_s(), 0.05, 1e-9);
  }
  for (const ThreadId id : low) {
    EXPECT_DOUBLE_EQ(sched.thread(id).cpu_time_s(), 0.0);
  }
}

TEST(Scheduler, RunForAdvancesChipTime) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  sched.run_for(0.25);
  EXPECT_NEAR(chip->time_s(), 0.25, 1e-9);
}

TEST(Scheduler, AesThreadsMakeProgress) {
  auto chip = make_chip();
  Scheduler sched(*chip);
  const auto& profile = chip->profile();
  util::Xoshiro256 rng(3);
  aes::Block key;
  rng.fill_bytes(key);
  const ThreadId id = sched.spawn(
      "aes",
      std::make_unique<soc::AesWorkload>(key, profile.leakage,
                                         profile.aes_cycles_per_block),
      realtime_attrs());
  sched.run_for(0.1);
  const auto& w =
      dynamic_cast<const soc::AesWorkload&>(sched.thread(id).workload());
  // 0.1 s at 3.504 GHz / 80 cycles per block.
  const double expected = 0.1 * 3.504e9 / 80.0;
  EXPECT_NEAR(static_cast<double>(w.blocks_encrypted()), expected,
              0.01 * expected);
}

}  // namespace
}  // namespace psc::sched
