#include "power/leakage_model.h"

#include <gtest/gtest.h>

#include "aes/aes128.h"
#include "util/rng.h"
#include "util/stats.h"

namespace psc::power {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

TEST(LeakageConfig, DefaultProfileShape) {
  const LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  EXPECT_DOUBLE_EQ(cfg.ark_hw_weight[0], 1.0);
  EXPECT_DOUBLE_EQ(cfg.ark_hw_weight[9], 0.5);
  EXPECT_GT(cfg.ark_hw_weight[0], cfg.ark_hw_weight[9]);
  for (std::size_t r = 1; r <= aes::num_rounds; ++r) {
    if (r != 9) {
      EXPECT_LT(cfg.ark_hw_weight[r], cfg.ark_hw_weight[9]) << "round " << r;
    }
  }
  EXPECT_DOUBLE_EQ(cfg.last_round_hd_weight, 0.0);
  EXPECT_GT(cfg.leak_joules_per_bit, 0.0);
  EXPECT_GT(cfg.bus_joules_per_bit, 0.0);
}

TEST(LeakageConfig, ZeroConfigGivesZeroEnergy) {
  const LeakageConfig cfg{};  // all weights zero
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(1);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);
  aes::RoundTrace trace;
  const aes::Block pt = random_block(rng);
  cipher.encrypt_trace(pt, trace);
  EXPECT_DOUBLE_EQ(eval.encryption_energy(pt, trace), 0.0);
  EXPECT_DOUBLE_EQ(cfg.expected_energy(), 0.0);
}

TEST(LeakageEvaluator, DeterministicPerPlaintext) {
  const LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(2);
  aes::Aes128 cipher(random_block(rng));
  const aes::Block pt = random_block(rng);
  aes::RoundTrace t1;
  aes::RoundTrace t2;
  cipher.encrypt_trace(pt, t1);
  cipher.encrypt_trace(pt, t2);
  EXPECT_DOUBLE_EQ(eval.encryption_energy(pt, t1),
                   eval.encryption_energy(pt, t2));
}

TEST(LeakageEvaluator, ExpectedEnergyMatchesEmpiricalMean) {
  const LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(3);
  aes::Aes128 cipher(random_block(rng));
  util::RunningStats stats;
  aes::RoundTrace trace;
  for (int i = 0; i < 20000; ++i) {
    const aes::Block pt = random_block(rng);
    cipher.encrypt_trace(pt, trace);
    stats.add(eval.encryption_energy(pt, trace));
  }
  EXPECT_NEAR(stats.mean(), cfg.expected_energy(),
              0.01 * cfg.expected_energy());
}

TEST(LeakageEvaluator, DeviationIsZeroMeanOverRandomData) {
  const LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(4);
  aes::Aes128 cipher(random_block(rng));
  util::RunningStats stats;
  aes::RoundTrace trace;
  for (int i = 0; i < 20000; ++i) {
    const aes::Block pt = random_block(rng);
    cipher.encrypt_trace(pt, trace);
    stats.add(eval.energy_deviation(pt, trace));
  }
  // Mean within a small fraction of one standard deviation of zero.
  EXPECT_LT(std::abs(stats.mean()), 0.05 * stats.stddev());
}

TEST(LeakageEvaluator, EnergyScalesLinearlyWithScale) {
  LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  util::Xoshiro256 rng(5);
  aes::Aes128 cipher(random_block(rng));
  const aes::Block pt = random_block(rng);
  aes::RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  const double base = LeakageEvaluator(cfg).encryption_energy(pt, trace);
  cfg.leak_joules_per_bit *= 3.0;
  EXPECT_NEAR(LeakageEvaluator(cfg).encryption_energy(pt, trace), 3.0 * base,
              1e-25);
}

TEST(LeakageEvaluator, BoundedByMaxEnergy) {
  const LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(6);
  aes::Aes128 cipher(random_block(rng));
  aes::RoundTrace trace;
  for (int i = 0; i < 1000; ++i) {
    const aes::Block pt = random_block(rng);
    cipher.encrypt_trace(pt, trace);
    const double e = eval.encryption_energy(pt, trace);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, cfg.max_energy());
  }
}

TEST(LeakageEvaluator, BusEnergyFormula) {
  LeakageConfig cfg{};
  cfg.bus_joules_per_bit = 2.0;
  LeakageEvaluator eval(cfg);
  aes::Block zeros{};
  aes::Block ones;
  ones.fill(0xff);
  EXPECT_DOUBLE_EQ(eval.bus_energy(zeros, zeros), 0.0);
  EXPECT_DOUBLE_EQ(eval.bus_energy(ones, zeros), 2.0 * 128.0);
  EXPECT_DOUBLE_EQ(eval.bus_energy(ones, ones), 2.0 * 256.0);
  // Deviation centred on 128 expected bits.
  EXPECT_DOUBLE_EQ(eval.bus_energy_deviation(zeros, zeros), -2.0 * 128.0);
  EXPECT_DOUBLE_EQ(eval.bus_energy_deviation(ones, ones), 2.0 * 128.0);
}

TEST(LeakageEvaluator, Round0StateDrivesEnergy) {
  // With only the round-0 weight set, energy is exactly
  // scale * HW(pt ^ key).
  LeakageConfig cfg{};
  cfg.ark_hw_weight[0] = 1.0;
  cfg.leak_joules_per_bit = 1.0;
  LeakageEvaluator eval(cfg);
  const aes::Block key{};  // zero key: post-ARK0 state == plaintext
  aes::Aes128 cipher(key);
  aes::RoundTrace trace;
  aes::Block pt{};
  pt[0] = 0xff;
  pt[5] = 0x0f;
  cipher.encrypt_trace(pt, trace);
  EXPECT_DOUBLE_EQ(eval.encryption_energy(pt, trace), 12.0);
}

TEST(LeakageEvaluator, HdTermCountsLastRoundTransition) {
  LeakageConfig cfg{};
  cfg.last_round_hd_weight = 1.0;
  cfg.leak_joules_per_bit = 1.0;
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(7);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);
  const aes::Block pt = random_block(rng);
  aes::RoundTrace trace;
  cipher.encrypt_trace(pt, trace);
  const double expected = aes::hamming_distance(
      trace.post_add_round_key[9], trace.post_add_round_key[10]);
  EXPECT_DOUBLE_EQ(eval.encryption_energy(pt, trace), expected);
}

// Property sweep: plaintext classes used by TVLA have distinct energies.
class LeakageClassSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeakageClassSweep, FixedClassesDiffer) {
  const LeakageConfig cfg = LeakageConfig::apple_silicon_default();
  LeakageEvaluator eval(cfg);
  util::Xoshiro256 rng(GetParam());
  aes::Aes128 cipher(random_block(rng));
  aes::Block zeros{};
  aes::Block ones;
  ones.fill(0xff);
  aes::RoundTrace t0;
  aes::RoundTrace t1;
  cipher.encrypt_trace(zeros, t0);
  cipher.encrypt_trace(ones, t1);
  const double e0 = eval.encryption_energy(zeros, t0) +
                    eval.bus_energy(zeros, cipher.encrypt(zeros));
  const double e1 = eval.encryption_energy(ones, t1) +
                    eval.bus_energy(ones, cipher.encrypt(ones));
  EXPECT_NE(e0, e1);
}

INSTANTIATE_TEST_SUITE_P(Keys, LeakageClassSweep,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace psc::power
