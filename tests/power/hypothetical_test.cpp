#include "power/hypothetical.h"

#include <gtest/gtest.h>

#include <vector>

#include "aes/sbox.h"
#include "util/rng.h"
#include "util/stats.h"

namespace psc::power {
namespace {

TEST(PowerModels, Names) {
  EXPECT_EQ(power_model_name(PowerModel::rd0_hw), "Rd0-HW");
  EXPECT_EQ(power_model_name(PowerModel::rd10_hw), "Rd10-HW");
  EXPECT_EQ(power_model_name(PowerModel::rd10_hd), "Rd10-HD");
  EXPECT_EQ(power_model_name(PowerModel::rd1_sbox_hw), "Rd1-SBox-HW");
}

TEST(PowerModels, RecoveredRound) {
  EXPECT_EQ(recovered_round(PowerModel::rd0_hw), 0);
  EXPECT_EQ(recovered_round(PowerModel::rd10_hw), 10);
  EXPECT_EQ(recovered_round(PowerModel::rd10_hd), 10);
  EXPECT_EQ(recovered_round(PowerModel::rd1_sbox_hw), 0);
}

TEST(PowerModels, Rd1SboxUsesForwardSbox) {
  for (int pt = 0; pt < 256; pt += 19) {
    for (int g = 0; g < 256; g += 29) {
      const auto p = static_cast<std::uint8_t>(pt);
      const auto guess = static_cast<std::uint8_t>(g);
      EXPECT_EQ(predict_rd1_sbox_hw(p, guess),
                aes::hamming_weight(
                    aes::sbox[static_cast<std::uint8_t>(p ^ guess)]));
    }
  }
}

TEST(PowerModels, InputMetadata) {
  EXPECT_TRUE(power_model_inputs(PowerModel::rd0_hw).uses_plaintext);
  EXPECT_FALSE(power_model_inputs(PowerModel::rd0_hw).uses_ciphertext_pair);
  EXPECT_FALSE(power_model_inputs(PowerModel::rd10_hw).uses_plaintext);
  EXPECT_FALSE(power_model_inputs(PowerModel::rd10_hw).uses_ciphertext_pair);
  EXPECT_TRUE(power_model_inputs(PowerModel::rd10_hd).uses_ciphertext_pair);
}

TEST(PowerModels, Rd0HwKnownValues) {
  EXPECT_EQ(predict_rd0_hw(0x00, 0x00), 0);
  EXPECT_EQ(predict_rd0_hw(0xff, 0x00), 8);
  EXPECT_EQ(predict_rd0_hw(0xf0, 0x0f), 8);
  EXPECT_EQ(predict_rd0_hw(0xaa, 0xaa), 0);
  EXPECT_EQ(predict_rd0_hw(0x01, 0x03), 1);
}

TEST(PowerModels, Rd10HwUsesInverseSbox) {
  for (int ct = 0; ct < 256; ct += 17) {
    for (int g = 0; g < 256; g += 23) {
      const auto c = static_cast<std::uint8_t>(ct);
      const auto guess = static_cast<std::uint8_t>(g);
      const std::uint8_t state =
          aes::inv_sbox[static_cast<std::uint8_t>(c ^ guess)];
      EXPECT_EQ(predict_rd10_hw(c, guess), aes::hamming_weight(state));
    }
  }
}

TEST(PowerModels, Rd10HdKnownStructure) {
  // HD between the recovered last-round input byte and the ciphertext byte
  // that overwrites it.
  const std::uint8_t ct_byte = 0x3a;
  const std::uint8_t ct_shifted = 0x5c;
  const std::uint8_t g = 0x77;
  const std::uint8_t input =
      aes::inv_sbox[static_cast<std::uint8_t>(ct_byte ^ g)];
  EXPECT_EQ(predict_rd10_hd(ct_byte, ct_shifted, g),
            aes::hamming_weight(static_cast<std::uint8_t>(input ^ ct_shifted)));
}

TEST(PowerModels, PredictDispatchesConsistently) {
  util::Xoshiro256 rng(40);
  aes::Block pt;
  aes::Block ct;
  rng.fill_bytes(pt);
  rng.fill_bytes(ct);
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint8_t g = static_cast<std::uint8_t>(rng.uniform_u64(256));
    EXPECT_EQ(predict(PowerModel::rd0_hw, pt, ct, i, g),
              predict_rd0_hw(pt[i], g));
    EXPECT_EQ(predict(PowerModel::rd10_hw, pt, ct, i, g),
              predict_rd10_hw(ct[i], g));
    EXPECT_EQ(predict(PowerModel::rd10_hd, pt, ct, i, g),
              predict_rd10_hd(ct[i], ct[aes::shift_rows_source(i)], g));
    EXPECT_EQ(predict(PowerModel::rd1_sbox_hw, pt, ct, i, g),
              predict_rd1_sbox_hw(pt[i], g));
  }
}

TEST(PowerModels, TrueKeyByte) {
  util::Xoshiro256 rng(41);
  aes::Block key;
  rng.fill_bytes(key);
  const auto round_keys = aes::Aes128::expand_key(key);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(true_key_byte(PowerModel::rd0_hw, round_keys, i), key[i]);
    EXPECT_EQ(true_key_byte(PowerModel::rd10_hw, round_keys, i),
              round_keys[10][i]);
    EXPECT_EQ(true_key_byte(PowerModel::rd10_hd, round_keys, i),
              round_keys[10][i]);
  }
}

// Alignment property: when the chip leaks exactly the intermediate a model
// targets, the true key guess must out-correlate every competitor. This is
// the contract between chip-side leakage and attacker-side models that the
// whole CPA pipeline rests on.
class ModelAlignment : public ::testing::TestWithParam<PowerModel> {};

TEST_P(ModelAlignment, TrueGuessWinsOnNoiselessLeakage) {
  const PowerModel model = GetParam();
  util::Xoshiro256 rng(42);
  aes::Block key;
  rng.fill_bytes(key);
  aes::Aes128 cipher(key);
  const auto& round_keys = cipher.round_keys();

  constexpr std::size_t n_traces = 4000;
  constexpr std::size_t byte_index = 5;

  std::vector<double> leak(n_traces);
  std::vector<aes::Block> pts(n_traces);
  std::vector<aes::Block> cts(n_traces);
  aes::RoundTrace trace;
  for (std::size_t t = 0; t < n_traces; ++t) {
    rng.fill_bytes(pts[t]);
    cts[t] = cipher.encrypt_trace(pts[t], trace);
    // Leak the exact intermediate the model hypothesizes, whole state.
    double value = 0.0;
    switch (model) {
      case PowerModel::rd0_hw:
        value = aes::hamming_weight(trace.post_add_round_key[0]);
        break;
      case PowerModel::rd10_hw:
        value = aes::hamming_weight(trace.post_add_round_key[9]);
        break;
      case PowerModel::rd10_hd:
        value = aes::hamming_distance(trace.post_add_round_key[9],
                                      trace.post_add_round_key[10]);
        break;
      case PowerModel::rd1_sbox_hw:
        value = aes::hamming_weight(trace.post_sub_bytes[0]);
        break;
    }
    leak[t] = value;
  }

  const std::uint8_t truth = true_key_byte(model, round_keys, byte_index);
  double best_corr = -2.0;
  std::uint8_t best_guess = 0;
  for (int g = 0; g < 256; ++g) {
    util::OnlineCorrelation acc;
    for (std::size_t t = 0; t < n_traces; ++t) {
      acc.add(static_cast<double>(predict(model, pts[t], cts[t], byte_index,
                                          static_cast<std::uint8_t>(g))),
              leak[t]);
    }
    if (acc.correlation() > best_corr) {
      best_corr = acc.correlation();
      best_guess = static_cast<std::uint8_t>(g);
    }
  }
  EXPECT_EQ(best_guess, truth) << "model " << power_model_name(model);
  EXPECT_GT(best_corr, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelAlignment,
                         ::testing::ValuesIn(all_power_models));

}  // namespace
}  // namespace psc::power
