#include "power/noise.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace psc::power {
namespace {

TEST(GaussianNoise, ZeroSigmaIsIdentity) {
  GaussianNoise noise(0.0);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(noise.apply(3.25, rng), 3.25);
  }
}

TEST(GaussianNoise, SampleMoments) {
  GaussianNoise noise(2.5);
  util::Xoshiro256 rng(2);
  util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(noise.sample(rng));
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.5, 0.05);
}

TEST(GaussianNoise, ApplyShiftsValue) {
  GaussianNoise noise(1.0);
  util::Xoshiro256 rng(3);
  util::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(noise.apply(10.0, rng));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
}

TEST(Quantizer, RoundsToStep) {
  Quantizer q(0.5);
  EXPECT_DOUBLE_EQ(q.apply(0.74), 0.5);
  EXPECT_DOUBLE_EQ(q.apply(0.76), 1.0);
  EXPECT_DOUBLE_EQ(q.apply(-0.74), -0.5);
  EXPECT_DOUBLE_EQ(q.apply(-0.76), -1.0);
  EXPECT_DOUBLE_EQ(q.apply(0.0), 0.0);
}

TEST(Quantizer, ZeroStepIsIdentity) {
  Quantizer q(0.0);
  EXPECT_DOUBLE_EQ(q.apply(0.123456789), 0.123456789);
}

TEST(Quantizer, Idempotent) {
  Quantizer q(1e-6);
  const double once = q.apply(3.14159265358979);
  EXPECT_DOUBLE_EQ(q.apply(once), once);
}

TEST(Quantizer, MicrowattResolution) {
  Quantizer q(1e-6);
  EXPECT_NEAR(q.apply(2.0000014), 2.000001, 1e-12);
  EXPECT_NEAR(q.apply(2.0000016), 2.000002, 1e-12);
}

TEST(Quantizer, ErrorBoundedByHalfStep) {
  Quantizer q(0.25);
  for (double x = -3.0; x < 3.0; x += 0.0137) {
    EXPECT_LE(std::abs(q.apply(x) - x), 0.125 + 1e-12);
  }
}

}  // namespace
}  // namespace psc::power
