#include "core/tvla.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

namespace psc::core {
namespace {

TEST(PlaintextClasses, Names) {
  EXPECT_EQ(plaintext_class_name(PlaintextClass::all_zeros), "All 0s");
  EXPECT_EQ(plaintext_class_name(PlaintextClass::all_ones), "All 1s");
  EXPECT_EQ(plaintext_class_name(PlaintextClass::random_pt), "Random");
}

TEST(PlaintextClasses, FixedClassesAreFixed) {
  util::Xoshiro256 rng(1);
  const aes::Block zeros = class_plaintext(PlaintextClass::all_zeros, rng);
  const aes::Block ones = class_plaintext(PlaintextClass::all_ones, rng);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(zeros[i], 0x00);
    EXPECT_EQ(ones[i], 0xff);
  }
}

TEST(PlaintextClasses, RandomClassVaries) {
  util::Xoshiro256 rng(2);
  const aes::Block a = class_plaintext(PlaintextClass::random_pt, rng);
  const aes::Block b = class_plaintext(PlaintextClass::random_pt, rng);
  EXPECT_NE(a, b);
}

TEST(TvlaAccumulator, CountsPerSet) {
  TvlaAccumulator acc;
  acc.add(PlaintextClass::all_zeros, false, 1.0);
  acc.add(PlaintextClass::all_zeros, false, 2.0);
  acc.add(PlaintextClass::all_zeros, true, 3.0);
  EXPECT_EQ(acc.count(PlaintextClass::all_zeros, false), 2u);
  EXPECT_EQ(acc.count(PlaintextClass::all_zeros, true), 1u);
  EXPECT_EQ(acc.count(PlaintextClass::all_ones, false), 0u);
}

// The accumulator keeps raw striped moment sums (util/simd.h) rather than
// Welford state, so it agrees with a direct Welford-based Welch test to
// rounding, not bit-for-bit.
TEST(TvlaAccumulator, MatrixMatchesDirectWelch) {
  util::Xoshiro256 rng(3);
  TvlaAccumulator acc;
  util::RunningStats zeros_primed;
  util::RunningStats ones_unprimed;
  for (int i = 0; i < 2000; ++i) {
    const double a = rng.gaussian(0.0, 1.0);
    const double b = rng.gaussian(0.4, 1.0);
    acc.add(PlaintextClass::all_zeros, true, a);
    zeros_primed.add(a);
    acc.add(PlaintextClass::all_ones, false, b);
    ones_unprimed.add(b);
  }
  const TvlaMatrix m = acc.matrix();
  EXPECT_NEAR(m.score(PlaintextClass::all_zeros, PlaintextClass::all_ones),
              util::welch_t_test(zeros_primed, ones_unprimed).t, 1e-9);
}

// Satellite: TVLA t-values from every supported SIMD backend match the
// scalar fallback bit-for-bit on the same value stream.
TEST(TvlaAccumulator, AllSimdBackendsMatchScalarBitForBit) {
  namespace simd = util::simd;
  util::Xoshiro256 rng(17);
  std::vector<double> stream(4096);
  for (double& v : stream) {
    v = rng.gaussian(0.2, 1.5);
  }
  const auto feed = [&stream] {
    TvlaAccumulator acc;
    std::size_t i = 0;
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (const bool primed : {false, true}) {
        // Uneven batch sizes to exercise the kernels' head/body/tail.
        acc.add_batch(cls, primed, std::span(stream).subspan(i, 300));
        i += 300;
        acc.add_batch(cls, primed, std::span(stream).subspan(i, 7));
        i += 7;
      }
    }
    return acc;
  };
  simd::force_backend(simd::Backend::scalar);
  const TvlaMatrix reference = feed().matrix();
  for (const simd::Backend backend : simd::supported_backends()) {
    simd::force_backend(backend);
    const TvlaMatrix m = feed().matrix();
    for (const PlaintextClass row : all_plaintext_classes) {
      for (const PlaintextClass col : all_plaintext_classes) {
        ASSERT_EQ(m.score(row, col), reference.score(row, col))
            << simd::backend_name(backend);
      }
    }
  }
  simd::reset_backend();
}

// Sharded-pipeline property: one accumulator fed N values per set must
// match K shard accumulators fed N/K values each and merged.
TEST(TvlaAccumulator, ShardsMergeToMonolithicTStatistic) {
  util::Xoshiro256 rng(4);
  constexpr int n = 3000;
  constexpr std::size_t n_shards = 3;
  TvlaAccumulator monolithic;
  std::array<TvlaAccumulator, n_shards> shards;
  for (int i = 0; i < n; ++i) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (const bool primed : {false, true}) {
        const double mean =
            cls == PlaintextClass::all_ones ? 0.3 : 0.0;
        const double x = rng.gaussian(mean, 1.0);
        monolithic.add(cls, primed, x);
        shards[static_cast<std::size_t>(i) % n_shards].add(cls, primed, x);
      }
    }
  }
  TvlaAccumulator merged;
  for (const auto& shard : shards) {
    merged.merge(shard);
  }
  const TvlaMatrix mono = monolithic.matrix();
  const TvlaMatrix combined = merged.matrix();
  for (const PlaintextClass row : all_plaintext_classes) {
    for (const PlaintextClass col : all_plaintext_classes) {
      EXPECT_EQ(merged.count(row, true), monolithic.count(row, true));
      ASSERT_NEAR(combined.score(row, col), mono.score(row, col), 1e-12)
          << plaintext_class_name(row) << " vs "
          << plaintext_class_name(col);
    }
  }
}

TEST(TvlaAccumulator, BatchFeedEqualsLoopFeed) {
  util::Xoshiro256 rng(5);
  std::vector<double> values(500);
  for (double& v : values) {
    v = rng.gaussian(1.0, 2.0);
  }
  TvlaAccumulator looped;
  for (const double v : values) {
    looped.add(PlaintextClass::random_pt, true, v);
  }
  TvlaAccumulator batched;
  batched.add_batch(PlaintextClass::random_pt, true, values);
  EXPECT_EQ(batched.count(PlaintextClass::random_pt, true),
            looped.count(PlaintextClass::random_pt, true));
  // Same per-set moments, so any cross-set score agrees exactly; compare
  // against a common opposing set.
  for (int i = 0; i < 500; ++i) {
    const double v = rng.gaussian(0.0, 1.0);
    looped.add(PlaintextClass::all_zeros, false, v);
    batched.add(PlaintextClass::all_zeros, false, v);
  }
  EXPECT_DOUBLE_EQ(
      looped.matrix().score(PlaintextClass::random_pt,
                            PlaintextClass::all_zeros),
      batched.matrix().score(PlaintextClass::random_pt,
                             PlaintextClass::all_zeros));
}

TEST(TvlaMatrix, ClassificationKinds) {
  TvlaMatrix m;
  // Same class, small t: TN. Same class, big t: FP.
  m.t[0][0] = 1.0;
  m.t[1][1] = 9.0;
  // Cross class, big t: TP. Cross class, small t: FN.
  m.t[0][1] = -12.0;
  m.t[0][2] = 0.3;
  EXPECT_EQ(m.classify(PlaintextClass::all_zeros, PlaintextClass::all_zeros),
            TvlaCell::true_negative);
  EXPECT_EQ(m.classify(PlaintextClass::all_ones, PlaintextClass::all_ones),
            TvlaCell::false_positive);
  EXPECT_EQ(m.classify(PlaintextClass::all_zeros, PlaintextClass::all_ones),
            TvlaCell::true_positive);
  EXPECT_EQ(m.classify(PlaintextClass::all_zeros, PlaintextClass::random_pt),
            TvlaCell::false_negative);
}

TEST(TvlaMatrix, ThresholdIsInclusive) {
  TvlaMatrix m;
  m.t[0][1] = util::tvla_threshold;
  EXPECT_EQ(m.classify(PlaintextClass::all_zeros, PlaintextClass::all_ones),
            TvlaCell::true_positive);
  m.t[0][1] = util::tvla_threshold - 1e-9;
  EXPECT_EQ(m.classify(PlaintextClass::all_zeros, PlaintextClass::all_ones),
            TvlaCell::false_negative);
}

TEST(TvlaMatrix, NegativeScoresCount) {
  TvlaMatrix m;
  m.t[2][0] = -20.0;
  EXPECT_EQ(m.classify(PlaintextClass::random_pt, PlaintextClass::all_zeros),
            TvlaCell::true_positive);
}

TEST(TvlaMatrix, CountsSumToNine) {
  TvlaMatrix m;
  m.t[0][1] = 10.0;
  m.t[1][1] = 6.0;
  const auto c = m.counts();
  EXPECT_EQ(c.true_positive + c.true_negative + c.false_positive +
                c.false_negative,
            9);
  EXPECT_EQ(c.true_positive, 1);
  EXPECT_EQ(c.false_positive, 1);
  EXPECT_EQ(c.true_negative, 2);
  EXPECT_EQ(c.false_negative, 5);
}

TEST(TvlaMatrix, PerfectDataDependence) {
  TvlaMatrix m;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      m.t[i][j] = i == j ? 0.5 : 15.0;
    }
  }
  EXPECT_TRUE(m.perfectly_data_dependent());
  EXPECT_FALSE(m.no_data_dependence());
  m.t[0][1] = 1.0;  // one FN breaks perfection
  EXPECT_FALSE(m.perfectly_data_dependent());
}

TEST(TvlaMatrix, NoDataDependence) {
  TvlaMatrix m;  // all zeros
  EXPECT_TRUE(m.no_data_dependence());
  m.t[1][0] = 30.0;
  EXPECT_FALSE(m.no_data_dependence());
}

TEST(TvlaCellNames, AllNamed) {
  EXPECT_EQ(tvla_cell_name(TvlaCell::true_positive), "TP");
  EXPECT_EQ(tvla_cell_name(TvlaCell::true_negative), "TN");
  EXPECT_EQ(tvla_cell_name(TvlaCell::false_positive), "FP");
  EXPECT_EQ(tvla_cell_name(TvlaCell::false_negative), "FN");
}

// Statistical property: leakage-free channels classify as all-negative,
// planted leakage as TP, across seeds.
class TvlaStatistical : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TvlaStatistical, DetectsPlantedLeakageOnly) {
  util::Xoshiro256 rng(GetParam());
  TvlaAccumulator leaky;
  TvlaAccumulator null;
  for (int i = 0; i < 4000; ++i) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (const bool primed : {false, true}) {
        const double base = rng.gaussian(0.0, 1.0);
        const double shift = cls == PlaintextClass::all_ones ? 0.3 : 0.0;
        leaky.add(cls, primed, base + shift);
        null.add(cls, primed, rng.gaussian(0.0, 1.0));
      }
    }
  }
  const TvlaMatrix leaky_m = leaky.matrix();
  EXPECT_EQ(leaky_m.classify(PlaintextClass::all_zeros,
                             PlaintextClass::all_ones),
            TvlaCell::true_positive);
  EXPECT_EQ(leaky_m.classify(PlaintextClass::all_zeros,
                             PlaintextClass::all_zeros),
            TvlaCell::true_negative);
  EXPECT_TRUE(null.matrix().no_data_dependence());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TvlaStatistical,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace psc::core
