// Section 5 of the paper proposes countermeasures; these tests verify the
// mitigation layer actually defeats the attack pipelines it is aimed at.
#include <gtest/gtest.h>

#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "victim/fast_trace.h"

namespace psc::core {
namespace {

TEST(MitigatedCampaigns, FilteringKillsTvlaLeakage) {
  TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 3000,
      .include_pcpu = false,
      .mitigation = smc::MitigationPolicy::rapl_style_filtering(),
      .seed = 71,
  };
  const auto result = run_tvla_campaign(config);
  for (const auto& channel : result.channels) {
    EXPECT_TRUE(channel.matrix.no_data_dependence()) << channel.channel;
  }
}

TEST(MitigatedCampaigns, FilteringKillsCpaRecovery) {
  CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 120000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .mitigation = smc::MitigationPolicy::rapl_style_filtering(),
      .seed = 72,
  };
  const auto result = run_cpa_campaign(config);
  EXPECT_GT(result.keys[0].final_results[0].ge_bits,
            random_guess_ge_bits() - 20.0);
  EXPECT_EQ(result.keys[0].final_results[0].recovered_bytes, 0);
}

TEST(MitigatedCampaigns, SlowerUpdatesRaiseAttackCost) {
  util::Xoshiro256 rng(73);
  aes::Block key;
  rng.fill_bytes(key);
  victim::FastTraceSource open_channel(
      soc::DeviceProfile::macbook_air_m2(), key,
      victim::VictimModel::user_space(), 74);
  victim::FastTraceSource filtered(
      soc::DeviceProfile::macbook_air_m2(), key,
      victim::VictimModel::user_space(), 74,
      smc::MitigationPolicy::rapl_style_filtering());
  EXPECT_DOUBLE_EQ(open_channel.window_s(), 1.0);
  EXPECT_DOUBLE_EQ(filtered.window_s(), 10.0);
  // One million traces: ~11.6 days unmitigated, ~116 days filtered.
  EXPECT_NEAR(1e6 * filtered.window_s() / 86400.0, 115.7, 0.2);
}

TEST(MitigatedCampaigns, UnmitigatedBaselineStillLeaks) {
  // Guard: the mitigation tests above must fail because of the policy,
  // not because the baseline broke.
  TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 3000,
      .include_pcpu = false,
      .mitigation = smc::MitigationPolicy::none(),
      .seed = 71,
  };
  const auto result = run_tvla_campaign(config);
  EXPECT_FALSE(result.find("PHPC")->matrix.no_data_dependence());
}

}  // namespace
}  // namespace psc::core
