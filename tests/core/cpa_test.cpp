#include "core/cpa.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"

namespace psc::core {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

TEST(CpaEngine, RejectsEmptyModelList) {
  EXPECT_THROW(CpaEngine({}), std::invalid_argument);
}

TEST(CpaEngine, RejectsUnconfiguredModel) {
  CpaEngine engine({power::PowerModel::rd0_hw});
  EXPECT_THROW(engine.analyze_byte(power::PowerModel::rd10_hw, 0),
               std::invalid_argument);
}

TEST(CpaEngine, TraceCountTracked) {
  CpaEngine engine({power::PowerModel::rd0_hw});
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 5; ++i) {
    engine.add_trace(random_block(rng), random_block(rng), 1.0);
  }
  EXPECT_EQ(engine.trace_count(), 5u);
}

TEST(ByteRanking, RankAndBestGuess) {
  ByteRanking ranking;
  for (int g = 0; g < 256; ++g) {
    ranking.correlation[static_cast<std::size_t>(g)] = -g / 1000.0;
  }
  EXPECT_EQ(ranking.best_guess(), 0);
  EXPECT_EQ(ranking.rank_of(0), 1);
  EXPECT_EQ(ranking.rank_of(5), 6);
  EXPECT_EQ(ranking.rank_of(255), 256);
}

// Each model recovers the key byte it targets when the chip leaks exactly
// its hypothesized intermediate.
class CpaModelRecovery : public ::testing::TestWithParam<power::PowerModel> {
};

TEST_P(CpaModelRecovery, RecoversAllBytesNoiseless) {
  const power::PowerModel model = GetParam();
  util::Xoshiro256 rng(2);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);

  CpaEngine engine({model});
  aes::RoundTrace trace;
  for (int t = 0; t < 6000; ++t) {
    const aes::Block pt = random_block(rng);
    const aes::Block ct = cipher.encrypt_trace(pt, trace);
    double leak = 0.0;
    switch (model) {
      case power::PowerModel::rd0_hw:
        leak = aes::hamming_weight(trace.post_add_round_key[0]);
        break;
      case power::PowerModel::rd10_hw:
        leak = aes::hamming_weight(trace.post_add_round_key[9]);
        break;
      case power::PowerModel::rd10_hd:
        leak = aes::hamming_distance(trace.post_add_round_key[9],
                                     trace.post_add_round_key[10]);
        break;
      case power::PowerModel::rd1_sbox_hw:
        leak = aes::hamming_weight(trace.post_sub_bytes[0]);
        break;
    }
    engine.add_trace(pt, ct, leak);
  }

  const ModelResult result = engine.analyze(model, cipher.round_keys());
  EXPECT_EQ(result.recovered_bytes, 16) << power::power_model_name(model);
  EXPECT_DOUBLE_EQ(result.ge_bits, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_rank, 1.0);
  EXPECT_EQ(result.implied_master_key, key);
}

INSTANTIATE_TEST_SUITE_P(AllModels, CpaModelRecovery,
                         ::testing::ValuesIn(power::all_power_models));

TEST(CpaEngine, RecoversUnderModerateNoise) {
  util::Xoshiro256 rng(3);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);
  CpaEngine engine({power::PowerModel::rd0_hw});
  aes::RoundTrace trace;
  for (int t = 0; t < 40000; ++t) {
    const aes::Block pt = random_block(rng);
    const aes::Block ct = cipher.encrypt_trace(pt, trace);
    const double leak = aes::hamming_weight(trace.post_add_round_key[0]) +
                        rng.gaussian(0.0, 40.0);
    engine.add_trace(pt, ct, leak);
  }
  const ModelResult result =
      engine.analyze(power::PowerModel::rd0_hw, cipher.round_keys());
  EXPECT_GE(result.recovered_bytes, 12);
  EXPECT_LT(result.ge_bits, 12.0);
}

// The histogram decomposition must agree exactly with brute-force
// per-trace correlation.
class CpaHistogramEquivalence
    : public ::testing::TestWithParam<power::PowerModel> {};

TEST_P(CpaHistogramEquivalence, MatchesDirectCorrelation) {
  const power::PowerModel model = GetParam();
  util::Xoshiro256 rng(4);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);

  constexpr int n_traces = 1500;
  std::vector<aes::Block> pts(n_traces);
  std::vector<aes::Block> cts(n_traces);
  std::vector<double> values(n_traces);

  CpaEngine engine({model});
  aes::RoundTrace trace;
  for (int t = 0; t < n_traces; ++t) {
    pts[static_cast<std::size_t>(t)] = random_block(rng);
    cts[static_cast<std::size_t>(t)] =
        cipher.encrypt_trace(pts[static_cast<std::size_t>(t)], trace);
    values[static_cast<std::size_t>(t)] =
        aes::hamming_weight(trace.post_add_round_key[0]) +
        rng.gaussian(0.0, 5.0);
    engine.add_trace(pts[static_cast<std::size_t>(t)],
                     cts[static_cast<std::size_t>(t)],
                     values[static_cast<std::size_t>(t)]);
  }

  for (const std::size_t byte_index : {std::size_t{0}, std::size_t{7}}) {
    const ByteRanking fast = engine.analyze_byte(model, byte_index);
    for (int g = 0; g < 256; g += 13) {
      util::OnlineCorrelation direct;
      for (int t = 0; t < n_traces; ++t) {
        direct.add(
            static_cast<double>(power::predict(
                model, pts[static_cast<std::size_t>(t)],
                cts[static_cast<std::size_t>(t)], byte_index,
                static_cast<std::uint8_t>(g))),
            values[static_cast<std::size_t>(t)]);
      }
      EXPECT_NEAR(fast.correlation[static_cast<std::size_t>(g)],
                  direct.correlation(), 1e-9)
          << power::power_model_name(model) << " byte " << byte_index
          << " guess " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, CpaHistogramEquivalence,
                         ::testing::ValuesIn(power::all_power_models));

TEST(CpaEngine, Round10KeyInversion) {
  // A perfect rd10 recovery must hand back the victim's master key.
  util::Xoshiro256 rng(5);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);
  CpaEngine engine({power::PowerModel::rd10_hw});
  aes::RoundTrace trace;
  for (int t = 0; t < 8000; ++t) {
    const aes::Block pt = random_block(rng);
    const aes::Block ct = cipher.encrypt_trace(pt, trace);
    engine.add_trace(pt, ct,
                     aes::hamming_weight(trace.post_add_round_key[9]));
  }
  const ModelResult result =
      engine.analyze(power::PowerModel::rd10_hw, cipher.round_keys());
  EXPECT_EQ(result.best_round_key, cipher.round_keys()[10]);
  EXPECT_EQ(result.implied_master_key, key);
}

TEST(CpaEngine, NoSignalMeansNoRecovery) {
  util::Xoshiro256 rng(6);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);
  CpaEngine engine({power::PowerModel::rd0_hw});
  for (int t = 0; t < 20000; ++t) {
    const aes::Block pt = random_block(rng);
    engine.add_trace(pt, cipher.encrypt(pt), rng.gaussian(0.0, 1.0));
  }
  const ModelResult result =
      engine.analyze(power::PowerModel::rd0_hw, cipher.round_keys());
  // Pure noise: GE stays near the random-guessing reference.
  EXPECT_GT(result.ge_bits, 80.0);
  EXPECT_LE(result.recovered_bytes, 2);
}

// Sharded-pipeline property: one engine fed N traces must equal K shard
// engines fed N/K traces each and merged, for every model and byte.
class CpaMergeEquivalence
    : public ::testing::TestWithParam<power::PowerModel> {};

TEST_P(CpaMergeEquivalence, ShardsMergeToMonolithicResult) {
  const power::PowerModel model = GetParam();
  util::Xoshiro256 rng(41);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);

  constexpr std::size_t n_traces = 4096;
  constexpr std::size_t n_shards = 4;
  CpaEngine monolithic({model});
  std::vector<CpaEngine> shards;
  for (std::size_t s = 0; s < n_shards; ++s) {
    shards.emplace_back(std::vector<power::PowerModel>{model});
  }

  aes::RoundTrace trace;
  for (std::size_t t = 0; t < n_traces; ++t) {
    const aes::Block pt = random_block(rng);
    const aes::Block ct = cipher.encrypt_trace(pt, trace);
    const double leak = aes::hamming_weight(trace.post_add_round_key[0]) +
                        rng.gaussian(0.0, 3.0);
    monolithic.add_trace(pt, ct, leak);
    shards[t % n_shards].add_trace(pt, ct, leak);
  }

  CpaEngine merged = shards[0].snapshot();
  for (std::size_t s = 1; s < n_shards; ++s) {
    merged.merge(shards[s]);
  }
  EXPECT_EQ(merged.trace_count(), monolithic.trace_count());

  for (std::size_t byte_index = 0; byte_index < 16; ++byte_index) {
    const ByteRanking mono = monolithic.analyze_byte(model, byte_index);
    const ByteRanking shard = merged.analyze_byte(model, byte_index);
    for (int g = 0; g < 256; ++g) {
      ASSERT_NEAR(shard.correlation[static_cast<std::size_t>(g)],
                  mono.correlation[static_cast<std::size_t>(g)], 1e-12)
          << power::power_model_name(model) << " byte " << byte_index
          << " guess " << g;
    }
  }

  const ModelResult mono_result = monolithic.analyze(model,
                                                     cipher.round_keys());
  const ModelResult merged_result = merged.analyze(model,
                                                   cipher.round_keys());
  EXPECT_EQ(merged_result.true_ranks, mono_result.true_ranks);
  EXPECT_EQ(merged_result.best_round_key, mono_result.best_round_key);
  EXPECT_NEAR(merged_result.ge_bits, mono_result.ge_bits, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllModels, CpaMergeEquivalence,
                         ::testing::ValuesIn(power::all_power_models));

TEST(CpaEngine, BatchFeedEqualsLoopFeedBitForBit) {
  util::Xoshiro256 rng(42);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);

  constexpr std::size_t n_traces = 1000;
  std::vector<aes::Block> pts(n_traces);
  std::vector<aes::Block> cts(n_traces);
  std::vector<double> values(n_traces);
  for (std::size_t t = 0; t < n_traces; ++t) {
    pts[t] = random_block(rng);
    cts[t] = cipher.encrypt(pts[t]);
    values[t] = rng.gaussian(2.0, 1.0);
  }

  CpaEngine looped({power::PowerModel::rd0_hw});
  for (std::size_t t = 0; t < n_traces; ++t) {
    looped.add_trace(pts[t], cts[t], values[t]);
  }
  CpaEngine batched({power::PowerModel::rd0_hw});
  batched.add_trace_batch(pts, cts, values);

  EXPECT_EQ(batched.trace_count(), looped.trace_count());
  const ByteRanking a = looped.analyze_byte(power::PowerModel::rd0_hw, 3);
  const ByteRanking b = batched.analyze_byte(power::PowerModel::rd0_hw, 3);
  for (int g = 0; g < 256; ++g) {
    ASSERT_DOUBLE_EQ(a.correlation[static_cast<std::size_t>(g)],
                     b.correlation[static_cast<std::size_t>(g)]);
  }
}

// Satellite: CPA correlations and ranks from every supported SIMD backend
// match the scalar fallback bit-for-bit on the same trace stream, across
// all configured models.
TEST(CpaEngine, AllSimdBackendsMatchScalarBitForBit) {
  namespace simd = util::simd;
  util::Xoshiro256 rng(77);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);

  constexpr std::size_t n_traces = 2000;
  std::vector<aes::Block> pts(n_traces);
  std::vector<aes::Block> cts(n_traces);
  std::vector<double> values(n_traces);
  for (std::size_t t = 0; t < n_traces; ++t) {
    pts[t] = random_block(rng);
    cts[t] = cipher.encrypt(pts[t]);
    values[t] = rng.gaussian(2.0, 1.0);
  }
  const std::vector<power::PowerModel> models = {
      power::PowerModel::rd0_hw, power::PowerModel::rd10_hw,
      power::PowerModel::rd10_hd};
  const auto feed = [&] {
    CpaEngine engine(models);
    // Uneven batch sizes to exercise the kernels' head/body/tail.
    std::size_t i = 0;
    for (const std::size_t len :
         {std::size_t{701}, std::size_t{3}, n_traces - 704}) {
      engine.add_trace_batch(std::span(pts).subspan(i, len),
                             std::span(cts).subspan(i, len),
                             std::span(values).subspan(i, len));
      i += len;
    }
    return engine;
  };
  simd::force_backend(simd::Backend::scalar);
  const CpaEngine reference = feed();
  for (const simd::Backend backend : simd::supported_backends()) {
    simd::force_backend(backend);
    const CpaEngine engine = feed();
    for (const power::PowerModel model : models) {
      for (std::size_t byte = 0; byte < 16; byte += 5) {
        const ByteRanking want = reference.analyze_byte(model, byte);
        const ByteRanking got = engine.analyze_byte(model, byte);
        for (int g = 0; g < 256; ++g) {
          ASSERT_EQ(got.correlation[static_cast<std::size_t>(g)],
                    want.correlation[static_cast<std::size_t>(g)])
              << simd::backend_name(backend) << " byte " << byte
              << " guess " << g;
        }
        ASSERT_EQ(got.rank_of(0x42), want.rank_of(0x42));
      }
    }
  }
  simd::reset_backend();
}

TEST(CpaEngine, MergeRejectsMismatchedModelLists) {
  CpaEngine a({power::PowerModel::rd0_hw});
  CpaEngine b({power::PowerModel::rd10_hw});
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(CpaEngine, MergeIntoEmptyEngineEqualsCopy) {
  util::Xoshiro256 rng(43);
  const aes::Block key = random_block(rng);
  aes::Aes128 cipher(key);
  CpaEngine fed({power::PowerModel::rd0_hw});
  for (int t = 0; t < 500; ++t) {
    const aes::Block pt = random_block(rng);
    fed.add_trace(pt, cipher.encrypt(pt), rng.gaussian(0.0, 1.0));
  }
  CpaEngine empty({power::PowerModel::rd0_hw});
  empty.merge(fed);
  const ByteRanking a = fed.analyze_byte(power::PowerModel::rd0_hw, 0);
  const ByteRanking b = empty.analyze_byte(power::PowerModel::rd0_hw, 0);
  for (int g = 0; g < 256; ++g) {
    ASSERT_DOUBLE_EQ(a.correlation[static_cast<std::size_t>(g)],
                     b.correlation[static_cast<std::size_t>(g)]);
  }
}

TEST(CpaEngine, EmptyEngineReturnsZeroCorrelations) {
  CpaEngine engine({power::PowerModel::rd0_hw});
  const ByteRanking ranking =
      engine.analyze_byte(power::PowerModel::rd0_hw, 0);
  for (const double c : ranking.correlation) {
    EXPECT_DOUBLE_EQ(c, 0.0);
  }
}

}  // namespace
}  // namespace psc::core
