#include "core/campaigns.h"

#include <gtest/gtest.h>

#include "core/guessing_entropy.h"

namespace psc::core {
namespace {

TEST(Checkpoints, LogSpacedIncludesEndpoints) {
  const auto cps = log_spaced_checkpoints(1000, 100000, 5);
  ASSERT_FALSE(cps.empty());
  EXPECT_EQ(cps.front(), 1000u);
  EXPECT_EQ(cps.back(), 100000u);
  EXPECT_TRUE(std::is_sorted(cps.begin(), cps.end()));
}

TEST(Checkpoints, DegenerateInputs) {
  EXPECT_TRUE(log_spaced_checkpoints(1000, 100, 5).empty());
  EXPECT_TRUE(log_spaced_checkpoints(0, 100, 5).empty());
  EXPECT_TRUE(log_spaced_checkpoints(10, 100, 0).empty());
  const auto one = log_spaced_checkpoints(10, 100, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 100u);
}

class TvlaCampaignTest : public ::testing::Test {
 protected:
  TvlaCampaignConfig config_{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 2000,
      .include_pcpu = true,
      .seed = 11,
  };
};

TEST_F(TvlaCampaignTest, ChannelsReported) {
  const auto result = run_tvla_campaign(config_);
  // M2: PHPC PDTR PHPS PMVC PSTR + PCPU.
  EXPECT_EQ(result.channels.size(), 6u);
  EXPECT_NE(result.find("PHPC"), nullptr);
  EXPECT_NE(result.find("PCPU"), nullptr);
  EXPECT_EQ(result.find("NOPE"), nullptr);
  EXPECT_EQ(result.traces_per_set, 2000u);
}

TEST_F(TvlaCampaignTest, PhpcLeaksPhpsDoesNot) {
  const auto result = run_tvla_campaign(config_);
  const auto* phpc = result.find("PHPC");
  const auto* phps = result.find("PHPS");
  const auto* pcpu = result.find("PCPU");
  ASSERT_NE(phpc, nullptr);
  ASSERT_NE(phps, nullptr);
  ASSERT_NE(pcpu, nullptr);
  // The star channel distinguishes fixed classes.
  EXPECT_GE(std::abs(phpc->matrix.score(PlaintextClass::all_zeros,
                                        PlaintextClass::all_ones)),
            util::tvla_threshold);
  // Estimate channels show nothing.
  EXPECT_TRUE(phps->matrix.no_data_dependence());
  EXPECT_TRUE(pcpu->matrix.no_data_dependence());
}

TEST_F(TvlaCampaignTest, SameClassPairsIndistinguishable) {
  const auto result = run_tvla_campaign(config_);
  for (const auto& channel : result.channels) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      EXPECT_LT(std::abs(channel.matrix.score(cls, cls)),
                util::tvla_threshold)
          << channel.channel << " diagonal";
    }
  }
}

TEST_F(TvlaCampaignTest, DeterministicForSeed) {
  const auto a = run_tvla_campaign(config_);
  const auto b = run_tvla_campaign(config_);
  EXPECT_EQ(a.victim_key, b.victim_key);
  for (std::size_t c = 0; c < a.channels.size(); ++c) {
    EXPECT_DOUBLE_EQ(
        a.channels[c].matrix.score(PlaintextClass::all_zeros,
                                   PlaintextClass::all_ones),
        b.channels[c].matrix.score(PlaintextClass::all_zeros,
                                   PlaintextClass::all_ones));
  }
}

TEST_F(TvlaCampaignTest, KernelVictimAlsoLeaks) {
  config_.victim = victim::VictimModel::kernel_module();
  config_.seed = 12;
  const auto result = run_tvla_campaign(config_);
  const auto* phpc = result.find("PHPC");
  ASSERT_NE(phpc, nullptr);
  EXPECT_GE(std::abs(phpc->matrix.score(PlaintextClass::all_zeros,
                                        PlaintextClass::all_ones)),
            util::tvla_threshold);
}

class CpaCampaignTest : public ::testing::Test {
 protected:
  CpaCampaignConfig config_{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 40000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {10000, 40000},
      .seed = 13,
  };
};

TEST_F(CpaCampaignTest, StructureOfResult) {
  const auto result = run_cpa_campaign(config_);
  EXPECT_EQ(result.trace_count, 40000u);
  ASSERT_EQ(result.keys.size(), 1u);
  EXPECT_EQ(result.keys[0].key, smc::FourCc("PHPC"));
  ASSERT_EQ(result.keys[0].final_results.size(), 1u);
  ASSERT_EQ(result.keys[0].curves.size(), 1u);
  ASSERT_EQ(result.keys[0].curves[0].size(), 2u);
  EXPECT_EQ(result.keys[0].curves[0][0].traces, 10000u);
  EXPECT_EQ(result.keys[0].curves[0][1].traces, 40000u);
  EXPECT_EQ(result.round_keys[0], result.victim_key);
  EXPECT_NE(result.find(smc::FourCc("PHPC")), nullptr);
  EXPECT_EQ(result.find(smc::FourCc("PSTR")), nullptr);
}

TEST_F(CpaCampaignTest, GeDecreasesWithTraces) {
  const auto result = run_cpa_campaign(config_);
  const auto& curve = result.keys[0].curves[0];
  EXPECT_GT(curve[0].ge_bits, curve[1].ge_bits);
  // Even at 40k traces we must be visibly below the random reference.
  EXPECT_LT(curve[1].ge_bits, random_guess_ge_bits() - 5.0);
}

TEST_F(CpaCampaignTest, DefaultKeysExcludePhps) {
  config_.keys.clear();
  config_.trace_count = 5000;
  config_.checkpoints.clear();
  const auto result = run_cpa_campaign(config_);
  EXPECT_EQ(result.keys.size(), 4u);  // PHPC PDTR PMVC PSTR
  EXPECT_EQ(result.find(smc::FourCc("PHPS")), nullptr);
}

TEST_F(CpaCampaignTest, UnknownKeyRejected) {
  config_.keys = {smc::FourCc("ZZZZ")};
  EXPECT_THROW(run_cpa_campaign(config_), std::invalid_argument);
}

TEST_F(CpaCampaignTest, FinalCheckpointImplicit) {
  config_.checkpoints = {10000};  // not including the final count
  const auto result = run_cpa_campaign(config_);
  const auto& curve = result.keys[0].curves[0];
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve.back().traces, 40000u);
}

TEST_F(CpaCampaignTest, KernelVictimConvergesSlower) {
  // GE at a fixed trace count has seed-to-seed spread comparable to the
  // kernel/user gap, so aggregate over four seeds and two checkpoints.
  // All campaigns are deterministic per seed, so this comparison is
  // stable.
  config_.trace_count = 400000;
  config_.checkpoints = {200000};
  double user_ge = 0.0;
  double kernel_ge = 0.0;
  for (const std::uint64_t seed : {14u, 15u, 16u, 17u}) {
    config_.seed = seed;
    config_.victim = victim::VictimModel::user_space();
    const auto user = run_cpa_campaign(config_);
    for (const auto& p : user.keys[0].curves[0]) {
      user_ge += p.ge_bits;
    }
    config_.victim = victim::VictimModel::kernel_module();
    const auto kernel = run_cpa_campaign(config_);
    for (const auto& p : kernel.keys[0].curves[0]) {
      kernel_ge += p.ge_bits;
    }
  }
  EXPECT_GT(kernel_ge, user_ge);
}

TEST_F(CpaCampaignTest, M1DeviceRuns) {
  config_.profile = soc::DeviceProfile::mac_mini_m1();
  config_.trace_count = 20000;
  config_.checkpoints.clear();
  const auto result = run_cpa_campaign(config_);
  ASSERT_EQ(result.keys.size(), 1u);
  EXPECT_GT(result.keys[0].final_results[0].ge_bits, 0.0);
}

}  // namespace
}  // namespace psc::core
