#include "core/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <sstream>
#include <span>

#include "util/rng.h"

namespace psc::core {
namespace {

TraceRecord make_record(util::Xoshiro256& rng, std::size_t values) {
  TraceRecord r;
  rng.fill_bytes(r.plaintext);
  rng.fill_bytes(r.ciphertext);
  for (std::size_t i = 0; i < values; ++i) {
    r.values.push_back(rng.uniform(0.0, 10.0));
  }
  return r;
}

TEST(TraceSet, AddAndAccess) {
  TraceSet set({util::FourCc("PHPC"), util::FourCc("PSTR")});
  util::Xoshiro256 rng(1);
  set.add(make_record(rng, 2));
  set.add(make_record(rng, 2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.empty());
  EXPECT_EQ(set[0].values.size(), 2u);
}

TEST(TraceSet, RejectsMismatchedValues) {
  TraceSet set({util::FourCc("PHPC")});
  util::Xoshiro256 rng(2);
  EXPECT_THROW(set.add(make_record(rng, 3)), std::invalid_argument);
}

TEST(TraceSet, KeyIndexLookup) {
  TraceSet set({util::FourCc("PHPC"), util::FourCc("PSTR")});
  EXPECT_EQ(set.key_index(util::FourCc("PSTR")), 1u);
  EXPECT_FALSE(set.key_index(util::FourCc("XXXX")).has_value());
}

TEST(TraceSet, ColumnExtraction) {
  TraceSet set({util::FourCc("PHPC")});
  for (double v : {1.0, 2.0, 3.0}) {
    TraceRecord r;
    r.values = {v};
    set.add(r);
  }
  const std::span<const double> column = set.column(0);
  ASSERT_EQ(column.size(), 3u);
  EXPECT_TRUE(std::equal(column.begin(), column.end(),
                         std::vector<double>{1.0, 2.0, 3.0}.begin()));
  // Zero-copy: the view aliases the set's columnar storage.
  EXPECT_EQ(column.data(), set.batch().column(0).data());
  EXPECT_THROW(set.column(1), std::out_of_range);
}

TEST(TraceSet, BulkAppendFromBatch) {
  TraceSet set({util::FourCc("PHPC")});
  TraceBatch batch(1);
  util::Xoshiro256 rng(7);
  for (double v : {4.0, 5.0}) {
    aes::Block pt;
    aes::Block ct;
    rng.fill_bytes(pt);
    rng.fill_bytes(ct);
    batch.append(pt, ct, std::array<double, 1>{v});
  }
  set.append(batch);
  set.append(batch);
  ASSERT_EQ(set.size(), 4u);
  EXPECT_DOUBLE_EQ(set[0].values[0], 4.0);
  EXPECT_DOUBLE_EQ(set[3].values[0], 5.0);
  EXPECT_EQ(set[0].plaintext, set[2].plaintext);

  TraceBatch wrong_shape(2);
  EXPECT_THROW(set.append(wrong_shape), std::invalid_argument);
}

TEST(TraceSet, CsvRoundTrip) {
  TraceSet set({util::FourCc("PHPC"), util::FourCc("PDTR")});
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) {
    set.add(make_record(rng, 2));
  }
  std::stringstream buffer;
  set.save_csv(buffer);
  const TraceSet loaded = TraceSet::load_csv(buffer);
  ASSERT_EQ(loaded.size(), set.size());
  ASSERT_EQ(loaded.keys(), set.keys());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(loaded[i].plaintext, set[i].plaintext);
    EXPECT_EQ(loaded[i].ciphertext, set[i].ciphertext);
    for (std::size_t v = 0; v < 2; ++v) {
      EXPECT_NEAR(loaded[i].values[v], set[i].values[v], 1e-9);
    }
  }
}

TEST(TraceSet, LoadRejectsGarbage) {
  std::stringstream empty;
  EXPECT_THROW(TraceSet::load_csv(empty), std::runtime_error);

  std::stringstream bad_header("foo,bar\n");
  EXPECT_THROW(TraceSet::load_csv(bad_header), std::runtime_error);

  std::stringstream bad_key("plaintext,ciphertext,TOOLONGKEY\n");
  EXPECT_THROW(TraceSet::load_csv(bad_key), std::runtime_error);

  std::stringstream bad_hex(
      "plaintext,ciphertext,PHPC\nzz,00112233445566778899aabbccddeeff,1.0\n");
  EXPECT_THROW(TraceSet::load_csv(bad_hex), std::runtime_error);
}

}  // namespace
}  // namespace psc::core
