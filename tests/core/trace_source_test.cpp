#include "core/trace_source.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/guessing_entropy.h"

namespace psc::core {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

LiveSourceConfig m2_user_config() {
  return {
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .mitigation = smc::MitigationPolicy::none(),
      .include_pcpu = false,
  };
}

TEST(LiveTraceSource, ChannelNamesMatchConstructedSource) {
  LiveSourceConfig config = m2_user_config();
  util::Xoshiro256 rng(1);
  const aes::Block key = random_block(rng);

  LiveTraceSource source(config, key, 2);
  EXPECT_EQ(source.keys(), LiveTraceSource::channel_names(config));

  config.include_pcpu = true;
  LiveTraceSource with_pcpu(config, key, 2);
  const auto names = LiveTraceSource::channel_names(config);
  EXPECT_EQ(with_pcpu.keys(), names);
  EXPECT_EQ(names.back(), util::FourCc("PCPU"));
  EXPECT_EQ(names.size(), source.keys().size() + 1);
}

TEST(LiveTraceSource, MatchesUnderlyingFastTraceSource) {
  util::Xoshiro256 rng(3);
  const aes::Block key = random_block(rng);

  LiveTraceSource wrapped(m2_user_config(), key, 7);
  victim::FastTraceSource direct(soc::DeviceProfile::macbook_air_m2(), key,
                                 victim::VictimModel::user_space(), 7);

  for (int t = 0; t < 20; ++t) {
    const aes::Block pt = random_block(rng);
    const TraceRecord record = wrapped.collect(pt);
    const auto sample = direct.collect(pt);
    EXPECT_EQ(record.plaintext, sample.plaintext);
    EXPECT_EQ(record.ciphertext, sample.ciphertext);
    ASSERT_EQ(record.values.size(), sample.smc_values.size());
    for (std::size_t k = 0; k < record.values.size(); ++k) {
      ASSERT_DOUBLE_EQ(record.values[k], sample.smc_values[k]);
    }
  }
}

TEST(LiveTraceSource, PcpuColumnCarriesIoreportEnergy) {
  LiveSourceConfig config = m2_user_config();
  config.include_pcpu = true;
  util::Xoshiro256 rng(4);
  const aes::Block key = random_block(rng);
  LiveTraceSource source(config, key, 5);
  const TraceRecord record = source.collect(random_block(rng));
  ASSERT_EQ(record.values.size(), source.keys().size());
  const double pcpu = record.values.back();
  EXPECT_GE(pcpu, 0.0);
  EXPECT_DOUBLE_EQ(pcpu, std::floor(pcpu));  // whole millijoules
}

// The satellite guarantee of the pluggable acquisition layer: replaying a
// CSV-persisted capture through the analysis pipeline yields the *same*
// ModelResult as the live source that produced it.
TEST(ReplayTraceSource, CsvReplayMatchesLiveAnalysisBitForBit) {
  util::Xoshiro256 key_rng(10);
  const aes::Block victim_key = random_block(key_rng);
  const std::vector<power::PowerModel> models = {power::PowerModel::rd0_hw};
  constexpr std::size_t n_traces = 3000;

  // Live path: acquire and accumulate directly.
  LiveTraceSource live(m2_user_config(), victim_key, 11);
  util::Xoshiro256 pt_rng_a(12);
  const CpaEngine live_engine = accumulate_cpa(
      live, util::FourCc("PHPC"), models, n_traces, pt_rng_a);

  // Capture path: identical source and plaintext stream, persisted to CSV
  // and reloaded.
  LiveTraceSource capture_source(m2_user_config(), victim_key, 11);
  util::Xoshiro256 pt_rng_b(12);
  const TraceSet captured =
      capture_trace_set(capture_source, n_traces, pt_rng_b);
  std::stringstream csv;
  captured.save_csv(csv);
  const TraceSet reloaded = TraceSet::load_csv(csv);
  ASSERT_EQ(reloaded.size(), n_traces);

  ReplayTraceSource replay(std::make_shared<TraceSet>(reloaded));
  util::Xoshiro256 pt_rng_c(99);  // ignored by replay
  const CpaEngine replay_engine = accumulate_cpa(
      replay, util::FourCc("PHPC"), models, 0, pt_rng_c);

  const auto round_keys = aes::Aes128::expand_key(victim_key);
  const ModelResult live_result =
      live_engine.analyze(power::PowerModel::rd0_hw, round_keys);
  const ModelResult replay_result =
      replay_engine.analyze(power::PowerModel::rd0_hw, round_keys);

  EXPECT_EQ(replay_result.true_ranks, live_result.true_ranks);
  EXPECT_EQ(replay_result.best_round_key, live_result.best_round_key);
  EXPECT_DOUBLE_EQ(replay_result.ge_bits, live_result.ge_bits);
  for (std::size_t i = 0; i < 16; ++i) {
    for (int g = 0; g < 256; ++g) {
      ASSERT_DOUBLE_EQ(
          replay_result.bytes[i].correlation[static_cast<std::size_t>(g)],
          live_result.bytes[i].correlation[static_cast<std::size_t>(g)])
          << "byte " << i << " guess " << g;
    }
  }
}

TEST(ReplayTraceSource, ExhaustionThrows) {
  auto set = std::make_shared<TraceSet>(
      std::vector<util::FourCc>{util::FourCc("PHPC")});
  util::Xoshiro256 rng(13);
  set->add({random_block(rng), random_block(rng), {1.0}});
  ReplayTraceSource replay(set);
  EXPECT_EQ(replay.remaining(), std::optional<std::size_t>(1));
  (void)replay.collect(aes::Block{});
  EXPECT_EQ(replay.remaining(), std::optional<std::size_t>(0));
  EXPECT_THROW(replay.collect(aes::Block{}), std::out_of_range);
}

TEST(ReplayTraceSource, ShardViewsPartitionTheSet) {
  auto set = std::make_shared<TraceSet>(
      std::vector<util::FourCc>{util::FourCc("PHPC")});
  util::Xoshiro256 rng(14);
  for (int i = 0; i < 10; ++i) {
    set->add({random_block(rng), random_block(rng),
              {static_cast<double>(i)}});
  }
  ReplayTraceSource first(set, 0, 4);
  ReplayTraceSource second(set, 4, 6);
  EXPECT_EQ(first.remaining(), std::optional<std::size_t>(4));
  EXPECT_EQ(second.remaining(), std::optional<std::size_t>(6));
  EXPECT_DOUBLE_EQ(first.collect(aes::Block{}).values[0], 0.0);
  EXPECT_DOUBLE_EQ(second.collect(aes::Block{}).values[0], 4.0);
  // Out-of-range views clamp.
  ReplayTraceSource tail(set, 8, 100);
  EXPECT_EQ(tail.remaining(), std::optional<std::size_t>(2));
}

TEST(SyntheticTraceSource, NoiselessLeakageRecoversFullKey) {
  util::Xoshiro256 rng(15);
  const aes::Block victim_key = random_block(rng);
  // Pure round-0 value leakage: the Rd0-HW model's exact hypothesis.
  power::LeakageConfig leakage{};
  leakage.ark_hw_weight[0] = 1.0;
  leakage.leak_joules_per_bit = 1.0;
  SyntheticTraceSource source(
      {.leakage = leakage, .gain = 1.0, .noise_sigma = 0.0}, victim_key, 16);

  const CpaEngine engine =
      accumulate_cpa(source, util::FourCc("SYNT"),
                     {power::PowerModel::rd0_hw}, 6000, rng);
  const ModelResult result = engine.analyze(
      power::PowerModel::rd0_hw, aes::Aes128::expand_key(victim_key));
  EXPECT_EQ(result.recovered_bytes, 16);
  EXPECT_EQ(result.implied_master_key, victim_key);
}

TEST(SyntheticTraceSource, NoiseDegradesButDefaultProfileStillLeaks) {
  util::Xoshiro256 rng(17);
  const aes::Block victim_key = random_block(rng);
  SyntheticSourceConfig config;  // calibrated Apple-silicon shape
  config.gain = 1.0 / config.leakage.leak_joules_per_bit;
  config.noise_sigma = 10.0;
  SyntheticTraceSource source(config, victim_key, 18);
  const CpaEngine engine =
      accumulate_cpa(source, util::FourCc("SYNT"),
                     {power::PowerModel::rd0_hw}, 30000, rng);
  const ModelResult result = engine.analyze(
      power::PowerModel::rd0_hw, aes::Aes128::expand_key(victim_key));
  EXPECT_LT(result.ge_bits, random_guess_ge_bits() - 5.0);
}

TEST(TraceSource, BatchedCollectMatchesCollectLoop) {
  util::Xoshiro256 rng(19);
  const aes::Block victim_key = random_block(rng);
  power::LeakageConfig leakage{};
  leakage.ark_hw_weight[0] = 1.0;
  leakage.leak_joules_per_bit = 1.0;
  const SyntheticSourceConfig config{.leakage = leakage};

  SyntheticTraceSource batched_source(config, victim_key, 20);
  util::Xoshiro256 batch_rng(21);
  TraceBatch batch(1);
  collect_random_batch(batched_source, 50, batch_rng, batch);

  SyntheticTraceSource looped_source(config, victim_key, 20);
  util::Xoshiro256 loop_rng(21);
  ASSERT_EQ(batch.size(), 50u);
  aes::Block pt;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    loop_rng.fill_bytes(pt);
    const TraceRecord expected = looped_source.collect(pt);
    EXPECT_EQ(batch.plaintexts()[t], expected.plaintext);
    EXPECT_EQ(batch.ciphertexts()[t], expected.ciphertext);
    EXPECT_DOUBLE_EQ(batch.column(0)[t], expected.values[0]);
  }
}

TEST(TraceSource, CollectBatchRejectsMisshapenBatch) {
  util::Xoshiro256 rng(30);
  const aes::Block victim_key = random_block(rng);
  SyntheticTraceSource source({}, victim_key, 31);
  TraceBatch batch(3);  // source reports a single channel
  batch.resize(4);
  EXPECT_THROW(source.collect_batch(batch), std::invalid_argument);
}

TEST(ReplayTraceSource, CollectBatchIsBulkColumnCopy) {
  util::Xoshiro256 rng(32);
  const aes::Block victim_key = random_block(rng);
  LiveTraceSource live(m2_user_config(), victim_key, 33);
  auto set = std::make_shared<TraceSet>(capture_trace_set(live, 25, rng));

  ReplayTraceSource replay(set);
  TraceBatch batch(set->keys().size());
  batch.resize(10);
  replay.collect_batch(batch);
  EXPECT_EQ(replay.remaining(), std::optional<std::size_t>(15));
  for (std::size_t t = 0; t < 10; ++t) {
    EXPECT_EQ(batch.plaintexts()[t], (*set)[t].plaintext);
    EXPECT_EQ(batch.ciphertexts()[t], (*set)[t].ciphertext);
    for (std::size_t c = 0; c < batch.channels(); ++c) {
      ASSERT_EQ(batch.column(c)[t], (*set)[t].values[c]);
    }
  }
  // Asking for more than remains throws without consuming.
  batch.clear();
  batch.resize(16);
  EXPECT_THROW(replay.collect_batch(batch), std::out_of_range);
  EXPECT_EQ(replay.remaining(), std::optional<std::size_t>(15));
}

TEST(TraceSet, CsvRoundTripIsBitExact) {
  util::Xoshiro256 rng(22);
  const aes::Block victim_key = random_block(rng);
  LiveTraceSource source(m2_user_config(), victim_key, 23);
  const TraceSet set = capture_trace_set(source, 50, rng);

  std::stringstream csv;
  set.save_csv(csv);
  const TraceSet reloaded = TraceSet::load_csv(csv);
  ASSERT_EQ(reloaded.size(), set.size());
  EXPECT_EQ(reloaded.keys(), set.keys());
  for (std::size_t i = 0; i < set.size(); ++i) {
    EXPECT_EQ(reloaded[i].plaintext, set[i].plaintext);
    EXPECT_EQ(reloaded[i].ciphertext, set[i].ciphertext);
    ASSERT_EQ(reloaded[i].values.size(), set[i].values.size());
    for (std::size_t v = 0; v < set[i].values.size(); ++v) {
      ASSERT_EQ(reloaded[i].values[v], set[i].values[v])
          << "trace " << i << " column " << v;
    }
  }
}

TEST(AccumulateCpa, UnknownChannelRejected) {
  util::Xoshiro256 rng(24);
  const aes::Block victim_key = random_block(rng);
  SyntheticTraceSource source({}, victim_key, 25);
  EXPECT_THROW(accumulate_cpa(source, util::FourCc("ZZZZ"),
                              {power::PowerModel::rd0_hw}, 10, rng),
               std::invalid_argument);
}

TEST(AccumulateCpa, EverythingRemainingRequiresFiniteSource) {
  util::Xoshiro256 rng(26);
  const aes::Block victim_key = random_block(rng);
  SyntheticTraceSource unbounded({}, victim_key, 27);
  EXPECT_THROW(accumulate_cpa(unbounded, util::FourCc("SYNT"),
                              {power::PowerModel::rd0_hw}, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace psc::core
