#include "core/guessing_entropy.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

namespace psc::core {
namespace {

TEST(GuessingEntropy, FullRecoveryIsZero) {
  const std::vector<int> ranks(16, 1);
  EXPECT_DOUBLE_EQ(guessing_entropy_bits(ranks), 0.0);
  EXPECT_DOUBLE_EQ(mean_rank(ranks), 1.0);
}

TEST(GuessingEntropy, SingleByteContribution) {
  const std::array<int, 1> ranks = {8};
  EXPECT_DOUBLE_EQ(guessing_entropy_bits(ranks), 3.0);
}

TEST(GuessingEntropy, MatchesPaperTable4Phpc) {
  // Table 4, PHPC column: the printed GE 31.0 is the sum of log2(rank).
  const std::vector<int> ranks = {7, 7,  1, 11, 5, 4, 4,  13,
                                  1, 37, 1, 1,  1, 4, 1, 26};
  EXPECT_NEAR(guessing_entropy_bits(ranks), 31.0, 0.05);
}

TEST(GuessingEntropy, MatchesPaperTable4Pdtr) {
  const std::vector<int> ranks = {1,  7,  5, 11, 1, 15, 6,  8,
                                  15, 16, 5, 2,  2, 12, 9, 24};
  EXPECT_NEAR(guessing_entropy_bits(ranks), 41.6, 0.1);
}

TEST(GuessingEntropy, MatchesPaperTable4Pstr) {
  const std::vector<int> ranks = {211, 22,  188, 189, 151, 223, 113, 39,
                                  201, 101, 214, 117, 146, 184, 18,  137};
  EXPECT_NEAR(guessing_entropy_bits(ranks), 109.3, 0.1);
}

TEST(GuessingEntropy, PaperTable4M1ColumnIsInternallyInconsistent) {
  // The sum-log2 metric reproduces the paper's GE exactly for the PHPC,
  // PDTR, PMVC and PSTR columns. The M1 column's printed ranks sum to
  // 50.9 bits while the paper prints 40.9 — the one internal
  // inconsistency in Table 4 (likely ranks and GE taken from different
  // checkpoints). We pin the metric, not the typo.
  const std::vector<int> ranks = {9, 19, 4, 12, 1, 31, 16, 5,
                                  9, 18, 7, 2,  1, 36, 25, 50};
  EXPECT_NEAR(guessing_entropy_bits(ranks), 50.9, 0.1);
}

TEST(GuessingEntropy, MeanRank) {
  const std::vector<int> ranks = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean_rank(ranks), 2.5);
}

TEST(GuessingEntropy, EmptyInputs) {
  EXPECT_DOUBLE_EQ(guessing_entropy_bits({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_rank({}), 0.0);
}

TEST(GuessingEntropy, RandomReferenceNear105Bits) {
  // E[log2(rank)] over uniform 1..256 = log2(256!)/256 ~ 6.57 bits/byte.
  const double reference = random_guess_ge_bits();
  EXPECT_NEAR(reference, 105.2, 0.2);
  EXPECT_DOUBLE_EQ(random_guess_ge_bits(1) * 16.0, reference);
}

TEST(GuessingEntropy, MonotoneInRanks) {
  std::vector<int> better = {1, 2, 3, 4};
  std::vector<int> worse = {1, 2, 3, 200};
  EXPECT_LT(guessing_entropy_bits(better), guessing_entropy_bits(worse));
}

}  // namespace
}  // namespace psc::core
