#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace psc::core {
namespace {

std::vector<TvlaChannelResult> sample_channels() {
  TvlaChannelResult leaky;
  leaky.channel = "PHPC";
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      leaky.matrix.t[i][j] = i == j ? 0.2 : 12.5;
    }
  }
  TvlaChannelResult quiet;
  quiet.channel = "PHPS";
  return {leaky, quiet};
}

TEST(Report, TvlaTableLayout) {
  const auto table = tvla_table("Table 3", sample_channels());
  std::ostringstream out;
  table.render(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("Table 3"), std::string::npos);
  EXPECT_NE(s.find("PHPC All 0s"), std::string::npos);
  EXPECT_NE(s.find("PHPS Random"), std::string::npos);
  EXPECT_NE(s.find("12.50"), std::string::npos);
  EXPECT_NE(s.find("All 1s'"), std::string::npos);
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(Report, TvlaClassificationTable) {
  const auto table =
      tvla_classification_table("classes", sample_channels());
  std::ostringstream out;
  table.render(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("TP"), std::string::npos);
  EXPECT_NE(s.find("TN"), std::string::npos);
  EXPECT_NE(s.find("FN"), std::string::npos);
  EXPECT_NE(s.find("TP=6"), std::string::npos);  // PHPC summary
  EXPECT_NE(s.find("FN=6"), std::string::npos);  // PHPS summary
}

TEST(Report, CpaRankTable) {
  ModelResult result;
  result.model = power::PowerModel::rd0_hw;
  for (std::size_t i = 0; i < 16; ++i) {
    result.true_ranks[i] = static_cast<int>(i) + 1;
  }
  result.true_ranks[0] = 1;
  result.ge_bits = 31.0;
  result.mean_rank = 7.8;
  result.recovered_bytes = 1;

  const auto table =
      cpa_rank_table("Table 4", {{"PHPC", &result}, {"PHPC (M1)", &result}});
  std::ostringstream out;
  table.render(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("Table 4"), std::string::npos);
  EXPECT_NE(s.find("PHPC (M1)"), std::string::npos);
  EXPECT_NE(s.find("1 *"), std::string::npos);   // recovered marker
  EXPECT_NE(s.find("5 +"), std::string::npos);   // near-recovery marker
  EXPECT_NE(s.find("31.0"), std::string::npos);  // GE row
  EXPECT_NE(s.find("1/16"), std::string::npos);  // recovered row
}

TEST(Report, GeCurvesCsv) {
  const std::vector<GeCurvePoint> curve = {{1000, 90.0, 50.0, 0},
                                           {10000, 60.0, 20.0, 2}};
  std::ostringstream out;
  write_ge_curves_csv(out, {{"M2 Rd0-HW", &curve}});
  const std::string s = out.str();
  EXPECT_NE(s.find("series,traces,ge_bits,mean_rank,recovered_bytes"),
            std::string::npos);
  EXPECT_NE(s.find("M2 Rd0-HW,1000,90,50,0"), std::string::npos);
  EXPECT_NE(s.find("M2 Rd0-HW,10000,60,20,2"), std::string::npos);
}

TEST(Report, GeCurvesTextPlot) {
  const std::vector<GeCurvePoint> a = {{1000, 100.0, 50.0, 0},
                                       {10000, 40.0, 10.0, 4}};
  const std::vector<GeCurvePoint> b = {{1000, 100.0, 50.0, 0},
                                       {10000, 95.0, 45.0, 0}};
  std::ostringstream out;
  render_ge_curves(out, {{"converging", &a}, {"flat", &b}});
  const std::string s = out.str();
  EXPECT_NE(s.find("A = converging"), std::string::npos);
  EXPECT_NE(s.find("B = flat"), std::string::npos);
  EXPECT_NE(s.find("GE (bits)"), std::string::npos);
}

TEST(Report, GeCurvesEmptyInput) {
  std::ostringstream out;
  render_ge_curves(out, {});
  EXPECT_NE(out.str().find("no curve data"), std::string::npos);
}

TEST(Report, ThrottleObservationTable) {
  ThrottleObservation obs;
  obs.aes_only_power_w = 2.81;
  obs.aes_only_p_freq_hz = 1.968e9;
  obs.stressed_p_freq_hz = 1.284e9;
  obs.stressed_e_freq_hz = 2.424e9;
  obs.power_throttled = true;
  const auto table = throttle_observation_table(obs);
  std::ostringstream out;
  table.render(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("2.81"), std::string::npos);
  EXPECT_NE(s.find("1.968"), std::string::npos);
  EXPECT_NE(s.find("2.424"), std::string::npos);
  EXPECT_NE(s.find("yes"), std::string::npos);
}

}  // namespace
}  // namespace psc::core
