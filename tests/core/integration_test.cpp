// End-to-end integration: the full attack chain at reduced scale, pinning
// the headline qualitative results of every experiment family.
#include <gtest/gtest.h>

#include "core/campaigns.h"
#include "core/guessing_entropy.h"
#include "core/report.h"
#include "core/throttle.h"
#include "smc/fuzzer.h"
#include "victim/platform.h"
#include "victim/victims.h"

namespace psc::core {
namespace {

TEST(Integration, Table2KeyTriageEndToEnd) {
  // smc-fuzzer methodology through the real IOKit-shaped client against
  // the full platform: finds exactly the paper's Table 2 key sets.
  for (const auto& profile : {soc::DeviceProfile::mac_mini_m1(),
                              soc::DeviceProfile::macbook_air_m2()}) {
    victim::Platform platform(profile, 31);
    auto conn = platform.open_smc();
    platform.run_for(1.2);
    const auto idle = smc::snapshot_keys(conn, 'P');

    std::vector<sched::ThreadId> ids;
    for (std::size_t c = 0; c < platform.chip().core_count(); ++c) {
      ids.push_back(platform.scheduler().spawn(
          "stress", std::make_unique<soc::MatrixStressor>()));
    }
    platform.run_for(2.0);
    const auto busy = smc::snapshot_keys(conn, 'P');

    const auto found =
        smc::workload_dependent_keys(smc::diff_snapshots(idle, busy));
    auto expected = platform.smc().database().workload_dependent_keys();
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(found, expected) << profile.name;
  }
}

TEST(Integration, TvlaLeakageHierarchy) {
  // Reduced-scale Table 3: PHPC perfectly data-dependent, weaker channels
  // leak, estimate channels do not.
  TvlaCampaignConfig config{.profile = soc::DeviceProfile::macbook_air_m2(),
                            .victim = victim::VictimModel::user_space(),
                            .traces_per_set = 5000,
                            .include_pcpu = true,
                            .seed = 32};
  const auto result = run_tvla_campaign(config);
  ASSERT_NE(result.find("PHPC"), nullptr);
  EXPECT_TRUE(result.find("PHPC")->matrix.perfectly_data_dependent());
  EXPECT_TRUE(result.find("PHPS")->matrix.no_data_dependence());
  EXPECT_TRUE(result.find("PCPU")->matrix.no_data_dependence());
  // Package-level channels still cross the threshold for fixed classes.
  EXPECT_GE(std::abs(result.find("PSTR")->matrix.score(
                PlaintextClass::all_zeros, PlaintextClass::all_ones)),
            util::tvla_threshold);
}

TEST(Integration, CpaRecoversKeyMaterialFromPhpc) {
  // Reduced-scale Table 4 / Fig 1a: at 150k traces the attack is clearly
  // under way — GE far below random and several bytes at/near rank 1.
  CpaCampaignConfig config{.profile = soc::DeviceProfile::macbook_air_m2(),
                           .victim = victim::VictimModel::user_space(),
                           .trace_count = 150000,
                           .models = {power::PowerModel::rd0_hw},
                           .keys = {smc::FourCc("PHPC")},
                           .checkpoints = {},
                           .seed = 33};
  const auto result = run_cpa_campaign(config);
  const auto& final = result.keys[0].final_results[0];
  EXPECT_LT(final.ge_bits, random_guess_ge_bits() - 30.0);
  EXPECT_GE(final.near_recovered_bytes, 3);
}

TEST(Integration, PowerModelHierarchyOnPhpc) {
  // Fig 1a shape: Rd0-HW converges best; Rd10-HD does not converge.
  CpaCampaignConfig config{.profile = soc::DeviceProfile::macbook_air_m2(),
                           .victim = victim::VictimModel::user_space(),
                           .trace_count = 200000,
                           .models = {power::PowerModel::rd0_hw,
                                      power::PowerModel::rd10_hw,
                                      power::PowerModel::rd10_hd},
                           .keys = {smc::FourCc("PHPC")},
                           .checkpoints = {},
                           .seed = 34};
  const auto result = run_cpa_campaign(config);
  const auto& finals = result.keys[0].final_results;
  const double rd0 = finals[0].ge_bits;
  const double rd10hd = finals[2].ge_bits;
  EXPECT_LT(rd0, rd10hd - 20.0);
  EXPECT_GT(rd10hd, random_guess_ge_bits() - 25.0);  // HD stays ~flat
}

TEST(Integration, PstrSurvivesCpa) {
  // Table 4's PSTR column: TVLA-visible but CPA-resistant.
  CpaCampaignConfig config{.profile = soc::DeviceProfile::macbook_air_m2(),
                           .victim = victim::VictimModel::user_space(),
                           .trace_count = 150000,
                           .models = {power::PowerModel::rd0_hw},
                           .keys = {smc::FourCc("PSTR")},
                           .checkpoints = {},
                           .seed = 35};
  const auto result = run_cpa_campaign(config);
  EXPECT_GT(result.keys[0].final_results[0].ge_bits,
            random_guess_ge_bits() - 25.0);
  EXPECT_EQ(result.keys[0].final_results[0].recovered_bytes, 0);
}

TEST(Integration, ThrottlingExperimentEndToEnd) {
  ThrottleExperimentConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .aes_threads = 4,
      .stressor_threads = 4,
      .traces_per_set = 15,
      .window_s = 0.5,
      .seed = 36};
  const auto result = run_throttle_campaign(config);
  EXPECT_TRUE(result.observation.power_throttled);
  EXPECT_TRUE(result.timing_matrix.no_data_dependence());
}

TEST(Integration, SlowPathVictimFeedsTvla) {
  // A miniature end-to-end slow-path campaign: the genuine platform,
  // victim threads, SMC reads through the IOKit-shaped client. With few
  // windows the t-scores are small; what must hold is that the pipeline
  // runs and same-class sets stay indistinguishable.
  victim::Platform platform(soc::DeviceProfile::macbook_air_m2(), 37);
  aes::Block key{};
  key[0] = 0x42;
  victim::UserSpaceVictim victim(platform, key, 3);
  auto conn = platform.open_smc();

  TvlaAccumulator acc;
  util::Xoshiro256 rng(38);
  for (const bool primed : {false, true}) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (int i = 0; i < 6; ++i) {
        victim.encrypt_window(class_plaintext(cls, rng), 1.0);
        acc.add(cls, primed, conn.read_numeric(smc::FourCc("PHPC")));
      }
    }
  }
  const TvlaMatrix m = acc.matrix();
  for (const PlaintextClass cls : all_plaintext_classes) {
    EXPECT_LT(std::abs(m.score(cls, cls)), util::tvla_threshold);
  }
}

}  // namespace
}  // namespace psc::core
