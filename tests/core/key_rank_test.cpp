#include "core/key_rank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace psc::core {
namespace {

// Builds rankings where each byte's scores are a strictly decreasing
// function of the distance to the true byte value; the true byte lands at
// the given per-byte rank.
std::array<ByteRanking, 16> synthetic_rankings(
    const std::array<std::uint8_t, 16>& true_key,
    const std::array<int, 16>& target_ranks) {
  std::array<ByteRanking, 16> bytes{};
  for (std::size_t i = 0; i < 16; ++i) {
    for (int g = 0; g < 256; ++g) {
      // Unique descending scores by (g - true) mod 256 order.
      const int offset = (g - true_key[i] + 256) % 256;
      bytes[i].correlation[static_cast<std::size_t>(g)] =
          1.0 - offset / 256.0;
    }
    // Move the true byte down to the requested rank by swapping scores.
    const int rank = target_ranks[i];
    if (rank > 1) {
      const auto truth = true_key[i];
      const auto occupant =
          static_cast<std::uint8_t>((truth + rank - 1) % 256);
      std::swap(bytes[i].correlation[truth], bytes[i].correlation[occupant]);
    }
  }
  return bytes;
}

TEST(KeyRank, RejectsTooFewBins) {
  std::array<ByteRanking, 16> bytes{};
  std::array<std::uint8_t, 16> key{};
  EXPECT_THROW(estimate_key_rank(bytes, key, 4), std::invalid_argument);
}

TEST(KeyRank, AllRankOneMeansRankOne) {
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(17 * i + 3);
  }
  std::array<int, 16> ranks;
  ranks.fill(1);
  const auto est = estimate_key_rank(synthetic_rankings(key, ranks), key);
  EXPECT_NEAR(est.log2_rank_lower, 0.0, 0.01);
  EXPECT_LT(est.log2_rank, 1.0);
}

TEST(KeyRank, DegenerateScoresGiveFullRange) {
  std::array<ByteRanking, 16> bytes{};  // all-zero correlations
  std::array<std::uint8_t, 16> key{};
  const auto est = estimate_key_rank(bytes, key);
  EXPECT_DOUBLE_EQ(est.log2_rank_lower, 0.0);
  EXPECT_DOUBLE_EQ(est.log2_rank_upper, 128.0);
}

TEST(KeyRank, BoundsAreOrdered) {
  util::Xoshiro256 rng(5);
  std::array<ByteRanking, 16> bytes{};
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(rng.uniform_u64(256));
    for (int g = 0; g < 256; ++g) {
      bytes[i].correlation[static_cast<std::size_t>(g)] = rng.gaussian();
    }
  }
  const auto est = estimate_key_rank(bytes, key);
  EXPECT_LE(est.log2_rank_lower, est.log2_rank);
  EXPECT_LE(est.log2_rank, est.log2_rank_upper + 1e-9);
  EXPECT_LE(est.log2_rank_upper, 128.0);
}

TEST(KeyRank, RandomScoresPutRandomKeyMidRange) {
  // With i.i.d. scores the true key is a typical key: its rank should be
  // deep (tens of bits), not near 0.
  util::Xoshiro256 rng(6);
  std::array<ByteRanking, 16> bytes{};
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(rng.uniform_u64(256));
    for (int g = 0; g < 256; ++g) {
      bytes[i].correlation[static_cast<std::size_t>(g)] = rng.uniform01();
    }
  }
  const auto est = estimate_key_rank(bytes, key);
  EXPECT_GT(est.log2_rank, 80.0);
}

TEST(KeyRank, MatchesExactEnumerationOnTwoBytes) {
  // Exact cross-check: restrict information to 2 bytes (the other 14 at
  // rank 1 with far-separated scores), enumerate all 65536 combinations
  // of the two informative bytes, and compare with the estimator.
  util::Xoshiro256 rng(7);
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(rng.uniform_u64(256));
  }
  // Pin bytes 2..15 hard: the true byte scores 50, every other guess 0,
  // so no full-key combination can trade a pinned byte against the two
  // informative ones (whose scores stay within [0, 1]).
  std::array<ByteRanking, 16> bytes{};
  for (std::size_t i = 2; i < 16; ++i) {
    bytes[i].correlation[key[i]] = 50.0;
  }
  // Make bytes 0 and 1 informative with random scores.
  for (const std::size_t i : {0u, 1u}) {
    for (int g = 0; g < 256; ++g) {
      bytes[i].correlation[static_cast<std::size_t>(g)] = rng.uniform01();
    }
  }

  // Exact rank over the two informative bytes (other bytes contribute a
  // constant, maximal score).
  const double t0 = bytes[0].correlation[key[0]];
  const double t1 = bytes[1].correlation[key[1]];
  std::uint64_t better = 0;
  for (int g0 = 0; g0 < 256; ++g0) {
    for (int g1 = 0; g1 < 256; ++g1) {
      const double s = bytes[0].correlation[static_cast<std::size_t>(g0)] +
                       bytes[1].correlation[static_cast<std::size_t>(g1)];
      if (s > t0 + t1) {
        ++better;
      }
    }
  }
  const double exact_log2 = std::log2(static_cast<double>(better) + 1.0);

  const auto est = estimate_key_rank(bytes, key, 8192);
  EXPECT_NEAR(est.log2_rank, exact_log2, 1.0);
  EXPECT_LE(est.log2_rank_lower, exact_log2 + 0.5);
  EXPECT_GE(est.log2_rank_upper, exact_log2 - 0.5);
}

TEST(KeyRank, TighterRanksMeanLowerKeyRank) {
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(31 * i + 7);
  }
  std::array<int, 16> good;
  good.fill(2);
  std::array<int, 16> bad;
  bad.fill(50);
  const auto est_good =
      estimate_key_rank(synthetic_rankings(key, good), key);
  const auto est_bad = estimate_key_rank(synthetic_rankings(key, bad), key);
  EXPECT_LT(est_good.log2_rank, est_bad.log2_rank);
}

TEST(KeyRank, ModelResultOverloadUsesScoredKey) {
  util::Xoshiro256 rng(8);
  ModelResult result;
  for (std::size_t i = 0; i < 16; ++i) {
    result.scored_key[i] = static_cast<std::uint8_t>(rng.uniform_u64(256));
    for (int g = 0; g < 256; ++g) {
      result.bytes[i].correlation[static_cast<std::size_t>(g)] =
          rng.gaussian();
    }
  }
  std::array<std::uint8_t, 16> key{};
  for (std::size_t i = 0; i < 16; ++i) {
    key[i] = result.scored_key[i];
  }
  const auto a = estimate_key_rank(result);
  const auto b = estimate_key_rank(result.bytes, key);
  EXPECT_DOUBLE_EQ(a.log2_rank, b.log2_rank);
}

}  // namespace
}  // namespace psc::core
