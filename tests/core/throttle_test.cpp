#include "core/throttle.h"

#include <gtest/gtest.h>

namespace psc::core {
namespace {

TEST(LowpowerSweep, PowerRisesWithThreadsButStaysUnthrottled) {
  const auto points =
      lowpower_aes_sweep(soc::DeviceProfile::macbook_air_m2(), 4, 21);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].package_power_w, points[i - 1].package_power_w);
  }
  // AES alone never exceeds the 4 W budget (paper: 2.8 W at 4 threads).
  for (const auto& p : points) {
    EXPECT_LT(p.package_power_w, 4.0);
    EXPECT_FALSE(p.throttled);
    EXPECT_DOUBLE_EQ(p.p_freq_hz, 1.968e9);
  }
  EXPECT_NEAR(points.back().package_power_w, 2.8, 0.3);
}

class ThrottleCampaignTest : public ::testing::Test {
 protected:
  ThrottleExperimentConfig config_{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .aes_threads = 4,
      .stressor_threads = 4,
      .traces_per_set = 20,
      .window_s = 0.5,
      .seed = 22,
  };
};

TEST_F(ThrottleCampaignTest, ReproducesSection4OperatingPoints) {
  const auto result = run_throttle_campaign(config_);
  const auto& obs = result.observation;

  // Phase 1: ~2.8 W, 1.968 GHz, no throttling.
  EXPECT_NEAR(obs.aes_only_power_w, 2.8, 0.3);
  EXPECT_DOUBLE_EQ(obs.aes_only_p_freq_hz, 1.968e9);
  EXPECT_FALSE(obs.aes_only_throttled);

  // Phase 2: budget exceeded -> power throttling of the P-cluster only.
  EXPECT_TRUE(obs.power_throttled);
  EXPECT_FALSE(obs.thermal_throttled);
  EXPECT_LT(obs.stressed_p_freq_hz, 1.968e9);
  EXPECT_DOUBLE_EQ(obs.stressed_e_freq_hz, 2.424e9);
  // Governor settles at/below the 4 W budget (within one step of slack).
  EXPECT_LT(obs.stressed_estimated_power_w, 4.4);
}

TEST_F(ThrottleCampaignTest, ThrottledTimingCarriesNoDataDependence) {
  const auto result = run_throttle_campaign(config_);
  EXPECT_TRUE(result.timing_matrix.no_data_dependence())
      << "timing must not leak: the governor input is the PHPS estimate";
  EXPECT_GT(result.mean_time_per_kblock_s, 0.0);
}

TEST_F(ThrottleCampaignTest, ThrottlingSlowsTheVictim) {
  const auto result = run_throttle_campaign(config_);
  // Throttled: below the lowpower ceiling frequency, so slower than the
  // unthrottled time 1000 * 80 cycles / 1.968 GHz per thread-kblock.
  const double unthrottled_kblock =
      1000.0 * 80.0 / 1.968e9 / static_cast<double>(config_.aes_threads);
  EXPECT_GT(result.mean_time_per_kblock_s, unthrottled_kblock);
}

TEST_F(ThrottleCampaignTest, DeterministicForSeed) {
  const auto a = run_throttle_campaign(config_);
  const auto b = run_throttle_campaign(config_);
  EXPECT_DOUBLE_EQ(a.observation.stressed_p_freq_hz,
                   b.observation.stressed_p_freq_hz);
  EXPECT_DOUBLE_EQ(a.mean_time_per_kblock_s, b.mean_time_per_kblock_s);
}

}  // namespace
}  // namespace psc::core
