// AnalysisSink layer tests: sink filtering and fan-out, checkpoint
// snapshot semantics, and — the refactor's acceptance criterion — the
// campaigns on the batch/sink path staying bit-identical to a hand-rolled
// per-record loop implementing the original sequential pipeline.
#include "core/analysis_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/campaigns.h"
#include "core/trace_source.h"

namespace psc::core {
namespace {

TraceBatch random_batch(util::Xoshiro256& rng, std::size_t n,
                        std::size_t channels) {
  TraceBatch batch(channels);
  batch.resize(n);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < channels; ++c) {
    for (auto& v : batch.column(c)) {
      v = rng.uniform(-1.0, 1.0);
    }
  }
  return batch;
}

TEST(BatchLabel, RandomPlaintextsClassification) {
  EXPECT_TRUE(BatchLabel::unlabeled().random_plaintexts());
  EXPECT_TRUE(
      BatchLabel::tvla(PlaintextClass::random_pt, true).random_plaintexts());
  EXPECT_FALSE(
      BatchLabel::tvla(PlaintextClass::all_zeros, false).random_plaintexts());
}

TEST(CpaSink, ConsumesOnlyRandomPlaintextBatches) {
  util::Xoshiro256 rng(1);
  const TraceBatch batch = random_batch(rng, 100, 2);

  CpaSink sink({power::PowerModel::rd0_hw}, {1});
  sink.consume(batch, BatchLabel::unlabeled());
  EXPECT_EQ(sink.trace_count(), 100u);
  sink.consume(batch, BatchLabel::tvla(PlaintextClass::all_zeros, false));
  EXPECT_EQ(sink.trace_count(), 100u);  // fixed-class set skipped
  sink.consume(batch, BatchLabel::tvla(PlaintextClass::random_pt, true));
  EXPECT_EQ(sink.trace_count(), 200u);
}

TEST(CpaSink, MergeMatchesSequentialFeed) {
  util::Xoshiro256 rng(2);
  const TraceBatch first = random_batch(rng, 80, 1);
  const TraceBatch second = random_batch(rng, 120, 1);

  CpaSink a({power::PowerModel::rd0_hw}, {0});
  CpaSink b({power::PowerModel::rd0_hw}, {0});
  a.consume(first, BatchLabel::unlabeled());
  b.consume(second, BatchLabel::unlabeled());
  a.merge(b);

  CpaSink sequential({power::PowerModel::rd0_hw}, {0});
  sequential.consume(first, BatchLabel::unlabeled());
  sequential.consume(second, BatchLabel::unlabeled());

  EXPECT_EQ(a.trace_count(), sequential.trace_count());
  for (std::size_t i = 0; i < 16; ++i) {
    const ByteRanking ra = a.engine(0).analyze_byte(power::PowerModel::rd0_hw, i);
    const ByteRanking rb =
        sequential.engine(0).analyze_byte(power::PowerModel::rd0_hw, i);
    for (int g = 0; g < 256; ++g) {
      // Merge folds shard aggregates, so it matches sequential feeding to
      // accumulator precision, not bit-for-bit (same contract as
      // CpaEngine::merge, see cpa_test's merge equivalence).
      ASSERT_NEAR(ra.correlation[static_cast<std::size_t>(g)],
                  rb.correlation[static_cast<std::size_t>(g)], 1e-12);
    }
  }
}

TEST(TvlaSink, ConsumesOnlyLabeledBatches) {
  util::Xoshiro256 rng(3);
  const TraceBatch batch = random_batch(rng, 50, 2);
  TvlaSink sink(2);
  sink.consume(batch, BatchLabel::unlabeled());
  EXPECT_EQ(sink.accumulator(0).count(PlaintextClass::random_pt, false), 0u);
  sink.consume(batch, BatchLabel::tvla(PlaintextClass::all_ones, true));
  EXPECT_EQ(sink.accumulator(0).count(PlaintextClass::all_ones, true), 50u);
  EXPECT_EQ(sink.accumulator(1).count(PlaintextClass::all_ones, true), 50u);
}

TEST(MultiSink, FansOutToEverySink) {
  util::Xoshiro256 rng(4);
  const TraceBatch batch = random_batch(rng, 40, 1);
  CpaSink cpa({power::PowerModel::rd0_hw}, {0});
  TvlaSink tvla(1);
  MultiSink multi({&cpa, &tvla});
  multi.consume(batch, BatchLabel::tvla(PlaintextClass::random_pt, false));
  EXPECT_EQ(cpa.trace_count(), 40u);
  EXPECT_EQ(tvla.accumulator(0).count(PlaintextClass::random_pt, false), 40u);
}

// Snapshots land exactly on the targets even when batch boundaries
// straddle them, and each snapshot equals an engine fed only the prefix.
TEST(GeCheckpointSink, SnapshotsAtExactTargets) {
  util::Xoshiro256 rng(5);
  const TraceBatch batch = random_batch(rng, 300, 1);

  GeCheckpointSink sink({power::PowerModel::rd0_hw}, 0, {0, 50, 170, 300});
  // Feed in chunks of 80: boundaries at 80/160/240 straddle every target.
  TraceBatch piece(1);
  for (std::size_t begin = 0; begin < 300; begin += 80) {
    const std::size_t count = std::min<std::size_t>(80, 300 - begin);
    piece.clear();
    piece.append(batch, begin, count);
    sink.consume(piece, BatchLabel::unlabeled());
  }
  ASSERT_EQ(sink.snapshots().size(), 4u);
  EXPECT_EQ(sink.snapshots()[0].trace_count(), 0u);
  EXPECT_EQ(sink.snapshots()[1].trace_count(), 50u);
  EXPECT_EQ(sink.snapshots()[2].trace_count(), 170u);
  EXPECT_EQ(sink.snapshots()[3].trace_count(), 300u);
  EXPECT_EQ(sink.engine().trace_count(), 300u);

  // The 170-trace snapshot must equal an engine fed exactly that prefix.
  CpaEngine prefix({power::PowerModel::rd0_hw});
  TraceBatch head(1);
  head.append(batch, 0, 170);
  prefix.add_batch(head, 0);
  for (std::size_t i = 0; i < 16; ++i) {
    const ByteRanking a =
        sink.snapshots()[2].analyze_byte(power::PowerModel::rd0_hw, i);
    const ByteRanking b = prefix.analyze_byte(power::PowerModel::rd0_hw, i);
    for (int g = 0; g < 256; ++g) {
      ASSERT_EQ(a.correlation[static_cast<std::size_t>(g)],
                b.correlation[static_cast<std::size_t>(g)]);
    }
  }
}

// ---------- campaign bit-identity against the per-record pipeline ----------

// Hand-rolled sequential TVLA campaign exactly as the pre-batch pipeline
// ran it: one collect() per trace, one add() per channel value.
TEST(CampaignEquivalence, TvlaMatchesPerRecordLoop) {
  TvlaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 700,
      .include_pcpu = true,
      .seed = 21,
  };
  const auto campaign = run_tvla_campaign(config);

  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  ASSERT_EQ(victim_key, campaign.victim_key);
  const LiveSourceConfig source_config{
      .profile = config.profile,
      .victim = config.victim,
      .mitigation = config.mitigation,
      .include_pcpu = config.include_pcpu,
  };
  LiveTraceSource source(source_config, victim_key, rng());
  const auto& channels = source.keys();
  std::vector<TvlaAccumulator> accumulators(channels.size());
  for (const bool primed : {false, true}) {
    for (const PlaintextClass cls : all_plaintext_classes) {
      for (std::size_t t = 0; t < config.traces_per_set; ++t) {
        const aes::Block pt = class_plaintext(cls, rng);
        const TraceRecord record = source.collect(pt);
        for (std::size_t c = 0; c < channels.size(); ++c) {
          accumulators[c].add(cls, primed, record.values[c]);
        }
      }
    }
  }

  ASSERT_EQ(campaign.channels.size(), channels.size());
  for (std::size_t c = 0; c < channels.size(); ++c) {
    const TvlaMatrix expected = accumulators[c].matrix();
    const TvlaMatrix& got = campaign.channels[c].matrix;
    for (const PlaintextClass row : all_plaintext_classes) {
      for (const PlaintextClass col : all_plaintext_classes) {
        ASSERT_EQ(got.score(row, col), expected.score(row, col))
            << campaign.channels[c].channel;
      }
    }
  }
}

// Hand-rolled sequential CPA campaign (single shard) with per-trace
// feeding and checkpoint snapshots — the original pipeline's semantics.
TEST(CampaignEquivalence, CpaMatchesPerRecordLoop) {
  CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 3000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {1000},
      .seed = 22,
  };
  const auto campaign = run_cpa_campaign(config);

  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  LiveTraceSource source({.profile = config.profile,
                          .victim = config.victim,
                          .mitigation = config.mitigation,
                          .include_pcpu = false},
                         victim_key, rng());
  const std::size_t column = static_cast<std::size_t>(
      std::find(source.keys().begin(), source.keys().end(),
                util::FourCc("PHPC")) -
      source.keys().begin());
  ASSERT_LT(column, source.keys().size());

  const auto round_keys = aes::Aes128::expand_key(victim_key);
  CpaEngine engine(config.models);
  std::vector<GeCurvePoint> curve;
  aes::Block pt;
  for (std::size_t t = 0; t < config.trace_count; ++t) {
    rng.fill_bytes(pt);
    const TraceRecord record = source.collect(pt);
    engine.add_trace(record.plaintext, record.ciphertext,
                     record.values[column]);
    if (engine.trace_count() == 1000 ||
        engine.trace_count() == config.trace_count) {
      const ModelResult res =
          engine.analyze(power::PowerModel::rd0_hw, round_keys);
      curve.push_back(
          {engine.trace_count(), res.ge_bits, res.mean_rank,
           res.recovered_bytes});
    }
  }

  const auto& got = campaign.keys[0].curves[0];
  ASSERT_EQ(got.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(got[i].traces, curve[i].traces);
    ASSERT_EQ(got[i].ge_bits, curve[i].ge_bits);
    ASSERT_EQ(got[i].mean_rank, curve[i].mean_rank);
    EXPECT_EQ(got[i].recovered_bytes, curve[i].recovered_bytes);
  }
}

// Sharded CPA equals per-shard per-record loops merged in shard order.
TEST(CampaignEquivalence, ShardedCpaMatchesMergedPerRecordShards) {
  CpaCampaignConfig config{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .trace_count = 3000,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {},
      .seed = 23,
      .workers = 3,
      .shards = 3,
  };
  const auto campaign = run_cpa_campaign(config);

  util::Xoshiro256 rng(config.seed);
  aes::Block victim_key;
  rng.fill_bytes(victim_key);
  const auto round_keys = aes::Aes128::expand_key(victim_key);

  CpaEngine merged(config.models);
  bool first = true;
  for (std::size_t s = 0; s < 3; ++s) {
    util::Xoshiro256 shard_rng = rng.split(s);
    LiveTraceSource source({.profile = config.profile,
                            .victim = config.victim,
                            .mitigation = config.mitigation,
                            .include_pcpu = false},
                           victim_key, shard_rng());
    const std::size_t column = static_cast<std::size_t>(
        std::find(source.keys().begin(), source.keys().end(),
                  util::FourCc("PHPC")) -
        source.keys().begin());
    CpaEngine shard_engine(config.models);
    aes::Block pt;
    for (std::size_t t = 0; t < shard_size(config.trace_count, 3, s); ++t) {
      shard_rng.fill_bytes(pt);
      const TraceRecord record = source.collect(pt);
      shard_engine.add_trace(record.plaintext, record.ciphertext,
                             record.values[column]);
    }
    if (first) {
      merged = shard_engine.snapshot();
      first = false;
    } else {
      merged.merge(shard_engine);
    }
  }

  const ModelResult expected =
      merged.analyze(power::PowerModel::rd0_hw, round_keys);
  const ModelResult& got = campaign.keys[0].final_results[0];
  EXPECT_EQ(got.true_ranks, expected.true_ranks);
  ASSERT_EQ(got.ge_bits, expected.ge_bits);
  for (std::size_t i = 0; i < 16; ++i) {
    for (int g = 0; g < 256; ++g) {
      ASSERT_EQ(got.bytes[i].correlation[static_cast<std::size_t>(g)],
                expected.bytes[i].correlation[static_cast<std::size_t>(g)]);
    }
  }
}

// ---------- combined campaign ----------

class CombinedCampaignTest : public ::testing::Test {
 protected:
  CombinedCampaignConfig config_{
      .profile = soc::DeviceProfile::macbook_air_m2(),
      .victim = victim::VictimModel::user_space(),
      .traces_per_set = 900,
      .include_pcpu = true,
      .models = {power::PowerModel::rd0_hw},
      .keys = {smc::FourCc("PHPC")},
      .checkpoints = {600},
      .seed = 31,
  };
};

TEST_F(CombinedCampaignTest, OneAcquisitionFeedsAllSinks) {
  const auto result = run_combined_campaign(config_);
  EXPECT_EQ(result.traces_per_set, 900u);
  EXPECT_EQ(result.cpa_trace_count, 1800u);
  // TVLA half: all channels reported, PHPC leaks, PCPU does not.
  EXPECT_EQ(result.tvla.size(), 6u);
  const auto* phpc = result.find_tvla("PHPC");
  const auto* pcpu = result.find_tvla("PCPU");
  ASSERT_NE(phpc, nullptr);
  ASSERT_NE(pcpu, nullptr);
  EXPECT_GE(std::abs(phpc->matrix.score(PlaintextClass::all_zeros,
                                        PlaintextClass::all_ones)),
            util::tvla_threshold);
  EXPECT_TRUE(pcpu->matrix.no_data_dependence());
  // CPA half: curve at 600 and 1800 random-plaintext traces.
  ASSERT_EQ(result.cpa.size(), 1u);
  const auto* cpa = result.find_cpa(smc::FourCc("PHPC"));
  ASSERT_NE(cpa, nullptr);
  ASSERT_EQ(cpa->curves.size(), 1u);
  ASSERT_EQ(cpa->curves[0].size(), 2u);
  EXPECT_EQ(cpa->curves[0][0].traces, 600u);
  EXPECT_EQ(cpa->curves[0][1].traces, 1800u);
  ASSERT_EQ(cpa->final_results.size(), 1u);
}

// The combined campaign's TVLA half is bit-identical to the dedicated
// TVLA campaign at equal (seed, shards): same acquisition schedule, same
// accumulator arithmetic — the CPA sinks ride along for free.
TEST_F(CombinedCampaignTest, TvlaHalfBitIdenticalToTvlaCampaign) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{3}}) {
    CombinedCampaignConfig combined_config = config_;
    combined_config.shards = shards;
    combined_config.workers = 2;
    const auto combined = run_combined_campaign(combined_config);

    const TvlaCampaignConfig tvla_config{
        .profile = config_.profile,
        .victim = config_.victim,
        .traces_per_set = config_.traces_per_set,
        .include_pcpu = config_.include_pcpu,
        .mitigation = config_.mitigation,
        .seed = config_.seed,
        .workers = 2,
        .shards = shards,
    };
    const auto dedicated = run_tvla_campaign(tvla_config);

    ASSERT_EQ(combined.tvla.size(), dedicated.channels.size());
    for (std::size_t c = 0; c < combined.tvla.size(); ++c) {
      for (const PlaintextClass row : all_plaintext_classes) {
        for (const PlaintextClass col : all_plaintext_classes) {
          ASSERT_EQ(combined.tvla[c].matrix.score(row, col),
                    dedicated.channels[c].matrix.score(row, col))
              << combined.tvla[c].channel << " shards=" << shards;
        }
      }
    }
  }
}

TEST_F(CombinedCampaignTest, WorkerCountInvariant) {
  config_.shards = 4;
  config_.workers = 1;
  const auto a = run_combined_campaign(config_);
  config_.workers = 4;
  const auto b = run_combined_campaign(config_);
  ASSERT_EQ(a.cpa[0].final_results[0].ge_bits,
            b.cpa[0].final_results[0].ge_bits);
  EXPECT_EQ(a.cpa[0].final_results[0].true_ranks,
            b.cpa[0].final_results[0].true_ranks);
  for (std::size_t c = 0; c < a.tvla.size(); ++c) {
    ASSERT_EQ(a.tvla[c].matrix.score(PlaintextClass::all_zeros,
                                     PlaintextClass::all_ones),
              b.tvla[c].matrix.score(PlaintextClass::all_zeros,
                                     PlaintextClass::all_ones));
  }
}

TEST_F(CombinedCampaignTest, GeCurveUsesOnlyRandomPlaintextTraces) {
  const auto result = run_combined_campaign(config_);
  // The final CPA engine saw exactly the two random collections.
  EXPECT_EQ(result.cpa[0].curves[0].back().traces, 2 * config_.traces_per_set);
}

}  // namespace
}  // namespace psc::core
