// Property tests for the columnar TraceBatch core: batch feeding must be
// bit-identical to per-trace feeding for every engine, the pooled
// clear-and-refill loop must be allocation-free in steady state, and the
// CSV round-trip must be exact in batch form.
#include "core/trace_batch.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/cpa.h"
#include "core/trace_source.h"
#include "core/tvla.h"
#include "util/rng.h"

namespace psc::core {
namespace {

aes::Block random_block(util::Xoshiro256& rng) {
  aes::Block b;
  rng.fill_bytes(b);
  return b;
}

// A batch of random traces with `channels` value columns.
TraceBatch random_batch(util::Xoshiro256& rng, std::size_t n,
                        std::size_t channels) {
  TraceBatch batch(channels);
  batch.resize(n);
  for (auto& pt : batch.plaintexts()) {
    rng.fill_bytes(pt);
  }
  for (auto& ct : batch.ciphertexts()) {
    rng.fill_bytes(ct);
  }
  for (std::size_t c = 0; c < channels; ++c) {
    for (auto& v : batch.column(c)) {
      v = rng.uniform(-5.0, 5.0);
    }
  }
  return batch;
}

TEST(TraceBatch, ShapeAndAppend) {
  TraceBatch batch(2);
  EXPECT_EQ(batch.channels(), 2u);
  EXPECT_TRUE(batch.empty());

  util::Xoshiro256 rng(1);
  const aes::Block pt = random_block(rng);
  const aes::Block ct = random_block(rng);
  batch.append(pt, ct, std::vector<double>{1.0, 2.0});
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch.plaintexts()[0], pt);
  EXPECT_EQ(batch.ciphertexts()[0], ct);
  EXPECT_DOUBLE_EQ(batch.column(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(batch.column(1)[0], 2.0);
  EXPECT_EQ(batch.row(0).values.size(), 2u);
  EXPECT_DOUBLE_EQ(batch.row(0).values[1], 2.0);

  EXPECT_THROW(batch.append(pt, ct, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(batch.column(2), std::out_of_range);
}

TEST(TraceBatch, RangeAppendAndErrors) {
  util::Xoshiro256 rng(2);
  const TraceBatch source = random_batch(rng, 10, 3);
  TraceBatch dest(3);
  dest.append(source, 2, 5);
  ASSERT_EQ(dest.size(), 5u);
  for (std::size_t t = 0; t < 5; ++t) {
    EXPECT_EQ(dest.plaintexts()[t], source.plaintexts()[t + 2]);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(dest.column(c)[t], source.column(c)[t + 2]);
    }
  }
  EXPECT_THROW(dest.append(source, 8, 5), std::out_of_range);
  TraceBatch wrong(2);
  EXPECT_THROW(wrong.append(source), std::invalid_argument);
}

TEST(TraceBatch, ClearAndRefillIsAllocationFree) {
  TraceBatch batch(4);
  batch.reserve(256);
  batch.resize(256);
  const aes::Block* pt_data = batch.plaintexts().data();
  const double* col_data = batch.column(3).data();
  for (int cycle = 0; cycle < 10; ++cycle) {
    batch.clear();
    EXPECT_TRUE(batch.empty());
    batch.resize(100 + cycle);
    // Within capacity, clear+resize must not reallocate any array.
    EXPECT_EQ(batch.plaintexts().data(), pt_data);
    EXPECT_EQ(batch.column(3).data(), col_data);
  }
}

TEST(TraceBatchPool, RecyclesCapacityAcrossLeases) {
  TraceBatchPool pool(2, 128);
  const double* col_data = nullptr;
  {
    auto lease = pool.acquire();
    EXPECT_EQ(lease->channels(), 2u);
    EXPECT_GE(lease->capacity(), 128u);
    lease->resize(64);
    col_data = lease->column(0).data();
  }
  {
    // Returned batch comes back cleared but with its storage intact.
    auto lease = pool.acquire();
    EXPECT_TRUE(lease->empty());
    lease->resize(64);
    EXPECT_EQ(lease->column(0).data(), col_data);
  }
}

// The tentpole property: feeding a CpaEngine whole columns is
// bit-identical to feeding it one trace at a time, for every histogram
// family (plaintext, ciphertext, and ciphertext-pair models).
TEST(TraceBatch, CpaBatchFeedingBitIdenticalToPerTrace) {
  util::Xoshiro256 rng(3);
  const std::vector<power::PowerModel> models = {
      power::PowerModel::rd0_hw, power::PowerModel::rd10_hw,
      power::PowerModel::rd10_hd};
  const TraceBatch batch = random_batch(rng, 777, 2);

  CpaEngine batched(models);
  batched.add_batch(batch, 1);

  CpaEngine looped(models);
  for (std::size_t t = 0; t < batch.size(); ++t) {
    looped.add_trace(batch.plaintexts()[t], batch.ciphertexts()[t],
                     batch.column(1)[t]);
  }

  ASSERT_EQ(batched.trace_count(), looped.trace_count());
  const auto round_keys = aes::Aes128::expand_key(random_block(rng));
  for (const power::PowerModel model : models) {
    for (std::size_t i = 0; i < 16; ++i) {
      const ByteRanking a = batched.analyze_byte(model, i);
      const ByteRanking b = looped.analyze_byte(model, i);
      for (int g = 0; g < 256; ++g) {
        // Exact equality: the accumulator state must match to the bit.
        ASSERT_EQ(a.correlation[static_cast<std::size_t>(g)],
                  b.correlation[static_cast<std::size_t>(g)])
            << "model " << static_cast<int>(model) << " byte " << i
            << " guess " << g;
      }
    }
    const ModelResult ra = batched.analyze(model, round_keys);
    const ModelResult rb = looped.analyze(model, round_keys);
    EXPECT_EQ(ra.true_ranks, rb.true_ranks);
    EXPECT_EQ(ra.ge_bits, rb.ge_bits);
  }
}

// Splitting one stream into arbitrary batch boundaries must not change
// the engine state either (the campaign chunking property).
TEST(TraceBatch, CpaChunkingInvariant) {
  util::Xoshiro256 rng(4);
  const TraceBatch batch = random_batch(rng, 500, 1);

  CpaEngine whole({power::PowerModel::rd0_hw});
  whole.add_batch(batch, 0);

  CpaEngine chunked({power::PowerModel::rd0_hw});
  const std::size_t cuts[] = {1, 63, 64, 200, 500};
  std::size_t begin = 0;
  TraceBatch piece(1);
  for (const std::size_t end : cuts) {
    piece.clear();
    piece.append(batch, begin, end - begin);
    chunked.add_batch(piece, 0);
    begin = end;
  }

  for (std::size_t i = 0; i < 16; ++i) {
    const ByteRanking a = whole.analyze_byte(power::PowerModel::rd0_hw, i);
    const ByteRanking b = chunked.analyze_byte(power::PowerModel::rd0_hw, i);
    for (int g = 0; g < 256; ++g) {
      ASSERT_EQ(a.correlation[static_cast<std::size_t>(g)],
                b.correlation[static_cast<std::size_t>(g)]);
    }
  }
}

TEST(TraceBatch, TvlaBatchFeedingBitIdenticalToPerValue) {
  util::Xoshiro256 rng(5);
  const TraceBatch batch = random_batch(rng, 333, 1);

  TvlaAccumulator batched;
  TvlaAccumulator looped;
  batched.add_batch(PlaintextClass::all_ones, true, batch.column(0));
  for (const double v : batch.column(0)) {
    looped.add(PlaintextClass::all_ones, true, v);
  }
  // Add a second set so the matrix has a defined cross-class cell.
  batched.add_batch(PlaintextClass::all_zeros, false, batch.column(0));
  looped.add_batch(PlaintextClass::all_zeros, false, batch.column(0));

  EXPECT_EQ(batched.count(PlaintextClass::all_ones, true),
            looped.count(PlaintextClass::all_ones, true));
  const TvlaMatrix ma = batched.matrix();
  const TvlaMatrix mb = looped.matrix();
  for (const PlaintextClass row : all_plaintext_classes) {
    for (const PlaintextClass col : all_plaintext_classes) {
      ASSERT_EQ(ma.score(row, col), mb.score(row, col));
    }
  }
}

// CSV round-trip over the batch path is exact: persist a live capture,
// reload it, and compare every column bit for bit.
TEST(TraceBatch, CsvRoundTripOfBatchIsExact) {
  util::Xoshiro256 rng(6);
  const aes::Block victim_key = random_block(rng);
  LiveTraceSource source({.profile = soc::DeviceProfile::macbook_air_m2(),
                          .victim = victim::VictimModel::user_space()},
                         victim_key, 7);
  const TraceSet set = capture_trace_set(source, 64, rng);

  std::stringstream csv;
  set.save_csv(csv);
  const TraceSet reloaded = TraceSet::load_csv(csv);

  const TraceBatch& a = set.batch();
  const TraceBatch& b = reloaded.batch();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.channels(), b.channels());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a.plaintexts()[t], b.plaintexts()[t]);
    ASSERT_EQ(a.ciphertexts()[t], b.ciphertexts()[t]);
    for (std::size_t c = 0; c < a.channels(); ++c) {
      ASSERT_EQ(a.column(c)[t], b.column(c)[t]) << "trace " << t
                                                << " column " << c;
    }
  }
}

}  // namespace
}  // namespace psc::core
